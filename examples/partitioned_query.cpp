// Partitioned data-graph execution: the PCSR + signature table split
// across K simulated device memories (instead of replicated), queries
// answered with halo exchange / remote probes — and the match table still
// bit-identical to the single-device run at every K.
//
//   ./build/examples/partitioned_query
//
// Env knobs: GSI_PARTITION_EXAMPLE_SCALE (dataset scale, default 2),
// GSI_PARTITION_EXAMPLE_PARTITIONS (max partitions, default 8).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "graph/datasets.h"
#include "graph/query_generator.h"
#include "gsi/partition.h"
#include "gsi/query_engine.h"
#include "util/check.h"
#include "util/table_printer.h"

using namespace gsi;

namespace {

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : def;
}

constexpr double kMb = 1024.0 * 1024.0;

}  // namespace

int main() {
  const double scale = EnvDouble("GSI_PARTITION_EXAMPLE_SCALE", 2.0);
  const size_t max_partitions =
      static_cast<size_t>(EnvDouble("GSI_PARTITION_EXAMPLE_PARTITIONS", 8.0));

  Result<Dataset> dataset = MakeDataset("enron", scale);
  GSI_CHECK(dataset.ok());
  const Graph& g = dataset->graph;
  std::printf("data graph: %s\n", g.Summary().c_str());

  QueryGenConfig qc;
  qc.num_vertices = 8;
  std::vector<Graph> queries = GenerateQuerySet(g, qc, 5, 4242);
  GSI_CHECK(!queries.empty());

  QueryEngine engine(g, GsiOptOptions());
  GSI_CHECK(engine.init_status().ok());

  const Graph* heavy = nullptr;
  double single_ms = -1;
  for (const Graph& q : queries) {
    Result<QueryResult> r = engine.Run(q);
    if (r.ok() && r->stats.total_ms > single_ms) {
      single_ms = r->stats.total_ms;
      heavy = &q;
    }
  }
  GSI_CHECK_MSG(heavy != nullptr, "no query executed successfully");
  Result<QueryResult> single = engine.Run(*heavy);
  GSI_CHECK(single.ok());
  // Note: this reference uses GsiMatcher-style per-vertex filter kernels;
  // the K=1 rows below are the like-for-like replicated baseline (same
  // fused kernels, one share = the replica).
  std::printf("heavy query: %s -> %zu matches, %.2f ms single-device\n\n",
              heavy->Summary().c_str(), single->num_matches(), single_ms);

  // Hash ownership vs the greedy edge cut, side by side: the cut edges a
  // policy leaves decide how much of the join's probing goes remote.
  const HashVertexPartitioner hash;
  const GreedyEdgeCutPartitioner greedy;
  for (const GraphPartitioner* partitioner :
       {static_cast<const GraphPartitioner*>(&hash),
        static_cast<const GraphPartitioner*>(&greedy)}) {
    TablePrinter table({"Partitions", "Resident/dev MB", "Cut edges",
                        "Remote probes", "Halo MB", "Skew", "Total ms"});
    for (size_t k = 1; k <= max_partitions; k *= 2) {
      std::vector<std::unique_ptr<gpusim::Device>> devices;
      std::vector<gpusim::Device*> devs;
      for (size_t i = 0; i < k; ++i) {
        devices.push_back(
            std::make_unique<gpusim::Device>(engine.options().device));
        devs.push_back(devices.back().get());
      }
      Result<PartitionedGraph> pg =
          PartitionedGraph::Build(devs, g, engine.options(), *partitioner);
      GSI_CHECK_MSG(pg.ok(), pg.status().ToString().c_str());

      Result<QueryResult> part = engine.RunPartitioned(*heavy, *pg);
      GSI_CHECK(part.ok());
      GSI_CHECK_MSG(part->TableEquals(*single),
                    "partitioned result diverged from replicated run");

      const QueryStats& s = part->stats;
      const PartitionBuildStats& bs = pg->build_stats();
      table.AddRow(
          {std::to_string(k),
           TablePrinter::FormatMs(
               static_cast<double>(bs.max_resident_bytes()) / kMb),
           TablePrinter::FormatCount(bs.cut_edges),
           TablePrinter::FormatCount(s.remote_probes),
           TablePrinter::FormatMs(static_cast<double>(s.halo_bytes) / kMb),
           TablePrinter::FormatSpeedup(s.partition_skew),
           TablePrinter::FormatMs(s.total_ms)});
    }
    table.Print("Partitioned execution, " + partitioner->name() +
                " ownership (bit-identical at every K)");
    std::printf("\n");
  }
  std::printf("Every row above reproduced the replicated match table bit "
              "for bit while holding ~1/K of it per device.\n");
  return 0;
}
