// Quickstart: build a small labeled graph, run one subgraph-isomorphism
// query with GSI, and inspect the results and device counters.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "graph/graph_builder.h"
#include "gsi/matcher.h"

int main() {
  using namespace gsi;

  // --- Data graph: a toy social network.
  // Vertex labels: 0 = person, 1 = company. Edge labels: 0 = knows,
  // 1 = works_at.
  GraphBuilder b;
  VertexId alice = b.AddVertex(0);
  VertexId bob = b.AddVertex(0);
  VertexId carol = b.AddVertex(0);
  VertexId dave = b.AddVertex(0);
  VertexId acme = b.AddVertex(1);
  VertexId duff = b.AddVertex(1);
  b.AddEdge(alice, bob, 0);
  b.AddEdge(bob, carol, 0);
  b.AddEdge(carol, alice, 0);
  b.AddEdge(carol, dave, 0);
  b.AddEdge(alice, acme, 1);
  b.AddEdge(bob, acme, 1);
  b.AddEdge(carol, duff, 1);
  b.AddEdge(dave, duff, 1);
  Graph data = std::move(b).Build().value();
  std::printf("data graph: %s\n", data.Summary().c_str());

  // --- Query: two people who know each other and work at the same
  // company (u0 knows u1, both works_at u2).
  GraphBuilder qb;
  VertexId u0 = qb.AddVertex(0);
  VertexId u1 = qb.AddVertex(0);
  VertexId u2 = qb.AddVertex(1);
  qb.AddEdge(u0, u1, 0);
  qb.AddEdge(u0, u2, 1);
  qb.AddEdge(u1, u2, 1);
  Graph query = std::move(qb).Build().value();

  // --- Run GSI (builds PCSR + the signature table, then filters + joins).
  GsiMatcher matcher(data, GsiOptOptions());
  Result<QueryResult> result = matcher.Find(query);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("matches: %zu\n", result->num_matches());
  for (size_t r = 0; r < result->num_matches(); ++r) {
    std::vector<VertexId> m = result->MatchInQueryOrder(r);
    std::printf("  u0->v%u  u1->v%u  u2->v%u\n", m[0], m[1], m[2]);
  }

  // --- Simulated-device measurements (the paper's metrics).
  const QueryStats& s = result->stats;
  std::printf(
      "filter: %.3f ms simulated, %llu load transactions\n"
      "join:   %.3f ms simulated, %llu load / %llu store transactions\n",
      s.filter_ms, static_cast<unsigned long long>(s.filter.gld), s.join_ms,
      static_cast<unsigned long long>(s.join.gld),
      static_cast<unsigned long long>(s.join.gst));
  return 0;
}
