// Knowledge-graph query answering: builds a WatDiv-style RDF graph
// (entities with type labels, many predicate labels) and answers
// SPARQL-like basic graph patterns — star, path and cycle shapes — with
// GSI. This is the paper's RDF/knowledge-graph motivation (gStore, DBpedia).
//
//   $ ./build/examples/knowledge_graph_search [num_entities]

#include <cstdio>
#include <cstdlib>

#include "graph/datasets.h"
#include "graph/graph_builder.h"
#include "graph/query_generator.h"
#include "gsi/matcher.h"

namespace {

using namespace gsi;

void Report(const char* pattern, GsiMatcher& matcher, const Graph& q) {
  Result<QueryResult> r = matcher.Find(q);
  if (!r.ok()) {
    std::printf("%-32s %s\n", pattern, r.status().ToString().c_str());
    return;
  }
  std::printf("%-32s solutions=%-8zu sim=%.2f ms  min|C(u)|=%zu\n", pattern,
              r->num_matches(), r->stats.total_ms,
              r->stats.min_candidate_size);
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 40000;
  Dataset kg = MakeWatDivLike(n).value();
  const Graph& g = kg.graph;
  std::printf("knowledge graph: %s\n\n", g.Summary().c_str());

  GsiMatcher matcher(g, GsiOptOptions());

  // SPARQL-like patterns are built from the graph itself (random walks) so
  // every pattern is satisfiable — like queries mined from a query log.
  QueryGenConfig star_cfg;
  star_cfg.num_vertices = 4;
  Rng rng(7);
  Result<Graph> walk4 = GenerateRandomWalkQuery(g, star_cfg, rng);
  if (walk4.ok()) Report("path/tree pattern (4 vars)", matcher, *walk4);

  QueryGenConfig mid_cfg;
  mid_cfg.num_vertices = 6;
  mid_cfg.num_edges = 8;
  Result<Graph> cyc = GenerateRandomWalkQuery(g, mid_cfg, rng);
  if (cyc.ok()) Report("cyclic pattern (6 vars, 8 preds)", matcher, *cyc);

  QueryGenConfig big_cfg;
  big_cfg.num_vertices = 10;
  Result<Graph> big = GenerateRandomWalkQuery(g, big_cfg, rng);
  if (big.ok()) Report("large pattern (10 vars)", matcher, *big);

  // A hand-written star query: one hub entity with three typed neighbours
  // over distinct predicates (classic SPARQL star shape).
  Label hub_type = g.vertex_label(0);
  std::span<const Neighbor> nbrs = g.neighbors(0);
  if (nbrs.size() >= 3) {
    GraphBuilder qb;
    VertexId hub = qb.AddVertex(hub_type);
    for (int i = 0; i < 3; ++i) {
      VertexId leaf = qb.AddVertex(g.vertex_label(nbrs[i].v));
      qb.AddEdge(hub, leaf, nbrs[i].elabel);
    }
    Result<Graph> star = std::move(qb).Build();
    if (star.ok() && star->IsConnected()) {
      Report("star pattern (hub + 3 leaves)", matcher, *star);
    }
  }
  return 0;
}
