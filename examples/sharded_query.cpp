// Multi-device sharded query execution: one heavy query fanned out across
// a DevicePool, with the merged match table verified bit-identical to the
// single-device run at every pool size.
//
//   ./build/examples/sharded_query
//
// Env knobs: GSI_SHARD_EXAMPLE_SCALE (dataset scale, default 2),
// GSI_SHARD_EXAMPLE_DEVICES (max pool size, default 8).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graph/datasets.h"
#include "graph/query_generator.h"
#include "gsi/query_engine.h"
#include "gsi/sharded_engine.h"
#include "service/device_pool.h"
#include "util/check.h"
#include "util/table_printer.h"

using namespace gsi;

namespace {

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : def;
}

}  // namespace

int main() {
  const double scale = EnvDouble("GSI_SHARD_EXAMPLE_SCALE", 2.0);
  const size_t max_devices =
      static_cast<size_t>(EnvDouble("GSI_SHARD_EXAMPLE_DEVICES", 8.0));

  Result<Dataset> dataset = MakeDataset("enron", scale);
  GSI_CHECK(dataset.ok());
  const Graph& g = dataset->graph;
  std::printf("data graph: %s\n", g.Summary().c_str());

  QueryGenConfig qc;
  qc.num_vertices = 8;
  std::vector<Graph> queries = GenerateQuerySet(g, qc, 5, 4242);
  GSI_CHECK(!queries.empty());

  // Shared immutable PCSR + signature structures, built once.
  QueryEngine engine(g, GsiOptOptions());
  GSI_CHECK(engine.init_status().ok());

  // Pick the heaviest query of the workload — the shape intra-query
  // sharding exists for.
  const Graph* heavy = nullptr;
  double single_ms = -1;
  for (const Graph& q : queries) {
    Result<QueryResult> r = engine.Run(q);
    if (r.ok() && r->stats.total_ms > single_ms) {
      single_ms = r->stats.total_ms;
      heavy = &q;
    }
  }
  GSI_CHECK_MSG(heavy != nullptr, "no query executed successfully");
  Result<QueryResult> single = engine.Run(*heavy);
  GSI_CHECK(single.ok());
  std::printf("heavy query: %s -> %zu matches, %.2f ms on one device\n\n",
              heavy->Summary().c_str(), single->num_matches(), single_ms);

  TablePrinter table({"Devices", "Shards", "Filter ms", "Join ms",
                      "Total ms", "Speedup", "Skew"});
  for (size_t num_devices = 1; num_devices <= max_devices;
       num_devices *= 2) {
    DevicePool pool(num_devices, engine.options().device);
    std::vector<DevicePool::Lease> leases =
        pool.AcquireUpTo(num_devices).value();
    std::vector<gpusim::Device*> devs;
    for (DevicePool::Lease& l : leases) devs.push_back(l.get());

    Result<QueryResult> sharded = engine.RunSharded(*heavy, devs);
    GSI_CHECK(sharded.ok());

    // The merged table must be bit-identical to the single-device table.
    GSI_CHECK_MSG(sharded->TableEquals(*single),
                  "sharded result diverged from single-device run");

    const QueryStats& s = sharded->stats;
    table.AddRow({std::to_string(num_devices),
                  std::to_string(s.shards_used),
                  TablePrinter::FormatMs(s.filter_ms),
                  TablePrinter::FormatMs(s.join_ms),
                  TablePrinter::FormatMs(s.total_ms),
                  TablePrinter::FormatSpeedup(
                      s.total_ms > 0 ? single_ms / s.total_ms : 0),
                  TablePrinter::FormatSpeedup(s.shard_skew)});
  }
  table.Print("Sharded execution (bit-identical at every pool size)");
  std::printf("\nEvery row above reproduced the single-device match table "
              "bit for bit.\n");
  return 0;
}
