// Storage explorer: builds all four N(v, l) structures of Table II over
// one graph and reports their space cost and the simulated transaction
// cost of a random batch of N(v, l) extractions — a runnable version of
// the paper's Section IV analysis.
//
//   $ ./build/examples/storage_explorer [num_vertices] [num_edge_labels]

#include <cstdio>
#include <cstdlib>

#include "gpusim/launch.h"
#include "graph/generators.h"
#include "graph/labeler.h"
#include "gsi/matcher.h"
#include "storage/pcsr.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace gsi;
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50000;
  size_t num_elabels =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 32;

  Rng rng(1);
  std::vector<RawEdge> edges = GenerateScaleFree(n, 5, rng);
  LabelConfig lc;
  lc.num_vertex_labels = 16;
  lc.num_edge_labels = num_elabels;
  Graph g = std::move(AssignLabels(n, edges, lc).value());
  std::printf("graph: %s\n\n", g.Summary().c_str());

  // A fixed batch of (vertex, label) extractions.
  constexpr size_t kProbes = 20000;
  std::vector<std::pair<VertexId, Label>> probes;
  Rng prng(2);
  for (size_t i = 0; i < kProbes; ++i) {
    probes.push_back(
        {static_cast<VertexId>(prng.NextBounded(g.num_vertices())),
         static_cast<Label>(prng.NextBounded(num_elabels))});
  }

  std::printf("%-16s %14s %16s %14s\n", "structure", "bytes", "GLD/probe",
              "sim us/probe");
  for (StorageKind kind :
       {StorageKind::kCsr, StorageKind::kBasicRep,
        StorageKind::kCompressedRep, StorageKind::kPcsr}) {
    gpusim::Device dev;
    auto store = BuildStore(dev, g, kind, /*gpn=*/16);
    dev.ResetStats();
    std::vector<VertexId> scratch;
    gpusim::Launch(dev, (kProbes + 31) / 32, [&](gpusim::Warp& w) {
      size_t begin = w.global_id() * 32;
      size_t end = std::min(kProbes, begin + 32);
      for (size_t i = begin; i < end; ++i) {
        scratch.clear();
        store->Extract(w, probes[i].first, probes[i].second, scratch);
      }
    });
    double gld_per_probe =
        static_cast<double>(dev.stats().gld) / kProbes;
    double us_per_probe =
        dev.stats().SimulatedMs(dev.config()) * 1000.0 / kProbes;
    std::printf("%-16s %14llu %16.2f %14.3f\n", store->name().c_str(),
                static_cast<unsigned long long>(store->device_bytes()),
                gld_per_probe, us_per_probe);
  }

  // PCSR internals: chain statistics (the Section IV analysis).
  gpusim::Device dev;
  auto pcsr = PcsrStore::Build(dev, g, 16);
  std::printf(
      "\nPCSR: longest overflow chain across %zu partitions = %zu groups "
      "(paper bound: ceil(45/15) = 3)\n",
      g.num_edge_labels(), pcsr->max_chain_length());
  return 0;
}
