// Async QueryService demo: stream queries into a bounded admission queue
// and watch the two overload policies (kReject sheds load with
// ResourceExhausted, kBlock backpressures the submitter), queueing
// deadlines expire stale tickets, and the signature-keyed filter cache
// cut the filter phase on repeated query shapes.
//
//   $ ./build/examples/query_service
//
// Environment knobs:
//   GSI_SERVICE_VERTICES  data graph size          (default 2000)
//   GSI_SERVICE_QUERIES   streamed submissions     (default 240)
//   GSI_SERVICE_WORKERS   service worker threads   (default 4)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/labeler.h"
#include "graph/query_generator.h"
#include "service/query_service.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  return v ? static_cast<size_t>(std::atoll(v)) : def;
}

}  // namespace

int main() {
  using namespace gsi;

  const size_t n = EnvSize("GSI_SERVICE_VERTICES", 2000);
  const size_t num_queries = EnvSize("GSI_SERVICE_QUERIES", 240);
  const int workers = static_cast<int>(EnvSize("GSI_SERVICE_WORKERS", 4));

  // --- Data graph: labeled scale-free network (as in batch_throughput).
  Rng rng(7);
  std::vector<RawEdge> raw = GenerateScaleFree(n, /*edges_per_vertex=*/4, rng);
  LabelConfig lc;
  lc.num_vertex_labels = 8;
  lc.num_edge_labels = 4;
  lc.seed = 8;
  Result<Graph> data = AssignLabels(n, raw, lc);
  if (!data.ok()) {
    std::printf("graph generation failed: %s\n",
                data.status().ToString().c_str());
    return 1;
  }
  std::printf("data graph: %s\n", data->Summary().c_str());

  // --- Workload: each distinct shape appears 4 times, so 3/4 of the
  // stream is cacheable filter work.
  QueryGenConfig qc;
  qc.num_vertices = 6;
  std::vector<Graph> shapes =
      GenerateQuerySet(data.value(), qc, std::max<size_t>(1, num_queries / 4),
                       /*seed=*/4242);
  std::vector<Graph> stream;
  stream.reserve(shapes.size() * 4);
  for (int r = 0; r < 4; ++r) {
    stream.insert(stream.end(), shapes.begin(), shapes.end());
  }
  std::printf("workload: %zu submissions over %zu distinct shapes, %d "
              "workers\n\n",
              stream.size(), shapes.size(), workers);

  // --- Part 1: burst the whole stream at a tiny admission queue under
  // both overload policies.
  TablePrinter overload_table({"Policy", "Submitted", "Admitted", "Rejected",
                               "Completed", "Wall ms", "p50 sim ms",
                               "p99 sim ms", "Cache hits"});
  for (OverloadPolicy policy : {OverloadPolicy::kReject,
                                OverloadPolicy::kBlock}) {
    ServiceOptions so;
    so.num_workers = workers;
    so.max_queue_depth = 8;
    so.overload = policy;
    QueryService service(data.value(), GsiOptOptions(), so);

    WallTimer wall;
    std::vector<QueryTicket> tickets;
    for (const Graph& q : stream) {
      Result<QueryTicket> t = service.Submit(q);
      if (t.ok()) tickets.push_back(*t);
      // kReject: overflow fails fast with ResourceExhausted; kBlock: the
      // submitter stalls here instead, so nothing is ever rejected.
    }
    for (const QueryTicket& t : tickets) (void)service.Wait(t);
    double wall_ms = wall.ElapsedMs();

    ServiceStats s = service.stats();
    overload_table.AddRow(
        {policy == OverloadPolicy::kReject ? "kReject" : "kBlock",
         std::to_string(s.submitted), std::to_string(s.admitted),
         std::to_string(s.rejected), std::to_string(s.completed_ok),
         TablePrinter::FormatMs(wall_ms),
         TablePrinter::FormatMs(s.p50_simulated_ms),
         TablePrinter::FormatMs(s.p99_simulated_ms),
         std::to_string(s.cache.hits)});
  }
  overload_table.Print("Overload policies at queue depth 8");

  // --- Part 2: queueing deadlines. One worker, a deep queue and a 2 ms
  // deadline: whatever is still queued when its deadline passes fails
  // with DeadlineExceeded instead of wasting device time.
  {
    ServiceOptions so;
    so.num_workers = 1;
    so.max_queue_depth = stream.size();
    so.overload = OverloadPolicy::kBlock;
    so.default_deadline_ms = 2.0;
    QueryService service(data.value(), GsiOptOptions(), so);
    std::vector<QueryTicket> tickets;
    for (const Graph& q : stream) {
      Result<QueryTicket> t = service.Submit(q);
      if (t.ok()) tickets.push_back(*t);
    }
    service.Drain();
    ServiceStats s = service.stats();
    TablePrinter deadline_table(
        {"Deadline ms", "Admitted", "Expired", "Completed", "p99 sim ms"});
    deadline_table.AddRow({"2.0", std::to_string(s.admitted),
                           std::to_string(s.expired),
                           std::to_string(s.completed_ok),
                           TablePrinter::FormatMs(s.p99_simulated_ms)});
    deadline_table.Print("Queueing deadlines (1 worker)");
  }

  // --- Part 3: filter-cache effect. Stream the workload through a cold
  // service (cache off) and a warm-capable one (cache on) and compare the
  // simulated filter phase.
  TablePrinter cache_table({"Cache", "Wall ms", "Sum filter ms",
                            "Hit rate", "Entries", "Bytes"});
  double filter_ms_off = 0;
  double filter_ms_on = 0;
  for (bool enable_cache : {false, true}) {
    ServiceOptions so;
    so.num_workers = workers;
    so.max_queue_depth = stream.size();
    so.overload = OverloadPolicy::kBlock;
    so.enable_filter_cache = enable_cache;
    QueryService service(data.value(), GsiOptOptions(), so);

    WallTimer wall;
    std::vector<QueryTicket> tickets;
    for (const Graph& q : stream) {
      Result<QueryTicket> t = service.Submit(q);
      if (t.ok()) tickets.push_back(*t);
    }
    double sum_filter_ms = 0;
    for (const QueryTicket& t : tickets) {
      Result<QueryResult> r = service.Wait(t);
      if (r.ok()) sum_filter_ms += r->stats.filter_ms;
    }
    (enable_cache ? filter_ms_on : filter_ms_off) = sum_filter_ms;
    ServiceStats s = service.stats();
    cache_table.AddRow({enable_cache ? "on" : "off",
                        TablePrinter::FormatMs(wall.ElapsedMs()),
                        TablePrinter::FormatMs(sum_filter_ms),
                        TablePrinter::FormatPercent(s.cache.HitRate()),
                        std::to_string(s.cache.entries),
                        std::to_string(s.cache.bytes)});
  }
  cache_table.Print("Signature-keyed filter cache on repeated shapes");
  if (filter_ms_on > 0) {
    std::printf("filter-phase speedup from the cache: %s\n",
                TablePrinter::FormatSpeedup(filter_ms_off / filter_ms_on)
                    .c_str());
  }
  return 0;
}
