// Batch throughput: serve 1000 generated queries over a scale-free data
// graph through QueryEngine::RunBatch at several thread counts, and report
// wall-clock throughput plus simulated-latency percentiles per count.
//
//   $ ./build/examples/batch_throughput
//
// Environment knobs:
//   GSI_BATCH_VERTICES  data graph size (default 2000)
//   GSI_BATCH_QUERIES   number of queries (default 1000)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graph/generators.h"
#include "graph/labeler.h"
#include "graph/query_generator.h"
#include "gsi/query_engine.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace {

size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  return v ? static_cast<size_t>(std::atoll(v)) : def;
}

}  // namespace

int main() {
  using namespace gsi;

  // --- Data graph: labeled scale-free network.
  const size_t n = EnvSize("GSI_BATCH_VERTICES", 2000);
  const size_t num_queries = EnvSize("GSI_BATCH_QUERIES", 1000);
  Rng rng(7);
  std::vector<RawEdge> raw = GenerateScaleFree(n, /*edges_per_vertex=*/4, rng);
  LabelConfig lc;
  lc.num_vertex_labels = 8;
  lc.num_edge_labels = 4;
  lc.seed = 8;
  Result<Graph> data = AssignLabels(n, raw, lc);
  if (!data.ok()) {
    std::printf("graph generation failed: %s\n",
                data.status().ToString().c_str());
    return 1;
  }
  std::printf("data graph: %s\n", data->Summary().c_str());

  // --- Query workload: random-walk queries guaranteed >= 1 match each.
  QueryGenConfig qc;
  qc.num_vertices = 6;
  std::vector<Graph> queries =
      GenerateQuerySet(data.value(), qc, num_queries, /*seed=*/4242);
  std::printf("workload: %zu queries of %zu vertices\n\n", queries.size(),
              qc.num_vertices);

  // --- Shared engine: PCSR + signature table built once, reused by every
  // worker thread below.
  QueryEngine engine(data.value(), GsiOptOptions());

  TablePrinter table({"Threads", "Wall ms", "Queries/s", "Speedup",
                      "p50 sim ms", "p99 sim ms", "Matches", "Failed"});
  double base_qps = 0;
  for (int threads : {1, 2, 4, 8}) {
    BatchOptions bo;
    bo.num_threads = threads;
    BatchResult batch = engine.RunBatch(queries, bo);

    size_t matches = 0;
    for (const Result<QueryResult>& r : batch.per_query) {
      if (r.ok()) matches += r->num_matches();
    }
    if (threads == 1) base_qps = batch.stats.queries_per_sec;
    double speedup =
        base_qps > 0 ? batch.stats.queries_per_sec / base_qps : 0;
    table.AddRow({std::to_string(threads),
                  TablePrinter::FormatMs(batch.stats.wall_ms),
                  TablePrinter::FormatCount(static_cast<uint64_t>(
                      batch.stats.queries_per_sec)),
                  TablePrinter::FormatSpeedup(speedup),
                  TablePrinter::FormatMs(batch.stats.p50_simulated_ms),
                  TablePrinter::FormatMs(batch.stats.p99_simulated_ms),
                  TablePrinter::FormatCount(matches),
                  std::to_string(batch.stats.failed)});
  }
  table.Print("Batch throughput over one shared QueryEngine");
  return 0;
}
