// Social-network motif counting: generates a scale-free "friendship"
// network with interaction labels and counts classic motifs (labeled
// triangles, diamonds, stars) with GSI, cross-checking one motif against
// a CPU baseline. This is the paper's social-network-analysis motivation.
//
//   $ ./build/examples/social_network_motifs [num_vertices]

#include <cstdio>
#include <cstdlib>

#include "baselines/cpu_matcher.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/labeler.h"
#include "gsi/matcher.h"
#include "util/rng.h"

namespace {

using namespace gsi;

// Interaction labels.
constexpr Label kFriend = 0;
constexpr Label kFollows = 1;

Graph MakeSocialNetwork(size_t n) {
  Rng rng(2024);
  std::vector<RawEdge> edges = GenerateScaleFree(n, 6, rng);
  LabelConfig lc;
  lc.num_vertex_labels = 4;  // user "communities"
  lc.num_edge_labels = 2;    // friend / follows
  lc.seed = 99;
  return std::move(AssignLabels(n, edges, lc).value());
}

Graph Triangle(Label community, Label elabel) {
  GraphBuilder b;
  VertexId u0 = b.AddVertex(community);
  VertexId u1 = b.AddVertex(community);
  VertexId u2 = b.AddVertex(community);
  b.AddEdge(u0, u1, elabel);
  b.AddEdge(u1, u2, elabel);
  b.AddEdge(u2, u0, elabel);
  return std::move(b).Build().value();
}

Graph Diamond(Label community) {
  // Two triangles sharing an edge: u0-u1-u2-u0 and u1-u2-u3-u1.
  GraphBuilder b;
  VertexId u0 = b.AddVertex(community);
  VertexId u1 = b.AddVertex(community);
  VertexId u2 = b.AddVertex(community);
  VertexId u3 = b.AddVertex(community);
  b.AddEdge(u0, u1, kFriend);
  b.AddEdge(u1, u2, kFriend);
  b.AddEdge(u2, u0, kFriend);
  b.AddEdge(u1, u3, kFriend);
  b.AddEdge(u2, u3, kFriend);
  return std::move(b).Build().value();
}

Graph Star(Label center_community, size_t leaves) {
  GraphBuilder b;
  VertexId c = b.AddVertex(center_community);
  for (size_t i = 0; i < leaves; ++i) {
    VertexId leaf = b.AddVertex(center_community);
    b.AddEdge(c, leaf, kFollows);
  }
  return std::move(b).Build().value();
}

void Report(const char* name, GsiMatcher& matcher, const Graph& motif) {
  Result<QueryResult> r = matcher.Find(motif);
  if (!r.ok()) {
    std::printf("%-28s %s\n", name, r.status().ToString().c_str());
    return;
  }
  std::printf("%-28s embeddings=%-8zu sim=%.2f ms  (join GLD %llu)\n", name,
              r->num_matches(), r->stats.total_ms,
              static_cast<unsigned long long>(r->stats.join.gld));
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 30000;
  Graph network = MakeSocialNetwork(n);
  std::printf("social network: %s\n\n", network.Summary().c_str());

  GsiMatcher matcher(network, GsiOptOptions());
  Report("friend triangle (comm 0)", matcher, Triangle(0, kFriend));
  Report("friend triangle (comm 1)", matcher, Triangle(1, kFriend));
  Report("follow triangle (comm 0)", matcher, Triangle(0, kFollows));
  Report("diamond (comm 0)", matcher, Diamond(0));
  // Stars on hub-heavy graphs explode combinatorially; community 2 is a
  // rarer label so the row-cap guard is not hit.
  Report("follow star, 3 leaves", matcher, Star(2, 3));

  // Cross-check one motif with a CPU engine.
  Graph tri = Triangle(0, kFriend);
  Result<QueryResult> gsi_result = matcher.Find(tri);
  CpuMatchResult vf2 = Vf2Match(network, tri);
  std::printf(
      "\ncross-check friend triangle: GSI=%zu VF2=%zu (%s)\n",
      gsi_result.ok() ? gsi_result->num_matches() : 0, vf2.num_matches,
      (gsi_result.ok() && gsi_result->num_matches() == vf2.num_matches)
          ? "agree"
          : "MISMATCH");
  return 0;
}
