// Paged result cursors demo: a high-match query is submitted once, then its
// result is streamed out page by page (Submit -> ticket -> FetchPage)
// instead of materialized in one shot. The partial match tables stay
// resident on the pool devices that produced them until each page leases
// its owners and pages the rows out, so the host never holds more than
// ServiceOptions::page_budget_bytes of result rows per query — and the
// concatenated pages are byte-identical to the legacy Wait table.
//
//   $ ./build/examples/streaming_results
//
// Environment knobs:
//   GSI_STREAM_VERTICES    data graph size        (default 2000)
//   GSI_STREAM_BUDGET      page budget in bytes   (default 4096)
//   GSI_STREAM_DEVICES     pool devices           (default 4)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graph/generators.h"
#include "graph/labeler.h"
#include "graph/query_generator.h"
#include "service/query_service.h"
#include "util/table_printer.h"

namespace {

size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  return v ? static_cast<size_t>(std::atoll(v)) : def;
}

}  // namespace

int main() {
  using namespace gsi;

  const size_t n = EnvSize("GSI_STREAM_VERTICES", 2000);
  const size_t budget = EnvSize("GSI_STREAM_BUDGET", 4096);
  const int num_devices = static_cast<int>(EnvSize("GSI_STREAM_DEVICES", 4));

  // --- Data graph: a hubby scale-free network with few labels, so a small
  // query shape matches thousands of times — the result set a one-shot
  // materialization would hold in host memory all at once.
  Rng rng(7);
  std::vector<RawEdge> raw =
      GenerateScaleFree(n, /*edges_per_vertex=*/4, rng, /*num_hubs=*/8,
                        /*hub_fraction=*/0.3);
  LabelConfig lc;
  lc.num_vertex_labels = 2;
  lc.num_edge_labels = 2;
  lc.seed = 8;
  Result<Graph> data = AssignLabels(n, raw, lc);
  if (!data.ok()) {
    std::printf("graph generation failed: %s\n",
                data.status().ToString().c_str());
    return 1;
  }
  std::printf("data graph: %s\n", data->Summary().c_str());

  QueryGenConfig qc;
  qc.num_vertices = 4;
  std::vector<Graph> queries = GenerateQuerySet(data.value(), qc, 1,
                                                /*seed=*/4242);
  if (queries.empty()) {
    std::printf("query generation failed\n");
    return 1;
  }
  const Graph& query = queries[0];

  // --- The reference: one-shot Wait on a budget-free service.
  ServiceOptions legacy_so;
  legacy_so.num_devices = num_devices;
  QueryService legacy(data.value(), GsiOptOptions(), legacy_so);
  Result<QueryTicket> legacy_ticket = legacy.Submit(query);
  if (!legacy_ticket.ok()) {
    std::printf("submit failed: %s\n",
                legacy_ticket.status().ToString().c_str());
    return 1;
  }
  Result<QueryResult> one_shot = legacy.Wait(*legacy_ticket);
  if (!one_shot.ok()) {
    std::printf("query failed: %s\n", one_shot.status().ToString().c_str());
    return 1;
  }
  const size_t total_rows = one_shot->table.rows();
  const size_t cols = one_shot->table.cols();
  std::printf("query: %zu vertices, %zu matches (%zu bytes as one table)\n\n",
              query.num_vertices(), total_rows,
              total_rows * cols * sizeof(VertexId));

  // --- The stream: same query, result fetched in <= budget-byte pages.
  ServiceOptions so;
  so.num_devices = num_devices;
  so.page_budget_bytes = budget;
  QueryService service(data.value(), GsiOptOptions(), so);
  Result<QueryTicket> ticket = service.Submit(query);
  if (!ticket.ok()) {
    std::printf("submit failed: %s\n", ticket.status().ToString().c_str());
    return 1;
  }

  size_t pages = 0;
  size_t streamed_rows = 0;
  size_t peak_page_bytes = 0;
  bool identical = true;
  for (;;) {
    Result<ResultPage> page = service.FetchPage(*ticket);
    if (!page.ok()) {
      std::printf("FetchPage failed: %s\n", page.status().ToString().c_str());
      return 1;
    }
    // Verify the stream against the one-shot table as it arrives — no
    // page is ever kept after its rows are consumed.
    for (size_t r = 0; r < page->num_rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        identical = identical &&
                    page->rows[r * cols + c] ==
                        one_shot->table.At(page->row_begin + r, c);
      }
    }
    peak_page_bytes = std::max(peak_page_bytes,
                               page->rows.size() * sizeof(VertexId));
    streamed_rows += page->num_rows;
    ++pages;
    if (page->done) break;
  }
  Status closed = service.CloseCursor(*ticket);

  ServiceStats s = service.stats();
  TablePrinter table({"Budget B", "Pages", "Rows", "Peak page B",
                      "Resident B after close", "Identical"});
  table.AddRow({std::to_string(budget), std::to_string(pages),
                std::to_string(streamed_rows),
                std::to_string(peak_page_bytes),
                std::to_string(s.cursor_resident_bytes),
                identical ? "yes" : "NO"});
  table.Print("Streamed result vs one-shot Wait");

  if (!closed.ok() || !identical || streamed_rows != total_rows ||
      (budget > 0 && peak_page_bytes > std::max(budget,
                                                cols * sizeof(VertexId)))) {
    std::printf("FAILED: stream diverged from the one-shot result\n");
    return 1;
  }
  if (budget > 0) {
    std::printf("OK: %zu pages, each <= %zu bytes, concatenation "
                "byte-identical to Wait\n",
                pages, std::max(budget, cols * sizeof(VertexId)));
  } else {
    std::printf("OK: unbounded budget, %zu page(s), concatenation "
                "byte-identical to Wait\n", pages);
  }
  return 0;
}
