// End-to-end query tracing: submits one traced query through QueryService
// on the replicated partitioned path (K=4 partitions, R=2 replicas — the
// configuration with the richest span tree: queue wait, filter lanes,
// per-partition scans, the candidate gather, every join step per replica
// lane, remote-probe batches, and the result merge), then
//
//   1. prints the span tree (`Tracer::ToTreeString`) to stdout,
//   2. writes the Chrome trace_event JSON to a file — load it at
//      chrome://tracing or https://ui.perfetto.dev,
//   3. prints the service's Prometheus metrics exposition.
//
//   ./build/examples/trace_query [out.json]     (default: trace_query.json)
//
// Device-track timestamps come from the simulated cycle clock, so the
// exported JSON is byte-identical across runs; only the host track (queue
// wait, the root "query" span) uses wall time.

#include <cstdio>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/query_generator.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "util/check.h"

using namespace gsi;

namespace {
constexpr size_t kPartitions = 4;
constexpr size_t kReplicas = 2;
}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "trace_query.json";

  Result<Dataset> dataset = MakeDataset("enron", /*scale=*/2.0);
  GSI_CHECK(dataset.ok());
  const Graph& g = dataset->graph;
  std::printf("data graph: %s\n", g.Summary().c_str());

  QueryGenConfig qc;
  qc.num_vertices = 8;
  std::vector<Graph> queries = GenerateQuerySet(g, qc, 3, 4242);
  GSI_CHECK(!queries.empty());

  ServiceOptions so;
  so.num_workers = 2;
  so.num_devices = static_cast<int>(kPartitions);
  so.partition_data_graph = true;
  so.partition_replicas = static_cast<int>(kReplicas);
  QueryService service(g, GsiOptOptions(), so);
  GSI_CHECK_MSG(service.init_status().ok(),
                service.init_status().ToString().c_str());

  // Cold traced run: the full span tree, including the filter's
  // per-partition scans and the candidate gather (a cache hit would skip
  // them) — this is the trace exported as JSON below.
  SubmitOptions submit;
  submit.trace = true;
  Result<QueryTicket> ticket = service.Submit(queries.front(), submit);
  GSI_CHECK(ticket.ok());
  Result<QueryResult> result = service.Wait(*ticket);
  GSI_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  std::printf("query: %s -> %zu matches, %.2f simulated ms\n\n",
              queries.front().Summary().c_str(), result->num_matches(),
              result->stats.total_ms);

  std::shared_ptr<const obs::Tracer> tracer = service.GetTrace(*ticket);
  GSI_CHECK_MSG(tracer != nullptr, "traced submit produced no tracer");

  std::printf("%s\n", tracer->ToTreeString().c_str());

  // Warm repeat of the same query: the filter cache hits, and the trace
  // shows it — a "filter" span with cache="hit" in place of the scans.
  Result<QueryTicket> warm = service.Submit(queries.front(), submit);
  GSI_CHECK(warm.ok());
  GSI_CHECK(service.Wait(*warm).ok());
  std::shared_ptr<const obs::Tracer> warm_tracer = service.GetTrace(*warm);
  GSI_CHECK_MSG(warm_tracer != nullptr, "traced submit produced no tracer");
  std::printf("--- same query again (filter cache warm) ---\n%s\n",
              warm_tracer->ToTreeString().c_str());

  const std::string json = tracer->ToChromeJson();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  GSI_CHECK_MSG(f != nullptr, out_path.c_str());
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %zu spans of Chrome trace JSON to %s\n",
              tracer->Snapshot().size(), out_path.c_str());

  std::printf("\n--- Prometheus exposition (QueryService::ExportMetrics) "
              "---\n%s",
              service.ExportMetrics().c_str());
  return 0;
}
