// R-way replicated partitions: each of K partitions stored on R of K
// simulated devices (staggered placement), so a partitioned query leases
// one replica of each — K/R devices, leaving R concurrent lanes — and
// probes of peer partitions are served by co-resident replicas instead of
// the interconnect. Sweeps R for one heavy query, then runs a concurrent
// burst through QueryService to show the lanes working (AcquireOneOfEach,
// least-loaded replica picks). Match tables stay bit-identical to the
// single-device run at every R and for every replica selection.
//
//   ./build/examples/replicated_query [--kill-device[=N]]
//
// --kill-device[=N] injects a deterministic fail_on_lease fault into pool
// device N (default 0) before the service burst: the first query to lease
// it fails mid-run, the pool quarantines the device, and the retry layer
// re-solves replica coverage onto the survivors — every result still
// bit-identical. Requires R >= 2 (with one replica the dead partition is
// simply gone).
//
// Env knobs: GSI_REPL_EXAMPLE_SCALE (dataset scale, default 2),
// GSI_REPL_EXAMPLE_REPLICAS (max replication factor, default 4),
// GSI_REPL_EXAMPLE_BURST (queries in the service burst, default 12).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "graph/datasets.h"
#include "graph/query_generator.h"
#include "gsi/query_engine.h"
#include "gsi/replication.h"
#include "service/query_service.h"
#include "util/check.h"
#include "util/table_printer.h"

using namespace gsi;

namespace {

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : def;
}

constexpr double kMb = 1024.0 * 1024.0;
constexpr size_t kPartitions = 4;

}  // namespace

int main(int argc, char** argv) {
  bool kill_device = false;
  size_t victim = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kill-device") {
      kill_device = true;
    } else if (a.rfind("--kill-device=", 0) == 0) {
      kill_device = true;
      victim = static_cast<size_t>(std::atoi(a.substr(14).c_str()));
    } else {
      std::fprintf(stderr, "usage: %s [--kill-device[=N]]\n", argv[0]);
      return 2;
    }
  }
  GSI_CHECK_MSG(victim < kPartitions, "--kill-device index out of range");

  const double scale = EnvDouble("GSI_REPL_EXAMPLE_SCALE", 2.0);
  const size_t max_replicas = std::min<size_t>(
      kPartitions,
      static_cast<size_t>(EnvDouble("GSI_REPL_EXAMPLE_REPLICAS", 4.0)));
  const size_t burst =
      static_cast<size_t>(EnvDouble("GSI_REPL_EXAMPLE_BURST", 12.0));

  Result<Dataset> dataset = MakeDataset("enron", scale);
  GSI_CHECK(dataset.ok());
  const Graph& g = dataset->graph;
  std::printf("data graph: %s, partitioned %zu ways\n", g.Summary().c_str(),
              kPartitions);

  QueryGenConfig qc;
  qc.num_vertices = 8;
  std::vector<Graph> queries = GenerateQuerySet(g, qc, 5, 4242);
  GSI_CHECK(!queries.empty());

  QueryEngine engine(g, GsiOptOptions());
  GSI_CHECK(engine.init_status().ok());

  const Graph* heavy = nullptr;
  double single_ms = -1;
  for (const Graph& q : queries) {
    Result<QueryResult> r = engine.Run(q);
    if (r.ok() && r->stats.total_ms > single_ms) {
      single_ms = r->stats.total_ms;
      heavy = &q;
    }
  }
  GSI_CHECK_MSG(heavy != nullptr, "no query executed successfully");
  Result<QueryResult> single = engine.Run(*heavy);
  GSI_CHECK(single.ok());
  std::printf("heavy query: %s -> %zu matches, %.2f ms single-device\n\n",
              heavy->Summary().c_str(), single->num_matches(), single_ms);

  // --- R sweep: one packed-selection execution per R. Lanes = concurrent
  // queries the pool now admits; co-located probes = interconnect traffic
  // the replicas absorbed.
  TablePrinter table({"Replicas", "Lanes", "Resident/dev MB", "Remote probes",
                      "Co-located", "Halo MB", "Total ms"});
  for (size_t r = 1; r <= max_replicas; r *= 2) {
    std::vector<std::unique_ptr<gpusim::Device>> devices;
    std::vector<gpusim::Device*> devs;
    for (size_t i = 0; i < kPartitions; ++i) {
      devices.push_back(
          std::make_unique<gpusim::Device>(engine.options().device));
      devs.push_back(devices.back().get());
    }
    Result<ReplicatedGraph> rg =
        ReplicatedGraph::Build(devs, g, engine.options(),
                               HashVertexPartitioner(), kPartitions, r);
    GSI_CHECK_MSG(rg.ok(), rg.status().ToString().c_str());

    const ReplicaSelection packed = CompactSelection(*rg);
    Result<QueryResult> repl = engine.RunPartitioned(*heavy, *rg, packed);
    GSI_CHECK(repl.ok());
    GSI_CHECK_MSG(repl->TableEquals(*single),
                  "replicated result diverged from single-device run");

    const QueryStats& s = repl->stats;
    const ReplicationBuildStats& bs = rg->build_stats();
    table.AddRow(
        {std::to_string(r),
         std::to_string(kPartitions / std::max<size_t>(1, s.replica_lanes)),
         TablePrinter::FormatMs(
             static_cast<double>(bs.max_resident_bytes()) / kMb),
         TablePrinter::FormatCount(s.remote_probes),
         TablePrinter::FormatCount(s.co_located_probes),
         TablePrinter::FormatMs(static_cast<double>(s.halo_bytes) / kMb),
         TablePrinter::FormatMs(s.total_ms)});
  }
  table.Print("Replicated execution, packed selection (bit-identical at "
              "every R)");
  std::printf("\n");

  // --- Concurrent burst through the serving layer: R=2 means two queries
  // hold disjoint lanes at once (watch peak_in_use and the pick skew).
  const size_t service_replicas = std::min<size_t>(2, max_replicas);
  if (kill_device && service_replicas < 2) {
    std::printf("--kill-device ignored: R=%zu leaves no surviving replica "
                "of the dead device's partitions\n",
                service_replicas);
    kill_device = false;
  }
  ServiceOptions so;
  so.num_workers = static_cast<int>(kPartitions);
  so.num_devices = static_cast<int>(kPartitions);
  so.partition_data_graph = true;
  so.partition_replicas = static_cast<int>(service_replicas);
  so.overload = OverloadPolicy::kBlock;
  so.max_queue_depth = 2 * burst;
  // One retry is enough: the rerun re-solves coverage without the
  // quarantined device, and every other query never even sees it.
  if (kill_device) so.default_max_attempts = 2;
  QueryService service(g, GsiOptOptions(), so);
  GSI_CHECK_MSG(service.init_status().ok(),
                service.init_status().ToString().c_str());

  if (kill_device) {
    gpusim::FaultPlan plan;
    plan.fail_on_lease = true;
    plan.reason = "example --kill-device";
    GSI_CHECK(service.InjectDeviceFault(victim, plan).ok());
    std::printf("fault armed: device %zu dies on its next lease "
                "(fail-stop; the burst below must survive it)\n\n",
                victim);
  }

  std::vector<QueryTicket> tickets;
  for (size_t i = 0; i < burst; ++i) {
    Result<QueryTicket> t = service.Submit(*heavy);
    GSI_CHECK(t.ok());
    tickets.push_back(*t);
  }
  size_t ok = 0;
  for (const QueryTicket& t : tickets) {
    Result<QueryResult> r = service.Wait(t);
    GSI_CHECK(r.ok());
    GSI_CHECK_MSG(r->TableEquals(*single), "service result diverged");
    ++ok;
  }
  ServiceStats stats = service.stats();
  std::printf("service burst: %zu/%zu ok over a %zu-device pool, R=%zu\n", ok,
              burst, kPartitions, service_replicas);
  std::printf("  replicated queries: %llu, avg devices held per query: %.1f "
              "(vs %zu under AcquireAll)\n",
              static_cast<unsigned long long>(stats.replicated_queries),
              stats.avg_replica_lanes, kPartitions);
  std::printf("  co-located probes:  %llu served without the interconnect\n",
              static_cast<unsigned long long>(stats.co_located_probes));
  std::printf("  replica pick skew:  %.2fx (1.0 = perfectly even)\n",
              stats.replica_pick_skew);
  std::printf("  pool peak in use:   %zu of %zu devices\n",
              stats.pool.peak_in_use, kPartitions);
  if (kill_device) {
    GSI_CHECK_MSG(stats.device_failures >= 1,
                  "armed fault never tripped during the burst");
    GSI_CHECK_MSG(stats.quarantined_devices == 1,
                  "dead device was not quarantined");
    std::printf("  fault tolerance:    device %zu died mid-burst; %llu "
                "failed attempt(s), %llu retr%s (%llu failover%s), "
                "%zu device quarantined — 0 queries lost\n",
                victim,
                static_cast<unsigned long long>(stats.device_failures),
                static_cast<unsigned long long>(stats.retries),
                stats.retries == 1 ? "y" : "ies",
                static_cast<unsigned long long>(stats.failovers),
                stats.failovers == 1 ? "" : "s",
                stats.quarantined_devices);
    GSI_CHECK(service.RepairDevice(victim));
    std::printf("  repair:             device %zu re-admitted (%zu "
                "quarantined now)\n",
                victim, service.stats().quarantined_devices);
  }
  std::printf("\nEvery result above is bit-identical to the single-device "
              "match table,\nwhichever replica served each partition.\n");
  return 0;
}
