// Partitioned data-graph execution (the memory-capacity half of Section
// VIII): the PCSR + signature table split across K device memories instead
// of replicated, with cross-partition probes charged at the interconnect
// premium. Sweeps K and reports, per sweep point, the per-device resident
// footprint against the replicated one (the reduction partitioning buys)
// and the cross-partition overhead it costs (remote probes, halo volume,
// slowdown vs the replicated single-device run). The partitioned match
// table is checked bit-identical against GsiMatcher-equivalent execution
// on every sweep point.
//
// Knobs: GSI_BENCH_PARTITIONS="1 2 4 8" (partition counts),
// GSI_BENCH_PARTITIONER=hash|greedy, GSI_BENCH_HALO_BUDGET=<bytes> (per-
// device halo-cache budget; > 0 adds a cached leg per sweep point with
// halo_cache_hit_rate / saved_remote_transactions / halo_cache_mb_per_device
// extras), plus the usual GSI_BENCH_SCALE / GSI_BENCH_QUERIES /
// GSI_BENCH_QSIZE.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gsi/partition.h"
#include "util/check.h"

namespace gsi::bench {
namespace {

constexpr double kMb = 1024.0 * 1024.0;

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Partition scalability: the data graph split across K device "
      "memories (GSI-opt, simulated time)",
      {"Partitions", "Resident/dev MB", "Replicated MB", "Cut edges",
       "Remote probes", "Halo MB", "Skew", "Total ms", "Vs replicated",
       "Matches"});
  return t;
}

std::vector<size_t> PartitionCounts() {
  static auto& counts = *new std::vector<size_t>([] {
    std::vector<size_t> out;
    const char* env = std::getenv("GSI_BENCH_PARTITIONS");
    std::stringstream ss(env != nullptr ? env : "1 2 4 8");
    size_t v = 0;
    while (ss >> v) {
      if (v > 0) out.push_back(v);
    }
    if (out.empty()) out = {1, 2, 4, 8};
    return out;
  }());
  return counts;
}

const GraphPartitioner& Partitioner() {
  static const GraphPartitioner& p = *[]() -> const GraphPartitioner* {
    const char* env = std::getenv("GSI_BENCH_PARTITIONER");
    if (env != nullptr && std::string(env) == "greedy") {
      return new GreedyEdgeCutPartitioner();
    }
    return new HashVertexPartitioner();
  }();
  return p;
}

const QueryEngine& Engine() {
  static auto& engine =
      *new QueryEngine(GetDataset("enron").graph, GsiOptOptions());
  return engine;
}

/// Per-device halo-cache budget in bytes; 0 (the default) skips the leg.
uint64_t HaloBudget() {
  static const uint64_t budget = [] {
    const char* env = std::getenv("GSI_BENCH_HALO_BUDGET");
    return env != nullptr ? std::strtoull(env, nullptr, 10) : uint64_t{0};
  }();
  return budget;
}

/// The heaviest query of the generated workload (max single-device
/// simulated time) — partitioning overhead shows clearest where the join
/// does real work.
const Graph& HeavyQuery() {
  static auto& query = *new Graph([] {
    const std::vector<Graph>& all =
        GetQueries("enron", Env().query_vertices, 0, Env().queries);
    const Graph* heaviest = nullptr;
    double worst_ms = -1;
    for (const Graph& q : all) {
      Result<QueryResult> r = Engine().Run(q);
      if (!r.ok()) continue;
      if (r->stats.total_ms > worst_ms) {
        worst_ms = r->stats.total_ms;
        heaviest = &q;
      }
    }
    GSI_CHECK_MSG(heaviest != nullptr, "no query executed successfully");
    std::fprintf(stderr, "[bench] heavy query: %s, %.2f ms single-device\n",
                 heaviest->Summary().c_str(), worst_ms);
    return *heaviest;
  }());
  return query;
}

/// Baseline: the same execution path at K=1 — identical structures (the
/// one share IS the replica) and the same fused scan kernels, just no
/// partitioning — so "vs replicated" isolates cross-partition overhead
/// instead of conflating it with the fused filter's constant advantage
/// over GsiMatcher's per-vertex scan kernels (~1.4x by itself).
double ReplicatedMs() {
  static const double ms = [] {
    gpusim::Device dev(Engine().options().device);
    gpusim::Device* devp = &dev;
    Result<PartitionedGraph> pg = PartitionedGraph::Build(
        {&devp, 1}, GetDataset("enron").graph, Engine().options(),
        HashVertexPartitioner());
    GSI_CHECK(pg.ok());
    Result<QueryResult> r = Engine().RunPartitioned(HeavyQuery(), *pg);
    GSI_CHECK(r.ok());
    return r->stats.total_ms;
  }();
  return ms;
}

void BM_Partition(benchmark::State& state, size_t num_partitions) {
  // Build once per sweep point: the partitioned structures are the
  // long-lived state under test, the query execution is the measurement.
  std::vector<std::unique_ptr<gpusim::Device>> devices;
  std::vector<gpusim::Device*> devs;
  for (size_t i = 0; i < num_partitions; ++i) {
    devices.push_back(
        std::make_unique<gpusim::Device>(Engine().options().device));
    devs.push_back(devices.back().get());
  }
  Result<PartitionedGraph> pg = PartitionedGraph::Build(
      devs, GetDataset("enron").graph, Engine().options(), Partitioner());
  GSI_CHECK_MSG(pg.ok(), pg.status().ToString().c_str());

  MaybeTraceQuery("partitioned", [&](const obs::TraceContext& ctx) {
    (void)Engine().RunPartitioned(HeavyQuery(), *pg, ctx);
  });

  QueryStats stats;
  for (auto _ : state) {
    Result<QueryResult> part = Engine().RunPartitioned(HeavyQuery(), *pg);
    GSI_CHECK(part.ok());
    stats = part->stats;
    state.SetIterationTime(std::max(1e-9, stats.total_ms / 1000.0));

    // The merged table must be bit-identical to the replicated run.
    Result<QueryResult> single = Engine().Run(HeavyQuery());
    GSI_CHECK(single.ok());
    GSI_CHECK_MSG(part->TableEquals(*single),
                  "partitioned result diverged from replicated run");
  }

  const PartitionBuildStats& bs = pg->build_stats();
  const double resident_mb = static_cast<double>(bs.max_resident_bytes()) / kMb;
  const double replicated_mb = static_cast<double>(bs.replicated_bytes) / kMb;
  const double halo_mb = static_cast<double>(stats.halo_bytes) / kMb;
  const double vs_replicated =
      stats.total_ms > 0 ? ReplicatedMs() / stats.total_ms : 0;
  state.counters["total_ms"] = stats.total_ms;
  state.counters["resident_mb_per_device"] = resident_mb;
  state.counters["remote_probes"] = static_cast<double>(stats.remote_probes);
  Table().AddRow({std::to_string(num_partitions),
                  TablePrinter::FormatMs(resident_mb),
                  TablePrinter::FormatMs(replicated_mb),
                  TablePrinter::FormatCount(bs.cut_edges),
                  TablePrinter::FormatCount(stats.remote_probes),
                  TablePrinter::FormatMs(halo_mb),
                  TablePrinter::FormatSpeedup(stats.partition_skew),
                  TablePrinter::FormatMs(stats.total_ms),
                  TablePrinter::FormatSpeedup(vs_replicated),
                  TablePrinter::FormatCount(stats.num_matches)});
  std::vector<std::pair<std::string, double>> extras = {
      {"resident_mb_per_device", resident_mb},
      {"replicated_mb", replicated_mb},
      {"memory_reduction", resident_mb > 0 ? replicated_mb / resident_mb : 0},
      {"cut_edges", static_cast<double>(bs.cut_edges)},
      {"remote_probes", static_cast<double>(stats.remote_probes)},
      {"halo_mb", halo_mb},
      {"partition_skew", stats.partition_skew},
      {"vs_replicated", vs_replicated}};

  if (HaloBudget() > 0 && num_partitions > 1) {
    // The cached leg: same graph, same query, per-device halo caches of
    // HaloBudget() bytes. Cold run fills them, warm run measures the steady
    // state; the uncached loop above is the remote-transaction baseline.
    GsiOptions budgeted = Engine().options();
    budgeted.halo_budget_bytes = HaloBudget();
    std::vector<std::unique_ptr<gpusim::Device>> cache_devices;
    std::vector<gpusim::Device*> cache_devs;
    for (size_t i = 0; i < num_partitions; ++i) {
      cache_devices.push_back(
          std::make_unique<gpusim::Device>(budgeted.device));
      cache_devs.push_back(cache_devices.back().get());
    }
    Result<PartitionedGraph> cached = PartitionedGraph::Build(
        cache_devs, GetDataset("enron").graph, budgeted, Partitioner());
    GSI_CHECK_MSG(cached.ok(), cached.status().ToString().c_str());
    Result<QueryResult> cold = ExecuteQueryPartitioned(*cached, HeavyQuery());
    GSI_CHECK(cold.ok());
    Result<QueryResult> warm = ExecuteQueryPartitioned(*cached, HeavyQuery());
    GSI_CHECK(warm.ok());
    Result<QueryResult> single = Engine().Run(HeavyQuery());
    GSI_CHECK(single.ok());
    const bool identical =
        cold->TableEquals(*single) && warm->TableEquals(*single);
    GSI_CHECK_MSG(identical, "halo-cached result diverged from replicated");

    const uint64_t baseline_tx = stats.filter.remote_transactions +
                                 stats.join.remote_transactions;
    const uint64_t warm_tx = warm->stats.filter.remote_transactions +
                             warm->stats.join.remote_transactions;
    const double hit_rate =
        warm->stats.halo_cache_hits + warm->stats.remote_probes > 0
            ? static_cast<double>(warm->stats.halo_cache_hits) /
                  static_cast<double>(warm->stats.halo_cache_hits +
                                      warm->stats.remote_probes)
            : 0;
    uint64_t cache_bytes = 0;
    for (PartitionId p = 0; p < cached->num_partitions(); ++p) {
      cache_bytes = std::max(cache_bytes,
                             cached->halo_cache(p)->resident_bytes());
    }
    extras.push_back({"halo_cache_hit_rate", hit_rate});
    extras.push_back({"saved_remote_transactions",
                      static_cast<double>(baseline_tx) -
                          static_cast<double>(warm_tx)});
    extras.push_back({"halo_cache_mb_per_device",
                      static_cast<double>(cache_bytes) / kMb});
    extras.push_back({"halo_bit_identical", identical ? 1.0 : 0.0});
    state.counters["halo_cache_hit_rate"] = hit_rate;
  }

  RecordJson(
      {"partition_scalability",
       "partitions=" + std::to_string(num_partitions) + ",partitioner=" +
           pg->partitioner_name(),
       /*qps=*/stats.total_ms > 0 ? 1000.0 / stats.total_ms : 0,
       /*p50_ms=*/stats.total_ms,
       /*p99_ms=*/stats.total_ms, std::move(extras)});
}

void RegisterAll() {
  for (size_t partitions : PartitionCounts()) {
    benchmark::RegisterBenchmark(
        ("partition/partitions=" + std::to_string(partitions)).c_str(),
        [partitions](benchmark::State& s) { BM_Partition(s, partitions); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
