// Figure 13 — "Scalability Test on WatDiv Benchmark": average query time
// of GpSM, GunrockSM, GSI and GSI-opt on a WatDiv-like series whose size
// grows linearly (the paper's watdiv10M..watdiv100M, scaled down).

#include "baselines/edge_candidates.h"
#include "bench_common.h"
#include "graph/query_generator.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Figure 13: Scalability on the WatDiv series "
      "(avg query time, ms simulated)",
      {"Dataset", "|V|", "|E|", "GpSM", "GunrockSM", "GSI", "GSI-opt"});
  return t;
}

size_t BaseVertices() {
  // 10 steps of the paper's 10M..100M, scaled by GSI_BENCH_SCALE/6 so the
  // default configuration sweeps 20K..200K vertices.
  return static_cast<size_t>(20000.0 * Env().scale / 6.0);
}

void BM_Scalability(benchmark::State& state, size_t step) {
  static auto& cache = *new std::map<size_t, Dataset>();
  auto it = cache.find(step);
  if (it == cache.end()) {
    Result<Dataset> d = MakeWatDivLike(BaseVertices() * step);
    GSI_CHECK(d.ok());
    it = cache.emplace(step, std::move(d.value())).first;
  }
  const Graph& g = it->second.graph;
  QueryGenConfig qc;
  qc.num_vertices = Env().query_vertices;
  std::vector<Graph> queries =
      GenerateQuerySet(g, qc, Env().queries, 4242);

  double gpsm_ms = 0;
  double gsm_ms = 0;
  double gsi_ms = 0;
  double opt_ms = 0;
  for (auto _ : state) {
    EdgeJoinMatcher gpsm = MakeGpsmMatcher(g);
    Aggregate a = RunQueries(gpsm, queries);
    gpsm_ms = a.ok ? a.sum_ms / a.ok : 0;

    EdgeJoinMatcher gsm = MakeGunrockSmMatcher(g);
    a = RunQueries(gsm, queries);
    gsm_ms = a.ok ? a.sum_ms / a.ok : 0;

    // GSI runs go through the concurrent batch engine (simulated per-query
    // costs are identical to sequential Find; host wall time shrinks).
    a = RunGsiBatch(g, DefaultGsiOptions(), queries);
    gsi_ms = a.ok ? a.sum_ms / a.ok : 0;

    a = RunGsiBatch(g, GsiOptOptions(), queries);
    opt_ms = a.ok ? a.sum_ms / a.ok : 0;

    state.SetIterationTime(std::max(1e-9, (gsi_ms + opt_ms) / 1000.0));
  }
  state.counters["gpsm_ms"] = gpsm_ms;
  state.counters["gunrock_ms"] = gsm_ms;
  state.counters["gsi_ms"] = gsi_ms;
  state.counters["gsi_opt_ms"] = opt_ms;
  Table().AddRow({it->second.name,
                  TablePrinter::FormatCount(g.num_vertices()),
                  TablePrinter::FormatCount(g.num_edges()),
                  TablePrinter::FormatMs(gpsm_ms),
                  TablePrinter::FormatMs(gsm_ms),
                  TablePrinter::FormatMs(gsi_ms),
                  TablePrinter::FormatMs(opt_ms)});
}

void RegisterAll() {
  for (size_t step = 1; step <= 10; ++step) {
    benchmark::RegisterBenchmark(
        ("fig13/step=" + std::to_string(step)).c_str(),
        [step](benchmark::State& s) { BM_Scalability(s, step); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
