// Figure 12 — "Performance Comparison on all datasets": average query time
// for VF3, CFL-Match (CPU wall time, clean-room reimplementations), GpSM,
// GunrockSM, GSI and GSI-opt (simulated device time) on every dataset.
// CPU baselines are cut off at a timeout like the paper's 100s bar cap.

#include "baselines/cpu_matcher.h"
#include "baselines/edge_candidates.h"
#include "bench_common.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Figure 12: Performance comparison on all datasets "
      "(avg query time, ms; CPU engines: wall time, GPU engines: simulated)",
      {"Dataset", "VF3", "CFL-Match", "GpSM", "GunrockSM", "GSI",
       "GSI-opt"});
  return t;
}

double CpuTimeoutMs() {
  const char* v = std::getenv("GSI_BENCH_CPU_TIMEOUT_MS");
  return v ? std::atof(v) : 3000.0;
}

std::string CpuCell(CpuAlgorithm algo, const Graph& g,
                    const std::vector<Graph>& queries) {
  CpuMatcherOptions opts;
  opts.timeout_ms = CpuTimeoutMs();
  double sum = 0;
  size_t ok = 0;
  bool timed_out = false;
  for (const Graph& q : queries) {
    CpuMatchResult r = RunCpuMatcher(algo, g, q, opts);
    if (r.timed_out) {
      timed_out = true;
      break;
    }
    sum += r.wall_ms;
    ++ok;
  }
  if (timed_out || ok == 0) {
    return "> " + TablePrinter::FormatMs(CpuTimeoutMs());
  }
  return TablePrinter::FormatMs(sum / static_cast<double>(ok));
}

void BM_Overall(benchmark::State& state, const std::string& dataset) {
  const Dataset& d = GetDataset(dataset);
  const auto& queries =
      GetQueries(dataset, Env().query_vertices, 0, Env().queries);

  std::string vf3;
  std::string cfl;
  double gpsm_ms = 0;
  double gsm_ms = 0;
  double gsi_ms = 0;
  double opt_ms = 0;
  for (auto _ : state) {
    vf3 = CpuCell(CpuAlgorithm::kVf2, d.graph, queries);
    cfl = CpuCell(CpuAlgorithm::kCflMatch, d.graph, queries);

    EdgeJoinMatcher gpsm = MakeGpsmMatcher(d.graph);
    Aggregate a = RunQueries(gpsm, queries);
    gpsm_ms = a.ok ? a.sum_ms / a.ok : 0;

    EdgeJoinMatcher gsm = MakeGunrockSmMatcher(d.graph);
    a = RunQueries(gsm, queries);
    gsm_ms = a.ok ? a.sum_ms / a.ok : 0;

    // GSI runs go through the concurrent batch engine (simulated per-query
    // costs are identical to sequential Find; host wall time shrinks).
    a = RunGsiBatch(d.graph, DefaultGsiOptions(), queries);
    gsi_ms = a.ok ? a.sum_ms / a.ok : 0;

    a = RunGsiBatch(d.graph, GsiOptOptions(), queries);
    opt_ms = a.ok ? a.sum_ms / a.ok : 0;

    state.SetIterationTime(std::max(1e-9, (gsi_ms + opt_ms) / 1000.0));
  }
  state.counters["gpsm_ms"] = gpsm_ms;
  state.counters["gunrock_ms"] = gsm_ms;
  state.counters["gsi_ms"] = gsi_ms;
  state.counters["gsi_opt_ms"] = opt_ms;
  Table().AddRow({dataset, vf3, cfl, TablePrinter::FormatMs(gpsm_ms),
                  TablePrinter::FormatMs(gsm_ms),
                  TablePrinter::FormatMs(gsi_ms),
                  TablePrinter::FormatMs(opt_ms)});
}

void RegisterAll() {
  for (const char* ds :
       {"enron", "gowalla", "road", "watdiv", "dbpedia"}) {
    benchmark::RegisterBenchmark(
        (std::string("fig12/") + ds).c_str(),
        [ds](benchmark::State& s) { BM_Overall(s, ds); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
