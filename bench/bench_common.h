#ifndef GSI_BENCH_BENCH_COMMON_H_
#define GSI_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/datasets.h"
#include "graph/graph.h"
#include "graph/query_generator.h"
#include "gsi/matcher.h"
#include "gsi/query_engine.h"
#include "obs/trace.h"
#include "util/table_printer.h"

namespace gsi::bench {

/// Environment-controlled knobs so benches scale to the machine:
///   GSI_BENCH_SCALE    dataset scale factor (default 6.0)
///   GSI_BENCH_QUERIES  queries per measurement (default 5; paper: 100)
///   GSI_BENCH_QSIZE    |V(Q)| (default 8; the paper's 12 at its 1000x
///                      larger scale lands in the same selectivity regime)
///   GSI_BENCH_THREADS  QueryEngine workers for GSI runs (default:
///                      min(4, hardware concurrency))
struct BenchEnv {
  double scale = 6.0;
  size_t queries = 5;
  size_t query_vertices = 8;
  size_t threads = 1;
};
const BenchEnv& Env();

/// Cached named dataset at Env().scale.
const Dataset& GetDataset(const std::string& name);

/// Cached deterministic query workload for a dataset (random-walk queries,
/// Section VII-A). `num_edges`=0 keeps walked edges only.
const std::vector<Graph>& GetQueries(const std::string& dataset_name,
                                     size_t num_vertices, size_t num_edges,
                                     size_t count);

/// Sum/average measurements over a query set for one engine run.
struct Aggregate {
  double sum_ms = 0;           // simulated device time
  double sum_filter_ms = 0;
  double sum_join_ms = 0;
  uint64_t gld = 0;            // join-phase global load transactions
  uint64_t gst = 0;            // join-phase global store transactions
  uint64_t filter_gld = 0;
  size_t matches = 0;
  size_t min_candidate_sum = 0;
  size_t ok = 0;
  size_t failed = 0;           // ResourceExhausted etc. (skipped)

  double AvgMs() const { return ok ? sum_ms / static_cast<double>(ok) : 0; }
  double AvgFilterMs() const {
    return ok ? sum_filter_ms / static_cast<double>(ok) : 0;
  }
  double AvgMinCandidate() const {
    return ok ? static_cast<double>(min_candidate_sum) /
                    static_cast<double>(ok)
              : 0;
  }
};

/// Folds one successful query into an Aggregate (shared by the sequential
/// and batch runners so the two cannot drift).
inline void AccumulateResult(Aggregate& agg, const QueryResult& r) {
  ++agg.ok;
  agg.sum_ms += r.stats.total_ms;
  agg.sum_filter_ms += r.stats.filter_ms;
  agg.sum_join_ms += r.stats.join_ms;
  agg.gld += r.stats.join.gld;
  agg.gst += r.stats.join.gst;
  agg.filter_gld += r.stats.filter.gld;
  agg.matches += r.num_matches();
  agg.min_candidate_sum += r.stats.min_candidate_size;
}

/// Runs `matcher.Find` over all queries; any engine with the QueryResult
/// interface (GsiMatcher, EdgeJoinMatcher) works.
template <typename Matcher>
Aggregate RunQueries(Matcher& matcher, const std::vector<Graph>& queries) {
  Aggregate agg;
  for (const Graph& q : queries) {
    Result<QueryResult> r = matcher.Find(q);
    if (!r.ok()) {
      ++agg.failed;
      continue;
    }
    AccumulateResult(agg, r.value());
  }
  return agg;
}

/// Folds a concurrent batch execution into the same Aggregate shape as the
/// sequential RunQueries loop (per-query simulated costs are identical; the
/// batch only changes host wall time).
Aggregate AggregateBatch(const BatchResult& batch);

/// Convenience: build a GsiMatcher over a dataset and run the workload.
Aggregate RunGsi(const std::string& dataset_name, const GsiOptions& options,
                 const std::vector<Graph>& queries);

/// Batch-engine run over a graph with Env().threads workers.
Aggregate RunGsiBatch(const Graph& g, const GsiOptions& options,
                      const std::vector<Graph>& queries);

/// One machine-readable measurement record. Benches push these via
/// RecordJson; when the binary is invoked with `--json <path>` (or
/// `--json=<path>`), BenchMain writes the collected records to that file as
/// a JSON array of {bench, config, qps, p50, p99, ...extras} objects so
/// cross-PR BENCH_*.json trajectories can accumulate. The schema is
/// documented in docs/BENCHMARKS.md.
struct JsonRecord {
  std::string bench;   ///< benchmark identity, e.g. "sharding_scalability"
  std::string config;  ///< swept configuration, e.g. "devices=4"
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  /// Bench-specific numeric fields appended verbatim to the JSON object
  /// (e.g. bench_partition_scalability's resident_mb_per_device /
  /// halo_mb). Keys must be unique and distinct from the fixed fields.
  std::vector<std::pair<std::string, double>> extras;
};

/// Queues a record for the JSON report. Safe to call whether or not --json
/// was given (records are simply dropped at exit without it).
void RecordJson(JsonRecord record);

/// True when the binary was invoked with `--trace-out <path>` (or
/// `--trace-out=<path>`) and no trace has been captured yet. Guards trace
/// setup work in benches; without the flag it is always false.
bool TraceWanted();

/// Captures one query's span tree: when TraceWanted(), runs `fn` with a
/// live TraceContext rooted at a fresh Tracer and writes the Chrome
/// trace_event JSON to the --trace-out path. First capture wins — later
/// calls return without running `fn` — so each bench's first configuration
/// produces the trace and the measured iterations stay untouched. `label`
/// names the capture in the log line.
void MaybeTraceQuery(const std::string& label,
                     const std::function<void(const obs::TraceContext&)>& fn);

/// Variant for engines that own their tracer (QueryService with
/// SubmitOptions::trace): `fn` runs the query and returns the finished
/// tracer (nullptr to skip). Same first-capture-wins rule.
void MaybeTraceQuery(
    const std::string& label,
    const std::function<std::shared_ptr<const obs::Tracer>()>& fn);

/// Collects rows during google-benchmark execution and prints the
/// paper-style table afterwards. One collector per bench binary.
class TableCollector {
 public:
  TableCollector(std::string title, std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void PrintAndClear();

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Standard main body: strip the `--json <path>` flag, initialize gbench,
/// run, print collected tables, write queued JsonRecords to the path.
int BenchMain(int argc, char** argv,
              const std::vector<TableCollector*>& tables);

}  // namespace gsi::bench

#endif  // GSI_BENCH_BENCH_COMMON_H_
