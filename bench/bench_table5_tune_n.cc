// Table V — "Tuning of N": pruning power (minimum candidate-set size on
// gowalla) as the signature width N grows from 64 to 512 bits.

#include "bench_common.h"
#include "gsi/filter.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Table V: Tuning of N (gowalla)",
      {"N (bits)", "min |C(u)| (avg)", "Filter time (ms, simulated)"});
  return t;
}

void BM_TuneN(benchmark::State& state, int nbits) {
  const Dataset& d = GetDataset("gowalla");
  const auto& queries =
      GetQueries("gowalla", Env().query_vertices, 0, Env().queries);

  gpusim::Device dev;
  FilterOptions fo;
  fo.signature_bits = nbits;
  fo.build_bitmaps = false;
  FilterContext ctx(dev, d.graph, fo);

  double min_c_sum = 0;
  double sim_ms = 0;
  for (auto _ : state) {
    min_c_sum = 0;
    gpusim::MemStats before = dev.stats();
    for (const Graph& q : queries) {
      Result<FilterResult> r = ctx.Filter(q);
      GSI_CHECK(r.ok());
      min_c_sum += static_cast<double>(r->min_candidate_size);
    }
    sim_ms = (dev.stats() - before).SimulatedMs(dev.config());
    state.SetIterationTime(sim_ms / 1000.0);
  }
  double avg = min_c_sum / static_cast<double>(queries.size());
  state.counters["min_C"] = avg;
  Table().AddRow({std::to_string(nbits),
                  TablePrinter::FormatCount(static_cast<uint64_t>(avg + 0.5)),
                  TablePrinter::FormatMs(
                      sim_ms / static_cast<double>(queries.size()))});
}

void RegisterAll() {
  for (int nbits : {64, 128, 192, 256, 320, 384, 448, 512}) {
    benchmark::RegisterBenchmark(
        ("table5/N=" + std::to_string(nbits)).c_str(),
        [nbits](benchmark::State& s) { BM_TuneN(s, nbits); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
