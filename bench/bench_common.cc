#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "util/check.h"

namespace gsi::bench {
namespace {

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : def;
}

size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  return v ? static_cast<size_t>(std::atoll(v)) : def;
}

}  // namespace

const BenchEnv& Env() {
  static const BenchEnv env = [] {
    BenchEnv e;
    e.scale = EnvDouble("GSI_BENCH_SCALE", 6.0);
    e.queries = EnvSize("GSI_BENCH_QUERIES", 5);
    e.query_vertices = EnvSize("GSI_BENCH_QSIZE", 8);
    size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
    e.threads = EnvSize("GSI_BENCH_THREADS", std::min<size_t>(4, hw));
    return e;
  }();
  return env;
}

const Dataset& GetDataset(const std::string& name) {
  static auto& cache = *new std::map<std::string, Dataset>();
  auto it = cache.find(name);
  if (it == cache.end()) {
    Result<Dataset> d = MakeDataset(name, Env().scale);
    GSI_CHECK_MSG(d.ok(), name.c_str());
    std::fprintf(stderr, "[bench] dataset %s: %s\n", name.c_str(),
                 d->graph.Summary().c_str());
    it = cache.emplace(name, std::move(d.value())).first;
  }
  return it->second;
}

const std::vector<Graph>& GetQueries(const std::string& dataset_name,
                                     size_t num_vertices, size_t num_edges,
                                     size_t count) {
  using Key = std::tuple<std::string, size_t, size_t, size_t>;
  static auto& cache = *new std::map<Key, std::vector<Graph>>();
  Key key{dataset_name, num_vertices, num_edges, count};
  auto it = cache.find(key);
  if (it == cache.end()) {
    const Dataset& d = GetDataset(dataset_name);
    QueryGenConfig qc;
    qc.num_vertices = num_vertices;
    qc.num_edges = num_edges;
    std::vector<Graph> qs = GenerateQuerySet(d.graph, qc, count,
                                             /*seed=*/4242);
    GSI_CHECK_MSG(!qs.empty(), "query generation produced nothing");
    it = cache.emplace(key, std::move(qs)).first;
  }
  return it->second;
}

Aggregate AggregateBatch(const BatchResult& batch) {
  Aggregate agg;
  agg.failed = batch.stats.failed;
  for (const Result<QueryResult>& r : batch.per_query) {
    if (r.ok()) AccumulateResult(agg, r.value());
  }
  return agg;
}

Aggregate RunGsi(const std::string& dataset_name, const GsiOptions& options,
                 const std::vector<Graph>& queries) {
  GsiMatcher matcher(GetDataset(dataset_name).graph, options);
  if (!queries.empty()) {
    // The extra traced run is invisible to the measurement: QueryResult
    // stats are per-query deltas, so only this capture carries the tracer.
    MaybeTraceQuery("gsi", [&](const obs::TraceContext& ctx) {
      (void)matcher.Find(queries.front(), ctx);
    });
  }
  return RunQueries(matcher, queries);
}

Aggregate RunGsiBatch(const Graph& g, const GsiOptions& options,
                      const std::vector<Graph>& queries) {
  QueryEngine engine(g, options);
  if (!queries.empty()) {
    MaybeTraceQuery("gsi_batch", [&](const obs::TraceContext& ctx) {
      (void)engine.Run(queries.front(), ctx);
    });
  }
  BatchOptions bo;
  bo.num_threads = static_cast<int>(Env().threads);
  return AggregateBatch(engine.RunBatch(queries, bo));
}

TableCollector::TableCollector(std::string title,
                               std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void TableCollector::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TableCollector::PrintAndClear() {
  TablePrinter p(header_);
  for (auto& r : rows_) p.AddRow(std::move(r));
  std::printf("\n");
  p.Print(title_);
  rows_.clear();
}

namespace {

std::vector<JsonRecord>& JsonRecords() {
  static auto& records = *new std::vector<JsonRecord>();
  return records;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void WriteJsonReport(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open --json path %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  const std::vector<JsonRecord>& records = JsonRecords();
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"config\": \"%s\", \"qps\": %.6g, "
                 "\"p50\": %.6g, \"p99\": %.6g",
                 JsonEscape(r.bench).c_str(), JsonEscape(r.config).c_str(),
                 r.qps, r.p50_ms, r.p99_ms);
    for (const auto& [key, value] : r.extras) {
      std::fprintf(f, ", \"%s\": %.6g", JsonEscape(key).c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %zu json records to %s\n",
               records.size(), path.c_str());
}

std::string& TracePathSlot() {
  static auto& path = *new std::string();
  return path;
}

}  // namespace

void RecordJson(JsonRecord record) {
  JsonRecords().push_back(std::move(record));
}

bool TraceWanted() { return !TracePathSlot().empty(); }

namespace {

void WriteTraceFile(const std::string& label, const obs::Tracer& tracer) {
  const std::string path = TracePathSlot();
  TracePathSlot().clear();  // First capture wins.
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open --trace-out path %s\n",
                 path.c_str());
    return;
  }
  const std::string json = tracer.ToChromeJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s trace (%zu spans) to %s\n",
               label.c_str(), tracer.Snapshot().size(), path.c_str());
}

}  // namespace

void MaybeTraceQuery(
    const std::string& label,
    const std::function<void(const obs::TraceContext&)>& fn) {
  if (!TraceWanted()) return;
  obs::Tracer tracer;
  fn(obs::TraceContext{&tracer, /*parent=*/-1, obs::kHostDevice});
  WriteTraceFile(label, tracer);
}

void MaybeTraceQuery(
    const std::string& label,
    const std::function<std::shared_ptr<const obs::Tracer>()>& fn) {
  if (!TraceWanted()) return;
  std::shared_ptr<const obs::Tracer> tracer = fn();
  if (tracer == nullptr) return;
  WriteTraceFile(label, *tracer);
}

int BenchMain(int argc, char** argv,
              const std::vector<TableCollector*>& tables) {
  // Peel off --json/--trace-out before google-benchmark sees (and rejects)
  // them.
  std::string json_path;
  std::vector<char*> args;
  args.reserve(argc);
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else if (a == "--trace-out" && i + 1 < argc) {
      TracePathSlot() = argv[++i];
    } else if (a.rfind("--trace-out=", 0) == 0) {
      TracePathSlot() = a.substr(12);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (TableCollector* t : tables) t->PrintAndClear();
  if (!json_path.empty()) WriteJsonReport(json_path);
  return 0;
}

}  // namespace gsi::bench
