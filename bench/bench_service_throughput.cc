// Service throughput: the streamed QueryService (async submit/poll over a
// bounded admission queue) vs QueryEngine::RunBatch on the same
// repeated-shape workload, plus the filter-phase saving from the
// signature-keyed FilterCache. Every mode executes the identical query
// stream, so ok-counts and match work line up; only the serving layer and
// the cache differ.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gpusim/device.h"
#include "service/query_service.h"
#include "util/check.h"
#include "util/timer.h"

namespace gsi::bench {
namespace {

/// Each query shape appears this many times in the stream — the repeats
/// are what the filter cache can serve.
constexpr size_t kRepeats = 4;

/// `--fault-rate <r>`: injected device faults per query (0 = mode off).
/// Parsed in main before google-benchmark sees the flag.
double& FaultRateSlot() {
  static double rate = 0;
  return rate;
}

/// `--page-budget <bytes>`: stream every result through FetchPage cursors
/// with this host-resident page budget (0 = unbounded pages, < 0 = mode
/// off). Parsed in main like --fault-rate.
long long& PageBudgetSlot() {
  static long long budget = -1;
  return budget;
}

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Service throughput: streamed submit/poll vs RunBatch on a "
      "repeated-shape stream (GSI-opt)",
      {"Mode", "Wall ms", "Queries/s", "ok", "Filter ms (sum)", "p50 sim ms",
       "p99 sim ms", "Cache hit rate"});
  return t;
}

const Graph& Data() { return GetDataset("enron").graph; }

const std::vector<Graph>& Stream() {
  static auto& stream = *new std::vector<Graph>([] {
    const std::vector<Graph>& base =
        GetQueries("enron", Env().query_vertices, 0, Env().queries);
    std::vector<Graph> s;
    s.reserve(base.size() * kRepeats);
    for (size_t r = 0; r < kRepeats; ++r) {
      s.insert(s.end(), base.begin(), base.end());
    }
    return s;
  }());
  return stream;
}

struct Outcome {
  double wall_ms = 0;
  double qps = 0;
  size_t ok = 0;
  double sum_filter_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double cache_hit_rate = 0;
};

void Record(benchmark::State& state, const std::string& mode,
            const Outcome& o) {
  state.counters["qps"] = o.qps;
  state.counters["sum_filter_ms"] = o.sum_filter_ms;
  Table().AddRow({mode, TablePrinter::FormatMs(o.wall_ms),
                  TablePrinter::FormatCount(static_cast<uint64_t>(o.qps)),
                  std::to_string(o.ok), TablePrinter::FormatMs(o.sum_filter_ms),
                  TablePrinter::FormatMs(o.p50_ms),
                  TablePrinter::FormatMs(o.p99_ms),
                  TablePrinter::FormatPercent(o.cache_hit_rate)});
  RecordJson({"service_throughput", mode, o.qps, o.p50_ms, o.p99_ms, {}});
}

Outcome RunViaBatch() {
  QueryEngine engine(Data(), GsiOptOptions());
  BatchOptions bo;
  bo.num_threads = static_cast<int>(Env().threads);
  BatchResult batch = engine.RunBatch(Stream(), bo);
  Outcome o;
  o.wall_ms = batch.stats.wall_ms;
  o.qps = batch.stats.ok_queries_per_sec;
  o.ok = batch.stats.ok;
  for (const Result<QueryResult>& r : batch.per_query) {
    if (r.ok()) o.sum_filter_ms += r->stats.filter_ms;
  }
  o.p50_ms = batch.stats.p50_simulated_ms;
  o.p99_ms = batch.stats.p99_simulated_ms;
  return o;
}

Outcome RunViaService(bool enable_cache) {
  ServiceOptions so;
  so.num_workers = static_cast<int>(Env().threads);
  // Throughput run: backpressure instead of shedding, so every query
  // executes and the comparison against RunBatch is apples-to-apples.
  so.overload = OverloadPolicy::kBlock;
  so.max_queue_depth = 512;
  so.enable_filter_cache = enable_cache;
  QueryService service(Data(), GsiOptOptions(), so);

  MaybeTraceQuery("service", [&]() -> std::shared_ptr<const obs::Tracer> {
    SubmitOptions submit;
    submit.trace = true;
    Result<QueryTicket> t = service.Submit(Stream().front(), submit);
    if (!t.ok()) return nullptr;
    (void)service.Wait(*t);
    return service.GetTrace(*t);
  });

  Outcome o;
  WallTimer wall;
  std::vector<QueryTicket> tickets;
  tickets.reserve(Stream().size());
  for (const Graph& q : Stream()) {
    Result<QueryTicket> t = service.Submit(q);
    GSI_CHECK(t.ok());
    tickets.push_back(*t);
  }
  for (const QueryTicket& t : tickets) {
    Result<QueryResult> r = service.Wait(t);
    if (r.ok()) {
      ++o.ok;
      o.sum_filter_ms += r->stats.filter_ms;
    }
  }
  o.wall_ms = wall.ElapsedMs();
  if (o.wall_ms > 0) {
    o.qps = static_cast<double>(o.ok) / (o.wall_ms / 1000.0);
  }
  ServiceStats stats = service.stats();
  o.p50_ms = stats.p50_simulated_ms;
  o.p99_ms = stats.p99_simulated_ms;
  o.cache_hit_rate = stats.cache.HitRate();
  return o;
}

/// Same stream as RunViaService, but with one deterministic fail_on_lease
/// fault injected every 1/rate queries (retry budget 3, one spare device).
/// Quarantined devices are repaired between waves, so the run measures the
/// steady-state cost of surviving faults: availability (ok / submitted) and
/// the retry overhead the backoff model adds to simulated latency.
Outcome RunViaFaultedService(double fault_rate) {
  const size_t period =
      std::max<size_t>(1, static_cast<size_t>(std::llround(1.0 / fault_rate)));
  ServiceOptions so;
  so.num_workers = static_cast<int>(Env().threads);
  // One spare device: with at most one quarantined device per wave, every
  // worker still finds healthy hardware and the retry always lands.
  so.num_devices = static_cast<int>(Env().threads) + 1;
  so.overload = OverloadPolicy::kBlock;
  so.max_queue_depth = 512;
  so.enable_filter_cache = false;
  so.default_max_attempts = 3;
  QueryService service(Data(), GsiOptOptions(), so);
  GSI_CHECK(service.init_status().ok());

  Outcome o;
  size_t submitted = 0;
  size_t injected = 0;
  double retry_overhead_ms = 0;
  WallTimer wall;
  const std::vector<Graph>& stream = Stream();
  for (size_t base = 0; base < stream.size(); base += period) {
    // One fault per wave, always on device 0: the pool leases low indices
    // first, so the wave's first query is guaranteed to trip the plan (a
    // plan armed on a device the wave never leases would silently carry
    // over and stack with later faults). The pool is idle between waves,
    // so the plan arms immediately rather than deferring.
    gpusim::FaultPlan plan;
    plan.fail_on_lease = true;
    plan.reason = "bench-injected fault";
    if (service.InjectDeviceFault(0, plan).ok()) ++injected;
    const size_t end = std::min(base + period, stream.size());
    std::vector<QueryTicket> tickets;
    tickets.reserve(end - base);
    for (size_t i = base; i < end; ++i) {
      Result<QueryTicket> t = service.Submit(stream[i]);
      GSI_CHECK(t.ok());
      tickets.push_back(*t);
      ++submitted;
    }
    for (const QueryTicket& t : tickets) {
      Result<QueryResult> r = service.Wait(t);
      if (r.ok()) {
        ++o.ok;
        o.sum_filter_ms += r->stats.filter_ms;
        retry_overhead_ms += r->stats.backoff_ms;
      }
    }
    for (int d = 0; d < so.num_devices; ++d) (void)service.RepairDevice(d);
  }
  o.wall_ms = wall.ElapsedMs();
  if (o.wall_ms > 0) {
    o.qps = static_cast<double>(o.ok) / (o.wall_ms / 1000.0);
  }
  ServiceStats stats = service.stats();
  o.p50_ms = stats.p50_simulated_ms;
  o.p99_ms = stats.p99_simulated_ms;

  const double availability =
      submitted > 0 ? static_cast<double>(o.ok) / static_cast<double>(submitted)
                    : 0;
  std::printf("[bench] fault-rate %.3f: %zu faults injected, availability "
              "%.4f, %llu retries (%llu failovers), %.2f ms simulated retry "
              "overhead\n",
              fault_rate, injected, availability,
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.failovers),
              retry_overhead_ms);
  RecordJson({"service_throughput", "faulted", o.qps, o.p50_ms, o.p99_ms,
              {{"fault_rate", fault_rate},
               {"availability", availability},
               {"injected_faults", static_cast<double>(injected)},
               {"retries", static_cast<double>(stats.retries)},
               {"failovers", static_cast<double>(stats.failovers)},
               {"device_failures", static_cast<double>(stats.device_failures)},
               {"retry_overhead_ms", retry_overhead_ms}}});
  return o;
}

/// Same stream, but every result is consumed through the paged cursor
/// protocol (Submit -> FetchPage loop -> CloseCursor) under `budget`
/// host-resident bytes per page, and each page is compared cell-by-cell
/// against a one-shot RunBatch reference computed before the timer starts.
/// The JSON extras carry the acceptance metrics: pages_fetched,
/// peak_result_resident_mb (largest page the host ever held) and
/// paged_bit_identical (1.0 when every page matched the reference).
Outcome RunViaPagedService(size_t budget) {
  // Reference tables for the bit-identity check, outside the timed region.
  QueryEngine engine(Data(), GsiOptOptions());
  BatchOptions bo;
  bo.num_threads = static_cast<int>(Env().threads);
  BatchResult ref = engine.RunBatch(Stream(), bo);

  ServiceOptions so;
  so.num_workers = static_cast<int>(Env().threads);
  so.overload = OverloadPolicy::kBlock;
  so.max_queue_depth = 512;
  so.enable_filter_cache = false;
  so.page_budget_bytes = budget;
  QueryService service(Data(), GsiOptOptions(), so);

  Outcome o;
  bool identical = true;
  WallTimer wall;
  std::vector<QueryTicket> tickets;
  tickets.reserve(Stream().size());
  for (const Graph& q : Stream()) {
    Result<QueryTicket> t = service.Submit(q);
    GSI_CHECK(t.ok());
    tickets.push_back(*t);
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    const MatchTable* expect =
        ref.per_query[i].ok() ? &ref.per_query[i]->table : nullptr;
    bool query_ok = true;
    for (;;) {
      Result<ResultPage> page = service.FetchPage(tickets[i]);
      if (!page.ok()) {
        query_ok = false;
        break;
      }
      if (expect != nullptr) {
        for (size_t r = 0; r < page->num_rows && identical; ++r) {
          for (size_t c = 0; c < page->cols; ++c) {
            identical = identical && page->rows[r * page->cols + c] ==
                                         expect->At(page->row_begin + r, c);
          }
        }
      }
      if (page->done) {
        identical = identical &&
                    (expect == nullptr ||
                     page->row_begin + page->num_rows == expect->rows());
        break;
      }
    }
    if (query_ok) ++o.ok;
    GSI_CHECK(service.CloseCursor(tickets[i]).ok());
  }
  o.wall_ms = wall.ElapsedMs();
  if (o.wall_ms > 0) {
    o.qps = static_cast<double>(o.ok) / (o.wall_ms / 1000.0);
  }
  ServiceStats stats = service.stats();
  o.p50_ms = stats.p50_simulated_ms;
  o.p99_ms = stats.p99_simulated_ms;

  const double peak_resident_mb =
      static_cast<double>(stats.peak_page_bytes) / (1024.0 * 1024.0);
  std::printf("[bench] page-budget %zu B: %llu pages over %zu queries, peak "
              "page %zu B (%.4f MB), bit-identical %s\n",
              budget, static_cast<unsigned long long>(stats.result_pages),
              tickets.size(), stats.peak_page_bytes, peak_resident_mb,
              identical ? "yes" : "NO");
  RecordJson({"service_throughput", "paged", o.qps, o.p50_ms, o.p99_ms,
              {{"page_budget_bytes", static_cast<double>(budget)},
               {"pages_fetched", static_cast<double>(stats.result_pages)},
               {"peak_result_resident_mb", peak_resident_mb},
               {"peak_page_bytes", static_cast<double>(stats.peak_page_bytes)},
               {"cursor_rebuilds", static_cast<double>(stats.cursor_rebuilds)},
               {"paged_bit_identical", identical ? 1.0 : 0.0}}});
  return o;
}

void BM_RunBatch(benchmark::State& state) {
  Outcome o;
  for (auto _ : state) {
    o = RunViaBatch();
    state.SetIterationTime(std::max(1e-9, o.wall_ms / 1000.0));
  }
  Record(state, "RunBatch", o);
}

void BM_ServiceStreamed(benchmark::State& state) {
  Outcome o;
  for (auto _ : state) {
    o = RunViaService(/*enable_cache=*/false);
    state.SetIterationTime(std::max(1e-9, o.wall_ms / 1000.0));
  }
  Record(state, "Service (cache off)", o);
}

void BM_ServiceCached(benchmark::State& state) {
  Outcome cold;
  Outcome warm;
  for (auto _ : state) {
    cold = RunViaService(/*enable_cache=*/false);
    warm = RunViaService(/*enable_cache=*/true);
    state.SetIterationTime(std::max(1e-9, warm.wall_ms / 1000.0));
  }
  state.counters["filter_speedup"] =
      warm.sum_filter_ms > 0 ? cold.sum_filter_ms / warm.sum_filter_ms : 0;
  Record(state, "Service (cache on)", warm);
}

void BM_ServiceFaulted(benchmark::State& state) {
  Outcome o;
  for (auto _ : state) {
    o = RunViaFaultedService(FaultRateSlot());
    state.SetIterationTime(std::max(1e-9, o.wall_ms / 1000.0));
  }
  // RunViaFaultedService records its own JSON entry (with the availability
  // and retry-overhead extras); only the table row is added here.
  state.counters["qps"] = o.qps;
  Table().AddRow({"Service (faults)", TablePrinter::FormatMs(o.wall_ms),
                  TablePrinter::FormatCount(static_cast<uint64_t>(o.qps)),
                  std::to_string(o.ok), TablePrinter::FormatMs(o.sum_filter_ms),
                  TablePrinter::FormatMs(o.p50_ms),
                  TablePrinter::FormatMs(o.p99_ms), "-"});
}

void BM_ServicePaged(benchmark::State& state) {
  Outcome o;
  for (auto _ : state) {
    o = RunViaPagedService(static_cast<size_t>(PageBudgetSlot()));
    state.SetIterationTime(std::max(1e-9, o.wall_ms / 1000.0));
  }
  // RunViaPagedService records its own JSON entry (with the paging
  // extras); only the table row is added here.
  state.counters["qps"] = o.qps;
  Table().AddRow({"Service (paged)", TablePrinter::FormatMs(o.wall_ms),
                  TablePrinter::FormatCount(static_cast<uint64_t>(o.qps)),
                  std::to_string(o.ok), TablePrinter::FormatMs(o.sum_filter_ms),
                  TablePrinter::FormatMs(o.p50_ms),
                  TablePrinter::FormatMs(o.p99_ms), "-"});
}

void RegisterAll() {
  for (auto [name, fn] :
       {std::pair{"service_throughput/run_batch", &BM_RunBatch},
        std::pair{"service_throughput/service_stream", &BM_ServiceStreamed},
        std::pair{"service_throughput/service_cached", &BM_ServiceCached}}) {
    benchmark::RegisterBenchmark(name, fn)
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  if (FaultRateSlot() > 0) {
    benchmark::RegisterBenchmark("service_throughput/service_faulted",
                                 &BM_ServiceFaulted)
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  if (PageBudgetSlot() >= 0) {
    benchmark::RegisterBenchmark("service_throughput/service_paged",
                                 &BM_ServicePaged)
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  // Peel off --fault-rate before google-benchmark (via BenchMain) sees it.
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fault-rate" && i + 1 < argc) {
      gsi::bench::FaultRateSlot() = std::atof(argv[++i]);
    } else if (a.rfind("--fault-rate=", 0) == 0) {
      gsi::bench::FaultRateSlot() = std::atof(a.substr(13).c_str());
    } else if (a == "--page-budget" && i + 1 < argc) {
      gsi::bench::PageBudgetSlot() = std::atoll(argv[++i]);
    } else if (a.rfind("--page-budget=", 0) == 0) {
      gsi::bench::PageBudgetSlot() = std::atoll(a.substr(14).c_str());
    } else {
      args.push_back(argv[i]);
    }
  }
  GSI_CHECK_MSG(
      gsi::bench::FaultRateSlot() >= 0 && gsi::bench::FaultRateSlot() <= 1,
      "--fault-rate must be in [0, 1]");
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(static_cast<int>(args.size()), args.data(),
                               {&gsi::bench::Table()});
}
