// Table IX — "Tuning of W1": join time on enron as the layer-1 threshold
// of the load-balance scheme sweeps 2048..6144 (W3 fixed at 256).

#include "bench_common.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Table IX: Tuning of W1 (enron, W3=256; sweep extended below the "
      "paper's 2048..6144 because at this scale no row exceeds 2048)",
      {"W1", "Join time (ms, simulated)"});
  return t;
}

void BM_TuneW1(benchmark::State& state, uint32_t w1) {
  const auto& queries =
      GetQueries("enron", Env().query_vertices, 0, Env().queries);
  GsiOptions o = GsiOptOptions();
  o.join.w1 = w1;
  o.join.w3 = 256;

  Aggregate agg;
  for (auto _ : state) {
    agg = RunGsi("enron", o, queries);
    state.SetIterationTime(std::max(1e-9, agg.sum_join_ms / 1000.0));
  }
  double ms = agg.ok ? agg.sum_join_ms / agg.ok : 0;
  state.counters["join_ms"] = ms;
  Table().AddRow({std::to_string(w1), TablePrinter::FormatMs(ms)});
}

void RegisterAll() {
  for (uint32_t w1 : {1088u, 1536u, 2048u, 4096u, 6144u}) {
    benchmark::RegisterBenchmark(
        ("table9/W1=" + std::to_string(w1)).c_str(),
        [w1](benchmark::State& s) { BM_TuneW1(s, w1); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
