// Table X — "Tuning of W3": join time on enron as the intra-block chunk
// granularity sweeps 192..320 (W1 fixed at 4096).

#include "bench_common.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Table X: Tuning of W3 (enron, W1=4096)",
      {"W3", "Join time (ms, simulated)"});
  return t;
}

void BM_TuneW3(benchmark::State& state, uint32_t w3) {
  const auto& queries =
      GetQueries("enron", Env().query_vertices, 0, Env().queries);
  GsiOptions o = GsiOptOptions();
  o.join.w1 = 4096;
  o.join.w3 = w3;

  Aggregate agg;
  for (auto _ : state) {
    agg = RunGsi("enron", o, queries);
    state.SetIterationTime(std::max(1e-9, agg.sum_join_ms / 1000.0));
  }
  double ms = agg.ok ? agg.sum_join_ms / agg.ok : 0;
  state.counters["join_ms"] = ms;
  Table().AddRow({std::to_string(w3), TablePrinter::FormatMs(ms)});
}

void RegisterAll() {
  for (uint32_t w3 : {192u, 224u, 256u, 288u, 320u}) {
    benchmark::RegisterBenchmark(
        ("table10/W3=" + std::to_string(w3)).c_str(),
        [w3](benchmark::State& s) { BM_TuneW3(s, w3); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
