// Table XI — "Performance of duplicate removal method": join-phase GLD and
// query time with duplicates vs with in-block duplicate removal (on GSI
// with load balance, as in the paper's "+DR over +LB" comparison).

#include "bench_common.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Table XI: Performance of duplicate removal method",
      {"Dataset", "GLD with dups", "GLD removal", "GLD drop",
       "Time with dups (ms)", "Time removal (ms)", "Time drop"});
  return t;
}

void BM_DupRemoval(benchmark::State& state, const std::string& dataset) {
  const auto& queries =
      GetQueries(dataset, Env().query_vertices, 0, Env().queries);
  GsiOptions with_dups = DefaultGsiOptions();
  with_dups.join.load_balance = true;
  GsiOptions removal = with_dups;
  removal.join.duplicate_removal = true;

  Aggregate a_dups;
  Aggregate a_rm;
  for (auto _ : state) {
    a_dups = RunGsi(dataset, with_dups, queries);
    a_rm = RunGsi(dataset, removal, queries);
    state.SetIterationTime(std::max(
        1e-9, (a_dups.sum_join_ms + a_rm.sum_join_ms) / 1000.0));
  }
  double ms0 = a_dups.ok ? a_dups.sum_join_ms / a_dups.ok : 0;
  double ms1 = a_rm.ok ? a_rm.sum_join_ms / a_rm.ok : 0;
  state.counters["gld_dups"] = static_cast<double>(a_dups.gld);
  state.counters["gld_removal"] = static_cast<double>(a_rm.gld);
  double gld_drop = a_dups.gld
                        ? 1.0 - static_cast<double>(a_rm.gld) /
                                    static_cast<double>(a_dups.gld)
                        : 0.0;
  double t_drop = ms0 > 0 ? 1.0 - ms1 / ms0 : 0.0;
  Table().AddRow({dataset, TablePrinter::FormatCount(a_dups.gld),
                  TablePrinter::FormatCount(a_rm.gld),
                  TablePrinter::FormatPercent(gld_drop),
                  TablePrinter::FormatMs(ms0), TablePrinter::FormatMs(ms1),
                  TablePrinter::FormatPercent(t_drop)});
}

void RegisterAll() {
  for (const char* ds :
       {"enron", "gowalla", "road", "watdiv", "dbpedia"}) {
    benchmark::RegisterBenchmark(
        (std::string("table11/") + ds).c_str(),
        [ds](benchmark::State& s) { BM_DupRemoval(s, ds); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
