// Table IV — "Performance of different filtering strategies": minimum
// candidate-set size and filtering time for the GpSM, GunrockSM and GSI
// filters on every dataset.

#include "bench_common.h"
#include "gsi/filter.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Table IV: Performance of different filtering strategies",
      {"Dataset", "Strategy", "min |C(u)| (avg)", "Time (ms, simulated)"});
  return t;
}

struct StrategyCase {
  const char* name;
  FilterStrategy strategy;
};

constexpr StrategyCase kStrategies[] = {
    {"GpSM", FilterStrategy::kLabelDegreeNeighbor},
    {"GunrockSM", FilterStrategy::kLabelDegree},
    {"GSI", FilterStrategy::kSignature},
};

void BM_Filtering(benchmark::State& state, const std::string& dataset,
                  const StrategyCase& sc) {
  const Dataset& d = GetDataset(dataset);
  const auto& queries =
      GetQueries(dataset, Env().query_vertices, 0, Env().queries);

  gpusim::Device dev;
  FilterOptions fo;
  fo.strategy = sc.strategy;
  fo.build_bitmaps = false;
  FilterContext ctx(dev, d.graph, fo);

  double min_c_sum = 0;
  double sim_ms = 0;
  for (auto _ : state) {
    min_c_sum = 0;
    gpusim::MemStats before = dev.stats();
    for (const Graph& q : queries) {
      Result<FilterResult> r = ctx.Filter(q);
      GSI_CHECK(r.ok());
      min_c_sum += static_cast<double>(r->min_candidate_size);
    }
    sim_ms = (dev.stats() - before).SimulatedMs(dev.config());
    state.SetIterationTime(sim_ms / 1000.0);
  }
  double avg_min_c = min_c_sum / static_cast<double>(queries.size());
  double avg_ms = sim_ms / static_cast<double>(queries.size());
  state.counters["min_C"] = avg_min_c;
  state.counters["sim_ms"] = avg_ms;
  Table().AddRow({dataset, sc.name,
                  TablePrinter::FormatCount(
                      static_cast<uint64_t>(avg_min_c + 0.5)),
                  TablePrinter::FormatMs(avg_ms)});
}

void RegisterAll() {
  for (const char* ds :
       {"enron", "gowalla", "road", "watdiv", "dbpedia"}) {
    for (const StrategyCase& sc : kStrategies) {
      benchmark::RegisterBenchmark(
          (std::string("table4/") + ds + "/" + sc.name).c_str(),
          [ds, &sc](benchmark::State& s) { BM_Filtering(s, ds, sc); })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
