// Figure 14 — "Vary the number of vertex and edge labels": GSI-opt query
// time on a gowalla-like graph as |L_V| (then |L_E|) sweeps, the other
// alphabet held at its default.

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/labeler.h"
#include "graph/query_generator.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Figure 14: Vary the number of vertex and edge labels "
      "(gowalla-like, GSI-opt, avg ms simulated)",
      {"Varying", "Label count", "Query time (ms)"});
  return t;
}

Graph MakeGowallaLike(size_t num_vlabels, size_t num_elabels) {
  size_t n = static_cast<size_t>(25000 * Env().scale);
  Rng rng(103);
  std::vector<RawEdge> edges = GenerateScaleFree(n, 8, rng);
  LabelConfig lc;
  lc.num_vertex_labels = num_vlabels;
  lc.num_edge_labels = num_elabels;
  lc.seed = 13;
  Result<Graph> g = AssignLabels(n, edges, lc);
  GSI_CHECK(g.ok());
  return std::move(g.value());
}

void BM_VaryLabels(benchmark::State& state, bool vary_vertex,
                   size_t count) {
  // Default alphabets follow the benchmark dataset (LV=50, LE=10 at this
  // scale); the paper's default was 100/100 at 8x larger size.
  Graph g = vary_vertex ? MakeGowallaLike(count, 10)
                        : MakeGowallaLike(50, count);
  QueryGenConfig qc;
  qc.num_vertices = Env().query_vertices;
  std::vector<Graph> queries =
      GenerateQuerySet(g, qc, Env().queries, 4242);

  double ms = 0;
  for (auto _ : state) {
    GsiMatcher m(g, GsiOptOptions());
    Aggregate a = RunQueries(m, queries);
    ms = a.ok ? a.sum_ms / a.ok : 0;
    state.SetIterationTime(std::max(1e-9, ms / 1000.0));
  }
  state.counters["ms"] = ms;
  Table().AddRow({vary_vertex ? "vertex labels" : "edge labels",
                  std::to_string(count), TablePrinter::FormatMs(ms)});
}

void RegisterAll() {
  for (size_t c : {5, 10, 20, 40, 80}) {
    benchmark::RegisterBenchmark(
        ("fig14/LV=" + std::to_string(c)).c_str(),
        [c](benchmark::State& s) { BM_VaryLabels(s, true, c); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (size_t c : {2, 5, 10, 20, 40}) {
    benchmark::RegisterBenchmark(
        ("fig14/LE=" + std::to_string(c)).c_str(),
        [c](benchmark::State& s) { BM_VaryLabels(s, false, c); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
