// Table VII — "Performance of write cache": global-memory store
// transactions (GST) and query response time with and without the 128B
// per-warp write cache, on the full GSI configuration.

#include "bench_common.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Table VII: Performance of write cache",
      {"Dataset", "GST no cache", "GST write cache", "GST drop",
       "Time no cache (ms)", "Time cache (ms)", "Time drop"});
  return t;
}

void BM_WriteCache(benchmark::State& state, const std::string& dataset) {
  const auto& queries =
      GetQueries(dataset, Env().query_vertices, 0, Env().queries);
  GsiOptions with = DefaultGsiOptions();
  with.join.write_cache = true;
  GsiOptions without = DefaultGsiOptions();
  without.join.write_cache = false;

  Aggregate agg_without;
  Aggregate agg_with;
  for (auto _ : state) {
    agg_without = RunGsi(dataset, without, queries);
    agg_with = RunGsi(dataset, with, queries);
    state.SetIterationTime(
        std::max(1e-9, (agg_with.sum_join_ms + agg_without.sum_join_ms) /
                           1000.0));
  }
  double ms_nc = agg_without.ok ? agg_without.sum_join_ms / agg_without.ok
                                : 0;
  double ms_wc = agg_with.ok ? agg_with.sum_join_ms / agg_with.ok : 0;
  state.counters["gst_nocache"] = static_cast<double>(agg_without.gst);
  state.counters["gst_cache"] = static_cast<double>(agg_with.gst);
  double gst_drop =
      agg_without.gst
          ? 1.0 - static_cast<double>(agg_with.gst) /
                      static_cast<double>(agg_without.gst)
          : 0.0;
  double t_drop = ms_nc > 0 ? 1.0 - ms_wc / ms_nc : 0.0;
  Table().AddRow({dataset, TablePrinter::FormatCount(agg_without.gst),
                  TablePrinter::FormatCount(agg_with.gst),
                  TablePrinter::FormatPercent(gst_drop),
                  TablePrinter::FormatMs(ms_nc),
                  TablePrinter::FormatMs(ms_wc),
                  TablePrinter::FormatPercent(t_drop)});
}

void RegisterAll() {
  for (const char* ds :
       {"enron", "gowalla", "road", "watdiv", "dbpedia"}) {
    benchmark::RegisterBenchmark(
        (std::string("table7/") + ds).c_str(),
        [ds](benchmark::State& s) { BM_WriteCache(s, ds); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
