// Replication scalability (the concurrency knob on top of the partitioned
// data graph): each of K partitions stored on R of the K pool devices
// (staggered placement, gsi/replication.h), so a partitioned query leases
// one replica of each — K/R devices — instead of the whole pool, and R
// queries run concurrently. Sweeps R at fixed K and reports, per sweep
// point, the concurrent partitioned-query throughput (both the modeled
// R-lane simulated rate and the measured wall rate of a saturated
// QueryService), the per-device resident cost replication buys it with
// (~R/K of the replica), and the interconnect traffic co-located replicas
// absorb (remote probes served locally). The match table is checked
// bit-identical against single-device execution at every sweep point, for
// both a packed and a rotated replica selection.
//
// Knobs: GSI_BENCH_REPLICAS="1 2 4" (replication factors, each <= K),
// GSI_BENCH_REPL_PARTITIONS=4 (K: partitions == pool devices),
// GSI_BENCH_REPL_QUERIES=12 (queries per concurrent measurement),
// GSI_BENCH_HALO_BUDGET=<bytes> (per-device halo-cache budget; > 0 adds a
// cached leg per sweep point with halo_cache_hit_rate /
// saved_remote_transactions / halo_cache_mb_per_device extras — a no-op at
// R == K, where every probe is co-resident and the cache sees nothing),
// plus the usual GSI_BENCH_SCALE / GSI_BENCH_QUERIES / GSI_BENCH_QSIZE.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gsi/replication.h"
#include "service/query_service.h"
#include "util/check.h"
#include "util/timer.h"

namespace gsi::bench {
namespace {

constexpr double kMb = 1024.0 * 1024.0;

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Replication scalability: K partitions x R replicas over K devices "
      "(GSI-opt; QPS from concurrent partitioned queries)",
      {"Replicas", "Lanes", "Resident/dev MB", "Mem cost", "Sim ms/query",
       "QPS (sim lanes)", "QPS (wall)", "Remote probes", "Co-located",
       "Pick skew", "Matches"});
  return t;
}

size_t Partitions() {
  static const size_t k = [] {
    const char* env = std::getenv("GSI_BENCH_REPL_PARTITIONS");
    const long v = env != nullptr ? std::atol(env) : 0;
    return v > 0 ? static_cast<size_t>(v) : size_t{4};
  }();
  return k;
}

std::vector<size_t> ReplicaCounts() {
  static auto& counts = *new std::vector<size_t>([] {
    std::vector<size_t> out;
    const char* env = std::getenv("GSI_BENCH_REPLICAS");
    std::stringstream ss(env != nullptr ? env : "1 2 4");
    size_t v = 0;
    while (ss >> v) {
      if (v > 0 && v <= Partitions()) out.push_back(v);
    }
    if (out.empty()) out = {1};
    return out;
  }());
  return counts;
}

size_t ConcurrentQueries() {
  static const size_t n = [] {
    const char* env = std::getenv("GSI_BENCH_REPL_QUERIES");
    const long v = env != nullptr ? std::atol(env) : 0;
    return v > 0 ? static_cast<size_t>(v) : size_t{12};
  }();
  return n;
}

const QueryEngine& Engine() {
  static auto& engine =
      *new QueryEngine(GetDataset("enron").graph, GsiOptOptions());
  return engine;
}

/// Per-device halo-cache budget in bytes; 0 (the default) skips the leg.
uint64_t HaloBudget() {
  static const uint64_t budget = [] {
    const char* env = std::getenv("GSI_BENCH_HALO_BUDGET");
    return env != nullptr ? std::strtoull(env, nullptr, 10) : uint64_t{0};
  }();
  return budget;
}

/// The heaviest query of the generated workload (max single-device
/// simulated time) — replication's lane effect shows clearest where one
/// query occupies its lease longest.
const Graph& HeavyQuery() {
  static auto& query = *new Graph([] {
    const std::vector<Graph>& all =
        GetQueries("enron", Env().query_vertices, 0, Env().queries);
    const Graph* heaviest = nullptr;
    double worst_ms = -1;
    for (const Graph& q : all) {
      Result<QueryResult> r = Engine().Run(q);
      if (!r.ok()) continue;
      if (r->stats.total_ms > worst_ms) {
        worst_ms = r->stats.total_ms;
        heaviest = &q;
      }
    }
    GSI_CHECK_MSG(heaviest != nullptr, "no query executed successfully");
    std::fprintf(stderr, "[bench] heavy query: %s, %.2f ms single-device\n",
                 heaviest->Summary().c_str(), worst_ms);
    return *heaviest;
  }());
  return query;
}

/// The selection serving every partition from replica j (j=1 rotates every
/// partition onto a different device than the packed pick).
ReplicaSelection UniformSelection(const ReplicatedGraph& rg, uint32_t j) {
  ReplicaSelection sel;
  sel.choice.assign(rg.num_partitions(), j);
  return sel;
}

void BM_Replication(benchmark::State& state, size_t replicas) {
  const size_t k = Partitions();
  // Build once per sweep point: the replicated structures are the
  // long-lived state under test.
  std::vector<std::unique_ptr<gpusim::Device>> devices;
  std::vector<gpusim::Device*> devs;
  for (size_t i = 0; i < k; ++i) {
    devices.push_back(
        std::make_unique<gpusim::Device>(Engine().options().device));
    devs.push_back(devices.back().get());
  }
  Result<ReplicatedGraph> rg =
      ReplicatedGraph::Build(devs, GetDataset("enron").graph,
                             Engine().options(), HashVertexPartitioner(),
                             /*partitions=*/k, replicas);
  GSI_CHECK_MSG(rg.ok(), rg.status().ToString().c_str());

  Result<QueryResult> single = Engine().Run(HeavyQuery());
  GSI_CHECK(single.ok());

  const ReplicaSelection packed = CompactSelection(*rg);
  MaybeTraceQuery("replicated", [&](const obs::TraceContext& ctx) {
    (void)Engine().RunPartitioned(HeavyQuery(), *rg, packed, ctx);
  });
  size_t lane_width = 0;
  {
    std::vector<uint8_t> used(k, 0);
    for (PartitionId p = 0; p < k; ++p) {
      used[packed.DeviceOf(rg->placement(), p)] = 1;
    }
    for (uint8_t u : used) lane_width += u;
  }
  const size_t lanes = k / lane_width;

  QueryStats stats;
  double wall_qps = 0;
  ServiceStats service_stats;
  for (auto _ : state) {
    // One packed-selection execution: the per-query simulated latency and
    // traffic of a lane.
    Result<QueryResult> repl =
        Engine().RunPartitioned(HeavyQuery(), *rg, packed);
    GSI_CHECK(repl.ok());
    stats = repl->stats;
    state.SetIterationTime(std::max(1e-9, stats.total_ms / 1000.0));

    // Results must be bit-identical to the single-device run regardless of
    // which replica serves each partition.
    GSI_CHECK_MSG(repl->TableEquals(*single),
                  "packed replica selection diverged from replicated run");
    Result<QueryResult> rotated = Engine().RunPartitioned(
        HeavyQuery(), *rg, UniformSelection(*rg, replicas - 1));
    GSI_CHECK(rotated.ok());
    GSI_CHECK_MSG(rotated->TableEquals(*single),
                  "rotated replica selection diverged from replicated run");

    // Measured concurrency: a saturated QueryService over a K-device pool
    // with R-way replicated partitions (R == 1 serializes on AcquireAll —
    // the baseline the lanes are bought against).
    ServiceOptions so;
    so.num_workers = static_cast<int>(k);
    so.num_devices = static_cast<int>(k);
    so.partition_data_graph = true;
    so.partition_replicas = static_cast<int>(replicas);
    so.overload = OverloadPolicy::kBlock;
    so.max_queue_depth = 2 * ConcurrentQueries();
    QueryService service(GetDataset("enron").graph, Engine().options(), so);
    GSI_CHECK_MSG(service.init_status().ok(),
                  service.init_status().ToString().c_str());
    WallTimer wall;
    std::vector<QueryTicket> tickets;
    for (size_t i = 0; i < ConcurrentQueries(); ++i) {
      Result<QueryTicket> t = service.Submit(HeavyQuery());
      GSI_CHECK(t.ok());
      tickets.push_back(*t);
    }
    for (const QueryTicket& t : tickets) {
      Result<QueryResult> r = service.Wait(t);
      GSI_CHECK(r.ok());
      GSI_CHECK_MSG(r->TableEquals(*single),
                    "service replica execution diverged");
    }
    const double wall_ms = wall.ElapsedMs();
    wall_qps = wall_ms > 0 ? static_cast<double>(ConcurrentQueries()) /
                                 (wall_ms / 1000.0)
                           : 0;
    service_stats = service.stats();
  }

  const ReplicationBuildStats& bs = rg->build_stats();
  const double resident_mb =
      static_cast<double>(bs.max_resident_bytes()) / kMb;
  const double replicated_mb = static_cast<double>(bs.replicated_bytes) / kMb;
  // Resident cost relative to an unreplicated 1/K share (~R).
  const double mem_cost =
      replicated_mb > 0 ? resident_mb / (replicated_mb / k) : 0;
  // The lane model: `lanes` disjoint selections execute concurrently, each
  // at the packed selection's simulated latency.
  const double qps_sim =
      stats.total_ms > 0 ? lanes * 1000.0 / stats.total_ms : 0;
  const double halo_mb = static_cast<double>(stats.halo_bytes) / kMb;

  std::vector<std::pair<std::string, double>> extras = {
      {"concurrent_qps", qps_sim},
      {"wall_qps", wall_qps},
      {"lanes", static_cast<double>(lanes)},
      {"lane_width_devices", static_cast<double>(lane_width)},
      {"sim_latency_ms", stats.total_ms},
      {"resident_mb_per_device", resident_mb},
      {"replicated_mb", replicated_mb},
      {"memory_cost_vs_share", mem_cost},
      {"remote_probes", static_cast<double>(stats.remote_probes)},
      {"co_located_probes", static_cast<double>(stats.co_located_probes)},
      {"halo_mb", halo_mb},
      {"replica_pick_skew", service_stats.replica_pick_skew},
      {"avg_replica_lanes", service_stats.avg_replica_lanes},
      {"bit_identical", 1.0}};

  if (HaloBudget() > 0 && replicas < k) {
    // The cached leg: the same replicated layout with per-device halo
    // caches of HaloBudget() bytes. Cold run fills them, warm run measures
    // the steady state; the uncached loop above is the remote-transaction
    // baseline. Skipped at R == K: every probe is then co-resident, so the
    // cache by design admits nothing.
    GsiOptions budgeted = Engine().options();
    budgeted.halo_budget_bytes = HaloBudget();
    std::vector<std::unique_ptr<gpusim::Device>> cache_devices;
    std::vector<gpusim::Device*> cache_devs;
    for (size_t i = 0; i < k; ++i) {
      cache_devices.push_back(
          std::make_unique<gpusim::Device>(budgeted.device));
      cache_devs.push_back(cache_devices.back().get());
    }
    Result<ReplicatedGraph> cached = ReplicatedGraph::Build(
        cache_devs, GetDataset("enron").graph, budgeted,
        HashVertexPartitioner(), /*partitions=*/k, replicas);
    GSI_CHECK_MSG(cached.ok(), cached.status().ToString().c_str());
    const ReplicaSelection cached_packed = CompactSelection(*cached);
    Result<QueryResult> cold =
        ExecuteQueryReplicated(*cached, cached_packed, HeavyQuery());
    GSI_CHECK(cold.ok());
    Result<QueryResult> warm =
        ExecuteQueryReplicated(*cached, cached_packed, HeavyQuery());
    GSI_CHECK(warm.ok());
    const bool identical =
        cold->TableEquals(*single) && warm->TableEquals(*single);
    GSI_CHECK_MSG(identical, "halo-cached result diverged from replicated");

    const uint64_t baseline_tx = stats.filter.remote_transactions +
                                 stats.join.remote_transactions;
    const uint64_t warm_tx = warm->stats.filter.remote_transactions +
                             warm->stats.join.remote_transactions;
    const double hit_rate =
        warm->stats.halo_cache_hits + warm->stats.remote_probes > 0
            ? static_cast<double>(warm->stats.halo_cache_hits) /
                  static_cast<double>(warm->stats.halo_cache_hits +
                                      warm->stats.remote_probes)
            : 0;
    uint64_t cache_bytes = 0;
    for (size_t d = 0; d < cache_devs.size(); ++d) {
      cache_bytes =
          std::max(cache_bytes, cached->halo_cache(d)->resident_bytes());
    }
    extras.push_back({"halo_cache_hit_rate", hit_rate});
    extras.push_back({"saved_remote_transactions",
                      static_cast<double>(baseline_tx) -
                          static_cast<double>(warm_tx)});
    extras.push_back({"halo_cache_mb_per_device",
                      static_cast<double>(cache_bytes) / kMb});
    extras.push_back({"halo_bit_identical", identical ? 1.0 : 0.0});
    state.counters["halo_cache_hit_rate"] = hit_rate;
  }

  state.counters["concurrent_qps"] = qps_sim;
  state.counters["wall_qps"] = wall_qps;
  state.counters["resident_mb_per_device"] = resident_mb;
  Table().AddRow(
      {std::to_string(replicas), std::to_string(lanes),
       TablePrinter::FormatMs(resident_mb),
       TablePrinter::FormatSpeedup(mem_cost),
       TablePrinter::FormatMs(stats.total_ms),
       TablePrinter::FormatMs(qps_sim), TablePrinter::FormatMs(wall_qps),
       TablePrinter::FormatCount(stats.remote_probes),
       TablePrinter::FormatCount(stats.co_located_probes),
       TablePrinter::FormatSpeedup(service_stats.replica_pick_skew),
       TablePrinter::FormatCount(stats.num_matches)});
  RecordJson(
      {"replication_scalability",
       "partitions=" + std::to_string(k) +
           ",replicas=" + std::to_string(replicas),
       /*qps=*/qps_sim,
       /*p50_ms=*/stats.total_ms,
       /*p99_ms=*/stats.total_ms, std::move(extras)});
}

void RegisterAll() {
  for (size_t replicas : ReplicaCounts()) {
    benchmark::RegisterBenchmark(
        ("replication/replicas=" + std::to_string(replicas)).c_str(),
        [replicas](benchmark::State& s) { BM_Replication(s, replicas); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
