// Figure 15 — "Vary the number of edges and vertices in Q": GSI-opt query
// time on a gowalla-like graph while (a) |V(Q)| is fixed and |E(Q)| grows,
// and (b) |E(Q)| = 2|V(Q)| and |V(Q)| grows.
//
// The |E(Q)| sweep needs queries denser than trees, so the data graph
// carries planted near-clique communities (real gowalla is strongly
// clustered; plain preferential attachment is not) and walks start inside
// them.

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/labeler.h"
#include "graph/query_generator.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Figure 15: Vary query size (gowalla-like with communities, GSI-opt, "
      "avg ms simulated)",
      {"Sweep", "|V(Q)|", "|E(Q)| target", "|E(Q)| achieved (avg)",
       "Query time (ms)"});
  return t;
}

struct CommunityGraph {
  Graph graph;
  std::vector<VertexId> seeds;
};

const CommunityGraph& GetGraph() {
  static auto& cg = *new CommunityGraph([] {
    size_t n = static_cast<size_t>(25000 * Env().scale);
    Rng rng(103);
    std::vector<RawEdge> edges =
        GenerateScaleFree(n, 8, rng, /*num_hubs=*/3, /*hub_fraction=*/0.07,
                          /*triad_probability=*/0.35);
    std::vector<VertexId> seeds =
        PlantCommunities(n, /*count=*/n / 1000, /*size=*/32, edges, rng);
    LabelConfig lc;
    lc.num_vertex_labels = 50;
    lc.num_edge_labels = 10;
    lc.seed = 13;
    Result<Graph> g = AssignLabels(n, edges, lc);
    GSI_CHECK(g.ok());
    return CommunityGraph{std::move(g.value()), std::move(seeds)};
  }());
  return cg;
}

std::vector<Graph> CommunityQueries(size_t nv, size_t ne, size_t count) {
  const CommunityGraph& cg = GetGraph();
  Rng rng(4242 + nv * 131);  // same walks for every |E(Q)| target
  std::vector<Graph> out;
  size_t attempts = 0;
  while (out.size() < count && attempts < 64 * count) {
    ++attempts;
    QueryGenConfig qc;
    qc.num_vertices = nv;
    qc.num_edges = ne;
    qc.revisit_probability = 0.8;
    qc.start_vertex = cg.seeds[rng.NextBounded(cg.seeds.size())];
    Result<Graph> q = GenerateRandomWalkQuery(cg.graph, qc, rng);
    if (q.ok()) out.push_back(std::move(q.value()));
  }
  return out;
}

void BM_QuerySize(benchmark::State& state, bool vary_edges, size_t nv,
                  size_t ne) {
  std::vector<Graph> queries = CommunityQueries(nv, ne, Env().queries);
  if (queries.empty()) return;
  size_t achieved = 0;
  for (const Graph& q : queries) achieved += q.num_edges();

  double ms = 0;
  for (auto _ : state) {
    GsiMatcher m(GetGraph().graph, GsiOptOptions());
    Aggregate a = RunQueries(m, queries);
    ms = a.ok ? a.sum_ms / a.ok : 0;
    state.SetIterationTime(std::max(1e-9, ms / 1000.0));
  }
  state.counters["ms"] = ms;
  char avg_e[32];
  std::snprintf(avg_e, sizeof(avg_e), "%.1f",
                static_cast<double>(achieved) /
                    static_cast<double>(queries.size()));
  Table().AddRow({vary_edges ? "edge num" : "vertex num",
                  std::to_string(nv), std::to_string(ne), avg_e,
                  TablePrinter::FormatMs(ms)});
}

void RegisterAll() {
  // (a) |V(Q)| fixed at the default, |E(Q)| sweeps (paper: 12..26 at 12
  // vertices).
  size_t nv = Env().query_vertices;
  for (size_t ne = nv; ne <= 3 * nv; ne += 2) {
    benchmark::RegisterBenchmark(
        ("fig15/edges/E=" + std::to_string(ne)).c_str(),
        [nv, ne](benchmark::State& s) { BM_QuerySize(s, true, nv, ne); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // (b) |E(Q)| = 2|V(Q)|, |V(Q)| sweeps (paper: 8..15).
  for (size_t v = 4; v <= 11; ++v) {
    benchmark::RegisterBenchmark(
        ("fig15/vertices/V=" + std::to_string(v)).c_str(),
        [v](benchmark::State& s) { BM_QuerySize(s, false, v, 2 * v); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
