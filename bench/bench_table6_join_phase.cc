// Table VI — "Performance of techniques in join phase": global-memory load
// transactions (GLD) and query response time for the cumulative
// configurations GSI- (CSR + two-step + naive set ops), +DS (PCSR),
// +PC (Prealloc-Combine) and +SO (GPU-friendly set operations); each
// column's drop/speedup is computed against the previous one.

#include "bench_common.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Table VI: Performance of techniques in join phase",
      {"Dataset", "Config", "Join GLD", "GLD drop", "Join time (ms)",
       "Speedup"});
  return t;
}

struct ConfigCase {
  const char* name;
  GsiOptions options;
};

std::vector<ConfigCase> Configs() {
  GsiOptions minus = GsiMinusOptions();
  GsiOptions ds = minus;
  ds.join.storage = StorageKind::kPcsr;
  GsiOptions pc = ds;
  pc.join.output_scheme = OutputScheme::kPreallocCombine;
  GsiOptions so = pc;
  so.join.set_op = SetOpKind::kWarpFriendly;
  so.join.write_cache = true;
  return {{"GSI-", minus}, {"+DS", ds}, {"+PC", pc}, {"+SO", so}};
}

// Keyed per dataset so drops/speedups chain across the 4 runs.
struct PrevState {
  uint64_t gld = 0;
  double ms = 0;
};

void BM_JoinPhase(benchmark::State& state, const std::string& dataset,
                  size_t config_index) {
  static auto& prev = *new std::map<std::string, PrevState>();
  const ConfigCase cc = Configs()[config_index];
  const auto& queries =
      GetQueries(dataset, Env().query_vertices, 0, Env().queries);

  Aggregate agg;
  for (auto _ : state) {
    agg = RunGsi(dataset, cc.options, queries);
    state.SetIterationTime(std::max(1e-9, agg.sum_join_ms / 1000.0));
  }
  double join_ms = agg.ok ? agg.sum_join_ms / agg.ok : 0;
  state.counters["join_gld"] = static_cast<double>(agg.gld);
  state.counters["join_ms"] = join_ms;
  state.counters["failed"] = static_cast<double>(agg.failed);

  std::string drop = "-";
  std::string speedup = "-";
  auto it = prev.find(dataset);
  if (it != prev.end() && agg.gld > 0 && join_ms > 0) {
    drop = TablePrinter::FormatPercent(
        1.0 - static_cast<double>(agg.gld) /
                  static_cast<double>(it->second.gld));
    speedup = TablePrinter::FormatSpeedup(it->second.ms / join_ms);
  }
  prev[dataset] = PrevState{agg.gld, join_ms};
  Table().AddRow({dataset, cc.name, TablePrinter::FormatCount(agg.gld),
                  drop, TablePrinter::FormatMs(join_ms), speedup});
}

void RegisterAll() {
  for (const char* ds :
       {"enron", "gowalla", "road", "watdiv", "dbpedia"}) {
    for (size_t i = 0; i < 4; ++i) {
      benchmark::RegisterBenchmark(
          (std::string("table6/") + ds + "/" + Configs()[i].name).c_str(),
          [ds, i](benchmark::State& s) { BM_JoinPhase(s, ds, i); })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
