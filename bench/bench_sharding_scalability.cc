// Multi-device sharded execution (Section VIII): one heavy query's join
// phase fanned out across a device pool. Sweeps the device count and
// reports the simulated single-query speedup curve, the shard balance
// (skew) and the merge cost. The sharded match table is checked
// bit-identical against the single-device run on every sweep point.
//
// Knobs: GSI_BENCH_DEVICES="1 2 4 8" (device counts), plus the usual
// GSI_BENCH_SCALE / GSI_BENCH_QUERIES / GSI_BENCH_QSIZE.

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gsi/sharded_engine.h"
#include "service/device_pool.h"
#include "util/check.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Sharding scalability: one heavy query across a device pool "
      "(GSI-opt, simulated time)",
      {"Devices", "Shards", "Filter ms", "Join ms", "Total ms", "Speedup",
       "Skew", "Matches"});
  return t;
}

std::vector<size_t> DeviceCounts() {
  static auto& counts = *new std::vector<size_t>([] {
    std::vector<size_t> out;
    const char* env = std::getenv("GSI_BENCH_DEVICES");
    std::stringstream ss(env != nullptr ? env : "1 2 4 8");
    size_t v = 0;
    while (ss >> v) {
      if (v > 0) out.push_back(v);
    }
    if (out.empty()) out = {1, 2, 4, 8};
    return out;
  }());
  return counts;
}

const QueryEngine& Engine() {
  static auto& engine =
      *new QueryEngine(GetDataset("enron").graph, GsiOptOptions());
  return engine;
}

/// The heaviest query of the generated workload (max single-device
/// simulated time) — the shape intra-query sharding exists for.
const Graph& HeavyQuery() {
  static auto& query = *new Graph([] {
    const std::vector<Graph>& all =
        GetQueries("enron", Env().query_vertices, 0, Env().queries);
    const Graph* heaviest = nullptr;
    double worst_ms = -1;
    for (const Graph& q : all) {
      Result<QueryResult> r = Engine().Run(q);
      if (!r.ok()) continue;
      if (r->stats.total_ms > worst_ms) {
        worst_ms = r->stats.total_ms;
        heaviest = &q;
      }
    }
    GSI_CHECK_MSG(heaviest != nullptr, "no query executed successfully");
    std::fprintf(stderr, "[bench] heavy query: %s, %.2f ms single-device\n",
                 heaviest->Summary().c_str(), worst_ms);
    return *heaviest;
  }());
  return query;
}

double SingleDeviceMs() {
  static const double ms = [] {
    Result<QueryResult> r = Engine().Run(HeavyQuery());
    GSI_CHECK(r.ok());
    return r->stats.total_ms;
  }();
  return ms;
}

void BM_Sharding(benchmark::State& state, size_t num_devices) {
  QueryStats stats;
  for (auto _ : state) {
    DevicePool pool(num_devices, Engine().options().device);
    std::vector<DevicePool::Lease> leases =
        pool.AcquireUpTo(num_devices).value();
    std::vector<gpusim::Device*> devs;
    for (DevicePool::Lease& l : leases) devs.push_back(l.get());

    MaybeTraceQuery("sharded", [&](const obs::TraceContext& ctx) {
      (void)Engine().RunSharded(HeavyQuery(), devs, ShardOptions(), ctx);
    });

    Result<QueryResult> sharded = Engine().RunSharded(HeavyQuery(), devs);
    GSI_CHECK(sharded.ok());
    stats = sharded->stats;
    state.SetIterationTime(std::max(1e-9, stats.total_ms / 1000.0));

    // The merged table must be bit-identical to the single-device run.
    Result<QueryResult> single = Engine().Run(HeavyQuery());
    GSI_CHECK(single.ok());
    GSI_CHECK_MSG(sharded->TableEquals(*single),
                  "sharded result diverged from single-device run");
  }

  const double speedup =
      stats.total_ms > 0 ? SingleDeviceMs() / stats.total_ms : 0;
  state.counters["total_ms"] = stats.total_ms;
  state.counters["speedup"] = speedup;
  state.counters["shards"] = static_cast<double>(stats.shards_used);
  Table().AddRow({std::to_string(num_devices),
                  std::to_string(stats.shards_used),
                  TablePrinter::FormatMs(stats.filter_ms),
                  TablePrinter::FormatMs(stats.join_ms),
                  TablePrinter::FormatMs(stats.total_ms),
                  TablePrinter::FormatSpeedup(speedup),
                  TablePrinter::FormatSpeedup(stats.shard_skew),
                  TablePrinter::FormatCount(stats.num_matches)});
  RecordJson({"sharding_scalability",
              "devices=" + std::to_string(num_devices),
              /*qps=*/stats.total_ms > 0 ? 1000.0 / stats.total_ms : 0,
              /*p50_ms=*/stats.total_ms,
              /*p99_ms=*/stats.total_ms,
              /*extras=*/{}});
}

void RegisterAll() {
  for (size_t devices : DeviceCounts()) {
    benchmark::RegisterBenchmark(
        ("sharding/devices=" + std::to_string(devices)).c_str(),
        [devices](benchmark::State& s) { BM_Sharding(s, devices); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
