// Table VIII — "Performance of optimizations": query time for GSI, +LB
// (4-layer load balance) and +DR (in-block duplicate removal), cumulative.

#include "bench_common.h"

namespace gsi::bench {
namespace {

TableCollector& Table() {
  static auto& t = *new TableCollector(
      "Table VIII: Performance of optimizations",
      {"Dataset", "GSI (ms)", "+LB (ms)", "LB speedup", "+DR (ms)",
       "DR speedup"});
  return t;
}

void BM_Optimizations(benchmark::State& state, const std::string& dataset) {
  const auto& queries =
      GetQueries(dataset, Env().query_vertices, 0, Env().queries);
  GsiOptions base = DefaultGsiOptions();
  GsiOptions lb = base;
  lb.join.load_balance = true;
  GsiOptions dr = lb;
  dr.join.duplicate_removal = true;

  Aggregate a_base;
  Aggregate a_lb;
  Aggregate a_dr;
  for (auto _ : state) {
    a_base = RunGsi(dataset, base, queries);
    a_lb = RunGsi(dataset, lb, queries);
    a_dr = RunGsi(dataset, dr, queries);
    state.SetIterationTime(std::max(
        1e-9,
        (a_base.sum_join_ms + a_lb.sum_join_ms + a_dr.sum_join_ms) / 1000.0));
  }
  double ms0 = a_base.ok ? a_base.sum_join_ms / a_base.ok : 0;
  double ms1 = a_lb.ok ? a_lb.sum_join_ms / a_lb.ok : 0;
  double ms2 = a_dr.ok ? a_dr.sum_join_ms / a_dr.ok : 0;
  state.counters["gsi_ms"] = ms0;
  state.counters["lb_ms"] = ms1;
  state.counters["dr_ms"] = ms2;
  Table().AddRow(
      {dataset, TablePrinter::FormatMs(ms0), TablePrinter::FormatMs(ms1),
       ms1 > 0 ? TablePrinter::FormatSpeedup(ms0 / ms1) : "-",
       TablePrinter::FormatMs(ms2),
       ms2 > 0 ? TablePrinter::FormatSpeedup(ms1 / ms2) : "-"});
}

void RegisterAll() {
  for (const char* ds :
       {"enron", "gowalla", "road", "watdiv", "dbpedia"}) {
    benchmark::RegisterBenchmark(
        (std::string("table8/") + ds).c_str(),
        [ds](benchmark::State& s) { BM_Optimizations(s, ds); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gsi::bench

int main(int argc, char** argv) {
  gsi::bench::RegisterAll();
  return gsi::bench::BenchMain(argc, argv, {&gsi::bench::Table()});
}
