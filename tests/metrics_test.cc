// obs::MetricsRegistry: instrument semantics (striped counter under
// threads, gauge, histogram `le` bucket math), pull collectors, and the
// two exporters — the Prometheus text exposition (validated line-by-line
// against the exposition grammar) and the DebugString snapshot.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "gsi/matcher.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "test_util.h"

namespace gsi {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSink;

TEST(CounterTest, SumsConcurrentIncrementsExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  // Striping spreads contention but must never lose an increment.
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads * kPerThread));
  c.Increment(5);
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads * kPerThread + 5));
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.Value(), -1.25);
}

TEST(HistogramTest, BucketForMatchesPrometheusLeSemantics) {
  const std::vector<double> bounds{1.0, 2.0, 5.0};
  // v <= bound lands in that bucket (Prometheus `le`), past the last bound
  // is the +Inf bucket at index bounds.size().
  EXPECT_EQ(Histogram::BucketFor(bounds, 0.5), 0u);
  EXPECT_EQ(Histogram::BucketFor(bounds, 1.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(bounds, 1.0000001), 1u);
  EXPECT_EQ(Histogram::BucketFor(bounds, 2.0), 1u);
  EXPECT_EQ(Histogram::BucketFor(bounds, 5.0), 2u);
  EXPECT_EQ(Histogram::BucketFor(bounds, 5.1), 3u);
  EXPECT_EQ(Histogram::BucketFor(bounds, std::nan("")), 3u);
  EXPECT_EQ(Histogram::BucketFor({}, 42.0), 0u);
}

TEST(HistogramTest, ObserveFillsBucketsAndSum) {
  Histogram h({1.0, 10.0});
  h.Observe(0.5);
  h.Observe(1.0);
  h.Observe(5.0);
  h.Observe(100.0);
  Histogram::Snapshot s = h.GetSnapshot();
  ASSERT_EQ(s.bounds.size(), 2u);
  ASSERT_EQ(s.counts.size(), 3u);  // two bounds + the +Inf bucket
  EXPECT_EQ(s.counts[0], 2u);      // 0.5 and 1.0 (le semantics)
  EXPECT_EQ(s.counts[1], 1u);      // 5.0
  EXPECT_EQ(s.counts[2], 1u);      // 100.0
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 106.5);
}

TEST(MetricsRegistryTest, GetReturnsTheSameInstrumentForAName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("gsi_test_total", "help");
  Counter* b = registry.GetCounter("gsi_test_total", "help");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_NE(static_cast<void*>(registry.GetGauge("gsi_test_gauge", "h")),
            static_cast<void*>(a));
}

/// Every non-comment line of the exposition must match the text-format
/// grammar: `name{labels} value` or `name value`.
void ExpectValidPrometheus(const std::string& text) {
  static const std::regex sample_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$)");
  static const std::regex comment_re(
      R"(^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$)");
  size_t lines = 0;
  std::string::size_type pos = 0;
  while (pos < text.size()) {
    std::string::size_type eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++lines;
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, comment_re)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_re)) << line;
    }
  }
  EXPECT_GT(lines, 0u);
}

TEST(MetricsRegistryTest, ExportPrometheusIsWellFormedAndDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("gsi_b_total", "second family")->Increment(2);
  registry.GetGauge("gsi_a_gauge", "first family")->Set(1.5);
  registry.GetHistogram("gsi_c_ms", "a histogram", {1.0, 10.0})
      ->Observe(3.0);
  registry.RegisterCollector([](MetricsSink& sink) {
    sink.AddCounter("gsi_d_total", "labeled counter", 7.0, "device=\"2\"");
    sink.AddCounter("gsi_d_total", "labeled counter", 9.0, "device=\"0\"");
  });

  const std::string text = registry.ExportPrometheus();
  ExpectValidPrometheus(text);
  // Families in lexicographic order, HELP/TYPE once each.
  const size_t a = text.find("gsi_a_gauge");
  const size_t b = text.find("gsi_b_total");
  const size_t c = text.find("gsi_c_ms");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(text.find("# TYPE gsi_b_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsi_c_ms histogram"), std::string::npos);
  // Histogram renders cumulative buckets plus _sum/_count.
  EXPECT_NE(text.find("gsi_c_ms_bucket{le=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("gsi_c_ms_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("gsi_c_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gsi_c_ms_count 1"), std::string::npos);
  // Collector samples keep their labels.
  EXPECT_NE(text.find("gsi_d_total{device=\"2\"} 7"), std::string::npos);

  // Deterministic: a second export of unchanged state is byte-identical.
  EXPECT_EQ(text, registry.ExportPrometheus());
}

/// Value of the first sample of `family` in a Prometheus exposition, or -1.
double SampleValue(const std::string& text, const std::string& family) {
  const std::string needle = family + " ";
  const size_t pos = text.find("\n" + needle);
  if (pos == std::string::npos) return -1;
  return std::strtod(text.c_str() + pos + 1 + needle.size(), nullptr);
}

TEST(HaloCacheMetrics, FamiliesAppearInServiceExportWithABudget) {
  Graph data = testing::RandomHubGraph(250, 3, 3, 2, 161, 2, 0.15);
  Graph query = testing::RandomQuery(data, 4, 162);
  ServiceOptions so;
  so.num_workers = 1;
  so.num_devices = 2;
  so.partition_data_graph = true;
  so.halo_budget_bytes = 4096;
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());
  for (int i = 0; i < 2; ++i) {  // second run hits the warmed caches
    Result<QueryTicket> t = service.Submit(query, {});
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(service.Wait(*t).ok());
  }

  const std::string text = service.ExportMetrics();
  ExpectValidPrometheus(text);
  for (const char* family :
       {"gsi_halo_cache_hits_total", "gsi_halo_cache_misses_total",
        "gsi_halo_cache_evictions_total", "gsi_halo_cache_hit_bytes_total",
        "gsi_halo_cache_resident_bytes"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family), std::string::npos)
        << family;
  }
  EXPECT_GT(SampleValue(text, "gsi_halo_cache_hits_total"), 0.0);
  EXPECT_GT(SampleValue(text, "gsi_halo_cache_misses_total"), 0.0);
  // The service-level roll-up agrees with the per-query stats path.
  EXPECT_GT(service.stats().halo_cache_hits, 0u);
}

TEST(HaloCacheMetrics, FamiliesAbsentWithoutABudget) {
  Graph data = testing::RandomGraph(150, 3, 3, 2, 163);
  Graph query = testing::RandomQuery(data, 4, 164);
  ServiceOptions so;
  so.num_workers = 1;
  so.num_devices = 2;
  so.partition_data_graph = true;  // budget stays 0: caching off
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());
  Result<QueryTicket> t = service.Submit(query, {});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(service.Wait(*t).ok());
  const std::string text = service.ExportMetrics();
  EXPECT_EQ(text.find("gsi_halo_cache"), std::string::npos);
  EXPECT_EQ(service.stats().halo_cache_hits, 0u);
}

TEST(MetricsRegistryTest, DebugStringListsEverySample) {
  MetricsRegistry registry;
  registry.GetCounter("gsi_x_total", "x")->Increment();
  registry.GetGauge("gsi_y", "y")->Set(2.0);
  const std::string s = registry.DebugString();
  EXPECT_NE(s.find("gsi_x_total"), std::string::npos);
  EXPECT_NE(s.find("gsi_y"), std::string::npos);
}

}  // namespace
}  // namespace gsi
