#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/labeler.h"
#include "graph/query_generator.h"
#include "test_util.h"

namespace gsi {
namespace {

TEST(GraphCreate, RejectsBadInput) {
  EXPECT_FALSE(Graph::Create(2, {0}, {}).ok());  // label size mismatch
  EXPECT_FALSE(
      Graph::Create(2, {0, 0}, {EdgeRecord{0, 2, 0}}).ok());  // range
  EXPECT_FALSE(
      Graph::Create(2, {0, 0}, {EdgeRecord{1, 1, 0}}).ok());  // self loop
}

TEST(GraphCreate, DedupsExactDuplicatesKeepsParallelLabels) {
  Result<Graph> g = Graph::Create(
      2, {0, 0},
      {EdgeRecord{0, 1, 5}, EdgeRecord{1, 0, 5}, EdgeRecord{0, 1, 6}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);  // labels 5 and 6
  EXPECT_TRUE(g->HasEdge(0, 1, 5));
  EXPECT_TRUE(g->HasEdge(1, 0, 6));
  EXPECT_FALSE(g->HasEdge(0, 1, 7));
}

TEST(GraphAccessors, NeighborsSortedByLabelThenId) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddVertex(0);
  b.AddEdge(0, 3, 2);
  b.AddEdge(0, 1, 2);
  b.AddEdge(0, 4, 1);
  b.AddEdge(0, 2, 3);
  Graph g = std::move(b).Build().value();
  auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0], (Neighbor{4, 1}));
  EXPECT_EQ(nbrs[1], (Neighbor{1, 2}));
  EXPECT_EQ(nbrs[2], (Neighbor{3, 2}));
  EXPECT_EQ(nbrs[3], (Neighbor{2, 3}));
  auto with2 = g.NeighborsWithLabel(0, 2);
  ASSERT_EQ(with2.size(), 2u);
  EXPECT_EQ(with2[0].v, 1u);
  EXPECT_EQ(with2[1].v, 3u);
  EXPECT_TRUE(g.NeighborsWithLabel(0, 9).empty());
}

TEST(GraphStats, LabelFrequencies) {
  Graph g = ::gsi::testing::RandomGraph(500, 3, 7, 9, 1);
  size_t vtotal = 0;
  for (Label l = 0; l < 7; ++l) vtotal += g.VertexLabelFrequency(l);
  EXPECT_EQ(vtotal, g.num_vertices());
  size_t etotal = 0;
  for (Label l : g.edge_labels()) etotal += g.EdgeLabelFrequency(l);
  EXPECT_EQ(etotal, g.num_edges());
  EXPECT_EQ(g.EdgeLabelFrequency(12345), 0u);
}

TEST(GraphConnectivity, DetectsComponents) {
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.AddVertex(0);
  b.AddEdge(0, 1, 0);
  b.AddEdge(2, 3, 0);
  Graph g = std::move(b).Build().value();
  EXPECT_FALSE(g.IsConnected());

  GraphBuilder b2;
  for (int i = 0; i < 4; ++i) b2.AddVertex(0);
  b2.AddEdge(0, 1, 0);
  b2.AddEdge(1, 2, 0);
  b2.AddEdge(2, 3, 0);
  EXPECT_TRUE(std::move(b2).Build().value().IsConnected());
}

TEST(GraphIo, RoundTripsThroughText) {
  Graph g = ::gsi::testing::RandomGraph(80, 3, 4, 5, 2);
  std::string text = GraphToText(g);
  Result<Graph> back = ParseGraphText(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_vertices(), g.num_vertices());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(back->vertex_label(v), g.vertex_label(v));
    ASSERT_EQ(back->degree(v), g.degree(v));
  }
}

TEST(GraphIo, FileRoundTrip) {
  Graph g = ::gsi::testing::RandomGraph(60, 3, 3, 3, 21);
  std::string path = ::testing::TempDir() + "/gsi_io_test.graph";
  ASSERT_TRUE(SaveGraphText(g, path).ok());
  Result<Graph> back = LoadGraphText(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(GraphToText(back.value()), GraphToText(g));
  EXPECT_FALSE(LoadGraphText("/nonexistent/path.graph").ok());
}

TEST(Datasets, DeterministicAcrossCalls) {
  Result<Dataset> a = MakeDataset("enron", 0.05);
  Result<Dataset> b = MakeDataset("enron", 0.05);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(GraphToText(a->graph), GraphToText(b->graph));
}

TEST(GraphIo, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseGraphText("nonsense").ok());
  EXPECT_FALSE(ParseGraphText("t 2 1\nv 0 0\nv 5 0\ne 0 1 0\n").ok());
}

TEST(GraphIo, ParseRejectsDuplicateVertexLine) {
  // The duplicate used to be accepted silently, leaving vertex 1 labeled
  // kInvalidLabel.
  Result<Graph> g = ParseGraphText("t 2 1\nv 0 0\nv 0 1\ne 0 1 0\n");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIo, ParseRejectsTrailingContent) {
  // Anything after the last declared edge used to be ignored.
  EXPECT_FALSE(ParseGraphText("t 2 1\nv 0 0\nv 1 0\ne 0 1 0\ne 1 0 1\n").ok());
  EXPECT_FALSE(ParseGraphText("t 2 1\nv 0 0\nv 1 0\ne 0 1 0\ngarbage\n").ok());
  // Trailing whitespace/newlines remain fine.
  EXPECT_TRUE(ParseGraphText("t 2 1\nv 0 0\nv 1 0\ne 0 1 0\n\n  \n").ok());
}

TEST(Generators, ErdosRenyiHasRequestedEdges) {
  Rng rng(3);
  auto edges = GenerateErdosRenyi(100, 300, rng);
  EXPECT_EQ(edges.size(), 300u);
  std::unordered_set<uint64_t> seen;
  for (const RawEdge& e : edges) {
    EXPECT_NE(e.src, e.dst);
    uint64_t key = (static_cast<uint64_t>(std::min(e.src, e.dst)) << 32) |
                   std::max(e.src, e.dst);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate edge";
  }
}

TEST(Generators, ErdosRenyiCapsAtCompleteGraph) {
  Rng rng(4);
  auto edges = GenerateErdosRenyi(5, 1000, rng);
  EXPECT_EQ(edges.size(), 10u);
}

TEST(Generators, ScaleFreeIsSkewed) {
  Rng rng(5);
  auto edges = GenerateScaleFree(2000, 3, rng);
  auto deg = DegreesOf(2000, edges);
  size_t max_deg = *std::max_element(deg.begin(), deg.end());
  double avg =
      2.0 * edges.size() / static_cast<double>(deg.size());
  // Heavy tail: the max degree dwarfs the average.
  EXPECT_GT(static_cast<double>(max_deg), 8 * avg);
}

TEST(Generators, MeshHasUniformSmallDegrees) {
  auto edges = GenerateMesh(20, 30);
  EXPECT_EQ(edges.size(), 20u * 29 + 19u * 30);
  auto deg = DegreesOf(600, edges);
  EXPECT_EQ(*std::max_element(deg.begin(), deg.end()), 4u);
  EXPECT_EQ(*std::min_element(deg.begin(), deg.end()), 2u);
}

TEST(Labeler, PowerLawLabelsSkewed) {
  Rng rng(6);
  auto edges = GenerateScaleFree(3000, 3, rng);
  LabelConfig lc;
  lc.num_vertex_labels = 50;
  lc.num_edge_labels = 50;
  Result<Graph> g = AssignLabels(3000, edges, lc);
  ASSERT_TRUE(g.ok());
  // Most frequent vertex label much more common than the tail.
  size_t hi = 0;
  size_t lo = SIZE_MAX;
  for (Label l = 0; l < 50; ++l) {
    size_t f = g->VertexLabelFrequency(l);
    hi = std::max(hi, f);
    if (f > 0) lo = std::min(lo, f);
  }
  EXPECT_GT(hi, 8 * lo);
}

TEST(QueryGen, WalkQueriesAreConnectedAndEmbedded) {
  Graph data = ::gsi::testing::RandomGraph(400, 4, 5, 5, 7);
  QueryGenConfig qc;
  qc.num_vertices = 6;
  std::vector<Graph> qs = GenerateQuerySet(data, qc, 20, 9);
  ASSERT_EQ(qs.size(), 20u);
  for (const Graph& q : qs) {
    EXPECT_EQ(q.num_vertices(), 6u);
    EXPECT_TRUE(q.IsConnected());
    EXPECT_GE(q.num_edges(), 5u);
  }
}

TEST(QueryGen, DensifiesToRequestedEdgeCount) {
  // Dense data graph so the induced subgraph of 8 walked vertices really
  // contains extra edges to densify with.
  Graph data = ::gsi::testing::RandomGraph(100, 10, 2, 2, 8);
  QueryGenConfig qc;
  qc.num_vertices = 8;
  qc.num_edges = 14;
  Rng rng(10);
  size_t baseline_sum = 0;
  size_t densified_sum = 0;
  QueryGenConfig walk_only = qc;
  walk_only.num_edges = 0;
  Rng rng2(10);
  for (int i = 0; i < 10; ++i) {
    Result<Graph> q = GenerateRandomWalkQuery(data, qc, rng);
    Result<Graph> plain = GenerateRandomWalkQuery(data, walk_only, rng2);
    if (!q.ok() || !plain.ok()) continue;
    EXPECT_LE(q->num_edges(), 14u + 4u);  // never wildly overshoots
    densified_sum += q->num_edges();
    baseline_sum += plain.value().num_edges();
  }
  // Densification adds edges on average (identical walks by identical rng).
  EXPECT_GT(densified_sum, baseline_sum);
}

TEST(Generators, SuperHubsRaiseMaxDegree) {
  Rng rng_a(7);
  auto plain = GenerateScaleFree(20000, 4, rng_a);
  Rng rng_b(7);
  auto hubby = GenerateScaleFree(20000, 4, rng_b, /*num_hubs=*/2,
                                 /*hub_fraction=*/0.05);
  std::vector<size_t> plain_deg = DegreesOf(20000, plain);
  std::vector<size_t> hub_deg = DegreesOf(20000, hubby);
  size_t plain_max = *std::max_element(plain_deg.begin(), plain_deg.end());
  size_t hub_max = *std::max_element(hub_deg.begin(), hub_deg.end());
  EXPECT_GE(hub_max, 800u);  // ~5% of 20000 minus collisions
  EXPECT_GT(hub_max, 2 * plain_max);
}

TEST(Generators, TriadFormationAddsTriangles) {
  auto count_triangles = [](const Graph& g) {
    size_t t = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      auto nbrs = g.neighbors(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          if (nbrs[i].v > v && nbrs[j].v > v &&
              g.HasAnyEdge(nbrs[i].v, nbrs[j].v)) {
            ++t;
          }
        }
      }
    }
    return t;
  };
  Rng rng_a(8);
  auto plain_edges = GenerateScaleFree(3000, 4, rng_a);
  Rng rng_b(8);
  auto triad_edges = GenerateScaleFree(3000, 4, rng_b, 0, 0.0, 0.6);
  LabelConfig lc;
  Graph plain = std::move(AssignLabels(3000, plain_edges, lc).value());
  Graph triads = std::move(AssignLabels(3000, triad_edges, lc).value());
  EXPECT_GT(count_triangles(triads), 2 * count_triangles(plain));
}

TEST(Generators, PlantedCommunitiesAreDense) {
  Rng rng(9);
  std::vector<RawEdge> edges = GenerateScaleFree(5000, 3, rng);
  std::vector<VertexId> seeds = PlantCommunities(5000, 4, 10, edges, rng);
  ASSERT_EQ(seeds.size(), 4u);
  LabelConfig lc;
  Graph g = std::move(AssignLabels(5000, edges, lc).value());
  // Every seed now has at least community-size-1 neighbours.
  for (VertexId s : seeds) EXPECT_GE(g.degree(s), 9u);
}

TEST(QueryGen, FixedStartVertexIsRespected) {
  Graph data = ::gsi::testing::RandomGraph(300, 4, 2, 2, 10);
  QueryGenConfig qc;
  qc.num_vertices = 4;
  qc.start_vertex = 17;
  Rng rng(11);
  Result<Graph> q = GenerateRandomWalkQuery(data, qc, rng);
  ASSERT_TRUE(q.ok());
  // Query vertex 0 is the walk start: its label must match.
  EXPECT_EQ(q->vertex_label(0), data.vertex_label(17));

  qc.start_vertex = 100000;  // out of range
  EXPECT_FALSE(GenerateRandomWalkQuery(data, qc, rng).ok());
}

TEST(Datasets, ScaleFreeDatasetsHaveSuperHubs) {
  Graph g = MakeDataset("gowalla", 0.2)->graph;
  // Hubs at ~7% of |V| dominate the degree distribution.
  EXPECT_GT(g.max_degree(), g.num_vertices() / 25);
}

TEST(Datasets, AllNamedDatasetsBuild) {
  for (const std::string& name : DatasetNames()) {
    Result<Dataset> d = MakeDataset(name, /*scale=*/0.02);
    ASSERT_TRUE(d.ok()) << name;
    EXPECT_GT(d->graph.num_vertices(), 0u) << name;
    EXPECT_GT(d->graph.num_edges(), 0u) << name;
  }
  EXPECT_FALSE(MakeDataset("nope").ok());
}

TEST(Datasets, RoadIsMeshLikeOthersSkewed) {
  Graph road = MakeDataset("road", 0.05)->graph;
  EXPECT_LE(road.max_degree(), 4u);
  Graph gowalla = MakeDataset("gowalla", 0.05)->graph;
  EXPECT_GT(gowalla.max_degree(), 50u);
}

TEST(Datasets, WatDivSeriesScalesLinearly) {
  Result<Dataset> small = MakeWatDivLike(2000);
  Result<Dataset> big = MakeWatDivLike(4000);
  ASSERT_TRUE(small.ok() && big.ok());
  double ratio = static_cast<double>(big->graph.num_edges()) /
                 static_cast<double>(small->graph.num_edges());
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.3);
}

}  // namespace
}  // namespace gsi
