// QueryService: streamed submit/poll results must be bit-identical to
// sequential GsiMatcher::Find (with and without the filter cache), the
// bounded admission queue must shed or backpressure load, and queued
// tickets must support cancellation and deadlines.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gsi/matcher.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "test_util.h"

namespace gsi {
namespace {

/// Small data graph: fast queries for correctness sweeps.
Graph SmallData(uint64_t seed) {
  return testing::RandomGraph(300, 3, 4, 3, seed);
}

/// Large data graph: each query runs long enough (milliseconds) that a
/// burst of microsecond-scale Submits deterministically outpaces the
/// workers (used by the overload / cancellation / deadline tests).
const Graph& HeavyData() {
  static const Graph& g = *new Graph(testing::RandomGraph(3000, 4, 3, 2, 5));
  return g;
}

TEST(QueryService, StreamedResultsMatchSequentialFind) {
  for (bool cache : {false, true}) {
    for (uint64_t seed : {1, 2, 3}) {
      Graph data = SmallData(seed * 100);
      std::vector<Graph> queries;
      for (uint64_t q = 0; q < 10; ++q) {
        queries.push_back(testing::RandomQuery(data, 5, seed * 1000 + q));
      }
      GsiMatcher sequential(data, GsiOptOptions());

      ServiceOptions so;
      so.num_workers = 4;
      so.enable_filter_cache = cache;
      QueryService service(data, GsiOptOptions(), so);
      ASSERT_TRUE(service.init_status().ok());

      std::vector<QueryTicket> tickets;
      for (const Graph& q : queries) {
        Result<QueryTicket> t = service.Submit(q);
        ASSERT_TRUE(t.ok());
        tickets.push_back(*t);
      }
      for (size_t i = 0; i < queries.size(); ++i) {
        Result<QueryResult> expected = sequential.Find(queries[i]);
        Result<QueryResult> got = service.Wait(tickets[i]);
        ASSERT_EQ(expected.ok(), got.ok()) << "query " << i;
        if (!expected.ok()) continue;
        EXPECT_EQ(got->AllMatchesSorted(), expected->AllMatchesSorted())
            << "query " << i << " cache=" << cache;
      }
    }
  }
}

TEST(QueryService, HeavyQueriesFanOutAcrossTheDevicePool) {
  Graph data = SmallData(17);
  GsiMatcher sequential(data, GsiOptOptions());

  ServiceOptions so;
  so.num_workers = 1;            // one worker...
  so.num_devices = 4;            // ...with three idle devices to fan out to
  so.max_shards_per_query = 4;
  so.shard_min_candidates = 1;   // every query counts as heavy
  so.shard.min_rows_per_shard = 1;
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());

  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph query = testing::RandomQuery(data, 5, 700 + seed);
    Result<QueryTicket> t = service.Submit(query);
    ASSERT_TRUE(t.ok());
    Result<QueryResult> got = service.Wait(*t);
    Result<QueryResult> expected = sequential.Find(query);
    ASSERT_EQ(expected.ok(), got.ok()) << seed;
    if (!expected.ok()) continue;
    // Bit-identical, not just the same match set: sharding must not
    // reorder the table.
    ASSERT_EQ(got->table.rows(), expected->table.rows()) << seed;
    ASSERT_EQ(got->table.cols(), expected->table.cols()) << seed;
    EXPECT_EQ(got->column_to_query, expected->column_to_query);
    for (size_t r = 0; r < expected->table.rows(); ++r) {
      for (size_t c = 0; c < expected->table.cols(); ++c) {
        ASSERT_EQ(got->table.At(r, c), expected->table.At(r, c))
            << seed << " cell (" << r << ", " << c << ")";
      }
    }
  }

  ServiceStats stats = service.stats();
  EXPECT_GE(stats.sharded_queries, 1u);
  EXPECT_GE(stats.shards_executed, 2 * stats.sharded_queries);
  EXPECT_GE(stats.max_shard_skew, 1.0);
  EXPECT_EQ(stats.pool.in_use, 0u);  // everything returned to the pool
  EXPECT_GE(stats.pool.peak_in_use, 2u);
}

TEST(QueryService, ShardingOffKeepsSingleDeviceExecution) {
  Graph data = SmallData(23);
  ServiceOptions so;
  so.num_workers = 2;  // default max_shards_per_query = 1
  QueryService service(data, GsiOptOptions(), so);
  Graph query = testing::RandomQuery(data, 4, 99);
  Result<QueryTicket> t = service.Submit(query);
  ASSERT_TRUE(t.ok());
  Result<QueryResult> got = service.Wait(*t);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->stats.shards_used, 1u);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sharded_queries, 0u);
  EXPECT_EQ(stats.shards_executed, 0u);
}

TEST(QueryService, CacheHitsStayBitIdenticalAndSpeedUpTheFilterPhase) {
  Graph data = SmallData(42);
  Graph query = testing::RandomQuery(data, 5, 4242);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> expected = sequential.Find(query);
  ASSERT_TRUE(expected.ok());

  ServiceOptions so;
  so.num_workers = 1;
  so.enable_filter_cache = true;
  QueryService service(data, GsiOptOptions(), so);

  // Cold pass misses and populates; warm pass hits.
  Result<QueryTicket> cold = service.Submit(query);
  ASSERT_TRUE(cold.ok());
  Result<QueryResult> cold_r = service.Wait(*cold);
  ASSERT_TRUE(cold_r.ok());

  Result<QueryTicket> warm = service.Submit(query);
  ASSERT_TRUE(warm.ok());
  Result<QueryResult> warm_r = service.Wait(*warm);
  ASSERT_TRUE(warm_r.ok());

  EXPECT_EQ(cold_r->AllMatchesSorted(), expected->AllMatchesSorted());
  EXPECT_EQ(warm_r->AllMatchesSorted(), expected->AllMatchesSorted());

  // Identical join work, strictly cheaper filter work on the hit.
  EXPECT_EQ(warm_r->stats.join.simulated_cycles,
            cold_r->stats.join.simulated_cycles);
  EXPECT_LT(warm_r->stats.filter.simulated_cycles,
            cold_r->stats.filter.simulated_cycles);
  EXPECT_EQ(warm_r->stats.min_candidate_size,
            cold_r->stats.min_candidate_size);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.entries, 1u);
  EXPECT_GT(stats.cache.bytes, 0u);
}

TEST(QueryService, PartitionedDataGraphStaysBitIdentical) {
  for (bool cache : {false, true}) {
    Graph data = SmallData(700);
    std::vector<Graph> queries;
    for (uint64_t q = 0; q < 8; ++q) {
      queries.push_back(testing::RandomQuery(data, 5, 7000 + q));
    }
    GsiMatcher sequential(data, GsiOptOptions());

    ServiceOptions so;
    so.num_workers = 3;
    so.num_devices = 4;  // the data graph splits 4 ways
    so.partition_data_graph = true;
    so.enable_filter_cache = cache;
    QueryService service(data, GsiOptOptions(), so);
    ASSERT_TRUE(service.init_status().ok())
        << service.init_status().ToString();

    std::vector<QueryTicket> tickets;
    for (const Graph& q : queries) {
      Result<QueryTicket> t = service.Submit(q);
      ASSERT_TRUE(t.ok());
      tickets.push_back(*t);
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      Result<QueryResult> expected = sequential.Find(queries[i]);
      Result<QueryResult> got = service.Wait(tickets[i]);
      ASSERT_EQ(expected.ok(), got.ok()) << "query " << i;
      if (!expected.ok()) continue;
      EXPECT_TRUE(got->TableEquals(*expected))
          << "query " << i << " cache=" << cache;
      EXPECT_GE(got->stats.partitions_used, 1u);
    }
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.partitioned_queries, stats.completed_ok);
    EXPECT_GT(stats.halo_bytes, 0u);
    EXPECT_GT(stats.remote_probes, 0u);
  }
}

TEST(QueryService, PartitionModeRejectsShardingCombination) {
  Graph data = SmallData(900);
  ServiceOptions so;
  so.partition_data_graph = true;
  so.max_shards_per_query = 4;
  QueryService service(data, GsiOptOptions(), so);
  EXPECT_EQ(service.init_status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Submit(testing::RandomQuery(data, 3, 1)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryService, RejectsWithResourceExhaustedWhenQueueIsFull) {
  ServiceOptions so;
  so.num_workers = 1;
  so.max_queue_depth = 2;
  so.overload = OverloadPolicy::kReject;
  QueryService service(HeavyData(), GsiOptOptions(), so);

  Graph query = testing::RandomQuery(HeavyData(), 6, 9);
  size_t rejected = 0;
  std::vector<QueryTicket> tickets;
  // 40 instant Submits against a single worker chewing multi-ms queries:
  // the depth-2 queue must overflow.
  for (int i = 0; i < 40; ++i) {
    Result<QueryTicket> t = service.Submit(query);
    if (t.ok()) {
      tickets.push_back(*t);
    } else {
      EXPECT_EQ(t.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);

  for (const QueryTicket& t : tickets) {
    // Every admitted ticket resolves: ok, or a per-query engine error
    // (e.g. the intermediate-row cap) — never cancelled or dropped.
    Result<QueryResult> r = service.Wait(t);
    EXPECT_NE(r.status().code(), StatusCode::kCancelled)
        << r.status().ToString();
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 40u);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.admitted, 40u - rejected);
  EXPECT_EQ(stats.completed_ok + stats.failed, tickets.size());
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST(QueryService, BlockPolicyBackpressuresInsteadOfRejecting) {
  ServiceOptions so;
  so.num_workers = 2;
  so.max_queue_depth = 2;
  so.overload = OverloadPolicy::kBlock;
  Graph data = SmallData(7);
  QueryService service(data, GsiOptOptions(), so);

  Graph query = testing::RandomQuery(data, 5, 11);
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 30; ++i) {
    Result<QueryTicket> t = service.Submit(query);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    tickets.push_back(*t);
  }
  service.Drain();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 30u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed_ok, 30u);
  EXPECT_GT(stats.p50_simulated_ms, 0);
  EXPECT_LE(stats.p50_simulated_ms, stats.p99_simulated_ms);
}

TEST(QueryService, CancelRemovesQueuedTicket) {
  ServiceOptions so;
  so.num_workers = 1;
  so.max_queue_depth = 64;
  QueryService service(HeavyData(), GsiOptOptions(), so);

  Graph query = testing::RandomQuery(HeavyData(), 6, 13);
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 20; ++i) {
    Result<QueryTicket> t = service.Submit(query);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  // The single worker is still inside one of the first queries; the last
  // ticket cannot have started.
  EXPECT_TRUE(service.Cancel(tickets.back()));
  Result<QueryResult> r = service.Wait(tickets.back());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // Cancelling a finished ticket is a no-op.
  EXPECT_FALSE(service.Cancel(tickets.back()));
  service.Drain();
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(QueryService, QueuedDeadlineExpiresBeforeExecution) {
  ServiceOptions so;
  so.num_workers = 1;
  so.max_queue_depth = 64;
  QueryService service(HeavyData(), GsiOptOptions(), so);

  Graph query = testing::RandomQuery(HeavyData(), 6, 17);
  // Park several heavy queries in front...
  std::vector<QueryTicket> front;
  for (int i = 0; i < 10; ++i) {
    Result<QueryTicket> t = service.Submit(query);
    ASSERT_TRUE(t.ok());
    front.push_back(*t);
  }
  // ...then a ticket whose queueing deadline is far shorter than the work
  // already ahead of it.
  SubmitOptions submit;
  submit.deadline_ms = 0.001;
  Result<QueryTicket> doomed = service.Submit(query, submit);
  ASSERT_TRUE(doomed.ok());
  Result<QueryResult> r = service.Wait(*doomed);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  service.Drain();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed_ok + stats.failed, front.size());
}

TEST(QueryService, ResultsAreTakenExactlyOnce) {
  Graph data = SmallData(31);
  QueryService service(data, GsiOptOptions(), ServiceOptions{});
  Result<QueryTicket> t = service.Submit(testing::RandomQuery(data, 5, 3));
  ASSERT_TRUE(t.ok());

  // Poll until completion (exercises the nullopt path), then the result is
  // consumed; any later observer -- Wait, Poll, or FetchPage -- reports a
  // clean NotFound that tells the caller to re-submit.
  std::optional<Result<QueryResult>> polled;
  while (!(polled = service.Poll(*t)).has_value()) {
  }
  EXPECT_TRUE(polled->ok());
  EXPECT_EQ(service.Wait(*t).status().code(), StatusCode::kNotFound);
  EXPECT_NE(service.Wait(*t).status().message().find("re-submit"),
            std::string::npos);
  std::optional<Result<QueryResult>> again = service.Poll(*t);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.FetchPage(*t).status().code(), StatusCode::kNotFound);

  // Invalid tickets are reported, not crashed on.
  QueryTicket invalid;
  EXPECT_EQ(service.Wait(invalid).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(service.Cancel(invalid));
}

TEST(QueryService, ExecutionErrorsLandOnTheTicket) {
  Graph data = SmallData(53);
  QueryService service(data, GsiOptOptions(), ServiceOptions{});
  Result<QueryTicket> t = service.Submit(Graph());  // empty query
  ASSERT_TRUE(t.ok());                              // admission succeeds
  Result<QueryResult> r = service.Wait(*t);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.stats().failed, 1u);
}

// Regression: depth 0 would reject everything under kReject and deadlock
// every Submit under kBlock — it must be rejected at construction.
TEST(QueryService, ZeroQueueDepthIsInvalidArgument) {
  Graph data = SmallData(71);
  ServiceOptions so;
  so.max_queue_depth = 0;
  so.overload = OverloadPolicy::kBlock;
  QueryService service(data, GsiOptOptions(), so);
  EXPECT_EQ(service.init_status().code(), StatusCode::kInvalidArgument);
  Result<QueryTicket> t = service.Submit(testing::RandomQuery(data, 5, 1));
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryService, InvalidOptionsSurfaceThroughSubmit) {
  GsiOptions bad = GsiOptOptions();
  bad.join.max_rows = 0;
  Graph data = SmallData(61);
  QueryService service(data, bad, ServiceOptions{});
  EXPECT_EQ(service.init_status().code(), StatusCode::kInvalidArgument);
  Result<QueryTicket> t = service.Submit(testing::RandomQuery(data, 5, 2));
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

// Lock contract: stats() copies the counters under mu_ and does the
// expensive work (latency sort) outside it — scraping must never deadlock
// against workers (who take mu_ only to pop/finish, never while matching)
// and every snapshot must be internally coherent.
TEST(QueryService, StatsScrapesStayCoherentWhileWorkersAreBusy) {
  ServiceOptions so;
  so.num_workers = 2;
  so.max_queue_depth = 64;
  QueryService service(HeavyData(), GsiOptOptions(), so);

  Graph query = testing::RandomQuery(HeavyData(), 6, 23);
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 12; ++i) {
    Result<QueryTicket> t = service.Submit(query);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  uint64_t last_done = 0;
  for (int i = 0; i < 200; ++i) {
    ServiceStats s = service.stats();
    EXPECT_EQ(s.submitted, 12u);
    EXPECT_EQ(s.admitted, 12u);
    // queued + running + finished always accounts for every admission.
    EXPECT_EQ(s.queue_depth + s.in_flight + s.completed_ok + s.failed +
                  s.cancelled + s.expired,
              12u);
    uint64_t done = s.completed_ok + s.failed;
    EXPECT_GE(done, last_done) << "completion counter moved backwards";
    last_done = done;
  }
  service.Drain();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.completed_ok + s.failed, 12u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.in_flight, 0u);
}

// Lock contract: Drain (wait on done_cv_ until queue and in-flight are
// empty) is safe against concurrent Submits — it simply waits for whatever
// the submitters add, and once they stop, every ticket is accounted for.
TEST(QueryService, ConcurrentSubmitAndDrainStayCoherent) {
  Graph data = SmallData(83);
  ServiceOptions so;
  so.num_workers = 2;
  so.max_queue_depth = 8;
  so.overload = OverloadPolicy::kBlock;
  QueryService service(data, GsiOptOptions(), so);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 10;
  std::atomic<int> submitted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Graph q = testing::RandomQuery(data, 4, 8300 + t * 100 + i);
        Result<QueryTicket> ticket = service.Submit(q);
        ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
        ++submitted;
      }
    });
  }
  // Drain races the submitters: each call returns at *a* quiescent point;
  // none may hang or miss a wakeup.
  for (int i = 0; i < 5; ++i) service.Drain();
  for (std::thread& t : submitters) t.join();
  service.Drain();  // now nothing can be added: full quiescence

  ServiceStats s = service.stats();
  EXPECT_EQ(submitted.load(), kThreads * kPerThread);
  EXPECT_EQ(s.admitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.completed_ok + s.failed,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.in_flight, 0u);
}

size_t CountNamedSpans(const obs::Tracer& tracer, const std::string& name) {
  size_t n = 0;
  for (const obs::TraceSpan& s : tracer.Snapshot()) n += (s.name == name);
  return n;
}

TEST(QueryService, TracedTicketExposesTheSpanTree) {
  Graph data = SmallData(311);
  ServiceOptions so;
  so.num_workers = 2;
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());

  Graph query = testing::RandomQuery(data, 5, 3111);
  SubmitOptions traced;
  traced.trace = true;
  Result<QueryTicket> on = service.Submit(query, traced);
  Result<QueryTicket> off = service.Submit(query);
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(service.Wait(*on).ok());
  ASSERT_TRUE(service.Wait(*off).ok());

  // Untraced tickets carry no tracer — tracing is strictly opt-in.
  EXPECT_EQ(service.GetTrace(*off), nullptr);
  EXPECT_EQ(service.GetTrace(QueryTicket{}), nullptr);

  std::shared_ptr<const obs::Tracer> trace = service.GetTrace(*on);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(CountNamedSpans(*trace, "queue_wait"), 1u);
  EXPECT_EQ(CountNamedSpans(*trace, "query"), 1u);
  EXPECT_GE(CountNamedSpans(*trace, "filter"), 1u);
  EXPECT_GE(CountNamedSpans(*trace, "join_step"), 1u);
  // The service phases sit on the host track; execution spans on device 0.
  for (const obs::TraceSpan& s : trace->Snapshot()) {
    if (s.name == "queue_wait" || s.name == "query") {
      EXPECT_EQ(s.device, obs::kHostDevice) << s.name;
    }
    if (s.name == "join_step") {
      EXPECT_EQ(s.device, 0) << s.name;
    }
  }
  // Both exporters render the retained trace.
  EXPECT_NE(trace->ToChromeJson().find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(trace->ToTreeString().find("query"), std::string::npos);
}

/// Parses Prometheus text exposition into `name{labels}` -> value, failing
/// the test on any malformed line.
std::map<std::string, double> ParsePrometheus(const std::string& text) {
  std::map<std::string, double> samples;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "malformed: " << line;
    if (space == std::string::npos) continue;
    size_t parsed = 0;
    const double value = std::stod(line.substr(space + 1), &parsed);
    EXPECT_EQ(space + 1 + parsed, line.size()) << "bad value: " << line;
    samples[line.substr(0, space)] = value;
  }
  return samples;
}

TEST(QueryService, ExportMetricsMatchesTheStatsSnapshot) {
  Graph data = SmallData(313);
  ServiceOptions so;
  so.num_workers = 2;
  so.enable_filter_cache = true;
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());

  for (uint64_t q = 0; q < 6; ++q) {
    ASSERT_TRUE(service.Submit(testing::RandomQuery(data, 5, 3130 + q)).ok());
  }
  service.Drain();

  const std::string text = service.ExportMetrics();
  std::map<std::string, double> samples = ParsePrometheus(text);
  ServiceStats stats = service.stats();
  EXPECT_EQ(samples.at("gsi_service_submitted_total"),
            static_cast<double>(stats.submitted));
  EXPECT_EQ(samples.at("gsi_service_completed_total{status=\"ok\"}"),
            static_cast<double>(stats.completed_ok));
  EXPECT_EQ(samples.at("gsi_service_completed_total{status=\"error\"}"),
            static_cast<double>(stats.failed));
  EXPECT_EQ(samples.at("gsi_service_queue_depth"), 0.0);
  EXPECT_EQ(samples.at("gsi_service_in_flight"), 0.0);
  // The latency histogram observed exactly the completed-ok queries, and
  // its +Inf bucket agrees with its _count (cumulative rendering).
  EXPECT_EQ(samples.at("gsi_query_simulated_ms_count"),
            static_cast<double>(stats.completed_ok));
  EXPECT_EQ(samples.at("gsi_query_simulated_ms_bucket{le=\"+Inf\"}"),
            samples.at("gsi_query_simulated_ms_count"));
  // The filter-cache collector feeds the same registry.
  EXPECT_NE(text.find("gsi_filter_cache_"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsi_service_submitted_total counter"),
            std::string::npos);
  // The human snapshot renders the same families.
  EXPECT_NE(service.MetricsDebugString().find("gsi_service_submitted_total"),
            std::string::npos);
}

// Traced and untraced queries race through the service while metrics are
// scraped: every scrape must parse, and the settled registry must agree
// with the settled ServiceStats.
TEST(QueryService, ConcurrentTracedQueriesKeepTheRegistryCoherent) {
  Graph data = SmallData(317);
  ServiceOptions so;
  so.num_workers = 4;
  so.max_queue_depth = 64;
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());

  constexpr int kThreads = 3;
  constexpr int kPerThread = 5;
  std::mutex tickets_mu;
  std::vector<QueryTicket> traced_tickets;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SubmitOptions submit;
        submit.trace = (i % 2 == 0);
        Graph q = testing::RandomQuery(data, 4, 31700 + t * 100 + i);
        Result<QueryTicket> ticket = service.Submit(q, submit);
        ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
        if (submit.trace) {
          std::lock_guard<std::mutex> lock(tickets_mu);
          traced_tickets.push_back(*ticket);
        }
      }
    });
  }
  // Scrapes race the workers; each one must still parse cleanly.
  for (int i = 0; i < 20; ++i) ParsePrometheus(service.ExportMetrics());
  for (std::thread& t : submitters) t.join();
  service.Drain();

  for (const QueryTicket& ticket : traced_tickets) {
    std::shared_ptr<const obs::Tracer> trace = service.GetTrace(ticket);
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(CountNamedSpans(*trace, "query"), 1u);
    EXPECT_EQ(CountNamedSpans(*trace, "queue_wait"), 1u);
  }
  std::map<std::string, double> samples =
      ParsePrometheus(service.ExportMetrics());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(samples.at("gsi_service_completed_total{status=\"ok\"}") +
                samples.at("gsi_service_completed_total{status=\"error\"}"),
            static_cast<double>(stats.completed_ok + stats.failed));
  EXPECT_EQ(samples.at("gsi_service_admitted_total"),
            static_cast<double>(stats.admitted));
}

TEST(QueryService, DestructorCancelsQueuedWorkWithoutHanging) {
  ServiceOptions so;
  so.num_workers = 1;
  so.max_queue_depth = 64;
  auto service =
      std::make_unique<QueryService>(HeavyData(), GsiOptOptions(), so);
  Graph query = testing::RandomQuery(HeavyData(), 6, 19);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(service->Submit(query).ok());
  }
  service.reset();  // must cancel the queue, finish in-flight work and join
  SUCCEED();
}

}  // namespace
}  // namespace gsi
