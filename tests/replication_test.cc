// R-way replicated partitions: placement invariants (R distinct devices
// per partition, staggered lanes, resident bytes ~R/K of the replica),
// bit-identical match tables for *every* replica selection (the guarantee
// that lets the serving layer route each partition to any live replica),
// co-location accounting (replication converts remote probes into local
// reads), and the QueryService wiring over AcquireOneOfEach.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/query_generator.h"
#include "gsi/matcher.h"
#include "gsi/query_engine.h"
#include "gsi/replication.h"
#include "service/query_service.h"
#include "test_util.h"

namespace gsi {
namespace {

void ExpectBitIdentical(const QueryResult& got, const QueryResult& want,
                        const std::string& context) {
  ASSERT_EQ(got.table.rows(), want.table.rows()) << context;
  ASSERT_EQ(got.table.cols(), want.table.cols()) << context;
  EXPECT_EQ(got.column_to_query, want.column_to_query) << context;
  for (size_t r = 0; r < want.table.rows(); ++r) {
    for (size_t c = 0; c < want.table.cols(); ++c) {
      ASSERT_EQ(got.table.At(r, c), want.table.At(r, c))
          << context << " cell (" << r << ", " << c << ")";
    }
  }
  EXPECT_TRUE(got.TableEquals(want)) << context;
}

struct DeviceSet {
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> ptrs;
};

DeviceSet MakeDevices(size_t n, const gpusim::DeviceConfig& config) {
  DeviceSet ds;
  for (size_t i = 0; i < n; ++i) {
    ds.owned.push_back(std::make_unique<gpusim::Device>(config));
    ds.ptrs.push_back(ds.owned.back().get());
  }
  return ds;
}

Result<ReplicatedGraph> BuildReplicated(const DeviceSet& ds, const Graph& g,
                                        const GsiOptions& options,
                                        size_t replicas) {
  return ReplicatedGraph::Build(ds.ptrs, g, options, HashVertexPartitioner(),
                                /*partitions=*/ds.ptrs.size(), replicas);
}

/// The selection that serves every partition from replica j (a maximally
/// spread choice for j == 0: partition p on device p).
ReplicaSelection UniformSelection(const ReplicatedGraph& rg, uint32_t j) {
  ReplicaSelection sel;
  sel.choice.assign(rg.num_partitions(), j);
  return sel;
}

// ---------------------------------------------------------- placement ---

TEST(ReplicaPlacement, StaggeredCoversEveryPartitionOnDistinctDevices) {
  for (size_t n : {1, 2, 4, 6, 8}) {
    for (size_t r = 1; r <= n; ++r) {
      Result<ReplicaPlacement> pl = MakeStaggeredPlacement(n, n, r);
      ASSERT_TRUE(pl.ok()) << "n=" << n << " r=" << r;
      ASSERT_EQ(pl->device_of.size(), n);
      size_t shares = 0;
      for (PartitionId p = 0; p < n; ++p) {
        ASSERT_EQ(pl->device_of[p].size(), r);
        std::set<size_t> distinct(pl->device_of[p].begin(),
                                  pl->device_of[p].end());
        EXPECT_EQ(distinct.size(), r)
            << "n=" << n << " r=" << r << ": replicas of partition " << p
            << " share a device";
      }
      for (size_t d = 0; d < n; ++d) shares += pl->shares_of[d].size();
      EXPECT_EQ(shares, n * r);  // K*R shares over N devices
      // shares_of is the transpose of device_of.
      for (size_t d = 0; d < n; ++d) {
        for (PartitionId p : pl->shares_of[d]) {
          EXPECT_TRUE(pl->Hosts(d, p));
        }
      }
    }
  }
}

TEST(ReplicaPlacement, EvenSharesWhenReplicasDividePool) {
  // The serving configuration: N == K, R | N -> exactly R shares per
  // device, and the first K/R devices cover every partition (one lane).
  Result<ReplicaPlacement> pl = MakeStaggeredPlacement(8, 8, 2);
  ASSERT_TRUE(pl.ok());
  std::set<PartitionId> lane_parts;
  for (size_t d = 0; d < 8; ++d) {
    EXPECT_EQ(pl->shares_of[d].size(), 2u);
    if (d < 4) {
      lane_parts.insert(pl->shares_of[d].begin(), pl->shares_of[d].end());
    }
  }
  EXPECT_EQ(lane_parts.size(), 8u) << "first N/R devices must form a lane";
}

TEST(ReplicaPlacement, RejectsInvalidShapes) {
  EXPECT_EQ(MakeStaggeredPlacement(4, 4, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeStaggeredPlacement(4, 4, 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeStaggeredPlacement(0, 4, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeStaggeredPlacement(4, 0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- build ---

TEST(ReplicatedGraphBuild, ResidentBytesScaleWithReplicas) {
  Graph g = testing::RandomGraph(400, 4, 3, 3, 23);
  const GsiOptions options = GsiOptOptions();
  uint64_t replicated = 0;
  for (size_t r : {1, 2, 4}) {
    DeviceSet ds = MakeDevices(4, options.device);
    Result<ReplicatedGraph> rg = BuildReplicated(ds, g, options, r);
    ASSERT_TRUE(rg.ok()) << rg.status().ToString();
    const ReplicationBuildStats& bs = rg->build_stats();
    if (replicated == 0) replicated = bs.replicated_bytes;
    // One full copy of the graph costs the same regardless of R...
    EXPECT_EQ(bs.replicated_bytes, replicated);
    // ...and the pool stores exactly R copies.
    EXPECT_EQ(bs.total_bytes, r * replicated);
    // Per-device residency ~ R/K of the replica (hash-balanced 4 ways).
    EXPECT_LT(bs.max_resident_bytes(),
              r * replicated / 4 + replicated / 8);
    EXPECT_GT(bs.max_resident_bytes(), r * replicated / 8);
  }
}

TEST(ReplicatedGraphBuild, ShareContentIsIdenticalAcrossReplicas) {
  Graph g = testing::RandomGraph(200, 3, 3, 2, 29);
  DeviceSet ds = MakeDevices(4, gpusim::DeviceConfig());
  Result<ReplicatedGraph> rg = BuildReplicated(ds, g, GsiOptOptions(), 2);
  ASSERT_TRUE(rg.ok());
  for (PartitionId p = 0; p < rg->num_partitions(); ++p) {
    // Same bytes and same signature words on every replica.
    EXPECT_EQ(rg->store(p, 0).device_bytes(), rg->store(p, 1).device_bytes());
    const SignatureTable& a = rg->signatures(p, 0);
    const SignatureTable& b = rg->signatures(p, 1);
    ASSERT_EQ(a.num_vertices(), b.num_vertices());
    ASSERT_EQ(a.num_vertices(), rg->owned(p).size());
    for (VertexId i = 0; i < a.num_vertices(); ++i) {
      for (int w = 0; w < a.words_per_sig(); ++w) {
        ASSERT_EQ(a.WordAt(i, w), b.WordAt(i, w))
            << "partition " << p << " row " << i << " word " << w;
      }
    }
    // StoreOn resolves each placement entry to its resident share.
    for (size_t j = 0; j < rg->num_replicas(); ++j) {
      EXPECT_EQ(rg->StoreOn(rg->placement().device_of[p][j], p),
                &rg->store(p, j));
    }
  }
}

TEST(ReplicatedGraphBuild, RejectsUnsupportedConfigurations) {
  Graph g = testing::RandomGraph(100, 2, 2, 2, 5);
  DeviceSet ds = MakeDevices(2, gpusim::DeviceConfig());
  GsiOptions csr = GsiOptOptions();
  csr.join.storage = StorageKind::kCsr;
  EXPECT_EQ(BuildReplicated(ds, g, csr, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BuildReplicated(ds, g, GsiOptOptions(), 3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ReplicatedGraph::Build({}, g, GsiOptOptions(),
                                   HashVertexPartitioner(), 2, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------- selections ---

TEST(ReplicaSelectionTest, CompactSelectionPacksOntoFewestDevices) {
  Graph g = testing::RandomGraph(200, 3, 3, 2, 31);
  DeviceSet ds = MakeDevices(4, gpusim::DeviceConfig());
  Result<ReplicatedGraph> rg = BuildReplicated(ds, g, GsiOptOptions(), 2);
  ASSERT_TRUE(rg.ok());
  ReplicaSelection sel = CompactSelection(*rg);
  std::set<size_t> devices;
  for (PartitionId p = 0; p < rg->num_partitions(); ++p) {
    devices.insert(sel.DeviceOf(rg->placement(), p));
  }
  EXPECT_EQ(devices.size(), 2u) << "K/R devices cover all K partitions";
}

TEST(ReplicaSelectionTest, SelectionFromDevicesRoundTripsAndValidates) {
  Graph g = testing::RandomGraph(200, 3, 3, 2, 37);
  DeviceSet ds = MakeDevices(4, gpusim::DeviceConfig());
  Result<ReplicatedGraph> rg = BuildReplicated(ds, g, GsiOptOptions(), 2);
  ASSERT_TRUE(rg.ok());
  ReplicaSelection sel = CompactSelection(*rg);
  std::vector<size_t> devices;
  for (PartitionId p = 0; p < rg->num_partitions(); ++p) {
    devices.push_back(sel.DeviceOf(rg->placement(), p));
  }
  Result<ReplicaSelection> back = SelectionFromDevices(*rg, devices);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->choice, sel.choice);

  // A device that holds no replica of partition 0 is rejected.
  std::vector<size_t> bad = devices;
  const std::vector<size_t>& holders = rg->placement().device_of[0];
  for (size_t d = 0; d < 4; ++d) {
    if (std::find(holders.begin(), holders.end(), d) == holders.end()) {
      bad[0] = d;
      break;
    }
  }
  EXPECT_EQ(SelectionFromDevices(*rg, bad).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------- execution ---

TEST(ReplicatedExecution, BitIdenticalForEverySelection) {
  Graph g = testing::RandomGraph(300, 3, 3, 2, 41);
  GsiMatcher sequential(g, GsiOptOptions());
  DeviceSet ds = MakeDevices(4, GsiOptOptions().device);
  Result<ReplicatedGraph> rg = BuildReplicated(ds, g, GsiOptOptions(), 2);
  ASSERT_TRUE(rg.ok());

  for (uint64_t qseed = 0; qseed < 3; ++qseed) {
    Graph q = testing::RandomQuery(g, 5, 4300 + qseed);
    Result<QueryResult> single = sequential.Find(q);
    ASSERT_TRUE(single.ok());
    // Compact (2 lanes), spread (replica 0 of each: 4 devices), rotated
    // (replica 1 of each) — the table must not depend on the choice.
    std::vector<ReplicaSelection> selections = {
        CompactSelection(*rg), UniformSelection(*rg, 0),
        UniformSelection(*rg, 1)};
    for (size_t s = 0; s < selections.size(); ++s) {
      Result<QueryResult> got =
          ExecuteQueryReplicated(*rg, selections[s], q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectBitIdentical(*got, *single,
                         "query " + std::to_string(qseed) + " selection " +
                             std::to_string(s));
    }
  }
}

TEST(ReplicatedExecution, BitIdenticalOnIntegrationGraphs) {
  for (const char* name : {"enron", "gowalla"}) {
    Result<Dataset> d = MakeDataset(name, /*scale=*/0.01);
    ASSERT_TRUE(d.ok());
    const Graph& g = d->graph;
    QueryGenConfig qc;
    qc.num_vertices = 5;
    std::vector<Graph> queries = GenerateQuerySet(g, qc, 2, 77);
    ASSERT_FALSE(queries.empty());
    GsiMatcher sequential(g, GsiOptOptions());
    for (size_t r : {2, 4}) {
      DeviceSet ds = MakeDevices(4, GsiOptOptions().device);
      Result<ReplicatedGraph> rg = BuildReplicated(ds, g, GsiOptOptions(), r);
      ASSERT_TRUE(rg.ok());
      const ReplicaSelection sel = CompactSelection(*rg);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        Result<QueryResult> single = sequential.Find(queries[qi]);
        ASSERT_TRUE(single.ok());
        Result<QueryResult> got = ExecuteQueryReplicated(*rg, sel, queries[qi]);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectBitIdentical(*got, *single,
                           std::string(name) + " query " + std::to_string(qi) + " R=" +
                               std::to_string(r));
      }
    }
  }
}

TEST(ReplicatedExecution, FullReplicationHasNoRemoteTraffic) {
  Graph g = testing::RandomGraph(400, 4, 2, 2, 7);
  Graph q = testing::RandomQuery(g, 4, 8);
  QueryEngine engine(g, GsiOptOptions());
  Result<QueryResult> single = engine.Run(q);
  ASSERT_TRUE(single.ok());

  DeviceSet ds = MakeDevices(4, engine.options().device);
  Result<ReplicatedGraph> rg = BuildReplicated(ds, g, engine.options(), 4);
  ASSERT_TRUE(rg.ok());
  // R == N: one device holds every partition, so the compact selection is
  // a single lane and nothing ever crosses the interconnect.
  ReplicaSelection sel = CompactSelection(*rg);
  Result<QueryResult> got = engine.RunPartitioned(q, *rg, sel);
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*got, *single, "full replication");
  EXPECT_EQ(got->stats.replica_lanes, 1u);
  EXPECT_EQ(got->stats.remote_probes, 0u);
  EXPECT_EQ(got->stats.halo_bytes, 0u);
  EXPECT_GT(got->stats.co_located_probes, 0u)
      << "peer-partition probes must be served by co-resident replicas";
  // Replicated runs keep the replica fields at zero on other paths.
  EXPECT_EQ(single->stats.replica_lanes, 0u);
  EXPECT_EQ(single->stats.co_located_probes, 0u);
}

TEST(ReplicatedExecution, CoLocationShrinksRemoteTraffic) {
  Graph g = testing::RandomGraph(400, 4, 2, 2, 7);
  Graph q = testing::RandomQuery(g, 4, 8);
  const GsiOptions options = GsiOptOptions();

  uint64_t remote_r1 = 0;
  uint64_t remote_r2 = 0;
  for (size_t r : {1, 2}) {
    DeviceSet ds = MakeDevices(4, options.device);
    Result<ReplicatedGraph> rg = BuildReplicated(ds, g, options, r);
    ASSERT_TRUE(rg.ok());
    Result<QueryResult> got =
        ExecuteQueryReplicated(*rg, CompactSelection(*rg), q);
    ASSERT_TRUE(got.ok());
    if (r == 1) {
      remote_r1 = got->stats.remote_probes;
      EXPECT_EQ(got->stats.co_located_probes, 0u);
      EXPECT_EQ(got->stats.replica_lanes, 4u);
    } else {
      remote_r2 = got->stats.remote_probes;
      EXPECT_GT(got->stats.co_located_probes, 0u);
      EXPECT_EQ(got->stats.replica_lanes, 2u);
    }
  }
  EXPECT_GT(remote_r1, 0u);
  EXPECT_LT(remote_r2, remote_r1)
      << "co-resident replicas must absorb some probes";
}

TEST(ReplicatedExecution, DeterministicAcrossRuns) {
  Graph g = testing::RandomGraph(300, 3, 3, 2, 11);
  Graph q = testing::RandomQuery(g, 5, 13);
  DeviceSet ds = MakeDevices(4, gpusim::DeviceConfig());
  Result<ReplicatedGraph> rg = BuildReplicated(ds, g, GsiOptOptions(), 2);
  ASSERT_TRUE(rg.ok());
  const ReplicaSelection sel = CompactSelection(*rg);
  Result<QueryResult> a = ExecuteQueryReplicated(*rg, sel, q);
  Result<QueryResult> b = ExecuteQueryReplicated(*rg, sel, q);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBitIdentical(*a, *b, "repeat run");
  EXPECT_EQ(a->stats.remote_probes, b->stats.remote_probes);
  EXPECT_EQ(a->stats.co_located_probes, b->stats.co_located_probes);
  EXPECT_EQ(a->stats.halo_bytes, b->stats.halo_bytes);
  EXPECT_DOUBLE_EQ(a->stats.join_ms, b->stats.join_ms);
}

TEST(ReplicatedExecution, RejectsBadSelectionsAndMismatchedOptions) {
  Graph g = testing::RandomGraph(100, 3, 2, 2, 5);
  Graph q = testing::RandomQuery(g, 3, 6);
  DeviceSet ds = MakeDevices(4, gpusim::DeviceConfig());
  Result<ReplicatedGraph> rg = BuildReplicated(ds, g, GsiOptOptions(), 2);
  ASSERT_TRUE(rg.ok());
  ReplicaSelection wrong_size;
  wrong_size.choice = {0, 0};
  EXPECT_EQ(ExecuteQueryReplicated(*rg, wrong_size, q).status().code(),
            StatusCode::kInvalidArgument);
  ReplicaSelection out_of_range = CompactSelection(*rg);
  out_of_range.choice[0] = 7;
  EXPECT_EQ(ExecuteQueryReplicated(*rg, out_of_range, q).status().code(),
            StatusCode::kInvalidArgument);
  QueryEngine other(g, DefaultGsiOptions());
  EXPECT_EQ(other.RunPartitioned(q, *rg, CompactSelection(*rg))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ service ---

TEST(ReplicatedService, StaysBitIdenticalUnderConcurrentLoad) {
  for (bool cache : {false, true}) {
    Graph data = testing::RandomGraph(300, 3, 4, 3, 700);
    std::vector<Graph> queries;
    for (uint64_t q = 0; q < 8; ++q) {
      queries.push_back(testing::RandomQuery(data, 5, 7000 + q));
    }
    GsiMatcher sequential(data, GsiOptOptions());

    ServiceOptions so;
    so.num_workers = 3;
    so.num_devices = 4;
    so.partition_data_graph = true;
    so.partition_replicas = 2;
    so.enable_filter_cache = cache;
    QueryService service(data, GsiOptOptions(), so);
    ASSERT_TRUE(service.init_status().ok())
        << service.init_status().ToString();

    std::vector<QueryTicket> tickets;
    for (const Graph& q : queries) {
      Result<QueryTicket> t = service.Submit(q);
      ASSERT_TRUE(t.ok());
      tickets.push_back(*t);
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      Result<QueryResult> expected = sequential.Find(queries[i]);
      Result<QueryResult> got = service.Wait(tickets[i]);
      ASSERT_EQ(expected.ok(), got.ok()) << "query " << i;
      if (!expected.ok()) continue;
      EXPECT_TRUE(got->TableEquals(*expected))
          << "query " << i << " cache=" << cache;
      EXPECT_GE(got->stats.replica_lanes, 1u);
      EXPECT_LE(got->stats.replica_lanes, 4u);
    }
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.replicated_queries, stats.completed_ok);
    EXPECT_EQ(stats.partitioned_queries, stats.completed_ok);
    EXPECT_GE(stats.avg_replica_lanes, 1.0);
    EXPECT_GE(stats.pool.group_acquires, stats.completed_ok);
    EXPECT_GE(stats.replica_pick_skew, 1.0);
    EXPECT_EQ(stats.pool.in_use, 0u);
  }
}

TEST(ReplicatedService, ValidatesPartitionReplicas) {
  Graph data = testing::RandomGraph(100, 3, 2, 2, 900);
  {
    ServiceOptions so;
    so.partition_data_graph = true;
    so.partition_replicas = 0;
    QueryService service(data, GsiOptOptions(), so);
    EXPECT_EQ(service.init_status().code(), StatusCode::kInvalidArgument);
  }
  {
    ServiceOptions so;
    so.num_devices = 4;
    so.partition_data_graph = true;
    so.partition_replicas = 5;  // > pool size
    QueryService service(data, GsiOptOptions(), so);
    EXPECT_EQ(service.init_status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(service.init_status().ToString().find("pool"),
              std::string::npos);
  }
  {
    ServiceOptions so;
    so.num_devices = 4;
    so.partition_replicas = 2;  // without partition_data_graph
    QueryService service(data, GsiOptOptions(), so);
    EXPECT_EQ(service.init_status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(
        service.Submit(testing::RandomQuery(data, 3, 1)).status().code(),
        StatusCode::kInvalidArgument);
  }
  {
    // R == pool size is legal: full replication, single-device queries.
    ServiceOptions so;
    so.num_devices = 2;
    so.partition_data_graph = true;
    so.partition_replicas = 2;
    QueryService service(data, GsiOptOptions(), so);
    ASSERT_TRUE(service.init_status().ok())
        << service.init_status().ToString();
    Result<QueryTicket> t = service.Submit(testing::RandomQuery(data, 4, 2));
    ASSERT_TRUE(t.ok());
    Result<QueryResult> got = service.Wait(*t);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->stats.replica_lanes, 1u);
    EXPECT_EQ(got->stats.remote_probes, 0u);
  }
}

}  // namespace
}  // namespace gsi
