// Every baseline engine (CPU backtrackers and GPU edge-join) must agree
// with the brute-force oracle.

#include <gtest/gtest.h>

#include "baselines/cpu_matcher.h"
#include "baselines/edge_candidates.h"
#include "baselines/oracle.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace gsi {
namespace {

using ::gsi::testing::RandomGraph;
using ::gsi::testing::RandomQuery;

class CpuAlgorithmSuite : public ::testing::TestWithParam<CpuAlgorithm> {};

TEST_P(CpuAlgorithmSuite, MatchesOracle) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph data = RandomGraph(200, 3, 4, 3, seed);
    Graph query = RandomQuery(data, 4, seed + 50);
    auto expected = EnumerateMatchesBruteForce(data, query);
    CpuMatcherOptions opts;
    opts.collect_matches = true;
    CpuMatchResult r = RunCpuMatcher(GetParam(), data, query, opts);
    EXPECT_FALSE(r.timed_out);
    EXPECT_EQ(r.num_matches, expected.size());
    EXPECT_EQ(r.SortedMatches(), expected) << "seed=" << seed;
  }
}

TEST_P(CpuAlgorithmSuite, HonorsMatchLimit) {
  Graph data = RandomGraph(100, 4, 1, 1, 9);
  Graph query = RandomQuery(data, 3, 10);
  CpuMatcherOptions opts;
  opts.match_limit = 5;
  CpuMatchResult r = RunCpuMatcher(GetParam(), data, query, opts);
  EXPECT_LE(r.num_matches, 5u);
}

TEST_P(CpuAlgorithmSuite, TimesOutGracefully) {
  Graph data = RandomGraph(600, 6, 1, 1, 11);  // unlabeled-ish: explosive
  Graph query = RandomQuery(data, 8, 12);
  CpuMatcherOptions opts;
  opts.timeout_ms = 1.0;
  CpuMatchResult r = RunCpuMatcher(GetParam(), data, query, opts);
  // Either it truly finished in 1ms or it set the timeout flag.
  if (r.timed_out) {
    EXPECT_LT(r.wall_ms, 1000.0);
  }
}

INSTANTIATE_TEST_SUITE_P(All, CpuAlgorithmSuite,
                         ::testing::Values(CpuAlgorithm::kUllmann,
                                           CpuAlgorithm::kVf2,
                                           CpuAlgorithm::kCflMatch),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case CpuAlgorithm::kUllmann:
                               return std::string("Ullmann");
                             case CpuAlgorithm::kVf2:
                               return std::string("Vf2");
                             case CpuAlgorithm::kCflMatch:
                               return std::string("CflMatch");
                           }
                           return std::string("Unknown");
                         });

TEST(GpuBaselines, GpsmMatchesOracle) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph data = RandomGraph(200, 3, 4, 3, seed + 20);
    Graph query = RandomQuery(data, 4, seed + 70);
    auto expected = EnumerateMatchesBruteForce(data, query);
    EdgeJoinMatcher gpsm = MakeGpsmMatcher(data);
    Result<QueryResult> r = gpsm.Find(query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->AllMatchesSorted(), expected) << "seed=" << seed;
  }
}

TEST(GpuBaselines, GunrockSmMatchesOracle) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph data = RandomGraph(200, 3, 4, 3, seed + 30);
    Graph query = RandomQuery(data, 4, seed + 80);
    auto expected = EnumerateMatchesBruteForce(data, query);
    EdgeJoinMatcher gsm = MakeGunrockSmMatcher(data);
    Result<QueryResult> r = gsm.Find(query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->AllMatchesSorted(), expected) << "seed=" << seed;
  }
}

TEST(GpuBaselines, QueriesWithNonTreeEdges) {
  // Dense little query exercising the semi-join path.
  GraphBuilder db;
  db.AddVertices(6, 0);
  for (VertexId a = 0; a < 6; ++a) {
    for (VertexId b = a + 1; b < 6; ++b) db.AddEdge(a, b, 0);
  }
  Graph data = std::move(db).Build().value();
  GraphBuilder qb;
  qb.AddVertices(4, 0);
  qb.AddEdge(0, 1, 0);
  qb.AddEdge(1, 2, 0);
  qb.AddEdge(2, 3, 0);
  qb.AddEdge(3, 0, 0);  // cycle: one non-tree edge
  qb.AddEdge(0, 2, 0);  // chord: another
  Graph query = std::move(qb).Build().value();
  auto expected = EnumerateMatchesBruteForce(data, query);
  ASSERT_FALSE(expected.empty());
  EdgeJoinMatcher gpsm = MakeGpsmMatcher(data);
  Result<QueryResult> r = gpsm.Find(query);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AllMatchesSorted(), expected);
}

TEST(GpuBaselines, RowCapReturnsResourceExhausted) {
  Graph data = RandomGraph(64, 8, 1, 1, 40);
  Graph query = RandomQuery(data, 5, 41);
  EdgeJoinMatcher::Config c;
  c.name = "tiny";
  c.max_rows = 8;
  EdgeJoinMatcher m(data, std::move(c));
  Result<QueryResult> r = m.Find(query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(Oracle, FindsTriangles) {
  GraphBuilder b;
  b.AddVertices(4, 0);
  b.AddEdge(0, 1, 0);
  b.AddEdge(1, 2, 0);
  b.AddEdge(2, 0, 0);
  b.AddEdge(2, 3, 0);
  Graph data = std::move(b).Build().value();
  GraphBuilder qb;
  qb.AddVertices(3, 0);
  qb.AddEdge(0, 1, 0);
  qb.AddEdge(1, 2, 0);
  qb.AddEdge(2, 0, 0);
  Graph q = std::move(qb).Build().value();
  auto matches = EnumerateMatchesBruteForce(data, q);
  EXPECT_EQ(matches.size(), 6u);  // 3! orderings of the one triangle
}

TEST(Oracle, RespectsEdgeLabels) {
  GraphBuilder b;
  b.AddVertices(3, 0);
  b.AddEdge(0, 1, 1);
  b.AddEdge(1, 2, 2);
  Graph data = std::move(b).Build().value();
  GraphBuilder qb;
  qb.AddVertices(2, 0);
  qb.AddEdge(0, 1, 2);
  Graph q = std::move(qb).Build().value();
  auto matches = EnumerateMatchesBruteForce(data, q);
  EXPECT_EQ(matches.size(), 2u);  // (1,2) and (2,1)
}

}  // namespace
}  // namespace gsi
