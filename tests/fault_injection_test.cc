// Deterministic fault injection (gpusim::FaultPlan): triggers trip at the
// same simulated point on every run, tripped devices surface kUnavailable
// through the execution paths with partial results discarded, and Repair
// restores bit-identical service.

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/device.h"
#include "gsi/fault.h"
#include "gsi/matcher.h"
#include "gsi/query_engine.h"
#include "gsi/sharded_engine.h"
#include "test_util.h"
#include "util/status.h"

namespace gsi {
namespace {

TEST(FaultPlan, KernelLaunchTriggerCountsFromArming) {
  gpusim::Device dev;
  dev.ChargeKernelLaunch();  // history before arming must not count
  gpusim::FaultPlan plan;
  plan.fail_at_kernel_launch = 3;
  plan.reason = "kernel trigger";
  dev.InjectFault(plan);
  dev.ChargeKernelLaunch();
  dev.ChargeKernelLaunch();
  EXPECT_TRUE(dev.healthy());
  dev.ChargeKernelLaunch();  // third since arming
  EXPECT_FALSE(dev.healthy());
  EXPECT_EQ(dev.fault_message(), "kernel trigger");
}

TEST(FaultPlan, TransactionTriggerCountsFromArming) {
  gpusim::Device dev;
  dev.ChargeRemoteTransfer(128 * 10);  // 10 lines of pre-arming history
  gpusim::FaultPlan plan;
  plan.fail_after_transactions = 4;
  dev.InjectFault(plan);
  dev.ChargeRemoteTransfer(128 * 3);  // 3 lines since arming
  EXPECT_TRUE(dev.healthy());
  dev.ChargeRemoteTransfer(128);  // 4th line trips
  EXPECT_FALSE(dev.healthy());
}

TEST(FaultPlan, FirstTripWinsAndRepairClears) {
  gpusim::Device dev;
  dev.Trip("first");
  dev.Trip("second");
  EXPECT_FALSE(dev.healthy());
  EXPECT_EQ(dev.fault_message(), "first");
  dev.Repair();
  EXPECT_TRUE(dev.healthy());
  EXPECT_TRUE(dev.fault_message().empty());
  // Repair disarmed the (nonexistent) plan: more work never trips.
  dev.ChargeKernelLaunch();
  EXPECT_TRUE(dev.healthy());
}

TEST(FaultPlan, LeaseTriggerFiresOnOnLeaseAcquired) {
  gpusim::Device dev;
  gpusim::FaultPlan plan;
  plan.fail_on_lease = true;
  dev.InjectFault(plan);
  EXPECT_TRUE(dev.healthy());
  dev.OnLeaseAcquired();
  EXPECT_FALSE(dev.healthy());
}

TEST(CheckDeviceHealthy, NamesDeviceAndPhase) {
  gpusim::Device dev;
  dev.set_ordinal(3);
  EXPECT_TRUE(CheckDeviceHealthy(dev, "join").ok());
  dev.Trip("boom");
  Status s = CheckDeviceHealthy(dev, "join");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("device 3"), std::string::npos);
  EXPECT_NE(s.message().find("join"), std::string::npos);
  EXPECT_NE(s.message().find("boom"), std::string::npos);
}

TEST(FaultInjection, MatcherFailsUnavailableThenRepairRestoresBitIdentical) {
  Graph data = testing::RandomGraph(300, 3, 4, 3, 11);
  Graph query = testing::RandomQuery(data, 5, 12);
  GsiMatcher matcher(data, GsiOptOptions());
  Result<QueryResult> baseline = matcher.Find(query);
  ASSERT_TRUE(baseline.ok());

  gpusim::FaultPlan plan;
  plan.fail_at_kernel_launch = 2;
  matcher.device().InjectFault(plan);
  Result<QueryResult> failed = matcher.Find(query);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  // The fail-stop model never corrupts state: a repaired device produces
  // the exact same table (partial results of the failed run were dropped).
  matcher.device().Repair();
  Result<QueryResult> again = matcher.Find(query);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->TableEquals(*baseline));
  EXPECT_EQ(again->num_matches(), baseline->num_matches());
}

TEST(FaultInjection, TripPointIsDeterministicAcrossRuns) {
  Graph data = testing::RandomGraph(300, 3, 4, 3, 21);
  Graph query = testing::RandomQuery(data, 5, 22);
  gpusim::FaultPlan plan;
  plan.fail_at_kernel_launch = 5;

  // Two independent matchers run the identical workload with the identical
  // plan: both must trip, and at the identical simulated point — counters
  // are pure functions of the charged work.
  std::vector<gpusim::MemStats> at_trip;
  for (int run = 0; run < 2; ++run) {
    GsiMatcher matcher(data, GsiOptOptions());
    matcher.device().InjectFault(plan);
    Result<QueryResult> r = matcher.Find(query);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
    at_trip.push_back(matcher.device().stats());
  }
  EXPECT_EQ(at_trip[0].kernel_launches, at_trip[1].kernel_launches);
  EXPECT_EQ(at_trip[0].gld, at_trip[1].gld);
  EXPECT_EQ(at_trip[0].gst, at_trip[1].gst);
  EXPECT_EQ(at_trip[0].simulated_cycles, at_trip[1].simulated_cycles);
}

TEST(FaultInjection, ShardedExecutionDetectsAnyDeadDevice) {
  Graph data = testing::RandomGraph(300, 3, 4, 3, 31);
  Graph query = testing::RandomQuery(data, 5, 32);
  QueryEngine engine(data, GsiOptOptions());
  ASSERT_TRUE(engine.init_status().ok());
  GsiMatcher matcher(data, GsiOptOptions());
  Result<QueryResult> baseline = matcher.Find(query);
  ASSERT_TRUE(baseline.ok());

  for (size_t victim = 0; victim < 2; ++victim) {
    gpusim::Device a(engine.options().device);
    gpusim::Device b(engine.options().device);
    a.set_ordinal(0);
    b.set_ordinal(1);
    std::vector<gpusim::Device*> devs = {&a, &b};
    gpusim::FaultPlan plan;
    plan.fail_at_kernel_launch = 1;
    devs[victim]->InjectFault(plan);
    ShardOptions shard;
    Result<QueryResult> r =
        ExecuteQuerySharded(devs, data, engine.store(), engine.filter(),
                            engine.options(), shard, query);
    ASSERT_FALSE(r.ok()) << "victim " << victim;
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);

    // Repair both and rerun on the same devices: bit-identical to the
    // single-device baseline (the sharded guarantee survives a fault).
    a.Repair();
    b.Repair();
    Result<QueryResult> ok =
        ExecuteQuerySharded(devs, data, engine.store(), engine.filter(),
                            engine.options(), shard, query);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(ok->TableEquals(*baseline));
  }
}

}  // namespace
}  // namespace gsi
