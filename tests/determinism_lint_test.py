#!/usr/bin/env python3
"""Self-test for tools/determinism_lint.py (ctest: determinism_lint_selftest).

Asserts the exact finding set over the fixture sources in
tests/lint_fixtures/, that NOLINT escapes suppress (and wrong-rule NOLINTs
do not), that the baseline gates only *new* findings, and that the real
execution-path tree is clean under the checked-in baseline.
"""

import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "tools", "determinism_lint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")
FINDING_RE = re.compile(r"^(\S+):(\d+): \[determinism:([\w-]+)\]")

failures = []


def check(condition, message):
    if not condition:
        failures.append(message)
        print("FAIL: %s" % message)
    else:
        print("ok:   %s" % message)


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, "--engine=regex"] + list(args),
        capture_output=True, text=True, cwd=REPO_ROOT)
    return proc.returncode, proc.stdout


def parse_findings(output):
    found = []
    for line in output.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found.append((m.group(1), int(m.group(2)), m.group(3)))
    return found


def fixture_line(name, anchor):
    """1-based line number of the first fixture line containing `anchor`."""
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as f:
        for i, line in enumerate(f, 1):
            if anchor in line:
                return i
    raise AssertionError("anchor %r not in %s" % (anchor, name))


def main():
    v = "tests/lint_fixtures/violations.cc"
    s = "tests/lint_fixtures/suppressed.cc"
    rc = "tests/lint_fixtures/raw_clock/violations.cc"

    # --- exact findings over the fixtures (order: path, line, rule).
    code, out = run_lint("--list", "tests/lint_fixtures")
    check(code == 0, "--list exits 0")
    findings = parse_findings(out)
    vl = lambda anchor: fixture_line("violations.cc", anchor)
    rcl = lambda anchor: fixture_line("raw_clock/violations.cc", anchor)
    expected = [
        # raw-clock is scoped: it fires in raw_clock/ but NOT on the
        # <chrono> includes of the sibling fixtures below.
        (rc, rcl("#include <chrono>"), "raw-clock"),
        (rc, rcl("std::chrono::nanoseconds g_budget"), "raw-clock"),
        (s, fixture_line("suppressed.cc", "for (int id : ids) n += id;"),
         "unordered-iteration"),  # wrong-rule NOLINT must not suppress
        (v, vl("std::set<Node*> g_dirty;"), "pointer-keyed-container"),
        (v, vl("std::unordered_map<Node*, int> g_ranks;"),
         "pointer-keyed-container"),
        (v, vl("for (const auto& kv : counts)"), "unordered-iteration"),
        (v, vl("for (int id : ids) {"), "unordered-iteration"),
        (v, vl("acc += weight["), "float-accumulation"),
        (v, vl("*ids.begin()"), "unordered-iteration"),
        (v, vl("std::random_device rd;"), "nondeterministic-seed"),
        (v, vl("steady_clock::now()"), "nondeterministic-seed"),
        # srand(time(nullptr)): both tokens, two findings, one line.
        (v, vl("srand(static_cast"), "nondeterministic-seed"),
        (v, vl("srand(static_cast"), "nondeterministic-seed"),
    ]
    check(findings == expected,
          "fixture findings match exactly (got %d, want %d)\n  got:  %s\n"
          "  want: %s" % (len(findings), len(expected), findings, expected))

    # --- every NOLINT-escaped hazard in suppressed.cc stays silent.
    suppressed_findings = [f for f in findings if f[0] == s]
    check(len(suppressed_findings) == 1,
          "NOLINT(determinism[:rule]) suppresses all but the wrong-rule site")

    # --- gate mode: an empty baseline reports every fixture finding as new.
    with tempfile.TemporaryDirectory() as tmp:
        empty = os.path.join(tmp, "empty_baseline.txt")
        open(empty, "w").close()
        code, out = run_lint("--baseline", empty, "tests/lint_fixtures")
        check(code == 1, "gate fails on unbaselined findings")
        check("%d new finding(s)" % len(expected) in out,
              "gate counts all fixture findings as new")

        # --- --write-baseline grandfathers them; the gate then passes.
        base = os.path.join(tmp, "baseline.txt")
        code, _ = run_lint("--baseline", base, "--write-baseline",
                           "tests/lint_fixtures")
        check(code == 0, "--write-baseline succeeds")
        code, out = run_lint("--baseline", base, "tests/lint_fixtures")
        check(code == 0, "gate passes once findings are baselined")

        # --- a *new* violation still fails against that baseline.
        extra_dir = os.path.join(tmp, "extra")
        os.makedirs(extra_dir)
        with open(os.path.join(extra_dir, "fresh.cc"), "w") as f:
            f.write("#include <unordered_set>\n"
                    "int F(const std::unordered_set<int>& ids) {\n"
                    "  int n = 0;\n"
                    "  for (int id : ids) n += id;\n"
                    "  return n;\n"
                    "}\n")
        code, out = run_lint("--baseline", base, "tests/lint_fixtures",
                             extra_dir)
        check(code == 1, "a new violation fails against the baseline")
        check("1 new finding(s)" in out, "only the new violation is new")

    # --- the real execution path is clean under the checked-in baseline
    # (raw-clock included: src/gsi and src/gpusim route timestamps through
    # obs::Clock; src/obs itself is outside the lint roots).
    code, out = run_lint()
    check(code == 0,
          "src/gsi + src/gpusim + src/service are clean (checked-in "
          "baseline)")

    if failures:
        print("\n%d check(s) failed" % len(failures))
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
