// Chaos sweep: inject deterministic faults at varying points across every
// service execution mode (single-device, sharded, partitioned R=1,
// replicated R=2) and assert the tentpole invariant — under any single
// fault with spare capacity (a second device or replica), results stay
// bit-identical to GsiMatcher::Find; with R=1 the query fails cleanly with
// kUnavailable and the service keeps serving after a repair.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/device.h"
#include "gsi/matcher.h"
#include "gsi/partition.h"
#include "service/query_service.h"
#include "test_util.h"
#include "util/status.h"

namespace gsi {
namespace {

Graph ChaosData(uint64_t seed) {
  return testing::RandomGraph(250, 3, 4, 3, seed);
}

/// Submits `query`, waits, and returns the result.
Result<QueryResult> RunThrough(QueryService& service, const Graph& query,
                               int max_attempts = 0) {
  SubmitOptions so;
  so.max_attempts = max_attempts;
  Result<QueryTicket> t = service.Submit(query, so);
  if (!t.ok()) return t.status();
  return service.Wait(*t);
}

/// Fault points swept per mode. Kernel and transaction triggers are sized
/// from the baseline's measured counters (`kernels`, `transactions` = the
/// whole query's charged work), so every plan is guaranteed to trip inside
/// the query: early (1), mid-query (half), and at the very last charge.
/// fail_on_lease catches acquisition itself.
std::vector<gpusim::FaultPlan> FaultPoints(uint64_t kernels,
                                           uint64_t transactions) {
  std::vector<gpusim::FaultPlan> plans;
  for (uint64_t k : {uint64_t{1}, kernels / 2, kernels}) {
    if (k == 0) continue;
    gpusim::FaultPlan p;
    p.fail_at_kernel_launch = k;
    plans.push_back(p);
  }
  for (uint64_t n : {uint64_t{1}, transactions / 2, transactions}) {
    if (n == 0) continue;
    gpusim::FaultPlan p;
    p.fail_after_transactions = n;
    plans.push_back(p);
  }
  gpusim::FaultPlan lease;
  lease.fail_on_lease = true;
  plans.push_back(lease);
  return plans;
}

uint64_t TotalKernels(const QueryStats& s) {
  return s.filter.kernel_launches + s.join.kernel_launches;
}

uint64_t TotalTransactions(const QueryStats& s) {
  return s.filter.gld + s.filter.gst + s.join.gld + s.join.gst;
}

TEST(Chaos, SingleDeviceModeFailsOverToSpareDevice) {
  Graph data = ChaosData(41);
  Graph query = testing::RandomQuery(data, 5, 42);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> baseline = sequential.Find(query);
  ASSERT_TRUE(baseline.ok());
  // The service's single-device path charges exactly the baseline's work,
  // so plans derived from it always trip mid-query.
  ASSERT_GE(TotalKernels(baseline->stats), 2u);
  ASSERT_GE(TotalTransactions(baseline->stats), 2u);

  for (const gpusim::FaultPlan& plan : FaultPoints(
           TotalKernels(baseline->stats), TotalTransactions(baseline->stats))) {
    ServiceOptions so;
    so.num_workers = 1;  // one worker: the faulted device is always picked
    so.num_devices = 2;
    so.default_max_attempts = 2;
    QueryService service(data, GsiOptOptions(), so);
    ASSERT_TRUE(service.init_status().ok());
    ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());

    Result<QueryResult> r = RunThrough(service, query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->TableEquals(*baseline));
    EXPECT_EQ(r->stats.attempts, 2u);  // attempt 1 died on device 0
    EXPECT_GT(r->stats.backoff_ms, 0.0);

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed_ok, 1u);
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_GE(stats.device_failures, 1u);
    EXPECT_EQ(stats.quarantined_devices, 1u);
    EXPECT_TRUE(service.RepairDevice(0));
    EXPECT_EQ(service.stats().quarantined_devices, 0u);
  }
}

TEST(Chaos, ShardedModeRetriesOnSurvivingDevices) {
  Graph data = ChaosData(51);
  Graph query = testing::RandomQuery(data, 5, 52);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> baseline = sequential.Find(query);
  ASSERT_TRUE(baseline.ok());

  for (size_t victim : {0u, 1u}) {
    ServiceOptions so;
    so.num_workers = 1;
    so.num_devices = 2;
    so.max_shards_per_query = 2;
    so.shard_min_candidates = 1;  // force fan-out on the tiny workload
    so.default_max_attempts = 2;
    QueryService service(data, GsiOptOptions(), so);
    ASSERT_TRUE(service.init_status().ok());
    // fail_on_lease trips whichever role the victim is leased into —
    // primary (Acquire) or extra shard (TryAcquire) — deterministically,
    // independent of how much join work each shard receives.
    gpusim::FaultPlan plan;
    plan.fail_on_lease = true;
    ASSERT_TRUE(service.InjectDeviceFault(victim, plan).ok());

    // Whichever device dies (primary or extra shard), the retry reruns on
    // what survives — the sharded engine is bit-identical at any width.
    Result<QueryResult> r = RunThrough(service, query);
    ASSERT_TRUE(r.ok()) << "victim " << victim << ": "
                        << r.status().ToString();
    EXPECT_TRUE(r->TableEquals(*baseline));
    EXPECT_EQ(r->stats.attempts, 2u);
    EXPECT_EQ(service.stats().quarantined_devices, 1u);
  }
}

TEST(Chaos, PartitionedModeWithoutReplicasFailsCleanlyAndRepairs) {
  Graph data = ChaosData(61);
  Graph query = testing::RandomQuery(data, 5, 62);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> baseline = sequential.Find(query);
  ASSERT_TRUE(baseline.ok());

  ServiceOptions so;
  so.num_workers = 1;
  so.num_devices = 2;
  so.partition_data_graph = true;  // R = 1: the partitions are the data
  so.default_max_attempts = 2;
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());

  gpusim::FaultPlan plan;
  plan.fail_at_kernel_launch = 2;
  ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());

  // No replica holds partition 0's data: the retry cannot succeed, so the
  // query fails with the actionable availability error...
  Result<QueryResult> r = RunThrough(service, query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.unavailable_queries, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.quarantined_devices, 1u);

  // ...and the service keeps serving: repair re-admits the device and the
  // same submission now matches the sequential baseline bit-for-bit.
  ASSERT_TRUE(service.RepairDevice(0));
  Result<QueryResult> ok = RunThrough(service, query);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->TableEquals(*baseline));
  EXPECT_EQ(service.stats().completed_ok, 1u);
}

TEST(Chaos, ReplicatedModeSurvivesEveryFaultPointBitIdentical) {
  Graph data = ChaosData(71);
  Graph query = testing::RandomQuery(data, 5, 72);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> baseline = sequential.Find(query);
  ASSERT_TRUE(baseline.ok());

  // Early trip points only: the replica selection packs both partitions
  // onto device 0, whose scan phase alone runs well past 5 kernels and 16
  // transactions — every plan below is guaranteed to trip. (Baseline-sized
  // points would assume device 0 charges exactly the single-device work,
  // which replication does not promise.)
  for (const gpusim::FaultPlan& plan : FaultPoints(/*kernels=*/5,
                                                   /*transactions=*/16)) {
    ServiceOptions so;
    so.num_workers = 1;
    so.num_devices = 2;
    so.partition_data_graph = true;
    so.partition_replicas = 2;  // every partition lives on both devices
    so.default_max_attempts = 2;
    QueryService service(data, GsiOptOptions(), so);
    ASSERT_TRUE(service.init_status().ok());
    ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());

    // The retry re-solves group coverage onto the surviving replica.
    Result<QueryResult> r = RunThrough(service, query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->TableEquals(*baseline));
    EXPECT_EQ(r->stats.attempts, 2u);

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed_ok, 1u);
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_EQ(stats.failovers, 1u);
    EXPECT_EQ(stats.quarantined_devices, 1u);
  }
}

TEST(Chaos, WarmHaloCacheStaysBitIdenticalAcrossFailover) {
  // The halo leg of the sweep: warm the per-device caches with a clean
  // query, kill a device mid-flight, and require the failover re-execution
  // (whose surviving lane still holds warm entries) to stay bit-identical —
  // cached bytes are a transport optimization, never an answer source that
  // can drift from the stores.
  Graph data = ChaosData(91);
  Graph query = testing::RandomQuery(data, 5, 92);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> baseline = sequential.Find(query);
  ASSERT_TRUE(baseline.ok());

  ServiceOptions so;
  so.num_workers = 1;
  so.num_devices = 2;
  so.partition_data_graph = true;
  so.partition_replicas = 2;
  so.default_max_attempts = 2;
  so.halo_budget_bytes = 1 << 16;
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());

  // Warm run, no fault: caches fill.
  Result<QueryResult> warm = RunThrough(service, query);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->TableEquals(*baseline));

  // The pool rotates replica picks for balance, so the second query packs
  // onto device 1 — fault it there; the failover lands back on device 0,
  // whose halo cache is warm from the first query.
  gpusim::FaultPlan plan;
  plan.fail_at_kernel_launch = 2;
  ASSERT_TRUE(service.InjectDeviceFault(1, plan).ok());
  Result<QueryResult> failed_over = RunThrough(service, query);
  ASSERT_TRUE(failed_over.ok()) << failed_over.status().ToString();
  EXPECT_TRUE(failed_over->TableEquals(*baseline));
  EXPECT_EQ(failed_over->stats.attempts, 2u);
  EXPECT_EQ(service.stats().failovers, 1u);

  // After repair the tripped device serves again; its cache was fetched in
  // a previous fault epoch and must have been discarded, so the answer is
  // still the baseline's.
  ASSERT_TRUE(service.RepairDevice(1));
  Result<QueryResult> repaired = RunThrough(service, query);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_TRUE(repaired->TableEquals(*baseline));
  EXPECT_EQ(service.stats().completed_ok, 3u);
}

TEST(Chaos, HaloCacheInvalidatesOnceAcrossTripAndRepair) {
  // Direct partition-layer view of the same rule: a warmed cache holds
  // entries, a trip + repair cycle bumps the device's fault epoch, and the
  // first post-repair execution discards everything it had — observable as
  // exactly one invalidation and a still-identical table.
  Graph data = ChaosData(95);
  Graph query = testing::RandomQuery(data, 5, 96);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> baseline = sequential.Find(query);
  ASSERT_TRUE(baseline.ok());

  GsiOptions opt = GsiOptOptions();
  opt.halo_budget_bytes = 1 << 20;
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> devs;
  for (int i = 0; i < 2; ++i) {
    owned.push_back(std::make_unique<gpusim::Device>(opt.device));
    devs.push_back(owned.back().get());
  }
  Result<PartitionedGraph> pg =
      PartitionedGraph::Build(devs, data, opt, HashVertexPartitioner());
  ASSERT_TRUE(pg.ok());
  Result<QueryResult> warm = ExecuteQueryPartitioned(*pg, query);
  ASSERT_TRUE(warm.ok());
  // Trip whichever lane actually cached remote lists (which one does is a
  // property of the workload, not of the cache).
  const PartitionId victim =
      pg->halo_cache(0)->stats().entries > 0 ? 0 : 1;
  ASSERT_GT(pg->halo_cache(victim)->stats().entries, 0u);

  devs[victim]->Trip("chaos");
  devs[victim]->Repair();
  Result<QueryResult> after = ExecuteQueryPartitioned(*pg, query);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->TableEquals(*baseline));
  EXPECT_EQ(pg->halo_cache(victim)->stats().invalidations, 1u);
  EXPECT_EQ(pg->halo_cache(1 - victim)->stats().invalidations, 0u);
}

TEST(Chaos, PerTicketMaxAttemptsOverridesServiceDefault) {
  Graph data = ChaosData(81);
  Graph query = testing::RandomQuery(data, 5, 82);

  ServiceOptions so;
  so.num_workers = 1;
  so.num_devices = 2;
  so.default_max_attempts = 1;  // service default: fail fast
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());
  gpusim::FaultPlan plan;
  plan.fail_at_kernel_launch = 1;
  ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());

  // The ticket raises its own budget and survives.
  Result<QueryResult> r = RunThrough(service, query, /*max_attempts=*/3);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.attempts, 2u);

  // A fail-fast ticket against a fresh fault reports kUnavailable.
  ASSERT_TRUE(service.RepairDevice(0));
  ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());
  Result<QueryResult> fast = RunThrough(service, query, /*max_attempts=*/1);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace gsi
