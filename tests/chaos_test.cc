// Chaos sweep: inject deterministic faults at varying points across every
// service execution mode (single-device, sharded, partitioned R=1,
// replicated R=2) and assert the tentpole invariant — under any single
// fault with spare capacity (a second device or replica), results stay
// bit-identical to GsiMatcher::Find; with R=1 the query fails cleanly with
// kUnavailable and the service keeps serving after a repair.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gpusim/device.h"
#include "gsi/matcher.h"
#include "service/query_service.h"
#include "test_util.h"
#include "util/status.h"

namespace gsi {
namespace {

Graph ChaosData(uint64_t seed) {
  return testing::RandomGraph(250, 3, 4, 3, seed);
}

/// Submits `query`, waits, and returns the result.
Result<QueryResult> RunThrough(QueryService& service, const Graph& query,
                               int max_attempts = 0) {
  SubmitOptions so;
  so.max_attempts = max_attempts;
  Result<QueryTicket> t = service.Submit(query, so);
  if (!t.ok()) return t.status();
  return service.Wait(*t);
}

/// Fault points swept per mode. Kernel and transaction triggers are sized
/// from the baseline's measured counters (`kernels`, `transactions` = the
/// whole query's charged work), so every plan is guaranteed to trip inside
/// the query: early (1), mid-query (half), and at the very last charge.
/// fail_on_lease catches acquisition itself.
std::vector<gpusim::FaultPlan> FaultPoints(uint64_t kernels,
                                           uint64_t transactions) {
  std::vector<gpusim::FaultPlan> plans;
  for (uint64_t k : {uint64_t{1}, kernels / 2, kernels}) {
    if (k == 0) continue;
    gpusim::FaultPlan p;
    p.fail_at_kernel_launch = k;
    plans.push_back(p);
  }
  for (uint64_t n : {uint64_t{1}, transactions / 2, transactions}) {
    if (n == 0) continue;
    gpusim::FaultPlan p;
    p.fail_after_transactions = n;
    plans.push_back(p);
  }
  gpusim::FaultPlan lease;
  lease.fail_on_lease = true;
  plans.push_back(lease);
  return plans;
}

uint64_t TotalKernels(const QueryStats& s) {
  return s.filter.kernel_launches + s.join.kernel_launches;
}

uint64_t TotalTransactions(const QueryStats& s) {
  return s.filter.gld + s.filter.gst + s.join.gld + s.join.gst;
}

TEST(Chaos, SingleDeviceModeFailsOverToSpareDevice) {
  Graph data = ChaosData(41);
  Graph query = testing::RandomQuery(data, 5, 42);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> baseline = sequential.Find(query);
  ASSERT_TRUE(baseline.ok());
  // The service's single-device path charges exactly the baseline's work,
  // so plans derived from it always trip mid-query.
  ASSERT_GE(TotalKernels(baseline->stats), 2u);
  ASSERT_GE(TotalTransactions(baseline->stats), 2u);

  for (const gpusim::FaultPlan& plan : FaultPoints(
           TotalKernels(baseline->stats), TotalTransactions(baseline->stats))) {
    ServiceOptions so;
    so.num_workers = 1;  // one worker: the faulted device is always picked
    so.num_devices = 2;
    so.default_max_attempts = 2;
    QueryService service(data, GsiOptOptions(), so);
    ASSERT_TRUE(service.init_status().ok());
    ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());

    Result<QueryResult> r = RunThrough(service, query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->TableEquals(*baseline));
    EXPECT_EQ(r->stats.attempts, 2u);  // attempt 1 died on device 0
    EXPECT_GT(r->stats.backoff_ms, 0.0);

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed_ok, 1u);
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_GE(stats.device_failures, 1u);
    EXPECT_EQ(stats.quarantined_devices, 1u);
    EXPECT_TRUE(service.RepairDevice(0));
    EXPECT_EQ(service.stats().quarantined_devices, 0u);
  }
}

TEST(Chaos, ShardedModeRetriesOnSurvivingDevices) {
  Graph data = ChaosData(51);
  Graph query = testing::RandomQuery(data, 5, 52);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> baseline = sequential.Find(query);
  ASSERT_TRUE(baseline.ok());

  for (size_t victim : {0u, 1u}) {
    ServiceOptions so;
    so.num_workers = 1;
    so.num_devices = 2;
    so.max_shards_per_query = 2;
    so.shard_min_candidates = 1;  // force fan-out on the tiny workload
    so.default_max_attempts = 2;
    QueryService service(data, GsiOptOptions(), so);
    ASSERT_TRUE(service.init_status().ok());
    // fail_on_lease trips whichever role the victim is leased into —
    // primary (Acquire) or extra shard (TryAcquire) — deterministically,
    // independent of how much join work each shard receives.
    gpusim::FaultPlan plan;
    plan.fail_on_lease = true;
    ASSERT_TRUE(service.InjectDeviceFault(victim, plan).ok());

    // Whichever device dies (primary or extra shard), the retry reruns on
    // what survives — the sharded engine is bit-identical at any width.
    Result<QueryResult> r = RunThrough(service, query);
    ASSERT_TRUE(r.ok()) << "victim " << victim << ": "
                        << r.status().ToString();
    EXPECT_TRUE(r->TableEquals(*baseline));
    EXPECT_EQ(r->stats.attempts, 2u);
    EXPECT_EQ(service.stats().quarantined_devices, 1u);
  }
}

TEST(Chaos, PartitionedModeWithoutReplicasFailsCleanlyAndRepairs) {
  Graph data = ChaosData(61);
  Graph query = testing::RandomQuery(data, 5, 62);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> baseline = sequential.Find(query);
  ASSERT_TRUE(baseline.ok());

  ServiceOptions so;
  so.num_workers = 1;
  so.num_devices = 2;
  so.partition_data_graph = true;  // R = 1: the partitions are the data
  so.default_max_attempts = 2;
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());

  gpusim::FaultPlan plan;
  plan.fail_at_kernel_launch = 2;
  ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());

  // No replica holds partition 0's data: the retry cannot succeed, so the
  // query fails with the actionable availability error...
  Result<QueryResult> r = RunThrough(service, query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.unavailable_queries, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.quarantined_devices, 1u);

  // ...and the service keeps serving: repair re-admits the device and the
  // same submission now matches the sequential baseline bit-for-bit.
  ASSERT_TRUE(service.RepairDevice(0));
  Result<QueryResult> ok = RunThrough(service, query);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->TableEquals(*baseline));
  EXPECT_EQ(service.stats().completed_ok, 1u);
}

TEST(Chaos, ReplicatedModeSurvivesEveryFaultPointBitIdentical) {
  Graph data = ChaosData(71);
  Graph query = testing::RandomQuery(data, 5, 72);
  GsiMatcher sequential(data, GsiOptOptions());
  Result<QueryResult> baseline = sequential.Find(query);
  ASSERT_TRUE(baseline.ok());

  // Early trip points only: the replica selection packs both partitions
  // onto device 0, whose scan phase alone runs well past 5 kernels and 16
  // transactions — every plan below is guaranteed to trip. (Baseline-sized
  // points would assume device 0 charges exactly the single-device work,
  // which replication does not promise.)
  for (const gpusim::FaultPlan& plan : FaultPoints(/*kernels=*/5,
                                                   /*transactions=*/16)) {
    ServiceOptions so;
    so.num_workers = 1;
    so.num_devices = 2;
    so.partition_data_graph = true;
    so.partition_replicas = 2;  // every partition lives on both devices
    so.default_max_attempts = 2;
    QueryService service(data, GsiOptOptions(), so);
    ASSERT_TRUE(service.init_status().ok());
    ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());

    // The retry re-solves group coverage onto the surviving replica.
    Result<QueryResult> r = RunThrough(service, query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->TableEquals(*baseline));
    EXPECT_EQ(r->stats.attempts, 2u);

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed_ok, 1u);
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_EQ(stats.failovers, 1u);
    EXPECT_EQ(stats.quarantined_devices, 1u);
  }
}

TEST(Chaos, PerTicketMaxAttemptsOverridesServiceDefault) {
  Graph data = ChaosData(81);
  Graph query = testing::RandomQuery(data, 5, 82);

  ServiceOptions so;
  so.num_workers = 1;
  so.num_devices = 2;
  so.default_max_attempts = 1;  // service default: fail fast
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());
  gpusim::FaultPlan plan;
  plan.fail_at_kernel_launch = 1;
  ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());

  // The ticket raises its own budget and survives.
  Result<QueryResult> r = RunThrough(service, query, /*max_attempts=*/3);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.attempts, 2u);

  // A fail-fast ticket against a fresh fault reports kUnavailable.
  ASSERT_TRUE(service.RepairDevice(0));
  ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());
  Result<QueryResult> fast = RunThrough(service, query, /*max_attempts=*/1);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace gsi
