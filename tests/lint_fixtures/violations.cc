// Fixture for tests/determinism_lint_test.py: every construct the
// determinism lint must flag, at line numbers the test asserts exactly.
// This file is never compiled into the library (tests/ only globs *_test.cc).
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Node {
  int id;
};

// line 19: ordered set keyed by a raw pointer (address order).
std::set<Node*> g_dirty;  // pointer-keyed-container

// line 22: unordered map keyed by a raw pointer (hash of the address).
std::unordered_map<Node*, int> g_ranks;  // pointer-keyed-container

int SumByBucketOrder(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  // line 27: range-for over an unordered container.
  for (const auto& kv : counts) {
    total += kv.second;
  }
  return total;
}

double MergeWeights(const std::unordered_set<int>& ids,
                    const std::vector<double>& weight) {
  double acc = 0;
  // lines 37/39: unordered iteration + float accumulation in that order.
  for (int id : ids) {
    // The += below lands on line 39.
    acc += weight[static_cast<size_t>(id)];
  }
  return acc;
}

int FirstInHashOrder(const std::unordered_set<int>& ids) {
  // line 46: explicit iterator traversal of an unordered container.
  return ids.empty() ? -1 : *ids.begin();
}

unsigned SeedFromEntropy() {
  // line 51: per-run entropy feeding a value.
  std::random_device rd;  // nondeterministic-seed
  return rd();
}

long TickStamp() {
  // line 57: steady_clock on the execution path.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

void SeedLibc() {
  // line 62: srand(time(...)) — two findings on one line.
  srand(static_cast<unsigned>(time(nullptr)));
}
