// Fixture for tests/determinism_lint_test.py: the raw-clock rule, which
// only fires inside its scoped roots (src/gsi, src/gpusim, and this
// directory — see RULE_SCOPES in tools/determinism_lint.py). The sibling
// fixtures one level up are OUTSIDE the scope, so their <chrono> includes
// must stay raw-clock-silent. Never compiled (tests/ only globs *_test.cc).
#include <chrono>  // raw-clock: the include itself is flagged

// raw-clock: duration arithmetic — no clock read yet, still flagged.
std::chrono::nanoseconds g_budget{1000};

long BudgetNs() {
  // The rule-specific escape silences the line below.
  // NOLINTNEXTLINE(determinism:raw-clock)
  return std::chrono::nanoseconds{500}.count();
}
