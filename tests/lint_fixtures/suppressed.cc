// Fixture for tests/determinism_lint_test.py: the same hazards as
// violations.cc, every one silenced by a NOLINT escape — the lint must
// report zero findings here. Never compiled (tests/ only globs *_test.cc).
#include <chrono>
#include <string>
#include <unordered_map>
#include <unordered_set>

int SumCommutatively(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  // Order-safe: integer addition is commutative and associative.
  // NOLINTNEXTLINE(determinism:unordered-iteration)
  for (const auto& kv : counts) {
    total += kv.second;
  }
  return total;
}

bool Contains(const std::unordered_set<int>& ids, int needle) {
  for (int id : ids) {  // NOLINT(determinism)
    if (id == needle) return true;
  }
  return false;
}

long ObservabilityStamp() {
  // Metrics only — never feeds a match table.
  // NOLINTNEXTLINE(determinism)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int WrongRuleDoesNotSuppress(const std::unordered_set<int>& ids) {
  int n = 0;
  // A NOLINT naming a *different* rule must not silence this one; the
  // self-test asserts this line IS still reported.
  // NOLINTNEXTLINE(determinism:nondeterministic-seed)
  for (int id : ids) n += id;
  return n;
}
