#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "util/percentile.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace gsi {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad vertex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad vertex");
}

TEST(Status, UnavailableIsTheDeviceFailureCode) {
  Status s = Status::Unavailable("device 2 failed during join");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "UNAVAILABLE: device 2 failed during join");
  // Distinct from capacity (kResourceExhausted) and bugs (kInternal): the
  // serving layer retries kUnavailable, sheds kResourceExhausted, and
  // never retries kInternal.
  EXPECT_NE(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.code(), StatusCode::kInternal);
}

TEST(Status, AbortedIsTheMidWaitInvalidationCode) {
  Status s = Status::Aborted("pool drained while waiting");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(s.ToString(), "ABORTED: pool drained while waiting");
  EXPECT_NE(s.code(), StatusCode::kUnavailable);
}

// GCC's -Wmaybe-uninitialized misfires here at -O2: it reports the
// never-constructed Status alternative of the int-holding Result as
// possibly uninitialized when the destructor gets inlined (a std::variant
// false positive); the value path never touches that alternative.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(ResultT, HoldsValueOrStatus) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBounded(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  ZipfSampler z(100, 1.0, 11);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.Sample()];
  // Zipf(1.0): value 0 should be sampled far more than value 50.
  EXPECT_GT(counts[0], 10 * std::max(1, counts[50]));
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfSampler z(10, 0.0, 13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.Sample()];
  for (int c : counts) {
    EXPECT_GT(c, 1400);
    EXPECT_LT(c, 2600);
  }
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_EQ(PercentileOfSorted({}, 0.5), 0.0);
  EXPECT_EQ(PercentileOfSorted({}, 0.0), 0.0);
  EXPECT_EQ(PercentileOfSorted({}, 1.0), 0.0);
}

TEST(PercentileTest, SingleSampleAtEveryP) {
  const std::vector<double> one{7.5};
  for (double p : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(PercentileOfSorted(one, p), 7.5) << "p=" << p;
  }
}

TEST(PercentileTest, NearestRankSemantics) {
  const std::vector<double> v{1, 2, 3, 4};
  // ceil(p*4)-1: p in (0, .25] -> v[0], (.25, .5] -> v[1], ...
  EXPECT_EQ(PercentileOfSorted(v, 0.0), 1.0);
  EXPECT_EQ(PercentileOfSorted(v, 0.25), 1.0);
  EXPECT_EQ(PercentileOfSorted(v, 0.26), 2.0);
  EXPECT_EQ(PercentileOfSorted(v, 0.5), 2.0);
  EXPECT_EQ(PercentileOfSorted(v, 0.75), 3.0);
  EXPECT_EQ(PercentileOfSorted(v, 0.99), 4.0);
  EXPECT_EQ(PercentileOfSorted(v, 1.0), 4.0);
}

TEST(PercentileTest, DuplicateHeavySamples) {
  // 9 duplicates and one outlier: the tail rank must surface the outlier,
  // the median must not.
  const std::vector<double> v{5, 5, 5, 5, 5, 5, 5, 5, 5, 100};
  EXPECT_EQ(PercentileOfSorted(v, 0.5), 5.0);
  EXPECT_EQ(PercentileOfSorted(v, 0.9), 5.0);
  EXPECT_EQ(PercentileOfSorted(v, 0.91), 100.0);
  EXPECT_EQ(PercentileOfSorted(v, 0.99), 100.0);
}

TEST(PercentileTest, OutOfRangeAndNanClamp) {
  const std::vector<double> v{1, 2, 3};
  // Clamped instead of indexing out of bounds (negative ceil cast to
  // size_t was UB before the clamp).
  EXPECT_EQ(PercentileOfSorted(v, -0.5), 1.0);
  EXPECT_EQ(PercentileOfSorted(v, 1.5), 3.0);
  EXPECT_EQ(PercentileOfSorted(v, std::nan("")), 3.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::string s = t.ToString("demo");
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| long-name | 22"), std::string::npos);
  EXPECT_NE(s.find("| a         | 1 "), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::FormatCount(1234567), "1,234,567");
  EXPECT_EQ(TablePrinter::FormatCount(7), "7");
  EXPECT_EQ(TablePrinter::FormatMs(0.1234), "0.123");
  EXPECT_EQ(TablePrinter::FormatMs(12.34), "12.34");
  EXPECT_EQ(TablePrinter::FormatMs(4400.0), "4400");
  EXPECT_EQ(TablePrinter::FormatSpeedup(2.06), "2.1x");
  EXPECT_EQ(TablePrinter::FormatPercent(0.3), "30%");
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
  // The pool is reusable after Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 201);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after finishing all queued work
  EXPECT_EQ(counter.load(), 50);
}

// The service's completion path parks long-lived dispatch loops in the pool
// and cycles Wait() repeatedly from the host; each cycle must see exactly
// its own batch complete and leave the pool reusable.
TEST(ThreadPool, ReusableAcrossManyWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int cycle = 1; cycle <= 5; ++cycle) {
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), cycle * 40);
  }
  // An empty Wait (no submissions since the last one) must not block.
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

// Tasks may fan out further tasks from inside the pool; Wait() must cover
// the transitively submitted work, not just the first generation.
TEST(ThreadPool, SubmitFromInsideRunningTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&pool, &counter] {
        counter.fetch_add(1);
        pool.Submit([&counter] { counter.fetch_add(1); });
      });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 8 * 3);
}

TEST(ThreadPool, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

}  // namespace
}  // namespace gsi
