// Paged result cursors (Submit -> ticket -> FetchPage): concatenating the
// pages of a streamed result must be byte-identical to the one-shot table
// (and to sequential GsiMatcher::Find) for every execution mode and page
// budget, no page may exceed the host-residency budget, results must be
// one-shot across the Poll/Wait and FetchPage protocols, and a cursor that
// loses its device-resident partials to a fault must rebuild and stream
// identical remaining pages.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gsi/matcher.h"
#include "service/query_service.h"
#include "test_util.h"

namespace gsi {
namespace {

enum class Mode { kSingle, kSharded, kPartitioned, kReplicated };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kSingle: return "single";
    case Mode::kSharded: return "sharded";
    case Mode::kPartitioned: return "partitioned";
    case Mode::kReplicated: return "replicated";
  }
  return "?";
}

ServiceOptions ModeOptions(Mode mode) {
  ServiceOptions so;
  so.num_workers = 2;
  switch (mode) {
    case Mode::kSingle:
      so.num_devices = 2;
      break;
    case Mode::kSharded:
      so.num_workers = 1;  // leaves three idle devices to fan out across
      so.num_devices = 4;
      so.max_shards_per_query = 4;
      so.shard_min_candidates = 1;
      so.shard.min_rows_per_shard = 1;
      break;
    case Mode::kPartitioned:
      so.num_devices = 4;
      so.partition_data_graph = true;
      break;
    case Mode::kReplicated:
      so.num_devices = 4;
      so.partition_data_graph = true;
      so.partition_replicas = 2;
      break;
  }
  return so;
}

std::vector<VertexId> FlattenTable(const QueryResult& r) {
  std::vector<VertexId> cells;
  cells.reserve(r.table.rows() * r.table.cols());
  for (size_t i = 0; i < r.table.rows(); ++i) {
    for (size_t c = 0; c < r.table.cols(); ++c) {
      cells.push_back(r.table.At(i, c));
    }
  }
  return cells;
}

TEST(PagedResults, PageConcatIsByteIdenticalAcrossModesAndBudgets) {
  for (Mode mode : {Mode::kSingle, Mode::kSharded, Mode::kPartitioned,
                    Mode::kReplicated}) {
    for (uint64_t seed : {1, 2}) {
      // Hub graphs concentrate matches, so streamed results span many
      // pages under a tiny budget.
      Graph data = testing::RandomHubGraph(300, 3, 2, 2, seed, 5, 0.25);
      GsiMatcher sequential(data, GsiOptOptions());
      Graph query = testing::RandomQuery(data, 4, 100 + seed);
      Result<QueryResult> expected = sequential.Find(query);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      const size_t row_bytes = expected->table.cols() * sizeof(VertexId);

      // Budgets: tiny (forces many pages), an exact multiple of the row
      // size (pages never split rows), and 0 = unbounded (one page).
      for (size_t budget : {size_t{64}, row_bytes * 7, size_t{0}}) {
        SCOPED_TRACE(std::string(ModeName(mode)) + " seed=" +
                     std::to_string(seed) + " budget=" +
                     std::to_string(budget));
        ServiceOptions so = ModeOptions(mode);
        so.page_budget_bytes = budget;
        QueryService service(data, GsiOptOptions(), so);
        ASSERT_TRUE(service.init_status().ok())
            << service.init_status().ToString();
        Result<QueryTicket> t = service.Submit(query);
        ASSERT_TRUE(t.ok());

        std::vector<VertexId> cells;
        size_t pages = 0;
        for (;;) {
          Result<ResultPage> page = service.FetchPage(*t);
          ASSERT_TRUE(page.ok()) << page.status().ToString();
          EXPECT_EQ(page->cols, expected->table.cols());
          EXPECT_EQ(page->column_to_query, expected->column_to_query);
          EXPECT_EQ(page->page_index, pages);
          EXPECT_EQ(page->row_begin * page->cols, cells.size());
          EXPECT_EQ(page->rows.size(), page->num_rows * page->cols);
          if (budget > 0) {
            // The host-residency bound (never rounded below one row).
            EXPECT_LE(page->num_rows * row_bytes,
                      std::max(budget, row_bytes));
          }
          cells.insert(cells.end(), page->rows.begin(), page->rows.end());
          ++pages;
          if (page->done) break;
        }
        EXPECT_EQ(cells, FlattenTable(*expected));
        if (budget == 0) {
          EXPECT_EQ(pages, 1u);  // unbounded: the whole table in one page
        } else if (expected->table.rows() * row_bytes > budget) {
          EXPECT_GT(pages, 1u);
        }

        ServiceStats stats = service.stats();
        EXPECT_EQ(stats.result_pages, pages);
        EXPECT_EQ(stats.cursors_opened, 1u);
        if (budget > 0) {
          EXPECT_LE(stats.peak_page_bytes, std::max(budget, row_bytes));
        }
        if (expected->table.rows() > 0) {
          // The undrained manifest stays pinned until CloseCursor.
          EXPECT_GT(stats.cursor_resident_bytes, 0u);
        }
        ASSERT_TRUE(service.CloseCursor(*t).ok());
        EXPECT_EQ(service.stats().cursor_resident_bytes, 0u);
        EXPECT_EQ(service.stats().cursors_closed, 1u);
        EXPECT_EQ(service.FetchPage(*t).status().code(),
                  StatusCode::kNotFound);
      }
    }
  }
}

TEST(PagedResults, ExplicitRowCapAndFetchPastEnd) {
  Graph data = testing::RandomHubGraph(200, 3, 2, 2, 3, 4, 0.25);
  QueryService service(data, GsiOptOptions(), ServiceOptions{});
  Graph query = testing::RandomQuery(data, 4, 9);
  Result<QueryTicket> t = service.Submit(query);
  ASSERT_TRUE(t.ok());

  PageOptions po;
  po.max_rows = 3;
  size_t total_rows = 0;
  for (;;) {
    Result<ResultPage> page = service.FetchPage(*t, po);
    ASSERT_TRUE(page.ok());
    EXPECT_LE(page->num_rows, 3u);
    total_rows += page->num_rows;
    if (page->done) break;
  }
  EXPECT_GT(total_rows, 0u);
  // Past the end: empty pages with done set, not an error.
  Result<ResultPage> past = service.FetchPage(*t);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(past->num_rows, 0u);
  EXPECT_EQ(past->row_begin, total_rows);
  EXPECT_TRUE(past->done);
}

TEST(PagedResults, ResultIsOneShotAcrossProtocols) {
  Graph data = testing::RandomGraph(200, 3, 3, 2, 7);
  QueryService service(data, GsiOptOptions(), ServiceOptions{});

  // Wait consumes; FetchPage then reports NotFound with a re-submit hint.
  Result<QueryTicket> a = service.Submit(testing::RandomQuery(data, 4, 1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(service.Wait(*a).ok());
  Result<ResultPage> after_wait = service.FetchPage(*a);
  EXPECT_EQ(after_wait.status().code(), StatusCode::kNotFound);
  EXPECT_NE(after_wait.status().message().find("re-submit"),
            std::string::npos);

  // FetchPage consumes; Wait and Poll then report NotFound.
  Result<QueryTicket> b = service.Submit(testing::RandomQuery(data, 4, 2));
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(service.FetchPage(*b).ok());
  EXPECT_EQ(service.Wait(*b).status().code(), StatusCode::kNotFound);
  std::optional<Result<QueryResult>> polled = service.Poll(*b);
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->status().code(), StatusCode::kNotFound);

  // CloseCursor before any fetch: later fetches fail, but the untouched
  // result is still consumable by Wait; closing again stays Ok.
  Result<QueryTicket> c = service.Submit(testing::RandomQuery(data, 4, 3));
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(service.CloseCursor(*c).ok());
  EXPECT_EQ(service.FetchPage(*c).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(service.Wait(*c).ok());
  ASSERT_TRUE(service.CloseCursor(*c).ok());

  // Invalid tickets are reported, not crashed on.
  QueryTicket invalid;
  EXPECT_EQ(service.FetchPage(invalid).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.CloseCursor(invalid).code(),
            StatusCode::kInvalidArgument);
}

TEST(PagedResults, CursorRebuildsAfterDeviceFaultWithIdenticalPages) {
  Graph data = testing::RandomHubGraph(300, 3, 2, 2, 11, 5, 0.25);
  GsiMatcher sequential(data, GsiOptOptions());
  Graph query = testing::RandomQuery(data, 4, 21);
  Result<QueryResult> expected = sequential.Find(query);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->table.rows(), 8u)
      << "chaos leg needs a multi-page result";

  ServiceOptions so;
  so.num_workers = 1;
  so.num_devices = 2;
  so.default_max_attempts = 2;  // one transparent rebuild allowed
  so.page_budget_bytes = expected->table.cols() * sizeof(VertexId) * 4;
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());

  Result<QueryTicket> t = service.Submit(query);
  ASSERT_TRUE(t.ok());
  Result<ResultPage> first = service.FetchPage(*t);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->done);

  // The result's partial table lives on device 0 (the pool's LIFO free
  // list leases it first). Arm a fault that trips on the next charged
  // transaction: the next page-out kills the owner mid-copy, the poisoned
  // lease quarantines it, and the cursor must recompute the result on
  // device 1 and resume the stream exactly where it left off.
  gpusim::FaultPlan plan;
  plan.fail_after_transactions = 1;
  plan.reason = "chaos: fault between FetchPages";
  ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());

  std::vector<VertexId> cells = first->rows;
  for (;;) {
    Result<ResultPage> page = service.FetchPage(*t);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    cells.insert(cells.end(), page->rows.begin(), page->rows.end());
    if (page->done) break;
  }
  EXPECT_EQ(cells, FlattenTable(*expected));

  ServiceStats stats = service.stats();
  EXPECT_GE(stats.cursor_rebuilds, 1u);
  EXPECT_GE(stats.device_failures, 1u);
  EXPECT_EQ(stats.quarantined_devices, 1u);
  ASSERT_TRUE(service.CloseCursor(*t).ok());

}

TEST(PagedResults, FetchPageSurfacesTheFaultWithoutARetryBudget) {
  Graph data = testing::RandomHubGraph(200, 3, 2, 2, 13, 4, 0.25);
  ServiceOptions so;
  so.num_workers = 1;
  so.num_devices = 1;
  so.default_max_attempts = 1;  // fail fast: no rebuild allowed
  so.page_budget_bytes = 64;
  QueryService service(data, GsiOptOptions(), so);
  ASSERT_TRUE(service.init_status().ok());

  Result<QueryTicket> t = service.Submit(testing::RandomQuery(data, 4, 5));
  ASSERT_TRUE(t.ok());
  Result<ResultPage> first = service.FetchPage(*t);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->done);

  gpusim::FaultPlan plan;
  plan.fail_after_transactions = 1;
  plan.reason = "chaos: no retry budget";
  ASSERT_TRUE(service.InjectDeviceFault(0, plan).ok());
  EXPECT_EQ(service.FetchPage(*t).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.stats().quarantined_devices, 1u);
  ASSERT_TRUE(service.CloseCursor(*t).ok());
}

}  // namespace
}  // namespace gsi
