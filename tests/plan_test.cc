// Join-order (Algorithm 2) and first-edge selection (Algorithm 4) tests.

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "gsi/filter.h"
#include "gsi/plan.h"
#include "test_util.h"

namespace gsi {
namespace {

std::vector<CandidateSet> FakeCandidates(gpusim::Device& dev,
                                         const Graph& query, size_t n,
                                         const std::vector<size_t>& sizes) {
  std::vector<CandidateSet> out;
  for (VertexId u = 0; u < query.num_vertices(); ++u) {
    std::vector<VertexId> list(sizes[u]);
    for (size_t i = 0; i < sizes[u]; ++i) list[i] = static_cast<VertexId>(i);
    out.push_back(CandidateSet::Create(dev, u, std::move(list), n, false));
  }
  return out;
}

TEST(PlanOrder, StartsAtMinScoreVertex) {
  // Path query u0 - u1 - u2; u1 has degree 2.
  GraphBuilder qb;
  qb.AddVertex(0);
  qb.AddVertex(1);
  qb.AddVertex(2);
  qb.AddEdge(0, 1, 0);
  qb.AddEdge(1, 2, 0);
  Graph q = std::move(qb).Build().value();
  Graph data = ::gsi::testing::RandomGraph(100, 3, 3, 1, 1);

  gpusim::Device dev;
  // score(u) = |C|/deg: u0: 50/1, u1: 60/2=30, u2: 90/1.
  auto cands = FakeCandidates(dev, q, data.num_vertices(), {50, 60, 90});
  JoinPlan plan = MakeJoinPlan(q, data, cands);
  EXPECT_EQ(plan.order[0], 1u);
  EXPECT_EQ(plan.steps.size(), 2u);
}

TEST(PlanOrder, GrowsConnectedOnly) {
  Graph data = ::gsi::testing::RandomGraph(200, 3, 3, 3, 2);
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph q = ::gsi::testing::RandomQuery(data, 6, 40 + seed);
    gpusim::Device dev;
    FilterContext ctx(dev, data, FilterOptions{});
    auto f = ctx.Filter(q);
    ASSERT_TRUE(f.ok());
    JoinPlan plan = MakeJoinPlan(q, data, f->candidates);
    ASSERT_EQ(plan.order.size(), q.num_vertices());
    // Each step's vertex connects to an earlier one via all its links.
    std::vector<bool> seen(q.num_vertices(), false);
    seen[plan.order[0]] = true;
    for (const JoinStep& s : plan.steps) {
      ASSERT_FALSE(s.links.empty());
      for (const LinkEdge& l : s.links) {
        EXPECT_TRUE(seen[l.prev_vertex]);
        EXPECT_EQ(plan.order[l.prev_column], l.prev_vertex);
        EXPECT_TRUE(q.HasEdge(s.u, l.prev_vertex, l.label));
      }
      seen[s.u] = true;
    }
    // Every query edge appears among links exactly once per (u, earlier).
    size_t link_count = 0;
    for (const JoinStep& s : plan.steps) link_count += s.links.size();
    EXPECT_EQ(link_count, q.num_edges());
  }
}

TEST(PlanFirstEdge, PicksRarestLabel) {
  // u2 joins last, linked to u0 via a frequent label and to u1 via a rare
  // one; the rare label must come first (Algorithm 4 Line 1).
  GraphBuilder db;
  VertexId a = db.AddVertices(40, 0);
  for (int i = 0; i + 1 < 40; i += 2) {
    db.AddEdge(a + i, a + i + 1, /*frequent=*/7);
  }
  db.AddEdge(0, 2, /*rare=*/8);
  db.AddEdge(1, 3, 8);
  Graph data = std::move(db).Build().value();

  GraphBuilder qb;
  qb.AddVertex(0);
  qb.AddVertex(0);
  qb.AddVertex(0);
  qb.AddEdge(0, 1, 7);
  qb.AddEdge(0, 2, 7);   // u2-u0: frequent
  qb.AddEdge(1, 2, 8);   // u2-u1: rare
  Graph q = std::move(qb).Build().value();

  gpusim::Device dev;
  auto cands =
      FakeCandidates(dev, q, data.num_vertices(), {10, 10, 10});
  JoinPlan plan = MakeJoinPlan(q, data, cands);
  const JoinStep& last = plan.steps.back();
  ASSERT_EQ(last.links.size(), 2u);
  EXPECT_EQ(last.links[0].label, 8u);
  EXPECT_LE(last.links[0].label_frequency, last.links[1].label_frequency);
}

TEST(PlanColumns, ColumnOfMatchesOrder) {
  Graph data = ::gsi::testing::RandomGraph(150, 3, 2, 2, 3);
  Graph q = ::gsi::testing::RandomQuery(data, 5, 5);
  gpusim::Device dev;
  FilterContext ctx(dev, data, FilterOptions{});
  auto f = ctx.Filter(q);
  ASSERT_TRUE(f.ok());
  JoinPlan plan = MakeJoinPlan(q, data, f->candidates);
  for (uint32_t i = 0; i < plan.order.size(); ++i) {
    EXPECT_EQ(plan.ColumnOf(plan.order[i]), i);
  }
}

}  // namespace
}  // namespace gsi
