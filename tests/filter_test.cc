// Filtering-phase tests: soundness of every strategy (no true match is
// pruned), relative pruning power, and the layout/width cost claims.

#include <gtest/gtest.h>

#include "baselines/oracle.h"
#include "gsi/filter.h"
#include "test_util.h"

namespace gsi {
namespace {

using ::gsi::testing::RandomGraph;
using ::gsi::testing::RandomQuery;

class FilterStrategySuite : public ::testing::TestWithParam<FilterStrategy> {
};

TEST_P(FilterStrategySuite, SoundNoTrueMatchPruned) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph data = RandomGraph(250, 3, 4, 4, seed);
    Graph query = RandomQuery(data, 4, seed + 100);
    gpusim::Device dev;
    FilterOptions fo;
    fo.strategy = GetParam();
    FilterContext ctx(dev, data, fo);
    Result<FilterResult> r = ctx.Filter(query);
    ASSERT_TRUE(r.ok());
    auto matches = EnumerateMatchesBruteForce(data, query);
    ASSERT_FALSE(matches.empty());
    for (const auto& m : matches) {
      for (VertexId u = 0; u < query.num_vertices(); ++u) {
        EXPECT_TRUE(r->candidates[u].ContainsHost(m[u]))
            << "strategy pruned a true match: u=" << u << " v=" << m[u];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, FilterStrategySuite,
    ::testing::Values(FilterStrategy::kSignature,
                      FilterStrategy::kLabelDegreeNeighbor,
                      FilterStrategy::kLabelDegree),
    [](const auto& suite_info) {
      switch (suite_info.param) {
        case FilterStrategy::kSignature: return std::string("Signature");
        case FilterStrategy::kLabelDegreeNeighbor: return std::string("GpSM");
        case FilterStrategy::kLabelDegree: return std::string("GunrockSM");
      }
      return std::string("?");
    });

TEST(FilterPruning, SignatureNoWeakerThanLabelDegree) {
  // Table IV's headline: GSI's encoding produces candidate sets no larger
  // than (usually much smaller than) label/degree filtering.
  Graph data = RandomGraph(400, 4, 4, 8, 9);
  gpusim::Device dev;
  FilterOptions sig_opts;
  sig_opts.strategy = FilterStrategy::kSignature;
  FilterContext sig(dev, data, sig_opts);
  FilterOptions ld_opts;
  ld_opts.strategy = FilterStrategy::kLabelDegree;
  FilterContext ld(dev, data, ld_opts);
  size_t sig_smaller = 0;
  size_t total = 0;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph query = RandomQuery(data, 5, 200 + seed);
    auto rs = sig.Filter(query);
    auto rl = ld.Filter(query);
    ASSERT_TRUE(rs.ok() && rl.ok());
    for (VertexId u = 0; u < query.num_vertices(); ++u) {
      EXPECT_LE(rs->candidates[u].size(), rl->candidates[u].size());
      sig_smaller += rs->candidates[u].size() < rl->candidates[u].size();
      ++total;
    }
  }
  // Strictly stronger somewhere, not just equal everywhere.
  EXPECT_GT(sig_smaller, total / 4);
}

TEST(FilterWidth, WiderSignaturesPruneMore) {
  // Table V: increasing N monotonically (weakly) improves pruning.
  Graph data = RandomGraph(400, 4, 4, 16, 10);
  Graph query = RandomQuery(data, 5, 11);
  size_t prev = SIZE_MAX;
  for (int nbits : {64, 128, 256, 512}) {
    gpusim::Device dev;
    FilterOptions fo;
    fo.signature_bits = nbits;
    FilterContext ctx(dev, data, fo);
    auto r = ctx.Filter(query);
    ASSERT_TRUE(r.ok());
    size_t total = 0;
    for (const auto& c : r->candidates) total += c.size();
    EXPECT_LE(total, prev) << "N=" << nbits;
    prev = total;
  }
}

TEST(FilterLayout, ColumnMajorLoadsFewerTransactions) {
  Graph data = RandomGraph(2048, 3, 2, 4, 12);
  Graph query = RandomQuery(data, 4, 13);
  auto run = [&](SignatureTable::Layout layout) {
    gpusim::Device dev;
    FilterOptions fo;
    fo.layout = layout;
    fo.build_bitmaps = false;
    FilterContext ctx(dev, data, fo);
    uint64_t before = dev.stats().gld;
    auto r = ctx.Filter(query);
    EXPECT_TRUE(r.ok());
    return dev.stats().gld - before;
  };
  uint64_t col = run(SignatureTable::Layout::kColumnMajor);
  uint64_t row = run(SignatureTable::Layout::kRowMajor);
  EXPECT_LT(col * 4, row);  // coalescing should be a multi-x improvement
}

TEST(FilterResultApi, TracksMinimumCandidateSet) {
  Graph data = RandomGraph(300, 3, 6, 6, 14);
  Graph query = RandomQuery(data, 5, 15);
  gpusim::Device dev;
  FilterContext ctx(dev, data, FilterOptions{});
  auto r = ctx.Filter(query);
  ASSERT_TRUE(r.ok());
  size_t min_size = SIZE_MAX;
  for (const auto& c : r->candidates) min_size = std::min(min_size, c.size());
  EXPECT_EQ(r->min_candidate_size, min_size);
  EXPECT_EQ(r->candidates[r->min_candidate_vertex].size(), min_size);
}

TEST(CandidateSetTest, BitsetAndListAgree) {
  Graph data = RandomGraph(200, 3, 3, 3, 16);
  gpusim::Device dev;
  std::vector<VertexId> list = {3, 17, 60, 61, 199};
  CandidateSet c = CandidateSet::Create(dev, 0, list, data.num_vertices(),
                                        /*build_bitmap=*/true);
  gpusim::Launch(dev, 1, [&](gpusim::Warp& w) {
    for (VertexId v = 0; v < 200; ++v) {
      bool expect = std::binary_search(list.begin(), list.end(), v);
      EXPECT_EQ(c.ContainsBitset(w, v), expect);
      EXPECT_EQ(c.ContainsBinarySearch(w, v), expect);
      EXPECT_EQ(c.ContainsHost(v), expect);
    }
  });
}

TEST(CandidateSetTest, BitsetProbeIsOneTransaction) {
  gpusim::Device dev;
  std::vector<VertexId> list = {5};
  CandidateSet c = CandidateSet::Create(dev, 0, list, 100000, true);
  dev.ResetStats();
  gpusim::Launch(dev, 1,
                 [&](gpusim::Warp& w) { c.ContainsBitset(w, 99999); });
  EXPECT_EQ(dev.stats().gld, 1u);  // "exactly one memory transaction"
}

}  // namespace
}  // namespace gsi
