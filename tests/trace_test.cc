// obs::Tracer / obs::Clock: span-tree mechanics (nesting, attribution,
// seq assignment, branch-on-null when disabled), the Chrome trace_event
// export's structure, and the headline determinism contract — traces
// captured on the partitioned and replicated execution paths are
// byte-identical across runs because every execution-path span is timed
// by the simulated cycle clock.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gsi/partition.h"
#include "gsi/query_engine.h"
#include "gsi/replication.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "test_util.h"

namespace gsi {
namespace {

using obs::kHostDevice;
using obs::ManualClock;
using obs::ScopedSpan;
using obs::TraceContext;
using obs::Tracer;
using obs::TraceSpan;

const TraceSpan* FindSpan(const std::vector<TraceSpan>& spans,
                          const std::string& name) {
  for (const TraceSpan& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

size_t CountSpans(const std::vector<TraceSpan>& spans,
                  const std::string& name) {
  size_t n = 0;
  for (const TraceSpan& s : spans) n += (s.name == name);
  return n;
}

// ------------------------------------------------------------ mechanics ---

TEST(Tracer, ScopedSpansNestAndStampTheInjectedClock) {
  Tracer tracer;
  ManualClock clock(100);
  {
    ScopedSpan root(TraceContext{&tracer, -1, kHostDevice}, "root", clock);
    clock.Advance(50);
    {
      ScopedSpan child(root.context(), "child", clock, /*device=*/2);
      child.AddAttr("rows", uint64_t{7});
      clock.Advance(25);
    }
    clock.Advance(10);
  }
  std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan* root = FindSpan(spans, "root");
  const TraceSpan* child = FindSpan(spans, "child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(root->device, kHostDevice);
  EXPECT_EQ(root->start_ns, 100u);
  EXPECT_EQ(root->end_ns, 185u);
  EXPECT_EQ(root->parent, -1);
  EXPECT_EQ(child->device, 2);
  EXPECT_EQ(child->start_ns, 150u);
  EXPECT_EQ(child->end_ns, 175u);
  ASSERT_EQ(child->attrs.size(), 1u);
  EXPECT_EQ(child->attrs[0].first, "rows");
  EXPECT_EQ(child->attrs[0].second, "7");
  // The child span opened on the "root" span's index.
  EXPECT_EQ(&spans[static_cast<size_t>(child->parent)], root);
}

TEST(Tracer, ThreeArgScopedSpanInheritsTheContextDevice) {
  Tracer tracer;
  ManualClock clock;
  TraceContext ctx{&tracer, -1, kHostDevice};
  { ScopedSpan span(ctx.OnDevice(3), "work", clock); }
  std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].device, 3);
}

TEST(Tracer, NullTracerIsANoOpEverywhere) {
  TraceContext off;  // default: tracer == nullptr
  EXPECT_FALSE(off.enabled());
  ManualClock clock;
  ScopedSpan span(off, "ignored", clock);
  span.AddAttr("k", "v");
  span.AddAttr("n", uint64_t{1});
  // context() of a disabled span stays disabled — the whole subtree is
  // branch-on-null.
  EXPECT_FALSE(span.context().enabled());
  ScopedSpan child(span.context(), "also-ignored", clock);
}

TEST(Tracer, SeqCountsPerDeviceTrack) {
  Tracer tracer;
  // Interleave opens across two device tracks and the host track.
  tracer.RecordSpan("a", 0, 0, 1, -1);
  tracer.RecordSpan("b", 1, 0, 1, -1);
  tracer.RecordSpan("c", 0, 2, 3, -1);
  tracer.RecordSpan("d", kHostDevice, 0, 1, -1);
  tracer.RecordSpan("e", 1, 2, 3, -1);
  std::vector<TraceSpan> spans = tracer.Snapshot();
  EXPECT_EQ(FindSpan(spans, "a")->seq, 0u);
  EXPECT_EQ(FindSpan(spans, "c")->seq, 1u);
  EXPECT_EQ(FindSpan(spans, "b")->seq, 0u);
  EXPECT_EQ(FindSpan(spans, "e")->seq, 1u);
  EXPECT_EQ(FindSpan(spans, "d")->seq, 0u);
}

TEST(Tracer, ChromeJsonStructure) {
  Tracer tracer;
  int32_t root = tracer.RecordSpan("outer", 0, 1000, 3000, -1);
  tracer.AddAttr(root, "rows", "42");
  tracer.RecordSpan("inner", 0, 1500, 2500, root);
  const std::string json = tracer.ToChromeJson();
  // Structural checks; full schema validation (every event parses, the
  // required spans exist) runs in tests/trace_example_test.py against the
  // example binary's output.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":\"42\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  const std::string tree = tracer.ToTreeString();
  EXPECT_NE(tree.find("outer"), std::string::npos);
  EXPECT_NE(tree.find("inner"), std::string::npos);
}

TEST(Clock, DeviceCycleClockFollowsSimulatedCycles) {
  gpusim::Device dev;
  obs::DeviceCycleClock clock(dev);
  const uint64_t before = clock.NowNanos();
  dev.ChargeKernelLaunch();
  EXPECT_GT(clock.NowNanos(), before);
}

// ---------------------------------------------------- execution tracing ---

struct Fixture {
  Graph data;
  Graph query;
  Fixture()
      : data(testing::RandomGraph(400, 3, 4, 3, 99)),
        query(testing::RandomQuery(data, 5, 7)) {}
};

/// One traced partitioned execution over fresh devices; returns the
/// exported JSON. With a halo budget, an untraced warm-up run fills the
/// caches first so the traced run exercises the hit path.
std::string TracePartitionedRun(const Fixture& f, size_t partitions,
                                uint64_t halo_budget = 0) {
  GsiOptions options = GsiOptOptions();
  options.halo_budget_bytes = halo_budget;
  QueryEngine engine(f.data, options);
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> devs;
  for (size_t i = 0; i < partitions; ++i) {
    owned.push_back(
        std::make_unique<gpusim::Device>(engine.options().device));
    devs.push_back(owned.back().get());
  }
  Result<PartitionedGraph> pg = PartitionedGraph::Build(
      devs, f.data, engine.options(), HashVertexPartitioner());
  GSI_CHECK(pg.ok());
  if (halo_budget > 0) GSI_CHECK(engine.RunPartitioned(f.query, *pg).ok());
  Tracer tracer;
  Result<QueryResult> r = engine.RunPartitioned(
      f.query, *pg, TraceContext{&tracer, -1, kHostDevice});
  GSI_CHECK(r.ok());
  return tracer.ToChromeJson();
}

/// One traced replicated execution over fresh devices; returns the
/// exported JSON.
std::string TraceReplicatedRun(const Fixture& f, size_t partitions,
                               size_t replicas) {
  QueryEngine engine(f.data, GsiOptOptions());
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> devs;
  for (size_t i = 0; i < partitions; ++i) {
    owned.push_back(
        std::make_unique<gpusim::Device>(engine.options().device));
    devs.push_back(owned.back().get());
  }
  Result<ReplicatedGraph> rg =
      ReplicatedGraph::Build(devs, f.data, engine.options(),
                             HashVertexPartitioner(), partitions, replicas);
  GSI_CHECK(rg.ok());
  Tracer tracer;
  Result<QueryResult> r = engine.RunPartitioned(
      f.query, *rg, CompactSelection(*rg),
      TraceContext{&tracer, -1, kHostDevice});
  GSI_CHECK(r.ok());
  return tracer.ToChromeJson();
}

TEST(TraceDeterminism, PartitionedTraceIsByteIdenticalAcrossRuns) {
  Fixture f;
  const std::string first = TracePartitionedRun(f, 4);
  const std::string second = TracePartitionedRun(f, 4);
  // Every span on this path is timed by a device cycle clock, and the
  // exporters sort by (device, start_ns, seq) before emitting — so the
  // whole export is a pure function of the work, even though partition
  // workers append to the tracer concurrently.
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("execute_partitioned"), std::string::npos);
  EXPECT_NE(first.find("partition_join"), std::string::npos);
  EXPECT_NE(first.find("result_merge"), std::string::npos);
}

TEST(TraceDeterminism, ReplicatedTraceIsByteIdenticalAcrossRuns) {
  Fixture f;
  const std::string first = TraceReplicatedRun(f, 4, 2);
  const std::string second = TraceReplicatedRun(f, 4, 2);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("execute_replicated"), std::string::npos);
  // The acceptance-criterion spans: one lane per distinct device of the
  // selection, lane_scan on the filter side.
  EXPECT_NE(first.find("\"lane\""), std::string::npos);
  EXPECT_NE(first.find("lane_scan"), std::string::npos);
}

TEST(TraceDeterminism, HaloProbeSpanAppearsAndStaysByteIdentical) {
  Fixture f;
  // At a fixed budget the whole export — including the halo_probe spans and
  // their hit/byte attributes — is a pure function of the work: two
  // identically-built warm runs serialize byte for byte.
  const std::string first = TracePartitionedRun(f, 4, /*halo_budget=*/1 << 20);
  const std::string second = TracePartitionedRun(f, 4, /*halo_budget=*/1 << 20);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("halo_probe"), std::string::npos);
  EXPECT_NE(first.find("\"hits\""), std::string::npos);
  // Without a budget the span never exists.
  EXPECT_EQ(TracePartitionedRun(f, 4).find("halo_probe"), std::string::npos);
}

TEST(TraceDeterminism, PartitionedTraceCoversEveryPartitionAndJoinStep) {
  Fixture f;
  QueryEngine engine(f.data, GsiOptOptions());
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> devs;
  for (size_t i = 0; i < 4; ++i) {
    owned.push_back(
        std::make_unique<gpusim::Device>(engine.options().device));
    devs.push_back(owned.back().get());
  }
  Result<PartitionedGraph> pg = PartitionedGraph::Build(
      devs, f.data, engine.options(), HashVertexPartitioner());
  ASSERT_TRUE(pg.ok());
  Tracer tracer;
  Result<QueryResult> r = engine.RunPartitioned(
      f.query, *pg, TraceContext{&tracer, -1, kHostDevice});
  ASSERT_TRUE(r.ok());
  std::vector<TraceSpan> spans = tracer.Snapshot();
  // One partition_join per partition, each carrying at least one join_step
  // child (the query has >= 2 vertices, so the join iterates).
  EXPECT_EQ(CountSpans(spans, "partition_join"), 4u);
  EXPECT_GE(CountSpans(spans, "join_step"), 4u);
  EXPECT_EQ(CountSpans(spans, "result_merge"), 1u);
  // Partition spans are attributed to their partition's device track.
  std::vector<bool> seen(4, false);
  for (const TraceSpan& s : spans) {
    if (s.name == "partition_join") {
      ASSERT_GE(s.device, 0);
      ASSERT_LT(s.device, 4);
      seen[static_cast<size_t>(s.device)] = true;
    }
  }
  for (size_t p = 0; p < 4; ++p) EXPECT_TRUE(seen[p]) << "partition " << p;
}

TEST(TraceDeterminism, DisabledTracerLeavesResultsUntouched) {
  Fixture f;
  QueryEngine engine(f.data, GsiOptOptions());
  Tracer tracer;
  Result<QueryResult> traced =
      engine.Run(f.query, TraceContext{&tracer, -1, kHostDevice});
  Result<QueryResult> plain = engine.Run(f.query);
  ASSERT_TRUE(traced.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(traced->TableEquals(*plain));
  EXPECT_EQ(traced->stats.total_ms, plain->stats.total_ms);
  EXPECT_FALSE(tracer.Snapshot().empty());
}

}  // namespace
}  // namespace gsi
