// Tests of the GPU execution model: transaction coalescing, cost
// attribution, shared-memory limits, scheduling and the scan primitive.

#include <gtest/gtest.h>

#include <numeric>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "gpusim/scan.h"
#include "gpusim/shared_memory.h"

namespace gsi::gpusim {
namespace {

TEST(Coalescing, ConsecutiveWordsAreOneTransaction) {
  // Figure 5: 32 lanes reading 32 consecutive 4B words = 128B = 1 line.
  std::vector<uint64_t> addrs(32);
  for (int i = 0; i < 32; ++i) addrs[i] = 4096 + 4 * i;
  EXPECT_EQ(Device::CoalescedTransactions(addrs, 4), 1u);
}

TEST(Coalescing, OffsetAccessSpansTwoLines) {
  // Figure 6: the same stream shifted by 64B straddles two 128B lines.
  std::vector<uint64_t> addrs(32);
  for (int i = 0; i < 32; ++i) addrs[i] = 4096 + 64 + 4 * i;
  EXPECT_EQ(Device::CoalescedTransactions(addrs, 4), 2u);
}

TEST(Coalescing, StridedAccessIsUncoalesced) {
  // 64B stride: every other lane hits a new line -> 16 transactions.
  std::vector<uint64_t> addrs(32);
  for (int i = 0; i < 32; ++i) addrs[i] = 4096 + 64 * i;
  EXPECT_EQ(Device::CoalescedTransactions(addrs, 4), 16u);
}

TEST(Coalescing, ScatteredAccessWorstCase) {
  std::vector<uint64_t> addrs(32);
  for (int i = 0; i < 32; ++i) addrs[i] = 4096 + 1024 * i;
  EXPECT_EQ(Device::CoalescedTransactions(addrs, 4), 32u);
}

TEST(Coalescing, DuplicateAddressesCollapse) {
  std::vector<uint64_t> addrs(32, 4096);
  EXPECT_EQ(Device::CoalescedTransactions(addrs, 4), 1u);
}

TEST(Coalescing, RangeTransactionsRoundsToLines) {
  EXPECT_EQ(Device::RangeTransactions(0, 1), 1u);
  EXPECT_EQ(Device::RangeTransactions(0, 128), 1u);
  EXPECT_EQ(Device::RangeTransactions(0, 129), 2u);
  EXPECT_EQ(Device::RangeTransactions(127, 2), 2u);  // straddles
  EXPECT_EQ(Device::RangeTransactions(100, 0), 0u);
}

TEST(DeviceAlloc, BuffersAre128BAlignedAndDisjoint) {
  Device dev;
  auto a = dev.Alloc<uint32_t>(3);
  auto b = dev.Alloc<uint32_t>(5);
  EXPECT_EQ(a.base_address() % kTransactionBytes, 0u);
  EXPECT_EQ(b.base_address() % kTransactionBytes, 0u);
  // Guard line between allocations: no shared 128B line.
  EXPECT_GE(b.base_address() / kTransactionBytes,
            a.AddressOf(3) / kTransactionBytes + 1);
}

TEST(WarpOps, LoadRangeChargesLinesAndReturnsData) {
  Device dev;
  std::vector<uint32_t> host(100);
  std::iota(host.begin(), host.end(), 0);
  auto buf = dev.Upload(std::move(host));
  Launch(dev, 1, [&](Warp& w) {
    std::span<const uint32_t> s = w.LoadRange(buf, 10, 50);
    EXPECT_EQ(s[0], 10u);
    EXPECT_EQ(s[49], 59u);
  });
  // 50 x 4B starting at byte 40: bytes [40, 240) -> lines 0 and 1.
  EXPECT_EQ(dev.stats().gld, 2u);
}

TEST(WarpOps, GatherCoalescesByAddress) {
  Device dev;
  auto buf = dev.Upload(std::vector<uint32_t>(1024, 7));
  uint64_t idx[32];
  uint32_t out[32];
  // Consecutive gather: 1 transaction.
  Launch(dev, 1, [&](Warp& w) {
    for (int i = 0; i < 32; ++i) idx[i] = i;
    w.Gather(buf, std::span<const uint64_t>(idx, 32),
             std::span<uint32_t>(out, 32));
  });
  EXPECT_EQ(dev.stats().gld, 1u);
  dev.ResetStats();
  // Stride-32 gather: 32 distinct lines.
  Launch(dev, 1, [&](Warp& w) {
    for (int i = 0; i < 32; ++i) idx[i] = 32 * i;
    w.Gather(buf, std::span<const uint64_t>(idx, 32),
             std::span<uint32_t>(out, 32));
  });
  EXPECT_EQ(dev.stats().gld, 32u);
}

TEST(WarpOps, StoresCountSeparately) {
  Device dev;
  auto buf = dev.Alloc<uint32_t>(64);
  Launch(dev, 1, [&](Warp& w) {
    uint32_t vals[32] = {};
    w.StoreRange(buf, 0, std::span<const uint32_t>(vals, 32));
  });
  EXPECT_EQ(dev.stats().gst, 1u);
  EXPECT_EQ(dev.stats().gld, 0u);
}

TEST(SharedMemoryTest, EnforcesCapacity) {
  SharedMemory shm(1024);
  auto a = shm.Alloc<uint32_t>(128);  // 512B
  EXPECT_EQ(a.size(), 128u);
  EXPECT_EQ(shm.used_bytes(), 512u);
  auto b = shm.Alloc<uint32_t>(128);  // another 512B: exactly full
  EXPECT_EQ(b.size(), 128u);
  EXPECT_DEATH(shm.Alloc<uint32_t>(1), "shared memory");
  shm.Reset();
  EXPECT_EQ(shm.used_bytes(), 0u);
}

TEST(Scheduler, BalancedBlocksScaleAcrossSms) {
  DeviceConfig cfg;
  cfg.num_sms = 4;
  // 8 equal blocks on 4 SMs: makespan = 2 blocks.
  std::vector<uint64_t> costs(8, 100);
  ScheduleResult r = ScheduleBlocks(cfg, costs);
  EXPECT_EQ(r.makespan_cycles, 200u);
}

TEST(Scheduler, OneGiantBlockDominatesMakespan) {
  DeviceConfig cfg;
  cfg.num_sms = 4;
  std::vector<uint64_t> costs(7, 100);
  costs.push_back(10000);
  ScheduleResult r = ScheduleBlocks(cfg, costs);
  EXPECT_GE(r.makespan_cycles, 10000u);
  EXPECT_LE(r.makespan_cycles, 10300u);
}

TEST(Scheduler, BlockCostIsMaxOfCriticalPathAndOccupancy) {
  // A block with one heavy warp costs at least that warp; a block of many
  // equal warps costs total / slots.
  Device dev;  // 32 warps/block, 4 slots
  auto buf = dev.Upload(std::vector<uint32_t>(100000, 1));
  dev.ResetStats();
  // One warp does 320 transactions, the other 31 idle: block cost ~ 320tx.
  Launch(dev, 32, [&](Warp& w) {
    if (w.global_id() == 0) w.LoadRange(buf, 0, 320 * 32);
  });
  uint64_t imbalanced = dev.stats().simulated_cycles;
  dev.ResetStats();
  // The same 320x32 elements spread over 32 warps: 10tx each; with 4 warp
  // slots the block needs ~ total/4.
  Launch(dev, 32, [&](Warp& w) {
    w.LoadRange(buf, w.global_id() * 320, 320);
  });
  uint64_t balanced = dev.stats().simulated_cycles;
  EXPECT_LT(balanced, imbalanced);
}

TEST(ScanTest, ComputesExclusivePrefixSumAndTotal) {
  Device dev;
  auto values = dev.Upload(std::vector<uint32_t>{3, 0, 5, 2});
  auto out = dev.Alloc<uint64_t>(5);
  uint64_t total = ExclusiveScan(dev, values, out);
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 3u);
  EXPECT_EQ(out[2], 3u);
  EXPECT_EQ(out[3], 8u);
  EXPECT_EQ(out[4], 10u);
  EXPECT_GE(dev.stats().kernel_launches, 1u);
}

TEST(ScanTest, EmptyInput) {
  Device dev;
  auto values = dev.Alloc<uint32_t>(0);
  auto out = dev.Alloc<uint64_t>(1);
  EXPECT_EQ(ExclusiveScan(dev, values, out), 0u);
  EXPECT_EQ(out[0], 0u);
}

TEST(KernelLaunch, ChargesFixedOverhead) {
  Device dev;
  uint64_t before = dev.stats().simulated_cycles;
  dev.ChargeKernelLaunch();
  EXPECT_EQ(dev.stats().simulated_cycles - before,
            dev.config().kernel_launch_cycles);
  EXPECT_EQ(dev.stats().kernel_launches, 1u);
}

TEST(MemStatsTest, DifferenceAndAccumulate) {
  MemStats a;
  a.gld = 10;
  a.gst = 4;
  MemStats b;
  b.gld = 3;
  b.gst = 1;
  MemStats d = a - b;
  EXPECT_EQ(d.gld, 7u);
  EXPECT_EQ(d.gst, 3u);
  b += d;
  EXPECT_EQ(b.gld, 10u);
}

}  // namespace
}  // namespace gsi::gpusim
