// QueryEngine: concurrent batches must be bit-identical to sequential
// GsiMatcher::Find — same match sets AND same per-query simulated device
// counters (worker devices are private, so nothing leaks across queries) —
// and invalid tuning options must surface as InvalidArgument, not abort.

#include <gtest/gtest.h>

#include <vector>

#include "gsi/matcher.h"
#include "gsi/query_engine.h"
#include "test_util.h"

namespace gsi {
namespace {

/// 5 data graphs x 10 queries = the 50 generated query/data pairs of the
/// batch-vs-sequential acceptance bar.
struct Workload {
  Graph data;
  std::vector<Graph> queries;
};

std::vector<Workload> MakeWorkloads() {
  std::vector<Workload> out;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Workload w;
    w.data = testing::RandomGraph(/*n=*/300, /*edges_per_vertex=*/3,
                                  /*num_vlabels=*/4, /*num_elabels=*/3,
                                  seed * 100);
    for (uint64_t q = 0; q < 10; ++q) {
      w.queries.push_back(testing::RandomQuery(w.data, /*num_vertices=*/5,
                                               seed * 1000 + q));
    }
    out.push_back(std::move(w));
  }
  return out;
}

TEST(QueryEngine, BatchMatchesSequentialOn50Pairs) {
  for (const GsiOptions& options : {DefaultGsiOptions(), GsiOptOptions()}) {
    for (Workload& w : MakeWorkloads()) {
      GsiMatcher sequential(w.data, options);
      QueryEngine engine(w.data, options);
      ASSERT_TRUE(engine.init_status().ok());

      BatchOptions bo;
      bo.num_threads = 4;
      BatchResult batch = engine.RunBatch(w.queries, bo);
      ASSERT_EQ(batch.per_query.size(), w.queries.size());
      EXPECT_EQ(batch.stats.total, w.queries.size());
      EXPECT_EQ(batch.stats.ok + batch.stats.failed, batch.stats.total);

      for (size_t i = 0; i < w.queries.size(); ++i) {
        Result<QueryResult> expected = sequential.Find(w.queries[i]);
        const Result<QueryResult>& got = batch.per_query[i];
        ASSERT_EQ(expected.ok(), got.ok()) << "query " << i;
        if (!expected.ok()) continue;
        EXPECT_EQ(got->AllMatchesSorted(), expected->AllMatchesSorted())
            << "query " << i;
      }
    }
  }
}

TEST(QueryEngine, PerQueryStatsIsolatedAcrossThreads) {
  // The simulation is deterministic, so if worker devices were shared (or
  // counters leaked across queries) the per-query MemStats deltas could not
  // all equal their sequential values.
  Workload w = std::move(MakeWorkloads()[0]);
  GsiMatcher sequential(w.data, GsiOptOptions());
  QueryEngine engine(w.data, GsiOptOptions());

  BatchOptions bo;
  bo.num_threads = 4;
  BatchResult batch = engine.RunBatch(w.queries, bo);

  gpusim::MemStats expected_sum;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    Result<QueryResult> expected = sequential.Find(w.queries[i]);
    const Result<QueryResult>& got = batch.per_query[i];
    ASSERT_TRUE(expected.ok() && got.ok()) << "query " << i;
    EXPECT_EQ(got->stats.filter.gld, expected->stats.filter.gld) << i;
    EXPECT_EQ(got->stats.join.gld, expected->stats.join.gld) << i;
    EXPECT_EQ(got->stats.join.gst, expected->stats.join.gst) << i;
    EXPECT_EQ(got->stats.join.simulated_cycles,
              expected->stats.join.simulated_cycles)
        << i;
    EXPECT_DOUBLE_EQ(got->stats.total_ms, expected->stats.total_ms) << i;
    expected_sum += expected->stats.filter;
    expected_sum += expected->stats.join;
  }
  // The aggregate device counters are the sum of the per-query phases.
  EXPECT_EQ(batch.stats.device.gld, expected_sum.gld);
  EXPECT_EQ(batch.stats.device.gst, expected_sum.gst);
}

TEST(QueryEngine, BatchStatsAggregates) {
  Workload w = std::move(MakeWorkloads()[1]);
  QueryEngine engine(w.data, GsiOptOptions());
  BatchOptions bo;
  bo.num_threads = 2;
  BatchResult batch = engine.RunBatch(w.queries, bo);
  EXPECT_EQ(batch.stats.ok, w.queries.size());  // generated queries match
  EXPECT_GT(batch.stats.queries_per_sec, 0);
  // With zero failures the goodput equals the raw throughput.
  EXPECT_DOUBLE_EQ(batch.stats.ok_queries_per_sec,
                   batch.stats.queries_per_sec);
  EXPECT_EQ(batch.stats.num_workers, 2u);
  EXPECT_GT(batch.stats.sum_simulated_ms, 0);
  EXPECT_LE(batch.stats.p50_simulated_ms, batch.stats.p99_simulated_ms);
  EXPECT_GT(batch.stats.p50_simulated_ms, 0);
}

// Regression: queries_per_sec counted failed queries in its numerator, so a
// batch where every query fails still reported a rosy throughput and
// silently-zero percentiles. The ok-based goodput must report 0.
TEST(QueryEngine, AllFailedBatchReportsZeroGoodput) {
  Workload w = std::move(MakeWorkloads()[0]);
  QueryEngine engine(w.data, DefaultGsiOptions());
  std::vector<Graph> bad(8);  // empty queries -> InvalidArgument each
  BatchOptions bo;
  bo.num_threads = 4;
  BatchResult batch = engine.RunBatch(bad, bo);
  EXPECT_EQ(batch.stats.total, bad.size());
  EXPECT_EQ(batch.stats.ok, 0u);
  EXPECT_EQ(batch.stats.failed, bad.size());
  EXPECT_EQ(batch.stats.ok_queries_per_sec, 0);
  // The raw rate still counts submissions; the percentiles stay 0 because
  // there is no successful latency to report.
  EXPECT_GT(batch.stats.queries_per_sec, 0);
  EXPECT_EQ(batch.stats.p50_simulated_ms, 0);
  EXPECT_EQ(batch.stats.p99_simulated_ms, 0);
  for (const Result<QueryResult>& r : batch.per_query) {
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(QueryEngine, ReportsClampedWorkerCount) {
  Workload w = std::move(MakeWorkloads()[2]);
  QueryEngine engine(w.data, DefaultGsiOptions());

  BatchOptions bo;
  bo.num_threads = 4;
  EXPECT_EQ(engine.RunBatch(w.queries, bo).stats.num_workers, 4u);

  // More workers than queries clamps to the query count; nonsense thread
  // counts clamp to one.
  std::vector<Graph> one(w.queries.begin(), w.queries.begin() + 1);
  bo.num_threads = 64;
  EXPECT_EQ(engine.RunBatch(one, bo).stats.num_workers, 1u);
  bo.num_threads = -3;
  EXPECT_EQ(engine.RunBatch(one, bo).stats.num_workers, 1u);

  // Nothing ran: no workers, and the empty batch keeps every rate at 0.
  BatchResult empty = engine.RunBatch({});
  EXPECT_EQ(empty.stats.num_workers, 0u);
  EXPECT_EQ(empty.stats.ok_queries_per_sec, 0);
}

TEST(QueryEngine, EmptyBatchAndThreadClamping) {
  Workload w = std::move(MakeWorkloads()[2]);
  QueryEngine engine(w.data, DefaultGsiOptions());

  BatchResult empty = engine.RunBatch({});
  EXPECT_TRUE(empty.per_query.empty());
  EXPECT_EQ(empty.stats.total, 0u);

  // More threads than queries, and a nonsense thread count, both clamp.
  std::vector<Graph> one(w.queries.begin(), w.queries.begin() + 1);
  for (int threads : {-3, 0, 64}) {
    BatchOptions bo;
    bo.num_threads = threads;
    BatchResult b = engine.RunBatch(one, bo);
    ASSERT_EQ(b.per_query.size(), 1u);
    EXPECT_TRUE(b.per_query[0].ok());
  }
}

TEST(QueryEngine, SingleRunMatchesSequential) {
  Workload w = std::move(MakeWorkloads()[3]);
  GsiMatcher sequential(w.data, GsiOptOptions());
  QueryEngine engine(w.data, GsiOptOptions());
  Result<QueryResult> expected = sequential.Find(w.queries[0]);
  Result<QueryResult> got = engine.Run(w.queries[0]);
  ASSERT_TRUE(expected.ok() && got.ok());
  EXPECT_EQ(got->AllMatchesSorted(), expected->AllMatchesSorted());
}

TEST(QueryEngine, ExecRequestMatchesDeprecatedOverloads) {
  Workload w = std::move(MakeWorkloads()[2]);
  GsiMatcher sequential(w.data, GsiOptOptions());
  QueryEngine engine(w.data, GsiOptOptions());
  for (size_t q = 0; q < 3; ++q) {
    Result<QueryResult> expected = sequential.Find(w.queries[q]);
    ASSERT_TRUE(expected.ok());

    // No target: a fresh private device per call, same table as Run.
    QueryEngine::ExecRequest req;
    req.query = &w.queries[q];
    Result<QueryResult> via_execute = engine.Execute(req);
    Result<QueryResult> via_run = engine.Run(w.queries[q]);
    ASSERT_TRUE(via_execute.ok() && via_run.ok());
    EXPECT_TRUE(via_execute->TableEquals(*expected));
    EXPECT_TRUE(via_run->TableEquals(*expected));

    // Sharded target: the shim and the struct route identically.
    gpusim::Device d0, d1;
    d0.set_ordinal(0);
    d1.set_ordinal(1);
    std::vector<gpusim::Device*> devs{&d0, &d1};
    ShardOptions shard;
    shard.min_rows_per_shard = 1;
    QueryEngine::ExecRequest sharded;
    sharded.query = &w.queries[q];
    sharded.devices = devs;
    sharded.shard = shard;
    Result<QueryResult> via_sharded = engine.Execute(sharded);
    Result<QueryResult> via_shim =
        engine.RunSharded(w.queries[q], devs, shard);
    ASSERT_TRUE(via_sharded.ok() && via_shim.ok());
    EXPECT_TRUE(via_sharded->TableEquals(*expected));
    EXPECT_TRUE(via_shim->TableEquals(*expected));

    // Paged form: materializing the manifest reproduces the table.
    Result<PagedQueryResult> paged = engine.ExecutePaged(sharded);
    ASSERT_TRUE(paged.ok());
    EXPECT_EQ(paged->num_matches(), expected->table.rows());
    gpusim::Device scratch;
    QueryResult merged = ToQueryResult(std::move(paged.value()), scratch);
    EXPECT_TRUE(merged.TableEquals(*expected));
  }
}

TEST(QueryEngine, ExecRequestValidation) {
  Workload w = std::move(MakeWorkloads()[2]);
  QueryEngine engine(w.data, GsiOptOptions());

  QueryEngine::ExecRequest no_query;
  EXPECT_EQ(engine.Execute(no_query).status().code(),
            StatusCode::kInvalidArgument);

  // A selection without a replicated target is rejected up front.
  ReplicaSelection sel;
  QueryEngine::ExecRequest dangling;
  dangling.query = &w.queries[0];
  dangling.selection = &sel;
  EXPECT_EQ(engine.Execute(dangling).status().code(),
            StatusCode::kInvalidArgument);

  // More than one execution target is ambiguous, not silently prioritized.
  gpusim::Device dev;
  std::vector<gpusim::Device*> devs{&dev};
  gpusim::Device build_dev;
  std::vector<gpusim::Device*> build_devs{&build_dev};
  Result<PartitionedGraph> pg = PartitionedGraph::Build(
      build_devs, w.data, engine.options(), HashVertexPartitioner());
  ASSERT_TRUE(pg.ok());
  QueryEngine::ExecRequest two_targets;
  two_targets.query = &w.queries[0];
  two_targets.devices = devs;
  two_targets.partitioned = &pg.value();
  EXPECT_EQ(engine.Execute(two_targets).status().code(),
            StatusCode::kInvalidArgument);

  // The historical RunSharded contract survives the shim.
  EXPECT_EQ(engine.RunSharded(w.queries[0], {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryEngine, RejectsInvalidQueries) {
  Workload w = std::move(MakeWorkloads()[4]);
  QueryEngine engine(w.data, DefaultGsiOptions());
  Result<QueryResult> r = engine.Run(Graph());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- Regression: user-supplied tuning values used to abort the process in
// PlanChunks (GSI_CHECK_MSG) or PCSR build; they must be InvalidArgument.

GsiOptions BadLoadBalanceOptions() {
  GsiOptions o = GsiOptOptions();
  o.join.w1 = 64;  // violates W1 > W2 (block size 1024)
  o.join.w3 = 16;  // violates W3 >= 32
  return o;
}

TEST(OptionsValidation, BadLoadBalanceThresholdsAreInvalidArgument) {
  Workload w = std::move(MakeWorkloads()[0]);
  GsiMatcher matcher(w.data, BadLoadBalanceOptions());
  EXPECT_EQ(matcher.init_status().code(), StatusCode::kInvalidArgument);
  Result<QueryResult> r = matcher.Find(w.queries[0]);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  QueryEngine engine(w.data, BadLoadBalanceOptions());
  EXPECT_EQ(engine.init_status().code(), StatusCode::kInvalidArgument);
  BatchResult batch = engine.RunBatch(w.queries);
  EXPECT_EQ(batch.stats.failed, w.queries.size());
  for (const Result<QueryResult>& q : batch.per_query) {
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(OptionsValidation, BadGpnAndMaxRowsAreInvalidArgument) {
  Workload w = std::move(MakeWorkloads()[0]);

  GsiOptions bad_gpn;
  bad_gpn.join.gpn = 0;
  EXPECT_EQ(GsiMatcher(w.data, bad_gpn).init_status().code(),
            StatusCode::kInvalidArgument);
  bad_gpn.join.gpn = 17;
  EXPECT_EQ(GsiMatcher(w.data, bad_gpn).init_status().code(),
            StatusCode::kInvalidArgument);

  GsiOptions bad_rows;
  bad_rows.join.max_rows = 0;
  EXPECT_EQ(QueryEngine(w.data, bad_rows).init_status().code(),
            StatusCode::kInvalidArgument);

  // Signature width outside Signature::Encode's bounds used to abort inside
  // the constructor before init_status could report.
  for (int bits : {0, 32, 100, 544}) {
    GsiOptions bad_bits;
    bad_bits.filter.signature_bits = bits;
    EXPECT_EQ(QueryEngine(w.data, bad_bits).init_status().code(),
              StatusCode::kInvalidArgument)
        << bits;
  }
  // Non-signature strategies never encode; a stale width must not reject.
  GsiOptions ld;
  ld.filter.strategy = FilterStrategy::kLabelDegree;
  ld.filter.signature_bits = 0;
  EXPECT_TRUE(QueryEngine(w.data, ld).init_status().ok());

  // CSR storage never consults gpn; a stale gpn value must not reject it.
  GsiOptions csr = GsiMinusOptions();
  csr.join.gpn = 0;
  EXPECT_TRUE(GsiMatcher(w.data, csr).init_status().ok());

  EXPECT_TRUE(ValidateGsiOptions(DefaultGsiOptions()).ok());
  EXPECT_TRUE(ValidateGsiOptions(GsiOptOptions()).ok());
  EXPECT_TRUE(ValidateGsiOptions(GsiMinusOptions()).ok());
}

}  // namespace
}  // namespace gsi
