// Property tests for the graph storage structures: CSR, BasicRep,
// CompressedRep and PCSR must all agree with the host graph's N(v, l), and
// PCSR must satisfy its structural invariants (Algorithm 1 / Claim 1).

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/oracle.h"
#include "gpusim/launch.h"
#include "graph/graph_builder.h"
#include "gsi/matcher.h"
#include "storage/basic_rep.h"
#include "storage/compressed_rep.h"
#include "storage/csr.h"
#include "storage/partition.h"
#include "storage/pcsr.h"
#include "storage/signature.h"
#include "storage/signature_table.h"
#include "test_util.h"

namespace gsi {
namespace {

using ::gsi::testing::RandomGraph;

/// Runs `fn` inside a one-warp kernel (tests need a Warp to call stores).
template <typename Fn>
void WithWarp(gpusim::Device& dev, Fn&& fn) {
  gpusim::Launch(dev, 1, [&](gpusim::Warp& w) { fn(w); });
}

std::vector<VertexId> HostNeighbors(const Graph& g, VertexId v, Label l) {
  std::vector<VertexId> out;
  for (const Neighbor& n : g.NeighborsWithLabel(v, l)) out.push_back(n.v);
  std::sort(out.begin(), out.end());
  return out;
}

struct StoreCase {
  StorageKind kind;
  const char* name;
};

class NeighborStoreSuite : public ::testing::TestWithParam<StoreCase> {};

TEST_P(NeighborStoreSuite, ExtractMatchesHostGraph) {
  Graph g = RandomGraph(300, 4, 5, 6, 42);
  gpusim::Device dev;
  auto store = BuildStore(dev, g, GetParam().kind, /*gpn=*/16);
  WithWarp(dev, [&](gpusim::Warp& w) {
    for (VertexId v = 0; v < g.num_vertices(); v += 7) {
      for (Label l : g.edge_labels()) {
        std::vector<VertexId> got;
        store->Extract(w, v, l, got);
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, HostNeighbors(g, v, l)) << "v=" << v << " l=" << l;
      }
    }
  });
}

TEST_P(NeighborStoreSuite, SlicesUnionToFullList) {
  Graph g = RandomGraph(200, 5, 3, 4, 43);
  gpusim::Device dev;
  auto store = BuildStore(dev, g, GetParam().kind, /*gpn=*/16);
  WithWarp(dev, [&](gpusim::Warp& w) {
    for (VertexId v = 0; v < g.num_vertices(); v += 11) {
      for (Label l : g.edge_labels()) {
        size_t bound = store->NeighborCountUpperBound(w, v, l);
        std::vector<VertexId> unioned;
        for (size_t b = 0; b < bound; b += 3) {
          store->ExtractSlice(w, v, l, b, std::min(bound, b + 3), unioned);
        }
        std::sort(unioned.begin(), unioned.end());
        ASSERT_EQ(unioned, HostNeighbors(g, v, l));
      }
    }
  });
}

TEST_P(NeighborStoreSuite, ValueRangeMatchesFilteredList) {
  Graph g = RandomGraph(200, 4, 3, 3, 44);
  gpusim::Device dev;
  auto store = BuildStore(dev, g, GetParam().kind, /*gpn=*/16);
  WithWarp(dev, [&](gpusim::Warp& w) {
    for (VertexId v = 0; v < g.num_vertices(); v += 13) {
      for (Label l : g.edge_labels()) {
        std::vector<VertexId> all = HostNeighbors(g, v, l);
        VertexId lo = 40;
        VertexId hi = 160;
        std::vector<VertexId> expect;
        for (VertexId x : all) {
          if (x >= lo && x <= hi) expect.push_back(x);
        }
        std::vector<VertexId> got;
        store->ExtractValueRange(w, v, l, lo, hi, got);
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, expect);
      }
    }
  });
}

TEST_P(NeighborStoreSuite, UpperBoundDominatesActualCount) {
  Graph g = RandomGraph(150, 4, 2, 5, 45);
  gpusim::Device dev;
  auto store = BuildStore(dev, g, GetParam().kind, /*gpn=*/16);
  WithWarp(dev, [&](gpusim::Warp& w) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (Label l : g.edge_labels()) {
        size_t bound = store->NeighborCountUpperBound(w, v, l);
        ASSERT_GE(bound, HostNeighbors(g, v, l).size());
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, NeighborStoreSuite,
    ::testing::Values(StoreCase{StorageKind::kCsr, "csr"},
                      StoreCase{StorageKind::kPcsr, "pcsr"},
                      StoreCase{StorageKind::kBasicRep, "br"},
                      StoreCase{StorageKind::kCompressedRep, "cr"}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

// ---------------------------------------------------------------- PCSR ---

class PcsrGpnSuite : public ::testing::TestWithParam<int> {};

TEST_P(PcsrGpnSuite, LookupCorrectUnderAllGroupSizes) {
  int gpn = GetParam();
  Graph g = RandomGraph(250, 4, 2, 3, 50 + gpn);
  gpusim::Device dev;
  for (Label l : g.edge_labels()) {
    LabelPartition part = MakePartition(g, l);
    Result<PcsrPartition> p = PcsrPartition::Build(dev, part, gpn);
    ASSERT_TRUE(p.ok());
    // Every vertex in the partition resolves to its exact neighbor list.
    for (size_t i = 0; i < part.vertices.size(); ++i) {
      auto info = p->HostLookup(part.vertices[i]);
      ASSERT_TRUE(info.found);
      ASSERT_EQ(info.count, part.offsets[i + 1] - part.offsets[i]);
    }
    // Vertices outside the partition are not found.
    for (VertexId v = 0; v < g.num_vertices(); v += 17) {
      if (std::binary_search(part.vertices.begin(), part.vertices.end(),
                             v)) {
        continue;
      }
      EXPECT_FALSE(p->HostLookup(v).found);
    }
  }
}

TEST_P(PcsrGpnSuite, ChainLengthBounded) {
  // Claim 1: overflow always finds empty groups; the expected longest
  // conflict chain is small (paper: <= ceil(45/(GPN-1)) groups).
  int gpn = GetParam();
  Graph g = RandomGraph(500, 3, 2, 2, 60 + gpn);
  gpusim::Device dev;
  for (Label l : g.edge_labels()) {
    LabelPartition part = MakePartition(g, l);
    Result<PcsrPartition> p = PcsrPartition::Build(dev, part, gpn);
    ASSERT_TRUE(p.ok());
    size_t worst = 0;
    for (VertexId v : part.vertices) {
      worst = std::max(worst, p->HostLookup(v).groups_probed);
    }
    EXPECT_LE(worst, p->max_chain_length());
    // With 15 keys per group (gpn=16), chains should practically never
    // exceed the paper's bound of 3.
    if (gpn == 16) {
    EXPECT_LE(worst, 3u);
  }
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, PcsrGpnSuite,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(Pcsr, RejectsBadGpn) {
  gpusim::Device dev;
  LabelPartition part;
  EXPECT_FALSE(PcsrPartition::Build(dev, part, 1).ok());
  EXPECT_FALSE(PcsrPartition::Build(dev, part, 17).ok());
}

TEST(Pcsr, GroupReadIsOneTransactionAtGpn16) {
  Graph g = RandomGraph(400, 4, 2, 1, 71);
  gpusim::Device dev;
  Label l = g.edge_labels()[0];
  LabelPartition part = MakePartition(g, l);
  Result<PcsrPartition> p = PcsrPartition::Build(dev, part, 16);
  ASSERT_TRUE(p.ok());
  // Locating a no-conflict vertex costs exactly one 128B group load plus
  // the neighbor-list read.
  VertexId v = part.vertices[0];
  auto info = p->HostLookup(v);
  ASSERT_TRUE(info.found);
  gpusim::MemStats before = dev.stats();
  WithWarp(dev, [&](gpusim::Warp& w) { p->NeighborCount(w, v); });
  uint64_t gld = (dev.stats() - before).gld;
  EXPECT_EQ(gld, info.groups_probed);  // one transaction per group probed
}

TEST(Pcsr, SpaceLinearInPartitionEdges) {
  Graph g = RandomGraph(300, 5, 2, 4, 72);
  gpusim::Device dev;
  auto pcsr = PcsrStore::Build(dev, g, 16);
  // Space = 32|V(D)| + 4*2|E(D)| summed over partitions (Section IV says
  // 32x|V(D)| + |E(D)| in elements; bytes here).
  uint64_t expected = 0;
  for (Label l : g.edge_labels()) {
    LabelPartition part = MakePartition(g, l);
    expected += 128ull * part.num_vertices() +  // 16 pairs x 8B per group
                4ull * part.num_directed_edges();
  }
  EXPECT_EQ(pcsr->device_bytes(), expected);
}

// ----------------------------------------------------------- signatures ---

TEST(Signature, CoversIsSoundForSubgraphs) {
  // If a query vertex u maps to v in some isomorphism, S(v) must cover
  // S(u). Check over random graphs with the identity embedding: encode a
  // query that is a sub-walk of the data graph.
  Graph data = RandomGraph(150, 3, 4, 4, 80);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Graph q = ::gsi::testing::RandomQuery(data, 4, seed);
    // Walk queries embed in data; brute-force one embedding.
    auto matches = EnumerateMatchesBruteForce(data, q, /*limit=*/4);
    ASSERT_FALSE(matches.empty());
    const auto& m = matches.front();
    for (VertexId u = 0; u < q.num_vertices(); ++u) {
      Signature su = Signature::Encode(q, u, 512);
      Signature sv = Signature::Encode(data, m[u], 512);
      EXPECT_TRUE(sv.Covers(su)) << "u=" << u << " v=" << m[u];
    }
  }
}

TEST(Signature, TwoBitStateSaturates) {
  GraphBuilder b;
  VertexId c = b.AddVertex(0);
  // Three neighbours with identical (edge label, vertex label) pairs hash
  // to the same group: state must be 11, not wrap.
  VertexId n1 = b.AddVertex(5);
  VertexId n2 = b.AddVertex(5);
  VertexId n3 = b.AddVertex(5);
  b.AddEdge(c, n1, 9);
  b.AddEdge(c, n2, 9);
  b.AddEdge(c, n3, 9);
  Graph g = std::move(b).Build().value();
  Signature s = Signature::Encode(g, c, 512);
  uint32_t group = SignatureGroupOf(9, 5, 512);
  uint32_t word = s.word(1 + group / 16);
  uint32_t state = (word >> ((group % 16) * 2)) & 0x3;
  EXPECT_EQ(state, 0x3u);

  // A single pair gives 01.
  GraphBuilder b2;
  VertexId c2 = b2.AddVertex(0);
  VertexId m1 = b2.AddVertex(5);
  b2.AddEdge(c2, m1, 9);
  Graph g2 = std::move(b2).Build().value();
  Signature s2 = Signature::Encode(g2, c2, 512);
  uint32_t state2 = (s2.word(1 + group / 16) >> ((group % 16) * 2)) & 0x3;
  EXPECT_EQ(state2, 0x1u);
}

TEST(Signature, VertexLabelStoredVerbatim) {
  Graph g = RandomGraph(50, 2, 7, 3, 81);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    Signature s = Signature::Encode(g, v, 512);
    EXPECT_EQ(s.vertex_label(), g.vertex_label(v));
  }
}

TEST(SignatureTable, LayoutsHoldSameData) {
  Graph g = RandomGraph(100, 3, 3, 3, 82);
  gpusim::Device dev;
  SignatureTable row =
      SignatureTable::Build(dev, g, 512, SignatureTable::Layout::kRowMajor);
  SignatureTable col = SignatureTable::Build(
      dev, g, 512, SignatureTable::Layout::kColumnMajor);
  for (VertexId v = 0; v < g.num_vertices(); v += 7) {
    for (int w = 0; w < 16; ++w) {
      EXPECT_EQ(row.WordAt(v, w), col.WordAt(v, w));
    }
  }
}

TEST(SignatureTable, ColumnMajorCoalescesRowMajorDoesNot) {
  Graph g = RandomGraph(256, 3, 3, 3, 83);
  gpusim::Device dev;
  SignatureTable row =
      SignatureTable::Build(dev, g, 512, SignatureTable::Layout::kRowMajor);
  SignatureTable col = SignatureTable::Build(
      dev, g, 512, SignatureTable::Layout::kColumnMajor);
  uint32_t vals[32];

  gpusim::MemStats before = dev.stats();
  WithWarp(dev, [&](gpusim::Warp& w) { col.WarpReadWord(w, 0, 32, 0, vals); });
  uint64_t col_gld = (dev.stats() - before).gld;

  before = dev.stats();
  WithWarp(dev, [&](gpusim::Warp& w) { row.WarpReadWord(w, 0, 32, 0, vals); });
  uint64_t row_gld = (dev.stats() - before).gld;

  EXPECT_EQ(col_gld, 1u);    // 32 adjacent words = one 128B transaction
  EXPECT_EQ(row_gld, 16u);   // 64B stride: 32 lanes span 16 lines
}

// --------------------------------------------------------- partitions ---

TEST(Partition, CoversEveryEdgeExactlyOnce) {
  Graph g = RandomGraph(150, 4, 3, 5, 84);
  size_t directed = 0;
  for (const LabelPartition& p : PartitionByEdgeLabel(g)) {
    directed += p.num_directed_edges();
    // Neighbor lists in a partition are sorted.
    for (size_t i = 0; i + 1 < p.offsets.size(); ++i) {
      for (size_t k = p.offsets[i] + 1; k < p.offsets[i + 1]; ++k) {
        EXPECT_LT(p.neighbors[k - 1], p.neighbors[k]);
      }
    }
  }
  EXPECT_EQ(directed, 2 * g.num_edges());
}

TEST(StorageSpace, BasicRepCostsVertexTermPerLabel) {
  Graph g = RandomGraph(200, 3, 2, 8, 85);
  gpusim::Device dev;
  auto br = BasicRep::Build(dev, g);
  auto cr = CompressedRep::Build(dev, g);
  // BR pays (|V|+1) offsets for every label; CR only pays per partition
  // vertex. With 8 labels BR must be far larger.
  EXPECT_GT(br->device_bytes(), cr->device_bytes());
  EXPECT_GE(br->device_bytes(),
            g.num_edge_labels() * (g.num_vertices() + 1) * sizeof(uint64_t));
}

}  // namespace
}  // namespace gsi
