// Partitioned data-graph execution: build invariants (every adjacency row
// stored exactly once, on its owner; signature shares match ownership),
// halo-exchange correctness (bit-identical match tables against
// single-device GsiMatcher::Find on every integration-test graph), and
// determinism of the remote-probe accounting.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/query_generator.h"
#include "gsi/matcher.h"
#include "gsi/partition.h"
#include "gsi/query_engine.h"
#include "storage/signature.h"
#include "test_util.h"

namespace gsi {
namespace {

/// Bit-identical: not just the same match set, the same table (mirrors
/// sharded_engine_test.cc so the two multi-device paths share a bar).
void ExpectBitIdentical(const QueryResult& partitioned,
                        const QueryResult& single,
                        const std::string& context) {
  ASSERT_EQ(partitioned.table.rows(), single.table.rows()) << context;
  ASSERT_EQ(partitioned.table.cols(), single.table.cols()) << context;
  EXPECT_EQ(partitioned.column_to_query, single.column_to_query) << context;
  for (size_t r = 0; r < single.table.rows(); ++r) {
    for (size_t c = 0; c < single.table.cols(); ++c) {
      ASSERT_EQ(partitioned.table.At(r, c), single.table.At(r, c))
          << context << " cell (" << r << ", " << c << ")";
    }
  }
  EXPECT_TRUE(partitioned.TableEquals(single)) << context;
}

struct DeviceSet {
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> ptrs;
};

DeviceSet MakeDevices(size_t k, const gpusim::DeviceConfig& config) {
  DeviceSet ds;
  for (size_t i = 0; i < k; ++i) {
    ds.owned.push_back(std::make_unique<gpusim::Device>(config));
    ds.ptrs.push_back(ds.owned.back().get());
  }
  return ds;
}

Result<PartitionedGraph> BuildPartitioned(const DeviceSet& ds, const Graph& g,
                                          const GsiOptions& options) {
  return PartitionedGraph::Build(ds.ptrs, g, options, HashVertexPartitioner());
}

// ------------------------------------------------------- partitioners ---

TEST(Partitioner, HashCoversAllVerticesDeterministically) {
  Graph g = testing::RandomGraph(500, 3, 3, 2, 17);
  HashVertexPartitioner hash;
  for (size_t k : {1, 2, 5, 8}) {
    std::vector<PartitionId> a = hash.Assign(g, k);
    std::vector<PartitionId> b = hash.Assign(g, k);
    ASSERT_EQ(a.size(), g.num_vertices());
    EXPECT_EQ(a, b) << "assignment must be deterministic";
    std::vector<size_t> counts(k, 0);
    for (PartitionId p : a) {
      ASSERT_LT(p, k);
      ++counts[p];
    }
    for (size_t c : counts) {
      EXPECT_GT(c, 0u) << "k=" << k << ": hash left a partition empty";
    }
  }
}

TEST(Partitioner, GreedyEdgeCutBeatsHashOnClusteredGraph) {
  // A ring of dense cliques: the natural 4-way cut severs only the ring
  // edges, which the greedy pass should find and hashing cannot.
  const size_t cliques = 8;
  const size_t size = 10;
  std::vector<EdgeRecord> edges;
  std::vector<Label> labels(cliques * size, 0);
  for (size_t c = 0; c < cliques; ++c) {
    const VertexId base = static_cast<VertexId>(c * size);
    for (VertexId i = 0; i < size; ++i) {
      for (VertexId j = i + 1; j < size; ++j) {
        edges.push_back({base + i, base + j, 0});
      }
    }
    const VertexId next = static_cast<VertexId>(((c + 1) % cliques) * size);
    edges.push_back({base, next, 0});
  }
  Result<Graph> g = Graph::Create(cliques * size, labels, edges);
  ASSERT_TRUE(g.ok());

  auto cut_of = [&](const std::vector<PartitionId>& owner) {
    size_t cut = 0;
    for (const EdgeRecord& e : g->UndirectedEdges()) {
      if (owner[e.src] != owner[e.dst]) ++cut;
    }
    return cut;
  };
  const size_t k = 4;
  const size_t hash_cut = cut_of(HashVertexPartitioner().Assign(*g, k));
  const size_t greedy_cut =
      cut_of(GreedyEdgeCutPartitioner().Assign(*g, k));
  EXPECT_LT(greedy_cut, hash_cut);

  // Balance: no partition exceeds the slack-padded capacity.
  std::vector<PartitionId> owner = GreedyEdgeCutPartitioner(0.10).Assign(*g, k);
  std::vector<size_t> counts(k, 0);
  for (PartitionId p : owner) ++counts[p];
  const size_t capacity =
      static_cast<size_t>(static_cast<double>(g->num_vertices()) / k * 1.10) +
      1;
  for (size_t c : counts) EXPECT_LE(c, capacity);
}

// ---------------------------------------------------- build invariants ---

TEST(PartitionedGraphBuild, EveryAdjacencyRowStoredExactlyOnce) {
  Graph g = testing::RandomGraph(400, 4, 3, 3, 23);
  DeviceSet ds = MakeDevices(4, gpusim::DeviceConfig());
  Result<PartitionedGraph> pg = BuildPartitioned(ds, g, GsiOptOptions());
  ASSERT_TRUE(pg.ok()) << pg.status().ToString();

  // Each directed edge lands in exactly one share: the owner's PCSR has the
  // full row, every other share reports "not found".
  size_t directed_total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartitionId owner = pg->OwnerOf(v);
    for (Label l : g.edge_labels()) {
      const size_t expect = g.NeighborsWithLabel(v, l).size();
      for (PartitionId p = 0; p < pg->num_partitions(); ++p) {
        const PcsrPartition* part = pg->store(p).partition(l);
        ASSERT_NE(part, nullptr);
        PcsrPartition::LookupInfo info = part->HostLookup(v);
        if (p == owner && expect > 0) {
          EXPECT_TRUE(info.found) << "owner lost vertex " << v;
          EXPECT_EQ(info.count, expect);
        } else {
          EXPECT_FALSE(info.found)
              << "vertex " << v << " leaked into partition " << p;
        }
      }
    }
    directed_total += g.degree(v);
  }
  size_t stored = 0;
  for (size_t e : pg->build_stats().directed_edges) stored += e;
  EXPECT_EQ(stored, directed_total);
  EXPECT_EQ(directed_total, 2 * g.num_edges());
}

TEST(PartitionedGraphBuild, SignatureOwnershipMatchesVertexOwnership) {
  Graph g = testing::RandomGraph(300, 3, 4, 2, 29);
  DeviceSet ds = MakeDevices(3, gpusim::DeviceConfig());
  Result<PartitionedGraph> pg = BuildPartitioned(ds, g, GsiOptOptions());
  ASSERT_TRUE(pg.ok());

  size_t owned_total = 0;
  const int nbits = pg->options().filter.signature_bits;
  for (PartitionId p = 0; p < pg->num_partitions(); ++p) {
    std::span<const VertexId> owned = pg->owned(p);
    const SignatureTable& table = pg->signatures(p);
    ASSERT_EQ(table.num_vertices(), owned.size());
    for (size_t i = 0; i < owned.size(); ++i) {
      EXPECT_EQ(pg->OwnerOf(owned[i]), p);
      const Signature expect = Signature::Encode(g, owned[i], nbits);
      for (int w = 0; w < table.words_per_sig(); ++w) {
        ASSERT_EQ(table.WordAt(static_cast<VertexId>(i), w), expect.word(w))
            << "partition " << p << " vertex " << owned[i] << " word " << w;
      }
    }
    owned_total += owned.size();
  }
  EXPECT_EQ(owned_total, g.num_vertices());
}

TEST(PartitionedGraphBuild, SharesSumToReplicatedFootprint) {
  Graph g = testing::RandomGraph(300, 4, 3, 3, 31);
  DeviceSet ds = MakeDevices(4, gpusim::DeviceConfig());
  Result<PartitionedGraph> pg = BuildPartitioned(ds, g, GsiOptOptions());
  ASSERT_TRUE(pg.ok());
  const PartitionBuildStats& bs = pg->build_stats();

  // The replicated footprint, built independently.
  gpusim::Device ref_dev;
  std::unique_ptr<NeighborStore> ref_store =
      BuildStore(ref_dev, g, StorageKind::kPcsr, pg->options().join.gpn);
  SignatureTable ref_sigs = SignatureTable::Build(
      ref_dev, g, pg->options().filter.signature_bits,
      pg->options().filter.layout);
  const uint64_t replicated =
      ref_store->device_bytes() + ref_sigs.device_bytes();

  uint64_t sum = 0;
  for (uint64_t b : bs.resident_bytes) sum += b;
  EXPECT_EQ(sum, replicated);
  EXPECT_EQ(bs.replicated_bytes, replicated);
  // Per-device residency really shrinks: the worst share is well under the
  // replica (hash-balanced 4 ways).
  EXPECT_LT(bs.max_resident_bytes(), replicated / 2);
}

TEST(PartitionedGraphBuild, RejectsUnsupportedConfigurations) {
  Graph g = testing::RandomGraph(100, 2, 2, 2, 5);
  DeviceSet ds = MakeDevices(2, gpusim::DeviceConfig());
  GsiOptions csr = GsiOptOptions();
  csr.join.storage = StorageKind::kCsr;
  EXPECT_EQ(BuildPartitioned(ds, g, csr).status().code(),
            StatusCode::kInvalidArgument);
  GsiOptions label_degree = GsiOptOptions();
  label_degree.filter.strategy = FilterStrategy::kLabelDegree;
  EXPECT_EQ(BuildPartitioned(ds, g, label_degree).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PartitionedGraph::Build({}, g, GsiOptOptions(),
                                    HashVertexPartitioner())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------- halo-exchange paths ---

TEST(PartitionedExecution, BitIdenticalToFindOnIntegrationGraphs) {
  for (const char* name : {"enron", "gowalla", "watdiv"}) {
    Result<Dataset> d = MakeDataset(name, /*scale=*/0.01);
    ASSERT_TRUE(d.ok());
    const Graph& g = d->graph;
    QueryGenConfig qc;
    qc.num_vertices = 5;
    std::vector<Graph> queries = GenerateQuerySet(g, qc, 3, 77);
    ASSERT_FALSE(queries.empty());

    for (const GsiOptions& options : {DefaultGsiOptions(), GsiOptOptions()}) {
      GsiMatcher sequential(g, options);
      for (size_t k : {2, 3, 4}) {
        DeviceSet ds = MakeDevices(k, options.device);
        Result<PartitionedGraph> pg = BuildPartitioned(ds, g, options);
        ASSERT_TRUE(pg.ok());
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          Result<QueryResult> single = sequential.Find(queries[qi]);
          ASSERT_TRUE(single.ok());
          Result<QueryResult> part =
              ExecuteQueryPartitioned(*pg, queries[qi]);
          ASSERT_TRUE(part.ok()) << part.status().ToString();
          ExpectBitIdentical(*part, *single,
                             std::string(name) + " query " + std::to_string(qi) +
                                 " partitions " + std::to_string(k));
        }
      }
    }
  }
}

TEST(PartitionedExecution, EdgeCutPartitionerIsAlsoBitIdentical) {
  Graph g = testing::RandomGraph(300, 3, 3, 2, 41);
  Graph q = testing::RandomQuery(g, 5, 43);
  GsiMatcher sequential(g, GsiOptOptions());
  Result<QueryResult> single = sequential.Find(q);
  ASSERT_TRUE(single.ok());
  DeviceSet ds = MakeDevices(4, gpusim::DeviceConfig());
  Result<PartitionedGraph> pg = PartitionedGraph::Build(
      ds.ptrs, g, GsiOptOptions(), GreedyEdgeCutPartitioner());
  ASSERT_TRUE(pg.ok());
  Result<QueryResult> part = ExecuteQueryPartitioned(*pg, q);
  ASSERT_TRUE(part.ok());
  ExpectBitIdentical(*part, *single, "greedy edge cut");
}

TEST(PartitionedExecution, ReportsRemoteTrafficAndSkew) {
  Graph g = testing::RandomGraph(400, 4, 2, 2, 7);
  Graph q = testing::RandomQuery(g, 4, 8);
  QueryEngine engine(g, GsiOptOptions());
  Result<QueryResult> single = engine.Run(q);
  ASSERT_TRUE(single.ok());
  ASSERT_GE(single->stats.min_candidate_size, 2u) << "workload too selective";

  DeviceSet ds = MakeDevices(4, engine.options().device);
  Result<PartitionedGraph> pg = BuildPartitioned(ds, g, engine.options());
  ASSERT_TRUE(pg.ok());
  Result<QueryResult> part = engine.RunPartitioned(q, *pg);
  ASSERT_TRUE(part.ok());
  ExpectBitIdentical(*part, *single, "remote traffic run");

  // With hash ownership across 4 partitions, cross-partition probes are
  // unavoidable, and the filter gather alone moves candidate bytes.
  EXPECT_GE(part->stats.partitions_used, 2u);
  EXPECT_GT(part->stats.remote_probes, 0u);
  EXPECT_GT(part->stats.halo_bytes, 0u);
  EXPECT_GE(part->stats.partition_skew, 1.0);
  // Counters appear in the device roll-up too.
  EXPECT_GT(part->stats.join.remote_transactions, 0u);
  // Replicated runs keep the partition fields at zero.
  EXPECT_EQ(single->stats.partitions_used, 0u);
  EXPECT_EQ(single->stats.remote_probes, 0u);
}

TEST(PartitionedExecution, SinglePartitionHasNoRemoteTraffic) {
  Graph g = testing::RandomGraph(200, 3, 3, 2, 42);
  Graph q = testing::RandomQuery(g, 4, 43);
  GsiMatcher sequential(g, GsiOptOptions());
  Result<QueryResult> single = sequential.Find(q);
  ASSERT_TRUE(single.ok());
  DeviceSet ds = MakeDevices(1, gpusim::DeviceConfig());
  Result<PartitionedGraph> pg = BuildPartitioned(ds, g, GsiOptOptions());
  ASSERT_TRUE(pg.ok());
  Result<QueryResult> part = ExecuteQueryPartitioned(*pg, q);
  ASSERT_TRUE(part.ok());
  ExpectBitIdentical(*part, *single, "one partition");
  EXPECT_EQ(part->stats.remote_probes, 0u);
  EXPECT_EQ(part->stats.halo_bytes, 0u);
  EXPECT_EQ(part->stats.partitions_used, 1u);
}

TEST(PartitionedExecution, DeterministicAcrossRuns) {
  Graph g = testing::RandomGraph(300, 3, 3, 2, 11);
  Graph q = testing::RandomQuery(g, 5, 13);
  DeviceSet ds = MakeDevices(4, gpusim::DeviceConfig());
  Result<PartitionedGraph> pg = BuildPartitioned(ds, g, GsiOptOptions());
  ASSERT_TRUE(pg.ok());
  Result<QueryResult> a = ExecuteQueryPartitioned(*pg, q);
  Result<QueryResult> b = ExecuteQueryPartitioned(*pg, q);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBitIdentical(*a, *b, "repeat run");
  // The accounting is deterministic too — thread interleaving never leaks
  // into simulated numbers.
  EXPECT_EQ(a->stats.remote_probes, b->stats.remote_probes);
  EXPECT_EQ(a->stats.halo_bytes, b->stats.halo_bytes);
  EXPECT_DOUBLE_EQ(a->stats.join_ms, b->stats.join_ms);
  EXPECT_DOUBLE_EQ(a->stats.partition_skew, b->stats.partition_skew);
}

TEST(PartitionedExecution, HubGraphHaloCacheSavesRemotesBitIdentically) {
  // Planted super-hubs concentrate probes on a few remote rows — the shape
  // the halo cache exists for. Same table as the sequential matcher, fewer
  // interconnect transactions than the uncached partitioned run.
  Graph g = testing::RandomHubGraph(400, 3, 3, 2, 57, /*num_hubs=*/3,
                                    /*hub_fraction=*/0.15);
  Graph q = testing::RandomQuery(g, 4, 58);
  GsiOptions options = GsiOptOptions();
  GsiMatcher sequential(g, options);
  Result<QueryResult> single = sequential.Find(q);
  ASSERT_TRUE(single.ok());

  DeviceSet cold_ds = MakeDevices(4, options.device);
  Result<PartitionedGraph> cold = BuildPartitioned(cold_ds, g, options);
  ASSERT_TRUE(cold.ok());
  Result<QueryResult> uncached = ExecuteQueryPartitioned(*cold, q);
  ASSERT_TRUE(uncached.ok());
  ASSERT_GT(uncached->stats.remote_probes, 0u) << "workload never left home";

  GsiOptions budgeted = options;
  budgeted.halo_budget_bytes = 1 << 20;
  DeviceSet ds = MakeDevices(4, options.device);
  Result<PartitionedGraph> pg = PartitionedGraph::Build(
      ds.ptrs, g, budgeted, HashVertexPartitioner());
  ASSERT_TRUE(pg.ok());
  Result<QueryResult> cached = ExecuteQueryPartitioned(*pg, q);
  ASSERT_TRUE(cached.ok());
  ExpectBitIdentical(*cached, *single, "halo cache on hub graph");
  ExpectBitIdentical(*uncached, *single, "uncached baseline");

  // Hubs repeat probes within a single query, so even a cold cache hits.
  EXPECT_GT(cached->stats.halo_cache_hits, 0u);
  EXPECT_LT(cached->stats.remote_probes, uncached->stats.remote_probes);
  EXPECT_LT(cached->stats.join.remote_transactions,
            uncached->stats.join.remote_transactions);
}

TEST(PartitionedExecution, NoMatchQueryYieldsFullWidthEmptyTable) {
  Graph g = testing::RandomGraph(200, 3, 2, 2, 3);
  // A query whose vertex labels cannot exist in g (labels are < 2).
  Result<Graph> q = Graph::Create(2, {Label{50}, Label{51}}, {{0, 1, 0}});
  ASSERT_TRUE(q.ok());
  DeviceSet ds = MakeDevices(2, gpusim::DeviceConfig());
  Result<PartitionedGraph> pg = BuildPartitioned(ds, g, GsiOptOptions());
  ASSERT_TRUE(pg.ok());
  Result<QueryResult> part = ExecuteQueryPartitioned(*pg, *q);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->num_matches(), 0u);
  EXPECT_EQ(part->table.cols(), 2u);
}

TEST(PartitionedExecution, InvalidQueriesStillFail) {
  Graph g = testing::RandomGraph(100, 3, 2, 2, 5);
  DeviceSet ds = MakeDevices(2, gpusim::DeviceConfig());
  Result<PartitionedGraph> pg = BuildPartitioned(ds, g, GsiOptOptions());
  ASSERT_TRUE(pg.ok());
  EXPECT_EQ(ExecuteQueryPartitioned(*pg, Graph()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionedExecution, RunPartitionedRejectsMismatchedOptions) {
  Graph g = testing::RandomGraph(100, 3, 2, 2, 5);
  Graph q = testing::RandomQuery(g, 3, 6);
  DeviceSet ds = MakeDevices(2, gpusim::DeviceConfig());
  // Built with GSI-opt tuning, offered to a default-tuned engine: the
  // plans would diverge, so the documented bit-identical parity with Run
  // cannot hold — the engine must reject instead of silently differing.
  Result<PartitionedGraph> pg = BuildPartitioned(ds, g, GsiOptOptions());
  ASSERT_TRUE(pg.ok());
  QueryEngine engine(g, DefaultGsiOptions());
  EXPECT_EQ(engine.RunPartitioned(q, *pg).status().code(),
            StatusCode::kInvalidArgument);
  // A different data graph is rejected too.
  Graph other = testing::RandomGraph(100, 3, 2, 2, 9);
  QueryEngine other_engine(other, GsiOptOptions());
  EXPECT_EQ(other_engine.RunPartitioned(q, *pg).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gsi
