// Unit tests for the join engine's building blocks: set operations, GBA
// writes, chunk planning (load balance), the duplicate-removal cache and
// the match table.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>

#include "gpusim/launch.h"
#include "gsi/candidates.h"
#include "gsi/dup_removal.h"
#include "gsi/load_balance.h"
#include "gsi/match_table.h"
#include "gsi/matcher.h"
#include "gsi/set_ops.h"
#include "test_util.h"

namespace gsi {
namespace {

template <typename Fn>
void WithWarp(gpusim::Device& dev, Fn&& fn) {
  gpusim::Launch(dev, 1, [&](gpusim::Warp& w) { fn(w); });
}

// ------------------------------------------------------------- set ops ---

TEST(SetOps, FirstEdgeSubtractsRowAndFiltersCandidates) {
  gpusim::Device dev;
  CandidateSet cand = CandidateSet::Create(dev, 0, {2, 4, 6, 8}, 100, true);
  std::vector<VertexId> input = {1, 2, 3, 4, 5, 6};
  std::vector<VertexId> row = {4, 9};
  auto gba = dev.Alloc<VertexId>(16);
  std::vector<VertexId> result;
  SetOpFlags flags;
  WithWarp(dev, [&](gpusim::Warp& w) {
    size_t n = FilterFirstEdge(w, input, row, cand, flags, &gba, 3, result);
    EXPECT_EQ(n, 2u);
  });
  EXPECT_EQ(result, (std::vector<VertexId>{2, 6}));  // 4 is in the row
  EXPECT_EQ(gba[3], 2u);
  EXPECT_EQ(gba[4], 6u);
}

TEST(SetOps, FirstEdgeNaiveMatchesBitsetSemantics) {
  gpusim::Device dev;
  CandidateSet cand =
      CandidateSet::Create(dev, 0, {1, 5, 7, 11, 13}, 64, true);
  std::vector<VertexId> input = {1, 2, 5, 7, 8, 11, 13};
  std::vector<VertexId> row = {7};
  std::vector<VertexId> fast;
  std::vector<VertexId> naive;
  WithWarp(dev, [&](gpusim::Warp& w) {
    SetOpFlags f;
    FilterFirstEdge(w, input, row, cand, f, nullptr, 0, fast);
    f.naive = true;
    FilterFirstEdge(w, input, row, cand, f, nullptr, 0, naive);
  });
  EXPECT_EQ(fast, naive);
  EXPECT_EQ(fast, (std::vector<VertexId>{1, 5, 11, 13}));
}

TEST(SetOps, IntersectSortedKeepsCommonElements) {
  gpusim::Device dev;
  std::vector<VertexId> current = {1, 3, 5, 7, 9};
  std::vector<VertexId> other = {0, 3, 4, 7, 10};
  WithWarp(dev, [&](gpusim::Warp& w) {
    SetOpFlags f;
    size_t n = IntersectSorted(w, current, other, f, nullptr, 0);
    EXPECT_EQ(n, 2u);
  });
  EXPECT_EQ(current, (std::vector<VertexId>{3, 7}));
}

TEST(SetOps, IntersectWithEmptyIsEmpty) {
  gpusim::Device dev;
  std::vector<VertexId> current = {1, 2, 3};
  WithWarp(dev, [&](gpusim::Warp& w) {
    SetOpFlags f;
    EXPECT_EQ(IntersectSorted(w, current, {}, f, nullptr, 0), 0u);
  });
  EXPECT_TRUE(current.empty());
}

/// Sorted random list of `n` values drawn from [0, range).
std::vector<VertexId> SortedRandom(size_t n, uint32_t range, uint64_t seed) {
  Rng rng(seed);
  std::set<VertexId> vals;
  while (vals.size() < n) {
    vals.insert(static_cast<VertexId>(rng.NextBounded(range)));
  }
  return std::vector<VertexId>(vals.begin(), vals.end());
}

TEST(SetOps, GallopingMatchesMergeOnRandomInputs) {
  // The size ratio picks the path: >kGallopRatio gallops the longer list,
  // otherwise a linear merge runs. Both must produce the intersection.
  gpusim::Device dev;
  struct Shape {
    size_t current;
    size_t other;
  };
  for (const Shape& shape : {Shape{12, 3000}, Shape{3000, 12},
                             Shape{500, 500}, Shape{1, 2000},
                             Shape{2000, 1}, Shape{64, 65}}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      std::vector<VertexId> current =
          SortedRandom(shape.current, 5000, seed * 2);
      std::vector<VertexId> other =
          SortedRandom(shape.other, 5000, seed * 2 + 1);
      std::vector<VertexId> expected;
      std::set_intersection(current.begin(), current.end(), other.begin(),
                            other.end(), std::back_inserter(expected));
      WithWarp(dev, [&](gpusim::Warp& w) {
        SetOpFlags f;
        size_t n = IntersectSorted(w, current, other, f, nullptr, 0);
        EXPECT_EQ(n, expected.size());
      });
      EXPECT_EQ(current, expected)
          << shape.current << "x" << shape.other << " seed " << seed;
    }
  }
}

TEST(SetOps, GallopingChargesLessThanAFullMerge) {
  // A tiny probe list against a huge neighbor list must not pay for
  // streaming the huge list (the merge path's |current| + |other| ALU ops).
  gpusim::Device dev;
  std::vector<VertexId> other(100000);
  for (size_t i = 0; i < other.size(); ++i) {
    other[i] = static_cast<VertexId>(2 * i);
  }
  std::vector<VertexId> current = {4, 400, 40000, 40001};
  const size_t merge_cost = current.size() + other.size();
  uint64_t alu = 0;
  WithWarp(dev, [&](gpusim::Warp& w) {
    SetOpFlags f;
    uint64_t before = dev.stats().alu_ops;
    IntersectSorted(w, current, other, f, nullptr, 0);
    alu = dev.stats().alu_ops - before;
  });
  EXPECT_EQ(current, (std::vector<VertexId>{4, 400, 40000}));
  EXPECT_LT(alu, merge_cost / 100);  // orders of magnitude, not epsilon
}

TEST(SetOps, NaiveModeNeverGallops) {
  // The naive baseline models one kernel per whole-list operation; its
  // charge must stay the full linear merge even on skewed sizes.
  gpusim::Device dev;
  std::vector<VertexId> other(10000);
  for (size_t i = 0; i < other.size(); ++i) {
    other[i] = static_cast<VertexId>(i);
  }
  std::vector<VertexId> current = {5, 7};
  uint64_t alu = 0;
  WithWarp(dev, [&](gpusim::Warp& w) {
    SetOpFlags f;
    f.naive = true;
    uint64_t before = dev.stats().alu_ops;
    IntersectSorted(w, current, other, f, nullptr, 0);
    alu = dev.stats().alu_ops - before;
  });
  EXPECT_EQ(current, (std::vector<VertexId>{5, 7}));
  EXPECT_EQ(alu, 2u + 10000u);
}

TEST(SetOps, WriteCacheUsesFewerStoreTransactions) {
  gpusim::Device dev;
  auto gba = dev.Alloc<VertexId>(256);
  std::vector<VertexId> values(100);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<VertexId>(i);
  }
  uint64_t cached = 0;
  uint64_t uncached = 0;
  WithWarp(dev, [&](gpusim::Warp& w) {
    uint64_t before = dev.stats().gst;
    WriteToGba(w, values, /*write_cache=*/true, gba, 0);
    cached = dev.stats().gst - before;
    before = dev.stats().gst;
    WriteToGba(w, values, /*write_cache=*/false, gba, 0);
    uncached = dev.stats().gst - before;
  });
  EXPECT_EQ(cached, 4u);     // 100 values = 4 cache flushes (32/flush)
  EXPECT_EQ(uncached, 100u); // one transaction per value
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(gba[i], values[i]);
}

// ------------------------------------------------------- chunk planning ---

TEST(ChunkPlanning, NoLoadBalanceOneChunkPerRow) {
  std::vector<uint32_t> bounds = {10, 0, 5000, 7};
  std::vector<uint64_t> offsets = {0, 10, 10, 5010, 5017};
  ChunkPlan plan = PlanChunks(bounds, offsets, false, 4096, 1024, 256);
  EXPECT_TRUE(plan.huge.empty());
  EXPECT_TRUE(plan.per_block.empty());
  ASSERT_EQ(plan.pooled.size(), 4u);
  EXPECT_EQ(plan.pooled[2].pos_end, 5000u);
  EXPECT_EQ(plan.pooled[2].gba_begin, 10u);
}

TEST(ChunkPlanning, FourLayerClassification) {
  // bounds: tiny (layer 4), pooled-split (3), per-block (2), huge (1).
  std::vector<uint32_t> bounds = {100, 600, 2000, 9000};
  std::vector<uint64_t> offsets = {0, 100, 700, 2700, 11700};
  ChunkPlan plan = PlanChunks(bounds, offsets, true, 4096, 1024, 256);
  ASSERT_EQ(plan.huge.size(), 1u);             // the 9000 row
  EXPECT_EQ(plan.huge[0].size(), (9000 + 255) / 256);
  ASSERT_EQ(plan.per_block.size(), 1u);        // the 2000 row
  EXPECT_EQ(plan.per_block[0].size(), (2000 + 255) / 256);
  // pooled: the 100 row as one chunk + the 600 row in 256-chunks.
  EXPECT_EQ(plan.pooled.size(), 1u + (600 + 255) / 256);
  // Chunk positions tile each row exactly.
  uint32_t covered = 0;
  for (const Chunk& c : plan.huge[0]) {
    EXPECT_EQ(c.pos_begin, covered);
    covered = c.pos_end;
    EXPECT_EQ(c.gba_begin, offsets[3] + c.pos_begin);
  }
  EXPECT_EQ(covered, 9000u);
}

TEST(ChunkPlanning, EmptyBoundsYieldEmptyPlan) {
  std::vector<uint64_t> offsets = {0};
  for (bool lb : {false, true}) {
    ChunkPlan plan = PlanChunks({}, offsets, lb, 4096, 1024, 256);
    EXPECT_TRUE(plan.huge.empty());
    EXPECT_TRUE(plan.per_block.empty());
    EXPECT_TRUE(plan.pooled.empty());
    EXPECT_EQ(plan.total_chunks(), 0u);
    EXPECT_TRUE(plan.AllChunks().empty());
  }
}

TEST(ChunkPlanning, SingleAllHeavyRowGetsItsOwnKernel) {
  // One row carries the entire workload: layer 1, W3-sized chunks tiling it.
  std::vector<uint32_t> bounds = {100000};
  std::vector<uint64_t> offsets = {0, 100000};
  ChunkPlan plan = PlanChunks(bounds, offsets, true, 4096, 1024, 256);
  EXPECT_TRUE(plan.pooled.empty());
  EXPECT_TRUE(plan.per_block.empty());
  ASSERT_EQ(plan.huge.size(), 1u);
  EXPECT_EQ(plan.huge[0].size(), (100000 + 255) / 256);
  uint32_t covered = 0;
  for (const Chunk& c : plan.huge[0]) {
    EXPECT_EQ(c.row, 0u);
    EXPECT_EQ(c.pos_begin, covered);
    covered = c.pos_end;
  }
  EXPECT_EQ(covered, 100000u);
}

TEST(ChunkPlanning, W3AboveEveryBoundKeepsRowsWhole) {
  // W3 larger than every row's workload: nothing is split, every row is a
  // single layer-4 chunk.
  std::vector<uint32_t> bounds = {33, 100, 400};
  std::vector<uint64_t> offsets = {0, 33, 133, 533};
  ChunkPlan plan = PlanChunks(bounds, offsets, true, 4096, 1024, 512);
  EXPECT_TRUE(plan.huge.empty());
  EXPECT_TRUE(plan.per_block.empty());
  ASSERT_EQ(plan.pooled.size(), 3u);
  for (size_t i = 0; i < plan.pooled.size(); ++i) {
    EXPECT_EQ(plan.pooled[i].row, i);
    EXPECT_EQ(plan.pooled[i].pos_begin, 0u);
    EXPECT_EQ(plan.pooled[i].pos_end, bounds[i]);
    EXPECT_EQ(plan.pooled[i].gba_begin, offsets[i]);
  }
}

TEST(ChunkPlanning, ZeroBoundRowsStillGetAChunk) {
  std::vector<uint32_t> bounds = {0, 0};
  std::vector<uint64_t> offsets = {0, 0, 0};
  ChunkPlan plan = PlanChunks(bounds, offsets, true, 4096, 1024, 256);
  EXPECT_EQ(plan.pooled.size(), 2u);
  EXPECT_EQ(plan.total_chunks(), 2u);
}

TEST(ChunkPlanning, AllChunksCoversEverything) {
  std::vector<uint32_t> bounds = {100, 2000, 9000, 50};
  std::vector<uint64_t> offsets = {0, 100, 2100, 11100, 11150};
  ChunkPlan plan = PlanChunks(bounds, offsets, true, 4096, 1024, 256);
  EXPECT_EQ(plan.AllChunks().size(), plan.total_chunks());
}

// --------------------------------------------------- duplicate removal ---

TEST(DupRemoval, SecondReadOfSameListIsShared) {
  Graph g = ::gsi::testing::RandomGraph(200, 4, 2, 2, 3);
  gpusim::Device dev;
  auto store = BuildStore(dev, g, StorageKind::kPcsr, 16);
  Label l = g.edge_labels()[0];
  VertexId v = 0;
  while (g.NeighborsWithLabel(v, l).empty()) ++v;

  BlockExtractionCache cache(/*enabled=*/true);
  WithWarp(dev, [&](gpusim::Warp& w) {
    uint64_t before = dev.stats().gld;
    const auto& first = cache.GetSlice(w, *store, v, l, 0, 1u << 20);
    uint64_t first_loads = dev.stats().gld - before;
    EXPECT_GT(first_loads, 0u);
    std::vector<VertexId> copy = first;

    before = dev.stats().gld;
    const auto& second = cache.GetSlice(w, *store, v, l, 0, 1u << 20);
    EXPECT_EQ(dev.stats().gld - before, 0u);  // shared via shared memory
    EXPECT_EQ(second, copy);
  });
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DupRemoval, DisabledCacheAlwaysReloads) {
  Graph g = ::gsi::testing::RandomGraph(200, 4, 2, 2, 4);
  gpusim::Device dev;
  auto store = BuildStore(dev, g, StorageKind::kPcsr, 16);
  Label l = g.edge_labels()[0];
  BlockExtractionCache cache(/*enabled=*/false);
  WithWarp(dev, [&](gpusim::Warp& w) {
    cache.GetSlice(w, *store, 0, l, 0, 100);
    uint64_t before = dev.stats().gld;
    cache.GetSlice(w, *store, 0, l, 0, 100);
    EXPECT_GT(dev.stats().gld - before, 0u);
  });
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(DupRemoval, DifferentSlicesAreNotShared) {
  Graph g = ::gsi::testing::RandomGraph(200, 6, 2, 1, 5);
  gpusim::Device dev;
  auto store = BuildStore(dev, g, StorageKind::kPcsr, 16);
  Label l = g.edge_labels()[0];
  VertexId v = 0;
  while (g.NeighborsWithLabel(v, l).size() < 4) ++v;
  BlockExtractionCache cache(true);
  WithWarp(dev, [&](gpusim::Warp& w) {
    cache.GetSlice(w, *store, v, l, 0, 2);
    cache.GetSlice(w, *store, v, l, 2, 4);
  });
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(DupRemoval, ResetClearsSharing) {
  Graph g = ::gsi::testing::RandomGraph(100, 3, 2, 2, 6);
  gpusim::Device dev;
  auto store = BuildStore(dev, g, StorageKind::kPcsr, 16);
  Label l = g.edge_labels()[0];
  BlockExtractionCache cache(true);
  WithWarp(dev, [&](gpusim::Warp& w) {
    cache.GetSlice(w, *store, 0, l, 0, 10);
    cache.Reset();  // block boundary
    cache.GetSlice(w, *store, 0, l, 0, 10);
  });
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

// --------------------------------------------------------- match table ---

TEST(MatchTableTest, AllocAndAccessors) {
  gpusim::Device dev;
  MatchTable t = MatchTable::Alloc(dev, 3, 2);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  t.Set(1, 0, 42);
  t.Set(1, 1, 43);
  EXPECT_EQ(t.At(1, 0), 42u);
  EXPECT_EQ(t.Row(1), (std::vector<VertexId>{42, 43}));
  EXPECT_EQ(t.Row(0), (std::vector<VertexId>{0, 0}));
}

TEST(MatchTableTest, FromColumn) {
  gpusim::Device dev;
  MatchTable t = MatchTable::FromColumn(dev, {7, 8, 9});
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_EQ(t.At(2, 0), 9u);
}

MatchTable FillTable(gpusim::Device& dev, size_t rows, size_t cols,
                     VertexId base) {
  MatchTable t = MatchTable::Alloc(dev, rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      t.Set(r, c, base + static_cast<VertexId>(r * cols + c));
    }
  }
  return t;
}

TEST(MatchTableTest, CopyRowsFromBulk) {
  gpusim::Device dev;
  MatchTable src = FillTable(dev, 4, 3, 100);
  MatchTable dst = MatchTable::Alloc(dev, 5, 3);
  dst.CopyRowsFrom(src, /*src_begin=*/1, /*dst_begin=*/2, /*count=*/2);
  EXPECT_EQ(dst.Row(2), src.Row(1));
  EXPECT_EQ(dst.Row(3), src.Row(2));
  EXPECT_EQ(dst.Row(0), (std::vector<VertexId>{0, 0, 0}));  // untouched
  EXPECT_EQ(dst.Row(4), (std::vector<VertexId>{0, 0, 0}));
  dst.CopyRowsFrom(src, 0, 0, 0);  // zero-count is a no-op
}

TEST(MatchTableTest, ConcatRowsPreservesOrder) {
  gpusim::Device dev;
  MatchTable a = FillTable(dev, 3, 2, 10);
  MatchTable empty = MatchTable::Alloc(dev, 0, 2);
  MatchTable b = FillTable(dev, 2, 2, 50);

  gpusim::Device merge_dev;
  const gpusim::MemStats before = merge_dev.stats();
  std::vector<const MatchTable*> parts = {&a, &empty, &b};
  MatchTable merged = MatchTable::ConcatRows(merge_dev, parts);
  ASSERT_EQ(merged.rows(), 5u);
  ASSERT_EQ(merged.cols(), 2u);
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(merged.Row(r), a.Row(r));
  for (size_t r = 0; r < 2; ++r) EXPECT_EQ(merged.Row(3 + r), b.Row(r));
  // Host-mediated bulk movement: uncharged, like Upload.
  gpusim::MemStats delta = merge_dev.stats() - before;
  EXPECT_EQ(delta.gld, 0u);
  EXPECT_EQ(delta.gst, 0u);
  EXPECT_EQ(delta.kernel_launches, 0u);
}

TEST(MatchTableTest, ConcatRowsWidthFromNonEmptyParts) {
  // A join slice that dies early returns the full-width empty table; the
  // merge must take its width from the surviving parts.
  gpusim::Device dev;
  MatchTable wide_empty = MatchTable::Alloc(dev, 0, 9);
  MatchTable b = FillTable(dev, 2, 3, 50);
  std::vector<const MatchTable*> parts = {&wide_empty, &b};
  MatchTable merged = MatchTable::ConcatRows(dev, parts);
  EXPECT_EQ(merged.rows(), 2u);
  EXPECT_EQ(merged.cols(), 3u);
}

TEST(MatchTableTest, ConcatRowsAllEmpty) {
  gpusim::Device dev;
  MatchTable a = MatchTable::Alloc(dev, 0, 4);
  MatchTable b = MatchTable::Alloc(dev, 0, 4);
  std::vector<const MatchTable*> parts = {&a, &b};
  MatchTable merged = MatchTable::ConcatRows(dev, parts);
  EXPECT_EQ(merged.rows(), 0u);
  EXPECT_EQ(merged.cols(), 4u);
}

TEST(MatchTableTest, CopySliceExtractsRowRange) {
  gpusim::Device dev;
  MatchTable src = FillTable(dev, 6, 3, 100);
  MatchTable slice = MatchTable::CopySlice(dev, src, /*src_begin=*/2,
                                           /*count=*/3);
  ASSERT_EQ(slice.rows(), 3u);
  ASSERT_EQ(slice.cols(), 3u);
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(slice.Row(r), src.Row(2 + r));
}

// ------------------------------------------------------- matcher API ---

TEST(MatcherApi, NamedOptionPresetsDiffer) {
  GsiOptions minus = GsiMinusOptions();
  EXPECT_EQ(minus.join.storage, StorageKind::kCsr);
  EXPECT_EQ(minus.join.output_scheme, OutputScheme::kTwoStep);
  EXPECT_EQ(minus.join.set_op, SetOpKind::kNaive);
  GsiOptions opt = GsiOptOptions();
  EXPECT_TRUE(opt.join.load_balance);
  EXPECT_TRUE(opt.join.duplicate_removal);
  GsiOptions base = DefaultGsiOptions();
  EXPECT_FALSE(base.join.load_balance);
  EXPECT_EQ(base.join.storage, StorageKind::kPcsr);
}

TEST(MatcherApi, MatchesInQueryOrderInvertsPlanPermutation) {
  Graph data = ::gsi::testing::RandomGraph(150, 3, 3, 3, 7);
  Graph query = ::gsi::testing::RandomQuery(data, 4, 8);
  GsiMatcher m(data);
  auto r = m.Find(query);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->num_matches(), 1u);
  std::vector<VertexId> match = r->MatchInQueryOrder(0);
  // Check consistency with the raw table + column map.
  for (size_t c = 0; c < r->table.cols(); ++c) {
    EXPECT_EQ(match[r->column_to_query[c]], r->table.At(0, c));
  }
}

TEST(MatcherApi, DeviceConfigIsPluggable) {
  Graph data = ::gsi::testing::RandomGraph(100, 3, 2, 2, 12);
  GsiOptions options;
  options.device.num_sms = 1;  // a one-SM device serializes all blocks
  GsiMatcher slow(data, options);
  GsiMatcher fast(data);  // 30 SMs
  Graph q = ::gsi::testing::RandomQuery(data, 4, 13);
  auto a = slow.Find(q);
  auto b = fast.Find(q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_matches(), b->num_matches());
  // Same work, same transactions; more SMs -> shorter makespan.
  EXPECT_EQ(a->stats.join.gld, b->stats.join.gld);
  EXPECT_GE(a->stats.total_ms, b->stats.total_ms);
}

TEST(MatcherApi, StatsAccumulateAcrossQueries) {
  Graph data = ::gsi::testing::RandomGraph(150, 3, 3, 3, 9);
  GsiMatcher m(data);
  Graph q1 = ::gsi::testing::RandomQuery(data, 3, 10);
  Graph q2 = ::gsi::testing::RandomQuery(data, 3, 11);
  ASSERT_TRUE(m.Find(q1).ok());
  uint64_t after_one = m.device().stats().gld;
  ASSERT_TRUE(m.Find(q2).ok());
  EXPECT_GT(m.device().stats().gld, after_one);
}

}  // namespace
}  // namespace gsi
