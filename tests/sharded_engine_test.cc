// Multi-device sharded execution: the merged match table must be
// bit-identical to single-device GsiMatcher::Find (same rows, same order,
// same column mapping) on every integration-test graph, and the workload
// partitioner must keep skewed seeds balanced.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/query_generator.h"
#include "gsi/load_balance.h"
#include "gsi/matcher.h"
#include "gsi/query_engine.h"
#include "gsi/sharded_engine.h"
#include "service/device_pool.h"
#include "test_util.h"

namespace gsi {
namespace {

/// Bit-identical: not just the same match set, the same table. Per-cell
/// asserts give useful diagnostics; the final check covers the
/// QueryResult::TableEquals helper the bench and example rely on.
void ExpectBitIdentical(const QueryResult& sharded, const QueryResult& single,
                        const std::string& context) {
  ASSERT_EQ(sharded.table.rows(), single.table.rows()) << context;
  ASSERT_EQ(sharded.table.cols(), single.table.cols()) << context;
  EXPECT_EQ(sharded.column_to_query, single.column_to_query) << context;
  for (size_t r = 0; r < single.table.rows(); ++r) {
    for (size_t c = 0; c < single.table.cols(); ++c) {
      ASSERT_EQ(sharded.table.At(r, c), single.table.At(r, c))
          << context << " cell (" << r << ", " << c << ")";
    }
  }
  EXPECT_TRUE(sharded.TableEquals(single)) << context;
}

Result<QueryResult> RunSharded(const QueryEngine& engine, const Graph& query,
                               size_t num_devices) {
  DevicePool pool(num_devices, engine.options().device);
  std::vector<DevicePool::Lease> leases = pool.AcquireUpTo(num_devices).value();
  std::vector<gpusim::Device*> devs;
  for (DevicePool::Lease& l : leases) devs.push_back(l.get());
  ShardOptions so;
  so.min_rows_per_shard = 1;  // shard even tiny test tables
  return engine.RunSharded(query, devs, so);
}

TEST(ShardedEngine, BitIdenticalToSingleDeviceOnIntegrationGraphs) {
  for (const char* name : {"enron", "gowalla", "watdiv"}) {
    Result<Dataset> d = MakeDataset(name, /*scale=*/0.01);
    ASSERT_TRUE(d.ok());
    const Graph& g = d->graph;
    QueryGenConfig qc;
    qc.num_vertices = 5;
    std::vector<Graph> queries = GenerateQuerySet(g, qc, 3, 77);
    ASSERT_FALSE(queries.empty());

    for (const GsiOptions& options : {DefaultGsiOptions(), GsiOptOptions()}) {
      GsiMatcher sequential(g, options);
      QueryEngine engine(g, options);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        Result<QueryResult> single = sequential.Find(queries[qi]);
        ASSERT_TRUE(single.ok());
        for (size_t devices : {2, 3, 4}) {
          Result<QueryResult> sharded =
              RunSharded(engine, queries[qi], devices);
          ASSERT_TRUE(sharded.ok());
          ExpectBitIdentical(
              *sharded, *single,
              std::string(name) + " query " + std::to_string(qi) + " devices " +
                  std::to_string(devices));
        }
      }
    }
  }
}

TEST(ShardedEngine, BitIdenticalOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = testing::RandomGraph(300, 3, 3, 2, seed * 11);
    Graph q = testing::RandomQuery(g, 5, seed * 13);
    GsiMatcher sequential(g, GsiOptOptions());
    QueryEngine engine(g, GsiOptOptions());
    Result<QueryResult> single = sequential.Find(q);
    ASSERT_TRUE(single.ok());
    Result<QueryResult> sharded = RunSharded(engine, q, 4);
    ASSERT_TRUE(sharded.ok());
    ExpectBitIdentical(*sharded, *single, "seed " + std::to_string(seed));
  }
}

TEST(ShardedEngine, SingleDeviceSpanIsPlainExecution) {
  Graph g = testing::RandomGraph(200, 3, 3, 2, 42);
  Graph q = testing::RandomQuery(g, 4, 43);
  QueryEngine engine(g, GsiOptOptions());
  Result<QueryResult> single = engine.Run(q);
  Result<QueryResult> sharded = RunSharded(engine, q, 1);
  ASSERT_TRUE(single.ok() && sharded.ok());
  ExpectBitIdentical(*sharded, *single, "one device");
  EXPECT_EQ(sharded->stats.shards_used, 1u);
  EXPECT_EQ(sharded->stats.shard_skew, 0);
}

TEST(ShardedEngine, ShardStatsRollUp) {
  Graph g = testing::RandomGraph(400, 4, 2, 2, 7);
  Graph q = testing::RandomQuery(g, 4, 8);
  QueryEngine engine(g, GsiOptOptions());
  Result<QueryResult> single = engine.Run(q);
  ASSERT_TRUE(single.ok());
  ASSERT_GE(single->stats.min_candidate_size, 2u) << "workload too selective";

  Result<QueryResult> sharded = RunSharded(engine, q, 4);
  ASSERT_TRUE(sharded.ok());
  EXPECT_GE(sharded->stats.shards_used, 2u);
  EXPECT_LE(sharded->stats.shards_used, 4u);
  // Skew is max/mean over shards: >= 1 by definition when sharded.
  EXPECT_GE(sharded->stats.shard_skew, 1.0);
  // The makespan of parallel shards plus merge must not exceed the summed
  // counters' serial time, and the match count is unchanged.
  EXPECT_LE(sharded->stats.join_ms,
            sharded->stats.join.SimulatedMs(engine.options().device) + 1e-9);
  EXPECT_EQ(sharded->stats.num_matches, single->stats.num_matches);
}

TEST(ShardedEngine, InvalidQueriesStillFail) {
  Graph g = testing::RandomGraph(100, 3, 2, 2, 5);
  QueryEngine engine(g, DefaultGsiOptions());
  Result<QueryResult> r = RunSharded(engine, Graph(), 2);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  DevicePool pool(1);
  EXPECT_EQ(engine.RunSharded(testing::RandomQuery(g, 3, 6), {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------ workload partitioner ---

uint64_t MaxWeight(const std::vector<ShardRange>& ranges) {
  uint64_t worst = 0;
  for (const ShardRange& r : ranges) worst = std::max(worst, r.weight);
  return worst;
}

void ExpectTiles(const std::vector<ShardRange>& ranges, size_t n) {
  size_t covered = 0;
  for (const ShardRange& r : ranges) {
    EXPECT_EQ(r.begin, covered);
    EXPECT_LT(r.begin, r.end);
    covered = r.end;
  }
  EXPECT_EQ(covered, n);
}

TEST(PartitionByWorkload, EmptyInputYieldsNoShards) {
  EXPECT_TRUE(PartitionByWorkload({}, 4).empty());
  std::vector<uint64_t> one = {5};
  EXPECT_TRUE(PartitionByWorkload(one, 0).empty());
}

TEST(PartitionByWorkload, FewerItemsThanShards) {
  std::vector<uint64_t> weights = {5, 7};
  std::vector<ShardRange> ranges = PartitionByWorkload(weights, 4);
  ASSERT_EQ(ranges.size(), 2u);
  ExpectTiles(ranges, weights.size());
  EXPECT_EQ(ranges[0].weight, 5u);
  EXPECT_EQ(ranges[1].weight, 7u);
}

TEST(PartitionByWorkload, UniformWeightsSplitEvenly) {
  std::vector<uint64_t> weights(100, 1);
  std::vector<ShardRange> ranges = PartitionByWorkload(weights, 4);
  ASSERT_EQ(ranges.size(), 4u);
  ExpectTiles(ranges, weights.size());
  for (const ShardRange& r : ranges) EXPECT_EQ(r.end - r.begin, 25u);
}

TEST(PartitionByWorkload, HotHeadDoesNotDragTheRestAlong) {
  // One candidate carries ~the whole workload: an equal-count split would
  // put it plus half the light rows on shard 0 (weight 1001 vs 2); sizing
  // by weight isolates it.
  std::vector<uint64_t> weights = {1000, 1, 1, 1};
  std::vector<ShardRange> ranges = PartitionByWorkload(weights, 2);
  ASSERT_EQ(ranges.size(), 2u);
  ExpectTiles(ranges, weights.size());
  EXPECT_EQ(ranges[0].end, 1u);  // the hot row rides alone
  EXPECT_EQ(MaxWeight(ranges), 1000u);
  EXPECT_LT(MaxWeight(ranges), 1001u);  // beats the equal-count split
}

TEST(PartitionByWorkload, HotTailStillLeavesWorkForEveryShard) {
  std::vector<uint64_t> weights = {1, 1, 1, 1000};
  std::vector<ShardRange> ranges = PartitionByWorkload(weights, 2);
  ASSERT_EQ(ranges.size(), 2u);
  ExpectTiles(ranges, weights.size());
  EXPECT_EQ(ranges[1].begin, 3u);  // light prefix together, hot row alone
  EXPECT_EQ(MaxWeight(ranges), 1000u);
}

TEST(PartitionByWorkload, ZeroWeightsCountAsOne) {
  std::vector<uint64_t> weights(8, 0);
  std::vector<ShardRange> ranges = PartitionByWorkload(weights, 4);
  ASSERT_EQ(ranges.size(), 4u);
  ExpectTiles(ranges, weights.size());
  for (const ShardRange& r : ranges) EXPECT_EQ(r.end - r.begin, 2u);
}

TEST(PartitionByWorkload, SkewedRandomWorkloadBeatsEqualCountSplit) {
  // Zipf-ish weights: a clustered handful of heavy candidates before many
  // light ones (the pattern that wrecks an equal-count split).
  std::vector<uint64_t> weights;
  uint64_t total = 0;
  for (size_t i = 0; i < 256; ++i) {
    uint64_t w = (i < 4) ? 4096 : 1 + i % 7;
    weights.push_back(w);
    total += w;
  }
  const size_t shards = 4;
  std::vector<ShardRange> ranges = PartitionByWorkload(weights, shards);
  ASSERT_EQ(ranges.size(), shards);
  ExpectTiles(ranges, weights.size());

  uint64_t equal_count_worst = 0;
  const size_t per = weights.size() / shards;
  for (size_t s = 0; s < shards; ++s) {
    uint64_t sum = 0;
    for (size_t i = s * per; i < (s + 1) * per; ++i) sum += weights[i];
    equal_count_worst = std::max(equal_count_worst, sum);
  }
  // The weighted split must strictly beat the count split's worst shard
  // and stay within 2x of the ideal mean.
  EXPECT_LT(MaxWeight(ranges), equal_count_worst);
  EXPECT_LE(MaxWeight(ranges), 2 * (total / shards + 1));
}

}  // namespace
}  // namespace gsi
