// The per-device halo cache (gsi/halo_cache.h): unit semantics of the
// serve/record contract, LRU budget enforcement, fault-epoch invalidation,
// and the property that matters — partitioned and replicated executions
// with any budget return match tables byte-identical to GsiMatcher::Find
// while nonzero budgets strictly remove interconnect transactions. Also the
// lock contract: stats snapshots stay coherent while a lane thread churns.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "gsi/halo_cache.h"
#include "gsi/matcher.h"
#include "gsi/partition.h"
#include "gsi/replication.h"
#include "test_util.h"

namespace gsi {
namespace {

template <typename Fn>
void WithWarp(gpusim::Device& dev, Fn&& fn) {
  gpusim::Launch(dev, 1, [&](gpusim::Warp& w) { fn(w); });
}

// ------------------------------------------------------ unit semantics ---

TEST(HaloCacheUnit, CountRoundTripsAndChargesNoRemoteTransactions) {
  gpusim::Device dev;
  HaloCache cache(dev, 1 << 20);
  WithWarp(dev, [&](gpusim::Warp& w) {
    EXPECT_FALSE(cache.ServeCount(w, 0, 7, 1).has_value());
  });
  cache.RecordCount(0, 7, 1, 5);
  const uint64_t remote_before = dev.stats().remote_transactions;
  const uint64_t gld_before = dev.stats().gld;
  WithWarp(dev, [&](gpusim::Warp& w) {
    std::optional<size_t> n = cache.ServeCount(w, 0, 7, 1);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 5u);
  });
  // A hit is a local read: gld moves, the interconnect counter does not.
  EXPECT_EQ(dev.stats().remote_transactions, remote_before);
  EXPECT_GT(dev.stats().gld, gld_before);
  const HaloCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(HaloCacheUnit, CompleteListServesEveryProbeShape) {
  gpusim::Device dev;
  HaloCache cache(dev, 1 << 20);
  const std::vector<VertexId> list = {10, 20, 30, 40};
  cache.RecordList(2, 9, 0, list);
  WithWarp(dev, [&](gpusim::Warp& w) {
    std::vector<VertexId> out;
    std::optional<size_t> n = cache.ServeExtract(w, 2, 9, 0, out);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(out, list);

    // Slices clamp end to the count exactly like the store does.
    out.clear();
    n = cache.ServeSlice(w, 2, 9, 0, 1, 3, out);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 2u);
    EXPECT_EQ(out, (std::vector<VertexId>{20, 30}));
    out.clear();
    n = cache.ServeSlice(w, 2, 9, 0, 2, 100, out);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(out, (std::vector<VertexId>{30, 40}));
    out.clear();
    n = cache.ServeSlice(w, 2, 9, 0, 7, 9, out);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 0u);
    EXPECT_TRUE(out.empty());

    // Value ranges are inclusive on both ends.
    out.clear();
    n = cache.ServeValueRange(w, 2, 9, 0, 15, 30, out);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(out, (std::vector<VertexId>{20, 30}));
    // A count is implied by the complete list.
    n = cache.ServeCount(w, 2, 9, 0);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 4u);
  });
}

TEST(HaloCacheUnit, SlicePrefixesAssembleIntoACompleteEntry) {
  gpusim::Device dev;
  HaloCache cache(dev, 1 << 20);
  // First chunk [0, 2): full return, count still unknown — no serving yet
  // (ServeSlice needs the exact count to clamp the way the store does).
  cache.RecordSlice(1, 4, 2, /*begin=*/0, /*requested=*/2, {{5, 6}});
  WithWarp(dev, [&](gpusim::Warp& w) {
    std::vector<VertexId> out;
    EXPECT_FALSE(cache.ServeSlice(w, 1, 4, 2, 0, 2, out).has_value());
    EXPECT_FALSE(cache.ServeExtract(w, 1, 4, 2, out).has_value());
  });
  // Second chunk [2, 4) returns one value: short return ends the list at 3
  // and the contiguous prefix completes the entry.
  cache.RecordSlice(1, 4, 2, /*begin=*/2, /*requested=*/2, {{7}});
  WithWarp(dev, [&](gpusim::Warp& w) {
    std::vector<VertexId> out;
    std::optional<size_t> n = cache.ServeExtract(w, 1, 4, 2, out);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(out, (std::vector<VertexId>{5, 6, 7}));
    n = cache.ServeCount(w, 1, 4, 2);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 3u);
  });
}

TEST(HaloCacheUnit, EmptyShortReturnPastEndLearnsNoCount) {
  gpusim::Device dev;
  HaloCache cache(dev, 1 << 20);
  // An empty return for begin > 0 only proves |list| <= begin — admitting
  // begin as the count would be wrong whenever begin overshoots the end.
  cache.RecordSlice(0, 3, 0, /*begin=*/8, /*requested=*/4, {});
  WithWarp(dev, [&](gpusim::Warp& w) {
    EXPECT_FALSE(cache.ServeCount(w, 0, 3, 0).has_value());
  });
  // An empty *full-list* return at begin 0 is a real count: the list is
  // empty, and the entry is complete.
  cache.RecordSlice(0, 3, 0, /*begin=*/0, /*requested=*/4, {});
  WithWarp(dev, [&](gpusim::Warp& w) {
    std::optional<size_t> n = cache.ServeCount(w, 0, 3, 0);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 0u);
    std::vector<VertexId> out;
    n = cache.ServeExtract(w, 0, 3, 0, out);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 0u);
  });
}

TEST(HaloCacheUnit, LruEvictionKeepsResidencyUnderBudget) {
  gpusim::Device dev;
  // Room for roughly two small list entries (64B overhead + values each).
  HaloCache cache(dev, 256);
  const std::vector<VertexId> list = {1, 2, 3, 4, 5, 6, 7, 8};  // 96B entry
  cache.RecordList(0, 0, 0, list);
  cache.RecordList(0, 1, 0, list);
  EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
  EXPECT_EQ(cache.stats().evictions, 0u);
  // A third entry exceeds the budget; the least-recently-used one goes.
  cache.RecordList(0, 2, 0, list);
  EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
  EXPECT_GT(cache.stats().evictions, 0u);
  WithWarp(dev, [&](gpusim::Warp& w) {
    std::vector<VertexId> out;
    EXPECT_FALSE(cache.ServeExtract(w, 0, 0, 0, out).has_value())
        << "vertex 0 was the LRU entry and should have been evicted";
    EXPECT_TRUE(cache.ServeExtract(w, 0, 2, 0, out).has_value());
  });
  // An entry bigger than the whole budget is admitted and then immediately
  // evicted — the invariant survives oversized lists.
  std::vector<VertexId> huge(200, 1);
  cache.RecordList(0, 3, 0, huge);
  EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
}

TEST(HaloCacheUnit, LruTouchOnServeProtectsHotEntries) {
  gpusim::Device dev;
  HaloCache cache(dev, 256);
  const std::vector<VertexId> list = {1, 2, 3, 4, 5, 6, 7, 8};
  cache.RecordList(0, 0, 0, list);
  cache.RecordList(0, 1, 0, list);
  // Touch vertex 0: it becomes most-recent, so the next insertion evicts
  // vertex 1 instead.
  WithWarp(dev, [&](gpusim::Warp& w) {
    std::vector<VertexId> out;
    EXPECT_TRUE(cache.ServeExtract(w, 0, 0, 0, out).has_value());
  });
  cache.RecordList(0, 2, 0, list);
  WithWarp(dev, [&](gpusim::Warp& w) {
    std::vector<VertexId> out;
    EXPECT_TRUE(cache.ServeExtract(w, 0, 0, 0, out).has_value());
    EXPECT_FALSE(cache.ServeExtract(w, 0, 1, 0, out).has_value());
  });
}

TEST(HaloCacheUnit, DeviceFaultEpochDiscardsEverything) {
  gpusim::Device dev;
  HaloCache cache(dev, 1 << 20);
  cache.RecordList(0, 5, 0, {{1, 2, 3}});
  EXPECT_EQ(cache.stats().entries, 1u);
  dev.Trip("injected");
  dev.Repair();
  // First touch after the trip discards the stale entries: nothing fetched
  // before the fault survives quarantine + repair.
  WithWarp(dev, [&](gpusim::Warp& w) {
    std::vector<VertexId> out;
    EXPECT_FALSE(cache.ServeExtract(w, 0, 5, 0, out).has_value());
  });
  const HaloCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_EQ(s.invalidations, 1u);
}

TEST(HaloCacheUnit, ClearDropsEntriesButKeepsCounters) {
  gpusim::Device dev;
  HaloCache cache(dev, 1 << 20);
  cache.RecordList(0, 5, 0, {{1, 2, 3}});
  WithWarp(dev, [&](gpusim::Warp& w) {
    std::vector<VertexId> out;
    EXPECT_TRUE(cache.ServeExtract(w, 0, 5, 0, out).has_value());
  });
  cache.Clear();
  const HaloCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
}

// ------------------------------------------------- end-to-end property ---

struct DeviceSet {
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> ptrs;
};

DeviceSet MakeDevices(size_t k, const gpusim::DeviceConfig& config) {
  DeviceSet ds;
  for (size_t i = 0; i < k; ++i) {
    ds.owned.push_back(std::make_unique<gpusim::Device>(config));
    ds.ptrs.push_back(ds.owned.back().get());
  }
  return ds;
}

void ExpectSameTable(const QueryResult& got, const QueryResult& want,
                     const std::string& context) {
  ASSERT_EQ(got.table.rows(), want.table.rows()) << context;
  ASSERT_EQ(got.table.cols(), want.table.cols()) << context;
  EXPECT_EQ(got.column_to_query, want.column_to_query) << context;
  ASSERT_TRUE(got.TableEquals(want)) << context;
}

// Sweeps budget x partitioner x K on two graph shapes. For every cell the
// match table must be byte-identical to the sequential matcher; at nonzero
// budget a warmed cache must strictly reduce interconnect transactions
// relative to the budget-0 baseline; residency never exceeds the budget.
TEST(HaloCacheProperty, SweepBudgetsPartitionersAndPartitionCounts) {
  const uint64_t kTiny = 512;         // forces eviction on every cell here
  const uint64_t kUnbounded = 1u << 30;
  const HashVertexPartitioner hash;
  const GreedyEdgeCutPartitioner greedy;
  const struct {
    const char* name;
    Graph graph;
  } graphs[] = {
      {"scale-free", testing::RandomGraph(300, 3, 3, 2, 101)},
      {"hubs", testing::RandomHubGraph(300, 3, 3, 2, 103, 3, 0.2)},
  };
  for (const auto& gcase : graphs) {
    const Graph& g = gcase.graph;
    const Graph q = testing::RandomQuery(g, 4, 105);
    const GsiOptions base = GsiOptOptions();
    GsiMatcher sequential(g, base);
    Result<QueryResult> want = sequential.Find(q);
    ASSERT_TRUE(want.ok());

    for (const GraphPartitioner* partitioner :
         {static_cast<const GraphPartitioner*>(&hash),
          static_cast<const GraphPartitioner*>(&greedy)}) {
      for (size_t k : {2, 4}) {
        const std::string ctx = std::string(gcase.name) + " " +
                                partitioner->name() + " k=" +
                                std::to_string(k);
        // Budget 0: no caches, the uncached remote-transaction baseline.
        DeviceSet ds0 = MakeDevices(k, base.device);
        Result<PartitionedGraph> pg0 =
            PartitionedGraph::Build(ds0.ptrs, g, base, *partitioner);
        ASSERT_TRUE(pg0.ok()) << ctx;
        for (PartitionId p = 0; p < k; ++p) {
          EXPECT_EQ(pg0->halo_cache(p), nullptr) << ctx;
        }
        Result<QueryResult> r0 = ExecuteQueryPartitioned(*pg0, q);
        ASSERT_TRUE(r0.ok()) << ctx;
        ExpectSameTable(*r0, *want, ctx + " budget=0");
        ASSERT_GT(r0->stats.remote_probes, 0u)
            << ctx << ": workload has no remote probes, property is vacuous";

        for (uint64_t budget : {kTiny, kUnbounded}) {
          const std::string bctx = ctx + " budget=" + std::to_string(budget);
          GsiOptions opt = base;
          opt.halo_budget_bytes = budget;
          DeviceSet ds = MakeDevices(k, base.device);
          Result<PartitionedGraph> pg =
              PartitionedGraph::Build(ds.ptrs, g, opt, *partitioner);
          ASSERT_TRUE(pg.ok()) << bctx;
          // The budget shows up in the build's residency accounting.
          for (uint64_t rb : pg->build_stats().resident_bytes) {
            EXPECT_GE(rb, budget) << bctx;
          }
          Result<QueryResult> cold = ExecuteQueryPartitioned(*pg, q);
          ASSERT_TRUE(cold.ok()) << bctx;
          ExpectSameTable(*cold, *want, bctx + " cold");
          Result<QueryResult> warm = ExecuteQueryPartitioned(*pg, q);
          ASSERT_TRUE(warm.ok()) << bctx;
          ExpectSameTable(*warm, *want, bctx + " warm");

          uint64_t evictions = 0;
          for (PartitionId p = 0; p < k; ++p) {
            const HaloCache* cache = pg->halo_cache(p);
            ASSERT_NE(cache, nullptr) << bctx;
            EXPECT_LE(cache->resident_bytes(), budget) << bctx;
            evictions += cache->stats().evictions;
          }
          EXPECT_GT(warm->stats.halo_cache_hits, 0u) << bctx;
          EXPECT_LT(warm->stats.join.remote_transactions,
                    r0->stats.join.remote_transactions)
              << bctx << ": a warmed cache must remove remote transactions";
          EXPECT_LE(warm->stats.remote_probes, cold->stats.remote_probes)
              << bctx;
          if (budget == kTiny) {
            EXPECT_GT(evictions, 0u)
                << bctx << ": tiny budget never forced an eviction";
          }
        }
      }
    }
  }
}

TEST(HaloCacheProperty, ReplicatedLanesStayBitIdenticalAndSaveRemotes) {
  Graph g = testing::RandomHubGraph(300, 3, 3, 2, 111, 3, 0.2);
  Graph q = testing::RandomQuery(g, 4, 112);
  const GsiOptions base = GsiOptOptions();
  GsiMatcher sequential(g, base);
  Result<QueryResult> want = sequential.Find(q);
  ASSERT_TRUE(want.ok());

  const size_t devices = 4, replicas = 2;
  DeviceSet ds0 = MakeDevices(devices, base.device);
  Result<ReplicatedGraph> rg0 =
      ReplicatedGraph::Build(ds0.ptrs, g, base, HashVertexPartitioner(),
                             /*partitions=*/devices, replicas);
  ASSERT_TRUE(rg0.ok());
  const ReplicaSelection sel0 = CompactSelection(*rg0);
  Result<QueryResult> r0 = ExecuteQueryReplicated(*rg0, sel0, q);
  ASSERT_TRUE(r0.ok());
  ExpectSameTable(*r0, *want, "replicated budget=0");
  ASSERT_GT(r0->stats.remote_probes, 0u);

  GsiOptions opt = base;
  opt.halo_budget_bytes = 1 << 20;
  DeviceSet ds = MakeDevices(devices, base.device);
  Result<ReplicatedGraph> rg =
      ReplicatedGraph::Build(ds.ptrs, g, opt, HashVertexPartitioner(),
                             /*partitions=*/devices, replicas);
  ASSERT_TRUE(rg.ok());
  const ReplicaSelection sel = CompactSelection(*rg);
  Result<QueryResult> cold = ExecuteQueryReplicated(*rg, sel, q);
  ASSERT_TRUE(cold.ok());
  ExpectSameTable(*cold, *want, "replicated cold");
  Result<QueryResult> warm = ExecuteQueryReplicated(*rg, sel, q);
  ASSERT_TRUE(warm.ok());
  ExpectSameTable(*warm, *want, "replicated warm");
  EXPECT_GT(warm->stats.halo_cache_hits, 0u);
  EXPECT_LT(warm->stats.join.remote_transactions,
            r0->stats.join.remote_transactions);
}

TEST(HaloCacheProperty, FullReplicationNeverTouchesTheCache) {
  // R == N: every device hosts every partition, so all probes are local or
  // co-located — the admission skip for co-resident replicas is structural
  // and the caches must stay empty.
  Graph g = testing::RandomGraph(200, 3, 3, 2, 121);
  Graph q = testing::RandomQuery(g, 4, 122);
  GsiOptions opt = GsiOptOptions();
  opt.halo_budget_bytes = 1 << 20;
  DeviceSet ds = MakeDevices(2, opt.device);
  Result<ReplicatedGraph> rg =
      ReplicatedGraph::Build(ds.ptrs, g, opt, HashVertexPartitioner(),
                             /*partitions=*/2, /*replicas=*/2);
  ASSERT_TRUE(rg.ok());
  Result<QueryResult> r = ExecuteQueryReplicated(*rg, CompactSelection(*rg), q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.remote_probes, 0u);
  for (size_t d = 0; d < rg->num_devices(); ++d) {
    const HaloCache* cache = rg->halo_cache(d);
    ASSERT_NE(cache, nullptr);
    const HaloCache::Stats s = cache->stats();
    EXPECT_EQ(s.hits + s.misses, 0u) << "device " << d;
    EXPECT_EQ(s.entries, 0u) << "device " << d;
  }
}

TEST(HaloCacheProperty, RepeatRunsAgainstEqualStateAreDeterministic) {
  // Two identically-built graphs, same query sequence: every counter —
  // including cache hits, which depend on cache state — must agree run for
  // run. Thread interleaving never reaches the simulated numbers.
  Graph g = testing::RandomHubGraph(250, 3, 3, 2, 131, 2, 0.15);
  Graph q = testing::RandomQuery(g, 4, 132);
  GsiOptions opt = GsiOptOptions();
  opt.halo_budget_bytes = 4096;
  auto run_twice = [&](QueryStats& first, QueryStats& second) {
    DeviceSet ds = MakeDevices(3, opt.device);
    Result<PartitionedGraph> pg = PartitionedGraph::Build(
        ds.ptrs, g, opt, HashVertexPartitioner());
    ASSERT_TRUE(pg.ok());
    Result<QueryResult> a = ExecuteQueryPartitioned(*pg, q);
    Result<QueryResult> b = ExecuteQueryPartitioned(*pg, q);
    ASSERT_TRUE(a.ok() && b.ok());
    first = a->stats;
    second = b->stats;
  };
  QueryStats a1, a2, b1, b2;
  run_twice(a1, a2);
  run_twice(b1, b2);
  EXPECT_EQ(a1.halo_cache_hits, b1.halo_cache_hits);
  EXPECT_EQ(a2.halo_cache_hits, b2.halo_cache_hits);
  EXPECT_EQ(a1.halo_cache_bytes, b1.halo_cache_bytes);
  EXPECT_EQ(a2.halo_cache_bytes, b2.halo_cache_bytes);
  EXPECT_EQ(a1.remote_probes, b1.remote_probes);
  EXPECT_EQ(a2.remote_probes, b2.remote_probes);
  EXPECT_EQ(a1.join.remote_transactions, b1.join.remote_transactions);
  EXPECT_EQ(a2.join.remote_transactions, b2.join.remote_transactions);
}

// ---------------------------------------------------------- lock contract ---

TEST(HaloCacheLockContract, StatsSnapshotsStayCoherentUnderChurn) {
  // One thread churns partitioned queries (each lane thread mutates its own
  // device's cache); observers hammer stats() concurrently. Every snapshot
  // must satisfy the cache invariants — and under TSan this is the data-race
  // proof for the metrics pull path.
  Graph g = testing::RandomHubGraph(250, 3, 3, 2, 141, 2, 0.15);
  Graph q = testing::RandomQuery(g, 4, 142);
  GsiOptions opt = GsiOptOptions();
  opt.halo_budget_bytes = 4096;
  DeviceSet ds = MakeDevices(3, opt.device);
  Result<PartitionedGraph> pg =
      PartitionedGraph::Build(ds.ptrs, g, opt, HashVertexPartitioner());
  ASSERT_TRUE(pg.ok());

  std::atomic<bool> done{false};
  std::atomic<size_t> bad_snapshots{0};
  std::vector<std::thread> observers;
  for (int t = 0; t < 2; ++t) {
    observers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        for (PartitionId p = 0; p < pg->num_partitions(); ++p) {
          const HaloCache::Stats s = pg->halo_cache(p)->stats();
          if (s.resident_bytes > opt.halo_budget_bytes ||
              s.evictions > s.insertions ||
              s.entries > s.insertions) {
            bad_snapshots.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    Result<QueryResult> r = ExecuteQueryPartitioned(*pg, q);
    ASSERT_TRUE(r.ok());
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : observers) t.join();
  EXPECT_EQ(bad_snapshots.load(), 0u);
}

}  // namespace
}  // namespace gsi
