// FilterCache: the signature key must separate structurally different
// queries, the LRU must respect its byte budget, and a Materialize'd entry
// must reproduce the filter stage's candidate sets exactly.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gsi/matcher.h"
#include "service/filter_cache.h"
#include "test_util.h"

namespace gsi {
namespace {

std::shared_ptr<const FilterCache::Entry> EntryOfBytes(size_t bytes) {
  auto e = std::make_shared<FilterCache::Entry>();
  e->candidates.emplace_back(bytes / sizeof(VertexId));
  e->bytes = bytes;
  return e;
}

TEST(FilterCacheKey, IdenticalShapesShareAKey) {
  Graph data = testing::RandomGraph(200, 3, 4, 3, 17);
  Graph q1 = testing::RandomQuery(data, 5, 99);
  Graph q2 = testing::RandomQuery(data, 5, 99);  // same seed, same query
  EXPECT_EQ(FilterCache::KeyOf(q1), FilterCache::KeyOf(q2));

  Graph q3 = testing::RandomQuery(data, 5, 100);
  EXPECT_NE(FilterCache::KeyOf(q1), FilterCache::KeyOf(q3));
}

TEST(FilterCacheKey, LabelsAndEdgesChangeTheKey) {
  auto make = [](Label vlabel, Label elabel) {
    return Graph::Create(2, {0, vlabel}, {{0, 1, elabel}}).value();
  };
  EXPECT_EQ(FilterCache::KeyOf(make(1, 0)), FilterCache::KeyOf(make(1, 0)));
  EXPECT_NE(FilterCache::KeyOf(make(1, 0)), FilterCache::KeyOf(make(2, 0)));
  EXPECT_NE(FilterCache::KeyOf(make(1, 0)), FilterCache::KeyOf(make(1, 1)));
  // An extra vertex changes the key even with no extra edges in common.
  Graph bigger = Graph::Create(3, {0, 1, 0}, {{0, 1, 0}, {1, 2, 0}}).value();
  EXPECT_NE(FilterCache::KeyOf(make(1, 0)), FilterCache::KeyOf(bigger));
}

TEST(FilterCache, HitMissAndLruEviction) {
  FilterCache::Options opts;
  opts.max_bytes = 1000;
  FilterCache cache(opts);

  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", EntryOfBytes(400));
  cache.Insert("b", EntryOfBytes(400));
  EXPECT_NE(cache.Lookup("a"), nullptr);  // "a" is now most recently used

  // Inserting "c" busts the budget; "b" is the LRU victim.
  cache.Insert("c", EntryOfBytes(400));
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);

  FilterCache::Stats s = cache.stats();
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 800u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_NEAR(s.HitRate(), 3.0 / 5.0, 1e-12);
}

TEST(FilterCache, OversizedEntriesAreNeverAdmitted) {
  FilterCache::Options opts;
  opts.max_bytes = 100;
  FilterCache cache(opts);
  cache.Insert("huge", EntryOfBytes(400));
  EXPECT_EQ(cache.Lookup("huge"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(FilterCache, ClearDropsEverything) {
  FilterCache cache;
  cache.Insert("a", EntryOfBytes(64));
  cache.Clear();
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(FilterCache, MaterializeReproducesTheFilterStage) {
  Graph data = testing::RandomGraph(300, 3, 4, 3, 23);
  Graph query = testing::RandomQuery(data, 5, 7);
  GsiOptions options = GsiOptOptions();

  gpusim::Device build_dev(options.device);
  FilterContext context(build_dev, data, options.filter);

  gpusim::Device dev_a(options.device);
  QueryStats stats;
  Result<FilterResult> fresh = RunFilterStage(dev_a, context, query, stats);
  ASSERT_TRUE(fresh.ok());

  auto entry = FilterCache::MakeEntry(*fresh);
  EXPECT_GT(entry->bytes, 0u);
  EXPECT_EQ(entry->candidates.size(), query.num_vertices());
  EXPECT_EQ(entry->min_candidate_size, fresh->min_candidate_size);

  gpusim::Device dev_b(options.device);
  FilterResult warmed = FilterCache::Materialize(
      dev_b, *entry, data.num_vertices(), options.filter.build_bitmaps);
  ASSERT_EQ(warmed.candidates.size(), fresh->candidates.size());
  for (VertexId u = 0; u < query.num_vertices(); ++u) {
    const CandidateSet& a = fresh->candidates[u];
    const CandidateSet& b = warmed.candidates[u];
    ASSERT_EQ(a.size(), b.size()) << "vertex " << u;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.list()[i], b.list()[i]);
    }
    EXPECT_EQ(a.has_bitmap(), b.has_bitmap());
  }
  EXPECT_EQ(warmed.min_candidate_size, fresh->min_candidate_size);
  EXPECT_EQ(warmed.min_candidate_vertex, fresh->min_candidate_vertex);

  // The rematerialization must be cheaper than the signature scan it
  // replaces: it only touches the candidates, not all of |V(G)|.
  EXPECT_LT(dev_b.stats().simulated_cycles, dev_a.stats().simulated_cycles);
}

}  // namespace
}  // namespace gsi
