// Correctness of the GSI join engine in every configuration, validated
// against the brute-force oracle. This is the core property suite: all
// ablation knobs (storage structure, output scheme, set ops, write cache,
// load balance, duplicate removal) must not change results, only costs.

#include <gtest/gtest.h>

#include "baselines/oracle.h"
#include "graph/graph_builder.h"
#include "gsi/matcher.h"
#include "test_util.h"

namespace gsi {
namespace {

using ::gsi::testing::RandomGraph;
using ::gsi::testing::RandomQuery;

std::vector<std::vector<VertexId>> RunGsi(const Graph& data,
                                          const Graph& query,
                                          const GsiOptions& options) {
  GsiMatcher matcher(data, options);
  Result<QueryResult> r = matcher.Find(query);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r->AllMatchesSorted();
}

TEST(JoinBasic, TriangleInTriangle) {
  GraphBuilder b;
  VertexId v0 = b.AddVertex(0);
  VertexId v1 = b.AddVertex(1);
  VertexId v2 = b.AddVertex(2);
  b.AddEdge(v0, v1, 0);
  b.AddEdge(v1, v2, 0);
  b.AddEdge(v2, v0, 0);
  Graph g = std::move(b).Build().value();

  auto matches = RunGsi(g, g, DefaultGsiOptions());
  // The triangle with distinct vertex labels has exactly one automorphism.
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (std::vector<VertexId>{0, 1, 2}));
}

TEST(JoinBasic, PaperRunningExample) {
  // Figure 1: u0(A)-u1(B) via a, u0-u2(C) via b, u1-u3(C) via a, u2-u3? No:
  // edges are u0u1:a, u0u2:b, u1u3:a, u2u3:a per the matching table shape.
  GraphBuilder qb;
  VertexId u0 = qb.AddVertex(/*A=*/0);
  VertexId u1 = qb.AddVertex(/*B=*/1);
  VertexId u2 = qb.AddVertex(/*C=*/2);
  VertexId u3 = qb.AddVertex(/*C=*/2);
  qb.AddEdge(u0, u1, /*a=*/0);
  qb.AddEdge(u0, u2, /*b=*/1);
  qb.AddEdge(u1, u3, /*a=*/0);
  qb.AddEdge(u2, u3, /*a=*/0);
  Graph q = std::move(qb).Build().value();

  // Data graph in the spirit of Figure 1(b): v0(A) connected to B-vertices
  // v1..v100 via a; one C hub v201 via b; B vertices chain to C vertices
  // v101..v200 via a; v201 connects to v200 via a.
  GraphBuilder db;
  VertexId v0 = db.AddVertex(0);
  VertexId b_first = db.AddVertices(100, 1);   // v1..v100
  VertexId c_first = db.AddVertices(100, 2);   // v101..v200
  VertexId hub = db.AddVertex(2);              // v201
  for (int i = 0; i < 100; ++i) {
    db.AddEdge(v0, b_first + i, 0);                    // a
    db.AddEdge(b_first + i, c_first + i, 0);           // a
  }
  db.AddEdge(v0, hub, 1);                              // b
  db.AddEdge(hub, c_first + 99, 0);                    // v201 - v200 via a
  Graph g = std::move(db).Build().value();

  auto expected = EnumerateMatchesBruteForce(g, q);
  auto actual = RunGsi(g, q, DefaultGsiOptions());
  EXPECT_EQ(actual, expected);
  // Figure 1(c): exactly one match (u1->v100 chain through the hub).
  EXPECT_EQ(actual.size(), 1u);
}

struct JoinConfigCase {
  StorageKind storage;
  OutputScheme scheme;
  SetOpKind set_op;
  bool write_cache;
  bool load_balance;
  bool dup_removal;
};

std::string CaseName(const ::testing::TestParamInfo<JoinConfigCase>& info) {
  const JoinConfigCase& c = info.param;
  std::string s;
  switch (c.storage) {
    case StorageKind::kCsr: s += "Csr"; break;
    case StorageKind::kPcsr: s += "Pcsr"; break;
    case StorageKind::kBasicRep: s += "Br"; break;
    case StorageKind::kCompressedRep: s += "Cr"; break;
  }
  s += c.scheme == OutputScheme::kTwoStep ? "TwoStep" : "Prealloc";
  s += c.set_op == SetOpKind::kNaive ? "Naive" : "Warp";
  s += c.write_cache ? "Wc" : "NoWc";
  s += c.load_balance ? "Lb" : "NoLb";
  s += c.dup_removal ? "Dr" : "NoDr";
  return s;
}

class JoinConfigSweep : public ::testing::TestWithParam<JoinConfigCase> {};

TEST_P(JoinConfigSweep, MatchesOracleOnRandomGraphs) {
  const JoinConfigCase& c = GetParam();
  GsiOptions options;
  options.join.storage = c.storage;
  options.join.output_scheme = c.scheme;
  options.join.set_op = c.set_op;
  options.join.write_cache = c.write_cache;
  options.join.load_balance = c.load_balance;
  options.join.duplicate_removal = c.dup_removal;
  // Small thresholds so load balance actually kicks in on test graphs.
  options.join.w1 = 4096;
  options.join.w3 = 256;

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph data = RandomGraph(200, 3, 4, 3, seed);
    Graph query = RandomQuery(data, 4, seed * 7 + 1);
    auto expected = EnumerateMatchesBruteForce(data, query);
    auto actual = RunGsi(data, query, options);
    ASSERT_EQ(actual, expected)
        << "seed=" << seed << " matches=" << expected.size();
    ASSERT_GE(expected.size(), 1u);  // walk queries always match
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, JoinConfigSweep,
    ::testing::Values(
        // The paper's named configurations.
        JoinConfigCase{StorageKind::kCsr, OutputScheme::kTwoStep,
                       SetOpKind::kNaive, false, false, false},  // GSI-
        JoinConfigCase{StorageKind::kPcsr, OutputScheme::kTwoStep,
                       SetOpKind::kNaive, false, false, false},  // +DS
        JoinConfigCase{StorageKind::kPcsr, OutputScheme::kPreallocCombine,
                       SetOpKind::kNaive, false, false, false},  // +PC
        JoinConfigCase{StorageKind::kPcsr, OutputScheme::kPreallocCombine,
                       SetOpKind::kWarpFriendly, true, false, false},  // +SO
        JoinConfigCase{StorageKind::kPcsr, OutputScheme::kPreallocCombine,
                       SetOpKind::kWarpFriendly, true, true, false},  // +LB
        JoinConfigCase{StorageKind::kPcsr, OutputScheme::kPreallocCombine,
                       SetOpKind::kWarpFriendly, true, true, true},  // opt
        // Cross products that must also hold.
        JoinConfigCase{StorageKind::kBasicRep,
                       OutputScheme::kPreallocCombine,
                       SetOpKind::kWarpFriendly, true, false, false},
        JoinConfigCase{StorageKind::kCompressedRep,
                       OutputScheme::kPreallocCombine,
                       SetOpKind::kWarpFriendly, true, false, false},
        JoinConfigCase{StorageKind::kPcsr, OutputScheme::kPreallocCombine,
                       SetOpKind::kWarpFriendly, false, false, false},
        JoinConfigCase{StorageKind::kCsr, OutputScheme::kPreallocCombine,
                       SetOpKind::kWarpFriendly, true, false, false},
        JoinConfigCase{StorageKind::kPcsr, OutputScheme::kTwoStep,
                       SetOpKind::kWarpFriendly, true, false, false},
        JoinConfigCase{StorageKind::kPcsr, OutputScheme::kPreallocCombine,
                       SetOpKind::kNaive, false, true, true}),
    CaseName);

// Load balance with aggressive thresholds: chunking must not change
// results even when every row is split.
TEST(JoinLoadBalance, AggressiveChunkingMatchesOracle) {
  GsiOptions options;
  options.join.load_balance = true;
  options.join.w1 = 2048;
  options.join.w3 = 32;
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    Graph data = RandomGraph(300, 4, 3, 2, seed);
    Graph query = RandomQuery(data, 4, seed);
    auto expected = EnumerateMatchesBruteForce(data, query);
    auto actual = RunGsi(data, query, options);
    ASSERT_EQ(actual, expected) << "seed=" << seed;
  }
}

TEST(JoinLimits, RowCapReturnsResourceExhausted) {
  // A dense same-label graph explodes the intermediate table.
  Graph data = RandomGraph(64, 8, 1, 1, 99);
  Graph query = RandomQuery(data, 5, 3);
  GsiOptions options;
  options.join.max_rows = 16;
  GsiMatcher matcher(data, options);
  Result<QueryResult> r = matcher.Find(query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(JoinEdgeCases, DisconnectedQueryRejected) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddEdge(0, 1, 0);
  b.AddEdge(2, 3, 0);
  Graph q = std::move(b).Build().value();
  Graph data = RandomGraph(100, 3, 2, 2, 5);
  GsiMatcher matcher(data);
  Result<QueryResult> r = matcher.Find(q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(JoinEdgeCases, NoMatchesWhenLabelAbsent) {
  Graph data = RandomGraph(100, 3, 2, 2, 6);
  GraphBuilder b;
  b.AddVertex(7);  // label 7 never appears in data (labels are 0..1)
  b.AddVertex(0);
  b.AddEdge(0, 1, 0);
  Graph q = std::move(b).Build().value();
  GsiMatcher matcher(data);
  Result<QueryResult> r = matcher.Find(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_matches(), 0u);
}

TEST(JoinEdgeCases, SingleVertexQueryReturnsCandidates) {
  Graph data = RandomGraph(50, 2, 2, 2, 8);
  GraphBuilder b;
  b.AddVertex(data.vertex_label(0));
  Graph q = std::move(b).Build().value();
  GsiMatcher matcher(data);
  Result<QueryResult> r = matcher.Find(q);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->num_matches(), 1u);
  size_t expected = data.VertexLabelFrequency(data.vertex_label(0));
  // Signature filter may prune isolated vertices only by label: the count
  // equals the label frequency.
  EXPECT_EQ(r->num_matches(), expected);
}

// Injectivity: no result row may bind two query vertices to one data
// vertex, and every result must be edge-consistent.
TEST(JoinProperties, ResultsAreValidEmbeddings) {
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    Graph data = RandomGraph(250, 3, 3, 3, seed);
    Graph query = RandomQuery(data, 5, seed);
    GsiMatcher matcher(data, GsiOptOptions());
    Result<QueryResult> r = matcher.Find(query);
    ASSERT_TRUE(r.ok());
    for (size_t i = 0; i < r->num_matches(); ++i) {
      std::vector<VertexId> m = r->MatchInQueryOrder(i);
      // Injective.
      std::vector<VertexId> sorted = m;
      std::sort(sorted.begin(), sorted.end());
      ASSERT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end());
      // Label- and edge-preserving.
      for (VertexId u = 0; u < query.num_vertices(); ++u) {
        ASSERT_EQ(data.vertex_label(m[u]), query.vertex_label(u));
        for (const Neighbor& n : query.neighbors(u)) {
          ASSERT_TRUE(data.HasEdge(m[u], m[n.v], n.elabel));
        }
      }
    }
  }
}

// Bigger query sizes across optimization combos.
class JoinQuerySize : public ::testing::TestWithParam<size_t> {};

TEST_P(JoinQuerySize, MatchesOracle) {
  size_t nq = GetParam();
  Graph data = RandomGraph(300, 3, 5, 4, 31);
  Graph query = RandomQuery(data, nq, 31 + nq);
  auto expected = EnumerateMatchesBruteForce(data, query);
  auto base = RunGsi(data, query, DefaultGsiOptions());
  auto opt = RunGsi(data, query, GsiOptOptions());
  auto minus = RunGsi(data, query, GsiMinusOptions());
  EXPECT_EQ(base, expected);
  EXPECT_EQ(opt, expected);
  EXPECT_EQ(minus, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JoinQuerySize,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

}  // namespace
}  // namespace gsi
