#!/usr/bin/env python3
"""Schema validation for the Chrome trace JSON the trace_query example emits.

Runs the example binary (argv[1]), loads the trace file it writes, and
checks both the trace_event schema (every complete event carries
name/ph/ts/dur/pid/tid with sane types) and the span coverage the
observability contract promises (docs/OBSERVABILITY.md): queue wait,
query root, filter, join steps, and per-device replica lanes — the
example drives the K=4/R=2 replicated service path, so all of them must
appear.
"""

import json
import os
import subprocess
import sys
import tempfile

REQUIRED_SPANS = {
    "queue_wait",     # service admission -> worker pickup
    "query",          # per-query root
    "filter",         # candidate filtering phase
    "join_step",      # one per join-plan step
    "lane",           # one per replica lane on the replicated path
    "candidate_gather",
    "result_merge",
}


def fail(msg):
    print("FAIL: %s" % msg)
    sys.exit(1)


def validate_event(i, ev):
    for key in ("name", "ph", "ts", "dur", "pid", "tid"):
        if key not in ev:
            fail("event %d missing %r: %r" % (i, key, ev))
    if not isinstance(ev["name"], str) or not ev["name"]:
        fail("event %d has a non-string name: %r" % (i, ev))
    if ev["ph"] != "X":
        fail("event %d is not a complete event (ph=%r)" % (i, ev["ph"]))
    for key in ("ts", "dur"):
        if not isinstance(ev[key], (int, float)) or ev[key] < 0:
            fail("event %d has bad %s: %r" % (i, key, ev[key]))
    if "args" in ev and not isinstance(ev["args"], dict):
        fail("event %d has non-object args: %r" % (i, ev["args"]))


def main():
    if len(sys.argv) != 2:
        print("usage: trace_example_test.py <trace_query-binary>")
        return 2
    binary = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace_query.json")
        proc = subprocess.run([binary, trace_path], stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=600)
        sys.stdout.buffer.write(proc.stdout)
        if proc.returncode != 0:
            fail("example exited with %d" % proc.returncode)
        with open(trace_path) as f:
            doc = json.load(f)

    if set(doc) - {"traceEvents", "displayTimeUnit"}:
        fail("unexpected top-level keys: %s" % sorted(doc))
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail("event %d is not an object: %r" % (i, ev))
        # Metadata events (thread naming) only need name/ph/pid/tid.
        if ev.get("ph") == "M":
            continue
        validate_event(i, ev)
        spans.append(ev)

    names = {ev["name"] for ev in spans}
    missing = REQUIRED_SPANS - names
    if missing:
        fail("required spans absent: %s (trace has %s)"
             % (sorted(missing), sorted(names)))

    # Replica lanes land on distinct device tracks (tid = device + 1).
    lane_tids = {ev["tid"] for ev in spans if ev["name"] == "lane"}
    if len(lane_tids) < 2:
        fail("expected lanes on >= 2 device tracks, got tids %s" % lane_tids)

    # Parents nest: every join_step must sit inside some enclosing span's
    # [ts, ts+dur] window on the same track. EPS absorbs float parsing of
    # the ns-exact decimal timestamps (one ns is 0.001 us).
    EPS = 0.002
    for ev in spans:
        if ev["name"] != "join_step":
            continue
        enclosing = [
            other for other in spans
            if other is not ev and other["tid"] == ev["tid"]
            and other["ts"] <= ev["ts"] + EPS
            and ev["ts"] + ev["dur"] <= other["ts"] + other["dur"] + EPS
        ]
        if not enclosing:
            fail("join_step at ts=%s tid=%s has no enclosing span"
                 % (ev["ts"], ev["tid"]))

    print("OK: %d events, %d spans, %d distinct names, lanes on tids %s"
          % (len(events), len(spans), len(names), sorted(lane_tids)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
