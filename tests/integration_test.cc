// End-to-end agreement of every engine on the named benchmark datasets
// (small scale), plus cross-engine cost sanity (the paper's headline
// relationships must hold even at test scale).

#include <gtest/gtest.h>

#include "baselines/cpu_matcher.h"
#include "baselines/edge_candidates.h"
#include "baselines/oracle.h"
#include "graph/datasets.h"
#include "graph/query_generator.h"
#include "gsi/matcher.h"
#include "test_util.h"

namespace gsi {
namespace {

TEST(Integration, AllEnginesAgreeOnDatasets) {
  for (const char* name : {"enron", "gowalla", "watdiv"}) {
    Result<Dataset> d = MakeDataset(name, /*scale=*/0.01);
    ASSERT_TRUE(d.ok());
    const Graph& g = d->graph;
    QueryGenConfig qc;
    qc.num_vertices = 5;
    std::vector<Graph> queries = GenerateQuerySet(g, qc, 3, 77);
    ASSERT_FALSE(queries.empty());

    GsiMatcher gsi(g, DefaultGsiOptions());
    GsiMatcher gsi_opt(g, GsiOptOptions());
    GsiMatcher gsi_minus(g, GsiMinusOptions());
    EdgeJoinMatcher gpsm = MakeGpsmMatcher(g);
    EdgeJoinMatcher gsm = MakeGunrockSmMatcher(g);

    for (const Graph& q : queries) {
      auto expected = EnumerateMatchesBruteForce(g, q);
      auto a = gsi.Find(q);
      auto b = gsi_opt.Find(q);
      auto c = gsi_minus.Find(q);
      auto e = gpsm.Find(q);
      auto f = gsm.Find(q);
      ASSERT_TRUE(a.ok() && b.ok() && c.ok() && e.ok() && f.ok());
      EXPECT_EQ(a->AllMatchesSorted(), expected) << name;
      EXPECT_EQ(b->AllMatchesSorted(), expected) << name;
      EXPECT_EQ(c->AllMatchesSorted(), expected) << name;
      EXPECT_EQ(e->AllMatchesSorted(), expected) << name;
      EXPECT_EQ(f->AllMatchesSorted(), expected) << name;
      CpuMatcherOptions copts;
      copts.collect_matches = true;
      EXPECT_EQ(Vf2Match(g, q, copts).SortedMatches(), expected) << name;
    }
  }
}

TEST(Integration, PreallocDoesLessJoinWorkThanTwoStep) {
  // Table VI "+PC": Prealloc-Combine must cut join-phase GLD versus the
  // two-step scheme under otherwise identical configuration.
  Graph g = MakeDataset("gowalla", 0.02)->graph;
  QueryGenConfig qc;
  qc.num_vertices = 6;
  std::vector<Graph> queries = GenerateQuerySet(g, qc, 3, 99);
  ASSERT_FALSE(queries.empty());

  GsiOptions two_step;
  two_step.join.output_scheme = OutputScheme::kTwoStep;
  GsiOptions prealloc;
  prealloc.join.output_scheme = OutputScheme::kPreallocCombine;

  uint64_t gld_two = 0;
  uint64_t gld_pre = 0;
  GsiMatcher m_two(g, two_step);
  GsiMatcher m_pre(g, prealloc);
  for (const Graph& q : queries) {
    auto a = m_two.Find(q);
    auto b = m_pre.Find(q);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->num_matches(), b->num_matches());
    gld_two += a->stats.join.gld;
    gld_pre += b->stats.join.gld;
  }
  EXPECT_LT(gld_pre, gld_two);
}

TEST(Integration, PcsrBeatsCsrOnJoinLoads) {
  // Table VI "+DS": PCSR cuts GLD versus CSR on multi-label graphs.
  Graph g = MakeDataset("enron", 0.02)->graph;
  QueryGenConfig qc;
  qc.num_vertices = 5;
  std::vector<Graph> queries = GenerateQuerySet(g, qc, 3, 123);
  GsiOptions csr;
  csr.join.storage = StorageKind::kCsr;
  GsiOptions pcsr;
  pcsr.join.storage = StorageKind::kPcsr;
  uint64_t gld_csr = 0;
  uint64_t gld_pcsr = 0;
  GsiMatcher m_csr(g, csr);
  GsiMatcher m_pcsr(g, pcsr);
  for (const Graph& q : queries) {
    auto a = m_csr.Find(q);
    auto b = m_pcsr.Find(q);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->num_matches(), b->num_matches());
    gld_csr += a->stats.join.gld;
    gld_pcsr += b->stats.join.gld;
  }
  EXPECT_LT(gld_pcsr, gld_csr);
}

TEST(Integration, WriteCacheCutsStores) {
  // Table VII: the write cache reduces GST.
  Graph g = MakeDataset("enron", 0.02)->graph;
  QueryGenConfig qc;
  qc.num_vertices = 5;
  std::vector<Graph> queries = GenerateQuerySet(g, qc, 3, 321);
  GsiOptions with;
  with.join.write_cache = true;
  GsiOptions without;
  without.join.write_cache = false;
  uint64_t gst_with = 0;
  uint64_t gst_without = 0;
  GsiMatcher m_with(g, with);
  GsiMatcher m_without(g, without);
  for (const Graph& q : queries) {
    auto a = m_with.Find(q);
    auto b = m_without.Find(q);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->num_matches(), b->num_matches());
    gst_with += a->stats.join.gst;
    gst_without += b->stats.join.gst;
  }
  EXPECT_LE(gst_with, gst_without);
}

TEST(Integration, StatsArePopulated) {
  Graph g = MakeDataset("watdiv", 0.01)->graph;
  Graph q = ::gsi::testing::RandomQuery(g, 4, 5);
  GsiMatcher m(g);
  auto r = m.Find(q);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.filter.gld, 0u);
  EXPECT_GT(r->stats.total_ms, 0.0);
  EXPECT_GE(r->stats.wall_ms, 0.0);
  EXPECT_EQ(r->stats.num_matches, r->num_matches());
  EXPECT_GT(r->stats.min_candidate_size, 0u);
}

}  // namespace
}  // namespace gsi
