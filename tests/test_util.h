#ifndef GSI_TESTS_TEST_UTIL_H_
#define GSI_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/labeler.h"
#include "graph/query_generator.h"
#include "util/check.h"
#include "util/rng.h"

namespace gsi::testing {

/// Random labeled scale-free graph for property tests.
inline Graph RandomGraph(size_t n, size_t edges_per_vertex,
                         size_t num_vlabels, size_t num_elabels,
                         uint64_t seed) {
  Rng rng(seed);
  std::vector<RawEdge> edges = GenerateScaleFree(n, edges_per_vertex, rng);
  LabelConfig lc;
  lc.num_vertex_labels = num_vlabels;
  lc.num_edge_labels = num_elabels;
  lc.seed = seed + 1;
  Result<Graph> g = AssignLabels(n, edges, lc);
  GSI_CHECK(g.ok());
  return std::move(g.value());
}

/// Random labeled power-law graph with planted super-hubs: `num_hubs`
/// vertices each adjacent to a `hub_fraction` share of the graph. Hubs are
/// what make remote-probe caching matter — every partition's join walks the
/// same few high-degree rows over and over — so halo-cache property tests
/// sweep this shape alongside the plain scale-free one. Deterministic in
/// (n, edges_per_vertex, labels, seed, num_hubs, hub_fraction).
inline Graph RandomHubGraph(size_t n, size_t edges_per_vertex,
                            size_t num_vlabels, size_t num_elabels,
                            uint64_t seed, size_t num_hubs,
                            double hub_fraction) {
  Rng rng(seed);
  std::vector<RawEdge> edges =
      GenerateScaleFree(n, edges_per_vertex, rng, num_hubs, hub_fraction);
  LabelConfig lc;
  lc.num_vertex_labels = num_vlabels;
  lc.num_edge_labels = num_elabels;
  lc.seed = seed + 1;
  Result<Graph> g = AssignLabels(n, edges, lc);
  GSI_CHECK(g.ok());
  return std::move(g.value());
}

/// Random connected query extracted from `data` (guaranteed >= 1 match).
inline Graph RandomQuery(const Graph& data, size_t num_vertices,
                         uint64_t seed) {
  QueryGenConfig qc;
  qc.num_vertices = num_vertices;
  std::vector<Graph> qs = GenerateQuerySet(data, qc, 1, seed);
  GSI_CHECK(!qs.empty());
  return std::move(qs[0]);
}

/// Seeded query workload over `data`: `count` connected queries of
/// `num_vertices` vertices each (every one has >= 1 match by construction).
inline std::vector<Graph> RandomQuerySet(const Graph& data,
                                         size_t num_vertices, size_t count,
                                         uint64_t seed) {
  QueryGenConfig qc;
  qc.num_vertices = num_vertices;
  std::vector<Graph> qs = GenerateQuerySet(data, qc, count, seed);
  GSI_CHECK(!qs.empty());
  return qs;
}

}  // namespace gsi::testing

#endif  // GSI_TESTS_TEST_UTIL_H_
