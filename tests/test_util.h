#ifndef GSI_TESTS_TEST_UTIL_H_
#define GSI_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/labeler.h"
#include "graph/query_generator.h"
#include "util/check.h"
#include "util/rng.h"

namespace gsi::testing {

/// Random labeled scale-free graph for property tests.
inline Graph RandomGraph(size_t n, size_t edges_per_vertex,
                         size_t num_vlabels, size_t num_elabels,
                         uint64_t seed) {
  Rng rng(seed);
  std::vector<RawEdge> edges = GenerateScaleFree(n, edges_per_vertex, rng);
  LabelConfig lc;
  lc.num_vertex_labels = num_vlabels;
  lc.num_edge_labels = num_elabels;
  lc.seed = seed + 1;
  Result<Graph> g = AssignLabels(n, edges, lc);
  GSI_CHECK(g.ok());
  return std::move(g.value());
}

/// Random connected query extracted from `data` (guaranteed >= 1 match).
inline Graph RandomQuery(const Graph& data, size_t num_vertices,
                         uint64_t seed) {
  QueryGenConfig qc;
  qc.num_vertices = num_vertices;
  std::vector<Graph> qs = GenerateQuerySet(data, qc, 1, seed);
  GSI_CHECK(!qs.empty());
  return std::move(qs[0]);
}

}  // namespace gsi::testing

#endif  // GSI_TESTS_TEST_UTIL_H_
