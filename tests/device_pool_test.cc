// DevicePool: RAII leasing over a fixed device set. The core property is
// exclusivity — a device is never held by two leases at once, even under
// heavy cross-thread contention.

#include <gtest/gtest.h>

#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "service/device_pool.h"
#include "util/thread_pool.h"

namespace gsi {
namespace {

TEST(DevicePool, SizeAndIdle) {
  DevicePool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.idle(), 3u);
  {
    DevicePool::Lease a = pool.Acquire();
    EXPECT_TRUE(a.valid());
    EXPECT_NE(a.get(), nullptr);
    EXPECT_EQ(pool.idle(), 2u);
  }
  EXPECT_EQ(pool.idle(), 3u);  // RAII returned it
}

TEST(DevicePool, AtLeastOneDevice) {
  DevicePool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(DevicePool, TryAcquireFailsWhenExhausted) {
  DevicePool pool(2);
  std::optional<DevicePool::Lease> a = pool.TryAcquire();
  std::optional<DevicePool::Lease> b = pool.TryAcquire();
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->get(), b->get());
  EXPECT_FALSE(pool.TryAcquire().has_value());
  EXPECT_EQ(pool.stats().try_failed, 1u);
  a->Release();
  EXPECT_TRUE(pool.TryAcquire().has_value());
}

TEST(DevicePool, ExplicitReleaseIsIdempotent) {
  DevicePool pool(1);
  DevicePool::Lease a = pool.Acquire();
  a.Release();
  a.Release();  // no-op
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(DevicePool, LeaseMoveTransfersOwnership) {
  DevicePool pool(1);
  DevicePool::Lease a = pool.Acquire();
  gpusim::Device* dev = a.get();
  DevicePool::Lease b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserted empty
  EXPECT_EQ(b.get(), dev);
  EXPECT_EQ(pool.idle(), 0u);
  b.Release();
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(DevicePool, AcquireUpToTakesOnlyIdleDevices) {
  DevicePool pool(4);
  DevicePool::Lease held = pool.Acquire();
  std::vector<DevicePool::Lease> batch = pool.AcquireUpTo(8);
  EXPECT_EQ(batch.size(), 3u);  // 1 blocking + 2 extras; never waits
  std::set<gpusim::Device*> distinct;
  distinct.insert(held.get());
  for (DevicePool::Lease& l : batch) distinct.insert(l.get());
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(DevicePool, StatsTrackUsage) {
  DevicePool pool(2);
  {
    DevicePool::Lease a = pool.Acquire();
    DevicePool::Lease b = pool.Acquire();
    DevicePool::Stats s = pool.stats();
    EXPECT_EQ(s.acquired, 2u);
    EXPECT_EQ(s.in_use, 2u);
    EXPECT_EQ(s.peak_in_use, 2u);
  }
  DevicePool::Stats s = pool.stats();
  EXPECT_EQ(s.in_use, 0u);
  EXPECT_EQ(s.peak_in_use, 2u);
}

TEST(DevicePool, ContentionNeverDoubleLeases) {
  constexpr size_t kDevices = 3;
  constexpr size_t kThreads = 8;
  constexpr size_t kItersPerThread = 200;
  DevicePool pool(kDevices);

  std::mutex mu;
  std::set<gpusim::Device*> held;  // devices currently leased somewhere
  size_t max_held = 0;
  bool double_lease = false;

  {
    ThreadPool workers(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      workers.Submit([&, t] {
        for (size_t i = 0; i < kItersPerThread; ++i) {
          // Alternate single leases and fan-out batches.
          std::vector<DevicePool::Lease> leases =
              (t + i) % 2 == 0 ? pool.AcquireUpTo(2)
                               : [&] {
                                   std::vector<DevicePool::Lease> one;
                                   one.push_back(pool.Acquire());
                                   return one;
                                 }();
          {
            std::lock_guard<std::mutex> lock(mu);
            for (DevicePool::Lease& l : leases) {
              if (!held.insert(l.get()).second) double_lease = true;
            }
            max_held = std::max(max_held, held.size());
          }
          std::this_thread::yield();
          {
            std::lock_guard<std::mutex> lock(mu);
            for (DevicePool::Lease& l : leases) held.erase(l.get());
          }
          // leases release on scope exit, after being marked free above —
          // the pool may hand them out again only once Release runs, so
          // the tracking set never sees a stale holder.
        }
      });
    }
    workers.Wait();
  }

  EXPECT_FALSE(double_lease);
  EXPECT_LE(max_held, kDevices);
  EXPECT_EQ(pool.idle(), kDevices);
  DevicePool::Stats s = pool.stats();
  EXPECT_EQ(s.in_use, 0u);
  EXPECT_GE(s.acquired, kThreads * kItersPerThread);
  EXPECT_LE(s.peak_in_use, kDevices);
}

}  // namespace
}  // namespace gsi
