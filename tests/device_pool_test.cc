// DevicePool: RAII leasing over a fixed device set. The core property is
// exclusivity — a device is never held by two leases at once, even under
// heavy cross-thread contention.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "service/device_pool.h"
#include "util/thread_pool.h"

namespace gsi {
namespace {

TEST(DevicePool, SizeAndIdle) {
  DevicePool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.idle(), 3u);
  {
    DevicePool::Lease a = pool.Acquire().value();
    EXPECT_TRUE(a.valid());
    EXPECT_NE(a.get(), nullptr);
    EXPECT_EQ(pool.idle(), 2u);
  }
  EXPECT_EQ(pool.idle(), 3u);  // RAII returned it
}

TEST(DevicePool, AtLeastOneDevice) {
  DevicePool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(DevicePool, TryAcquireFailsWhenExhausted) {
  DevicePool pool(2);
  std::optional<DevicePool::Lease> a = pool.TryAcquire();
  std::optional<DevicePool::Lease> b = pool.TryAcquire();
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->get(), b->get());
  EXPECT_FALSE(pool.TryAcquire().has_value());
  EXPECT_EQ(pool.stats().try_failed, 1u);
  a->Release();
  EXPECT_TRUE(pool.TryAcquire().has_value());
}

TEST(DevicePool, ExplicitReleaseIsIdempotent) {
  DevicePool pool(1);
  DevicePool::Lease a = pool.Acquire().value();
  a.Release();
  a.Release();  // no-op
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(DevicePool, LeaseMoveTransfersOwnership) {
  DevicePool pool(1);
  DevicePool::Lease a = pool.Acquire().value();
  gpusim::Device* dev = a.get();
  DevicePool::Lease b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserted empty
  EXPECT_EQ(b.get(), dev);
  EXPECT_EQ(pool.idle(), 0u);
  b.Release();
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(DevicePool, AcquireUpToTakesOnlyIdleDevices) {
  DevicePool pool(4);
  DevicePool::Lease held = pool.Acquire().value();
  std::vector<DevicePool::Lease> batch = pool.AcquireUpTo(8).value();
  EXPECT_EQ(batch.size(), 3u);  // 1 blocking + 2 extras; never waits
  std::set<gpusim::Device*> distinct;
  distinct.insert(held.get());
  for (DevicePool::Lease& l : batch) distinct.insert(l.get());
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(DevicePool, StatsTrackUsage) {
  DevicePool pool(2);
  {
    DevicePool::Lease a = pool.Acquire().value();
    DevicePool::Lease b = pool.Acquire().value();
    DevicePool::Stats s = pool.stats();
    EXPECT_EQ(s.acquired, 2u);
    EXPECT_EQ(s.in_use, 2u);
    EXPECT_EQ(s.peak_in_use, 2u);
  }
  DevicePool::Stats s = pool.stats();
  EXPECT_EQ(s.in_use, 0u);
  EXPECT_EQ(s.peak_in_use, 2u);
}

TEST(DevicePool, ContentionNeverDoubleLeases) {
  constexpr size_t kDevices = 3;
  constexpr size_t kThreads = 8;
  constexpr size_t kItersPerThread = 200;
  DevicePool pool(kDevices);

  std::mutex mu;
  std::set<gpusim::Device*> held;  // devices currently leased somewhere
  size_t max_held = 0;
  bool double_lease = false;

  {
    ThreadPool workers(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      workers.Submit([&, t] {
        for (size_t i = 0; i < kItersPerThread; ++i) {
          // Alternate single leases and fan-out batches.
          std::vector<DevicePool::Lease> leases =
              (t + i) % 2 == 0 ? pool.AcquireUpTo(2).value()
                               : [&] {
                                   std::vector<DevicePool::Lease> one;
                                   one.push_back(pool.Acquire().value());
                                   return one;
                                 }();
          {
            std::lock_guard<std::mutex> lock(mu);
            for (DevicePool::Lease& l : leases) {
              if (!held.insert(l.get()).second) double_lease = true;
            }
            max_held = std::max(max_held, held.size());
          }
          std::this_thread::yield();
          {
            std::lock_guard<std::mutex> lock(mu);
            for (DevicePool::Lease& l : leases) held.erase(l.get());
          }
          // leases release on scope exit, after being marked free above —
          // the pool may hand them out again only once Release runs, so
          // the tracking set never sees a stale holder.
        }
      });
    }
    workers.Wait();
  }

  EXPECT_FALSE(double_lease);
  EXPECT_LE(max_held, kDevices);
  EXPECT_EQ(pool.idle(), kDevices);
  DevicePool::Stats s = pool.stats();
  EXPECT_EQ(s.in_use, 0u);
  EXPECT_GE(s.acquired, kThreads * kItersPerThread);
  EXPECT_LE(s.peak_in_use, kDevices);
}

TEST(DevicePool, AcquireAllReturnsEveryDeviceInIndexOrder) {
  DevicePool pool(4);
  std::vector<DevicePool::Lease> leases = pool.AcquireAll().value();
  ASSERT_EQ(leases.size(), 4u);
  EXPECT_EQ(pool.idle(), 0u);
  std::vector<gpusim::Device*> first;
  for (DevicePool::Lease& l : leases) first.push_back(l.get());
  for (size_t i = 0; i < first.size(); ++i) {
    for (size_t j = i + 1; j < first.size(); ++j) {
      EXPECT_NE(first[i], first[j]);
    }
  }
  leases.clear();  // release all
  // Index order is stable: lease p is the pool's p-th device on every full
  // acquisition — the contract the partitioned data graph relies on
  // (partition p lives on device p).
  std::vector<DevicePool::Lease> again = pool.AcquireAll().value();
  ASSERT_EQ(again.size(), 4u);
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].get(), first[i]);
  }
}

TEST(DevicePool, AcquireAllWaitsForOutstandingLeases) {
  DevicePool pool(3);
  std::optional<DevicePool::Lease> held = pool.TryAcquire();
  ASSERT_TRUE(held.has_value());

  std::atomic<bool> acquired_all{false};
  std::thread waiter([&] {
    std::vector<DevicePool::Lease> all = pool.AcquireAll().value();
    EXPECT_EQ(all.size(), 3u);
    acquired_all = true;
  });
  // The waiter cannot finish while one device is leased out.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired_all.load());
  held.reset();  // release; AcquireAll can now complete
  waiter.join();
  EXPECT_TRUE(acquired_all.load());
  EXPECT_EQ(pool.idle(), 3u);
}

/// Staggered replica groups over 4 devices, R=2 (what the replicated
/// placement hands the pool): group p lists devices {p, (p+2) % 4}.
std::vector<std::vector<size_t>> StaggeredGroups() {
  return {{0, 2}, {1, 3}, {2, 0}, {3, 1}};
}

TEST(DevicePool, OneOfEachLeasesOneDevicePerGroupPacked) {
  DevicePool pool(4);
  std::vector<std::vector<size_t>> groups = StaggeredGroups();
  DevicePool::GroupLeases gl = pool.AcquireOneOfEach(groups).value();
  ASSERT_EQ(gl.device_of_group.size(), 4u);
  // Every group got a device that actually belongs to it...
  for (size_t g = 0; g < groups.size(); ++g) {
    EXPECT_TRUE(std::find(groups[g].begin(), groups[g].end(),
                          gl.device_of_group[g]) != groups[g].end());
    EXPECT_EQ(gl.leases[gl.lease_of_group[g]].get(), gl.device(g));
  }
  // ...and the picks packed onto the fewest devices (2 cover all 4
  // groups), leaving the other lane idle for a concurrent caller.
  EXPECT_EQ(gl.leases.size(), 2u);
  EXPECT_EQ(pool.idle(), 2u);
  DevicePool::Stats s = pool.stats();
  EXPECT_EQ(s.group_acquires, 1u);
  EXPECT_EQ(s.group_blocked, 0u);
  uint64_t total_picks = 0;
  for (uint64_t p : s.replica_picks) total_picks += p;
  EXPECT_EQ(total_picks, 4u);  // one pick per group
}

TEST(DevicePool, ConcurrentOneOfEachCallsGetDisjointLanes) {
  DevicePool pool(4);
  std::vector<std::vector<size_t>> groups = StaggeredGroups();
  DevicePool::GroupLeases a = pool.AcquireOneOfEach(groups).value();
  DevicePool::GroupLeases b = pool.AcquireOneOfEach(groups).value();
  std::set<gpusim::Device*> distinct;
  for (DevicePool::Lease& l : a.leases) distinct.insert(l.get());
  for (DevicePool::Lease& l : b.leases) distinct.insert(l.get());
  EXPECT_EQ(distinct.size(), a.leases.size() + b.leases.size())
      << "two lanes must never share a device";
  EXPECT_EQ(pool.idle(), 0u);

  // A third caller blocks until a lane frees, then completes.
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    DevicePool::GroupLeases c = pool.AcquireOneOfEach(groups).value();
    EXPECT_EQ(c.device_of_group.size(), 4u);
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  a.leases.clear();  // release lane A; notify_all wakes the group waiter
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(pool.stats().group_blocked, 1u);
}

TEST(DevicePool, OneOfEachPrefersLeastPickedReplica) {
  DevicePool pool(2);
  std::vector<std::vector<size_t>> one_group = {{0, 1}};
  // Repeated acquire/release alternates devices: historical pick counts
  // balance the replicas instead of hammering device 0.
  std::vector<size_t> picked;
  for (int i = 0; i < 4; ++i) {
    DevicePool::GroupLeases gl = pool.AcquireOneOfEach(one_group).value();
    picked.push_back(gl.device_of_group[0]);
  }
  EXPECT_EQ(picked, (std::vector<size_t>{0, 1, 0, 1}));
  DevicePool::Stats s = pool.stats();
  ASSERT_EQ(s.replica_picks.size(), 2u);
  EXPECT_EQ(s.replica_picks[0], 2u);
  EXPECT_EQ(s.replica_picks[1], 2u);
  EXPECT_DOUBLE_EQ(s.replica_pick_skew(), 1.0);
}

TEST(DevicePool, OneOfEachNeverDeadlocksAgainstAcquireAllAndAcquire) {
  // The three lease shapes hammer one pool concurrently: AcquireAll holds
  // partial prefixes while waiting, OneOfEach waits holding nothing, and
  // plain Acquire churns single devices. Nothing here can cycle (see the
  // header's deadlock argument); the test asserts everyone finishes and
  // exclusivity never breaks.
  constexpr size_t kDevices = 4;
  constexpr int kIters = 60;
  DevicePool pool(kDevices);
  std::vector<std::vector<size_t>> groups = StaggeredGroups();

  std::mutex mu;
  std::set<gpusim::Device*> held;
  bool double_lease = false;
  auto track = [&](std::vector<DevicePool::Lease>& leases) {
    {
      std::lock_guard<std::mutex> lock(mu);
      for (DevicePool::Lease& l : leases) {
        if (!held.insert(l.get()).second) double_lease = true;
      }
    }
    std::this_thread::yield();
    {
      std::lock_guard<std::mutex> lock(mu);
      for (DevicePool::Lease& l : leases) held.erase(l.get());
    }
  };

  std::atomic<int> completed{0};
  {
    ThreadPool workers(6);
    for (int t = 0; t < 2; ++t) {
      workers.Submit([&] {
        for (int i = 0; i < kIters; ++i) {
          std::vector<DevicePool::Lease> all = pool.AcquireAll().value();
          track(all);
          ++completed;
        }
      });
      workers.Submit([&] {
        for (int i = 0; i < kIters; ++i) {
          DevicePool::GroupLeases gl = pool.AcquireOneOfEach(groups).value();
          track(gl.leases);
          ++completed;
        }
      });
      workers.Submit([&] {
        for (int i = 0; i < kIters; ++i) {
          std::vector<DevicePool::Lease> one;
          one.push_back(pool.Acquire().value());
          track(one);
          ++completed;
        }
      });
    }
    workers.Wait();
  }
  EXPECT_FALSE(double_lease);
  EXPECT_EQ(completed.load(), 6 * kIters);
  EXPECT_EQ(pool.idle(), kDevices);
  EXPECT_EQ(pool.stats().in_use, 0u);
}

// Lock contract: the read-only observers (size / idle / stats) take mu_
// but never wait on a condition — they must return promptly even when
// every device is leased out and blocked acquirers are parked on the
// CondVar. A regression that makes an observer wait for idle devices
// turns every stats scrape into a hang under load.
TEST(DevicePool, ObserversNeverBlockWhileAllDevicesAreLeased) {
  DevicePool pool(3);
  std::vector<DevicePool::Lease> all = pool.AcquireAll().value();
  ASSERT_EQ(all.size(), 3u);

  std::atomic<bool> done{false};
  std::thread observer([&] {
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_EQ(pool.idle(), 0u);
    DevicePool::Stats s = pool.stats();
    EXPECT_EQ(s.in_use, 3u);
    EXPECT_EQ(s.acquired, 3u);
    done = true;
  });
  // Poll instead of join so a deadlocked observer fails the expectation
  // (and is then unblocked by the releases below) rather than hanging.
  for (int i = 0; i < 500 && !done; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(done) << "observer blocked while leases were held";
  all.clear();
  observer.join();
}

// Lock contract: Release must wake a parked AcquireOneOfEach (NotifyAll on
// the shared CondVar), and the woken caller re-evaluates the every-group-
// has-an-idle-member predicate under the lock before taking anything.
TEST(DevicePool, ReleaseWakesBlockedAcquireOneOfEach) {
  DevicePool pool(3);
  std::vector<DevicePool::Lease> all = pool.AcquireAll().value();

  const std::vector<std::vector<size_t>> groups = {{0}, {1, 2}};
  std::atomic<bool> done{false};
  std::thread lane([&] {
    DevicePool::GroupLeases g = pool.AcquireOneOfEach(groups).value();
    ASSERT_EQ(g.device_of_group.size(), 2u);
    EXPECT_EQ(g.device_of_group[0], 0u);
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done) << "AcquireOneOfEach took devices that were leased";

  all.clear();  // RAII releases -> NotifyAll -> the lane may proceed
  lane.join();
  EXPECT_TRUE(done);
  DevicePool::Stats s = pool.stats();
  EXPECT_EQ(s.in_use, 0u);
  EXPECT_GE(s.group_blocked, 1u);
}

// Lock contract: stats() snapshots under mu_ — concurrent lease churn must
// never produce a torn snapshot (in_use above the device count, counters
// moving backwards, replica_picks resized mid-copy).
TEST(DevicePool, StatsSnapshotsStayCoherentUnderChurn) {
  DevicePool pool(4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  for (int t = 0; t < 4; ++t) {
    churn.emplace_back([&] {
      const std::vector<std::vector<size_t>> groups = {{0, 1}, {2, 3}};
      while (!stop) {
        { DevicePool::Lease l = pool.Acquire().value(); }
        { DevicePool::GroupLeases g = pool.AcquireOneOfEach(groups).value(); }
      }
    });
  }
  uint64_t last_acquired = 0;
  for (int i = 0; i < 200; ++i) {
    DevicePool::Stats s = pool.stats();
    EXPECT_LE(s.in_use, pool.size());
    EXPECT_LE(s.peak_in_use, pool.size());
    EXPECT_GE(s.acquired, last_acquired) << "counter moved backwards";
    last_acquired = s.acquired;
    EXPECT_EQ(s.replica_picks.size(), pool.size());
  }
  stop = true;
  for (std::thread& t : churn) t.join();
  EXPECT_EQ(pool.stats().in_use, 0u);
}

// --- Fault tolerance: poisoned leases quarantine devices, Acquire
// variants never hand a quarantined device out, and Repair re-admits.

TEST(DevicePool, PoisonedLeaseQuarantinesOnRelease) {
  DevicePool pool(2);
  gpusim::FaultPlan plan;
  plan.fail_on_lease = true;
  plan.reason = "test trip";
  ASSERT_TRUE(pool.InjectFault(0, plan).ok());

  // free_ leases low indices first, so this takes device 0 and trips the
  // armed fail_on_lease plan at acquisition.
  DevicePool::Lease l = pool.Acquire().value();
  EXPECT_FALSE(l.get()->healthy());
  EXPECT_EQ(l.get()->fault_message(), "test trip");
  EXPECT_FALSE(pool.quarantined(0));  // not until the lease returns
  l.Release();

  EXPECT_TRUE(pool.quarantined(0));
  DevicePool::Stats s = pool.stats();
  EXPECT_EQ(s.quarantined, 1u);
  EXPECT_EQ(s.quarantined_now, 1u);
  EXPECT_EQ(s.in_use, 0u);
  EXPECT_EQ(pool.idle(), 1u);  // quarantined devices are not idle
}

TEST(DevicePool, NoAcquireVariantHandsOutQuarantinedDevices) {
  DevicePool pool(2);
  gpusim::FaultPlan plan;
  plan.fail_on_lease = true;
  ASSERT_TRUE(pool.InjectFault(0, plan).ok());
  pool.Acquire().value().Release();  // trips device 0, quarantines it
  ASSERT_TRUE(pool.quarantined(0));

  // Acquire and TryAcquire skip to the surviving device.
  {
    DevicePool::Lease l = pool.Acquire().value();
    EXPECT_EQ(l.get()->ordinal(), 1);
  }
  {
    std::optional<DevicePool::Lease> l = pool.TryAcquire();
    ASSERT_TRUE(l.has_value());
    EXPECT_EQ(l->get()->ordinal(), 1);
    EXPECT_FALSE(pool.TryAcquire().has_value());
  }
  // AcquireUpTo caps at the live devices.
  EXPECT_EQ(pool.AcquireUpTo(2).value().size(), 1u);
  // AcquireAll needs every device: unsatisfiable until a repair.
  Result<std::vector<DevicePool::Lease>> all = pool.AcquireAll();
  ASSERT_FALSE(all.ok());
  EXPECT_EQ(all.status().code(), StatusCode::kUnavailable);
  // A group whose only member is quarantined can never be covered...
  const std::vector<std::vector<size_t>> dead_group = {{0}};
  Result<DevicePool::GroupLeases> g = pool.AcquireOneOfEach(dead_group);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kUnavailable);
  // ...but a group with a live replica re-solves onto it.
  const std::vector<std::vector<size_t>> replicated = {{0, 1}};
  Result<DevicePool::GroupLeases> ok = pool.AcquireOneOfEach(replicated);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().device_of_group[0], 1u);
}

TEST(DevicePool, AcquireFailsWhenEveryDeviceIsQuarantined) {
  DevicePool pool(1);
  gpusim::FaultPlan plan;
  plan.fail_on_lease = true;
  ASSERT_TRUE(pool.InjectFault(0, plan).ok());
  pool.Acquire().value().Release();
  ASSERT_TRUE(pool.quarantined(0));

  Result<DevicePool::Lease> l = pool.Acquire();
  ASSERT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(pool.TryAcquire().has_value());

  // Repair re-admits the same simulated hardware.
  EXPECT_TRUE(pool.Repair(0));
  EXPECT_FALSE(pool.quarantined(0));
  EXPECT_EQ(pool.idle(), 1u);
  DevicePool::Lease again = pool.Acquire().value();
  EXPECT_TRUE(again.get()->healthy());
  EXPECT_EQ(pool.stats().repaired, 1u);
}

TEST(DevicePool, InjectFaultWhileLeasedArmsAtRelease) {
  DevicePool pool(1);
  DevicePool::Lease l = pool.Acquire().value();
  gpusim::FaultPlan plan;
  plan.fail_on_lease = true;
  // The device is leased: the pool must not touch it now, so the plan is
  // deferred and the current holder keeps a healthy device.
  ASSERT_TRUE(pool.InjectFault(0, plan).ok());
  EXPECT_TRUE(l.get()->healthy());
  l.Release();
  EXPECT_FALSE(pool.quarantined(0));  // armed, not yet tripped
  EXPECT_EQ(pool.idle(), 1u);
  // The next lease trips it.
  DevicePool::Lease next = pool.Acquire().value();
  EXPECT_FALSE(next.get()->healthy());
  next.Release();
  EXPECT_TRUE(pool.quarantined(0));
}

TEST(DevicePool, InjectFaultRejectsBadIndexAndQuarantinedDevice) {
  DevicePool pool(1);
  EXPECT_EQ(pool.InjectFault(7, gpusim::FaultPlan{}).code(),
            StatusCode::kInvalidArgument);
  gpusim::FaultPlan plan;
  plan.fail_on_lease = true;
  ASSERT_TRUE(pool.InjectFault(0, plan).ok());
  pool.Acquire().value().Release();
  ASSERT_TRUE(pool.quarantined(0));
  EXPECT_EQ(pool.InjectFault(0, plan).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(pool.Repair(7));   // bad index: false, not a crash
  EXPECT_TRUE(pool.Repair(0));
  EXPECT_FALSE(pool.Repair(0));   // already live
}

// Lock contract: releasing a poisoned lease must still NotifyAll, so a
// parked group waiter wakes, re-evaluates coverage, and fails with
// kAborted instead of sleeping forever on a dead group.
TEST(DevicePool, PoisonedReleaseWakesGroupWaitersWithAborted) {
  DevicePool pool(2);
  DevicePool::Lease a = pool.Acquire().value();  // device 0
  DevicePool::Lease b = pool.Acquire().value();  // device 1
  ASSERT_EQ(a.get()->ordinal(), 0);

  const std::vector<std::vector<size_t>> groups = {{0}, {1}};
  std::atomic<bool> done{false};
  StatusCode observed = StatusCode::kOk;
  std::thread waiter([&] {
    Result<DevicePool::GroupLeases> g = pool.AcquireOneOfEach(groups);
    observed = g.ok() ? StatusCode::kOk : g.status().code();
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done) << "group waiter proceeded while devices were leased";

  // Trip device 0 in the holder's hands (the lease owns the device), then
  // release: quarantine makes group {0} dead and must wake the waiter.
  a.get()->Trip("poisoned");
  a.Release();
  waiter.join();
  EXPECT_TRUE(done);
  EXPECT_EQ(observed, StatusCode::kAborted);
  EXPECT_TRUE(pool.quarantined(0));

  // Repair restores coverage without disturbing the in-flight lease on 1.
  EXPECT_TRUE(b.get()->healthy());
  EXPECT_TRUE(pool.Repair(0));
  b.Release();
  Result<DevicePool::GroupLeases> g = pool.AcquireOneOfEach(groups);
  EXPECT_TRUE(g.ok());
}

TEST(DevicePool, ConcurrentAcquireAllCallersDoNotDeadlock) {
  DevicePool pool(4);
  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::atomic<int> completed{0};
  {
    ThreadPool workers(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.Submit([&] {
        for (int i = 0; i < kIters; ++i) {
          std::vector<DevicePool::Lease> all = pool.AcquireAll().value();
          EXPECT_EQ(all.size(), 4u);
          ++completed;
        }
      });
    }
    workers.Wait();
  }
  EXPECT_EQ(completed.load(), kThreads * kIters);
  EXPECT_EQ(pool.idle(), 4u);
}

}  // namespace
}  // namespace gsi
