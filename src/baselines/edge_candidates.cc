#include "baselines/edge_candidates.h"

#include <algorithm>
#include <queue>

#include "gpusim/launch.h"
#include "gpusim/scan.h"
#include "util/check.h"
#include "util/timer.h"

namespace gsi {
namespace {

using gpusim::Warp;

/// Filters one row's extension candidates: N(v, l) values that are unused
/// in the row and belong to C(u_new). Candidate membership via binary
/// search (the baselines do not build bitsets).
size_t ExtendRow(Warp& w, const NeighborStore& store,
                 std::span<const VertexId> row, uint32_t bound_col,
                 Label label, const CandidateSet& cand,
                 std::vector<VertexId>& out) {
  out.clear();
  std::vector<VertexId> nbrs;
  store.Extract(w, row[bound_col], label, nbrs);
  w.Alu(nbrs.size() * (row.size() + 1));
  for (VertexId x : nbrs) {
    if (std::find(row.begin(), row.end(), x) != row.end()) continue;
    if (!cand.ContainsBinarySearch(w, x)) continue;
    out.push_back(x);
  }
  return out.size();
}

/// Semi-join test: does the edge (row[a], row[b]) with `label` exist?
bool SemiJoinRow(Warp& w, const NeighborStore& store,
                 std::span<const VertexId> row, uint32_t a, uint32_t b,
                 Label label) {
  std::vector<VertexId> nbrs;
  store.Extract(w, row[a], label, nbrs);
  w.Alu(nbrs.size());
  return std::binary_search(nbrs.begin(), nbrs.end(), row[b]);
}

std::vector<VertexId> ReadRow(Warp& w, const MatchTable& m, size_t r) {
  std::span<const VertexId> vals =
      w.LoadRange(m.data(), r * m.cols(), m.cols());
  w.SharedAccess(m.cols());
  return std::vector<VertexId>(vals.begin(), vals.end());
}

}  // namespace

EdgeJoinMatcher::EdgeJoinMatcher(const Graph& data, Config config)
    : data_(&data), config_(std::move(config)) {
  dev_ = std::make_unique<gpusim::Device>(config_.device);
  store_ = BuildStore(*dev_, data, StorageKind::kCsr, /*gpn=*/16);
  FilterOptions fo;
  fo.strategy = config_.filter;
  fo.build_bitmaps = false;  // the baselines probe sorted candidate lists
  filter_ = std::make_unique<FilterContext>(*dev_, data, fo);
}

std::vector<EdgeJoinMatcher::EdgeStep> EdgeJoinMatcher::PlanEdges(
    const Graph& query, const std::vector<CandidateSet>& cands,
    std::vector<VertexId>& order) const {
  const size_t nq = query.num_vertices();
  VertexId start = 0;
  if (config_.min_candidate_start) {
    for (VertexId u = 1; u < nq; ++u) {
      if (cands[u].size() < cands[start].size()) start = u;
    }
  }
  std::vector<EdgeStep> steps;
  std::vector<uint32_t> column(nq, UINT32_MAX);
  order.clear();
  order.push_back(start);
  column[start] = 0;
  std::queue<VertexId> frontier;
  frontier.push(start);
  while (!frontier.empty()) {
    VertexId u = frontier.front();
    frontier.pop();
    for (const Neighbor& n : query.neighbors(u)) {
      if (column[n.v] == UINT32_MAX) {
        // Tree edge: bind n.v.
        EdgeStep s;
        s.is_extend = true;
        s.u_new = n.v;
        s.bound_col = column[u];
        s.other_col = 0;
        s.label = n.elabel;
        steps.push_back(s);
        column[n.v] = static_cast<uint32_t>(order.size());
        order.push_back(n.v);
        frontier.push(n.v);
      } else if (column[n.v] > column[u]) {
        // Non-tree edge between two bound vertices, recorded once. It can
        // only run after both are bound; collect and splice below.
        EdgeStep s;
        s.is_extend = false;
        s.u_new = kInvalidVertex;
        s.bound_col = column[u];
        s.other_col = column[n.v];
        s.label = n.elabel;
        steps.push_back(s);
      }
    }
  }
  // Order steps so each semi-join runs right after its later endpoint is
  // bound: stable sort by the max column involved.
  std::stable_sort(steps.begin(), steps.end(),
                   [](const EdgeStep& a, const EdgeStep& b) {
                     uint32_t ka = a.is_extend
                                       ? a.bound_col + 1
                                       : std::max(a.bound_col, a.other_col);
                     uint32_t kb = b.is_extend
                                       ? b.bound_col + 1
                                       : std::max(b.bound_col, b.other_col);
                     return ka < kb;
                   });
  return steps;
}

Result<QueryResult> EdgeJoinMatcher::Find(const Graph& query) {
  if (query.num_vertices() == 0 || !query.IsConnected()) {
    return Status::InvalidArgument("query must be non-empty and connected");
  }
  WallTimer wall;
  QueryResult out;
  gpusim::MemStats start_stats = dev_->stats();

  Result<FilterResult> filtered = filter_->Filter(query);
  if (!filtered.ok()) return filtered.status();
  out.stats.filter = dev_->stats() - start_stats;
  out.stats.min_candidate_size = filtered->min_candidate_size;

  std::vector<VertexId> order;
  std::vector<EdgeStep> steps = PlanEdges(query, filtered->candidates, order);
  gpusim::MemStats join_start = dev_->stats();

  // Seed M with the start vertex's candidates.
  const CandidateSet& seed = filtered->candidates[order[0]];
  std::vector<VertexId> column(seed.list().data(),
                               seed.list().data() + seed.list().size());
  MatchTable m = MatchTable::FromColumn(*dev_, column);

  // Map of columns filled so far grows with each extend.
  size_t bound = 1;
  std::vector<VertexId> scratch;
  for (const EdgeStep& step : steps) {
    size_t rows = m.rows();
    size_t cols = m.cols();
    if (rows == 0) break;
    auto counts = dev_->Alloc<uint32_t>(rows);

    auto pass = [&](bool write, MatchTable* next,
                    const gpusim::DeviceBuffer<uint64_t>* offsets) {
      gpusim::Launch(*dev_, rows, [&](Warp& w) {
        size_t i = w.global_id();
        if (i >= rows) return;
        std::vector<VertexId> row = ReadRow(w, m, i);
        if (step.is_extend) {
          ExtendRow(w, *store_, row, step.bound_col, step.label,
                    filtered->candidates[step.u_new], scratch);
          if (!write) {
            w.Store(counts, i, static_cast<uint32_t>(scratch.size()));
          } else if (!scratch.empty()) {
            uint64_t o = (*offsets)[i];
            for (size_t k = 0; k < scratch.size(); ++k) {
              for (size_t j = 0; j < cols; ++j) next->Set(o + k, j, row[j]);
              next->Set(o + k, cols, scratch[k]);
            }
            w.ChargeStoreTransactions(gpusim::Device::RangeTransactions(
                next->data().AddressOf(o * (cols + 1)),
                scratch.size() * (cols + 1) * sizeof(VertexId)));
          }
        } else {
          bool keep = SemiJoinRow(w, *store_, row, step.bound_col,
                                  step.other_col, step.label);
          if (!write) {
            w.Store(counts, i, keep ? 1u : 0u);
          } else if (keep) {
            uint64_t o = (*offsets)[i];
            for (size_t j = 0; j < cols; ++j) next->Set(o, j, row[j]);
            w.ChargeStoreTransactions(gpusim::Device::RangeTransactions(
                next->data().AddressOf(o * cols),
                cols * sizeof(VertexId)));
          }
        }
      });
    };

    // Two-step output scheme: count, prefix sum, recompute and write.
    pass(/*write=*/false, nullptr, nullptr);
    auto offsets = dev_->Alloc<uint64_t>(rows + 1);
    uint64_t new_rows = gpusim::ExclusiveScan(*dev_, counts, offsets);
    if (new_rows > config_.max_rows) {
      return Status::ResourceExhausted("edge join exceeds max_rows: " +
                                       std::to_string(new_rows));
    }
    size_t new_cols = step.is_extend ? cols + 1 : cols;
    MatchTable next = MatchTable::Alloc(*dev_, new_rows, new_cols);
    pass(/*write=*/true, &next, &offsets);
    m = std::move(next);
    if (step.is_extend) ++bound;
  }
  GSI_CHECK(m.rows() == 0 || bound == query.num_vertices());
  if (m.rows() == 0 && m.cols() != query.num_vertices()) {
    m = MatchTable::Alloc(*dev_, 0, query.num_vertices());
  }

  out.stats.join = dev_->stats() - join_start;
  out.table = std::move(m);
  out.column_to_query = order;
  out.stats.filter_ms = out.stats.filter.SimulatedMs(dev_->config());
  out.stats.join_ms = out.stats.join.SimulatedMs(dev_->config());
  out.stats.total_ms = out.stats.filter_ms + out.stats.join_ms;
  out.stats.wall_ms = wall.ElapsedMs();
  out.stats.num_matches = out.table.rows();
  return out;
}

EdgeJoinMatcher MakeGpsmMatcher(const Graph& data,
                                gpusim::DeviceConfig device) {
  EdgeJoinMatcher::Config c;
  c.name = "GpSM";
  c.filter = FilterStrategy::kLabelDegreeNeighbor;
  c.min_candidate_start = true;
  c.device = device;
  return EdgeJoinMatcher(data, std::move(c));
}

EdgeJoinMatcher MakeGunrockSmMatcher(const Graph& data,
                                     gpusim::DeviceConfig device) {
  EdgeJoinMatcher::Config c;
  c.name = "GunrockSM";
  c.filter = FilterStrategy::kLabelDegree;
  c.min_candidate_start = false;
  c.device = device;
  return EdgeJoinMatcher(data, std::move(c));
}

}  // namespace gsi
