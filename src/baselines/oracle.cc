#include "baselines/oracle.h"

#include <algorithm>

namespace gsi {
namespace {

struct SearchState {
  const Graph* data;
  const Graph* query;
  size_t limit;
  std::vector<VertexId> assignment;  // query vertex -> data vertex
  std::vector<bool> used;            // data vertex used
  std::vector<std::vector<VertexId>>* out;
};

void Backtrack(SearchState& s, VertexId u) {
  const size_t nq = s.query->num_vertices();
  if (u == nq) {
    s.out->push_back(s.assignment);
    return;
  }
  for (VertexId v = 0; v < s.data->num_vertices(); ++v) {
    if (s.out->size() >= s.limit) return;
    if (s.used[v]) continue;
    if (s.data->vertex_label(v) != s.query->vertex_label(u)) continue;
    // Every query edge to an already-assigned vertex must exist with the
    // same label.
    bool ok = true;
    for (const Neighbor& n : s.query->neighbors(u)) {
      if (n.v < u) {
        if (!s.data->HasEdge(v, s.assignment[n.v], n.elabel)) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    s.assignment[u] = v;
    s.used[v] = true;
    Backtrack(s, u + 1);
    s.used[v] = false;
  }
}

}  // namespace

std::vector<std::vector<VertexId>> EnumerateMatchesBruteForce(
    const Graph& data, const Graph& query, size_t limit) {
  std::vector<std::vector<VertexId>> out;
  if (query.num_vertices() == 0) return out;
  SearchState s{&data, &query, limit,
                std::vector<VertexId>(query.num_vertices(), kInvalidVertex),
                std::vector<bool>(data.num_vertices(), false), &out};
  Backtrack(s, 0);
  std::sort(out.begin(), out.end());
  return out;
}

size_t CountMatchesBruteForce(const Graph& data, const Graph& query,
                              size_t limit) {
  return EnumerateMatchesBruteForce(data, query, limit).size();
}

}  // namespace gsi
