#include <algorithm>
#include <unordered_map>

#include "baselines/backtrack.h"
#include "baselines/cpu_matcher.h"

namespace gsi {
namespace {

/// Label + degree + per-edge-label degree candidate test (the node
/// classification rule VF3 adds on top of VF2).
bool CandidateFeasible(const Graph& data, const Graph& query, VertexId v,
                       VertexId u) {
  if (data.vertex_label(v) != query.vertex_label(u)) return false;
  if (data.degree(v) < query.degree(u)) return false;
  std::unordered_map<Label, uint32_t> need;
  for (const Neighbor& n : query.neighbors(u)) ++need[n.elabel];
  for (const auto& [l, cnt] : need) {
    if (data.NeighborsWithLabel(v, l).size() < cnt) return false;
  }
  return true;
}

}  // namespace

CpuMatchResult Vf2Match(const Graph& data, const Graph& query,
                        const CpuMatcherOptions& options) {
  const size_t nq = query.num_vertices();

  std::vector<std::vector<VertexId>> candidates(nq);
  for (VertexId u = 0; u < nq; ++u) {
    for (VertexId v = 0; v < data.num_vertices(); ++v) {
      if (CandidateFeasible(data, query, v, u)) candidates[u].push_back(v);
    }
  }

  // VF3-style ordering: start from the most constrained vertex (fewest
  // candidates relative to degree), then grow connected, preferring
  // vertices with many matched neighbours and few candidates.
  std::vector<VertexId> order;
  std::vector<bool> in_order(nq, false);
  auto start_score = [&](VertexId u) {
    return static_cast<double>(candidates[u].size() + 1) /
           static_cast<double>(query.degree(u));
  };
  VertexId start = 0;
  for (VertexId u = 1; u < nq; ++u) {
    if (start_score(u) < start_score(start)) start = u;
  }
  order.push_back(start);
  in_order[start] = true;
  while (order.size() < nq) {
    VertexId best = kInvalidVertex;
    double best_score = 0;
    for (VertexId u = 0; u < nq; ++u) {
      if (in_order[u]) continue;
      size_t matched_neighbors = 0;
      for (const Neighbor& n : query.neighbors(u)) {
        matched_neighbors += in_order[n.v] ? 1 : 0;
      }
      if (matched_neighbors == 0) continue;
      double score = static_cast<double>(matched_neighbors) /
                     static_cast<double>(candidates[u].size() + 1);
      if (best == kInvalidVertex || score > best_score) {
        best = u;
        best_score = score;
      }
    }
    order.push_back(best);
    in_order[best] = true;
  }

  BacktrackDriver driver(data, query, options);
  return driver.Run(order, candidates);
}

}  // namespace gsi
