#ifndef GSI_BASELINES_ORACLE_H_
#define GSI_BASELINES_ORACLE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"

namespace gsi {

/// Reference subgraph-isomorphism enumerator: plain backtracking with label
/// checks and no pruning beyond adjacency. Deliberately simple — every
/// engine in this repository (GSI in all configurations, GpSM, GunrockSM,
/// Ullmann, VF2, CFL) is validated against it in tests.
///
/// Returns all matches, each indexed by query vertex id, sorted
/// lexicographically. `limit` caps enumeration (SIZE_MAX = all).
std::vector<std::vector<VertexId>> EnumerateMatchesBruteForce(
    const Graph& data, const Graph& query, size_t limit = SIZE_MAX);

/// Convenience: just the count.
size_t CountMatchesBruteForce(const Graph& data, const Graph& query,
                              size_t limit = SIZE_MAX);

}  // namespace gsi

#endif  // GSI_BASELINES_ORACLE_H_
