#ifndef GSI_BASELINES_CPU_MATCHER_H_
#define GSI_BASELINES_CPU_MATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"

namespace gsi {

/// Options shared by the CPU baseline matchers (Ullmann, VF2, CFL-Match).
struct CpuMatcherOptions {
  /// Stop after this many matches (SIZE_MAX = enumerate all).
  size_t match_limit = SIZE_MAX;
  /// Abort after this much wall time; the paper cuts CPU baselines off at
  /// 100 seconds (Figure 12).
  double timeout_ms = 100000.0;
  /// Keep the matches (tests) or just count them (benches).
  bool collect_matches = false;
};

/// Result of a CPU matcher run.
struct CpuMatchResult {
  size_t num_matches = 0;
  double wall_ms = 0;
  bool timed_out = false;
  /// Present iff collect_matches; each entry indexed by query vertex id.
  std::vector<std::vector<VertexId>> matches;

  /// Sorted copy of `matches` (canonical form for comparisons).
  std::vector<std::vector<VertexId>> SortedMatches() const;
};

/// Algorithm selector for RunCpuMatcher.
enum class CpuAlgorithm {
  kUllmann,   ///< Ullmann (1976): candidate matrix + refinement + DFS
  kVf2,       ///< VF2/VF3-style state space with feasibility rules
  kCflMatch,  ///< CFL-Match-style core-forest-leaf decomposition
};

CpuMatchResult RunCpuMatcher(CpuAlgorithm algorithm, const Graph& data,
                             const Graph& query,
                             const CpuMatcherOptions& options = {});

std::string CpuAlgorithmName(CpuAlgorithm algorithm);

// Direct entry points (same semantics as RunCpuMatcher).
CpuMatchResult UllmannMatch(const Graph& data, const Graph& query,
                            const CpuMatcherOptions& options = {});
CpuMatchResult Vf2Match(const Graph& data, const Graph& query,
                        const CpuMatcherOptions& options = {});
CpuMatchResult CflMatch(const Graph& data, const Graph& query,
                        const CpuMatcherOptions& options = {});

}  // namespace gsi

#endif  // GSI_BASELINES_CPU_MATCHER_H_
