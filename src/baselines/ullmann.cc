#include <algorithm>

#include "baselines/backtrack.h"
#include "baselines/cpu_matcher.h"

namespace gsi {
namespace {

/// Ullmann's refinement: v stays a candidate of u only if every query
/// neighbour u' of u has some candidate v' adjacent to v with the right
/// edge label. Iterates to a fixpoint (bounded rounds).
void Refine(const Graph& data, const Graph& query,
            std::vector<std::vector<VertexId>>& candidates) {
  const size_t nq = query.num_vertices();
  bool changed = true;
  int rounds = 0;
  while (changed && rounds < 8) {
    changed = false;
    ++rounds;
    for (VertexId u = 0; u < nq; ++u) {
      auto& cu = candidates[u];
      auto survive = [&](VertexId v) {
        for (const Neighbor& qn : query.neighbors(u)) {
          std::span<const Neighbor> dn =
              data.NeighborsWithLabel(v, qn.elabel);
          bool found = false;
          for (const Neighbor& n : dn) {
            if (std::binary_search(candidates[qn.v].begin(),
                                   candidates[qn.v].end(), n.v)) {
              found = true;
              break;
            }
          }
          if (!found) return false;
        }
        return true;
      };
      size_t before = cu.size();
      cu.erase(std::remove_if(cu.begin(), cu.end(),
                              [&](VertexId v) { return !survive(v); }),
               cu.end());
      if (cu.size() != before) changed = true;
    }
  }
}

}  // namespace

CpuMatchResult UllmannMatch(const Graph& data, const Graph& query,
                            const CpuMatcherOptions& options) {
  const size_t nq = query.num_vertices();
  // Candidate matrix: label + degree test.
  std::vector<std::vector<VertexId>> candidates(nq);
  for (VertexId u = 0; u < nq; ++u) {
    for (VertexId v = 0; v < data.num_vertices(); ++v) {
      if (data.vertex_label(v) == query.vertex_label(u) &&
          data.degree(v) >= query.degree(u)) {
        candidates[u].push_back(v);
      }
    }
  }
  Refine(data, query, candidates);

  // Plain query-vertex order (Ullmann's depth-first strategy).
  std::vector<VertexId> order(nq);
  for (VertexId u = 0; u < nq; ++u) order[u] = u;

  BacktrackDriver driver(data, query, options);
  return driver.Run(order, candidates);
}

}  // namespace gsi
