#include <algorithm>
#include <unordered_map>

#include "baselines/backtrack.h"
#include "baselines/cpu_matcher.h"

namespace gsi {
namespace {

/// Core-forest-leaf decomposition of the query (CFL-Match): the core is the
/// 2-core; removing it leaves trees (forest) whose degree-1 fringe are the
/// leaves. Returns a class per vertex: 0 = core, 1 = forest, 2 = leaf.
std::vector<int> Decompose(const Graph& query) {
  const size_t nq = query.num_vertices();
  std::vector<size_t> deg(nq);
  for (VertexId u = 0; u < nq; ++u) deg[u] = query.degree(u);
  // Iteratively peel degree-1 vertices to find the 2-core.
  std::vector<bool> peeled(nq, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < nq; ++u) {
      if (!peeled[u] && deg[u] <= 1) {
        peeled[u] = true;
        changed = true;
        for (const Neighbor& n : query.neighbors(u)) {
          if (!peeled[n.v] && deg[n.v] > 0) --deg[n.v];
        }
      }
    }
  }
  std::vector<int> cls(nq, 0);
  for (VertexId u = 0; u < nq; ++u) {
    if (!peeled[u]) {
      cls[u] = 0;  // core
    } else if (query.degree(u) == 1) {
      cls[u] = 2;  // leaf
    } else {
      cls[u] = 1;  // forest
    }
  }
  // A query with an empty 2-core (a tree): treat the highest-degree vertex
  // as the core seed so ordering still starts somewhere sensible.
  bool has_core = std::any_of(cls.begin(), cls.end(),
                              [](int c) { return c == 0; });
  if (!has_core) {
    VertexId seed = 0;
    for (VertexId u = 1; u < nq; ++u) {
      if (query.degree(u) > query.degree(seed)) seed = u;
    }
    cls[seed] = 0;
  }
  return cls;
}

}  // namespace

CpuMatchResult CflMatch(const Graph& data, const Graph& query,
                        const CpuMatcherOptions& options) {
  const size_t nq = query.num_vertices();

  // CPI-style candidates: label + degree + per-edge-label degree.
  std::vector<std::vector<VertexId>> candidates(nq);
  for (VertexId u = 0; u < nq; ++u) {
    std::unordered_map<Label, uint32_t> need;
    for (const Neighbor& n : query.neighbors(u)) ++need[n.elabel];
    for (VertexId v = 0; v < data.num_vertices(); ++v) {
      if (data.vertex_label(v) != query.vertex_label(u)) continue;
      if (data.degree(v) < query.degree(u)) continue;
      bool ok = true;
      for (const auto& [l, cnt] : need) {
        if (data.NeighborsWithLabel(v, l).size() < cnt) {
          ok = false;
          break;
        }
      }
      if (ok) candidates[u].push_back(v);
    }
  }

  // Matching order: core first ("postponing the Cartesian products" of the
  // forest/leaves), each class ordered by candidate count, grown
  // connected to what is already matched.
  std::vector<int> cls = Decompose(query);
  std::vector<VertexId> order;
  std::vector<bool> in_order(nq, false);
  auto pick = [&](int klass, bool require_connected) -> VertexId {
    VertexId best = kInvalidVertex;
    for (VertexId u = 0; u < nq; ++u) {
      if (in_order[u] || cls[u] != klass) continue;
      if (require_connected && !order.empty()) {
        bool connected = false;
        for (const Neighbor& n : query.neighbors(u)) {
          connected |= in_order[n.v];
        }
        if (!connected) continue;
      }
      if (best == kInvalidVertex ||
          candidates[u].size() < candidates[best].size()) {
        best = u;
      }
    }
    return best;
  };
  for (int klass : {0, 1, 2}) {
    while (true) {
      VertexId u = pick(klass, !order.empty());
      if (u == kInvalidVertex) u = pick(klass, false);
      if (u == kInvalidVertex) break;
      order.push_back(u);
      in_order[u] = true;
    }
  }

  BacktrackDriver driver(data, query, options);
  return driver.Run(order, candidates);
}

}  // namespace gsi
