#include "baselines/cpu_matcher.h"

#include <algorithm>

namespace gsi {

std::vector<std::vector<VertexId>> CpuMatchResult::SortedMatches() const {
  std::vector<std::vector<VertexId>> out = matches;
  std::sort(out.begin(), out.end());
  return out;
}

CpuMatchResult RunCpuMatcher(CpuAlgorithm algorithm, const Graph& data,
                             const Graph& query,
                             const CpuMatcherOptions& options) {
  switch (algorithm) {
    case CpuAlgorithm::kUllmann:
      return UllmannMatch(data, query, options);
    case CpuAlgorithm::kVf2:
      return Vf2Match(data, query, options);
    case CpuAlgorithm::kCflMatch:
      return CflMatch(data, query, options);
  }
  return CpuMatchResult{};
}

std::string CpuAlgorithmName(CpuAlgorithm algorithm) {
  switch (algorithm) {
    case CpuAlgorithm::kUllmann:
      return "Ullmann";
    case CpuAlgorithm::kVf2:
      return "VF3";
    case CpuAlgorithm::kCflMatch:
      return "CFL-Match";
  }
  return "?";
}

}  // namespace gsi
