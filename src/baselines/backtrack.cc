#include "baselines/backtrack.h"

namespace gsi {

CpuMatchResult BacktrackDriver::Run(
    const std::vector<VertexId>& order,
    const std::vector<std::vector<VertexId>>& candidates) {
  order_ = &order;
  candidates_ = &candidates;
  assignment_.assign(query_.num_vertices(), kInvalidVertex);
  used_.assign(data_.num_vertices(), false);
  result_ = CpuMatchResult{};
  timer_.Reset();
  steps_ = 0;
  Extend(0);
  result_.wall_ms = timer_.ElapsedMs();
  return result_;
}

bool BacktrackDriver::Extend(size_t depth) {
  if (depth == order_->size()) {
    ++result_.num_matches;
    if (options_.collect_matches) result_.matches.push_back(assignment_);
    return result_.num_matches < options_.match_limit;
  }
  VertexId u = (*order_)[depth];
  for (VertexId v : (*candidates_)[u]) {
    if ((++steps_ & 0xFFF) == 0 &&
        timer_.ElapsedMs() > options_.timeout_ms) {
      result_.timed_out = true;
      return false;
    }
    if (used_[v]) continue;
    // Verify every query edge to an already-assigned vertex.
    bool ok = true;
    for (const Neighbor& n : query_.neighbors(u)) {
      VertexId w = assignment_[n.v];
      if (w == kInvalidVertex) continue;
      if (!data_.HasEdge(v, w, n.elabel)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    assignment_[u] = v;
    used_[v] = true;
    bool keep_going = Extend(depth + 1);
    used_[v] = false;
    assignment_[u] = kInvalidVertex;
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace gsi
