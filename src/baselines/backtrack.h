#ifndef GSI_BASELINES_BACKTRACK_H_
#define GSI_BASELINES_BACKTRACK_H_

#include <vector>

#include "baselines/cpu_matcher.h"
#include "graph/graph.h"
#include "util/common.h"
#include "util/timer.h"

namespace gsi {

/// Shared DFS driver for the CPU baselines: given a matching order and
/// per-vertex candidate lists, enumerates all injective, edge-preserving
/// embeddings. Each baseline differs in how it builds the order and the
/// candidates (its pruning); the search core is identical, which keeps the
/// comparison about pruning power rather than code quality.
class BacktrackDriver {
 public:
  BacktrackDriver(const Graph& data, const Graph& query,
                  const CpuMatcherOptions& options)
      : data_(data), query_(query), options_(options) {}

  /// Runs the DFS. `order` must contain every query vertex exactly once;
  /// `candidates[u]` lists candidate data vertices of query vertex u.
  CpuMatchResult Run(const std::vector<VertexId>& order,
                     const std::vector<std::vector<VertexId>>& candidates);

 private:
  bool Extend(size_t depth);

  const Graph& data_;
  const Graph& query_;
  CpuMatcherOptions options_;

  const std::vector<VertexId>* order_ = nullptr;
  const std::vector<std::vector<VertexId>>* candidates_ = nullptr;
  std::vector<VertexId> assignment_;
  std::vector<bool> used_;
  CpuMatchResult result_;
  WallTimer timer_;
  size_t steps_ = 0;
};

}  // namespace gsi

#endif  // GSI_BASELINES_BACKTRACK_H_
