#ifndef GSI_BASELINES_EDGE_CANDIDATES_H_
#define GSI_BASELINES_EDGE_CANDIDATES_H_

#include <memory>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "graph/graph.h"
#include "gsi/filter.h"
#include "gsi/matcher.h"
#include "storage/neighbor_store.h"
#include "util/status.h"

namespace gsi {

/// The edge-oriented breadth-first join framework shared by the GpSM and
/// GunrockSM baselines (Section I / Section VIII): query edges are
/// processed in spanning-tree BFS order; every tree edge *extends* the
/// intermediate table by one column and every non-tree edge *semi-joins*
/// (filters) it. Both passes use the two-step output scheme (count, prefix
/// sum, recompute + write — Example 1, Figure 3), traditional CSR storage
/// and naive set operations; none of GSI's optimizations.
class EdgeJoinMatcher {
 public:
  struct Config {
    std::string name;
    /// GpSM filters with label+degree+neighbor refinement; GunrockSM with
    /// label+degree only (Table IV).
    FilterStrategy filter = FilterStrategy::kLabelDegree;
    /// GpSM starts its BFS at the query vertex with the fewest candidates;
    /// GunrockSM uses the first query vertex.
    bool min_candidate_start = false;
    /// Intermediate-table row budget.
    size_t max_rows = 4u * 1024 * 1024;
    gpusim::DeviceConfig device;
  };

  EdgeJoinMatcher(const Graph& data, Config config);

  /// Enumerates all matches (same semantics and result type as
  /// GsiMatcher::Find so benches treat engines uniformly).
  Result<QueryResult> Find(const Graph& query);

  gpusim::Device& device() { return *dev_; }
  const std::string& name() const { return config_.name; }

 private:
  struct EdgeStep {
    bool is_extend;      // tree edge: bind a new vertex; else semi-join
    VertexId u_new;      // extend only
    uint32_t bound_col;  // column of the already-bound endpoint
    uint32_t other_col;  // semi-join only: the second bound column
    Label label;
  };

  std::vector<EdgeStep> PlanEdges(const Graph& query,
                                  const std::vector<CandidateSet>& cands,
                                  std::vector<VertexId>& order) const;

  const Graph* data_;
  Config config_;
  std::unique_ptr<gpusim::Device> dev_;
  std::unique_ptr<NeighborStore> store_;  // traditional CSR
  std::unique_ptr<FilterContext> filter_;
};

/// GpSM (Tran et al., DASFAA 2015) configured per the paper's comparison.
EdgeJoinMatcher MakeGpsmMatcher(const Graph& data,
                                gpusim::DeviceConfig device = {});
/// GunrockSM (Wang et al., HPDC 2016) configured per the paper's
/// comparison.
EdgeJoinMatcher MakeGunrockSmMatcher(const Graph& data,
                                     gpusim::DeviceConfig device = {});

}  // namespace gsi

#endif  // GSI_BASELINES_EDGE_CANDIDATES_H_
