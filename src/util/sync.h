#ifndef GSI_UTIL_SYNC_H_
#define GSI_UTIL_SYNC_H_

#include <condition_variable>
#include <mutex>

#include "util/annotations.h"

namespace gsi {

/// Annotated wrappers over std::mutex / std::condition_variable so the
/// concurrency layer is checkable by Clang Thread Safety Analysis
/// (util/annotations.h). Semantics are identical to the std types; the
/// wrappers only add capability annotations the analysis can track.
///
/// Condition waits are written as explicit loops in the caller,
///
///   MutexLock lock(mu_);
///   while (!predicate()) cv_.Wait(mu_);
///
/// rather than the std::condition_variable predicate overload: the
/// predicate then runs in the enclosing scope, where the analysis knows
/// `mu_` is held, instead of inside a lambda it cannot see into.

class GSI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GSI_ACQUIRE() { mu_.lock(); }
  void Unlock() GSI_RELEASE() { mu_.unlock(); }
  bool TryLock() GSI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex (the std::lock_guard shape, annotated).
class GSI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GSI_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() GSI_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with Mutex. Wait atomically releases `mu`,
/// blocks, and re-acquires it before returning — callers must already
/// hold `mu` and re-check their predicate in a loop (spurious wakeups).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) GSI_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the re-acquired mu
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gsi

#endif  // GSI_UTIL_SYNC_H_
