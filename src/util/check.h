#ifndef GSI_UTIL_CHECK_H_
#define GSI_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant check that stays on in release builds. Used for programming
/// errors (out-of-range lane, shared-memory overflow) that must never be
/// silently ignored; recoverable errors use Status instead.
#define GSI_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "GSI_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define GSI_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "GSI_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // GSI_UTIL_CHECK_H_
