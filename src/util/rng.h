#ifndef GSI_UTIL_RNG_H_
#define GSI_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace gsi {

/// Deterministic 64-bit PRNG (splitmix64 seeded xoshiro256**). Every
/// generator, labeler and query workload in this repository is seeded, so all
/// experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit word.
  uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

/// Samples integers in [0, n) with Zipf-like probability P(k) proportional to
/// 1/(k+1)^alpha. Used to assign power-law-distributed vertex/edge labels
/// (Section VII-A: "we assign labels following the power-law distribution").
class ZipfSampler {
 public:
  /// @param n     number of distinct values.
  /// @param alpha skew (1.0 is the classic Zipf; 0 degenerates to uniform).
  ZipfSampler(uint64_t n, double alpha, uint64_t seed);

  uint64_t Sample();

  uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  Rng rng_;
};

}  // namespace gsi

#endif  // GSI_UTIL_RNG_H_
