#ifndef GSI_UTIL_STATUS_H_
#define GSI_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace gsi {

/// Error codes for recoverable failures. The library does not use exceptions
/// (following the Google C++ style used throughout this project); fallible
/// operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kResourceExhausted,  // e.g. intermediate-table row cap exceeded
  kInternal,
  kDeadlineExceeded,  // query sat in the admission queue past its deadline
  kCancelled,         // ticket cancelled before execution started
  /// A simulated device failed (fault injection) or every device that could
  /// serve the request is quarantined. Retriable: the condition clears when
  /// a replica takes over or the device is repaired. Distinct from
  /// kResourceExhausted (capacity that frees up on its own — queue slots,
  /// row caps) and from kInternal (a bug; never retriable).
  kUnavailable,
  /// An operation observed mid-wait that it can never be satisfied because
  /// a poisoned lease quarantined a device it needed (the wait started
  /// satisfiable, then the pool shrank underneath it). Internal propagation
  /// code: the serving layer retries it like kUnavailable and reports
  /// kUnavailable to callers on final failure.
  kAborted,
};

/// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: bad vertex id".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result, modelled after absl::StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(value_);
  }

  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace gsi

#endif  // GSI_UTIL_STATUS_H_
