#ifndef GSI_UTIL_COMMON_H_
#define GSI_UTIL_COMMON_H_

#include <cstdint>
#include <limits>

namespace gsi {

/// Vertex identifier. Data graphs are bounded by 2^32-1 vertices (the paper
/// assumes |V| < 2^32 in the PCSR analysis, Section IV).
using VertexId = uint32_t;

/// Vertex / edge label. Labels are dense small integers assigned by the
/// loader or the synthetic labeler.
using Label = uint32_t;

/// Sentinel for "no vertex" (also used as the empty-slot marker in PCSR
/// groups and as the GID=-1 overflow terminator).
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel for "no label".
inline constexpr Label kInvalidLabel = std::numeric_limits<Label>::max();

}  // namespace gsi

#endif  // GSI_UTIL_COMMON_H_
