#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace gsi {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(uint64_t n, double alpha, uint64_t seed)
    : rng_(seed) {
  cdf_.resize(n);
  double acc = 0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

uint64_t ZipfSampler::Sample() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace gsi
