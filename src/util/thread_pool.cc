#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace gsi {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (pending_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) work_ready_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace gsi
