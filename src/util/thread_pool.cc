#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace gsi {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gsi
