#ifndef GSI_UTIL_PERCENTILE_H_
#define GSI_UTIL_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <span>

namespace gsi {

/// Nearest-rank percentile (ceil(p*N)-1) of an ascending sequence; 0 when
/// empty. Rounds up so small samples report the tail, not hide it. `p` is
/// clamped to [0, 1] — out-of-range and NaN inputs pick the min / max
/// element instead of indexing out of bounds (casting a negative ceil to
/// size_t is undefined behavior). Shared by BatchStats (query_engine.cc)
/// and ServiceStats (query_service.cc).
inline double PercentileOfSorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0;
  if (std::isnan(p)) return sorted.back();
  p = std::clamp(p, 0.0, 1.0);
  size_t rank =
      static_cast<size_t>(std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace gsi

#endif  // GSI_UTIL_PERCENTILE_H_
