#ifndef GSI_UTIL_PERCENTILE_H_
#define GSI_UTIL_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <span>

namespace gsi {

/// Nearest-rank percentile (ceil(p*N)-1) of an ascending sequence; 0 when
/// empty. Rounds up so small samples report the tail, not hide it. Shared
/// by BatchStats (query_engine.cc) and ServiceStats (query_service.cc).
inline double PercentileOfSorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank =
      static_cast<size_t>(std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace gsi

#endif  // GSI_UTIL_PERCENTILE_H_
