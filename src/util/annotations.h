#ifndef GSI_UTIL_ANNOTATIONS_H_
#define GSI_UTIL_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (no-ops on other compilers).
///
/// The concurrency layer (util/thread_pool, service/device_pool,
/// service/query_service, service/filter_cache) declares its locking
/// discipline with these macros so `clang++ -Wthread-safety` proves, at
/// compile time, that every access to a shared field happens under the
/// mutex that guards it and that every helper is called with the locks it
/// requires — the static counterpart of the TSan CI legs. Build with
/// `-DGSI_THREAD_SAFETY=ON` (Clang only) to turn the analysis into errors;
/// under GCC the macros expand to nothing and the code is unchanged.
///
/// Conventions (documented in docs/ARCHITECTURE.md):
///  - every shared field is `GSI_GUARDED_BY(mu_)`;
///  - private helpers that expect the caller to hold the lock are
///    `GSI_REQUIRES(mu_)` and named `...Locked`;
///  - public methods that take the lock themselves are
///    `GSI_EXCLUDES(mu_)` when calling them with the lock held would
///    self-deadlock.

#if defined(__clang__) && (!defined(SWIG))
#define GSI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GSI_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define GSI_CAPABILITY(x) GSI_THREAD_ANNOTATION(capability(x))
#define GSI_SCOPED_CAPABILITY GSI_THREAD_ANNOTATION(scoped_lockable)
#define GSI_GUARDED_BY(x) GSI_THREAD_ANNOTATION(guarded_by(x))
#define GSI_PT_GUARDED_BY(x) GSI_THREAD_ANNOTATION(pt_guarded_by(x))
#define GSI_ACQUIRED_BEFORE(...) \
  GSI_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GSI_ACQUIRED_AFTER(...) \
  GSI_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define GSI_REQUIRES(...) \
  GSI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GSI_ACQUIRE(...) \
  GSI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GSI_RELEASE(...) \
  GSI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GSI_TRY_ACQUIRE(...) \
  GSI_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GSI_EXCLUDES(...) GSI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GSI_ASSERT_CAPABILITY(x) \
  GSI_THREAD_ANNOTATION(assert_capability(x))
#define GSI_RETURN_CAPABILITY(x) GSI_THREAD_ANNOTATION(lock_returned(x))
#define GSI_NO_THREAD_SAFETY_ANALYSIS \
  GSI_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // GSI_UTIL_ANNOTATIONS_H_
