#ifndef GSI_UTIL_TABLE_PRINTER_H_
#define GSI_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gsi {

/// Renders aligned text tables in the style of the paper's evaluation tables.
/// Used by the bench harness to print paper-shaped rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders the table with a title line, column separators and a rule under
  /// the header.
  std::string ToString(const std::string& title) const;

  /// Convenience: prints ToString(title) to stdout.
  void Print(const std::string& title) const;

  /// Formats a count with thousands grouping ("12,345").
  static std::string FormatCount(uint64_t v);
  /// Formats milliseconds with adaptive precision ("0.42", "12.3", "4400").
  static std::string FormatMs(double ms);
  /// Formats a speedup / drop factor ("2.1x", "30%").
  static std::string FormatSpeedup(double factor);
  static std::string FormatPercent(double fraction);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gsi

#endif  // GSI_UTIL_TABLE_PRINTER_H_
