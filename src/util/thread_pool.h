#ifndef GSI_UTIL_THREAD_POOL_H_
#define GSI_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.h"
#include "util/sync.h"

namespace gsi {

/// Fixed-size worker pool for host-side parallelism (the simulated devices
/// are cheap to run concurrently — one per worker). Tasks are run in FIFO
/// order; Wait() blocks until every submitted task has finished.
///
///   ThreadPool pool(4);
///   for (auto& item : work) pool.Submit([&item] { Process(item); });
///   pool.Wait();
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  /// Waits for pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks may Submit further tasks but must not call
  /// Wait() (deadlock).
  void Submit(std::function<void()> task) GSI_EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is executing.
  void Wait() GSI_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() GSI_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_ready_;   // queue non-empty or stopping
  CondVar all_done_;     // pending_ dropped to zero
  std::deque<std::function<void()>> queue_ GSI_GUARDED_BY(mu_);
  size_t pending_ GSI_GUARDED_BY(mu_) = 0;  // queued + executing tasks
  bool stop_ GSI_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace gsi

#endif  // GSI_UTIL_THREAD_POOL_H_
