#ifndef GSI_UTIL_TIMER_H_
#define GSI_UTIL_TIMER_H_

#include <chrono>

namespace gsi {

/// Simple wall-clock timer for host-side measurements.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gsi

#endif  // GSI_UTIL_TIMER_H_
