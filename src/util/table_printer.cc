#include "util/table_printer.h"

#include <cstdio>
#include <sstream>

namespace gsi {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString(const std::string& title) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  out << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(width[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  size_t total = 1;
  for (size_t c = 0; c < header_.size(); ++c) total += width[c] + 3;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print(const std::string& title) const {
  std::string s = ToString(title);
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string TablePrinter::FormatCount(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int seen = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (seen && seen % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++seen;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string TablePrinter::FormatMs(double ms) {
  char buf[64];
  if (ms < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f", ms);
  } else if (ms < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", ms);
  }
  return buf;
}

std::string TablePrinter::FormatSpeedup(double factor) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fx", factor);
  return buf;
}

std::string TablePrinter::FormatPercent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

}  // namespace gsi
