#ifndef GSI_OBS_CLOCK_H_
#define GSI_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

#include "gpusim/device.h"

namespace gsi::obs {

/// Injectable time source for trace spans (docs/OBSERVABILITY.md).
///
/// Everything on the *execution* path times itself against the simulated
/// device (DeviceCycleClock below), so span timestamps are a pure function
/// of the work performed and traces are bit-stable across runs — the same
/// determinism contract the bit-identical result checks make, extended to
/// telemetry. Only the serving layer, which measures real queueing, uses
/// host time (SteadyClockSource).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic nanoseconds since an arbitrary per-clock epoch.
  virtual uint64_t NowNanos() const = 0;
};

/// Reads the simulated-cycle counter of one device and converts it to
/// nanoseconds under the device's configured clock rate (1 cycle = 1 ns at
/// the default 1 GHz). Deterministic: the counter only advances when the
/// simulation charges work. The device must outlive the clock.
class DeviceCycleClock final : public Clock {
 public:
  explicit DeviceCycleClock(const gpusim::Device& dev) : dev_(&dev) {}

  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        static_cast<double>(dev_->stats().simulated_cycles) /
        dev_->config().clock_ghz);
  }

 private:
  const gpusim::Device* dev_;
};

/// Host wall clock, zeroed at construction. Used by QueryService for the
/// spans that measure real elapsed time (admission/queue wait); traces
/// containing these spans are NOT bit-stable, by design.
class SteadyClockSource final : public Clock {
 public:
  SteadyClockSource() : epoch_(std::chrono::steady_clock::now()) {}

  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Hand-advanced clock for tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(uint64_t now_ns = 0) : now_ns_(now_ns) {}

  uint64_t NowNanos() const override { return now_ns_; }
  void Advance(uint64_t delta_ns) { now_ns_ += delta_ns; }
  void Set(uint64_t now_ns) { now_ns_ = now_ns; }

 private:
  uint64_t now_ns_;
};

}  // namespace gsi::obs

#endif  // GSI_OBS_CLOCK_H_
