#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

namespace gsi::obs {
namespace {

/// Prometheus sample value: integral values render without a fraction
/// (counters stay readable), everything else as shortest round-trippable
/// decimal-ish "%.10g". Deterministic for a given double.
std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

std::string EscapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// `name{labels}` or bare `name`; `extra` (the `le` pair) is appended to
/// whatever labels the sample carries.
std::string SampleName(const std::string& name, const std::string& labels,
                       const std::string& extra = "") {
  std::string body = labels;
  if (!extra.empty()) body += body.empty() ? extra : "," + extra;
  if (body.empty()) return name;
  return name + "{" + body + "}";
}

const char* TypeName(MetricsSink::Type t) {
  switch (t) {
    case MetricsSink::Type::kCounter: return "counter";
    case MetricsSink::Type::kGauge: return "gauge";
    case MetricsSink::Type::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

size_t Counter::StripeIndex() {
  // One stripe per thread, fixed for the thread's lifetime: hashing the id
  // on every increment would cost more than the add itself.
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  return stripe;
}

Histogram::Histogram(std::vector<double> bounds) {
  for (double b : bounds)
    if (!std::isnan(b)) bounds_.push_back(b);
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

size_t Histogram::BucketFor(std::span<const double> bounds, double v) {
  // First bound with v <= bound. NaN needs the explicit check: lower_bound
  // with a NaN pivot sees every `bound < NaN` comparison as false and would
  // return bucket 0; the contract sends NaN to +Inf instead.
  if (std::isnan(v)) return bounds.size();
  size_t i =
      static_cast<size_t>(std::lower_bound(bounds.begin(), bounds.end(), v) -
                          bounds.begin());
  return i;
}

void Histogram::Observe(double v) {
  MutexLock lock(mu_);
  counts_[BucketFor(bounds_, v)] += 1;
  count_ += 1;
  sum_ += v;
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  MutexLock lock(mu_);
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  return snap;
}

void MetricsSink::AddCounter(std::string_view name, std::string_view help,
                             double value, std::string_view labels) {
  Sample s;
  s.labels = std::string(labels);
  s.value = value;
  Add(name, help, Type::kCounter, std::move(s));
}

void MetricsSink::AddGauge(std::string_view name, std::string_view help,
                           double value, std::string_view labels) {
  Sample s;
  s.labels = std::string(labels);
  s.value = value;
  Add(name, help, Type::kGauge, std::move(s));
}

void MetricsSink::AddHistogram(std::string_view name, std::string_view help,
                               const Histogram::Snapshot& snapshot,
                               std::string_view labels) {
  Sample s;
  s.labels = std::string(labels);
  s.histogram = snapshot;
  Add(name, help, Type::kHistogram, std::move(s));
}

void MetricsSink::Add(std::string_view name, std::string_view help,
                      Type type, Sample sample) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.help = std::string(help);
    family.type = type;
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  // Samples of one family must agree on type; a mismatched sample is
  // dropped rather than corrupting the exposition.
  if (it->second.type != type) return;
  it->second.samples.push_back(std::move(sample));
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  MutexLock lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.help = std::string(help);
    inst.type = MetricsSink::Type::kCounter;
    inst.counter = std::make_unique<Counter>();
    it = instruments_.emplace(std::string(name), std::move(inst)).first;
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  MutexLock lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.help = std::string(help);
    inst.type = MetricsSink::Type::kGauge;
    inst.gauge = std::make_unique<Gauge>();
    it = instruments_.emplace(std::string(name), std::move(inst)).first;
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.help = std::string(help);
    inst.type = MetricsSink::Type::kHistogram;
    inst.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = instruments_.emplace(std::string(name), std::move(inst)).first;
  }
  return it->second.histogram.get();
}

void MetricsRegistry::RegisterCollector(
    std::function<void(MetricsSink&)> collector) {
  MutexLock lock(mu_);
  collectors_.push_back(std::move(collector));
}

void MetricsRegistry::Collect(MetricsSink& sink) const {
  // Instruments are sampled under the registry lock; collectors run after
  // it is released — they take their own subsystem locks (service, pool,
  // cache) and must not nest under mu_.
  std::vector<std::function<void(MetricsSink&)>> collectors;
  {
    MutexLock lock(mu_);
    for (const auto& [name, inst] : instruments_) {
      switch (inst.type) {
        case MetricsSink::Type::kCounter:
          sink.AddCounter(name, inst.help,
                          static_cast<double>(inst.counter->Value()));
          break;
        case MetricsSink::Type::kGauge:
          sink.AddGauge(name, inst.help, inst.gauge->Value());
          break;
        case MetricsSink::Type::kHistogram:
          sink.AddHistogram(name, inst.help, inst.histogram->GetSnapshot());
          break;
      }
    }
    collectors = collectors_;
  }
  for (const auto& collector : collectors) collector(sink);
}

std::string MetricsRegistry::ExportPrometheus() const {
  MetricsSink sink;
  Collect(sink);

  std::string out;
  for (const auto& [name, family] : sink.families_) {
    out += "# HELP " + name + " " + EscapeHelp(family.help) + "\n";
    out += "# TYPE " + name + " " + TypeName(family.type) + "\n";
    for (const auto& sample : family.samples) {
      if (family.type != MetricsSink::Type::kHistogram) {
        out += SampleName(name, sample.labels) + " " +
               FormatValue(sample.value) + "\n";
        continue;
      }
      const Histogram::Snapshot& h = sample.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.bounds.size(); ++i) {
        cumulative += i < h.counts.size() ? h.counts[i] : 0;
        out += SampleName(name + "_bucket", sample.labels,
                          "le=\"" + FormatValue(h.bounds[i]) + "\"") +
               " " + std::to_string(cumulative) + "\n";
      }
      out += SampleName(name + "_bucket", sample.labels, "le=\"+Inf\"") +
             " " + std::to_string(h.count) + "\n";
      out += SampleName(name + "_sum", sample.labels) + " " +
             FormatValue(h.sum) + "\n";
      out += SampleName(name + "_count", sample.labels) + " " +
             std::to_string(h.count) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::DebugString() const {
  MetricsSink sink;
  Collect(sink);

  std::string out;
  for (const auto& [name, family] : sink.families_) {
    for (const auto& sample : family.samples) {
      if (family.type != MetricsSink::Type::kHistogram) {
        out += SampleName(name, sample.labels) + " = " +
               FormatValue(sample.value) + "\n";
        continue;
      }
      const Histogram::Snapshot& h = sample.histogram;
      out += SampleName(name, sample.labels) +
             " = count=" + std::to_string(h.count) +
             " sum=" + FormatValue(h.sum) + "\n";
    }
  }
  return out;
}

}  // namespace gsi::obs
