#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <map>
#include <numeric>

namespace gsi::obs {
namespace {

/// Minimal JSON string escaper (span names and attrs are ASCII
/// identifiers in practice; quotes/backslashes/control bytes are escaped
/// so arbitrary attr values stay loadable).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Nanoseconds as a microsecond decimal ("1234.567") — exact, so the
/// export is byte-stable wherever the timestamps are.
std::string NanosAsMicros(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  return buf;
}

std::string NanosAsMillis(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64, ns / 1000000,
                ns % 1000000);
  return buf;
}

uint64_t DurationNs(const TraceSpan& s) {
  return s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0;
}

/// Export order: by device track, then by open time, then by per-device
/// open order (`seq`, which breaks ties among zero-advance spans). This
/// erases the arrival-order nondeterminism of concurrent lanes.
std::vector<size_t> SortedIndices(const std::vector<TraceSpan>& spans) {
  std::vector<size_t> order(spans.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const TraceSpan& x = spans[a];
    const TraceSpan& y = spans[b];
    if (x.device != y.device) return x.device < y.device;
    if (x.start_ns != y.start_ns) return x.start_ns < y.start_ns;
    return x.seq < y.seq;
  });
  return order;
}

/// Earliest span start per device track: cycle counters accumulate across
/// queries on a long-lived device, so each track is re-zeroed at its own
/// first span on export.
std::map<int32_t, uint64_t> TrackBases(const std::vector<TraceSpan>& spans) {
  std::map<int32_t, uint64_t> base;
  for (const TraceSpan& s : spans) {
    auto [it, inserted] = base.emplace(s.device, s.start_ns);
    if (!inserted) it->second = std::min(it->second, s.start_ns);
  }
  return base;
}

}  // namespace

void ScopedSpan::AddAttr(std::string_view key, uint64_t value) {
  if (tracer_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  tracer_->AddAttr(index_, std::string(key), buf);
}

void ScopedSpan::AddAttr(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  tracer_->AddAttr(index_, std::string(key), buf);
}

int32_t Tracer::OpenSpan(std::string name, int32_t device, uint64_t start_ns,
                         int32_t parent) {
  MutexLock lock(mu_);
  TraceSpan span;
  span.name = std::move(name);
  span.device = device;
  span.start_ns = start_ns;
  span.parent = parent;
  size_t track = static_cast<size_t>(std::max(device, kHostDevice) + 1);
  if (next_seq_.size() <= track) next_seq_.resize(track + 1, 0);
  span.seq = next_seq_[track]++;
  spans_.push_back(std::move(span));
  return static_cast<int32_t>(spans_.size() - 1);
}

void Tracer::CloseSpan(int32_t index, uint64_t end_ns) {
  MutexLock lock(mu_);
  if (index >= 0 && static_cast<size_t>(index) < spans_.size())
    spans_[static_cast<size_t>(index)].end_ns = end_ns;
}

void Tracer::AddAttr(int32_t index, std::string key, std::string value) {
  MutexLock lock(mu_);
  if (index >= 0 && static_cast<size_t>(index) < spans_.size())
    spans_[static_cast<size_t>(index)].attrs.emplace_back(std::move(key),
                                                          std::move(value));
}

int32_t Tracer::RecordSpan(std::string name, int32_t device,
                           uint64_t start_ns, uint64_t end_ns,
                           int32_t parent) {
  int32_t index = OpenSpan(std::move(name), device, start_ns, parent);
  CloseSpan(index, end_ns);
  return index;
}

std::vector<TraceSpan> Tracer::Snapshot() const {
  MutexLock lock(mu_);
  return spans_;
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceSpan> spans = Snapshot();
  std::vector<size_t> order = SortedIndices(spans);
  std::map<int32_t, uint64_t> base = TrackBases(spans);

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto append_event = [&](const std::string& body) {
    if (!first) out += ",";
    first = false;
    out += "\n" + body;
  };

  // Named thread tracks: tid 0 is the host (service threads), tid k+1 is
  // simulated device k.
  for (const auto& [device, unused] : base) {
    (void)unused;
    char buf[160];
    if (device == kHostDevice) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                    "\"tid\":0,\"args\":{\"name\":\"host\"}}");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                    "\"tid\":%d,\"args\":{\"name\":\"device %d\"}}",
                    device + 1, device);
    }
    append_event(buf);
  }

  for (size_t i : order) {
    const TraceSpan& s = spans[i];
    std::string body = "{\"name\":\"" + JsonEscape(s.name) +
                       "\",\"ph\":\"X\",\"ts\":" +
                       NanosAsMicros(s.start_ns - base[s.device]) +
                       ",\"dur\":" + NanosAsMicros(DurationNs(s)) +
                       ",\"pid\":0,\"tid\":" +
                       std::to_string(s.device + 1) + ",\"args\":{";
    bool first_attr = true;
    for (const auto& [key, value] : s.attrs) {
      if (!first_attr) body += ",";
      first_attr = false;
      body += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    body += "}}";
    append_event(body);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string Tracer::ToTreeString() const {
  std::vector<TraceSpan> spans = Snapshot();
  std::vector<size_t> order = SortedIndices(spans);
  std::map<int32_t, uint64_t> base = TrackBases(spans);

  // Children in export order under each parent (and roots likewise).
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i : order) {
    int32_t p = spans[i].parent;
    if (p >= 0 && static_cast<size_t>(p) < spans.size())
      children[static_cast<size_t>(p)].push_back(i);
    else
      roots.push_back(i);
  }

  std::string out;
  auto emit = [&](auto&& self, size_t i, int depth) -> void {
    const TraceSpan& s = spans[i];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += "- " + s.name;
    out += s.device == kHostDevice
               ? " [host]"
               : " [dev " + std::to_string(s.device) + "]";
    out += " start=" + NanosAsMillis(s.start_ns - base[s.device]) + "ms";
    out += " dur=" + NanosAsMillis(DurationNs(s)) + "ms";
    for (const auto& [key, value] : s.attrs)
      out += " " + key + "=" + value;
    out += "\n";
    for (size_t c : children[i]) self(self, c, depth + 1);
  };
  for (size_t r : roots) emit(emit, r, 0);
  return out;
}

}  // namespace gsi::obs
