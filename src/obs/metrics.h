#ifndef GSI_OBS_METRICS_H_
#define GSI_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.h"
#include "util/sync.h"

namespace gsi::obs {

/// Process-wide metrics (docs/OBSERVABILITY.md): counters, gauges and
/// fixed-bucket histograms, collected into a MetricsRegistry that renders
/// Prometheus text exposition and a human DebugString snapshot.
///
/// Two ways for a subsystem to participate:
///  - own an instrument (counter/gauge/histogram) handed out by the
///    registry and update it on the hot path;
///  - register a pull *collector* that, at export time, snapshots an
///    existing stats struct (ServiceStats, DevicePool::Stats,
///    FilterCache::Stats, MemStats) and emits samples from it — no
///    duplicated state, and every sample of one collector comes from one
///    coherent snapshot.

/// Monotonic counter. Increment is lock-free and striped: each thread
/// hashes to one of a few cache-line-padded atomics, so concurrent worker
/// threads do not bounce a single line. Value() folds the stripes (reads
/// are racy-by-design snapshots, like any Prometheus scrape).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    stripes_[StripeIndex()].value.fetch_add(delta,
                                            std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_)
      total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };

  static size_t StripeIndex();

  std::array<Stripe, kStripes> stripes_;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: observation v
/// lands in the first bucket whose upper bound satisfies v <= bound, or in
/// the implicit +Inf bucket past the last bound.
class Histogram {
 public:
  /// `bounds` are ascending upper bounds (deduplicated, NaNs dropped).
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) GSI_EXCLUDES(mu_);

  struct Snapshot {
    std::vector<double> bounds;   ///< upper bounds, ascending
    std::vector<uint64_t> counts; ///< per-bucket (bounds.size() + 1, +Inf last)
    uint64_t count = 0;
    double sum = 0;
  };
  Snapshot GetSnapshot() const GSI_EXCLUDES(mu_);

  /// Bucket index for `v` under `bounds` (exposed for tests/util_test.cc;
  /// returns bounds.size() for the +Inf bucket, NaN lands there too).
  static size_t BucketFor(std::span<const double> bounds, double v);

 private:
  std::vector<double> bounds_;
  mutable Mutex mu_;
  std::vector<uint64_t> counts_ GSI_GUARDED_BY(mu_);
  uint64_t count_ GSI_GUARDED_BY(mu_) = 0;
  double sum_ GSI_GUARDED_BY(mu_) = 0;
};

/// Receives samples from pull collectors during one export. `labels` is
/// the Prometheus label body without braces (e.g. `device="2"`), empty for
/// none; samples of one family must agree on type.
class MetricsSink {
 public:
  void AddCounter(std::string_view name, std::string_view help, double value,
                  std::string_view labels = "");
  void AddGauge(std::string_view name, std::string_view help, double value,
                std::string_view labels = "");
  void AddHistogram(std::string_view name, std::string_view help,
                    const Histogram::Snapshot& snapshot,
                    std::string_view labels = "");

  enum class Type { kCounter, kGauge, kHistogram };

 private:
  friend class MetricsRegistry;
  struct Sample {
    std::string labels;
    double value = 0;
    Histogram::Snapshot histogram;  // kHistogram only
  };
  struct Family {
    std::string help;
    Type type = Type::kGauge;
    std::vector<Sample> samples;
  };

  void Add(std::string_view name, std::string_view help, Type type,
           Sample sample);

  /// Keyed by family name — export order is lexicographic, deterministic.
  std::map<std::string, Family, std::less<>> families_;
};

/// Owns instruments and collectors; renders the whole set. Thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get; the returned instrument lives as long as the registry
  /// and may be updated from any thread.
  Counter* GetCounter(std::string_view name, std::string_view help)
      GSI_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, std::string_view help)
      GSI_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds) GSI_EXCLUDES(mu_);

  /// Registers a pull collector invoked on every export. The collector
  /// must not call back into this registry (it receives a sink instead).
  void RegisterCollector(std::function<void(MetricsSink&)> collector)
      GSI_EXCLUDES(mu_);

  /// Prometheus text exposition (text/plain; version=0.0.4): families in
  /// lexicographic order, `# HELP`/`# TYPE` once per family, histogram as
  /// cumulative `_bucket{le=...}` plus `_sum`/`_count`.
  std::string ExportPrometheus() const GSI_EXCLUDES(mu_);

  /// One `name{labels} = value` line per sample — the debugging snapshot.
  std::string DebugString() const GSI_EXCLUDES(mu_);

 private:
  struct Instrument {
    std::string help;
    MetricsSink::Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  void Collect(MetricsSink& sink) const GSI_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Instrument, std::less<>> instruments_
      GSI_GUARDED_BY(mu_);
  std::vector<std::function<void(MetricsSink&)>> collectors_
      GSI_GUARDED_BY(mu_);
};

}  // namespace gsi::obs

#endif  // GSI_OBS_METRICS_H_
