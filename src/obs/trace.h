#ifndef GSI_OBS_TRACE_H_
#define GSI_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.h"
#include "util/annotations.h"
#include "util/sync.h"

namespace gsi::obs {

/// Track id used for spans that run on the host (service threads) rather
/// than on a simulated device.
inline constexpr int32_t kHostDevice = -1;

/// One timed region of a query's execution. `device` is the simulated
/// device (lane) the work ran on, kHostDevice for service-side spans.
/// Timestamps come from whatever Clock opened the span: device-cycle
/// clocks on the execution path (deterministic), the service steady clock
/// for queue wait. `seq` is the span's open order within its device track,
/// assigned by the tracer — per-device execution is sequential, so it is
/// deterministic even when lanes append to the tracer concurrently.
struct TraceSpan {
  std::string name;
  int32_t device = kHostDevice;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  int32_t parent = -1;  ///< index into the tracer's span list; -1 = root
  uint64_t seq = 0;     ///< open order within this span's device track
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer;

/// The propagation handle threaded through the execution stages. Copyable,
/// two words; `tracer == nullptr` means tracing is off and every ScopedSpan
/// built from the context is a branch-on-null no-op — the disabled-tracer
/// overhead the bench gate checks (<2%).
struct TraceContext {
  Tracer* tracer = nullptr;
  int32_t parent = -1;
  int32_t device = kHostDevice;

  bool enabled() const { return tracer != nullptr; }

  /// Same tracer and parent, spans attributed to `device` (a partition,
  /// shard or replica-lane ordinal).
  TraceContext OnDevice(int32_t dev) const { return {tracer, parent, dev}; }
};

/// Collects the span tree of one query. Thread-safe: replica lanes and
/// partition workers append concurrently. Arrival order in the internal
/// vector is nondeterministic under concurrency, so both exporters sort by
/// (device, start_ns, seq) — per-device open order — before emitting,
/// which makes the output byte-identical across runs when every span used
/// a cycle clock (tests/trace_test.cc asserts exactly that).
///
/// Device cycle counters accumulate across queries in a long-lived
/// service, so exporters re-zero each device track at its earliest span.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span; returns its index (stable for the tracer's lifetime).
  int32_t OpenSpan(std::string name, int32_t device, uint64_t start_ns,
                   int32_t parent) GSI_EXCLUDES(mu_);
  void CloseSpan(int32_t index, uint64_t end_ns) GSI_EXCLUDES(mu_);
  void AddAttr(int32_t index, std::string key, std::string value)
      GSI_EXCLUDES(mu_);

  /// Records an already-closed span (e.g. queue wait, whose start was
  /// stamped at submission before any tracer-side span existed).
  int32_t RecordSpan(std::string name, int32_t device, uint64_t start_ns,
                     uint64_t end_ns, int32_t parent) GSI_EXCLUDES(mu_);

  std::vector<TraceSpan> Snapshot() const GSI_EXCLUDES(mu_);

  /// Chrome trace_event JSON ("traceEvents" of complete events, ts/dur in
  /// microseconds; pid 0, tid = device + 1 with named thread tracks).
  /// Loadable in chrome://tracing and Perfetto. See docs/OBSERVABILITY.md
  /// for the exact schema.
  std::string ToChromeJson() const GSI_EXCLUDES(mu_);

  /// Human-readable indented tree (the bench `--trace` dump).
  std::string ToTreeString() const GSI_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<TraceSpan> spans_ GSI_GUARDED_BY(mu_);
  /// Next `seq` per device track, keyed by device + 1 (host track at 0).
  std::vector<uint64_t> next_seq_ GSI_GUARDED_BY(mu_);
};

/// RAII span: opens on construction with `clock.NowNanos()`, closes on
/// destruction. When the context's tracer is null every method is an
/// immediate return — keep call sites unconditional, the branch is the
/// whole cost. The clock must outlive the span.
class ScopedSpan {
 public:
  ScopedSpan(const TraceContext& ctx, std::string_view name,
             const Clock& clock)
      : ScopedSpan(ctx, name, clock, ctx.device) {}

  ScopedSpan(const TraceContext& ctx, std::string_view name,
             const Clock& clock, int32_t device) {
    if (ctx.tracer == nullptr) return;
    tracer_ = ctx.tracer;
    clock_ = &clock;
    device_ = device;
    index_ = tracer_->OpenSpan(std::string(name), device, clock.NowNanos(),
                               ctx.parent);
  }

  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->CloseSpan(index_, clock_->NowNanos());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Context for child spans (same device attribution).
  TraceContext context() const { return {tracer_, index_, device_}; }

  void AddAttr(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr)
      tracer_->AddAttr(index_, std::string(key), std::string(value));
  }
  void AddAttr(std::string_view key, uint64_t value);
  void AddAttr(std::string_view key, double value);

 private:
  Tracer* tracer_ = nullptr;
  const Clock* clock_ = nullptr;
  int32_t device_ = kHostDevice;
  int32_t index_ = -1;
};

}  // namespace gsi::obs

#endif  // GSI_OBS_TRACE_H_
