#ifndef GSI_GRAPH_DATASETS_H_
#define GSI_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gsi {

/// A named benchmark dataset: a synthetic stand-in for one of the paper's
/// graphs (Table III), with matching *shape* (graph type, label counts,
/// degree skew) at laptop scale. The scale factor multiplies vertex/edge
/// counts; scale=1.0 is the default benchmark size.
struct Dataset {
  std::string name;
  Graph graph;
  /// The paper's dataset this stands in for, e.g. "enron (69K/274K)".
  std::string paper_counterpart;
};

/// Names accepted by MakeDataset: "enron", "gowalla", "road", "watdiv",
/// "dbpedia". "watdiv" also accepts an explicit edge budget through
/// MakeWatDivLike for the Figure 13 scalability sweep.
std::vector<std::string> DatasetNames();

/// Builds the named dataset deterministically (fixed seeds).
Result<Dataset> MakeDataset(const std::string& name, double scale = 1.0);

/// WatDiv-like scale-free RDF graph with the benchmark's label profile
/// (|LV|=1K, |LE|=86); `num_vertices` scales the size, edges ~5x vertices.
/// Used by the Figure 13 scalability series (watdiv10M..100M analogue).
Result<Dataset> MakeWatDivLike(size_t num_vertices, uint64_t seed = 7);

}  // namespace gsi

#endif  // GSI_GRAPH_DATASETS_H_
