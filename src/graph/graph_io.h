#ifndef GSI_GRAPH_GRAPH_IO_H_
#define GSI_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace gsi {

/// Text format (one graph per file):
///   t <num_vertices> <num_edges>
///   v <id> <label>          (num_vertices lines)
///   e <src> <dst> <label>   (num_edges lines, undirected)
/// This is the common format of subgraph-matching benchmark suites.
Status SaveGraphText(const Graph& g, const std::string& path);

Result<Graph> LoadGraphText(const std::string& path);

/// Parses the same format from an in-memory string (used by tests).
Result<Graph> ParseGraphText(const std::string& text);

/// Serializes to the text format.
std::string GraphToText(const Graph& g);

}  // namespace gsi

#endif  // GSI_GRAPH_GRAPH_IO_H_
