#include "graph/graph_builder.h"

namespace gsi {

VertexId GraphBuilder::AddVertex(Label label) {
  labels_.push_back(label);
  return static_cast<VertexId>(labels_.size() - 1);
}

VertexId GraphBuilder::AddVertices(size_t count, Label label) {
  VertexId first = static_cast<VertexId>(labels_.size());
  labels_.insert(labels_.end(), count, label);
  return first;
}

void GraphBuilder::AddEdge(VertexId a, VertexId b, Label elabel) {
  edges_.push_back(EdgeRecord{a, b, elabel});
}

Result<Graph> GraphBuilder::Build() && {
  // Take the size first: argument evaluation order is unspecified, so
  // `labels_.size()` must not race with `std::move(labels_)`.
  size_t num_vertices = labels_.size();
  return Graph::Create(num_vertices, std::move(labels_),
                       std::move(edges_));
}

}  // namespace gsi
