#include "graph/datasets.h"

#include <cmath>

#include "graph/generators.h"
#include "graph/labeler.h"
#include "util/rng.h"

namespace gsi {
namespace {

Result<Dataset> MakeScaleFreeDataset(const std::string& name, size_t n,
                                     size_t edges_per_vertex,
                                     const LabelConfig& labels, uint64_t seed,
                                     const std::string& counterpart) {
  Rng rng(seed);
  // 3 super-hubs at ~7% of |V| each (the paper's real scale-free graphs
  // all have such extreme-degree vertices; gowalla maxdeg = 15% of |V|)
  // and triadic closure (real social/RDF graphs are clustered).
  std::vector<RawEdge> edges =
      GenerateScaleFree(n, edges_per_vertex, rng, /*num_hubs=*/3,
                        /*hub_fraction=*/0.07, /*triad_probability=*/0.35);
  Result<Graph> g = AssignLabels(n, edges, labels);
  if (!g.ok()) return g.status();
  return Dataset{name, std::move(g.value()), counterpart};
}

}  // namespace

std::vector<std::string> DatasetNames() {
  return {"enron", "gowalla", "road", "watdiv", "dbpedia"};
}

Result<Dataset> MakeDataset(const std::string& name, double scale) {
  if (scale <= 0) return Status::InvalidArgument("scale must be positive");
  auto sz = [scale](size_t base) {
    return std::max<size_t>(64, static_cast<size_t>(base * scale));
  };

  if (name == "enron") {
    // Paper: 69K vertices / 274K edges, |LV|=10, |LE|=100, scale-free.
    LabelConfig lc{.num_vertex_labels = 10, .num_edge_labels = 25,
                   .alpha = 1.0, .seed = 11};
    return MakeScaleFreeDataset(name, sz(17000), 4, lc, 101,
                                "enron (69K/274K, LV=10, LE=100, rs)");
  }
  if (name == "gowalla") {
    // Paper: 196K / 1.9M, |LV|=100, |LE|=100, scale-free, maxdeg 29K.
    LabelConfig lc{.num_vertex_labels = 50, .num_edge_labels = 10,
                   .alpha = 1.0, .seed = 13};
    return MakeScaleFreeDataset(name, sz(25000), 8, lc, 103,
                                "gowalla (196K/1.9M, LV=100, LE=100, rs)");
  }
  if (name == "road") {
    // Paper: 14M / 16M, |LV|=1K, |LE|=1K, mesh-like, maxdeg 8. Label
    // counts are scaled with the graph so vertices-per-label stays in the
    // paper's regime (~14K vertices per label).
    size_t side = std::max<size_t>(
        8, static_cast<size_t>(220 * std::sqrt(scale)));
    std::vector<RawEdge> edges = GenerateMesh(side, side);
    LabelConfig lc{.num_vertex_labels = 4, .num_edge_labels = 6,
                   .alpha = 1.0, .seed = 17};
    Result<Graph> g = AssignLabels(side * side, edges, lc);
    if (!g.ok()) return g.status();
    return Dataset{name, std::move(g.value()),
                   "road_central (14M/16M, LV=1K, LE=1K, rm)"};
  }
  if (name == "watdiv") {
    // Paper: 10M / 109M, |LV|=1K, |LE|=86, synthetic scale-free RDF.
    // |LV| scaled to keep ~1K vertices per label.
    LabelConfig lc{.num_vertex_labels = 20, .num_edge_labels = 20,
                   .alpha = 1.0, .seed = 19};
    return MakeScaleFreeDataset(name, sz(22000), 5, lc, 107,
                                "WatDiv (10M/109M, LV=1K, LE=86, s)");
  }
  if (name == "dbpedia") {
    // Paper: 22M / 170M, |LV|=1K, |LE|=57K, scale-free, maxdeg 2.2M.
    // Label counts keep the paper's labels-per-entity ratio at this scale;
    // |LE| stays large relative to the others (DBpedia's defining trait).
    LabelConfig lc{.num_vertex_labels = 26, .num_edge_labels = 50,
                   .alpha = 1.1, .seed = 23};
    return MakeScaleFreeDataset(name, sz(26000), 6, lc, 109,
                                "DBpedia (22M/170M, LV=1K, LE=57K, rs)");
  }
  return Status::NotFound("unknown dataset: " + name);
}

Result<Dataset> MakeWatDivLike(size_t num_vertices, uint64_t seed) {
  Rng rng(seed);
  std::vector<RawEdge> edges =
      GenerateScaleFree(num_vertices, 5, rng, /*num_hubs=*/3,
                        /*hub_fraction=*/0.07);
  LabelConfig lc{.num_vertex_labels = 20, .num_edge_labels = 20,
                 .alpha = 1.0, .seed = seed + 1};
  Result<Graph> g = AssignLabels(num_vertices, edges, lc);
  if (!g.ok()) return g.status();
  return Dataset{"watdiv" + std::to_string(num_vertices / 1000) + "K",
                 std::move(g.value()), "WatDiv scalability series"};
}

}  // namespace gsi
