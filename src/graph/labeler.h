#ifndef GSI_GRAPH_LABELER_H_
#define GSI_GRAPH_LABELER_H_

#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace gsi {

/// Parameters for power-law label assignment (Section VII-A: "we assign
/// labels following the power-law distribution").
struct LabelConfig {
  size_t num_vertex_labels = 100;
  size_t num_edge_labels = 100;
  /// Zipf exponent; ~1.0 reproduces the skew of real label distributions.
  double alpha = 1.0;
  uint64_t seed = 1;
};

/// Assigns power-law-distributed vertex and edge labels to a raw edge list
/// and builds the final Graph.
Result<Graph> AssignLabels(size_t num_vertices,
                           const std::vector<RawEdge>& edges,
                           const LabelConfig& config);

}  // namespace gsi

#endif  // GSI_GRAPH_LABELER_H_
