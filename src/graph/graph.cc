#include "graph/graph.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace gsi {
namespace {

std::string HumanCount(size_t v) {
  char buf[32];
  if (v >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(v) / 1e6);
  } else if (v >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(v) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", v);
  }
  return buf;
}

}  // namespace

Result<Graph> Graph::Create(size_t num_vertices,
                            std::vector<Label> vertex_labels,
                            std::vector<EdgeRecord> edges) {
  if (vertex_labels.size() != num_vertices) {
    return Status::InvalidArgument("vertex_labels size mismatch");
  }
  for (const EdgeRecord& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (e.src == e.dst) {
      return Status::InvalidArgument("self-loops are not supported");
    }
  }

  // Canonicalize (src < dst) and dedup exact duplicates.
  for (EdgeRecord& e : edges) {
    if (e.src > e.dst) std::swap(e.src, e.dst);
  }
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    return std::tie(a.src, a.dst, a.label) < std::tie(b.src, b.dst, b.label);
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.vertex_labels_ = std::move(vertex_labels);

  // Degree counting for CSR offsets (both directions).
  std::vector<uint64_t> degree(num_vertices, 0);
  for (const EdgeRecord& e : edges) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  g.offsets_.assign(num_vertices + 1, 0);
  for (size_t v = 0; v < num_vertices; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
    g.max_degree_ = std::max(g.max_degree_, static_cast<size_t>(degree[v]));
  }
  g.adj_.resize(g.offsets_[num_vertices]);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const EdgeRecord& e : edges) {
    g.adj_[cursor[e.src]++] = Neighbor{e.dst, e.label};
    g.adj_[cursor[e.dst]++] = Neighbor{e.src, e.label};
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    auto begin = g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]);
    auto end = g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end, [](const Neighbor& a, const Neighbor& b) {
      return std::tie(a.elabel, a.v) < std::tie(b.elabel, b.v);
    });
  }

  // Label statistics.
  std::vector<Label> ef;
  ef.reserve(edges.size());
  for (const EdgeRecord& e : edges) ef.push_back(e.label);
  std::sort(ef.begin(), ef.end());
  // Compress to (label, count).
  std::vector<std::pair<Label, uint32_t>> efreq;
  for (Label l : ef) {
    if (!efreq.empty() && efreq.back().first == l) {
      ++efreq.back().second;
    } else {
      efreq.push_back({l, 1});
    }
  }
  g.edge_label_freq_ = std::move(efreq);
  g.edge_labels_.reserve(g.edge_label_freq_.size());
  for (const auto& [label, count] : g.edge_label_freq_) {
    (void)count;
    g.edge_labels_.push_back(label);
  }

  std::vector<Label> vl = g.vertex_labels_;
  std::sort(vl.begin(), vl.end());
  for (Label l : vl) {
    if (!g.vertex_label_freq_.empty() &&
        g.vertex_label_freq_.back().first == l) {
      ++g.vertex_label_freq_.back().second;
    } else {
      g.vertex_label_freq_.push_back({l, 1});
    }
  }
  return g;
}

std::span<const Neighbor> Graph::NeighborsWithLabel(VertexId v,
                                                    Label l) const {
  std::span<const Neighbor> all = neighbors(v);
  auto lo = std::lower_bound(
      all.begin(), all.end(), l,
      [](const Neighbor& n, Label lab) { return n.elabel < lab; });
  auto hi = std::upper_bound(
      all.begin(), all.end(), l,
      [](Label lab, const Neighbor& n) { return lab < n.elabel; });
  return {&*lo, static_cast<size_t>(hi - lo)};
}

bool Graph::HasEdge(VertexId a, VertexId b, Label l) const {
  // Probe the smaller adjacency list.
  if (degree(a) > degree(b)) std::swap(a, b);
  std::span<const Neighbor> with_l = NeighborsWithLabel(a, l);
  return std::binary_search(
      with_l.begin(), with_l.end(), Neighbor{b, l},
      [](const Neighbor& x, const Neighbor& y) { return x.v < y.v; });
}

bool Graph::HasAnyEdge(VertexId a, VertexId b) const {
  if (degree(a) > degree(b)) std::swap(a, b);
  for (const Neighbor& n : neighbors(a)) {
    if (n.v == b) return true;
  }
  return false;
}

size_t Graph::EdgeLabelFrequency(Label l) const {
  auto it = std::lower_bound(
      edge_label_freq_.begin(), edge_label_freq_.end(), l,
      [](const auto& p, Label lab) { return p.first < lab; });
  if (it == edge_label_freq_.end() || it->first != l) return 0;
  return it->second;
}

size_t Graph::VertexLabelFrequency(Label l) const {
  auto it = std::lower_bound(
      vertex_label_freq_.begin(), vertex_label_freq_.end(), l,
      [](const auto& p, Label lab) { return p.first < lab; });
  if (it == vertex_label_freq_.end() || it->first != l) return 0;
  return it->second;
}

std::vector<EdgeRecord> Graph::UndirectedEdges() const {
  std::vector<EdgeRecord> out;
  out.reserve(num_edges());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (const Neighbor& n : neighbors(v)) {
      if (v < n.v) out.push_back(EdgeRecord{v, n.v, n.elabel});
    }
  }
  return out;
}

bool Graph::IsConnected() const {
  if (num_vertices() == 0) return true;
  std::vector<bool> seen(num_vertices(), false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (const Neighbor& n : neighbors(v)) {
      if (!seen[n.v]) {
        seen[n.v] = true;
        ++count;
        stack.push_back(n.v);
      }
    }
  }
  return count == num_vertices();
}

std::string Graph::Summary() const {
  std::string out = "|V|=" + HumanCount(num_vertices());
  out += " |E|=" + HumanCount(num_edges());
  out += " |LV|=" + HumanCount(num_vertex_labels());
  out += " |LE|=" + HumanCount(num_edge_labels());
  out += " maxdeg=" + HumanCount(max_degree_);
  return out;
}

}  // namespace gsi
