#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace gsi {
namespace {

uint64_t EdgeKey(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

std::vector<RawEdge> GenerateErdosRenyi(size_t n, size_t m, Rng& rng) {
  GSI_CHECK(n >= 2);
  // Cap m at the number of distinct pairs (for tiny n in tests).
  uint64_t max_m = static_cast<uint64_t>(n) * (n - 1) / 2;
  if (m > max_m) m = max_m;
  std::unordered_set<uint64_t> seen;
  std::vector<RawEdge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a == b) continue;
    if (!seen.insert(EdgeKey(a, b)).second) continue;
    edges.push_back(RawEdge{a, b});
  }
  return edges;
}

std::vector<RawEdge> GenerateScaleFree(size_t n, size_t edges_per_vertex,
                                       Rng& rng, size_t num_hubs,
                                       double hub_fraction,
                                       double triad_probability) {
  GSI_CHECK(n >= 2);
  GSI_CHECK(edges_per_vertex >= 1);
  // Endpoint pool: every edge contributes both endpoints, so sampling
  // uniformly from the pool is sampling proportionally to degree.
  std::vector<VertexId> pool;
  pool.reserve(2 * n * edges_per_vertex);
  std::vector<RawEdge> edges;
  edges.reserve(n * edges_per_vertex);
  std::unordered_set<uint64_t> seen;
  // Adjacency kept only for triad formation.
  std::vector<std::vector<VertexId>> adj(triad_probability > 0 ? n : 0);

  auto add_edge = [&](VertexId a, VertexId b) {
    edges.push_back(RawEdge{a, b});
    pool.push_back(a);
    pool.push_back(b);
    if (!adj.empty()) {
      adj[a].push_back(b);
      adj[b].push_back(a);
    }
  };

  // Seed: a small clique among the first vertices.
  size_t seed_size = std::min<size_t>(n, edges_per_vertex + 1);
  for (VertexId a = 0; a < seed_size; ++a) {
    for (VertexId b = a + 1; b < seed_size; ++b) {
      seen.insert(EdgeKey(a, b));
      add_edge(a, b);
    }
  }

  for (VertexId v = static_cast<VertexId>(seed_size); v < n; ++v) {
    size_t added = 0;
    size_t attempts = 0;
    while (added < edges_per_vertex && attempts < 32 * edges_per_vertex) {
      ++attempts;
      VertexId target = pool[rng.NextBounded(pool.size())];
      if (target == v) continue;
      if (!seen.insert(EdgeKey(v, target)).second) continue;
      add_edge(v, target);
      ++added;
      // Triad formation (Holme-Kim): additionally close a triangle through
      // one of target's neighbours. Does not consume the attachment
      // budget, so triad_probability directly raises clustering.
      if (!adj.empty() && rng.NextBool(triad_probability) &&
          !adj[target].empty()) {
        VertexId w = adj[target][rng.NextBounded(adj[target].size())];
        if (w != v && seen.insert(EdgeKey(v, w)).second) {
          add_edge(v, w);
        }
      }
    }
  }

  // Super-hubs: a few vertices adjacent to a constant fraction of the
  // graph, reproducing the real datasets' extreme max degrees.
  size_t hub_targets = static_cast<size_t>(hub_fraction *
                                           static_cast<double>(n));
  for (size_t h = 0; h < num_hubs && hub_targets > 0; ++h) {
    VertexId hub = static_cast<VertexId>(rng.NextBounded(n));
    for (size_t t = 0; t < hub_targets; ++t) {
      VertexId target = static_cast<VertexId>(rng.NextBounded(n));
      if (target == hub) continue;
      if (!seen.insert(EdgeKey(hub, target)).second) continue;
      edges.push_back(RawEdge{hub, target});
    }
  }
  return edges;
}

std::vector<RawEdge> GenerateMesh(size_t rows, size_t cols) {
  GSI_CHECK(rows >= 1 && cols >= 1);
  std::vector<RawEdge> edges;
  edges.reserve(2 * rows * cols);
  auto id = [cols](size_t r, size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(RawEdge{id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back(RawEdge{id(r, c), id(r + 1, c)});
    }
  }
  return edges;
}

std::vector<VertexId> PlantCommunities(size_t n, size_t count, size_t size,
                                       std::vector<RawEdge>& edges,
                                       Rng& rng) {
  GSI_CHECK(size >= 2 && size <= n);
  std::vector<VertexId> seeds;
  seeds.reserve(count);
  for (size_t c = 0; c < count; ++c) {
    std::unordered_set<VertexId> members;
    while (members.size() < size) {
      members.insert(static_cast<VertexId>(rng.NextBounded(n)));
    }
    std::vector<VertexId> ms(members.begin(), members.end());
    seeds.push_back(ms[0]);
    for (size_t i = 0; i < ms.size(); ++i) {
      for (size_t j = i + 1; j < ms.size(); ++j) {
        edges.push_back(RawEdge{ms[i], ms[j]});
      }
    }
  }
  return seeds;
}

std::vector<size_t> DegreesOf(size_t n, const std::vector<RawEdge>& edges) {
  std::vector<size_t> deg(n, 0);
  for (const RawEdge& e : edges) {
    ++deg[e.src];
    ++deg[e.dst];
  }
  return deg;
}

}  // namespace gsi
