#include "graph/query_generator.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>

namespace gsi {

Result<Graph> GenerateRandomWalkQuery(const Graph& data,
                                      const QueryGenConfig& config,
                                      Rng& rng) {
  if (config.num_vertices < 2) {
    return Status::InvalidArgument("query needs at least 2 vertices");
  }
  if (data.num_vertices() == 0) {
    return Status::InvalidArgument("empty data graph");
  }

  // Random walk collecting distinct vertices and traversed edges.
  std::unordered_map<VertexId, VertexId> remap;  // data id -> query id
  std::vector<VertexId> visited;                 // query id -> data id
  std::vector<EdgeRecord> edges;                 // in query ids

  VertexId start =
      config.start_vertex != kInvalidVertex
          ? config.start_vertex
          : static_cast<VertexId>(rng.NextBounded(data.num_vertices()));
  if (start >= data.num_vertices()) {
    return Status::InvalidArgument("start vertex out of range");
  }
  if (data.degree(start) == 0) {
    return Status::NotFound("walk started on isolated vertex");
  }
  remap[start] = 0;
  visited.push_back(start);

  VertexId cur = start;
  size_t stuck = 0;
  const size_t kMaxStuck = 64 * config.num_vertices;
  while (visited.size() < config.num_vertices && stuck < kMaxStuck) {
    if (visited.size() > 1 && rng.NextBool(config.revisit_probability)) {
      cur = visited[rng.NextBounded(visited.size())];
    }
    std::span<const Neighbor> nbrs = data.neighbors(cur);
    const Neighbor& step = nbrs[rng.NextBounded(nbrs.size())];
    auto [it, inserted] =
        remap.try_emplace(step.v, static_cast<VertexId>(visited.size()));
    // Record every traversed edge ("all visited vertices and edges form a
    // query graph"); Graph::Create dedups.
    edges.push_back(EdgeRecord{remap[cur], it->second, step.elabel});
    if (inserted) {
      visited.push_back(step.v);
      stuck = 0;
    } else {
      ++stuck;
    }
    cur = step.v;
    // Occasionally teleport to a visited vertex to escape dead ends.
    if (stuck > 0 && stuck % 16 == 0) {
      cur = visited[rng.NextBounded(visited.size())];
    }
  }
  if (visited.size() < config.num_vertices) {
    return Status::NotFound("random walk could not reach enough vertices");
  }

  // Vertex labels copied from the data graph.
  std::vector<Label> labels(visited.size());
  for (size_t i = 0; i < visited.size(); ++i) {
    labels[i] = data.vertex_label(visited[i]);
  }

  // Dedup traversed edges so the |E(Q)| target compares against distinct
  // edges (the walk records every step, including revisits).
  {
    auto canon = [](EdgeRecord e) {
      if (e.src > e.dst) std::swap(e.src, e.dst);
      return e;
    };
    for (EdgeRecord& e : edges) e = canon(e);
    std::sort(edges.begin(), edges.end(),
              [](const EdgeRecord& a, const EdgeRecord& b) {
                return std::tie(a.src, a.dst, a.label) <
                       std::tie(b.src, b.dst, b.label);
              });
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  // Optionally densify: add data edges between visited vertices until the
  // requested |E(Q)| (Figure 15 varies |E(Q)| at fixed |V(Q)|).
  if (config.num_edges > edges.size()) {
    // Collect candidate extra edges from the induced subgraph.
    std::vector<EdgeRecord> extra;
    for (size_t i = 0; i < visited.size(); ++i) {
      for (const Neighbor& n : data.neighbors(visited[i])) {
        auto it = remap.find(n.v);
        if (it == remap.end()) continue;
        VertexId qa = static_cast<VertexId>(i);
        VertexId qb = it->second;
        if (qa >= qb) continue;
        extra.push_back(EdgeRecord{qa, qb, n.elabel});
      }
    }
    // Shuffle and append non-duplicates.
    for (size_t i = extra.size(); i > 1; --i) {
      std::swap(extra[i - 1], extra[rng.NextBounded(i)]);
    }
    auto canon = [](EdgeRecord e) {
      if (e.src > e.dst) std::swap(e.src, e.dst);
      return e;
    };
    std::vector<EdgeRecord> have;
    have.reserve(edges.size());
    for (const EdgeRecord& e : edges) have.push_back(canon(e));
    for (const EdgeRecord& e : extra) {
      if (edges.size() >= config.num_edges) break;
      EdgeRecord c = canon(e);
      if (std::find(have.begin(), have.end(), c) != have.end()) continue;
      have.push_back(c);
      edges.push_back(c);
    }
  }

  return Graph::Create(visited.size(), std::move(labels), std::move(edges));
}

std::vector<Graph> GenerateQuerySet(const Graph& data,
                                    const QueryGenConfig& config,
                                    size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Graph> out;
  out.reserve(count);
  size_t failures = 0;
  const size_t kMaxFailures = 32 * count + 64;
  while (out.size() < count && failures < kMaxFailures) {
    Result<Graph> q = GenerateRandomWalkQuery(data, config, rng);
    if (q.ok()) {
      out.push_back(std::move(q.value()));
    } else {
      ++failures;
    }
  }
  return out;
}

}  // namespace gsi
