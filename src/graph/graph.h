#ifndef GSI_GRAPH_GRAPH_H_
#define GSI_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace gsi {

/// One undirected edge with a label (Definition 1).
struct EdgeRecord {
  VertexId src;
  VertexId dst;
  Label label;

  friend bool operator==(const EdgeRecord&, const EdgeRecord&) = default;
};

/// An adjacency entry: neighbour vertex plus the connecting edge's label.
struct Neighbor {
  VertexId v;
  Label elabel;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Immutable vertex- and edge-labeled undirected graph (Definition 1).
///
/// Adjacency lists are stored CSR-style host-side and sorted by
/// (edge label, neighbour id) so that N(v, l) — "neighbors of v with edge
/// label l", the paper's core primitive — is a contiguous subrange.
///
/// Parallel edges with *different* labels between the same vertex pair are
/// allowed (RDF graphs like DBpedia have them); exact duplicate edges are
/// removed. Self-loops are rejected.
class Graph {
 public:
  Graph() = default;

  /// Validates and builds a graph. Fails on out-of-range endpoints or
  /// self-loops. `edges` are undirected (each inserted in both directions).
  static Result<Graph> Create(size_t num_vertices,
                              std::vector<Label> vertex_labels,
                              std::vector<EdgeRecord> edges);

  size_t num_vertices() const { return vertex_labels_.size(); }
  /// Number of undirected edges.
  size_t num_edges() const { return adj_.size() / 2; }

  Label vertex_label(VertexId v) const { return vertex_labels_[v]; }
  std::span<const Label> vertex_labels() const { return vertex_labels_; }

  /// All neighbours of v, sorted by (edge label, neighbour id).
  std::span<const Neighbor> neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// N(v, l): neighbours of v over edges labeled l (contiguous subrange).
  std::span<const Neighbor> NeighborsWithLabel(VertexId v, Label l) const;

  size_t degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }
  size_t max_degree() const { return max_degree_; }

  /// True iff the undirected edge (a, b) with label l exists.
  bool HasEdge(VertexId a, VertexId b, Label l) const;
  /// True iff any edge between a and b exists.
  bool HasAnyEdge(VertexId a, VertexId b) const;

  /// Number of distinct vertex labels present.
  size_t num_vertex_labels() const { return vertex_label_freq_.size(); }
  /// Number of distinct edge labels present.
  size_t num_edge_labels() const { return edge_label_freq_.size(); }

  /// freq(l): number of undirected edges carrying label l (0 if unused).
  /// Used by Algorithm 2 (join-order scoring) and Algorithm 4 (first-edge
  /// selection).
  size_t EdgeLabelFrequency(Label l) const;
  /// Number of vertices carrying label l.
  size_t VertexLabelFrequency(Label l) const;

  /// Distinct edge labels, ascending.
  std::span<const Label> edge_labels() const { return edge_labels_; }

  /// The undirected edge list (each edge once, src < dst).
  std::vector<EdgeRecord> UndirectedEdges() const;

  /// True iff the graph is connected (the paper assumes connected queries).
  bool IsConnected() const;

  /// One-line summary like "|V|=196K |E|=1.9M |LV|=100 |LE|=100 maxdeg=29K".
  std::string Summary() const;

 private:
  std::vector<Label> vertex_labels_;
  std::vector<uint64_t> offsets_;  // size num_vertices + 1
  std::vector<Neighbor> adj_;      // both directions
  std::vector<Label> edge_labels_;
  std::vector<std::pair<Label, uint32_t>> edge_label_freq_;    // sorted
  std::vector<std::pair<Label, uint32_t>> vertex_label_freq_;  // sorted
  size_t max_degree_ = 0;
};

}  // namespace gsi

#endif  // GSI_GRAPH_GRAPH_H_
