#ifndef GSI_GRAPH_QUERY_GENERATOR_H_
#define GSI_GRAPH_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace gsi {

/// Query-graph generator parameters (Section VII-A: "we perform the random
/// walk over the data graph G starting from a randomly selected vertex until
/// |V(Q)| vertices are visited. All visited vertices and edges (including
/// the labels) form a query graph").
struct QueryGenConfig {
  size_t num_vertices = 12;  // the paper's default |V(Q)|
  /// Target edge count. 0 keeps exactly the walked edges; a larger value
  /// adds extra data-graph edges between visited vertices (used by
  /// Figure 15's |E(Q)| sweep). The achieved count may be lower if the
  /// induced subgraph has no more edges.
  size_t num_edges = 0;
  /// Probability of continuing the walk from a random already-visited
  /// vertex instead of the current one. Keeps the walk inside a
  /// neighbourhood, so the visited set induces a denser query.
  double revisit_probability = 0.25;
  /// Fixed walk start (kInvalidVertex = random). Used to target dense
  /// regions, e.g. planted communities.
  VertexId start_vertex = kInvalidVertex;
};

/// Generates one connected query graph by random walk over `data`. Because
/// the query's vertices and edges are copied from G, every generated query
/// has at least one match (the walk itself). Returns the query with vertices
/// renumbered 0..|V(Q)|-1, labels preserved.
///
/// Fails only if the walk cannot reach `num_vertices` vertices (e.g. the
/// start component is too small); callers typically retry with the same rng.
Result<Graph> GenerateRandomWalkQuery(const Graph& data,
                                      const QueryGenConfig& config, Rng& rng);

/// Generates `count` queries, retrying failed walks; gives up on a walk
/// after a bounded number of attempts (then returns fewer).
std::vector<Graph> GenerateQuerySet(const Graph& data,
                                    const QueryGenConfig& config,
                                    size_t count, uint64_t seed);

}  // namespace gsi

#endif  // GSI_GRAPH_QUERY_GENERATOR_H_
