#include "graph/labeler.h"

namespace gsi {

Result<Graph> AssignLabels(size_t num_vertices,
                           const std::vector<RawEdge>& edges,
                           const LabelConfig& config) {
  if (config.num_vertex_labels == 0 || config.num_edge_labels == 0) {
    return Status::InvalidArgument("label counts must be positive");
  }
  ZipfSampler vlabels(config.num_vertex_labels, config.alpha,
                      config.seed * 2 + 1);
  ZipfSampler elabels(config.num_edge_labels, config.alpha,
                      config.seed * 2 + 2);

  std::vector<Label> labels(num_vertices);
  for (auto& l : labels) l = static_cast<Label>(vlabels.Sample());

  std::vector<EdgeRecord> labeled;
  labeled.reserve(edges.size());
  for (const RawEdge& e : edges) {
    labeled.push_back(
        EdgeRecord{e.src, e.dst, static_cast<Label>(elabels.Sample())});
  }
  return Graph::Create(num_vertices, std::move(labels), std::move(labeled));
}

}  // namespace gsi
