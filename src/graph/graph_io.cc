#include "graph/graph_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gsi {

std::string GraphToText(const Graph& g) {
  std::ostringstream out;
  std::vector<EdgeRecord> edges = g.UndirectedEdges();
  out << "t " << g.num_vertices() << " " << edges.size() << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << "v " << v << " " << g.vertex_label(v) << "\n";
  }
  for (const EdgeRecord& e : edges) {
    out << "e " << e.src << " " << e.dst << " " << e.label << "\n";
  }
  return out.str();
}

Status SaveGraphText(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for write: " + path);
  out << GraphToText(g);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<Graph> ParseGraphText(const std::string& text) {
  std::istringstream in(text);
  std::string tag;
  size_t n = 0;
  size_t m = 0;
  if (!(in >> tag >> n >> m) || tag != "t") {
    return Status::InvalidArgument("expected 't <n> <m>' header");
  }
  std::vector<Label> labels(n, kInvalidLabel);
  std::vector<char> seen(n, 0);
  std::vector<EdgeRecord> edges;
  edges.reserve(m);
  for (size_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    uint64_t label = 0;
    if (!(in >> tag >> id >> label) || tag != "v" || id >= n) {
      return Status::InvalidArgument("bad vertex line");
    }
    if (seen[id]) {
      return Status::InvalidArgument("duplicate vertex line for id " +
                                     std::to_string(id));
    }
    seen[id] = 1;
    labels[id] = static_cast<Label>(label);
  }
  for (size_t i = 0; i < m; ++i) {
    uint64_t a = 0;
    uint64_t b = 0;
    uint64_t label = 0;
    if (!(in >> tag >> a >> b >> label) || tag != "e") {
      return Status::InvalidArgument("bad edge line");
    }
    edges.push_back(EdgeRecord{static_cast<VertexId>(a),
                               static_cast<VertexId>(b),
                               static_cast<Label>(label)});
  }
  std::string rest;
  if (in >> rest) {
    return Status::InvalidArgument("trailing content after last edge: '" +
                                   rest + "'");
  }
  return Graph::Create(n, std::move(labels), std::move(edges));
}

Result<Graph> LoadGraphText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseGraphText(buf.str());
}

}  // namespace gsi
