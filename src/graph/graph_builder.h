#ifndef GSI_GRAPH_GRAPH_BUILDER_H_
#define GSI_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/common.h"
#include "util/status.h"

namespace gsi {

/// Incremental builder for Graph, convenient for tests and loaders.
///
///   GraphBuilder b;
///   VertexId a = b.AddVertex(/*label=*/0);
///   VertexId c = b.AddVertex(1);
///   b.AddEdge(a, c, /*edge label=*/5);
///   Graph g = std::move(b).Build().value();
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a vertex with the given label; returns its id (ids are dense,
  /// assigned in insertion order).
  VertexId AddVertex(Label label);

  /// Adds `count` vertices all carrying `label`; returns the first id.
  VertexId AddVertices(size_t count, Label label);

  /// Adds an undirected labeled edge. Endpoints must already exist when
  /// Build() runs; duplicates are removed by Build().
  void AddEdge(VertexId a, VertexId b, Label elabel);

  size_t num_vertices() const { return labels_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Validates and produces the immutable graph.
  Result<Graph> Build() &&;

 private:
  std::vector<Label> labels_;
  std::vector<EdgeRecord> edges_;
};

}  // namespace gsi

#endif  // GSI_GRAPH_GRAPH_BUILDER_H_
