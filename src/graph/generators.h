#ifndef GSI_GRAPH_GENERATORS_H_
#define GSI_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"
#include "util/rng.h"

namespace gsi {

/// Unlabeled undirected edge (generator output before label assignment).
struct RawEdge {
  VertexId src;
  VertexId dst;
};

/// Erdős–Rényi-style G(n, m): m distinct random edges.
std::vector<RawEdge> GenerateErdosRenyi(size_t n, size_t m, Rng& rng);

/// Scale-free graph via preferential attachment: vertices arrive one by one
/// and connect `edges_per_vertex` times to targets sampled proportionally to
/// degree. Produces the heavy-tailed degree distribution of the paper's
/// "rs"-type datasets (enron, gowalla, DBpedia, WatDiv).
///
/// `num_hubs` / `hub_fraction` optionally add super-hubs each adjacent to a
/// `hub_fraction` share of all vertices. The paper's real graphs have such
/// hubs (gowalla max degree is 15% of |V|, DBpedia 10%); they are what
/// makes the load-balance scheme matter.
///
/// `triad_probability` adds triangle closure (Holme-Kim triad formation):
/// after attaching to a target, the new vertex also connects to one of the
/// target's neighbours with this probability. Real social networks are
/// strongly clustered; plain preferential attachment is not.
std::vector<RawEdge> GenerateScaleFree(size_t n, size_t edges_per_vertex,
                                       Rng& rng, size_t num_hubs = 0,
                                       double hub_fraction = 0.0,
                                       double triad_probability = 0.0);

/// 2-D mesh (grid) of rows x cols vertices — the "rm" (mesh-like) shape of
/// the road_central dataset: tiny uniform degrees.
std::vector<RawEdge> GenerateMesh(size_t rows, size_t cols);

/// Plants `count` near-clique communities of `size` random vertices each,
/// appending their edges to `edges` (deduplicated against themselves, not
/// against `edges`; Graph::Create dedups globally). Returns one member
/// vertex per planted community. Real social networks have such dense
/// communities; they give query workloads with high edge counts
/// (Figure 15's |E(Q)| sweep).
std::vector<VertexId> PlantCommunities(size_t n, size_t count, size_t size,
                                       std::vector<RawEdge>& edges,
                                       Rng& rng);

/// Degree histogram helpers used by tests and dataset summaries.
std::vector<size_t> DegreesOf(size_t n, const std::vector<RawEdge>& edges);

}  // namespace gsi

#endif  // GSI_GRAPH_GENERATORS_H_
