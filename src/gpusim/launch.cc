#include "gpusim/launch.h"

#include <algorithm>
#include <queue>

namespace gsi::gpusim {

Block::Block(Device* dev, size_t block_id, size_t num_warps,
             size_t first_warp_global_id)
    : dev_(dev), id_(block_id), shared_(dev->config().shared_memory_bytes) {
  warps_.reserve(num_warps);
  for (size_t i = 0; i < num_warps; ++i) {
    warps_.emplace_back(dev, &shared_, first_warp_global_id + i, block_id, i);
  }
}

uint64_t Block::MaxWarpCycles() const {
  uint64_t m = 0;
  for (const auto& w : warps_) m = std::max(m, w.cycles());
  return m;
}

uint64_t Block::TotalWarpCycles() const {
  uint64_t s = 0;
  for (const auto& w : warps_) s += w.cycles();
  return s;
}

ScheduleResult ScheduleBlocks(const DeviceConfig& config,
                              std::span<const uint64_t> block_costs) {
  ScheduleResult result;
  // Min-heap of SM finish times; blocks dispatched in launch order to the
  // SM that frees up first (how the hardware block scheduler behaves).
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> sms;
  for (int i = 0; i < config.num_sms; ++i) sms.push(0);
  uint64_t makespan = 0;
  for (uint64_t cost : block_costs) {
    uint64_t load = sms.top();
    sms.pop();
    load += cost;
    makespan = std::max(makespan, load);
    sms.push(load);
    result.total_block_cycles += cost;
  }
  result.makespan_cycles = makespan;
  return result;
}

namespace {

uint64_t BlockCost(const DeviceConfig& config, const Block& block) {
  uint64_t slots = static_cast<uint64_t>(config.warp_slots_per_sm);
  uint64_t overlap = (block.TotalWarpCycles() + slots - 1) / slots;
  return std::max(block.MaxWarpCycles(), overlap);
}

void FinishKernel(Device& dev, std::span<const uint64_t> block_costs) {
  ScheduleResult sched = ScheduleBlocks(dev.config(), block_costs);
  dev.stats().kernel_launches += 1;
  dev.stats().simulated_cycles +=
      sched.makespan_cycles + dev.config().kernel_launch_cycles;
  // Kernel completion is a fault-trigger point: an armed FaultPlan trips
  // here deterministically (the counters are a pure function of the work).
  dev.CheckFaultTriggers();
}

}  // namespace

void Launch(Device& dev, size_t num_warps,
            const std::function<void(Warp&)>& body) {
  size_t wpb = static_cast<size_t>(dev.config().warps_per_block);
  size_t num_blocks = (num_warps + wpb - 1) / wpb;
  std::vector<uint64_t> block_costs;
  block_costs.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    size_t first = b * wpb;
    size_t count = std::min(wpb, num_warps - first);
    Block block(&dev, b, count, first);
    for (size_t i = 0; i < count; ++i) body(block.warp(i));
    block_costs.push_back(BlockCost(dev.config(), block));
  }
  FinishKernel(dev, block_costs);
}

void LaunchBlocks(Device& dev, size_t num_blocks,
                  const std::function<void(Block&)>& body) {
  size_t wpb = static_cast<size_t>(dev.config().warps_per_block);
  std::vector<uint64_t> block_costs;
  block_costs.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    Block block(&dev, b, wpb, b * wpb);
    body(block);
    block_costs.push_back(BlockCost(dev.config(), block));
  }
  FinishKernel(dev, block_costs);
}

}  // namespace gsi::gpusim
