#ifndef GSI_GPUSIM_GPUSIM_H_
#define GSI_GPUSIM_GPUSIM_H_

#include <cstdint>

namespace gsi::gpusim {

/// Number of lanes in a warp (fixed by the CUDA architecture the paper
/// targets; Section II-B).
inline constexpr int kWarpSize = 32;

/// Width of a global-memory transaction in bytes. "Access to global memory
/// is done through 128B-size transactions" (Section II-B). PCSR group size
/// and the write cache are both built around this constant.
inline constexpr uint64_t kTransactionBytes = 128;

/// Architectural parameters of the simulated device. Defaults model the
/// paper's Titan XP: 30 SMs, 48KB shared memory per SM, 1024-thread blocks.
struct DeviceConfig {
  /// Number of streaming multiprocessors.
  int num_sms = 30;
  /// Warp slots that make progress concurrently per SM. Controls how much a
  /// block's total work can be overlapped; the paper's load-balance findings
  /// only need "several warps run concurrently per SM".
  int warp_slots_per_sm = 4;
  /// Shared-memory capacity per block (bytes).
  uint64_t shared_memory_bytes = 48 * 1024;
  /// Warps per block: 32 warps = 1024 threads, the block size used in the
  /// paper's load-balance tuning (W2 = 1024).
  int warps_per_block = 32;

  // --- Cost model (cycles). Only ratios matter for reproduced shapes. ---
  /// Latency charged per 128B global-memory transaction ("hundreds of times
  /// longer than access to shared memory", Section II-B).
  uint64_t global_transaction_cycles = 300;
  /// Cost per shared-memory access.
  uint64_t shared_access_cycles = 2;
  /// Cost per ALU operation (comparison, hash step, ...).
  uint64_t alu_cycles = 1;
  /// Fixed overhead per kernel launch (~2us at 1 GHz); makes the naive
  /// one-kernel-per-set-op baseline (Section V, "GPU-friendly Set
  /// Operation") measurably bad.
  uint64_t kernel_launch_cycles = 2000;
  /// Extra latency per 128B line read from a *peer* device's memory over
  /// the interconnect (the remote-probe cost of the partitioned data
  /// graph; Section VIII's memory-capacity discussion). Charged on top of
  /// global_transaction_cycles, so the default models a peer read at 3x a
  /// local one — the HBM-vs-NVLink bandwidth ratio of the paper's era.
  uint64_t remote_transaction_extra_cycles = 600;
  /// Simulated clock in GHz used to convert cycles to milliseconds.
  double clock_ghz = 1.0;

  friend bool operator==(const DeviceConfig&, const DeviceConfig&) = default;
};

/// Counters accumulated by a Device across kernel launches.
///
/// `gld` / `gst` are exactly the paper's "Global Memory Load/Store
/// Transactions" metrics (Tables VI, VII, XI). `simulated_cycles` is the
/// makespan of the block schedule over SMs, converted to ms for the
/// query-response-time columns.
struct MemStats {
  uint64_t gld = 0;              ///< global-memory load transactions
  uint64_t gst = 0;              ///< global-memory store transactions
  uint64_t shared_accesses = 0;  ///< shared-memory accesses
  uint64_t alu_ops = 0;          ///< ALU operations
  uint64_t kernel_launches = 0;  ///< number of kernels launched
  /// 128B lines that crossed the device interconnect (remote probes into a
  /// peer partition's PCSR/signature share, halo gathers). Disjoint from
  /// gld/gst accounting-wise: a remote probe charges its reads as gld AND
  /// records the same lines here with the interconnect premium.
  uint64_t remote_transactions = 0;
  uint64_t simulated_cycles = 0; ///< sum of per-kernel makespans

  /// Simulated wall time in milliseconds under `clock_ghz`.
  double SimulatedMs(const DeviceConfig& config) const {
    return static_cast<double>(simulated_cycles) /
           (config.clock_ghz * 1e6);
  }

  MemStats& operator+=(const MemStats& o) {
    gld += o.gld;
    gst += o.gst;
    shared_accesses += o.shared_accesses;
    alu_ops += o.alu_ops;
    kernel_launches += o.kernel_launches;
    remote_transactions += o.remote_transactions;
    simulated_cycles += o.simulated_cycles;
    return *this;
  }
};

inline MemStats operator-(const MemStats& a, const MemStats& b) {
  MemStats r;
  r.gld = a.gld - b.gld;
  r.gst = a.gst - b.gst;
  r.shared_accesses = a.shared_accesses - b.shared_accesses;
  r.alu_ops = a.alu_ops - b.alu_ops;
  r.kernel_launches = a.kernel_launches - b.kernel_launches;
  r.remote_transactions = a.remote_transactions - b.remote_transactions;
  r.simulated_cycles = a.simulated_cycles - b.simulated_cycles;
  return r;
}

}  // namespace gsi::gpusim

#endif  // GSI_GPUSIM_GPUSIM_H_
