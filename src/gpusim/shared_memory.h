#ifndef GSI_GPUSIM_SHARED_MEMORY_H_
#define GSI_GPUSIM_SHARED_MEMORY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/check.h"

namespace gsi::gpusim {

/// Per-block programmable cache (Section II-B). Allocation is arena-style:
/// kernels Alloc<> what they need and the arena enforces the 48KB capacity,
/// which is what forces the batch-wise set-operation design in the paper.
class SharedMemory {
 public:
  explicit SharedMemory(uint64_t capacity_bytes)
      : capacity_(capacity_bytes), used_(0) {}

  /// Allocates n elements of T. Aborts if the block exceeds its shared
  /// memory budget — the same way a CUDA kernel would fail to launch.
  template <typename T>
  std::span<T> Alloc(size_t n) {
    uint64_t bytes = n * sizeof(T);
    GSI_CHECK_MSG(used_ + bytes <= capacity_,
                  "shared memory capacity exceeded");
    used_ += bytes;
    auto storage = std::make_shared<std::vector<T>>(n);
    std::span<T> out(storage->data(), storage->size());
    allocs_.push_back(std::move(storage));
    return out;
  }

  /// Frees everything (end of block).
  void Reset() {
    allocs_.clear();
    used_ = 0;
  }

  uint64_t used_bytes() const { return used_; }
  uint64_t capacity_bytes() const { return capacity_; }

 private:
  uint64_t capacity_;
  uint64_t used_;
  std::vector<std::shared_ptr<void>> allocs_;
};

}  // namespace gsi::gpusim

#endif  // GSI_GPUSIM_SHARED_MEMORY_H_
