#ifndef GSI_GPUSIM_SCAN_H_
#define GSI_GPUSIM_SCAN_H_

#include <cstdint>

#include "gpusim/device.h"

namespace gsi::gpusim {

/// Device-side exclusive prefix sum over `values[0..n)`, written to
/// `out[0..n]` (out has n+1 entries; out[n] is the total). This is the
/// primitive both the two-step output scheme and Prealloc-Combine rely on
/// (Figure 3 / Algorithm 4). Charged as one kernel whose warps stream the
/// input and output.
///
/// Returns the total (out[n]).
uint64_t ExclusiveScan(Device& dev, const DeviceBuffer<uint32_t>& values,
                       DeviceBuffer<uint64_t>& out);

}  // namespace gsi::gpusim

#endif  // GSI_GPUSIM_SCAN_H_
