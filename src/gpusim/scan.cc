#include "gpusim/scan.h"

#include "gpusim/launch.h"
#include "util/check.h"

namespace gsi::gpusim {

namespace {
// Elements each warp streams during the scan kernel.
constexpr size_t kScanTile = 1024;
}  // namespace

uint64_t ExclusiveScan(Device& dev, const DeviceBuffer<uint32_t>& values,
                       DeviceBuffer<uint64_t>& out) {
  size_t n = values.size();
  GSI_CHECK(out.size() >= n + 1);

  // Compute the scan host-side (the result is what matters for downstream
  // logic), then charge the cost as a tiled device kernel: each warp reads
  // its input tile, does ~2 ALU ops per element (up-sweep + down-sweep) and
  // writes its output tile.
  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = acc;
    acc += values[i];
  }
  out[n] = acc;

  size_t num_warps = (n + kScanTile - 1) / kScanTile;
  if (num_warps == 0) num_warps = 1;
  Launch(dev, num_warps, [&](Warp& w) {
    size_t begin = w.global_id() * kScanTile;
    if (begin >= n) return;
    size_t count = std::min(kScanTile, n - begin);
    w.LoadRange(values, begin, count);
    w.Alu(2 * count);
    // Output elements are u64: charge the store range explicitly.
    w.StoreRange(out, begin, std::span<const uint64_t>(out.data() + begin,
                                                       count));
  });
  return acc;
}

}  // namespace gsi::gpusim
