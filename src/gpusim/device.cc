#include "gpusim/device.h"

#include <algorithm>

namespace gsi::gpusim {

Device::Device(DeviceConfig config)
    : config_(config), next_addr_(kTransactionBytes) {}

uint64_t Device::TakeAddressRange(uint64_t bytes) {
  uint64_t base = next_addr_;
  uint64_t aligned = (bytes + kTransactionBytes - 1) / kTransactionBytes *
                     kTransactionBytes;
  // Leave a guard line between buffers so adjacent buffers never share a
  // transaction line (matches distinct cudaMalloc allocations).
  next_addr_ += aligned + kTransactionBytes;
  return base;
}

uint64_t Device::CoalescedTransactions(std::span<const uint64_t> addrs,
                                       uint64_t bytes_per_lane) {
  if (addrs.empty() || bytes_per_lane == 0) return 0;
  // Collect the 128B line indices touched by every lane, then count
  // distinct ones. Lane counts are <= 32 so a stack sort is fine.
  uint64_t lines[kWarpSize * 4];
  size_t n = 0;
  for (uint64_t a : addrs) {
    uint64_t first = a / kTransactionBytes;
    uint64_t last = (a + bytes_per_lane - 1) / kTransactionBytes;
    for (uint64_t line = first; line <= last; ++line) {
      if (n < std::size(lines)) {
        lines[n++] = line;
      }
    }
  }
  std::sort(lines, lines + n);
  return static_cast<uint64_t>(std::unique(lines, lines + n) - lines);
}

uint64_t Device::RangeTransactions(uint64_t base_addr, uint64_t bytes) {
  if (bytes == 0) return 0;
  uint64_t first = base_addr / kTransactionBytes;
  uint64_t last = (base_addr + bytes - 1) / kTransactionBytes;
  return last - first + 1;
}

}  // namespace gsi::gpusim
