#ifndef GSI_GPUSIM_DEVICE_BUFFER_H_
#define GSI_GPUSIM_DEVICE_BUFFER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace gsi::gpusim {

/// Untyped handle to a region of the device's virtual address space. A
/// buffer's base address is 128B-aligned (like cudaMalloc), so transaction
/// counting on element offsets is exact.
class BufferAddress {
 public:
  BufferAddress() : base_(0) {}
  explicit BufferAddress(uint64_t base) : base_(base) {}
  uint64_t base() const { return base_; }

 private:
  uint64_t base_;
};

/// A typed array in simulated global memory.
///
/// Data lives host-side (std::vector) and is freely readable by host code;
/// *kernel* code must go through Warp load/store methods so that transactions
/// are counted. This mirrors how the real system mixes host-side setup with
/// device kernels.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(std::vector<T> data, BufferAddress addr)
      : data_(std::move(data)), addr_(addr) {}

  DeviceBuffer(DeviceBuffer&&) noexcept = default;
  DeviceBuffer& operator=(DeviceBuffer&&) noexcept = default;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  const T* data() const { return data_.data(); }
  T* data() { return data_.data(); }

  const T& operator[](size_t i) const { return data_[i]; }
  T& operator[](size_t i) { return data_[i]; }

  std::span<const T> span() const { return {data_.data(), data_.size()}; }
  std::span<T> span() { return {data_.data(), data_.size()}; }

  /// Virtual byte address of element i (for coalescing computations).
  uint64_t AddressOf(size_t i) const {
    GSI_CHECK(i <= data_.size());
    return addr_.base() + i * sizeof(T);
  }

  uint64_t base_address() const { return addr_.base(); }

 private:
  std::vector<T> data_;
  BufferAddress addr_;
};

}  // namespace gsi::gpusim

#endif  // GSI_GPUSIM_DEVICE_BUFFER_H_
