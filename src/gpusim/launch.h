#ifndef GSI_GPUSIM_LAUNCH_H_
#define GSI_GPUSIM_LAUNCH_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/device_buffer.h"
#include "gpusim/gpusim.h"
#include "gpusim/shared_memory.h"
#include "util/check.h"

namespace gsi::gpusim {

/// Execution context of one warp inside a kernel. All global-memory traffic
/// of kernel code must go through this class so that the transaction
/// counters (GLD/GST) and the per-warp cycle cost are maintained.
///
/// The data itself is accessed directly (the "device" is host memory); only
/// the *accounting* is simulated. This keeps algorithms bit-exact while
/// producing the architectural metrics the paper reports.
class Warp {
 public:
  Warp(Device* dev, SharedMemory* shared, size_t global_id, size_t block_id,
       size_t id_in_block)
      : dev_(dev),
        shared_(shared),
        global_id_(global_id),
        block_id_(block_id),
        id_in_block_(id_in_block) {}

  size_t global_id() const { return global_id_; }
  size_t block_id() const { return block_id_; }
  size_t id_in_block() const { return id_in_block_; }

  Device& device() { return *dev_; }
  SharedMemory& shared() { return *shared_; }

  /// Single-lane load of one element: one full transaction.
  template <typename T>
  T Load(const DeviceBuffer<T>& b, size_t i) {
    ChargeLoad(Device::RangeTransactions(b.AddressOf(i), sizeof(T)));
    return b[i];
  }

  /// Warp-cooperative read of a contiguous range; the 32 lanes stream the
  /// range so transactions = distinct 128B lines covered. Zero-copy.
  template <typename T>
  std::span<const T> LoadRange(const DeviceBuffer<T>& b, size_t begin,
                               size_t count) {
    GSI_CHECK(begin + count <= b.size());
    ChargeLoad(Device::RangeTransactions(b.AddressOf(begin),
                                         count * sizeof(T)));
    return std::span<const T>(b.data() + begin, count);
  }

  /// Warp gather: lane k loads b[idx[k]]. Transactions follow the hardware
  /// coalescing rule (distinct 128B lines over all lanes).
  template <typename T>
  void Gather(const DeviceBuffer<T>& b, std::span<const uint64_t> idx,
              std::span<T> out) {
    GSI_CHECK(idx.size() <= static_cast<size_t>(kWarpSize));
    GSI_CHECK(out.size() >= idx.size());
    uint64_t addrs[kWarpSize];
    for (size_t k = 0; k < idx.size(); ++k) addrs[k] = b.AddressOf(idx[k]);
    ChargeLoad(Device::CoalescedTransactions({addrs, idx.size()}, sizeof(T)));
    for (size_t k = 0; k < idx.size(); ++k) out[k] = b[idx[k]];
  }

  /// Single-lane store.
  template <typename T>
  void Store(DeviceBuffer<T>& b, size_t i, T v) {
    ChargeStore(Device::RangeTransactions(b.AddressOf(i), sizeof(T)));
    b[i] = v;
  }

  /// Warp-cooperative contiguous store.
  template <typename T>
  void StoreRange(DeviceBuffer<T>& b, size_t begin,
                  std::span<const T> vals) {
    GSI_CHECK(begin + vals.size() <= b.size());
    ChargeStore(Device::RangeTransactions(b.AddressOf(begin),
                                          vals.size() * sizeof(T)));
    for (size_t k = 0; k < vals.size(); ++k) b[begin + k] = vals[k];
  }

  /// Warp scatter: lane k stores vals[k] to b[idx[k]].
  template <typename T>
  void Scatter(DeviceBuffer<T>& b, std::span<const uint64_t> idx,
               std::span<const T> vals) {
    GSI_CHECK(idx.size() <= static_cast<size_t>(kWarpSize));
    uint64_t addrs[kWarpSize];
    for (size_t k = 0; k < idx.size(); ++k) addrs[k] = b.AddressOf(idx[k]);
    ChargeStore(Device::CoalescedTransactions({addrs, idx.size()}, sizeof(T)));
    for (size_t k = 0; k < idx.size(); ++k) b[idx[k]] = vals[k];
  }

  /// Charges n global-load transactions without data movement (for access
  /// patterns modelled analytically, e.g. scattered baseline scans).
  void ChargeLoadTransactions(uint64_t n) { ChargeLoad(n); }
  /// Charges n global-store transactions without data movement.
  void ChargeStoreTransactions(uint64_t n) { ChargeStore(n); }

  /// Charges the interconnect premium for n 128B lines that were read from
  /// a *peer* device's memory (the partitioned data graph's remote probes).
  /// The reads themselves are charged as ordinary gld by whoever issued
  /// them; this adds remote_transaction_extra_cycles per line on top and
  /// counts the lines in stats().remote_transactions.
  void ChargeRemoteTransactions(uint64_t n) {
    dev_->stats().remote_transactions += n;
    cycles_ += n * dev_->config().remote_transaction_extra_cycles;
  }

  /// Charges n ALU operations (comparisons, hashing, flag tests...).
  void Alu(uint64_t n) {
    dev_->stats().alu_ops += n;
    cycles_ += n * dev_->config().alu_cycles;
  }

  /// Charges n shared-memory accesses.
  void SharedAccess(uint64_t n) {
    dev_->stats().shared_accesses += n;
    cycles_ += n * dev_->config().shared_access_cycles;
  }

  uint64_t cycles() const { return cycles_; }

 private:
  void ChargeLoad(uint64_t tx) {
    dev_->stats().gld += tx;
    cycles_ += tx * dev_->config().global_transaction_cycles;
  }
  void ChargeStore(uint64_t tx) {
    dev_->stats().gst += tx;
    cycles_ += tx * dev_->config().global_transaction_cycles;
  }

  Device* dev_;
  SharedMemory* shared_;
  size_t global_id_;
  size_t block_id_;
  size_t id_in_block_;
  uint64_t cycles_ = 0;
};

/// A cooperative thread block: a group of warps sharing one SharedMemory
/// arena. Block-granular kernels (duplicate removal, Algorithm 5) receive a
/// Block and orchestrate its warps explicitly; block-wide synchronization is
/// implicit in the sequential simulation (phases are just loop boundaries).
class Block {
 public:
  Block(Device* dev, size_t block_id, size_t num_warps,
        size_t first_warp_global_id);

  size_t id() const { return id_; }
  size_t num_warps() const { return warps_.size(); }
  Warp& warp(size_t i) { return warps_[i]; }
  SharedMemory& shared() { return shared_; }
  Device& device() { return *dev_; }

  /// Max warp cycles in this block (the SIMT critical path).
  uint64_t MaxWarpCycles() const;
  /// Sum of warp cycles (total work).
  uint64_t TotalWarpCycles() const;

 private:
  Device* dev_;
  size_t id_;
  SharedMemory shared_;
  std::vector<Warp> warps_;
};

/// Launches a per-warp kernel: `num_warps` logical warps grouped into blocks
/// of config.warps_per_block; `body` runs once per warp.
///
/// After execution, blocks are scheduled greedily (in launch order, each to
/// the least-loaded SM); a block occupies its SM for
///   max(longest warp, total work / warp_slots_per_sm)
/// cycles, modelling the SIMT property that a block is done only when its
/// slowest warp is. The kernel's makespan is added to stats().simulated_cycles.
void Launch(Device& dev, size_t num_warps,
            const std::function<void(Warp&)>& body);

/// Launches a block-cooperative kernel: `body` runs once per block and is
/// responsible for driving the block's warps.
void LaunchBlocks(Device& dev, size_t num_blocks,
                  const std::function<void(Block&)>& body);

/// Scheduling result of a kernel (exposed for tests and ablation benches).
struct ScheduleResult {
  uint64_t makespan_cycles = 0;
  uint64_t total_block_cycles = 0;
};

/// Computes the kernel makespan for a list of per-block costs (greedy
/// least-loaded assignment over config.num_sms SMs).
ScheduleResult ScheduleBlocks(const DeviceConfig& config,
                              std::span<const uint64_t> block_costs);

}  // namespace gsi::gpusim

#endif  // GSI_GPUSIM_LAUNCH_H_
