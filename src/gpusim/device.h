#ifndef GSI_GPUSIM_DEVICE_H_
#define GSI_GPUSIM_DEVICE_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/device_buffer.h"
#include "gpusim/gpusim.h"

namespace gsi::gpusim {

/// A deterministic fault to arm on a Device (InjectFault). Triggers are
/// *deltas from arming time* — counted against the device's counters, which
/// are a deterministic function of the work it runs — so a given plan trips
/// at the same simulated point on every run. A tripped device keeps
/// executing correctly (data stays bit-exact; the simulation is host
/// memory), it merely reports healthy() == false: the fail-stop model where
/// failure is *detected* at the next phase or step boundary and partial
/// results are discarded. All trigger fields at 0/false means the plan only
/// trips via Device::Trip.
struct FaultPlan {
  /// Trip once this many kernels have completed since arming (0 = off).
  uint64_t fail_at_kernel_launch = 0;
  /// Trip once this many memory transactions (gld + gst + remote lines)
  /// have been charged since arming (0 = off).
  uint64_t fail_after_transactions = 0;
  /// Trip on the next lease acquisition (DevicePool calls OnLeaseAcquired).
  bool fail_on_lease = false;
  /// Carried into the device's fault_message() when the plan trips.
  std::string reason = "injected fault";
};

/// The simulated GPU: owns the virtual address space, the architectural
/// configuration and the accumulated counters.
///
/// Usage:
///   Device dev;
///   auto buf = dev.Alloc<uint32_t>(n);
///   Launch(dev, {...}, [&](Warp& w) { ... });   // see launch.h
///   dev.stats().gld;                            // transactions observed
class Device {
 public:
  explicit Device(DeviceConfig config = DeviceConfig());

  const DeviceConfig& config() const { return config_; }

  /// Stable identity of this device within its pool (DevicePool assigns
  /// pool indices at construction; standalone devices keep 0). Trace spans
  /// and per-device metrics label work with this ordinal so that exported
  /// telemetry matches the pool's numbering.
  int ordinal() const { return ordinal_; }
  void set_ordinal(int ordinal) { ordinal_ = ordinal; }

  /// Allocates a zero-initialized buffer of n elements at a fresh,
  /// 128B-aligned virtual address.
  template <typename T>
  DeviceBuffer<T> Alloc(size_t n) {
    return DeviceBuffer<T>(std::vector<T>(n),
                           BufferAddress(TakeAddressRange(n * sizeof(T))));
  }

  /// Allocates a buffer initialized from host data.
  template <typename T>
  DeviceBuffer<T> Upload(std::vector<T> host) {
    uint64_t bytes = host.size() * sizeof(T);
    return DeviceBuffer<T>(std::move(host),
                           BufferAddress(TakeAddressRange(bytes)));
  }

  MemStats& stats() { return stats_; }
  const MemStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MemStats(); }

  /// Charges the fixed overhead of one kernel launch without running one.
  /// Models the naive set-operation baseline that spawns a kernel per
  /// operation (Section V, "GPU-friendly Set Operation").
  void ChargeKernelLaunch() {
    stats_.kernel_launches += 1;
    stats_.simulated_cycles += config_.kernel_launch_cycles;
    CheckFaultTriggers();
  }

  /// Charges a bulk device-to-device transfer of `bytes` over the
  /// interconnect (the halo gathers of the partitioned execution path:
  /// candidate lists and partial match tables streamed to the primary).
  /// Unlike host-mediated movement (Upload, result reads), which gpusim
  /// leaves uncharged, peer traffic bills the full per-line cost — there
  /// is no kernel to account it, so the cycles land here directly.
  /// Returns the number of 128B lines moved.
  uint64_t ChargeRemoteTransfer(uint64_t bytes) {
    const uint64_t lines = (bytes + kTransactionBytes - 1) / kTransactionBytes;
    stats_.remote_transactions += lines;
    stats_.simulated_cycles +=
        lines * (config_.global_transaction_cycles +
                 config_.remote_transaction_extra_cycles);
    CheckFaultTriggers();
    return lines;
  }

  // --- Fault injection (fail-stop model; see FaultPlan). A device is
  // accessed by one thread at a time (the lease holder, or the pool under
  // its mutex while the device is idle), so none of this needs atomics —
  // the same discipline as the counters above.

  /// Arms `plan` against this device: trigger thresholds count from the
  /// counters' current values. Re-arming replaces any previous plan.
  void InjectFault(FaultPlan plan) {
    plan_ = std::move(plan);
    armed_ = true;
    armed_stats_ = stats_;
  }

  /// False once a fault tripped; the device still executes correctly, but
  /// callers must treat its results as lost (discard and fail over).
  bool healthy() const { return healthy_; }
  /// Why the device tripped (empty while healthy).
  const std::string& fault_message() const { return fault_message_; }

  /// Marks the device failed immediately (the first trip's reason wins).
  void Trip(std::string reason) {
    if (!healthy_) return;
    healthy_ = false;
    ++fault_epoch_;
    fault_message_ = std::move(reason);
  }

  /// Counts trips over the device's lifetime. Caches keyed to this device
  /// (gsi::HaloCache) compare the epoch they were filled under against the
  /// current value and discard their contents on mismatch, so nothing cached
  /// before a fault survives quarantine + repair.
  uint64_t fault_epoch() const { return fault_epoch_; }

  /// Repair hook: clears the fault and disarms any remaining plan. The
  /// device's counters and memory are untouched — a repaired device is the
  /// same simulated hardware, back in service.
  void Repair() {
    healthy_ = true;
    armed_ = false;
    fault_message_.clear();
  }

  /// Evaluates the armed plan's counter triggers; called after every charge
  /// (kernel completion, remote transfer). Cheap when nothing is armed.
  void CheckFaultTriggers() {
    if (!armed_ || !healthy_) return;
    if (plan_.fail_at_kernel_launch > 0 &&
        stats_.kernel_launches - armed_stats_.kernel_launches >=
            plan_.fail_at_kernel_launch) {
      Trip(plan_.reason);
      return;
    }
    if (plan_.fail_after_transactions > 0) {
      const uint64_t charged =
          (stats_.gld - armed_stats_.gld) + (stats_.gst - armed_stats_.gst) +
          (stats_.remote_transactions - armed_stats_.remote_transactions);
      if (charged >= plan_.fail_after_transactions) Trip(plan_.reason);
    }
  }

  /// Lease-acquisition hook (DevicePool::TakeDeviceLocked): trips a plan
  /// armed with fail_on_lease.
  void OnLeaseAcquired() {
    if (armed_ && healthy_ && plan_.fail_on_lease) Trip(plan_.reason);
  }

  /// Number of distinct 128B lines touched by one warp-wide access where
  /// each lane reads/writes `bytes_per_lane` bytes starting at addrs[lane].
  /// This is the hardware coalescing rule (Figures 5/6 of the paper).
  static uint64_t CoalescedTransactions(std::span<const uint64_t> addrs,
                                        uint64_t bytes_per_lane);

  /// Transactions for one warp reading a contiguous byte range.
  static uint64_t RangeTransactions(uint64_t base_addr, uint64_t bytes);

 private:
  uint64_t TakeAddressRange(uint64_t bytes);

  DeviceConfig config_;
  MemStats stats_;
  uint64_t next_addr_;
  int ordinal_ = 0;
  // Fault-injection state (single-writer, like stats_).
  bool healthy_ = true;
  bool armed_ = false;
  FaultPlan plan_;
  MemStats armed_stats_;
  std::string fault_message_;
  uint64_t fault_epoch_ = 0;
};

}  // namespace gsi::gpusim

#endif  // GSI_GPUSIM_DEVICE_H_
