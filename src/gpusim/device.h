#ifndef GSI_GPUSIM_DEVICE_H_
#define GSI_GPUSIM_DEVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device_buffer.h"
#include "gpusim/gpusim.h"

namespace gsi::gpusim {

/// The simulated GPU: owns the virtual address space, the architectural
/// configuration and the accumulated counters.
///
/// Usage:
///   Device dev;
///   auto buf = dev.Alloc<uint32_t>(n);
///   Launch(dev, {...}, [&](Warp& w) { ... });   // see launch.h
///   dev.stats().gld;                            // transactions observed
class Device {
 public:
  explicit Device(DeviceConfig config = DeviceConfig());

  const DeviceConfig& config() const { return config_; }

  /// Stable identity of this device within its pool (DevicePool assigns
  /// pool indices at construction; standalone devices keep 0). Trace spans
  /// and per-device metrics label work with this ordinal so that exported
  /// telemetry matches the pool's numbering.
  int ordinal() const { return ordinal_; }
  void set_ordinal(int ordinal) { ordinal_ = ordinal; }

  /// Allocates a zero-initialized buffer of n elements at a fresh,
  /// 128B-aligned virtual address.
  template <typename T>
  DeviceBuffer<T> Alloc(size_t n) {
    return DeviceBuffer<T>(std::vector<T>(n),
                           BufferAddress(TakeAddressRange(n * sizeof(T))));
  }

  /// Allocates a buffer initialized from host data.
  template <typename T>
  DeviceBuffer<T> Upload(std::vector<T> host) {
    uint64_t bytes = host.size() * sizeof(T);
    return DeviceBuffer<T>(std::move(host),
                           BufferAddress(TakeAddressRange(bytes)));
  }

  MemStats& stats() { return stats_; }
  const MemStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MemStats(); }

  /// Charges the fixed overhead of one kernel launch without running one.
  /// Models the naive set-operation baseline that spawns a kernel per
  /// operation (Section V, "GPU-friendly Set Operation").
  void ChargeKernelLaunch() {
    stats_.kernel_launches += 1;
    stats_.simulated_cycles += config_.kernel_launch_cycles;
  }

  /// Charges a bulk device-to-device transfer of `bytes` over the
  /// interconnect (the halo gathers of the partitioned execution path:
  /// candidate lists and partial match tables streamed to the primary).
  /// Unlike host-mediated movement (Upload, result reads), which gpusim
  /// leaves uncharged, peer traffic bills the full per-line cost — there
  /// is no kernel to account it, so the cycles land here directly.
  /// Returns the number of 128B lines moved.
  uint64_t ChargeRemoteTransfer(uint64_t bytes) {
    const uint64_t lines = (bytes + kTransactionBytes - 1) / kTransactionBytes;
    stats_.remote_transactions += lines;
    stats_.simulated_cycles +=
        lines * (config_.global_transaction_cycles +
                 config_.remote_transaction_extra_cycles);
    return lines;
  }

  /// Number of distinct 128B lines touched by one warp-wide access where
  /// each lane reads/writes `bytes_per_lane` bytes starting at addrs[lane].
  /// This is the hardware coalescing rule (Figures 5/6 of the paper).
  static uint64_t CoalescedTransactions(std::span<const uint64_t> addrs,
                                        uint64_t bytes_per_lane);

  /// Transactions for one warp reading a contiguous byte range.
  static uint64_t RangeTransactions(uint64_t base_addr, uint64_t bytes);

 private:
  uint64_t TakeAddressRange(uint64_t bytes);

  DeviceConfig config_;
  MemStats stats_;
  uint64_t next_addr_;
  int ordinal_ = 0;
};

}  // namespace gsi::gpusim

#endif  // GSI_GPUSIM_DEVICE_H_
