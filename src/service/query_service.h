#ifndef GSI_SERVICE_QUERY_SERVICE_H_
#define GSI_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "gsi/matcher.h"
#include "gsi/partition.h"
#include "gsi/query_engine.h"
#include "gsi/replication.h"
#include "gsi/result_manifest.h"
#include "gsi/sharded_engine.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/device_pool.h"
#include "service/filter_cache.h"
#include "util/annotations.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace gsi {

/// What Submit does when the bounded admission queue is full.
enum class OverloadPolicy {
  kReject,  ///< fail fast with ResourceExhausted (shed load)
  kBlock,   ///< block the submitter until a slot frees (backpressure)
};

/// Configuration of a QueryService instance.
struct ServiceOptions {
  /// Long-lived worker threads. Workers lease devices from the shared
  /// DevicePool per query (instead of pinning one each), so per-query stats
  /// stay isolated exactly as in QueryEngine::RunBatch while idle devices
  /// remain available for heavy queries to fan out across.
  int num_workers = 2;
  /// Devices in the shared pool (0 = one per worker). More devices than
  /// workers gives heavy queries headroom to shard; fewer throttles
  /// concurrency to the hardware.
  int num_devices = 0;
  /// Maximum devices one query's join phase may span (1 = intra-query
  /// sharding off). Beyond the first, devices are only taken when idle —
  /// fan-out never makes a light query wait behind a heavy one.
  int max_shards_per_query = 1;
  /// Heaviness gate: only queries whose smallest candidate set reaches this
  /// size try to fan out (a cheap proxy for the seed list the sharded join
  /// partitions; small seeds are not worth the merge).
  size_t shard_min_candidates = 256;
  /// Shard sizing for the fan-out path (see sharded_engine.h).
  ShardOptions shard;
  /// Maximum admitted-but-not-started queries. Running queries do not
  /// count: the queue bounds waiting work, the workers bound running work.
  size_t max_queue_depth = 256;
  OverloadPolicy overload = OverloadPolicy::kReject;
  /// Deadline applied to tickets submitted without one (0 = none). The
  /// deadline bounds queueing delay: a ticket still queued when it expires
  /// fails with DeadlineExceeded; one that started in time runs to
  /// completion.
  double default_deadline_ms = 0;
  /// Share filtering work between queries with identical signatures
  /// (FilterCache). Match results are bit-identical either way.
  bool enable_filter_cache = true;
  size_t filter_cache_bytes = 64ull << 20;

  /// Partition the data graph across the device pool instead of replicating
  /// it: each pool device holds 1/K of the PCSR + signature table
  /// (K = pool size; see gsi/partition.h). Queries then need *all* devices
  /// (the partitions are the data), so they serialize on the pool via
  /// DevicePool::AcquireAll — the memory-capacity/concurrency trade
  /// documented in docs/ARCHITECTURE.md. Incompatible with
  /// max_shards_per_query > 1 (the sharded path assumes replicas); match
  /// results stay bit-identical to GsiMatcher::Find. Requires PCSR storage
  /// and the signature filter strategy.
  bool partition_data_graph = false;
  /// Ownership policy for partition_data_graph (null = HashVertexPartitioner).
  std::shared_ptr<const GraphPartitioner> partitioner;
  /// Replicas of each partition in partition_data_graph mode (R). With the
  /// default 1, a query needs the whole pool (AcquireAll) and partitioned
  /// queries serialize. With R > 1 every partition lives on R pool devices
  /// (staggered placement; see gsi/replication.h), a query leases just one
  /// replica of each (DevicePool::AcquireOneOfEach, least-loaded picks),
  /// and up to R partitioned queries run concurrently — at R times the
  /// per-device resident bytes. R should divide the pool size: a query's
  /// lease packs onto ceil(pool/R) devices, so a non-divisor R buys only
  /// floor(pool / ceil(pool/R)) concurrent lanes (R=3 on a 4-device pool
  /// yields the 2 lanes of R=2 at 3x the memory — its only edge over R=2
  /// is a few more co-resident replicas absorbing remote probes). Remote
  /// probes are served by a co-resident
  /// replica when the probing device holds one, else routed to the replica
  /// the query leased. Must be in [1, pool size]; needs
  /// partition_data_graph and is incompatible with max_shards_per_query >
  /// 1. Match results stay bit-identical to GsiMatcher::Find for every
  /// replica choice.
  int partition_replicas = 1;

  /// Execution attempts per query when a simulated device fails mid-run
  /// (kUnavailable/kAborted; see docs/ARCHITECTURE.md, "Fault tolerance").
  /// Each retry re-acquires devices, so with replicas (or spare pool
  /// devices) the rerun lands on healthy hardware and results stay
  /// bit-identical to GsiMatcher::Find. 1 = fail fast. Tickets can raise or
  /// lower this per submission (SubmitOptions::max_attempts).
  int default_max_attempts = 1;
  /// Simulated backoff before retry k (k >= 2): min(cap, base * 2^(k-2))
  /// milliseconds, added to the query's simulated total_ms — deterministic,
  /// no wall clock read and no real sleeping.
  double retry_backoff_base_ms = 1.0;
  double retry_backoff_cap_ms = 8.0;

  /// Per-device byte budget for the halo cache over remote N(v, l) lists in
  /// partition_data_graph mode (gsi/halo_cache.h): remote probes of hot
  /// vertices repeat across join steps and queries; a hit is served from
  /// the lane device's cache at local cost instead of the interconnect
  /// premium. The budget is a reserved slice of each device's resident
  /// bytes. 0 (default) disables caching; match tables are bit-identical
  /// either way. Ignored unless partition_data_graph is set.
  uint64_t halo_budget_bytes = 0;

  /// Host-resident result-byte budget per query for the cursor protocol
  /// (FetchPage): every served page holds at most this many bytes of match
  /// rows, so a caller streaming pages keeps one page's worth of host
  /// memory per query instead of the whole table. The rest of the result
  /// stays as device-resident partial tables until paged out (see
  /// gsi/result_manifest.h). 0 (default) = unbounded — FetchPage without a
  /// PageOptions row cap then returns the whole remainder in one page.
  /// Never rounds below one row. Poll/Wait opt out of paging entirely
  /// (they materialize the full table; their results are the
  /// compatibility surface).
  size_t page_budget_bytes = 0;
};

/// Per-FetchPage overrides.
struct PageOptions {
  /// Row cap for this page (0 = as many as the service's
  /// page_budget_bytes allows). The effective page size is the smaller of
  /// the two caps, and at least one row when rows remain.
  size_t max_rows = 0;
};

/// One page of a query's match table, streamed out by FetchPage. Pages are
/// contiguous, in order, and concatenating `rows` across pages is
/// byte-identical to the one-shot table Wait returns (and to
/// GsiMatcher::Find) for every execution mode.
struct ResultPage {
  /// Row-major match rows: num_rows x cols VertexIds. Column c binds query
  /// vertex column_to_query[c].
  std::vector<VertexId> rows;
  size_t cols = 0;
  std::vector<VertexId> column_to_query;
  uint64_t page_index = 0;  ///< 0-based fetch order within the cursor
  size_t row_begin = 0;     ///< first row's index in the full table
  size_t num_rows = 0;
  /// True when this page reaches the end of the table (also set on the
  /// empty page a fetch past the end returns).
  bool done = false;
};

/// Per-submission overrides.
struct SubmitOptions {
  /// Queueing deadline for this ticket (0 = ServiceOptions default).
  double deadline_ms = 0;
  /// Collect a per-query trace (obs/trace.h): queue wait plus every
  /// execution phase, retrievable via QueryService::GetTrace once the
  /// ticket finishes. Off by default — untraced queries pay one null check
  /// per would-be span.
  bool trace = false;
  /// Execution attempts for this ticket when a device fails mid-run
  /// (0 = ServiceOptions::default_max_attempts).
  int max_attempts = 0;
};

/// Point-in-time snapshot of service health (stats()).
struct ServiceStats {
  size_t queue_depth = 0;        ///< admitted, waiting for a worker
  size_t in_flight = 0;          ///< currently executing
  uint64_t submitted = 0;        ///< Submit calls (admitted + rejected)
  uint64_t admitted = 0;
  uint64_t rejected = 0;         ///< ResourceExhausted under kReject
  uint64_t cancelled = 0;        ///< Cancel'd before a worker picked them up
  uint64_t expired = 0;          ///< queued past their deadline
  uint64_t completed_ok = 0;
  uint64_t failed = 0;           ///< executed but returned an error
  double sum_simulated_ms = 0;   ///< over all completed-ok queries
  /// Simulated-latency percentiles over a sliding window of the most
  /// recent completed-ok queries (the service is long-lived; an all-time
  /// reservoir would grow without bound).
  double p50_simulated_ms = 0;
  double p99_simulated_ms = 0;
  FilterCache::Stats cache;      ///< zeros when the cache is disabled
  /// Intra-query sharding activity (zeros when max_shards_per_query == 1).
  uint64_t sharded_queries = 0;  ///< completed-ok queries that fanned out
  uint64_t shards_executed = 0;  ///< total shards across those queries
  double max_shard_skew = 0;     ///< worst max/mean per-shard time observed
  /// Partitioned data-graph activity (zeros unless partition_data_graph).
  uint64_t partitioned_queries = 0;  ///< completed-ok partitioned queries
  uint64_t remote_probes = 0;        ///< cross-partition N(v, l) lookups
  uint64_t halo_bytes = 0;           ///< interconnect bytes, filter + join
  double max_partition_skew = 0;     ///< worst max/mean per-partition time
  /// Remote probes the per-device halo caches served locally (zeros unless
  /// halo_budget_bytes > 0).
  uint64_t halo_cache_hits = 0;
  uint64_t halo_cache_bytes = 0;     ///< list bytes those hits served
  /// Replicated-placement activity (zeros unless partition_replicas > 1).
  /// Partitioned queries then also count in the partitioned fields above.
  uint64_t replicated_queries = 0;  ///< completed-ok via a replica selection
  uint64_t replica_lanes_total = 0; ///< sum of per-query distinct devices
  /// Lane occupancy: replica_lanes_total / replicated_queries — devices a
  /// partitioned query actually held, vs the whole pool under AcquireAll.
  double avg_replica_lanes = 0;
  /// Probes replication served from a co-resident replica instead of the
  /// interconnect (the traffic R bought back).
  uint64_t co_located_probes = 0;
  /// max/mean of per-device replica picks (AcquireOneOfEach), 1.0 = even.
  double replica_pick_skew = 0;
  /// Fault-tolerance activity (zeros while no fault is injected).
  uint64_t device_failures = 0;  ///< attempts that died on a failed device
  uint64_t retries = 0;          ///< re-executions after a failed attempt
  /// Retries that ran with at least one device quarantined — the rerun had
  /// to fail over to a different selection, not just repeat.
  uint64_t failovers = 0;
  uint64_t unavailable_queries = 0;  ///< queries that failed kUnavailable
  size_t quarantined_devices = 0;    ///< currently quarantined pool devices
  /// Cursor-protocol activity (zeros until FetchPage is used).
  uint64_t cursors_opened = 0;   ///< tickets whose result went to a cursor
  uint64_t cursors_closed = 0;   ///< CloseCursor calls that freed a cursor
  uint64_t result_pages = 0;     ///< pages served by FetchPage
  uint64_t result_page_bytes = 0;  ///< match-row bytes across those pages
  /// Largest single page served — stays <= page_budget_bytes whenever the
  /// budget is set (the per-query host-residency bound).
  size_t peak_page_bytes = 0;
  /// Cursors whose device-resident partials were lost to a fault and
  /// recomputed mid-stream (the served prefix stayed valid; see
  /// docs/ARCHITECTURE.md, "Result streaming").
  uint64_t cursor_rebuilds = 0;
  /// Manifest bytes currently pinned on pool devices by open cursors.
  size_t cursor_resident_bytes = 0;
  DevicePool::Stats pool;        ///< device-pool health
};

namespace internal {
/// Shared state of one submitted query. All fields are guarded by the
/// owning service's mutex; implementation detail of QueryService.
struct TicketState {
  enum class Phase { kQueued, kRunning, kDone } phase = Phase::kQueued;
  uint64_t id = 0;
  Graph query;
  bool has_deadline = false;
  /// Queueing-deadline expiry: admission policy, not match results.
  // NOLINTNEXTLINE(determinism:nondeterministic-seed)
  std::chrono::steady_clock::time_point deadline{};
  /// Set exactly when phase becomes kDone; moved out by the first
  /// Poll/Wait that observes it or into the cursor by the first FetchPage.
  std::optional<Result<PagedQueryResult>> result;
  bool taken = false;
  /// Open cursor over the consumed result (first FetchPage creates it).
  /// `busy` serializes concurrent FetchPage/CloseCursor calls on one
  /// ticket: the holder pages chunks outside the service lock, so peers
  /// wait on done_cv_ until it commits.
  struct Cursor {
    PagedQueryResult paged;
    size_t next_row = 0;
    uint64_t pages = 0;
    uint64_t rebuilds = 0;
    bool busy = false;
  };
  std::optional<Cursor> cursor;
  /// Set by CloseCursor (even before a cursor opens); FetchPage then
  /// fails kNotFound.
  bool cursor_closed = false;
  /// Present iff SubmitOptions.trace was set; shared so GetTrace stays
  /// valid after the ticket's result is taken.
  std::shared_ptr<obs::Tracer> tracer;
  /// Service steady-clock stamp at admission (queue-wait span start).
  uint64_t submit_ns = 0;
  /// Resolved at Submit (SubmitOptions override or the service default).
  int max_attempts = 1;
};
}  // namespace internal

/// Handle to one submitted query; cheap to copy, futures-style: the result
/// is consumed by the first successful Poll/Wait.
class QueryTicket {
 public:
  QueryTicket() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const { return state_ ? state_->id : 0; }

 private:
  friend class QueryService;
  explicit QueryTicket(std::shared_ptr<internal::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::TicketState> state_;
};

/// Long-lived serving layer over QueryEngine: callers stream queries in via
/// Submit and collect results via Poll/Wait instead of handing RunBatch a
/// complete span and blocking until it drains.
///
///   QueryService service(data, GsiOptOptions(), ServiceOptions{});
///   Result<QueryTicket> t = service.Submit(query);     // async
///   if (!t.ok()) { /* queue full under kReject */ }
///   Result<QueryResult> r = service.Wait(*t);          // or Poll
///
/// Result streaming: instead of Wait's one-shot table, FetchPage streams
/// the result in pages of at most ServiceOptions::page_budget_bytes —
/// partial match tables stay resident on the pool devices that produced
/// them (a ResultManifest; gsi/result_manifest.h) and each page leases
/// exactly the devices its chunks live on, charging the page-out as
/// interconnect traffic. Concatenating pages is byte-identical to Wait's
/// table. A ticket's result is one-shot across *both* protocols: the
/// first Poll/Wait or FetchPage consumes it; later observers get
/// kNotFound. CloseCursor releases the device-resident partials early.
///
/// Admission control: the queue holds at most max_queue_depth waiting
/// tickets; beyond that Submit sheds load (kReject -> ResourceExhausted) or
/// applies backpressure (kBlock). Queued tickets can be cancelled and
/// expire via per-query deadlines; running ones always finish.
///
/// Execution reuses the staged core of matcher.h (RunFilterStage +
/// RunJoinStageSharded). Workers lease devices from a shared DevicePool per
/// query; with max_shards_per_query > 1, a heavy query (smallest candidate
/// set >= shard_min_candidates) additionally grabs whatever devices are
/// idle and fans its join out across them (sharded_engine.h). With the
/// filter cache enabled, repeated query shapes skip the signature-scan
/// kernels and rematerialize memoized candidate sets. Both paths keep match
/// tables bit-identical to sequential GsiMatcher::Find — sharding and
/// caching only change where the work runs and what it costs.
///
/// With partition_data_graph set, the pool's devices each hold 1/K of the
/// data structures instead of sharing the engine's replica; queries then
/// take the whole pool (DevicePool::AcquireAll) and run the partitioned
/// filter/join of gsi/partition.h — still bit-identical, still
/// cache-compatible (memoized candidate lists are global either way).
/// Raising partition_replicas to R > 1 stores every partition on R pool
/// devices (gsi/replication.h): a query leases one replica of each
/// (DevicePool::AcquireOneOfEach) instead of the whole pool, so up to R
/// partitioned queries run concurrently, remote probes are served by
/// co-resident replicas when possible, and per-device residency grows to
/// ~R/K of the replica — the replication/concurrency trade the ServiceStats
/// replica counters observe.
///
/// Thread-safe. The data graph must outlive the service. Results handed
/// out by Poll/Wait own their match tables; they stay valid after the
/// service is destroyed. The destructor cancels still-queued tickets, lets
/// running queries finish, and joins the workers.
class QueryService {
 public:
  explicit QueryService(const Graph& data,
                        GsiOptions gsi_options = GsiOptOptions(),
                        ServiceOptions options = ServiceOptions());
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits `query` into the service. Fails with ResourceExhausted when the
  /// queue is full under kReject (blocks under kBlock), or with the
  /// constructor's error when the GsiOptions were invalid.
  Result<QueryTicket> Submit(Graph query,
                             const SubmitOptions& options = SubmitOptions())
      GSI_EXCLUDES(mu_);

  /// Non-blocking: nullopt while queued/running; once finished, moves the
  /// result out (exactly one Poll/Wait/FetchPage consumes it; later calls
  /// fail kNotFound — re-submit to compute the result again).
  std::optional<Result<QueryResult>> Poll(const QueryTicket& ticket)
      GSI_EXCLUDES(mu_);

  /// Blocks until the ticket finishes, then moves the result out. Same
  /// one-shot consume semantics as Poll.
  Result<QueryResult> Wait(const QueryTicket& ticket) GSI_EXCLUDES(mu_);

  /// Streams the ticket's result one page at a time (blocking until the
  /// ticket finishes, like Wait). The first call consumes the result and
  /// opens a cursor over its device-resident partial tables; each call
  /// materializes the next <= min(page_budget_bytes, options.max_rows)
  /// rows by leasing the owning pool devices chunk by chunk
  /// (DevicePool::AcquireDevice) and charging the copy as a device->host
  /// transfer. Pages arrive in table order; the page that reaches the end
  /// has done = true, and further calls return empty done pages.
  /// Concatenating pages is byte-identical to Wait's table for every
  /// execution mode.
  ///
  /// Faults: a chunk whose owning device died (tripped, quarantined, or
  /// repaired since the query ran — its fault epoch changed) fails the
  /// page with kUnavailable; when the ticket allows retries
  /// (max_attempts > 1) the service transparently recomputes the result on
  /// healthy devices and resumes — determinism guarantees the already
  /// served prefix is a prefix of the rebuilt table, so remaining pages
  /// are identical to the no-fault stream.
  ///
  /// Fails kNotFound when the result was already consumed by Poll/Wait or
  /// the cursor was closed; concurrent FetchPage calls on one ticket
  /// serialize.
  Result<ResultPage> FetchPage(const QueryTicket& ticket,
                               const PageOptions& options = PageOptions())
      GSI_EXCLUDES(mu_);

  /// Releases a cursor's device-resident partial tables without draining
  /// it. Idempotent; may be called before any FetchPage (subsequent
  /// fetches then fail kNotFound, but Poll/Wait can still consume an
  /// untouched result). Fails only on an invalid ticket.
  Status CloseCursor(const QueryTicket& ticket) GSI_EXCLUDES(mu_);

  /// Cancels a not-yet-started ticket: true if it was removed from the
  /// queue (its result becomes Cancelled); false if it already started or
  /// finished.
  bool Cancel(const QueryTicket& ticket) GSI_EXCLUDES(mu_);

  /// Blocks until no ticket is queued or running (stream-then-drain usage).
  void Drain() GSI_EXCLUDES(mu_);

  ServiceStats stats() const GSI_EXCLUDES(mu_);

  /// Arms a deterministic fault on pool device `index` (see
  /// gpusim::FaultPlan and DevicePool::InjectFault): the device trips at
  /// the planned point, the running attempt fails with kUnavailable, its
  /// partial results are discarded, and the poisoned lease quarantines the
  /// device on release. Chaos-testing hook; also exercised by
  /// bench_service_throughput --fault-rate.
  Status InjectDeviceFault(size_t index, gpusim::FaultPlan plan);

  /// Repairs a quarantined pool device and re-admits it to serving
  /// (DevicePool::Repair). Returns false when `index` is not quarantined.
  bool RepairDevice(size_t index);

  /// The per-query trace collected for a ticket submitted with
  /// SubmitOptions.trace, or null (not traced / invalid ticket). Safe to
  /// export (ToChromeJson/ToTreeString) once the ticket finished; spans are
  /// still being appended while it runs.
  std::shared_ptr<const obs::Tracer> GetTrace(const QueryTicket& ticket) const
      GSI_EXCLUDES(mu_);

  /// Prometheus text exposition of every registered metric: service
  /// admission/completion counters, the simulated-latency histogram, and
  /// the DevicePool / FilterCache collectors (docs/OBSERVABILITY.md).
  std::string ExportMetrics() const;
  /// Human-readable `name{labels} = value` snapshot of the same metrics.
  std::string MetricsDebugString() const;
  /// The registry backing ExportMetrics — for embedding callers that
  /// register their own instruments or collectors alongside the service's.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Not Ok when the GsiOptions or ServiceOptions were rejected (e.g.
  /// max_queue_depth = 0, which would deadlock kBlock submitters); Submit
  /// reports it per call.
  const Status& init_status() const { return init_status_; }
  const ServiceOptions& options() const { return options_; }

 private:
  using TicketPtr = std::shared_ptr<internal::TicketState>;

  void WorkerLoop() GSI_EXCLUDES(mu_);
  /// Registers the service's own collector and latency histogram with
  /// metrics_ (constructor-time; DevicePool/FilterCache register theirs).
  void RegisterServiceMetrics();
  /// Executes one query with fault-tolerant retry: runs RunOneAttempt up
  /// to `max_attempts` times, re-acquiring devices per attempt (so reruns
  /// land on healthy hardware after a quarantine) and charging the capped
  /// exponential simulated backoff between attempts. Only device failures
  /// (kUnavailable/kAborted) retry; a final kAborted is reported as
  /// kUnavailable. Records `device_failure`/`retry` spans when traced.
  Result<PagedQueryResult> RunOne(const Graph& query, int max_attempts,
                                  const obs::TraceContext& trace);
  /// One execution attempt: leases a primary device from the pool,
  /// satisfies the filter phase (through the cache when enabled), and —
  /// when the query is heavy and devices are idle — fans the join out
  /// across up to max_shards_per_query devices. In partition_data_graph
  /// mode it instead takes the whole pool (partition_replicas == 1) or one
  /// replica of each partition (AcquireOneOfEach) and runs the
  /// partitioned/replicated filter/join. `trace` (null tracer when
  /// untraced) parents the execution-phase spans.
  Result<PagedQueryResult> RunOneAttempt(const Graph& query,
                                         const obs::TraceContext& trace);
  /// The orchestration both partitioned-data paths share: cache-aware
  /// filter on `primary` (falling back to `fresh_filter`, which reports
  /// the phase's parallel makespan), then `join`, then the filter-makespan
  /// and wall-time fixups. Devices must already be leased by the caller.
  Result<PagedQueryResult> RunPartitionedFlow(
      const Graph& query, gpusim::Device& primary,
      const obs::TraceContext& trace,
      const std::function<Result<FilterResult>(QueryStats&, double*)>&
          fresh_filter,
      const std::function<Result<PagedQueryResult>(FilterResult, QueryStats)>&
          join);
  /// Satisfies the filter phase through the cache when enabled: a hit
  /// rematerializes the memoized lists on `materialize_dev` (recording the
  /// counter delta and min-candidate metric into `stats`); a miss runs
  /// `fresh_filter` and memoizes its candidate lists. Shared by the
  /// replicated and partitioned execution paths — the memoized lists are
  /// global either way. `hit` (when non-null) reports which path ran.
  Result<FilterResult> FilterViaCache(
      const Graph& query, gpusim::Device& materialize_dev, QueryStats& stats,
      bool* hit, const obs::TraceContext& trace,
      const std::function<Result<FilterResult>()>& fresh_filter);
  void FinishLocked(const TicketPtr& ticket, Result<PagedQueryResult> result)
      GSI_REQUIRES(mu_);
  /// Pages rows [row_begin, row_begin + take) of `paged`'s manifest into
  /// `dst` (presized take * cols), leasing each chunk's owning pool device
  /// and charging the copy as interconnect traffic. Fails kUnavailable
  /// when an owner is gone (quarantined, or its fault epoch changed) or
  /// trips mid-charge. Called with the cursor marked busy, never under
  /// mu_.
  Status CopyPageChunks(const PagedQueryResult& paged, size_t row_begin,
                        size_t take, std::vector<VertexId>& dst)
      GSI_EXCLUDES(mu_);

  /// Completed-ok latencies kept for the percentile snapshot.
  static constexpr size_t kLatencyWindow = 4096;

  const Graph* data_;
  ServiceOptions options_;
  QueryEngine engine_;  // shared immutable PCSR + signature structures
  Status init_status_;
  /// Host-side trace clock (queue wait, query root span): wall time, not
  /// byte-stable across runs by design — the execution spans under it use
  /// device cycle clocks and are.
  obs::SteadyClockSource service_clock_;
  obs::MetricsRegistry metrics_;
  /// Owned by metrics_; observed per completed-ok query in FinishLocked.
  obs::Histogram* latency_hist_ = nullptr;
  std::unique_ptr<FilterCache> cache_;  // null when disabled
  std::unique_ptr<DevicePool> devices_;  // null when init failed
  /// The 1/K-per-device data graph (partition_data_graph mode with
  /// partition_replicas == 1); built over the pool's devices in index
  /// order, null otherwise.
  std::unique_ptr<PartitionedGraph> partitioned_;
  /// The R-way replicated placement (partition_replicas > 1); K = pool
  /// size partitions, each on R pool devices. Null otherwise.
  std::unique_ptr<ReplicatedGraph> replicated_;

  mutable Mutex mu_;
  CondVar work_cv_;   // queue non-empty or stopping
  CondVar space_cv_;  // queue below max_queue_depth
  CondVar done_cv_;   // some ticket finished / drained
  /// TicketState fields (phase/result/taken/deadline) are also guarded by
  /// mu_ — tickets are shared with callers, but every access goes through
  /// a service method that holds the lock.
  std::deque<TicketPtr> queue_ GSI_GUARDED_BY(mu_);
  size_t in_flight_ GSI_GUARDED_BY(mu_) = 0;
  uint64_t next_id_ GSI_GUARDED_BY(mu_) = 1;
  bool stopping_ GSI_GUARDED_BY(mu_) = false;
  /// Counters; depth fields derived in stats().
  ServiceStats stats_ GSI_GUARDED_BY(mu_);
  /// Ring of the last kLatencyWindow completed-ok total_ms values.
  std::vector<double> latencies_ms_ GSI_GUARDED_BY(mu_);
  size_t latency_cursor_ GSI_GUARDED_BY(mu_) = 0;

  /// Declared last so workers die before the state they use.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace gsi

#endif  // GSI_SERVICE_QUERY_SERVICE_H_
