#include "service/query_service.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/percentile.h"
#include "util/timer.h"

namespace gsi {

using internal::TicketState;
using Phase = internal::TicketState::Phase;
// Admission-deadline clock: decides *whether* a queued ticket still runs,
// never what an executed query matches — match tables stay bit-identical.
using Clock = std::chrono::steady_clock;  // NOLINT(determinism:nondeterministic-seed)

namespace {

// The halo budget is a serving-layer knob (ServiceOptions), but the caches
// are built by PartitionedGraph/ReplicatedGraph::Build from GsiOptions.
// Inject before the engine is constructed so the engine's options() — the
// value every Build below reads — carries the budget exactly once.
GsiOptions WithHaloBudget(GsiOptions go, const ServiceOptions& so) {
  if (so.partition_data_graph) go.halo_budget_bytes = so.halo_budget_bytes;
  return go;
}

// Uniform double-consume status for every observer path (Poll, Wait,
// FetchPage): kNotFound with an actionable message, not an internal error —
// the caller's bug is ordinary and recoverable.
Status AlreadyConsumed(uint64_t id) {
  return Status::NotFound(
      "result of ticket " + std::to_string(id) +
      " was already consumed (results are one-shot: the first Poll/Wait or "
      "FetchPage takes ownership); re-submit the query to compute it again");
}

Status CursorClosed(uint64_t id) {
  return Status::NotFound("cursor of ticket " + std::to_string(id) +
                          " is closed; re-submit the query to stream it "
                          "again");
}

}  // namespace

QueryService::QueryService(const Graph& data, GsiOptions gsi_options,
                           ServiceOptions options)
    : data_(&data),
      options_(options),
      engine_(data, WithHaloBudget(std::move(gsi_options), options)) {
  init_status_ = engine_.init_status();
  if (init_status_.ok() && options_.max_queue_depth == 0) {
    // Depth 0 would reject every Submit under kReject and deadlock every
    // Submit under kBlock (the space predicate could never hold).
    init_status_ = Status::InvalidArgument(
        "ServiceOptions.max_queue_depth must be >= 1");
  }
  if (init_status_.ok() && options_.default_max_attempts < 1) {
    init_status_ = Status::InvalidArgument(
        "ServiceOptions.default_max_attempts must be >= 1 (got " +
        std::to_string(options_.default_max_attempts) +
        "); use 1 to fail fast on device faults");
  }
  if (!init_status_.ok()) return;  // Submit reports the error.
  RegisterServiceMetrics();
  if (options_.enable_filter_cache) {
    FilterCache::Options co;
    co.max_bytes = options_.filter_cache_bytes;
    cache_ = std::make_unique<FilterCache>(co);
    cache_->RegisterMetrics(metrics_);
  }
  const size_t workers =
      options_.num_workers < 1 ? 1 : static_cast<size_t>(options_.num_workers);
  const size_t num_devices = options_.num_devices > 0
                                 ? static_cast<size_t>(options_.num_devices)
                                 : workers;
  if (options_.partition_data_graph && options_.max_shards_per_query > 1) {
    init_status_ = Status::InvalidArgument(
        "partition_data_graph is incompatible with max_shards_per_query > 1 "
        "(intra-query sharding assumes every device holds a replica)");
    return;
  }
  if (options_.partition_replicas < 1) {
    init_status_ = Status::InvalidArgument(
        "ServiceOptions.partition_replicas must be >= 1 (got " +
        std::to_string(options_.partition_replicas) +
        "); use 1 for unreplicated partitions");
    return;
  }
  if (static_cast<size_t>(options_.partition_replicas) > num_devices) {
    init_status_ = Status::InvalidArgument(
        "ServiceOptions.partition_replicas = " +
        std::to_string(options_.partition_replicas) + " exceeds the " +
        std::to_string(num_devices) +
        "-device pool; every replica of a partition needs its own device — "
        "lower partition_replicas or raise num_devices");
    return;
  }
  if (options_.partition_replicas > 1 && !options_.partition_data_graph) {
    init_status_ = Status::InvalidArgument(
        "ServiceOptions.partition_replicas > 1 only applies to the "
        "partitioned data graph; set partition_data_graph = true (replicated "
        "engine execution already stores a full replica per device)");
    return;
  }
  if (options_.partition_replicas > 1 && options_.max_shards_per_query > 1) {
    // Unreachable today (partition_data_graph already excludes sharding),
    // but keep the combination check self-contained in case the gate above
    // is ever relaxed.
    init_status_ = Status::InvalidArgument(
        "partition_replicas > 1 is incompatible with max_shards_per_query > "
        "1 (a query's shards would contend with its replica lanes for the "
        "same pool)");
    return;
  }
  devices_ =
      std::make_unique<DevicePool>(num_devices, engine_.options().device);
  devices_->RegisterMetrics(metrics_);
  if (options_.partition_data_graph) {
    // Workers have not started, so the pool is idle: take every device (in
    // index order) and build its share(s) on it. The leases drop at scope
    // exit; queries re-acquire what they need per execution.
    Result<std::vector<DevicePool::Lease>> leases_or = devices_->AcquireAll();
    if (!leases_or.ok()) {  // unreachable on a fresh pool, but be explicit
      init_status_ = leases_or.status();
      return;
    }
    std::vector<DevicePool::Lease> leases = std::move(leases_or.value());
    std::vector<gpusim::Device*> devs;
    devs.reserve(leases.size());
    for (DevicePool::Lease& l : leases) devs.push_back(l.get());
    const HashVertexPartitioner default_partitioner;
    const GraphPartitioner& partitioner = options_.partitioner
                                              ? *options_.partitioner
                                              : default_partitioner;
    if (options_.partition_replicas > 1) {
      Result<ReplicatedGraph> rg = ReplicatedGraph::Build(
          devs, data, engine_.options(), partitioner,
          /*partitions=*/devs.size(),
          static_cast<size_t>(options_.partition_replicas));
      if (!rg.ok()) {
        init_status_ = rg.status();
        return;
      }
      replicated_ = std::make_unique<ReplicatedGraph>(std::move(rg.value()));
    } else {
      Result<PartitionedGraph> pg = PartitionedGraph::Build(
          devs, data, engine_.options(), partitioner);
      if (!pg.ok()) {
        init_status_ = pg.status();
        return;
      }
      partitioned_ = std::make_unique<PartitionedGraph>(std::move(pg.value()));
    }
  }
  pool_ = std::make_unique<ThreadPool>(workers);
  for (size_t i = 0; i < workers; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
    // Fail whatever never reached a worker; running queries finish below.
    while (!queue_.empty()) {
      TicketPtr t = std::move(queue_.front());
      queue_.pop_front();
      FinishLocked(t, Status::Cancelled("service shut down before ticket " +
                                        std::to_string(t->id) + " started"));
    }
  }
  work_cv_.NotifyAll();
  space_cv_.NotifyAll();
  pool_.reset();  // drains the worker loops and joins
}

Result<QueryTicket> QueryService::Submit(Graph query,
                                         const SubmitOptions& options) {
  if (!init_status_.ok()) return init_status_;
  TicketPtr ticket;
  {
    MutexLock lock(mu_);
    ++stats_.submitted;
    if (queue_.size() >= options_.max_queue_depth && !stopping_) {
      if (options_.overload == OverloadPolicy::kReject) {
        ++stats_.rejected;
        return Status::ResourceExhausted(
            "admission queue full (max_queue_depth=" +
            std::to_string(options_.max_queue_depth) + "); retry later");
      }
      while (!stopping_ && queue_.size() >= options_.max_queue_depth) {
        space_cv_.Wait(mu_);
      }
    }
    if (stopping_) {
      ++stats_.rejected;
      return Status::Cancelled("service is shutting down");
    }

    ticket = std::make_shared<TicketState>();
    ticket->id = next_id_++;
    ticket->query = std::move(query);
    if (options.trace) {
      ticket->tracer = std::make_shared<obs::Tracer>();
      ticket->submit_ns = service_clock_.NowNanos();
    }
    ticket->max_attempts = options.max_attempts > 0
                               ? options.max_attempts
                               : options_.default_max_attempts;
    const double deadline_ms = options.deadline_ms > 0
                                   ? options.deadline_ms
                                   : options_.default_deadline_ms;
    if (deadline_ms > 0) {
      ticket->has_deadline = true;
      ticket->deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 deadline_ms));
    }
    queue_.push_back(ticket);
    ++stats_.admitted;
  }
  work_cv_.NotifyOne();
  return QueryTicket(std::move(ticket));
}

std::optional<Result<QueryResult>> QueryService::Poll(
    const QueryTicket& ticket) {
  if (!ticket.valid()) {
    return Result<QueryResult>(Status::InvalidArgument("invalid ticket"));
  }
  std::optional<Result<PagedQueryResult>> paged;
  {
    MutexLock lock(mu_);
    TicketState& t = *ticket.state_;
    if (t.phase != Phase::kDone) return std::nullopt;
    if (t.taken) return Result<QueryResult>(AlreadyConsumed(t.id));
    t.taken = true;
    paged = std::move(*t.result);
  }
  if (!paged->ok()) return Result<QueryResult>(paged->status());
  // Materialize outside the lock: every copy is host-mediated (uncharged),
  // so the table and stats stay bit-identical to the eager merge.
  gpusim::Device tmp(engine_.options().device);
  return Result<QueryResult>(ToQueryResult(std::move(paged->value()), tmp));
}

Result<QueryResult> QueryService::Wait(const QueryTicket& ticket) {
  if (!ticket.valid()) return Status::InvalidArgument("invalid ticket");
  std::optional<Result<PagedQueryResult>> paged;
  {
    MutexLock lock(mu_);
    TicketState& t = *ticket.state_;
    while (t.phase != Phase::kDone) done_cv_.Wait(mu_);
    if (t.taken) return AlreadyConsumed(t.id);
    t.taken = true;
    paged = std::move(*t.result);
  }
  if (!paged->ok()) return paged->status();
  gpusim::Device tmp(engine_.options().device);
  return ToQueryResult(std::move(paged->value()), tmp);
}

Status QueryService::CopyPageChunks(const PagedQueryResult& paged,
                                    size_t row_begin, size_t take,
                                    std::vector<VertexId>& dst) {
  const ResultManifest& manifest = paged.manifest;
  const size_t cols = manifest.cols();
  size_t offset = 0;
  for (const ManifestSegment& seg : manifest.Slice(row_begin, take)) {
    const ResultManifest::Part& part = manifest.part(seg.part);
    VertexId* out = dst.data() + offset * cols;
    if (part.device_ordinal >= 0) {
      // Lease exactly the owning device for this chunk. One lease at a
      // time — FetchPage never holds two, so it cannot deadlock against
      // workers (or other cursors) however the segment owners interleave.
      Result<DevicePool::Lease> lease_or =
          devices_->AcquireDevice(static_cast<size_t>(part.device_ordinal));
      if (!lease_or.ok()) return lease_or.status();
      gpusim::Device& dev = *lease_or.value();
      if (dev.fault_epoch() != part.fault_epoch) {
        // Fail-stop: the owner tripped (and was possibly repaired) after
        // producing this partial — its resident copy did not survive.
        return Status::Unavailable(
            "partial result on device " +
            std::to_string(part.device_ordinal) +
            " was lost to a device fault; the query must be recomputed");
      }
      manifest.CopyChunk(seg, out);
      // The page-out is the device->host movement the eager merge never
      // paid per page; charge it (honoring armed fault triggers) on the
      // owner.
      dev.ChargeRemoteTransfer(seg.count * cols * sizeof(VertexId));
      if (!dev.healthy()) {
        return Status::Unavailable(
            "device " + std::to_string(part.device_ordinal) +
            " failed while paging out a result chunk (" +
            dev.fault_message() + ")");
      }
    } else {
      // Not pool-resident (produced on a private engine device): the rows
      // are host-consumable for free.
      manifest.CopyChunk(seg, out);
    }
    offset += seg.count;
  }
  return Status::Ok();
}

Result<ResultPage> QueryService::FetchPage(const QueryTicket& ticket,
                                           const PageOptions& options) {
  if (!ticket.valid()) return Status::InvalidArgument("invalid ticket");
  TicketState& t = *ticket.state_;
  std::shared_ptr<obs::Tracer> tracer;
  int max_attempts = 1;
  ResultPage page;
  size_t take = 0;
  size_t total = 0;
  {
    MutexLock lock(mu_);
    while (t.phase != Phase::kDone) done_cv_.Wait(mu_);
    if (t.cursor_closed) return CursorClosed(t.id);
    if (!t.cursor.has_value()) {
      if (t.taken) return AlreadyConsumed(t.id);
      t.taken = true;
      if (!t.result->ok()) return t.result->status();
      TicketState::Cursor cursor;
      cursor.paged = std::move(t.result->value());
      t.cursor.emplace(std::move(cursor));
      ++stats_.cursors_opened;
      stats_.cursor_resident_bytes += t.cursor->paged.manifest.resident_bytes();
    }
    // Serialize on the cursor: its holder pages chunks outside this lock.
    while (t.cursor.has_value() && t.cursor->busy) done_cv_.Wait(mu_);
    if (t.cursor_closed || !t.cursor.has_value()) return CursorClosed(t.id);
    t.cursor->busy = true;
    tracer = t.tracer;
    max_attempts = t.max_attempts;

    const ResultManifest& manifest = t.cursor->paged.manifest;
    total = manifest.rows();
    page.cols = manifest.cols();
    page.column_to_query = t.cursor->paged.column_to_query;
    page.row_begin = t.cursor->next_row;
    page.page_index = t.cursor->pages;
    take = total - page.row_begin;
    if (options.max_rows > 0) take = std::min(take, options.max_rows);
    if (options_.page_budget_bytes > 0 && page.cols > 0) {
      // The host-residency bound: a page holds at most page_budget_bytes
      // of match rows, never rounded below one row.
      const size_t budget_rows = std::max<size_t>(
          1, options_.page_budget_bytes / (page.cols * sizeof(VertexId)));
      take = std::min(take, budget_rows);
    }
  }

  // Materialize the page with the cursor marked busy but the service lock
  // released: chunk copies lease pool devices and may block on them.
  const uint64_t span_start = tracer ? service_clock_.NowNanos() : 0;
  page.rows.resize(take * page.cols);
  Status page_status = Status::Ok();
  for (int attempt = 1;; ++attempt) {
    page_status = CopyPageChunks(t.cursor->paged, page.row_begin, take,
                                 page.rows);
    if (page_status.ok()) break;
    const StatusCode code = page_status.code();
    const bool device_fault =
        code == StatusCode::kUnavailable || code == StatusCode::kAborted;
    if (device_fault) {
      MutexLock lock(mu_);
      ++stats_.device_failures;
    }
    if (!device_fault || attempt >= max_attempts) break;
    // The device-resident partials are gone; recompute the result on
    // healthy hardware. Determinism makes the rebuilt table identical, so
    // the rows already served stay a valid prefix and this page simply
    // retries against the fresh manifest.
    obs::TraceContext trace;
    if (tracer) trace = obs::TraceContext{tracer.get(), -1, obs::kHostDevice};
    Result<PagedQueryResult> rebuilt = RunOne(t.query, 1, trace);
    if (!rebuilt.ok()) {
      page_status = rebuilt.status();
      break;
    }
    GSI_CHECK_MSG(rebuilt->manifest.rows() == total &&
                      rebuilt->manifest.cols() == page.cols,
                  "rebuilt cursor result diverged from the original");
    const bool failover = devices_->stats().quarantined_now > 0;
    {
      MutexLock lock(mu_);
      stats_.cursor_resident_bytes -= t.cursor->paged.manifest.resident_bytes();
      t.cursor->paged = std::move(rebuilt.value());
      stats_.cursor_resident_bytes += t.cursor->paged.manifest.resident_bytes();
      ++t.cursor->rebuilds;
      ++stats_.cursor_rebuilds;
      ++stats_.retries;
      if (failover) ++stats_.failovers;
    }
  }

  if (!page_status.ok()) {
    {
      MutexLock lock(mu_);
      t.cursor->busy = false;
    }
    done_cv_.NotifyAll();
    if (page_status.code() == StatusCode::kAborted) {
      // Internal propagation (a device wait invalidated mid-flight);
      // callers see the retriable availability failure.
      return Status::Unavailable(page_status.message());
    }
    return page_status;
  }

  page.num_rows = take;
  page.done = page.row_begin + take >= total;
  const size_t page_bytes = take * page.cols * sizeof(VertexId);
  uint64_t rebuilds = 0;
  {
    MutexLock lock(mu_);
    t.cursor->next_row = page.row_begin + take;
    ++t.cursor->pages;
    t.cursor->busy = false;
    rebuilds = t.cursor->rebuilds;
    ++stats_.result_pages;
    stats_.result_page_bytes += page_bytes;
    stats_.peak_page_bytes = std::max(stats_.peak_page_bytes, page_bytes);
  }
  done_cv_.NotifyAll();
  if (tracer) {
    const int32_t span =
        tracer->RecordSpan("fetch_page", obs::kHostDevice, span_start,
                           service_clock_.NowNanos(), /*parent=*/-1);
    tracer->AddAttr(span, "page_index", std::to_string(page.page_index));
    tracer->AddAttr(span, "rows", std::to_string(page.num_rows));
    tracer->AddAttr(span, "bytes", std::to_string(page_bytes));
    tracer->AddAttr(span, "rebuilds", std::to_string(rebuilds));
  }
  return page;
}

Status QueryService::CloseCursor(const QueryTicket& ticket) {
  if (!ticket.valid()) return Status::InvalidArgument("invalid ticket");
  TicketState& t = *ticket.state_;
  MutexLock lock(mu_);
  if (t.cursor_closed) return Status::Ok();  // idempotent
  while (t.cursor.has_value() && t.cursor->busy) done_cv_.Wait(mu_);
  t.cursor_closed = true;
  if (t.cursor.has_value()) {
    stats_.cursor_resident_bytes -= t.cursor->paged.manifest.resident_bytes();
    ++stats_.cursors_closed;
    t.cursor.reset();  // drops the device-resident partial tables
  }
  return Status::Ok();
}

bool QueryService::Cancel(const QueryTicket& ticket) {
  if (!ticket.valid()) return false;
  MutexLock lock(mu_);
  if (ticket.state_->phase != Phase::kQueued) return false;
  auto it = std::find(queue_.begin(), queue_.end(), ticket.state_);
  if (it == queue_.end()) return false;  // being picked up right now
  queue_.erase(it);
  FinishLocked(ticket.state_,
               Status::Cancelled("ticket " + std::to_string(ticket.id()) +
                                 " cancelled before execution"));
  space_cv_.NotifyOne();
  return true;
}

void QueryService::Drain() {
  MutexLock lock(mu_);
  while (!queue_.empty() || in_flight_ != 0) done_cv_.Wait(mu_);
}

std::shared_ptr<const obs::Tracer> QueryService::GetTrace(
    const QueryTicket& ticket) const {
  if (!ticket.valid()) return nullptr;
  MutexLock lock(mu_);
  return ticket.state_->tracer;
}

std::string QueryService::ExportMetrics() const {
  return metrics_.ExportPrometheus();
}

std::string QueryService::MetricsDebugString() const {
  return metrics_.DebugString();
}

void QueryService::RegisterServiceMetrics() {
  latency_hist_ = metrics_.GetHistogram(
      "gsi_query_simulated_ms",
      "Simulated end-to-end latency of completed-ok queries (ms)",
      {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250,
       500, 1000});
  // Pull collector over the guarded counters: one coherent ServiceStats
  // snapshot per scrape instead of duplicated per-field instruments.
  metrics_.RegisterCollector([this](obs::MetricsSink& sink) {
    ServiceStats s;
    {
      MutexLock lock(mu_);
      s = stats_;
      s.queue_depth = queue_.size();
      s.in_flight = in_flight_;
    }
    sink.AddCounter("gsi_service_submitted_total", "Submit calls",
                    static_cast<double>(s.submitted));
    sink.AddCounter("gsi_service_admitted_total", "Tickets admitted",
                    static_cast<double>(s.admitted));
    sink.AddCounter("gsi_service_rejected_total",
                    "Submissions shed by admission control",
                    static_cast<double>(s.rejected));
    sink.AddCounter("gsi_service_cancelled_total",
                    "Tickets cancelled before execution",
                    static_cast<double>(s.cancelled));
    sink.AddCounter("gsi_service_expired_total",
                    "Tickets queued past their deadline",
                    static_cast<double>(s.expired));
    sink.AddCounter("gsi_service_completed_total",
                    "Queries executed to a result",
                    static_cast<double>(s.completed_ok), "status=\"ok\"");
    sink.AddCounter("gsi_service_completed_total",
                    "Queries executed to a result",
                    static_cast<double>(s.failed), "status=\"error\"");
    sink.AddGauge("gsi_service_queue_depth",
                  "Admitted tickets waiting for a worker",
                  static_cast<double>(s.queue_depth));
    sink.AddGauge("gsi_service_in_flight", "Currently executing queries",
                  static_cast<double>(s.in_flight));
    sink.AddCounter("gsi_service_sharded_queries_total",
                    "Completed-ok queries whose join fanned out",
                    static_cast<double>(s.sharded_queries));
    sink.AddCounter("gsi_service_shards_executed_total",
                    "Join shards across sharded queries",
                    static_cast<double>(s.shards_executed));
    sink.AddCounter("gsi_service_partitioned_queries_total",
                    "Completed-ok queries on the partitioned data graph",
                    static_cast<double>(s.partitioned_queries));
    sink.AddCounter("gsi_service_replicated_queries_total",
                    "Completed-ok queries via a replica selection",
                    static_cast<double>(s.replicated_queries));
    sink.AddCounter("gsi_service_replica_lanes_total",
                    "Distinct devices held, summed over replicated queries",
                    static_cast<double>(s.replica_lanes_total));
    sink.AddCounter("gsi_service_remote_probes_total",
                    "Cross-partition neighbor probes",
                    static_cast<double>(s.remote_probes));
    sink.AddCounter("gsi_service_co_located_probes_total",
                    "Probes a co-resident replica served locally",
                    static_cast<double>(s.co_located_probes));
    sink.AddCounter("gsi_service_halo_bytes_total",
                    "Interconnect bytes moved (filter gathers + join merges)",
                    static_cast<double>(s.halo_bytes));
    sink.AddCounter("gsi_service_device_failures_total",
                    "Execution attempts that died on a failed device",
                    static_cast<double>(s.device_failures));
    sink.AddCounter("gsi_service_retries_total",
                    "Re-executions after a device-failed attempt",
                    static_cast<double>(s.retries));
    sink.AddCounter("gsi_service_failovers_total",
                    "Retries that had to select around a quarantined device",
                    static_cast<double>(s.failovers));
    sink.AddCounter("gsi_service_unavailable_total",
                    "Queries that exhausted retries and failed kUnavailable",
                    static_cast<double>(s.unavailable_queries));
    sink.AddCounter("gsi_result_pages_total",
                    "Result pages served by FetchPage",
                    static_cast<double>(s.result_pages));
    sink.AddCounter("gsi_result_page_bytes_total",
                    "Match-row bytes across served result pages",
                    static_cast<double>(s.result_page_bytes));
    sink.AddCounter("gsi_cursors_opened_total",
                    "Result cursors opened by a first FetchPage",
                    static_cast<double>(s.cursors_opened));
    sink.AddCounter("gsi_cursor_rebuilds_total",
                    "Cursors recomputed after losing device partials",
                    static_cast<double>(s.cursor_rebuilds));
    sink.AddGauge("gsi_open_cursors",
                  "Cursors opened and not yet closed via CloseCursor",
                  static_cast<double>(s.cursors_opened - s.cursors_closed));
    sink.AddGauge("gsi_result_resident_bytes",
                  "Manifest bytes pinned on pool devices by open cursors",
                  static_cast<double>(s.cursor_resident_bytes));
    sink.AddGauge("gsi_service_max_shard_skew",
                  "Worst max/mean per-shard time observed",
                  s.max_shard_skew);
    sink.AddGauge("gsi_service_max_partition_skew",
                  "Worst max/mean per-partition time observed",
                  s.max_partition_skew);
  });
  // Halo-cache families, summed across the per-device caches. The caches
  // are built after this registration but before any worker starts, so
  // every scrape observes either no caches (budget 0 — families absent,
  // like the filter cache's) or the full, immutable set of them.
  metrics_.RegisterCollector([this](obs::MetricsSink& sink) {
    HaloCache::Stats total;
    bool any = false;
    const auto fold = [&](const HaloCache* c) {
      if (c == nullptr) return;
      const HaloCache::Stats s = c->stats();
      total.hits += s.hits;
      total.hit_bytes += s.hit_bytes;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.resident_bytes += s.resident_bytes;
      any = true;
    };
    if (partitioned_) {
      for (size_t p = 0; p < partitioned_->num_partitions(); ++p) {
        fold(partitioned_->halo_cache(static_cast<PartitionId>(p)));
      }
    }
    if (replicated_) {
      for (size_t d = 0; d < replicated_->num_devices(); ++d) {
        fold(replicated_->halo_cache(d));
      }
    }
    if (!any) return;
    sink.AddCounter("gsi_halo_cache_hits_total",
                    "Remote probes served from a device halo cache",
                    static_cast<double>(total.hits));
    sink.AddCounter("gsi_halo_cache_misses_total",
                    "Cacheable remote probes that went to the interconnect",
                    static_cast<double>(total.misses));
    sink.AddCounter("gsi_halo_cache_evictions_total",
                    "Halo-cache entries evicted to stay under budget",
                    static_cast<double>(total.evictions));
    sink.AddCounter("gsi_halo_cache_hit_bytes_total",
                    "Bytes halo-cache hits served without the interconnect",
                    static_cast<double>(total.hit_bytes));
    sink.AddGauge("gsi_halo_cache_resident_bytes",
                  "Bytes currently resident across all halo caches",
                  static_cast<double>(total.resident_bytes));
  });
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  std::vector<double> latencies;
  {
    MutexLock lock(mu_);
    out = stats_;
    out.queue_depth = queue_.size();
    out.in_flight = in_flight_;
    latencies = latencies_ms_;
  }
  // The percentile sort and pool/cache snapshots lock elsewhere — do them
  // outside the critical section.
  std::sort(latencies.begin(), latencies.end());
  out.p50_simulated_ms = PercentileOfSorted(latencies, 0.5);
  out.p99_simulated_ms = PercentileOfSorted(latencies, 0.99);
  if (cache_) out.cache = cache_->stats();
  if (devices_) out.pool = devices_->stats();
  if (out.replicated_queries > 0) {
    out.avg_replica_lanes = static_cast<double>(out.replica_lanes_total) /
                            static_cast<double>(out.replicated_queries);
  }
  out.replica_pick_skew = out.pool.replica_pick_skew();
  out.quarantined_devices = out.pool.quarantined_now;
  return out;
}

Status QueryService::InjectDeviceFault(size_t index, gpusim::FaultPlan plan) {
  if (!init_status_.ok()) return init_status_;
  return devices_->InjectFault(index, std::move(plan));
}

bool QueryService::RepairDevice(size_t index) {
  return devices_ != nullptr && devices_->Repair(index);
}

void QueryService::FinishLocked(const TicketPtr& ticket,
                                Result<PagedQueryResult> result) {
  if (result.ok()) {
    ++stats_.completed_ok;
    stats_.sum_simulated_ms += result->stats.total_ms;
    if (result->stats.shards_used > 1) {
      ++stats_.sharded_queries;
      stats_.shards_executed += result->stats.shards_used;
      stats_.max_shard_skew =
          std::max(stats_.max_shard_skew, result->stats.shard_skew);
    }
    if (result->stats.partitions_used > 0) {
      ++stats_.partitioned_queries;
      stats_.remote_probes += result->stats.remote_probes;
      stats_.halo_bytes += result->stats.halo_bytes;
      stats_.halo_cache_hits += result->stats.halo_cache_hits;
      stats_.halo_cache_bytes += result->stats.halo_cache_bytes;
      stats_.max_partition_skew =
          std::max(stats_.max_partition_skew, result->stats.partition_skew);
    }
    if (result->stats.replica_lanes > 0) {
      ++stats_.replicated_queries;
      stats_.replica_lanes_total += result->stats.replica_lanes;
      stats_.co_located_probes += result->stats.co_located_probes;
    }
    if (latency_hist_ != nullptr) {
      latency_hist_->Observe(result->stats.total_ms);
    }
    if (latencies_ms_.size() < kLatencyWindow) {
      latencies_ms_.push_back(result->stats.total_ms);
    } else {
      latencies_ms_[latency_cursor_] = result->stats.total_ms;
      latency_cursor_ = (latency_cursor_ + 1) % kLatencyWindow;
    }
  } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
    ++stats_.expired;
  } else if (result.status().code() == StatusCode::kCancelled) {
    ++stats_.cancelled;
  } else {
    ++stats_.failed;
    if (result.status().code() == StatusCode::kUnavailable) {
      ++stats_.unavailable_queries;
    }
  }
  ticket->result = std::move(result);
  ticket->phase = Phase::kDone;
  done_cv_.NotifyAll();
}

void QueryService::WorkerLoop() {
  // Devices come from the shared pool per query (RunOne), reused across
  // queries without resets: per-query stats are deltas
  // (RunFilterStage/RunJoinStageSharded), so isolation matches
  // QueryEngine::RunBatch.
  for (;;) {
    TicketPtr ticket;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ with a drained queue
      ticket = std::move(queue_.front());
      queue_.pop_front();
      space_cv_.NotifyOne();
      if (ticket->has_deadline && Clock::now() > ticket->deadline) {
        FinishLocked(ticket,
                     Status::DeadlineExceeded(
                         "ticket " + std::to_string(ticket->id) +
                         " spent longer than its deadline in the queue"));
        continue;
      }
      ticket->phase = Phase::kRunning;
      ++in_flight_;
    }
    Result<PagedQueryResult> result = [&] {
      if (!ticket->tracer) {
        return RunOne(ticket->query, ticket->max_attempts,
                      obs::TraceContext{});
      }
      // Traced ticket: close the queue-wait span (opened conceptually at
      // admission) and parent the execution under a host-track root. Both
      // use the service steady clock — wall time; the device spans below
      // them use cycle clocks and stay byte-stable.
      obs::Tracer& tracer = *ticket->tracer;
      tracer.RecordSpan("queue_wait", obs::kHostDevice, ticket->submit_ns,
                        service_clock_.NowNanos(), /*parent=*/-1);
      obs::TraceContext root_ctx{&tracer, -1, obs::kHostDevice};
      obs::ScopedSpan root(root_ctx, "query", service_clock_);
      root.AddAttr("ticket", ticket->id);
      return RunOne(ticket->query, ticket->max_attempts, root.context());
    }();
    {
      MutexLock lock(mu_);
      --in_flight_;
      FinishLocked(ticket, std::move(result));
    }
  }
}

Result<FilterResult> QueryService::FilterViaCache(
    const Graph& query, gpusim::Device& materialize_dev, QueryStats& stats,
    bool* hit, const obs::TraceContext& trace,
    const std::function<Result<FilterResult>()>& fresh_filter) {
  if (hit != nullptr) *hit = false;
  if (!cache_) return fresh_filter();
  const std::string key = FilterCache::KeyOf(query);
  if (std::shared_ptr<const FilterCache::Entry> entry = cache_->Lookup(key)) {
    // Hit: skip the scan kernels, re-upload the memoized candidate lists
    // (and bitset kernel) onto `materialize_dev`. The fresh path's stage
    // opens its own "filter" span, so only the hit opens one here.
    const obs::DeviceCycleClock clock(materialize_dev);
    obs::ScopedSpan span(trace, "filter", clock,
                         trace.device >= 0 ? trace.device
                                           : materialize_dev.ordinal());
    span.AddAttr("cache", "hit");
    const gpusim::MemStats before = materialize_dev.stats();
    FilterResult filtered = FilterCache::Materialize(
        materialize_dev, *entry, data_->num_vertices(),
        engine_.options().filter.build_bitmaps);
    stats.filter = materialize_dev.stats() - before;
    stats.min_candidate_size = entry->min_candidate_size;
    span.AddAttr("min_candidate_size",
                 static_cast<uint64_t>(entry->min_candidate_size));
    if (hit != nullptr) *hit = true;
    return filtered;
  }
  Result<FilterResult> fresh = fresh_filter();
  if (fresh.ok()) cache_->Insert(key, FilterCache::MakeEntry(*fresh));
  return fresh;
}

Result<PagedQueryResult> QueryService::RunPartitionedFlow(
    const Graph& query, gpusim::Device& primary,
    const obs::TraceContext& trace,
    const std::function<Result<FilterResult>(QueryStats&, double*)>&
        fresh_filter,
    const std::function<Result<PagedQueryResult>(FilterResult, QueryStats)>&
        join) {
  WallTimer wall;
  QueryStats stats;
  double filter_parallel_ms = 0;
  bool cache_hit = false;
  Result<FilterResult> filtered =
      FilterViaCache(query, primary, stats, &cache_hit, trace, [&] {
        return fresh_filter(stats, &filter_parallel_ms);
      });
  if (!filtered.ok()) return filtered.status();
  if (cache_hit) {
    // The memoized lists are already global: the per-partition scans (and
    // their halo gather) were skipped and the phase ran on the primary.
    filter_parallel_ms = stats.filter.SimulatedMs(primary.config());
  }
  Result<PagedQueryResult> out = join(std::move(filtered.value()), stats);
  if (out.ok()) {
    // The join stage derives filter_ms from the summed counters; restore
    // the fanned-out filter's makespan so total_ms reflects wall-parallel
    // partitions, not serialized work.
    out->stats.filter_ms = filter_parallel_ms;
    out->stats.total_ms = out->stats.filter_ms + out->stats.join_ms;
    out->stats.wall_ms = wall.ElapsedMs();
  }
  return out;
}

Result<PagedQueryResult> QueryService::RunOne(const Graph& query,
                                              int max_attempts,
                                              const obs::TraceContext& trace) {
  max_attempts = std::max(1, max_attempts);
  double backoff_ms = 0;
  for (int attempt = 1;; ++attempt) {
    Result<PagedQueryResult> out = RunOneAttempt(query, trace);
    if (out.ok()) {
      out->stats.attempts = static_cast<size_t>(attempt);
      out->stats.backoff_ms = backoff_ms;
      out->stats.total_ms += backoff_ms;
      return out;
    }
    const StatusCode code = out.status().code();
    const bool device_fault =
        code == StatusCode::kUnavailable || code == StatusCode::kAborted;
    if (device_fault) {
      MutexLock lock(mu_);
      ++stats_.device_failures;
    }
    if (!device_fault || attempt >= max_attempts) {
      if (code == StatusCode::kAborted) {
        // kAborted is internal propagation (a wait invalidated mid-flight);
        // callers see the retriable availability failure.
        return Status::Unavailable(out.status().message());
      }
      return out;
    }
    // Retry on a fresh acquisition: the poisoned lease already quarantined
    // the failed device, so re-acquiring selects healthy hardware (a
    // failover) — or the same device after an operator Repair.
    const bool failover = devices_->stats().quarantined_now > 0;
    {
      MutexLock lock(mu_);
      ++stats_.retries;
      if (failover) ++stats_.failovers;
    }
    const double step =
        options_.retry_backoff_base_ms *
        static_cast<double>(uint64_t{1} << std::min(attempt - 1, 30));
    backoff_ms += std::min(options_.retry_backoff_cap_ms, step);
    if (trace.tracer != nullptr) {
      // Zero-width host markers: the failure is a point event (the attempt
      // span under it already shows the lost work).
      const uint64_t now = service_clock_.NowNanos();
      const int32_t fail_span = trace.tracer->RecordSpan(
          "device_failure", obs::kHostDevice, now, now, trace.parent);
      trace.tracer->AddAttr(fail_span, "status", out.status().message());
      const int32_t retry_span = trace.tracer->RecordSpan(
          "retry", obs::kHostDevice, now, now, trace.parent);
      trace.tracer->AddAttr(retry_span, "attempt",
                            std::to_string(attempt + 1));
      trace.tracer->AddAttr(retry_span, "failover",
                            failover ? "true" : "false");
    }
  }
}

Result<PagedQueryResult> QueryService::RunOneAttempt(
    const Graph& query, const obs::TraceContext& trace) {
  const GsiOptions& go = engine_.options();
  if (replicated_) {
    // R-way replicated partitions: lease one replica of each (packed onto
    // as few devices as possible, so other lanes stay free for concurrent
    // queries), then serve every partition from its leased replica. The
    // primary (gather/merge/materialize device) is the lowest-indexed
    // leased device — the same device RunFilterStageReplicated picks.
    const ReplicatedGraph& rg = *replicated_;
    Result<DevicePool::GroupLeases> leases_or =
        devices_->AcquireOneOfEach(rg.placement().lease_groups());
    if (!leases_or.ok()) return leases_or.status();
    DevicePool::GroupLeases leases = std::move(leases_or.value());
    Result<ReplicaSelection> sel =
        SelectionFromDevices(rg, leases.device_of_group);
    if (!sel.ok()) return sel.status();
    return RunPartitionedFlow(
        query, *leases.leases.front().get(), trace,
        [&](QueryStats& stats, double* parallel_ms) {
          return RunFilterStageReplicated(rg, *sel, query, stats,
                                          parallel_ms, trace);
        },
        [&](FilterResult filtered, QueryStats stats) {
          return RunJoinStageReplicatedPaged(rg, *sel, query,
                                             std::move(filtered), stats,
                                             trace);
        });
  }
  if (partitioned_) {
    // The partitions *are* the data: a query needs every pool device, so
    // partitioned queries serialize on AcquireAll (workers just queue).
    const PartitionedGraph& pg = *partitioned_;
    Result<std::vector<DevicePool::Lease>> all_or = devices_->AcquireAll();
    if (!all_or.ok()) return all_or.status();
    std::vector<DevicePool::Lease> all = std::move(all_or.value());
    return RunPartitionedFlow(
        query, pg.device(0), trace,
        [&](QueryStats& stats, double* parallel_ms) {
          return RunFilterStagePartitioned(pg, query, stats, parallel_ms,
                                           trace);
        },
        [&](FilterResult filtered, QueryStats stats) {
          return RunJoinStagePartitionedPaged(pg, query, std::move(filtered),
                                              stats, trace);
        });
  }
  Result<DevicePool::Lease> primary_or = devices_->Acquire();
  if (!primary_or.ok()) return primary_or.status();
  DevicePool::Lease primary = std::move(primary_or.value());
  gpusim::Device& dev = *primary;
  // Attribute single-device spans to the leased device's pool ordinal so
  // the trace track matches the pool's (and the metrics') numbering.
  const obs::TraceContext dev_trace = trace.OnDevice(dev.ordinal());

  WallTimer wall;
  QueryStats stats;
  Result<FilterResult> filtered_or =
      FilterViaCache(query, dev, stats, nullptr, dev_trace, [&] {
        return RunFilterStage(dev, engine_.filter(), query, stats,
                              dev_trace);
      });
  if (!filtered_or.ok()) return filtered_or.status();
  FilterResult filtered = std::move(filtered_or.value());

  // Heavy query + idle devices -> fan the join out. The extra leases are
  // taken without blocking so sharding can never stall a light query, and
  // RAII returns every device when the join finishes (or fails).
  std::vector<DevicePool::Lease> extras;
  std::vector<gpusim::Device*> devs{&dev};
  if (options_.max_shards_per_query > 1 &&
      stats.min_candidate_size >= options_.shard_min_candidates) {
    while (devs.size() <
           static_cast<size_t>(options_.max_shards_per_query)) {
      std::optional<DevicePool::Lease> extra = devices_->TryAcquire();
      if (!extra) break;
      extras.push_back(std::move(*extra));
      devs.push_back(extras.back().get());
    }
  }
  Result<PagedQueryResult> out = RunJoinStageShardedPaged(
      devs, *data_, engine_.store(), go, options_.shard, query,
      std::move(filtered), stats, dev_trace);
  if (out.ok()) out->stats.wall_ms = wall.ElapsedMs();
  return out;
}

}  // namespace gsi
