#ifndef GSI_SERVICE_FILTER_CACHE_H_
#define GSI_SERVICE_FILTER_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/device.h"
#include "graph/graph.h"
#include "gsi/filter.h"
#include "obs/metrics.h"
#include "util/annotations.h"
#include "util/common.h"
#include "util/sync.h"

namespace gsi {

/// Signature-keyed memoization of the filtering phase (the ROADMAP's
/// "batch queries sharing signatures could share filtering work").
///
/// The key is an exact structural serialization of the query graph (vertex
/// count, vertex labels, sorted undirected labeled edge list). Against a
/// fixed data graph and filter configuration, two queries with the same key
/// produce identical candidate sets, so a cache instance must be private to
/// one (data graph, GsiOptions) pair — QueryService owns exactly one.
///
/// Values are host-side candidate lists. A hit skips the O(|V(Q)| * |V(G)|)
/// signature-scan kernels and only pays re-upload plus the bitset kernel,
/// O(sum |C(u)|) — identical candidate sets in, identical match tables out,
/// just a cheaper filter phase. Entries are evicted LRU-first to stay under
/// a byte budget. All methods are thread-safe.
///
/// Ownership: entries are shared_ptr<const Entry> — a looked-up entry
/// stays valid after eviction or Clear, and Materialize builds a fresh
/// FilterResult (device buffers owned by the caller's device) without
/// aliasing the cache. The cache serves every execution strategy: the
/// replicated, sharded and partitioned paths all consume the same global
/// candidate lists, so one instance is shared across them per
/// (data graph, GsiOptions) pair.
class FilterCache {
 public:
  struct Options {
    /// Total budget for cached candidate lists; entries larger than the
    /// whole budget are never admitted.
    size_t max_bytes = 64ull << 20;
  };

  /// Immutable cached filter outcome for one query shape.
  struct Entry {
    /// Sorted candidate list per query vertex (index = query vertex id).
    std::vector<std::vector<VertexId>> candidates;
    size_t min_candidate_size = 0;
    VertexId min_candidate_vertex = kInvalidVertex;
    /// Accounting size of the candidate payload.
    size_t bytes = 0;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;

    double HitRate() const {
      uint64_t lookups = hits + misses;
      return lookups ? static_cast<double>(hits) /
                           static_cast<double>(lookups)
                     : 0;
    }
  };

  FilterCache() : FilterCache(Options{}) {}
  explicit FilterCache(Options options);

  /// Canonical cache key of a query graph (cheap: one pass over vertices
  /// and edges, no isomorphism canonization — structurally identical Graph
  /// objects share a key, relabeled isomorphic ones do not).
  static std::string KeyOf(const Graph& query);

  /// Copies the candidate lists out of a filter-stage result into a
  /// shareable entry.
  static std::shared_ptr<const Entry> MakeEntry(const FilterResult& filtered);

  /// Rebuilds a FilterResult on `dev`, charging the upload and bitset
  /// kernels to it (the cache-hit fast path of the filter stage).
  static FilterResult Materialize(gpusim::Device& dev, const Entry& entry,
                                  size_t num_data_vertices,
                                  bool build_bitmaps);

  /// Returns the entry and marks it most-recently-used; nullptr on miss.
  std::shared_ptr<const Entry> Lookup(const std::string& key)
      GSI_EXCLUDES(mu_);

  /// Inserts (or refreshes) `entry`, evicting least-recently-used entries
  /// until the byte budget holds. Oversized entries are dropped silently.
  void Insert(const std::string& key, std::shared_ptr<const Entry> entry)
      GSI_EXCLUDES(mu_);

  Stats stats() const GSI_EXCLUDES(mu_);
  void Clear() GSI_EXCLUDES(mu_);

  /// Registers a pull collector exporting Stats as gsi_filter_cache_*
  /// families. The cache must outlive the registry's exports.
  void RegisterMetrics(obs::MetricsRegistry& registry);

 private:
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<std::string>::iterator lru_it;
  };

  void EvictWhileOverBudgetLocked() GSI_REQUIRES(mu_);

  Options options_;  // immutable after construction
  mutable Mutex mu_;
  /// Front = most recently used. The map owns the entries; the list orders
  /// the keys for eviction.
  std::list<std::string> lru_ GSI_GUARDED_BY(mu_);
  std::unordered_map<std::string, Slot> map_ GSI_GUARDED_BY(mu_);
  Stats stats_ GSI_GUARDED_BY(mu_);
};

}  // namespace gsi

#endif  // GSI_SERVICE_FILTER_CACHE_H_
