#include "service/device_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gsi {

gpusim::Device* DevicePool::Lease::get() const {
  GSI_CHECK_MSG(pool_ != nullptr, "dereferencing a released device lease");
  return pool_->devices_[index_].get();
}

void DevicePool::Lease::Release() {
  if (pool_ == nullptr) return;
  DevicePool* pool = pool_;
  pool_ = nullptr;
  pool->Release(index_);
}

DevicePool::DevicePool(size_t num_devices, gpusim::DeviceConfig config) {
  num_devices = std::max<size_t>(1, num_devices);
  devices_.reserve(num_devices);
  free_.reserve(num_devices);
  for (size_t i = 0; i < num_devices; ++i) {
    devices_.push_back(std::make_unique<gpusim::Device>(config));
    free_.push_back(num_devices - 1 - i);  // lease low indices first
  }
}

size_t DevicePool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

DevicePool::Lease DevicePool::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  if (free_.empty()) ++stats_.blocked;
  idle_cv_.wait(lock, [this] { return !free_.empty(); });
  size_t index = free_.back();
  free_.pop_back();
  ++stats_.acquired;
  stats_.in_use = devices_.size() - free_.size();
  stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
  return Lease(this, index);
}

std::optional<DevicePool::Lease> DevicePool::TryAcquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    ++stats_.try_failed;
    return std::nullopt;
  }
  size_t index = free_.back();
  free_.pop_back();
  ++stats_.acquired;
  stats_.in_use = devices_.size() - free_.size();
  stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
  return Lease(this, index);
}

std::vector<DevicePool::Lease> DevicePool::AcquireAll() {
  std::vector<Lease> leases;
  leases.reserve(devices_.size());
  bool counted_blocked = false;  // blocked counts calls, not busy indices
  for (size_t i = 0; i < devices_.size(); ++i) {
    std::unique_lock<std::mutex> lock(mu_);
    auto held = [&] {
      return std::find(free_.begin(), free_.end(), i) != free_.end();
    };
    if (!held() && !counted_blocked) {
      ++stats_.blocked;
      counted_blocked = true;
    }
    idle_cv_.wait(lock, held);
    free_.erase(std::find(free_.begin(), free_.end(), i));
    ++stats_.acquired;
    stats_.in_use = devices_.size() - free_.size();
    stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
    leases.push_back(Lease(this, i));
  }
  return leases;
}

std::vector<DevicePool::Lease> DevicePool::AcquireUpTo(size_t max_devices) {
  max_devices = std::max<size_t>(1, max_devices);
  std::vector<Lease> leases;
  leases.push_back(Acquire());
  while (leases.size() < max_devices) {
    std::optional<Lease> extra = TryAcquire();
    if (!extra) break;
    leases.push_back(std::move(*extra));
  }
  return leases;
}

DevicePool::Stats DevicePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.in_use = devices_.size() - free_.size();
  return out;
}

void DevicePool::Release(size_t index) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    GSI_CHECK(index < devices_.size());
    GSI_CHECK_MSG(std::find(free_.begin(), free_.end(), index) == free_.end(),
                  "double release of a pooled device");
    free_.push_back(index);
    stats_.in_use = devices_.size() - free_.size();
  }
  // notify_all, not notify_one: AcquireAll waiters need *specific* indices,
  // so waking one arbitrary waiter could park a freed device next to an
  // Acquire waiter that would take anything.
  idle_cv_.notify_all();
}

}  // namespace gsi
