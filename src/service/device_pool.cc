#include "service/device_pool.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>

#include "util/check.h"

namespace gsi {

gpusim::Device* DevicePool::Lease::get() const {
  GSI_CHECK_MSG(pool_ != nullptr, "dereferencing a released device lease");
  return pool_->devices_[index_].get();
}

void DevicePool::Lease::Release() {
  if (pool_ == nullptr) return;
  DevicePool* pool = pool_;
  pool_ = nullptr;
  pool->Release(index_);
}

double DevicePool::Stats::replica_pick_skew() const {
  uint64_t max = 0;
  uint64_t sum = 0;
  for (uint64_t p : replica_picks) {
    max = std::max(max, p);
    sum += p;
  }
  if (sum == 0 || replica_picks.empty()) return 0;
  return static_cast<double>(max) /
         (static_cast<double>(sum) / static_cast<double>(replica_picks.size()));
}

DevicePool::DevicePool(size_t num_devices, gpusim::DeviceConfig config) {
  num_devices = std::max<size_t>(1, num_devices);
  devices_.reserve(num_devices);
  free_.reserve(num_devices);
  for (size_t i = 0; i < num_devices; ++i) {
    devices_.push_back(std::make_unique<gpusim::Device>(config));
    devices_.back()->set_ordinal(static_cast<int>(i));
    free_.push_back(num_devices - 1 - i);  // lease low indices first
  }
  is_free_.assign(num_devices, 1);
  is_quarantined_.assign(num_devices, 0);
  pending_fault_.resize(num_devices);
  replica_picks_.assign(num_devices, 0);
  released_stats_.resize(num_devices);
}

size_t DevicePool::idle() const {
  MutexLock lock(mu_);
  return free_.size();
}

size_t DevicePool::LiveLocked() const {
  size_t live = 0;
  for (uint8_t q : is_quarantined_) live += q == 0 ? 1 : 0;
  return live;
}

void DevicePool::TakeDeviceLocked(size_t index) {
  free_.erase(std::find(free_.begin(), free_.end(), index));
  is_free_[index] = 0;
  ++stats_.acquired;
  // in_use counts leased devices only; quarantined ones are out of service.
  stats_.in_use = devices_.size() - free_.size() - stats_.quarantined_now;
  stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
  // Lease-acquisition fault trigger (safe here: the device is idle and the
  // new holder's first access is ordered after this critical section).
  devices_[index]->OnLeaseAcquired();
}

Result<DevicePool::Lease> DevicePool::Acquire() {
  MutexLock lock(mu_);
  if (LiveLocked() == 0) {
    return Status::Unavailable(
        "all " + std::to_string(devices_.size()) +
        " pool devices are quarantined; repair one before acquiring");
  }
  if (free_.empty()) ++stats_.blocked;
  while (free_.empty()) {
    idle_cv_.Wait(mu_);
    if (free_.empty() && LiveLocked() == 0) {
      // The wait was satisfiable when it started; poisoned releases then
      // quarantined the last live device underneath it.
      return Status::Aborted(
          "pool drained while waiting: every device was quarantined by a "
          "poisoned lease; repair one before acquiring");
    }
  }
  const size_t index = free_.back();
  TakeDeviceLocked(index);
  return Lease(this, index);
}

std::optional<DevicePool::Lease> DevicePool::TryAcquire() {
  MutexLock lock(mu_);
  if (free_.empty()) {
    ++stats_.try_failed;
    return std::nullopt;
  }
  const size_t index = free_.back();
  TakeDeviceLocked(index);
  return Lease(this, index);
}

Result<DevicePool::Lease> DevicePool::AcquireDevice(size_t index) {
  MutexLock lock(mu_);
  if (index >= devices_.size()) {
    return Status::InvalidArgument(
        "AcquireDevice: device index " + std::to_string(index) +
        " out of range (pool has " + std::to_string(devices_.size()) +
        " devices)");
  }
  if (is_quarantined_[index] != 0) {
    return Status::Unavailable(
        "AcquireDevice needs device " + std::to_string(index) +
        ", which is quarantined (" + devices_[index]->fault_message() +
        "); repair it or rebuild the result elsewhere");
  }
  if (is_free_[index] == 0) ++stats_.blocked;
  while (is_free_[index] == 0 && is_quarantined_[index] == 0) {
    idle_cv_.Wait(mu_);
  }
  if (is_quarantined_[index] != 0) {
    return Status::Aborted(
        "device " + std::to_string(index) +
        " was quarantined while AcquireDevice waited for it (" +
        devices_[index]->fault_message() +
        "); repair it or rebuild the result elsewhere");
  }
  TakeDeviceLocked(index);
  return Lease(this, index);
}

Result<std::vector<DevicePool::Lease>> DevicePool::AcquireAll() {
  std::vector<Lease> leases;
  leases.reserve(devices_.size());
  bool counted_blocked = false;  // blocked counts calls, not busy indices
  for (size_t i = 0; i < devices_.size(); ++i) {
    MutexLock lock(mu_);
    // AcquireAll needs this exact device; quarantine makes that impossible
    // until a repair. Partial leases release via their destructors.
    if (is_quarantined_[i] != 0) {
      const std::string msg =
          "AcquireAll needs device " + std::to_string(i) +
          ", which is quarantined (" + devices_[i]->fault_message() +
          "); repair it to run partitioned queries";
      return counted_blocked ? Status::Aborted(msg) : Status::Unavailable(msg);
    }
    if (is_free_[i] == 0 && !counted_blocked) {
      ++stats_.blocked;
      counted_blocked = true;
    }
    while (is_free_[i] == 0 && is_quarantined_[i] == 0) idle_cv_.Wait(mu_);
    if (is_quarantined_[i] != 0) {
      return Status::Aborted(
          "device " + std::to_string(i) +
          " was quarantined while AcquireAll waited for it (" +
          devices_[i]->fault_message() +
          "); repair it to run partitioned queries");
    }
    TakeDeviceLocked(i);
    leases.push_back(Lease(this, i));
  }
  return leases;
}

Result<std::vector<DevicePool::Lease>> DevicePool::AcquireUpTo(
    size_t max_devices) {
  max_devices = std::max<size_t>(1, max_devices);
  std::vector<Lease> leases;
  Result<Lease> first = Acquire();
  if (!first.ok()) return first.status();
  leases.push_back(std::move(first.value()));
  while (leases.size() < max_devices) {
    std::optional<Lease> extra = TryAcquire();
    if (!extra) break;
    leases.push_back(std::move(*extra));
  }
  return leases;
}

namespace {

std::string GroupMembers(const std::vector<size_t>& group) {
  std::string out;
  for (size_t d : group) {
    if (!out.empty()) out += ", ";
    out += std::to_string(d);
  }
  return out;
}

}  // namespace

Result<DevicePool::GroupLeases> DevicePool::AcquireOneOfEach(
    std::span<const std::vector<size_t>> groups) {
  for (const std::vector<size_t>& group : groups) {
    GSI_CHECK_MSG(!group.empty(), "AcquireOneOfEach given an empty group");
    for (size_t d : group) GSI_CHECK(d < devices_.size());
  }

  GroupLeases out;
  out.device_of_group.resize(groups.size());
  out.lease_of_group.resize(groups.size());
  if (groups.empty()) {
    MutexLock lock(mu_);
    ++stats_.group_acquires;
    return out;
  }

  MutexLock lock(mu_);
  if (size_t dead = DeadGroupLocked(groups); dead < groups.size()) {
    return Status::Unavailable(
        "replica group " + std::to_string(dead) + " has no live device (all "
        "of {" + GroupMembers(groups[dead]) + "} are quarantined); repair "
        "one of them to restore coverage of partition " +
        std::to_string(dead));
  }
  if (!EveryGroupHasIdleLocked(groups)) ++stats_.group_blocked;
  while (!EveryGroupHasIdleLocked(groups)) {
    idle_cv_.Wait(mu_);
    if (size_t dead = DeadGroupLocked(groups); dead < groups.size()) {
      return Status::Aborted(
          "replica group " + std::to_string(dead) + " lost its last live "
          "device while this acquisition waited (all of {" +
          GroupMembers(groups[dead]) + "} are quarantined); repair one of "
          "them to restore coverage of partition " + std::to_string(dead));
    }
  }

  // Pick one free device per group, packing onto devices already picked
  // for earlier groups (see the header for why packing wins), then by
  // fewest historical picks, then lowest index.
  std::vector<uint8_t> picked(devices_.size(), 0);
  std::vector<size_t> distinct;
  for (size_t g = 0; g < groups.size(); ++g) {
    size_t best = devices_.size();
    bool best_picked = false;
    for (size_t d : groups[g]) {
      if (!is_free_[d]) continue;
      const bool reuse = picked[d] != 0;
      if (best == devices_.size() ||
          std::make_tuple(!reuse, replica_picks_[d], d) <
              std::make_tuple(!best_picked, replica_picks_[best], best)) {
        best = d;
        best_picked = reuse;
      }
    }
    GSI_CHECK(best < devices_.size());  // the wait predicate held the lock
    out.device_of_group[g] = best;
    if (!picked[best]) {
      picked[best] = 1;
      distinct.push_back(best);
    }
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    ++replica_picks_[out.device_of_group[g]];
  }

  std::sort(distinct.begin(), distinct.end());
  for (size_t d : distinct) {
    TakeDeviceLocked(d);
    out.leases.push_back(Lease(this, d));
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    out.lease_of_group[g] =
        std::lower_bound(distinct.begin(), distinct.end(),
                         out.device_of_group[g]) -
        distinct.begin();
  }
  ++stats_.group_acquires;
  return out;
}

bool DevicePool::EveryGroupHasIdleLocked(
    std::span<const std::vector<size_t>> groups) const {
  for (const std::vector<size_t>& group : groups) {
    bool any = false;
    for (size_t d : group) any = any || is_free_[d] != 0;
    if (!any) return false;
  }
  return true;
}

size_t DevicePool::DeadGroupLocked(
    std::span<const std::vector<size_t>> groups) const {
  for (size_t g = 0; g < groups.size(); ++g) {
    bool live = false;
    for (size_t d : groups[g]) live = live || is_quarantined_[d] == 0;
    if (!live) return g;
  }
  return groups.size();
}

Status DevicePool::InjectFault(size_t index, gpusim::FaultPlan plan) {
  MutexLock lock(mu_);
  if (index >= devices_.size()) {
    return Status::InvalidArgument(
        "InjectFault: device index " + std::to_string(index) +
        " out of range (pool has " + std::to_string(devices_.size()) +
        " devices)");
  }
  if (is_quarantined_[index] != 0) {
    return Status::InvalidArgument(
        "InjectFault: device " + std::to_string(index) +
        " is already quarantined; Repair it before arming a new fault");
  }
  if (is_free_[index] != 0) {
    // Idle: the pool owns the device exclusively, arm it right now.
    devices_[index]->InjectFault(std::move(plan));
  } else {
    // Leased: its holder is charging it on another thread — defer arming
    // until Release, when the pool owns the device again.
    pending_fault_[index] = std::move(plan);
  }
  return Status::Ok();
}

bool DevicePool::Repair(size_t index) {
  {
    MutexLock lock(mu_);
    if (index >= devices_.size() || is_quarantined_[index] == 0) return false;
    devices_[index]->Repair();
    is_quarantined_[index] = 0;
    is_free_[index] = 1;
    free_.push_back(index);
    ++stats_.repaired;
    --stats_.quarantined_now;
    stats_.in_use = devices_.size() - free_.size() - stats_.quarantined_now;
  }
  idle_cv_.NotifyAll();
  return true;
}

bool DevicePool::quarantined(size_t index) const {
  MutexLock lock(mu_);
  GSI_CHECK(index < devices_.size());
  return is_quarantined_[index] != 0;
}

DevicePool::Stats DevicePool::stats() const {
  MutexLock lock(mu_);
  Stats out = stats_;
  out.in_use = devices_.size() - free_.size() - stats_.quarantined_now;
  out.replica_picks = replica_picks_;
  return out;
}

void DevicePool::RegisterMetrics(obs::MetricsRegistry& registry) {
  registry.RegisterCollector([this](obs::MetricsSink& sink) {
    Stats s;
    std::vector<gpusim::MemStats> mem;
    {
      MutexLock lock(mu_);
      s = stats_;
      s.in_use = devices_.size() - free_.size() - stats_.quarantined_now;
      s.replica_picks = replica_picks_;
      mem = released_stats_;
    }
    sink.AddCounter("gsi_pool_leases_total",
                    "Device leases handed out by the pool",
                    static_cast<double>(s.acquired));
    sink.AddCounter("gsi_pool_try_failed_total",
                    "TryAcquire calls that found no idle device",
                    static_cast<double>(s.try_failed));
    sink.AddCounter("gsi_pool_blocked_total",
                    "Acquire/AcquireAll calls that had to wait",
                    static_cast<double>(s.blocked));
    sink.AddCounter("gsi_pool_group_acquires_total",
                    "AcquireOneOfEach calls completed",
                    static_cast<double>(s.group_acquires));
    sink.AddGauge("gsi_pool_devices", "Devices in the pool",
                  static_cast<double>(devices_.size()));
    sink.AddGauge("gsi_pool_in_use", "Currently leased devices",
                  static_cast<double>(s.in_use));
    sink.AddGauge("gsi_pool_peak_in_use", "High-water mark of leased devices",
                  static_cast<double>(s.peak_in_use));
    sink.AddGauge("gsi_pool_quarantined_devices",
                  "Currently quarantined devices",
                  static_cast<double>(s.quarantined_now));
    sink.AddCounter("gsi_pool_quarantined_total",
                    "Poisoned leases that quarantined a device",
                    static_cast<double>(s.quarantined));
    sink.AddCounter("gsi_pool_repaired_total",
                    "Repair calls that re-admitted a quarantined device",
                    static_cast<double>(s.repaired));
    for (size_t d = 0; d < mem.size(); ++d) {
      const std::string label = "device=\"" + std::to_string(d) + "\"";
      sink.AddCounter("gsi_device_simulated_cycles_total",
                      "Simulated cycles charged to the device (as of its "
                      "last lease release)",
                      static_cast<double>(mem[d].simulated_cycles), label);
      sink.AddCounter("gsi_device_global_load_transactions_total",
                      "Global-memory load transactions",
                      static_cast<double>(mem[d].gld), label);
      sink.AddCounter("gsi_device_global_store_transactions_total",
                      "Global-memory store transactions",
                      static_cast<double>(mem[d].gst), label);
      sink.AddCounter("gsi_device_remote_transactions_total",
                      "Interconnect lines moved to/from the device",
                      static_cast<double>(mem[d].remote_transactions), label);
      sink.AddCounter("gsi_device_kernel_launches_total",
                      "Kernels launched on the device",
                      static_cast<double>(mem[d].kernel_launches), label);
      sink.AddCounter("gsi_pool_replica_picks_total",
                      "Times the device was picked to serve a replica group",
                      static_cast<double>(s.replica_picks[d]), label);
    }
  });
}

void DevicePool::Release(size_t index) {
  {
    MutexLock lock(mu_);
    GSI_CHECK(index < devices_.size());
    GSI_CHECK_MSG(std::find(free_.begin(), free_.end(), index) == free_.end(),
                  "double release of a pooled device");
    // The holder is done charging this device, so reading its counters here
    // cannot race; metrics scrapes read this snapshot instead of the device.
    released_stats_[index] = devices_[index]->stats();
    // A fault injected while the device was leased arms now, when the pool
    // owns the device again (it may trip immediately via fail_on_lease on
    // the next TakeDeviceLocked, or on later charged work).
    if (pending_fault_[index].has_value()) {
      devices_[index]->InjectFault(std::move(*pending_fault_[index]));
      pending_fault_[index].reset();
    }
    if (!devices_[index]->healthy()) {
      // Poisoned lease: quarantine instead of freeing. The device stays
      // neither free nor leased until Repair re-admits it.
      is_quarantined_[index] = 1;
      ++stats_.quarantined;
      ++stats_.quarantined_now;
    } else {
      free_.push_back(index);
      is_free_[index] = 1;
    }
    stats_.in_use = devices_.size() - free_.size() - stats_.quarantined_now;
  }
  // NotifyAll, not NotifyOne: AcquireAll waiters need *specific* indices,
  // so waking one arbitrary waiter could park a freed device next to an
  // Acquire waiter that would take anything. Notify even on quarantine —
  // waiters whose request just became unsatisfiable must wake to fail.
  idle_cv_.NotifyAll();
}

}  // namespace gsi
