#ifndef GSI_SERVICE_DEVICE_POOL_H_
#define GSI_SERVICE_DEVICE_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "gpusim/device.h"

namespace gsi {

/// A fixed set of long-lived simulated devices shared by every worker of a
/// serving process (the multi-GPU pool of Section VIII). Instead of pinning
/// one device per worker thread, workers lease devices per query — so a
/// heavy query can fan its join shards out across however many devices are
/// idle, and light queries never hold more than one.
///
/// A device is held by at most one lease at a time; leases are RAII and
/// return the device on destruction. Devices are never reset between
/// leases — callers measure per-query work as counter deltas, exactly as
/// QueryEngine's per-worker devices do. All methods are thread-safe.
class DevicePool {
 public:
  /// Pool health counters (a snapshot; see stats()).
  struct Stats {
    uint64_t acquired = 0;      ///< leases handed out (incl. AcquireUpTo)
    uint64_t try_failed = 0;    ///< TryAcquire calls that found no idle device
    uint64_t blocked = 0;       ///< Acquire calls that had to wait
    size_t in_use = 0;          ///< currently leased devices
    size_t peak_in_use = 0;     ///< high-water mark of in_use
  };

  /// Move-only handle to one leased device; releases it on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept { *this = std::move(o); }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        Release();
        pool_ = o.pool_;
        index_ = o.index_;
        o.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    bool valid() const { return pool_ != nullptr; }
    gpusim::Device* get() const;
    gpusim::Device& operator*() const { return *get(); }

    /// Returns the device to the pool early (idempotent).
    void Release();

   private:
    friend class DevicePool;
    Lease(DevicePool* pool, size_t index) : pool_(pool), index_(index) {}

    DevicePool* pool_ = nullptr;
    size_t index_ = 0;
  };

  /// Builds `num_devices` devices (at least 1) with identical `config`.
  explicit DevicePool(size_t num_devices,
                      gpusim::DeviceConfig config = gpusim::DeviceConfig());

  size_t size() const { return devices_.size(); }
  size_t idle() const;

  /// Blocks until a device is idle, then leases it.
  Lease Acquire();

  /// Leases an idle device or returns nullopt without blocking.
  std::optional<Lease> TryAcquire();

  /// One blocking lease plus up to `max_devices - 1` more without blocking:
  /// the fan-out primitive — a heavy query takes whatever is idle right
  /// now, never waits for peers to finish. Returns between 1 and
  /// max_devices leases (max_devices == 0 is treated as 1).
  std::vector<Lease> AcquireUpTo(size_t max_devices);

  /// Blocks until every device has been leased, acquiring them in index
  /// order (devices_[0] first) — the primitive of the partitioned data
  /// graph, where a query must run on exactly the devices that hold the
  /// partitions, so queries serialize on the whole set. Acquiring in a
  /// fixed order keeps concurrent AcquireAll callers deadlock-free (they
  /// all contend on index 0 first), and Acquire/TryAcquire holders never
  /// wait on anyone, so no cycle can form. Returned leases are in index
  /// order: leases[p] is device p.
  std::vector<Lease> AcquireAll();

  Stats stats() const;

 private:
  void Release(size_t index);

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::vector<std::unique_ptr<gpusim::Device>> devices_;
  std::vector<size_t> free_;  // indices of idle devices (LIFO)
  Stats stats_;
};

}  // namespace gsi

#endif  // GSI_SERVICE_DEVICE_POOL_H_
