#ifndef GSI_SERVICE_DEVICE_POOL_H_
#define GSI_SERVICE_DEVICE_POOL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "obs/metrics.h"
#include "util/annotations.h"
#include "util/status.h"
#include "util/sync.h"

namespace gsi {

/// A fixed set of long-lived simulated devices shared by every worker of a
/// serving process (the multi-GPU pool of Section VIII). Instead of pinning
/// one device per worker thread, workers lease devices per query — so a
/// heavy query can fan its join shards out across however many devices are
/// idle, and light queries never hold more than one.
///
/// A device is held by at most one lease at a time; leases are RAII and
/// return the device on destruction. Devices are never reset between
/// leases — callers measure per-query work as counter deltas, exactly as
/// QueryEngine's per-worker devices do. All methods are thread-safe.
///
/// Fault tolerance: a lease returned with its device unhealthy (a tripped
/// gpusim::FaultPlan — the "poisoned lease") quarantines the device instead
/// of freeing it. Quarantined devices are never handed out by any Acquire
/// variant; an acquisition that can no longer be satisfied fails with
/// kUnavailable (unsatisfiable at call time) or kAborted (became
/// unsatisfiable mid-wait). Repair() re-admits a device. See
/// docs/ARCHITECTURE.md, "Fault tolerance".
class DevicePool {
 public:
  /// Pool health counters (a snapshot; see stats()).
  struct Stats {
    uint64_t acquired = 0;      ///< leases handed out (incl. AcquireUpTo)
    uint64_t try_failed = 0;    ///< TryAcquire calls that found no idle device
    uint64_t blocked = 0;       ///< Acquire calls that had to wait
    size_t in_use = 0;          ///< currently leased devices
    size_t peak_in_use = 0;     ///< high-water mark of in_use
    uint64_t group_acquires = 0;  ///< AcquireOneOfEach calls completed
    uint64_t group_blocked = 0;   ///< AcquireOneOfEach calls that had to wait
    uint64_t quarantined = 0;   ///< poisoned leases that quarantined a device
    uint64_t repaired = 0;      ///< Repair calls that re-admitted a device
    size_t quarantined_now = 0; ///< currently quarantined devices
    /// Times device i was picked to serve a group in AcquireOneOfEach (a
    /// device covering several groups of one call counts once per group) —
    /// the replica-pick distribution the serving layer reports as skew.
    std::vector<uint64_t> replica_picks;

    /// max / mean of replica_picks over devices (1.0 = perfectly even;
    /// 0 when no group acquisition has happened yet).
    double replica_pick_skew() const;
  };

  /// Move-only handle to one leased device; releases it on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept { *this = std::move(o); }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        Release();
        pool_ = o.pool_;
        index_ = o.index_;
        o.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    bool valid() const { return pool_ != nullptr; }
    gpusim::Device* get() const;
    gpusim::Device& operator*() const { return *get(); }

    /// Returns the device to the pool early (idempotent).
    void Release();

   private:
    friend class DevicePool;
    Lease(DevicePool* pool, size_t index) : pool_(pool), index_(index) {}

    DevicePool* pool_ = nullptr;
    size_t index_ = 0;
  };

  /// Builds `num_devices` devices (at least 1) with identical `config`.
  explicit DevicePool(size_t num_devices,
                      gpusim::DeviceConfig config = gpusim::DeviceConfig());

  size_t size() const { return devices_.size(); }
  size_t idle() const GSI_EXCLUDES(mu_);

  /// Blocks until a device is idle, then leases it. Fails with kUnavailable
  /// when every device is quarantined at call time, kAborted when the last
  /// live device was quarantined while this call waited.
  Result<Lease> Acquire() GSI_EXCLUDES(mu_);

  /// Leases an idle device or returns nullopt without blocking (quarantined
  /// devices are never idle, so they are naturally skipped).
  std::optional<Lease> TryAcquire() GSI_EXCLUDES(mu_);

  /// Blocks until device `index` specifically is idle, then leases it — the
  /// primitive of paged result fetching, where a cursor must reacquire
  /// exactly the device that holds a partial table (see
  /// gsi::ResultManifest). Fails with kInvalidArgument for a bad index,
  /// kUnavailable when the device is quarantined at call time, kAborted
  /// when it was quarantined while this call waited. Safe against
  /// AcquireAll holders for the same reason Acquire is: a waiting caller
  /// holds nothing, so no cycle can form.
  Result<Lease> AcquireDevice(size_t index) GSI_EXCLUDES(mu_);

  /// One blocking lease plus up to `max_devices - 1` more without blocking:
  /// the fan-out primitive — a heavy query takes whatever is idle right
  /// now, never waits for peers to finish. Returns between 1 and
  /// max_devices leases (max_devices == 0 is treated as 1); fails exactly
  /// when Acquire does.
  Result<std::vector<Lease>> AcquireUpTo(size_t max_devices)
      GSI_EXCLUDES(mu_);

  /// Blocks until every device has been leased, acquiring them in index
  /// order (devices_[0] first) — the primitive of the partitioned data
  /// graph, where a query must run on exactly the devices that hold the
  /// partitions, so queries serialize on the whole set. Acquiring in a
  /// fixed order keeps concurrent AcquireAll callers deadlock-free (they
  /// all contend on index 0 first), and Acquire/TryAcquire holders never
  /// wait on anyone, so no cycle can form. Returned leases are in index
  /// order: leases[p] is device p. Needs *every* device, so any quarantined
  /// device fails it: kUnavailable at call time, kAborted mid-wait
  /// (partially acquired leases are released).
  Result<std::vector<Lease>> AcquireAll() GSI_EXCLUDES(mu_);

  /// Result of AcquireOneOfEach: exclusive leases over the *distinct*
  /// devices picked (ascending device index) plus, per group, which device
  /// serves it. One device may serve several groups of the same call (it
  /// holds replicas of several partitions) — it is still leased exactly
  /// once, so `leases.size() <= groups.size()`.
  struct GroupLeases {
    std::vector<Lease> leases;            ///< distinct devices, index order
    std::vector<size_t> device_of_group;  ///< [g] -> pool device index
    std::vector<size_t> lease_of_group;   ///< [g] -> index into leases

    /// The leased device serving group g.
    gpusim::Device* device(size_t g) const {
      return leases[lease_of_group[g]].get();
    }
  };

  /// Blocks until one device of *every* group can be leased, then takes
  /// them atomically — the lease primitive of the replicated partitioned
  /// data graph (gsi/replication.h), where group g lists the devices
  /// holding a replica of partition g and a query needs one of each.
  ///
  /// Deadlock-free by construction: the whole selection is taken in one
  /// critical section once every group has an idle member, so a waiting
  /// caller never holds anything (no hold-and-wait; AcquireAll holders
  /// eventually release and Release's notify_all re-evaluates the
  /// predicate). Picks pack groups onto already-picked devices first —
  /// maximizing the devices left idle for concurrent queries (the R-lane
  /// effect) and the probes a co-resident replica can serve locally — and
  /// break ties toward the least historically picked replica, then the
  /// lowest index, so load spreads evenly across replicas over time.
  ///
  /// Every group must be non-empty with indices < size(); the vector of a
  /// group lists the candidate devices (duplicates allowed, ignored).
  ///
  /// Quarantined members are skipped — the selection is re-solved from the
  /// surviving replicas. A group whose members are ALL quarantined can
  /// never be covered: kUnavailable at call time (the message names the
  /// group and its devices — repair one to restore coverage), kAborted when
  /// a poisoned release killed the last live member mid-wait.
  Result<GroupLeases> AcquireOneOfEach(
      std::span<const std::vector<size_t>> groups) GSI_EXCLUDES(mu_);

  /// Arms `plan` on device `index` (see gpusim::FaultPlan). An idle device
  /// is armed immediately; a leased one is armed when its current lease
  /// releases — the pool never touches a device another thread is charging.
  /// Fails with InvalidArgument for a bad index or a quarantined device
  /// (repair it first).
  Status InjectFault(size_t index, gpusim::FaultPlan plan) GSI_EXCLUDES(mu_);

  /// Re-admits a quarantined device: repairs it (gpusim::Device::Repair)
  /// and returns it to the idle set, waking blocked waiters. Returns false
  /// when the device is not quarantined (in-flight leases are never
  /// touched). Safe because a quarantined device is owned by the pool
  /// alone.
  bool Repair(size_t index) GSI_EXCLUDES(mu_);

  /// True while device `index` is quarantined.
  bool quarantined(size_t index) const GSI_EXCLUDES(mu_);

  Stats stats() const GSI_EXCLUDES(mu_);

  /// Registers a pull collector exporting the pool counters plus per-device
  /// simulated-hardware counters labeled `device="k"` (k = pool ordinal).
  /// Per-device counters are snapshotted at lease release — never read from
  /// a device another thread is charging — so a scrape observes each
  /// device's state as of its last completed lease. The pool must outlive
  /// the registry's exports.
  void RegisterMetrics(obs::MetricsRegistry& registry);

 private:
  /// Returns the leased device to the pool and wakes waiters; called by
  /// Lease, which must not hold the pool lock (self-deadlock otherwise).
  void Release(size_t index) GSI_EXCLUDES(mu_);

  /// The AcquireOneOfEach wait predicate: every group has an idle member.
  bool EveryGroupHasIdleLocked(
      std::span<const std::vector<size_t>> groups) const GSI_REQUIRES(mu_);

  /// First group with every member quarantined (can never be covered), or
  /// groups.size() when all groups still have a live member.
  size_t DeadGroupLocked(std::span<const std::vector<size_t>> groups) const
      GSI_REQUIRES(mu_);

  /// Devices not quarantined (leased or idle).
  size_t LiveLocked() const GSI_REQUIRES(mu_);

  /// Bookkeeping shared by every lease-granting path: removes `index` from
  /// the free set and maintains the acquisition counters.
  void TakeDeviceLocked(size_t index) GSI_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar idle_cv_;
  /// Immutable after construction (the pointers; device state is owned by
  /// whoever holds the lease) — safe to read without mu_.
  std::vector<std::unique_ptr<gpusim::Device>> devices_;
  /// Indices of idle devices (LIFO).
  std::vector<size_t> free_ GSI_GUARDED_BY(mu_);
  /// [i] mirrors membership of i in free_.
  std::vector<uint8_t> is_free_ GSI_GUARDED_BY(mu_);
  /// [i] set while device i is quarantined (neither free nor leased; the
  /// pool owns it exclusively until Repair).
  std::vector<uint8_t> is_quarantined_ GSI_GUARDED_BY(mu_);
  /// [i] holds a fault armed while device i was leased; applied at Release
  /// (the pool must not touch a device its lease holder is charging).
  std::vector<std::optional<gpusim::FaultPlan>> pending_fault_
      GSI_GUARDED_BY(mu_);
  /// Per-device AcquireOneOfEach picks.
  std::vector<uint64_t> replica_picks_ GSI_GUARDED_BY(mu_);
  /// [i] = devices_[i]->stats() as of its most recent Release (metrics
  /// snapshot that never races a lease holder's charging).
  std::vector<gpusim::MemStats> released_stats_ GSI_GUARDED_BY(mu_);
  Stats stats_ GSI_GUARDED_BY(mu_);
};

}  // namespace gsi

#endif  // GSI_SERVICE_DEVICE_POOL_H_
