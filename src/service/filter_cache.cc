#include "service/filter_cache.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace gsi {
namespace {

void AppendU32(std::string& out, uint32_t v) {
  const char bytes[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                         static_cast<char>(v >> 16),
                         static_cast<char>(v >> 24)};
  out.append(bytes, 4);
}

}  // namespace

FilterCache::FilterCache(Options options) : options_(options) {}

std::string FilterCache::KeyOf(const Graph& query) {
  std::vector<EdgeRecord> edges = query.UndirectedEdges();
  std::sort(edges.begin(), edges.end(),
            [](const EdgeRecord& a, const EdgeRecord& b) {
              return std::tie(a.src, a.dst, a.label) <
                     std::tie(b.src, b.dst, b.label);
            });
  std::string key;
  key.reserve(4 * (1 + query.num_vertices() + 3 * edges.size()));
  AppendU32(key, static_cast<uint32_t>(query.num_vertices()));
  for (Label l : query.vertex_labels()) AppendU32(key, l);
  for (const EdgeRecord& e : edges) {
    AppendU32(key, e.src);
    AppendU32(key, e.dst);
    AppendU32(key, e.label);
  }
  return key;
}

std::shared_ptr<const FilterCache::Entry> FilterCache::MakeEntry(
    const FilterResult& filtered) {
  auto entry = std::make_shared<Entry>();
  entry->candidates.reserve(filtered.candidates.size());
  for (const CandidateSet& c : filtered.candidates) {
    std::span<const VertexId> list = c.list().span();
    entry->candidates.emplace_back(list.begin(), list.end());
    entry->bytes += list.size() * sizeof(VertexId);
  }
  entry->min_candidate_size = filtered.min_candidate_size;
  entry->min_candidate_vertex = filtered.min_candidate_vertex;
  return entry;
}

FilterResult FilterCache::Materialize(gpusim::Device& dev, const Entry& entry,
                                      size_t num_data_vertices,
                                      bool build_bitmaps) {
  FilterResult out;
  out.candidates.resize(entry.candidates.size());
  for (VertexId u = 0; u < entry.candidates.size(); ++u) {
    out.candidates[u] =
        CandidateSet::Create(dev, u, entry.candidates[u], num_data_vertices,
                             build_bitmaps);
  }
  out.min_candidate_size = entry.min_candidate_size;
  out.min_candidate_vertex = entry.min_candidate_vertex;
  return out;
}

std::shared_ptr<const FilterCache::Entry> FilterCache::Lookup(
    const std::string& key) {
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.entry;
}

void FilterCache::Insert(const std::string& key,
                         std::shared_ptr<const Entry> entry) {
  if (entry == nullptr || entry->bytes > options_.max_bytes) return;
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh: another worker filtered the same shape concurrently.
    stats_.bytes -= it->second.entry->bytes;
    stats_.bytes += entry->bytes;
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    lru_.push_front(key);
    map_.emplace(key, Slot{std::move(entry), lru_.begin()});
    stats_.bytes += map_.at(key).entry->bytes;
    ++stats_.insertions;
  }
  EvictWhileOverBudgetLocked();
  stats_.entries = map_.size();
}

void FilterCache::EvictWhileOverBudgetLocked() {
  while (stats_.bytes > options_.max_bytes && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = map_.find(victim);
    stats_.bytes -= it->second.entry->bytes;
    ++stats_.evictions;
    map_.erase(it);
    lru_.pop_back();
  }
}

FilterCache::Stats FilterCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void FilterCache::Clear() {
  MutexLock lock(mu_);
  map_.clear();
  lru_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

void FilterCache::RegisterMetrics(obs::MetricsRegistry& registry) {
  registry.RegisterCollector([this](obs::MetricsSink& sink) {
    const Stats s = stats();
    sink.AddCounter("gsi_filter_cache_hits_total",
                    "Filter-phase lookups served from memoized candidates",
                    static_cast<double>(s.hits));
    sink.AddCounter("gsi_filter_cache_misses_total",
                    "Filter-phase lookups that ran the scan kernels",
                    static_cast<double>(s.misses));
    sink.AddCounter("gsi_filter_cache_insertions_total",
                    "Entries admitted into the cache",
                    static_cast<double>(s.insertions));
    sink.AddCounter("gsi_filter_cache_evictions_total",
                    "Entries evicted to hold the byte budget",
                    static_cast<double>(s.evictions));
    sink.AddGauge("gsi_filter_cache_entries", "Resident entries",
                  static_cast<double>(s.entries));
    sink.AddGauge("gsi_filter_cache_bytes", "Resident candidate-list bytes",
                  static_cast<double>(s.bytes));
    sink.AddGauge("gsi_filter_cache_hit_rate",
                  "hits / (hits + misses) over the cache's lifetime",
                  s.HitRate());
  });
}

}  // namespace gsi
