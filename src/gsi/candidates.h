#ifndef GSI_GSI_CANDIDATES_H_
#define GSI_GSI_CANDIDATES_H_

#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "util/common.h"

namespace gsi {

/// Candidate set C(u) for one query vertex: the filtered data vertices that
/// may match u (Section III). Kept in two device forms:
///  - a sorted list (the join's "large" granularity input), and
///  - a bitset over |V(G)| for O(1) membership checks ("we first transform
///    it into a bitset, then use exactly one memory transaction to check if
///    vertex v belongs to C(u)", Section V).
class CandidateSet {
 public:
  CandidateSet() = default;

  /// Uploads the sorted candidate list; optionally materializes the bitset
  /// (a device kernel, charged to `dev`).
  static CandidateSet Create(gpusim::Device& dev, VertexId query_vertex,
                             std::vector<VertexId> sorted_candidates,
                             size_t num_data_vertices, bool build_bitmap);

  VertexId query_vertex() const { return query_vertex_; }
  size_t size() const { return list_.size(); }
  bool empty() const { return list_.size() == 0; }

  const gpusim::DeviceBuffer<VertexId>& list() const { return list_; }
  bool has_bitmap() const { return bitmap_.size() > 0; }

  /// Host-side membership check (tests / reference paths).
  bool ContainsHost(VertexId v) const;

  /// Warp membership probe. Bitset form: exactly one transaction. List
  /// form: binary search, one transaction per probe (the naive set-op
  /// baseline of Section V).
  bool ContainsBitset(gpusim::Warp& w, VertexId v) const;
  bool ContainsBinarySearch(gpusim::Warp& w, VertexId v) const;

 private:
  VertexId query_vertex_ = kInvalidVertex;
  gpusim::DeviceBuffer<VertexId> list_;
  gpusim::DeviceBuffer<uint32_t> bitmap_;  // |V(G)|/32 words
};

}  // namespace gsi

#endif  // GSI_GSI_CANDIDATES_H_
