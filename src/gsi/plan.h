#ifndef GSI_GSI_PLAN_H_
#define GSI_GSI_PLAN_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "gsi/candidates.h"
#include "util/common.h"

namespace gsi {

/// One linking edge between the next query vertex u and an already-matched
/// vertex (Algorithm 3's ES).
struct LinkEdge {
  /// Position (column) of the matched endpoint in the intermediate table.
  uint32_t prev_column;
  /// The matched endpoint's query vertex id.
  VertexId prev_vertex;
  /// The edge's label in Q.
  Label label;
  /// freq(label) in G — Algorithm 4 picks the rarest as the first edge.
  uint64_t label_frequency;
};

/// One join iteration: extend the intermediate table by query vertex u
/// through its linking edges. links[0] is the "first edge" e0 (minimum
/// label frequency, Algorithm 4 Line 1).
struct JoinStep {
  VertexId u;
  std::vector<LinkEdge> links;
};

/// The whole vertex-at-a-time join order (Algorithm 2): order[0] seeds the
/// intermediate table with C(order[0]); each later step joins one more
/// candidate set.
struct JoinPlan {
  std::vector<VertexId> order;
  std::vector<JoinStep> steps;  // size |V(Q)| - 1

  /// Column of query vertex u in the final table.
  uint32_t ColumnOf(VertexId u) const;

  std::string ToString() const;
};

/// Builds the join order per Algorithm 2: the first vertex minimizes
/// score(u) = |C(u)| / deg(u); subsequent vertices must connect to the
/// matched part, with scores scaled by freq(L_E(uc u')) after each pick.
JoinPlan MakeJoinPlan(const Graph& query, const Graph& data,
                      const std::vector<CandidateSet>& candidates);

}  // namespace gsi

#endif  // GSI_GSI_PLAN_H_
