#include "gsi/result_manifest.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gsi {

ResultManifest ResultManifest::FromWholeTable(MatchTable table,
                                              int device_ordinal,
                                              uint64_t fault_epoch) {
  ResultManifest m;
  m.set_cols(table.cols());
  const size_t rows = table.rows();
  const size_t part = m.AddPart(std::move(table), device_ordinal, fault_epoch);
  m.AddSegment(part, 0, rows);
  return m;
}

size_t ResultManifest::AddPart(MatchTable table, int device_ordinal,
                               uint64_t fault_epoch) {
  if (table.rows() > 0) {
    GSI_CHECK_MSG(cols_ == 0 || table.cols() == cols_,
                  "manifest parts of different widths");
    cols_ = table.cols();
  } else if (cols_ == 0) {
    cols_ = table.cols();
  }
  parts_.push_back(Part{std::move(table), device_ordinal, fault_epoch});
  return parts_.size() - 1;
}

void ResultManifest::AddSegment(size_t part, size_t begin, size_t count) {
  if (count == 0) return;
  GSI_CHECK(part < parts_.size());
  GSI_CHECK(begin + count <= parts_[part].table.rows());
  segments_.push_back(ManifestSegment{part, begin, count});
  total_rows_ += count;
}

void ResultManifest::set_cols(size_t cols) {
  if (cols_ == 0) cols_ = cols;
}

uint64_t ResultManifest::resident_bytes() const {
  uint64_t bytes = 0;
  for (const Part& p : parts_) {
    bytes += uint64_t{p.table.rows()} * p.table.cols() * sizeof(VertexId);
  }
  return bytes;
}

std::vector<ManifestSegment> ResultManifest::Slice(size_t row_begin,
                                                   size_t count) const {
  std::vector<ManifestSegment> out;
  size_t pos = 0;  // logical row at the head of the current segment
  for (const ManifestSegment& s : segments_) {
    if (count == 0) break;
    if (row_begin >= pos + s.count) {
      pos += s.count;
      continue;
    }
    const size_t skip = row_begin - pos;
    const size_t take = std::min(count, s.count - skip);
    out.push_back(ManifestSegment{s.part, s.begin + skip, take});
    row_begin += take;
    count -= take;
    pos += s.count;
  }
  return out;
}

void ResultManifest::CopyChunk(const ManifestSegment& chunk,
                               VertexId* dst) const {
  GSI_CHECK(chunk.part < parts_.size());
  const MatchTable& t = parts_[chunk.part].table;
  GSI_CHECK(chunk.begin + chunk.count <= t.rows());
  const size_t cols = t.cols();
  for (size_t r = 0; r < chunk.count; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      dst[r * cols + c] = t.At(chunk.begin + r, c);
    }
  }
}

MatchTable ResultManifest::Materialize(gpusim::Device& dev) && {
  // Fast path: one segment spanning one whole part — the table is already
  // the merged result; hand it over without copying (and without moving it
  // to `dev`: host consumers only read cells, never device identity).
  if (parts_.size() == 1 && segments_.size() == 1 &&
      segments_[0].begin == 0 && segments_[0].count == parts_[0].table.rows()) {
    return std::move(parts_[0].table);
  }
  MatchTable out = MatchTable::Alloc(dev, total_rows_, cols_);
  size_t at = 0;
  for (const ManifestSegment& s : segments_) {
    out.CopyRowsFrom(parts_[s.part].table, s.begin, at, s.count);
    at += s.count;
  }
  return out;
}

PagedQueryResult ToPagedResult(QueryResult result, int device_ordinal,
                               uint64_t fault_epoch) {
  PagedQueryResult paged;
  paged.manifest = ResultManifest::FromWholeTable(std::move(result.table),
                                                  device_ordinal, fault_epoch);
  paged.column_to_query = std::move(result.column_to_query);
  paged.stats = result.stats;
  return paged;
}

QueryResult ToQueryResult(PagedQueryResult result, gpusim::Device& dev) {
  QueryResult out;
  out.table = std::move(result.manifest).Materialize(dev);
  out.column_to_query = std::move(result.column_to_query);
  out.stats = result.stats;
  return out;
}

}  // namespace gsi
