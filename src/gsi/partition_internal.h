#ifndef GSI_GSI_PARTITION_INTERNAL_H_
#define GSI_GSI_PARTITION_INTERNAL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/device.h"
#include "gsi/halo_cache.h"
#include "gsi/match_table.h"
#include "gsi/partition.h"
#include "gsi/result_manifest.h"
#include "storage/pcsr.h"
#include "storage/signature.h"
#include "storage/signature_table.h"

// Execution building blocks shared by the partitioned (gsi/partition.h) and
// replicated (gsi/replication.h) data-graph paths. Implementation detail —
// include only from gsi/*.cc.

namespace gsi::internal {

/// Signature scan of one partition's owned vertices: the same fused layout
/// as FilterContext::CandidateLists (warp w handles 32 consecutive rows of
/// query vertex w / warps_per_u) and the same survivor math as
/// SignatureScanWarp, over the *local* subset table — so surviving
/// candidate values match the replicated scan exactly; only the row space
/// (owned vertices instead of all of |V|) and the billing device differ.
std::vector<std::vector<VertexId>> ScanOwnedSignatures(
    gpusim::Device& dev, const SignatureTable& table,
    std::span<const VertexId> owned, std::span<const Signature> qsigs);

/// Seeds a partition's table from its owned subsequence of C(order[0]):
/// upload (host-mediated, uncharged by convention) plus the same streaming
/// copy kernel JoinEngine::SeedTable charges, so the partitions together
/// pay what the replicated seed pays.
MatchTable SeedOwned(gpusim::Device& dev, const std::vector<VertexId>& column);

/// K-way merge of per-partition survivor lists for one query vertex (each
/// ascending, value sets disjoint because partitions own disjoint vertex
/// sets) back into one globally ascending candidate list — reproducing the
/// replicated scan's list exactly. `lists[p]` may be null (treated empty).
std::vector<VertexId> MergeAscendingDisjoint(
    std::span<const std::vector<VertexId>* const> lists);

/// Merges per-partition partial join tables into the replicated final
/// table: the final table of any join is grouped by its column-0 (seed)
/// binding, runs appear in candidate-list (ascending) order, and ownership
/// split the seed list into disjoint subsequences — so repeatedly taking
/// the run with the smallest column-0 head reconstructs the whole table
/// row for row. `rows_from[p]` receives the rows partition p contributed
/// (the caller charges interconnect traffic for partitions that are not
/// resident on the merging device).
MatchTable MergeBySeedRuns(gpusim::Device& primary,
                           std::span<const MatchTable* const> parts,
                           size_t cols_out, std::vector<size_t>& rows_from);

/// The planning half of MergeBySeedRuns: the same smallest-column-0-head run
/// walk, but emitting the ordered run list (part, begin, count) instead of
/// copying rows — a pure host computation over the partial tables. The paged
/// join paths store this list in a ResultManifest; MergeBySeedRuns is
/// exactly this plan followed by bulk row copies. `rows_from[p]` receives
/// the rows part p contributed, as before.
std::vector<ManifestSegment> PlanSeedRunMerge(
    std::span<const MatchTable* const> parts, std::vector<size_t>& rows_from);

/// NeighborStore view that routes every probe N(v, l) to the PCSR share
/// serving v's partition for this execution lane. Shares flagged local live
/// on the lane's own device and answer at plain global-memory cost; the
/// rest are served across the interconnect with every 128B line re-charged
/// at the premium (Warp::ChargeRemoteTransactions). One view serves one
/// lane of one query execution — the traffic counters are per-query
/// observations, harvested after the join.
///
/// The partitioned path marks exactly the lane's own partition local; the
/// replicated path additionally marks every partition with a co-resident
/// replica, which is how replication converts remote probes into local
/// reads (counted in Traffic::co_located_probes).
///
/// With a HaloCache attached (`halo` non-null), remote probes first try the
/// lane device's cache — a hit is a local read (Traffic::halo_hits, no
/// interconnect premium) returning byte-identical data — and remote probes
/// that do run feed the cache their free byproducts (gsi/halo_cache.h).
/// Local and co-located probes never touch the cache: only partitions with
/// no resident share are cached, which on the replicated path is exactly
/// "skip admission where a co-resident replica exists".
class RoutedStoreView final : public NeighborStore {
 public:
  struct Traffic {
    uint64_t remote_probes = 0;      ///< lookups that crossed the interconnect
    uint64_t remote_lines = 0;       ///< 128B lines those lookups moved
    uint64_t co_located_probes = 0;  ///< peer-partition lookups served locally
    uint64_t halo_hits = 0;          ///< remote lookups the halo cache served
    uint64_t halo_hit_bytes = 0;     ///< list bytes those hits served locally
  };

  /// `owner[v]` names v's partition; `serving[p]` answers probes of
  /// partition p (never null); `local[p]` != 0 marks shares resident on the
  /// lane's device; `self` is the partition whose seeds this lane joins
  /// (its probes are plain local, not co-located). `halo` (may be null =
  /// caching off) must be the lane device's cache. All spans/pointees must
  /// outlive the view.
  RoutedStoreView(std::span<const PartitionId> owner,
                  std::vector<const PcsrStore*> serving,
                  std::vector<uint8_t> local, PartitionId self,
                  HaloCache* halo = nullptr)
      : owner_(owner),
        serving_(std::move(serving)),
        local_(std::move(local)),
        self_(self),
        halo_(halo) {}

  size_t Extract(gpusim::Warp& w, VertexId v, Label l,
                 std::vector<VertexId>& out) const override {
    const PartitionId o = owner_[v];
    if (local_[o] != 0) {
      if (o != self_) ++traffic_.co_located_probes;
      return serving_[o]->Extract(w, v, l, out);
    }
    if (halo_ != nullptr) {
      if (std::optional<size_t> n = halo_->ServeExtract(w, o, v, l, out)) {
        return Hit(*n, *n * sizeof(VertexId));
      }
    }
    const size_t mark = out.size();
    const size_t n = Remote(w, o, [&](const PcsrStore& s) {
      return s.Extract(w, v, l, out);
    });
    if (halo_ != nullptr) {
      halo_->RecordList(o, v, l, {out.data() + mark, n});
    }
    return n;
  }

  size_t NeighborCountUpperBound(gpusim::Warp& w, VertexId v,
                                 Label l) const override {
    const PartitionId o = owner_[v];
    if (local_[o] != 0) {
      if (o != self_) ++traffic_.co_located_probes;
      return serving_[o]->NeighborCountUpperBound(w, v, l);
    }
    if (halo_ != nullptr) {
      if (std::optional<size_t> n = halo_->ServeCount(w, o, v, l)) {
        return Hit(*n, 0);
      }
    }
    const size_t n = Remote(w, o, [&](const PcsrStore& s) {
      return s.NeighborCountUpperBound(w, v, l);
    });
    // PCSR's upper bound is the exact |N(v, l)| — safe to admit as a count.
    if (halo_ != nullptr) halo_->RecordCount(o, v, l, n);
    return n;
  }

  size_t ExtractSlice(gpusim::Warp& w, VertexId v, Label l, size_t begin,
                      size_t end, std::vector<VertexId>& out) const override {
    const PartitionId o = owner_[v];
    if (local_[o] != 0) {
      if (o != self_) ++traffic_.co_located_probes;
      return serving_[o]->ExtractSlice(w, v, l, begin, end, out);
    }
    if (halo_ != nullptr) {
      if (std::optional<size_t> n =
              halo_->ServeSlice(w, o, v, l, begin, end, out)) {
        return Hit(*n, *n * sizeof(VertexId));
      }
    }
    const size_t mark = out.size();
    const size_t n = Remote(w, o, [&](const PcsrStore& s) {
      return s.ExtractSlice(w, v, l, begin, end, out);
    });
    if (halo_ != nullptr && end > begin) {
      halo_->RecordSlice(o, v, l, begin, end - begin,
                         {out.data() + mark, n});
    }
    return n;
  }

  size_t ExtractValueRange(gpusim::Warp& w, VertexId v, Label l, VertexId lo,
                           VertexId hi,
                           std::vector<VertexId>& out) const override {
    const PartitionId o = owner_[v];
    if (local_[o] != 0) {
      if (o != self_) ++traffic_.co_located_probes;
      return serving_[o]->ExtractValueRange(w, v, l, lo, hi, out);
    }
    if (halo_ != nullptr) {
      if (std::optional<size_t> n =
              halo_->ServeValueRange(w, o, v, l, lo, hi, out)) {
        return Hit(*n, *n * sizeof(VertexId));
      }
    }
    // Value-range results are positionless — nothing admissible to record.
    return Remote(w, o, [&](const PcsrStore& s) {
      return s.ExtractValueRange(w, v, l, lo, hi, out);
    });
  }

  uint64_t device_bytes() const override {
    return serving_[self_]->device_bytes();
  }

  std::string name() const override { return "PCSR-partitioned"; }

  const Traffic& traffic() const { return traffic_; }

 private:
  template <typename Fn>
  size_t Remote(gpusim::Warp& w, PartitionId o, Fn&& probe) const {
    const uint64_t before = w.device().stats().gld;
    const size_t n = probe(*serving_[o]);
    const uint64_t lines = w.device().stats().gld - before;
    w.ChargeRemoteTransactions(lines);
    ++traffic_.remote_probes;
    traffic_.remote_lines += lines;
    return n;
  }

  size_t Hit(size_t n, uint64_t bytes) const {
    ++traffic_.halo_hits;
    traffic_.halo_hit_bytes += bytes;
    return n;
  }

  std::span<const PartitionId> owner_;
  std::vector<const PcsrStore*> serving_;
  std::vector<uint8_t> local_;
  PartitionId self_;
  HaloCache* halo_;
  mutable Traffic traffic_;  // one view per lane thread; no sharing
};

}  // namespace gsi::internal

#endif  // GSI_GSI_PARTITION_INTERNAL_H_
