#include "gsi/partition.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "gpusim/launch.h"
#include "gsi/fault.h"
#include "gsi/join.h"
#include "gsi/partition_internal.h"
#include "gsi/plan.h"
#include "storage/signature.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gsi {
namespace {

using gpusim::kTransactionBytes;
using gpusim::kWarpSize;
using gpusim::Warp;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

// See partition_internal.h for the contract.
std::vector<std::vector<VertexId>> internal::ScanOwnedSignatures(
    gpusim::Device& dev, const SignatureTable& table,
    std::span<const VertexId> owned, std::span<const Signature> qsigs) {
  const size_t nu = qsigs.size();
  std::vector<std::vector<VertexId>> out(nu);
  if (owned.empty() || nu == 0) return out;
  const size_t rows = owned.size();
  const size_t warps_per_u = (rows + kWarpSize - 1) / kWarpSize;
  const int words = table.words_per_sig();

  gpusim::Launch(dev, nu * warps_per_u, [&](Warp& w) {
    const size_t u = w.global_id() / warps_per_u;
    const size_t s0 = (w.global_id() % warps_per_u) * kWarpSize;
    if (s0 >= rows) return;
    const size_t lanes = std::min<size_t>(kWarpSize, rows - s0);
    const Signature& qsig = qsigs[u];
    uint32_t vals[kWarpSize];
    bool alive[kWarpSize];

    // First word: exact vertex-label comparison.
    table.WarpReadWord(w, static_cast<VertexId>(s0), lanes, 0, vals);
    w.Alu(lanes);
    bool any = false;
    for (size_t k = 0; k < lanes; ++k) {
      alive[k] = (vals[k] == qsig.word(0));
      any |= alive[k];
    }
    // Remaining words: AND-domination while any lane survives (SIMD).
    for (int word = 1; word < words && any; ++word) {
      table.WarpReadWord(w, static_cast<VertexId>(s0), lanes, word, vals);
      w.Alu(lanes);
      any = false;
      for (size_t k = 0; k < lanes; ++k) {
        alive[k] = alive[k] &&
                   ((vals[k] & qsig.word(word)) == qsig.word(word));
        any |= alive[k];
      }
    }
    uint32_t survivors = 0;
    for (size_t k = 0; k < lanes; ++k) {
      if (alive[k]) {
        out[u].push_back(owned[s0 + k]);
        ++survivors;
      }
    }
    if (survivors > 0) {
      w.Alu(1);  // warp-aggregated atomic offset claim
      w.ChargeStoreTransactions(gpusim::Device::RangeTransactions(
          0, survivors * sizeof(VertexId)));
    }
  });
  return out;
}

MatchTable internal::SeedOwned(gpusim::Device& dev,
                               const std::vector<VertexId>& column) {
  gpusim::DeviceBuffer<VertexId> list = dev.Upload(column);
  MatchTable m = MatchTable::FromColumn(dev, column);
  gpusim::Launch(dev, std::max<size_t>(1, (column.size() + 1023) / 1024),
                 [&](Warp& w) {
                   size_t begin = w.global_id() * 1024;
                   if (begin >= column.size()) return;
                   size_t len = std::min<size_t>(1024, column.size() - begin);
                   w.LoadRange(list, begin, len);
                   w.StoreRange(m.data(), begin,
                                std::span<const VertexId>(
                                    m.data().data() + begin, len));
                 });
  return m;
}

std::vector<VertexId> internal::MergeAscendingDisjoint(
    std::span<const std::vector<VertexId>* const> lists) {
  const size_t k = lists.size();
  size_t total = 0;
  for (const std::vector<VertexId>* l : lists) {
    if (l != nullptr) total += l->size();
  }
  std::vector<VertexId> merged;
  merged.reserve(total);
  std::vector<size_t> cur(k, 0);
  while (merged.size() < total) {
    size_t best = k;
    for (size_t p = 0; p < k; ++p) {
      if (lists[p] == nullptr || cur[p] >= lists[p]->size()) continue;
      if (best == k || (*lists[p])[cur[p]] < (*lists[best])[cur[best]]) {
        best = p;
      }
    }
    merged.push_back((*lists[best])[cur[best]++]);
  }
  return merged;
}

std::vector<ManifestSegment> internal::PlanSeedRunMerge(
    std::span<const MatchTable* const> parts, std::vector<size_t>& rows_from) {
  const size_t k = parts.size();
  rows_from.assign(k, 0);
  size_t total_rows = 0;
  for (const MatchTable* t : parts) total_rows += t->rows();

  std::vector<ManifestSegment> runs;
  std::vector<size_t> cur(k, 0);
  size_t out_row = 0;
  while (out_row < total_rows) {
    size_t best = k;
    for (size_t p = 0; p < k; ++p) {
      if (cur[p] >= parts[p]->rows()) continue;
      if (best == k ||
          parts[p]->At(cur[p], 0) < parts[best]->At(cur[best], 0)) {
        best = p;
      }
    }
    const VertexId head = parts[best]->At(cur[best], 0);
    size_t run_end = cur[best];
    while (run_end < parts[best]->rows() &&
           parts[best]->At(run_end, 0) == head) {
      ++run_end;
    }
    runs.push_back(ManifestSegment{best, cur[best], run_end - cur[best]});
    rows_from[best] += run_end - cur[best];
    out_row += run_end - cur[best];
    cur[best] = run_end;
  }
  return runs;
}

MatchTable internal::MergeBySeedRuns(gpusim::Device& primary,
                                     std::span<const MatchTable* const> parts,
                                     size_t cols_out,
                                     std::vector<size_t>& rows_from) {
  const std::vector<ManifestSegment> runs = PlanSeedRunMerge(parts, rows_from);
  size_t total_rows = 0;
  for (const MatchTable* t : parts) total_rows += t->rows();

  MatchTable merged = MatchTable::Alloc(primary, total_rows, cols_out);
  size_t out_row = 0;
  for (const ManifestSegment& r : runs) {
    merged.CopyRowsFrom(*parts[r.part], r.begin, out_row, r.count);
    out_row += r.count;
  }
  return merged;
}

std::vector<PartitionId> HashVertexPartitioner::Assign(const Graph& g,
                                                       size_t k) const {
  GSI_CHECK(k >= 1);
  std::vector<PartitionId> owner(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    owner[v] = static_cast<PartitionId>(SplitMix64(v) % k);
  }
  return owner;
}

std::vector<PartitionId> GreedyEdgeCutPartitioner::Assign(const Graph& g,
                                                          size_t k) const {
  GSI_CHECK(k >= 1);
  const size_t n = g.num_vertices();
  std::vector<PartitionId> owner(n, 0);
  if (k == 1 || n == 0) return owner;
  const double capacity =
      (static_cast<double>(n) / static_cast<double>(k)) *
      (1.0 + std::max(0.0, balance_slack_));
  std::vector<size_t> load(k, 0);
  std::vector<size_t> with_v(k, 0);  // |N(v) cap P|, rebuilt per vertex
  for (VertexId v = 0; v < n; ++v) {
    std::fill(with_v.begin(), with_v.end(), 0);
    for (const Neighbor& nb : g.neighbors(v)) {
      if (nb.v < v) ++with_v[owner[nb.v]];  // only already-placed neighbors
    }
    PartitionId best = 0;
    double best_score = -1;
    for (PartitionId p = 0; p < k; ++p) {
      if (static_cast<double>(load[p]) >= capacity) continue;
      const double score =
          static_cast<double>(with_v[p]) *
          (1.0 - static_cast<double>(load[p]) / capacity);
      // Strict > keeps ties on the lowest id; empty-score vertices fall
      // through to the least-loaded pick below.
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    if (best_score <= 0) {
      best = static_cast<PartitionId>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    owner[v] = best;
    ++load[best];
  }
  return owner;
}

uint64_t PartitionBuildStats::max_resident_bytes() const {
  uint64_t worst = 0;
  for (uint64_t b : resident_bytes) worst = std::max(worst, b);
  return worst;
}

Result<PartitionedGraph> PartitionedGraph::Build(
    std::span<gpusim::Device* const> devs, const Graph& data,
    const GsiOptions& options, const GraphPartitioner& partitioner) {
  if (devs.empty()) {
    return Status::InvalidArgument(
        "partitioned build needs at least one device");
  }
  Status valid = ValidateGsiOptions(options);
  if (!valid.ok()) return valid;
  if (options.join.storage != StorageKind::kPcsr) {
    return Status::InvalidArgument(
        "partitioned execution requires PCSR storage (join.storage)");
  }
  if (options.filter.strategy != FilterStrategy::kSignature) {
    return Status::InvalidArgument(
        "partitioned execution requires the signature filter strategy");
  }

  const size_t k = devs.size();
  std::vector<PartitionId> owner = partitioner.Assign(data, k);
  if (owner.size() != data.num_vertices()) {
    return Status::Internal(partitioner.name() +
                            " returned an assignment of the wrong size");
  }
  for (PartitionId p : owner) {
    if (p >= k) {
      return Status::InvalidArgument(partitioner.name() +
                                     " assigned a vertex outside [0, K)");
    }
  }

  PartitionedGraph pg;
  pg.data_ = &data;
  pg.options_ = options;
  pg.partitioner_name_ = partitioner.name();
  pg.devs_.assign(devs.begin(), devs.end());
  pg.owner_ = std::move(owner);
  pg.owned_.resize(k);
  for (VertexId v = 0; v < data.num_vertices(); ++v) {
    pg.owned_[pg.owner_[v]].push_back(v);
  }

  PartitionBuildStats& bs = pg.build_stats_;
  bs.vertices.resize(k);
  bs.directed_edges.resize(k);
  bs.resident_bytes.resize(k);
  std::vector<uint8_t> keep(data.num_vertices());
  for (PartitionId p = 0; p < k; ++p) {
    std::fill(keep.begin(), keep.end(), 0);
    size_t directed = 0;
    for (VertexId v : pg.owned_[p]) {
      keep[v] = 1;
      directed += data.degree(v);
    }
    pg.stores_.push_back(PcsrStore::BuildForVertices(*devs[p], data, keep,
                                                     options.join.gpn));
    pg.signatures_.push_back(SignatureTable::BuildSubset(
        *devs[p], data, pg.owned_[p], options.filter.signature_bits,
        options.filter.layout));
    bs.vertices[p] = pg.owned_[p].size();
    bs.directed_edges[p] = directed;
    bs.resident_bytes[p] =
        pg.stores_[p]->device_bytes() + pg.signatures_[p].device_bytes();
    bs.replicated_bytes += bs.resident_bytes[p];
  }
  // The halo cache's budget is a reserved slice of each partition's
  // resident memory (counted up front, like any allocation) — but not of
  // replicated_bytes, which measures the unpartitioned single-copy
  // footprint the shares are compared against.
  pg.halo_.resize(k);
  if (options.halo_budget_bytes > 0) {
    for (PartitionId p = 0; p < k; ++p) {
      pg.halo_[p] =
          std::make_unique<HaloCache>(*devs[p], options.halo_budget_bytes);
      bs.resident_bytes[p] += options.halo_budget_bytes;
    }
  }
  for (VertexId v = 0; v < data.num_vertices(); ++v) {
    for (const Neighbor& nb : data.neighbors(v)) {
      if (nb.v > v && pg.owner_[v] != pg.owner_[nb.v]) ++bs.cut_edges;
    }
  }
  uint64_t max_edges = 0;
  uint64_t sum_edges = 0;
  for (size_t e : bs.directed_edges) {
    max_edges = std::max<uint64_t>(max_edges, e);
    sum_edges += e;
  }
  bs.edge_balance =
      sum_edges > 0 ? static_cast<double>(max_edges) /
                          (static_cast<double>(sum_edges) /
                           static_cast<double>(k))
                    : 1.0;
  return pg;
}

Result<FilterResult> RunFilterStagePartitioned(const PartitionedGraph& pg,
                                               const Graph& query,
                                               QueryStats& stats,
                                               double* parallel_ms,
                                               const obs::TraceContext& trace) {
  if (query.num_vertices() == 0) {
    return Status::InvalidArgument("empty query");
  }
  if (!query.IsConnected()) {
    return Status::InvalidArgument(
        "query must be connected (run components separately)");
  }
  const size_t k = pg.num_partitions();
  const size_t nu = query.num_vertices();
  const size_t n = pg.data().num_vertices();
  const int nbits = pg.options().filter.signature_bits;

  std::vector<Signature> qsigs;
  qsigs.reserve(nu);
  for (VertexId u = 0; u < nu; ++u) {
    qsigs.push_back(Signature::Encode(query, u, nbits));
  }

  // --- Scan phase: partition p scans its owned vertices on its device (one
  // fused kernel per partition). A barrier, like the sharded filter's scan.
  const obs::DeviceCycleClock primary_clock(pg.device(0));
  obs::ScopedSpan filter_span(trace, "filter", primary_clock, 0);
  std::vector<std::vector<std::vector<VertexId>>> partial(k);  // [p][u]
  std::vector<gpusim::MemStats> scan_mem(k);
  {
    ThreadPool pool(k);
    for (PartitionId p = 0; p < k; ++p) {
      pool.Submit([&, p] {
        gpusim::Device& dev = pg.device(p);
        const obs::DeviceCycleClock clock(dev);
        obs::ScopedSpan span(filter_span.context(), "partition_scan", clock,
                             static_cast<int32_t>(p));
        span.AddAttr("vertices", static_cast<uint64_t>(pg.owned(p).size()));
        const gpusim::MemStats before = dev.stats();
        partial[p] =
            internal::ScanOwnedSignatures(dev, pg.signatures(p),
                                          pg.owned(p), qsigs);
        scan_mem[p] = dev.stats() - before;
      });
    }
    pool.Wait();
  }
  // Phase barrier: a partition device that tripped mid-scan invalidates its
  // survivor lists; the query fails over before any gather.
  for (PartitionId p = 0; p < k; ++p) {
    if (Status h = CheckDeviceHealthy(pg.device(p), "partition_scan");
        !h.ok()) {
      return h;
    }
  }

  // --- Gather phase: the per-partition survivor lists all-gather to the
  // primary (halo traffic: every non-primary byte crosses the
  // interconnect), which merges them back into globally ascending candidate
  // lists — partitions own disjoint vertex sets and each list is ascending,
  // so a K-way merge reproduces the replicated scan's list exactly — and
  // materializes the candidate buffers (upload + bitset kernel).
  gpusim::Device& primary = pg.device(0);
  const gpusim::MemStats before_gather = primary.stats();
  uint64_t halo = 0;
  FilterResult result;
  result.candidates.resize(nu);
  std::vector<size_t> sizes(nu, 0);
  {
    obs::ScopedSpan gather_span(filter_span.context(), "candidate_gather",
                                primary_clock);
    for (VertexId u = 0; u < nu; ++u) {
      std::vector<const std::vector<VertexId>*> lists(k);
      for (PartitionId p = 0; p < k; ++p) {
        lists[p] = &partial[p][u];
        if (p != 0) halo += partial[p][u].size() * sizeof(VertexId);
      }
      std::vector<VertexId> merged = internal::MergeAscendingDisjoint(lists);
      sizes[u] = merged.size();
      result.candidates[u] = CandidateSet::Create(
          primary, u, std::move(merged), n, pg.options().filter.build_bitmaps);
    }
    primary.ChargeRemoteTransfer(halo);
    gather_span.AddAttr("halo_bytes", halo);
  }
  if (Status h = CheckDeviceHealthy(primary, "candidate_gather"); !h.ok()) {
    return h;
  }
  const gpusim::MemStats gather_mem = primary.stats() - before_gather;

  result.min_candidate_size = SIZE_MAX;
  for (VertexId u = 0; u < nu; ++u) {
    if (sizes[u] < result.min_candidate_size) {
      result.min_candidate_size = sizes[u];
      result.min_candidate_vertex = u;
    }
  }

  gpusim::MemStats total;
  double max_scan_ms = 0;
  for (PartitionId p = 0; p < k; ++p) {
    total += scan_mem[p];
    max_scan_ms =
        std::max(max_scan_ms, scan_mem[p].SimulatedMs(pg.device(p).config()));
  }
  total += gather_mem;
  stats.filter = total;
  stats.min_candidate_size = result.min_candidate_size;
  stats.halo_bytes += halo;
  if (parallel_ms != nullptr) {
    *parallel_ms = max_scan_ms + gather_mem.SimulatedMs(primary.config());
  }
  return result;
}

Result<PagedQueryResult> RunJoinStagePartitionedPaged(
    const PartitionedGraph& pg, const Graph& query, FilterResult filtered,
    QueryStats stats, const obs::TraceContext& trace) {
  const Graph& data = pg.data();
  const GsiOptions& options = pg.options();
  const size_t k = pg.num_partitions();
  gpusim::Device& primary = pg.device(0);
  const obs::DeviceCycleClock primary_clock(primary);
  obs::ScopedSpan join_span(trace, "join", primary_clock, 0);

  PagedQueryResult out;
  out.stats = stats;

  if (query.num_vertices() == 1) {
    // Degenerate query: the candidate set is the answer (assembled on the
    // primary, exactly like RunJoinStage).
    const CandidateSet& c = filtered.candidates[0];
    MatchTable table = MatchTable::Alloc(primary, c.size(), 1);
    for (size_t i = 0; i < c.size(); ++i) table.Set(i, 0, c.list()[i]);
    out.manifest = ResultManifest::FromWholeTable(std::move(table), primary);
    out.column_to_query = {0};
    out.stats.partitions_used = 1;
  } else if (filtered.AnyEmpty()) {
    // Some query vertex has no candidates: zero matches, skip the join.
    out.manifest = ResultManifest::FromWholeTable(
        MatchTable::Alloc(primary, 0, query.num_vertices()), primary);
    JoinPlan plan = MakeJoinPlan(query, data, filtered.candidates);
    out.column_to_query = plan.order;
    out.stats.partitions_used = 1;
  } else {
    const JoinPlan plan = MakeJoinPlan(query, data, filtered.candidates);
    const CandidateSet& seed = filtered.candidates[plan.order[0]];

    // Split the seed list by ownership (host-mediated read, like any seed
    // scatter): partition p joins the subsequence of C(order[0]) it owns.
    std::vector<std::vector<VertexId>> seed_cols(k);
    for (size_t i = 0; i < seed.size(); ++i) {
      const VertexId v = seed.list()[i];
      seed_cols[pg.OwnerOf(v)].push_back(v);
    }

    std::vector<std::optional<Result<MatchTable>>> parts(k);
    std::vector<gpusim::MemStats> deltas(k);
    std::vector<JoinStats> part_join(k);
    std::vector<internal::RoutedStoreView::Traffic> remotes(k);
    {
      ThreadPool pool(k);
      for (PartitionId p = 0; p < k; ++p) {
        pool.Submit([&, p] {
          gpusim::Device& dev = pg.device(p);
          const obs::DeviceCycleClock clock(dev);
          obs::ScopedSpan part_span(join_span.context(), "partition_join",
                                    clock, static_cast<int32_t>(p));
          part_span.AddAttr("seed_rows",
                            static_cast<uint64_t>(seed_cols[p].size()));
          const gpusim::MemStats before = dev.stats();
          if (seed_cols[p].empty()) {
            parts[p] = MatchTable::Alloc(dev, 0, plan.order.size());
          } else {
            MatchTable m = internal::SeedOwned(dev, seed_cols[p]);
            // Only this partition's share is local; every other probe
            // crosses the interconnect to its owner.
            std::vector<const PcsrStore*> serving(k);
            std::vector<uint8_t> local(k, 0);
            for (PartitionId o = 0; o < k; ++o) serving[o] = &pg.store(o);
            local[p] = 1;
            internal::RoutedStoreView view(pg.owners(), std::move(serving),
                                           std::move(local), p,
                                           pg.halo_cache(p));
            JoinEngine join(&dev, &view, options.join);
            join.set_trace(part_span.context());
            const uint64_t probes_start = clock.NowNanos();
            parts[p] = join.RunSteps(plan, filtered.candidates, std::move(m),
                                     0, plan.steps.size());
            part_join[p] = join.stats();
            remotes[p] = view.traffic();
            // The partition's remote probes as one batch span covering the
            // join steps they were served during.
            const obs::TraceContext part_ctx = part_span.context();
            if (part_ctx.tracer != nullptr && remotes[p].remote_probes > 0) {
              const int32_t idx = part_ctx.tracer->RecordSpan(
                  "remote_probes", static_cast<int32_t>(p), probes_start,
                  clock.NowNanos(), part_ctx.parent);
              part_ctx.tracer->AddAttr(
                  idx, "probes", std::to_string(remotes[p].remote_probes));
              part_ctx.tracer->AddAttr(
                  idx, "lines", std::to_string(remotes[p].remote_lines));
            }
            // Halo-cache hits as their own span: remote lookups this lane
            // answered locally (cycle-clock timed, so traced runs at a
            // fixed budget stay byte-identical).
            if (part_ctx.tracer != nullptr && remotes[p].halo_hits > 0) {
              const int32_t idx = part_ctx.tracer->RecordSpan(
                  "halo_probe", static_cast<int32_t>(p), probes_start,
                  clock.NowNanos(), part_ctx.parent);
              part_ctx.tracer->AddAttr(
                  idx, "hits", std::to_string(remotes[p].halo_hits));
              part_ctx.tracer->AddAttr(
                  idx, "bytes", std::to_string(remotes[p].halo_hit_bytes));
            }
          }
          deltas[p] = dev.stats() - before;
        });
      }
      pool.Wait();
    }
    for (PartitionId p = 0; p < k; ++p) {
      if (!parts[p]->ok()) return parts[p]->status();
    }

    // --- Roll-up: counters sum total work; the time is the makespan of the
    // concurrently-running partitions (each a deterministic function of its
    // seed subsequence) plus the merge below.
    gpusim::MemStats join_counters;
    JoinStats detail;
    double sum_ms = 0;
    double max_ms = 0;
    size_t active = 0;
    for (PartitionId p = 0; p < k; ++p) {
      join_counters += deltas[p];
      if (seed_cols[p].empty()) continue;
      const double ms = deltas[p].SimulatedMs(pg.device(p).config());
      ++active;
      sum_ms += ms;
      max_ms = std::max(max_ms, ms);
      detail.iterations = std::max(detail.iterations, part_join[p].iterations);
      detail.peak_rows += part_join[p].peak_rows;  // concurrently resident
      detail.total_chunks += part_join[p].total_chunks;
      detail.dup_cache_hits += part_join[p].dup_cache_hits;
      detail.dup_cache_misses += part_join[p].dup_cache_misses;
      out.stats.remote_probes += remotes[p].remote_probes;
      out.stats.halo_bytes += remotes[p].remote_lines * kTransactionBytes;
      out.stats.halo_cache_hits += remotes[p].halo_hits;
      out.stats.halo_cache_bytes += remotes[p].halo_hit_bytes;
    }

    // --- Merge planning on the primary, in global seed order. The final
    // table of any join is grouped by its column-0 (seed) binding, runs
    // appear in candidate-list (ascending) order, and ownership split the
    // seed list into disjoint subsequences — so repeatedly taking the run
    // with the smallest column-0 head reconstructs the replicated table row
    // for row. The partial tables stay on their partition devices; only the
    // ordered run list is computed here, but the movement of non-primary
    // rows is still charged now (halo traffic), so one-shot and paged
    // consumers observe identical counters no matter how many pages are
    // eventually fetched.
    const gpusim::MemStats before_merge = primary.stats();
    obs::ScopedSpan merge_span(join_span.context(), "result_merge",
                               primary_clock);
    const size_t cols_out = plan.order.size();
    std::vector<const MatchTable*> tabs(k);
    for (PartitionId p = 0; p < k; ++p) tabs[p] = &parts[p]->value();
    std::vector<size_t> rows_from;
    const std::vector<ManifestSegment> runs =
        internal::PlanSeedRunMerge(tabs, rows_from);
    uint64_t remote_rows = 0;
    for (PartitionId p = 1; p < k; ++p) remote_rows += rows_from[p];
    const uint64_t merge_bytes = remote_rows * cols_out * sizeof(VertexId);
    primary.ChargeRemoteTransfer(merge_bytes);
    out.stats.halo_bytes += merge_bytes;
    size_t total_rows = 0;
    for (const MatchTable* t : tabs) total_rows += t->rows();
    merge_span.AddAttr("rows", static_cast<uint64_t>(total_rows));
    merge_span.AddAttr("halo_bytes", merge_bytes);
    if (Status h = CheckDeviceHealthy(primary, "result_merge"); !h.ok()) {
      return h;
    }
    const gpusim::MemStats merge_mem = primary.stats() - before_merge;
    join_counters += merge_mem;

    detail.final_rows = total_rows;
    detail.peak_rows = std::max(detail.peak_rows, total_rows);
    out.manifest.set_cols(cols_out);
    std::vector<size_t> part_index(k, SIZE_MAX);
    for (PartitionId p = 0; p < k; ++p) {
      if (parts[p]->value().rows() == 0) continue;  // nothing to reference
      part_index[p] =
          out.manifest.AddPart(std::move(parts[p]->value()), pg.device(p));
    }
    for (const ManifestSegment& r : runs) {
      out.manifest.AddSegment(part_index[r.part], r.begin, r.count);
    }
    out.column_to_query = plan.order;
    out.stats.join = join_counters;
    out.stats.join_detail = detail;
    out.stats.partitions_used = std::max<size_t>(1, active);
    out.stats.partition_skew =
        active > 0 && sum_ms > 0
            ? max_ms / (sum_ms / static_cast<double>(active))
            : 0;
    out.stats.join_ms =
        max_ms + merge_mem.SimulatedMs(primary.config());
  }

  // Covers the degenerate paths (single-vertex / empty-candidate), which
  // materialize on the primary without entering the join engine.
  if (Status h = CheckDeviceHealthy(primary, "join"); !h.ok()) return h;
  out.stats.filter_ms = out.stats.filter.SimulatedMs(primary.config());
  if (out.stats.join_ms == 0) {
    out.stats.join_ms = out.stats.join.SimulatedMs(primary.config());
  }
  out.stats.total_ms = out.stats.filter_ms + out.stats.join_ms;
  out.stats.num_matches = out.manifest.rows();
  return out;
}

Result<QueryResult> RunJoinStagePartitioned(const PartitionedGraph& pg,
                                            const Graph& query,
                                            FilterResult filtered,
                                            QueryStats stats,
                                            const obs::TraceContext& trace) {
  Result<PagedQueryResult> paged = RunJoinStagePartitionedPaged(
      pg, query, std::move(filtered), std::move(stats), trace);
  if (!paged.ok()) return paged.status();
  // Materializing is host-mediated row movement (uncharged); the merge's
  // interconnect cost was already charged at plan time, so this wrapper is
  // counter- and table-bit-identical to the historical eager merge.
  return ToQueryResult(std::move(paged.value()), pg.device(0));
}

Result<PagedQueryResult> ExecuteQueryPartitionedPaged(
    const PartitionedGraph& pg, const Graph& query,
    const obs::TraceContext& trace) {
  WallTimer wall;
  const obs::DeviceCycleClock primary_clock(pg.device(0));
  obs::ScopedSpan span(trace, "execute_partitioned", primary_clock, 0);
  span.AddAttr("partitions", static_cast<uint64_t>(pg.num_partitions()));
  QueryStats stats;
  double filter_parallel_ms = 0;
  Result<FilterResult> filtered = RunFilterStagePartitioned(
      pg, query, stats, &filter_parallel_ms, span.context());
  if (!filtered.ok()) return filtered.status();
  Result<PagedQueryResult> out = RunJoinStagePartitionedPaged(
      pg, query, std::move(filtered.value()), stats, span.context());
  if (out.ok()) {
    // The join stage derives filter_ms from the summed counters; restore
    // the fanned-out filter's makespan so total_ms reflects wall-parallel
    // partitions, not serialized work.
    out->stats.filter_ms = filter_parallel_ms;
    out->stats.total_ms = out->stats.filter_ms + out->stats.join_ms;
    out->stats.wall_ms = wall.ElapsedMs();
  }
  return out;
}

Result<QueryResult> ExecuteQueryPartitioned(const PartitionedGraph& pg,
                                            const Graph& query,
                                            const obs::TraceContext& trace) {
  Result<PagedQueryResult> paged =
      ExecuteQueryPartitionedPaged(pg, query, trace);
  if (!paged.ok()) return paged.status();
  return ToQueryResult(std::move(paged.value()), pg.device(0));
}

}  // namespace gsi
