#include "gsi/filter.h"

#include <algorithm>
#include <unordered_map>

#include "gpusim/launch.h"
#include "storage/signature.h"
#include "util/check.h"

namespace gsi {
namespace {

using gpusim::kWarpSize;

/// Per-edge-label degree requirements of a query vertex: l -> |N(u, l)|.
std::unordered_map<Label, uint32_t> LabelDegreeRequirements(const Graph& q,
                                                            VertexId u) {
  std::unordered_map<Label, uint32_t> req;
  for (const Neighbor& n : q.neighbors(u)) ++req[n.elabel];
  return req;
}

}  // namespace

FilterContext::FilterContext(gpusim::Device& dev, const Graph& data,
                             const FilterOptions& options)
    : dev_(&dev), data_(&data), options_(options) {
  if (options.strategy == FilterStrategy::kSignature) {
    signatures_ =
        SignatureTable::Build(dev, data, options.signature_bits,
                              options.layout);
    has_signatures_ = true;
  } else {
    std::vector<Label> labels(data.vertex_labels().begin(),
                              data.vertex_labels().end());
    std::vector<uint32_t> degrees(data.num_vertices());
    for (VertexId v = 0; v < data.num_vertices(); ++v) {
      degrees[v] = static_cast<uint32_t>(data.degree(v));
    }
    labels_ = dev.Upload(std::move(labels));
    degrees_ = dev.Upload(std::move(degrees));
  }
}

std::vector<VertexId> FilterContext::SignatureCandidates(gpusim::Device& dev,
                                                         const Graph& query,
                                                         VertexId u) const {
  const Graph& g = *data_;
  const size_t n = g.num_vertices();
  const int words = signatures_.words_per_sig();
  Signature qsig = Signature::Encode(query, u, options_.signature_bits);

  std::vector<VertexId> out;
  size_t num_warps = (n + kWarpSize - 1) / kWarpSize;
  gpusim::Launch(dev, num_warps, [&](gpusim::Warp& w) {
    VertexId v0 = static_cast<VertexId>(w.global_id() * kWarpSize);
    if (v0 >= n) return;
    size_t lanes = std::min<size_t>(kWarpSize, n - v0);
    uint32_t vals[kWarpSize];
    bool alive[kWarpSize];

    // First iteration: read the first 32 bits (the raw vertex label) and
    // compare exactly (Section VII-B).
    signatures_.WarpReadWord(w, v0, lanes, 0, vals);
    w.Alu(lanes);
    bool any = false;
    for (size_t k = 0; k < lanes; ++k) {
      alive[k] = (vals[k] == qsig.word(0));
      any |= alive[k];
    }
    // Remaining words: bitwise AND domination test; the whole warp issues
    // the reads as long as any lane is alive (SIMD).
    for (int word = 1; word < words && any; ++word) {
      signatures_.WarpReadWord(w, v0, lanes, word, vals);
      w.Alu(lanes);
      any = false;
      for (size_t k = 0; k < lanes; ++k) {
        alive[k] = alive[k] &&
                   ((vals[k] & qsig.word(word)) == qsig.word(word));
        any |= alive[k];
      }
    }
    // Warp-aggregated survivor write: one coalesced store per warp.
    uint32_t survivors = 0;
    for (size_t k = 0; k < lanes; ++k) {
      if (alive[k]) {
        out.push_back(v0 + static_cast<VertexId>(k));
        ++survivors;
      }
    }
    if (survivors > 0) {
      w.Alu(1);  // warp-aggregated atomic offset claim
      w.ChargeStoreTransactions(gpusim::Device::RangeTransactions(
          0, survivors * sizeof(VertexId)));
    }
  });
  return out;
}

std::vector<VertexId> FilterContext::LabelDegreeCandidates(
    gpusim::Device& dev, const Graph& query, VertexId u,
    bool check_neighbors) const {
  const Graph& g = *data_;
  const size_t n = g.num_vertices();
  const Label ulabel = query.vertex_label(u);
  const uint32_t udeg = static_cast<uint32_t>(query.degree(u));
  auto requirements = LabelDegreeRequirements(query, u);

  std::vector<VertexId> out;
  size_t num_warps = (n + kWarpSize - 1) / kWarpSize;
  gpusim::Launch(dev, num_warps, [&](gpusim::Warp& w) {
    VertexId v0 = static_cast<VertexId>(w.global_id() * kWarpSize);
    if (v0 >= n) return;
    size_t lanes = std::min<size_t>(kWarpSize, n - v0);
    uint64_t idx[kWarpSize];
    for (size_t k = 0; k < lanes; ++k) idx[k] = v0 + k;
    Label lab[kWarpSize];
    uint32_t deg[kWarpSize];
    w.Gather(labels_, std::span<const uint64_t>(idx, lanes),
             std::span<Label>(lab, lanes));
    w.Gather(degrees_, std::span<const uint64_t>(idx, lanes),
             std::span<uint32_t>(deg, lanes));
    w.Alu(2 * lanes);

    uint32_t survivors = 0;
    for (size_t k = 0; k < lanes; ++k) {
      VertexId v = v0 + static_cast<VertexId>(k);
      if (lab[k] != ulabel || deg[k] < udeg) continue;
      if (check_neighbors) {
        // GpSM-style refinement: v must have at least |N(u, l)| l-labeled
        // neighbors for every edge label l around u. Requires scanning v's
        // adjacency — scattered loads, skewed workloads.
        std::span<const Neighbor> nbrs = g.neighbors(v);
        // Charge: stream the adjacency slice (ids + labels: two arrays).
        w.ChargeLoadTransactions(2 * gpusim::Device::RangeTransactions(
            0, nbrs.size() * sizeof(VertexId)));
        w.Alu(nbrs.size());
        std::unordered_map<Label, uint32_t> have;
        for (const Neighbor& nb : nbrs) ++have[nb.elabel];
        bool ok = true;
        for (const auto& [l, need] : requirements) {
          auto it = have.find(l);
          if (it == have.end() || it->second < need) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
      }
      out.push_back(v);
      ++survivors;
    }
    if (survivors > 0) {
      w.Alu(1);
      w.ChargeStoreTransactions(gpusim::Device::RangeTransactions(
          0, survivors * sizeof(VertexId)));
    }
  });
  return out;
}

Result<FilterResult> FilterContext::Filter(const Graph& query) const {
  return Filter(*dev_, query);
}

Result<FilterResult> FilterContext::Filter(gpusim::Device& dev,
                                           const Graph& query) const {
  FilterResult result;
  result.candidates.resize(query.num_vertices());
  result.min_candidate_size = SIZE_MAX;
  for (VertexId u = 0; u < query.num_vertices(); ++u) {
    std::vector<VertexId> cand;
    switch (options_.strategy) {
      case FilterStrategy::kSignature:
        cand = SignatureCandidates(dev, query, u);
        break;
      case FilterStrategy::kLabelDegreeNeighbor:
        cand = LabelDegreeCandidates(dev, query, u, /*check_neighbors=*/true);
        break;
      case FilterStrategy::kLabelDegree:
        cand = LabelDegreeCandidates(dev, query, u, /*check_neighbors=*/false);
        break;
    }
    if (cand.size() < result.min_candidate_size) {
      result.min_candidate_size = cand.size();
      result.min_candidate_vertex = u;
    }
    result.candidates[u] =
        CandidateSet::Create(dev, u, std::move(cand),
                             data_->num_vertices(), options_.build_bitmaps);
  }
  return result;
}

}  // namespace gsi
