#include "gsi/filter.h"

#include <algorithm>
#include <unordered_map>

#include "gpusim/launch.h"
#include "storage/signature.h"
#include "util/check.h"

namespace gsi {
namespace {

using gpusim::kWarpSize;

/// Per-edge-label degree requirements of a query vertex: l -> |N(u, l)|.
std::unordered_map<Label, uint32_t> LabelDegreeRequirements(const Graph& q,
                                                            VertexId u) {
  std::unordered_map<Label, uint32_t> req;
  for (const Neighbor& n : q.neighbors(u)) ++req[n.elabel];
  return req;
}

}  // namespace

FilterContext::FilterContext(gpusim::Device& dev, const Graph& data,
                             const FilterOptions& options)
    : dev_(&dev), data_(&data), options_(options) {
  if (options.strategy == FilterStrategy::kSignature) {
    signatures_ =
        SignatureTable::Build(dev, data, options.signature_bits,
                              options.layout);
    has_signatures_ = true;
  } else {
    std::vector<Label> labels(data.vertex_labels().begin(),
                              data.vertex_labels().end());
    std::vector<uint32_t> degrees(data.num_vertices());
    for (VertexId v = 0; v < data.num_vertices(); ++v) {
      degrees[v] = static_cast<uint32_t>(data.degree(v));
    }
    labels_ = dev.Upload(std::move(labels));
    degrees_ = dev.Upload(std::move(degrees));
  }
}

void FilterContext::SignatureScanWarp(gpusim::Warp& w, const Signature& qsig,
                                      VertexId v0, size_t lanes,
                                      std::vector<VertexId>& out) const {
  const int words = signatures_.words_per_sig();
  uint32_t vals[kWarpSize];
  bool alive[kWarpSize];

  // First iteration: read the first 32 bits (the raw vertex label) and
  // compare exactly (Section VII-B).
  signatures_.WarpReadWord(w, v0, lanes, 0, vals);
  w.Alu(lanes);
  bool any = false;
  for (size_t k = 0; k < lanes; ++k) {
    alive[k] = (vals[k] == qsig.word(0));
    any |= alive[k];
  }
  // Remaining words: bitwise AND domination test; the whole warp issues
  // the reads as long as any lane is alive (SIMD).
  for (int word = 1; word < words && any; ++word) {
    signatures_.WarpReadWord(w, v0, lanes, word, vals);
    w.Alu(lanes);
    any = false;
    for (size_t k = 0; k < lanes; ++k) {
      alive[k] = alive[k] &&
                 ((vals[k] & qsig.word(word)) == qsig.word(word));
      any |= alive[k];
    }
  }
  // Warp-aggregated survivor write: one coalesced store per warp.
  uint32_t survivors = 0;
  for (size_t k = 0; k < lanes; ++k) {
    if (alive[k]) {
      out.push_back(v0 + static_cast<VertexId>(k));
      ++survivors;
    }
  }
  if (survivors > 0) {
    w.Alu(1);  // warp-aggregated atomic offset claim
    w.ChargeStoreTransactions(gpusim::Device::RangeTransactions(
        0, survivors * sizeof(VertexId)));
  }
}

std::vector<VertexId> FilterContext::SignatureCandidates(gpusim::Device& dev,
                                                         const Graph& query,
                                                         VertexId u,
                                                         VertexId v_begin,
                                                         VertexId v_end) const {
  Signature qsig = Signature::Encode(query, u, options_.signature_bits);
  std::vector<VertexId> out;
  const size_t n = v_end;
  size_t num_warps = (n - v_begin + kWarpSize - 1) / kWarpSize;
  gpusim::Launch(dev, num_warps, [&](gpusim::Warp& w) {
    VertexId v0 =
        v_begin + static_cast<VertexId>(w.global_id() * kWarpSize);
    if (v0 >= n) return;
    size_t lanes = std::min<size_t>(kWarpSize, n - v0);
    SignatureScanWarp(w, qsig, v0, lanes, out);
  });
  return out;
}

void FilterContext::LabelDegreeScanWarp(
    gpusim::Warp& w, Label ulabel, uint32_t udeg,
    const std::unordered_map<Label, uint32_t>& requirements,
    bool check_neighbors, VertexId v0, size_t lanes,
    std::vector<VertexId>& out) const {
  const Graph& g = *data_;
  uint64_t idx[kWarpSize];
  for (size_t k = 0; k < lanes; ++k) idx[k] = v0 + k;
  Label lab[kWarpSize];
  uint32_t deg[kWarpSize];
  w.Gather(labels_, std::span<const uint64_t>(idx, lanes),
           std::span<Label>(lab, lanes));
  w.Gather(degrees_, std::span<const uint64_t>(idx, lanes),
           std::span<uint32_t>(deg, lanes));
  w.Alu(2 * lanes);

  uint32_t survivors = 0;
  for (size_t k = 0; k < lanes; ++k) {
    VertexId v = v0 + static_cast<VertexId>(k);
    if (lab[k] != ulabel || deg[k] < udeg) continue;
    if (check_neighbors) {
      // GpSM-style refinement: v must have at least |N(u, l)| l-labeled
      // neighbors for every edge label l around u. Requires scanning v's
      // adjacency — scattered loads, skewed workloads.
      std::span<const Neighbor> nbrs = g.neighbors(v);
      // Charge: stream the adjacency slice (ids + labels: two arrays).
      w.ChargeLoadTransactions(2 * gpusim::Device::RangeTransactions(
          0, nbrs.size() * sizeof(VertexId)));
      w.Alu(nbrs.size());
      std::unordered_map<Label, uint32_t> have;
      for (const Neighbor& nb : nbrs) ++have[nb.elabel];
      bool ok = true;
      // Order-safe: a pure conjunction over all entries — the verdict (and
      // the charged work, all outside the loop) is the same in any order.
      // NOLINTNEXTLINE(determinism:unordered-iteration)
      for (const auto& [l, need] : requirements) {
        auto it = have.find(l);
        if (it == have.end() || it->second < need) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
    }
    out.push_back(v);
    ++survivors;
  }
  if (survivors > 0) {
    w.Alu(1);
    w.ChargeStoreTransactions(gpusim::Device::RangeTransactions(
        0, survivors * sizeof(VertexId)));
  }
}

std::vector<VertexId> FilterContext::LabelDegreeCandidates(
    gpusim::Device& dev, const Graph& query, VertexId u, bool check_neighbors,
    VertexId v_begin, VertexId v_end) const {
  const Label ulabel = query.vertex_label(u);
  const uint32_t udeg = static_cast<uint32_t>(query.degree(u));
  auto requirements = LabelDegreeRequirements(query, u);

  std::vector<VertexId> out;
  const size_t n = v_end;
  size_t num_warps = (n - v_begin + kWarpSize - 1) / kWarpSize;
  gpusim::Launch(dev, num_warps, [&](gpusim::Warp& w) {
    VertexId v0 =
        v_begin + static_cast<VertexId>(w.global_id() * kWarpSize);
    if (v0 >= n) return;
    size_t lanes = std::min<size_t>(kWarpSize, n - v0);
    LabelDegreeScanWarp(w, ulabel, udeg, requirements, check_neighbors, v0,
                        lanes, out);
  });
  return out;
}

std::vector<std::vector<VertexId>> FilterContext::CandidateLists(
    gpusim::Device& dev, const Graph& query, VertexId v_begin,
    VertexId v_end) const {
  const size_t nu = query.num_vertices();
  std::vector<std::vector<VertexId>> out(nu);
  v_end = std::min<VertexId>(v_end,
                             static_cast<VertexId>(data_->num_vertices()));
  if (nu == 0 || v_begin >= v_end) return out;
  const size_t n = v_end;
  const size_t warps_per_u = (n - v_begin + kWarpSize - 1) / kWarpSize;

  // Per-vertex scan parameters, precomputed host-side like the per-u
  // kernels do.
  std::vector<Signature> qsigs;
  std::vector<Label> ulabels(nu);
  std::vector<uint32_t> udegs(nu);
  std::vector<std::unordered_map<Label, uint32_t>> requirements(nu);
  const bool sig = options_.strategy == FilterStrategy::kSignature;
  for (VertexId u = 0; u < nu; ++u) {
    if (sig) {
      qsigs.push_back(Signature::Encode(query, u, options_.signature_bits));
    } else {
      ulabels[u] = query.vertex_label(u);
      udegs[u] = static_cast<uint32_t>(query.degree(u));
      requirements[u] = LabelDegreeRequirements(query, u);
    }
  }

  // One fused kernel: warp w scans 32 vertices for query vertex
  // w / warps_per_u. Identical per-warp work (and transactions) to the
  // per-vertex kernels, but one launch packs all blocks onto the SMs —
  // the sharded filter calls this once per device-range so a 1/K range
  // costs ~1/K the makespan instead of |V(Q)| under-filled launches.
  gpusim::Launch(dev, nu * warps_per_u, [&](gpusim::Warp& w) {
    const VertexId u = static_cast<VertexId>(w.global_id() / warps_per_u);
    VertexId v0 = v_begin + static_cast<VertexId>(
                                (w.global_id() % warps_per_u) * kWarpSize);
    if (v0 >= n) return;
    size_t lanes = std::min<size_t>(kWarpSize, n - v0);
    if (sig) {
      SignatureScanWarp(w, qsigs[u], v0, lanes, out[u]);
    } else {
      LabelDegreeScanWarp(
          w, ulabels[u], udegs[u], requirements[u],
          options_.strategy == FilterStrategy::kLabelDegreeNeighbor, v0,
          lanes, out[u]);
    }
  });
  return out;
}

Result<FilterResult> FilterContext::Filter(const Graph& query) const {
  return Filter(*dev_, query);
}

size_t FilterContext::num_data_vertices() const {
  return data_->num_vertices();
}

std::vector<VertexId> FilterContext::CandidateList(gpusim::Device& dev,
                                                   const Graph& query,
                                                   VertexId u,
                                                   VertexId v_begin,
                                                   VertexId v_end) const {
  v_end = std::min<VertexId>(
      v_end, static_cast<VertexId>(data_->num_vertices()));
  if (v_begin >= v_end) return {};
  switch (options_.strategy) {
    case FilterStrategy::kSignature:
      return SignatureCandidates(dev, query, u, v_begin, v_end);
    case FilterStrategy::kLabelDegreeNeighbor:
      return LabelDegreeCandidates(dev, query, u, /*check_neighbors=*/true,
                                   v_begin, v_end);
    case FilterStrategy::kLabelDegree:
      return LabelDegreeCandidates(dev, query, u, /*check_neighbors=*/false,
                                   v_begin, v_end);
  }
  return {};
}

Result<FilterResult> FilterContext::Filter(gpusim::Device& dev,
                                           const Graph& query) const {
  FilterResult result;
  result.candidates.resize(query.num_vertices());
  result.min_candidate_size = SIZE_MAX;
  for (VertexId u = 0; u < query.num_vertices(); ++u) {
    std::vector<VertexId> cand = CandidateList(dev, query, u);
    if (cand.size() < result.min_candidate_size) {
      result.min_candidate_size = cand.size();
      result.min_candidate_vertex = u;
    }
    result.candidates[u] =
        CandidateSet::Create(dev, u, std::move(cand),
                             data_->num_vertices(), options_.build_bitmaps);
  }
  return result;
}

}  // namespace gsi
