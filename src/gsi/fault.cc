#include "gsi/fault.h"

#include <string>

namespace gsi {

Status CheckDeviceHealthy(const gpusim::Device& dev, const char* phase) {
  if (dev.healthy()) return Status::Ok();
  return Status::Unavailable(
      "device " + std::to_string(dev.ordinal()) + " failed during " + phase +
      ": " + dev.fault_message() +
      " (partial results discarded; retry on a healthy selection)");
}

}  // namespace gsi
