#include "gsi/replication.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "gpusim/launch.h"
#include "gsi/fault.h"
#include "gsi/join.h"
#include "gsi/partition_internal.h"
#include "gsi/plan.h"
#include "storage/signature.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gsi {
namespace {

using gpusim::kTransactionBytes;

/// The selection's execution lanes: one per distinct selected device
/// (ascending device index), each joining its partitions in id order. The
/// first lane's device is the primary (gathers candidates, merges tables).
struct Lanes {
  std::vector<size_t> devices;                      // ascending
  std::vector<std::vector<PartitionId>> parts;      // [lane] -> partitions
  std::vector<size_t> lane_of;                      // [partition] -> lane
};

Lanes LanesOf(const ReplicatedGraph& rg, const ReplicaSelection& sel) {
  Lanes lanes;
  const size_t k = rg.num_partitions();
  lanes.lane_of.resize(k);
  std::map<size_t, std::vector<PartitionId>> by_device;
  for (PartitionId p = 0; p < k; ++p) {
    by_device[sel.DeviceOf(rg.placement(), p)].push_back(p);
  }
  for (auto& [d, parts] : by_device) {
    for (PartitionId p : parts) lanes.lane_of[p] = lanes.devices.size();
    lanes.devices.push_back(d);
    lanes.parts.push_back(std::move(parts));
  }
  return lanes;
}

Status ValidateSelection(const ReplicatedGraph& rg,
                         const ReplicaSelection& sel) {
  if (sel.choice.size() != rg.num_partitions()) {
    return Status::InvalidArgument(
        "replica selection covers " + std::to_string(sel.choice.size()) +
        " partitions, graph has " + std::to_string(rg.num_partitions()));
  }
  for (PartitionId p = 0; p < rg.num_partitions(); ++p) {
    if (sel.choice[p] >= rg.num_replicas()) {
      return Status::InvalidArgument(
          "selection picks replica " + std::to_string(sel.choice[p]) +
          " of partition " + std::to_string(p) + ", only " +
          std::to_string(rg.num_replicas()) + " exist");
    }
  }
  return Status::Ok();
}

/// The routing table of one lane: probes of partition o are served by a
/// co-resident share when device d holds one (local — replication's saved
/// traffic), else by the selected replica of o (a device this query holds,
/// so concurrent queries never touch each other's devices).
void RouteForDevice(const ReplicatedGraph& rg, const ReplicaSelection& sel,
                    size_t d, std::vector<const PcsrStore*>& serving,
                    std::vector<uint8_t>& local) {
  const size_t k = rg.num_partitions();
  serving.assign(k, nullptr);
  local.assign(k, 0);
  for (PartitionId o = 0; o < k; ++o) {
    if (const PcsrStore* resident = rg.StoreOn(d, o)) {
      serving[o] = resident;
      local[o] = 1;
    } else {
      serving[o] = &rg.store(o, sel.choice[o]);
    }
  }
}

}  // namespace

bool ReplicaPlacement::Hosts(size_t d, PartitionId p) const {
  for (size_t dev : device_of[p]) {
    if (dev == d) return true;
  }
  return false;
}

Result<ReplicaPlacement> MakeStaggeredPlacement(size_t num_devices,
                                                size_t partitions,
                                                size_t replicas) {
  if (num_devices < 1 || partitions < 1) {
    return Status::InvalidArgument(
        "replicated placement needs >= 1 device and >= 1 partition");
  }
  if (replicas < 1 || replicas > num_devices) {
    return Status::InvalidArgument(
        "replicas must be in [1, num_devices]; got " +
        std::to_string(replicas) + " over " + std::to_string(num_devices) +
        " devices");
  }
  ReplicaPlacement pl;
  pl.num_devices = num_devices;
  pl.partitions = partitions;
  pl.replicas = replicas;
  pl.device_of.resize(partitions);
  pl.shares_of.resize(num_devices);
  // Stride N/R spaces the replicas of one partition across the pool: the
  // offsets j*(N/R) for j < R are strictly increasing and below N, so the
  // R devices are distinct, and partitions p, p + N/R, ... share device
  // sets — the lanes AcquireOneOfEach packs onto.
  const size_t stride = std::max<size_t>(1, num_devices / replicas);
  for (PartitionId p = 0; p < partitions; ++p) {
    for (size_t j = 0; j < replicas; ++j) {
      pl.device_of[p].push_back((p + j * stride) % num_devices);
    }
  }
  for (PartitionId p = 0; p < partitions; ++p) {
    for (size_t d : pl.device_of[p]) pl.shares_of[d].push_back(p);
  }
  for (std::vector<PartitionId>& shares : pl.shares_of) {
    std::sort(shares.begin(), shares.end());
  }
  return pl;
}

uint64_t ReplicationBuildStats::max_resident_bytes() const {
  uint64_t worst = 0;
  for (uint64_t b : resident_bytes) worst = std::max(worst, b);
  return worst;
}

const PcsrStore* ReplicatedGraph::StoreOn(size_t d, PartitionId p) const {
  const std::vector<size_t>& devs = placement_.device_of[p];
  for (size_t j = 0; j < devs.size(); ++j) {
    if (devs[j] == d) return stores_[p][j].get();
  }
  return nullptr;
}

Result<ReplicatedGraph> ReplicatedGraph::Build(
    std::span<gpusim::Device* const> devs, const Graph& data,
    const GsiOptions& options, const GraphPartitioner& partitioner,
    size_t partitions, size_t replicas) {
  if (devs.empty()) {
    return Status::InvalidArgument(
        "replicated build needs at least one device");
  }
  Status valid = ValidateGsiOptions(options);
  if (!valid.ok()) return valid;
  if (options.join.storage != StorageKind::kPcsr) {
    return Status::InvalidArgument(
        "replicated execution requires PCSR storage (join.storage)");
  }
  if (options.filter.strategy != FilterStrategy::kSignature) {
    return Status::InvalidArgument(
        "replicated execution requires the signature filter strategy");
  }
  if (partitions == 0) partitions = devs.size();
  Result<ReplicaPlacement> placement =
      MakeStaggeredPlacement(devs.size(), partitions, replicas);
  if (!placement.ok()) return placement.status();

  const size_t k = partitions;
  std::vector<PartitionId> owner = partitioner.Assign(data, k);
  if (owner.size() != data.num_vertices()) {
    return Status::Internal(partitioner.name() +
                            " returned an assignment of the wrong size");
  }
  for (PartitionId p : owner) {
    if (p >= k) {
      return Status::InvalidArgument(partitioner.name() +
                                     " assigned a vertex outside [0, K)");
    }
  }

  ReplicatedGraph rg;
  rg.data_ = &data;
  rg.options_ = options;
  rg.partitioner_name_ = partitioner.name();
  rg.devs_.assign(devs.begin(), devs.end());
  rg.placement_ = std::move(placement.value());
  rg.owner_ = std::move(owner);
  rg.owned_.resize(k);
  for (VertexId v = 0; v < data.num_vertices(); ++v) {
    rg.owned_[rg.owner_[v]].push_back(v);
  }

  ReplicationBuildStats& bs = rg.build_stats_;
  bs.resident_bytes.assign(devs.size(), 0);
  std::vector<uint8_t> keep(data.num_vertices());
  rg.stores_.resize(k);
  rg.signatures_.resize(k);
  for (PartitionId p = 0; p < k; ++p) {
    std::fill(keep.begin(), keep.end(), 0);
    for (VertexId v : rg.owned_[p]) keep[v] = 1;
    uint64_t share_bytes = 0;
    for (size_t j = 0; j < replicas; ++j) {
      gpusim::Device& dev = *rg.devs_[rg.placement_.device_of[p][j]];
      rg.stores_[p].push_back(
          PcsrStore::BuildForVertices(dev, data, keep, options.join.gpn));
      rg.signatures_[p].push_back(SignatureTable::BuildSubset(
          dev, data, rg.owned_[p], options.filter.signature_bits,
          options.filter.layout));
      share_bytes = rg.stores_[p][j]->device_bytes() +
                    rg.signatures_[p][j].device_bytes();
      bs.resident_bytes[rg.placement_.device_of[p][j]] += share_bytes;
      bs.total_bytes += share_bytes;
    }
    bs.replicated_bytes += share_bytes;  // one copy of every share
  }
  // The halo cache's budget is a reserved slice of each pool device's
  // resident memory (not of replicated/total bytes, which measure share
  // storage). One cache per device: a device serves many partitions'
  // probes, and its cache must die with its fault epoch, not a partition.
  rg.halo_.resize(devs.size());
  if (options.halo_budget_bytes > 0) {
    for (size_t d = 0; d < devs.size(); ++d) {
      rg.halo_[d] =
          std::make_unique<HaloCache>(*rg.devs_[d], options.halo_budget_bytes);
      bs.resident_bytes[d] += options.halo_budget_bytes;
    }
  }
  return rg;
}

ReplicaSelection CompactSelection(const ReplicatedGraph& rg) {
  const ReplicaPlacement& pl = rg.placement();
  ReplicaSelection sel;
  sel.choice.resize(pl.partitions);
  std::vector<uint8_t> used(pl.num_devices, 0);
  for (PartitionId p = 0; p < pl.partitions; ++p) {
    size_t best = 0;
    for (size_t j = 1; j < pl.replicas; ++j) {
      const size_t d = pl.device_of[p][j];
      const size_t bd = pl.device_of[p][best];
      if (std::make_pair(used[d] == 0, d) < std::make_pair(used[bd] == 0, bd)) {
        best = j;
      }
    }
    sel.choice[p] = static_cast<uint32_t>(best);
    used[pl.device_of[p][best]] = 1;
  }
  return sel;
}

Result<ReplicaSelection> SelectionFromDevices(
    const ReplicatedGraph& rg, std::span<const size_t> device_of_partition) {
  if (device_of_partition.size() != rg.num_partitions()) {
    return Status::InvalidArgument(
        "device list covers " + std::to_string(device_of_partition.size()) +
        " partitions, graph has " + std::to_string(rg.num_partitions()));
  }
  const ReplicaPlacement& pl = rg.placement();
  ReplicaSelection sel;
  sel.choice.resize(pl.partitions);
  for (PartitionId p = 0; p < pl.partitions; ++p) {
    const std::vector<size_t>& devs = pl.device_of[p];
    const auto it =
        std::find(devs.begin(), devs.end(), device_of_partition[p]);
    if (it == devs.end()) {
      return Status::InvalidArgument(
          "device " + std::to_string(device_of_partition[p]) +
          " holds no replica of partition " + std::to_string(p));
    }
    sel.choice[p] = static_cast<uint32_t>(it - devs.begin());
  }
  return sel;
}

Result<FilterResult> RunFilterStageReplicated(const ReplicatedGraph& rg,
                                              const ReplicaSelection& sel,
                                              const Graph& query,
                                              QueryStats& stats,
                                              double* parallel_ms,
                                              const obs::TraceContext& trace) {
  if (query.num_vertices() == 0) {
    return Status::InvalidArgument("empty query");
  }
  if (!query.IsConnected()) {
    return Status::InvalidArgument(
        "query must be connected (run components separately)");
  }
  Status valid = ValidateSelection(rg, sel);
  if (!valid.ok()) return valid;

  const size_t k = rg.num_partitions();
  const size_t nu = query.num_vertices();
  const size_t n = rg.data().num_vertices();
  const int nbits = rg.options().filter.signature_bits;

  std::vector<Signature> qsigs;
  qsigs.reserve(nu);
  for (VertexId u = 0; u < nu; ++u) {
    qsigs.push_back(Signature::Encode(query, u, nbits));
  }

  // --- Scan phase: each selected device scans the signature shares of its
  // partitions back-to-back (one fused kernel per partition — a lane's
  // partitions serialize on its device, lanes run concurrently).
  const Lanes lanes = LanesOf(rg, sel);
  gpusim::Device& primary = rg.device(lanes.devices[0]);
  const obs::DeviceCycleClock primary_clock(primary);
  obs::ScopedSpan filter_span(trace, "filter", primary_clock,
                              static_cast<int32_t>(lanes.devices[0]));
  std::vector<std::vector<std::vector<VertexId>>> partial(k);  // [p][u]
  std::vector<double> lane_scan_ms(lanes.devices.size(), 0);
  std::vector<gpusim::MemStats> scan_mem(k);
  {
    ThreadPool pool(lanes.devices.size());
    for (size_t lane = 0; lane < lanes.devices.size(); ++lane) {
      pool.Submit([&, lane] {
        gpusim::Device& dev = rg.device(lanes.devices[lane]);
        const obs::DeviceCycleClock clock(dev);
        obs::ScopedSpan lane_span(filter_span.context(), "lane_scan", clock,
                                  static_cast<int32_t>(lanes.devices[lane]));
        lane_span.AddAttr("partitions",
                          static_cast<uint64_t>(lanes.parts[lane].size()));
        for (PartitionId p : lanes.parts[lane]) {
          obs::ScopedSpan span(lane_span.context(), "partition_scan", clock);
          span.AddAttr("partition", static_cast<uint64_t>(p));
          span.AddAttr("vertices", static_cast<uint64_t>(rg.owned(p).size()));
          const gpusim::MemStats before = dev.stats();
          partial[p] = internal::ScanOwnedSignatures(
              dev, rg.signatures(p, sel.choice[p]), rg.owned(p), qsigs);
          scan_mem[p] = dev.stats() - before;
          lane_scan_ms[lane] += scan_mem[p].SimulatedMs(dev.config());
        }
      });
    }
    pool.Wait();
  }
  // Phase barrier: a lane device that tripped mid-scan invalidates the
  // survivor lists of every partition it scanned; fail over before the
  // gather touches them.
  for (size_t lane = 0; lane < lanes.devices.size(); ++lane) {
    if (Status h = CheckDeviceHealthy(rg.device(lanes.devices[lane]),
                                      "lane_scan");
        !h.ok()) {
      return h;
    }
  }

  // --- Gather phase: survivor lists all-gather to the primary (the first
  // lane's device). Lists of partitions co-resident with the primary stay
  // local; the rest cross the interconnect as halo traffic. The K-way
  // merge reproduces the replicated scan's candidate lists exactly (see
  // MergeAscendingDisjoint), so every selection materializes identical
  // candidate sets.
  const gpusim::MemStats before_gather = primary.stats();
  obs::ScopedSpan gather_span(filter_span.context(), "candidate_gather",
                              primary_clock);
  uint64_t halo = 0;
  FilterResult result;
  result.candidates.resize(nu);
  std::vector<size_t> sizes(nu, 0);
  for (VertexId u = 0; u < nu; ++u) {
    std::vector<const std::vector<VertexId>*> lists(k);
    for (PartitionId p = 0; p < k; ++p) {
      lists[p] = &partial[p][u];
      if (lanes.devices[lanes.lane_of[p]] != lanes.devices[0]) {
        halo += partial[p][u].size() * sizeof(VertexId);
      }
    }
    std::vector<VertexId> merged = internal::MergeAscendingDisjoint(lists);
    sizes[u] = merged.size();
    result.candidates[u] = CandidateSet::Create(
        primary, u, std::move(merged), n, rg.options().filter.build_bitmaps);
  }
  primary.ChargeRemoteTransfer(halo);
  gather_span.AddAttr("halo_bytes", halo);
  if (Status h = CheckDeviceHealthy(primary, "candidate_gather"); !h.ok()) {
    return h;
  }
  const gpusim::MemStats gather_mem = primary.stats() - before_gather;

  result.min_candidate_size = SIZE_MAX;
  for (VertexId u = 0; u < nu; ++u) {
    if (sizes[u] < result.min_candidate_size) {
      result.min_candidate_size = sizes[u];
      result.min_candidate_vertex = u;
    }
  }

  gpusim::MemStats total;
  for (PartitionId p = 0; p < k; ++p) total += scan_mem[p];
  total += gather_mem;
  double max_scan_ms = 0;
  for (double ms : lane_scan_ms) max_scan_ms = std::max(max_scan_ms, ms);
  stats.filter = total;
  stats.min_candidate_size = result.min_candidate_size;
  stats.halo_bytes += halo;
  if (parallel_ms != nullptr) {
    *parallel_ms = max_scan_ms + gather_mem.SimulatedMs(primary.config());
  }
  return result;
}

Result<PagedQueryResult> RunJoinStageReplicatedPaged(
    const ReplicatedGraph& rg, const ReplicaSelection& sel, const Graph& query,
    FilterResult filtered, QueryStats stats, const obs::TraceContext& trace) {
  Status valid = ValidateSelection(rg, sel);
  if (!valid.ok()) return valid;
  const Graph& data = rg.data();
  const GsiOptions& options = rg.options();
  const size_t k = rg.num_partitions();
  const Lanes lanes = LanesOf(rg, sel);
  gpusim::Device& primary = rg.device(lanes.devices[0]);
  const obs::DeviceCycleClock primary_clock(primary);
  obs::ScopedSpan join_span(trace, "join", primary_clock,
                            static_cast<int32_t>(lanes.devices[0]));

  PagedQueryResult out;
  out.stats = stats;
  out.stats.replica_lanes = lanes.devices.size();

  if (query.num_vertices() == 1) {
    // Degenerate query: the candidate set is the answer (assembled on the
    // primary, exactly like RunJoinStage).
    const CandidateSet& c = filtered.candidates[0];
    MatchTable table = MatchTable::Alloc(primary, c.size(), 1);
    for (size_t i = 0; i < c.size(); ++i) table.Set(i, 0, c.list()[i]);
    out.manifest = ResultManifest::FromWholeTable(std::move(table), primary);
    out.column_to_query = {0};
    out.stats.partitions_used = 1;
  } else if (filtered.AnyEmpty()) {
    // Some query vertex has no candidates: zero matches, skip the join.
    out.manifest = ResultManifest::FromWholeTable(
        MatchTable::Alloc(primary, 0, query.num_vertices()), primary);
    JoinPlan plan = MakeJoinPlan(query, data, filtered.candidates);
    out.column_to_query = plan.order;
    out.stats.partitions_used = 1;
  } else {
    const JoinPlan plan = MakeJoinPlan(query, data, filtered.candidates);
    const CandidateSet& seed = filtered.candidates[plan.order[0]];

    // Split the seed list by ownership (host-mediated read, like any seed
    // scatter): partition p joins the subsequence of C(order[0]) it owns,
    // on whichever device the selection mapped it to.
    std::vector<std::vector<VertexId>> seed_cols(k);
    for (size_t i = 0; i < seed.size(); ++i) {
      const VertexId v = seed.list()[i];
      seed_cols[rg.OwnerOf(v)].push_back(v);
    }

    std::vector<std::optional<Result<MatchTable>>> parts(k);
    std::vector<gpusim::MemStats> deltas(k);
    std::vector<JoinStats> part_join(k);
    std::vector<internal::RoutedStoreView::Traffic> traffic(k);
    {
      ThreadPool pool(lanes.devices.size());
      for (size_t lane = 0; lane < lanes.devices.size(); ++lane) {
        pool.Submit([&, lane] {
          const size_t d = lanes.devices[lane];
          gpusim::Device& dev = rg.device(d);
          const obs::DeviceCycleClock clock(dev);
          // The replica lane: this device's partitions join back-to-back
          // while the other lanes run concurrently.
          obs::ScopedSpan lane_span(join_span.context(), "lane", clock,
                                    static_cast<int32_t>(d));
          lane_span.AddAttr("partitions",
                            static_cast<uint64_t>(lanes.parts[lane].size()));
          std::vector<const PcsrStore*> serving;
          std::vector<uint8_t> local;
          RouteForDevice(rg, sel, d, serving, local);
          for (PartitionId p : lanes.parts[lane]) {
            obs::ScopedSpan part_span(lane_span.context(), "partition_join",
                                      clock);
            part_span.AddAttr("partition", static_cast<uint64_t>(p));
            part_span.AddAttr("seed_rows",
                              static_cast<uint64_t>(seed_cols[p].size()));
            const gpusim::MemStats before = dev.stats();
            if (seed_cols[p].empty()) {
              parts[p] = MatchTable::Alloc(dev, 0, plan.order.size());
            } else {
              MatchTable m = internal::SeedOwned(dev, seed_cols[p]);
              internal::RoutedStoreView view(rg.owners(), serving, local, p,
                                             rg.halo_cache(d));
              JoinEngine join(&dev, &view, options.join);
              join.set_trace(part_span.context());
              const uint64_t probes_start = clock.NowNanos();
              parts[p] = join.RunSteps(plan, filtered.candidates,
                                       std::move(m), 0, plan.steps.size());
              part_join[p] = join.stats();
              traffic[p] = view.traffic();
              // One batch span covering the remote probes this partition's
              // join steps sent across the interconnect.
              const obs::TraceContext part_ctx = part_span.context();
              if (part_ctx.tracer != nullptr && traffic[p].remote_probes > 0) {
                const int32_t idx = part_ctx.tracer->RecordSpan(
                    "remote_probes", static_cast<int32_t>(d), probes_start,
                    clock.NowNanos(), part_ctx.parent);
                part_ctx.tracer->AddAttr(
                    idx, "probes", std::to_string(traffic[p].remote_probes));
                part_ctx.tracer->AddAttr(
                    idx, "lines", std::to_string(traffic[p].remote_lines));
                part_ctx.tracer->AddAttr(
                    idx, "co_located",
                    std::to_string(traffic[p].co_located_probes));
              }
              // Halo-cache hits as their own span: remote lookups this
              // lane answered locally (cycle-clock timed, so traced runs
              // at a fixed budget stay byte-identical).
              if (part_ctx.tracer != nullptr && traffic[p].halo_hits > 0) {
                const int32_t idx = part_ctx.tracer->RecordSpan(
                    "halo_probe", static_cast<int32_t>(d), probes_start,
                    clock.NowNanos(), part_ctx.parent);
                part_ctx.tracer->AddAttr(
                    idx, "hits", std::to_string(traffic[p].halo_hits));
                part_ctx.tracer->AddAttr(
                    idx, "bytes", std::to_string(traffic[p].halo_hit_bytes));
              }
            }
            deltas[p] = dev.stats() - before;
          }
        });
      }
      pool.Wait();
    }
    for (PartitionId p = 0; p < k; ++p) {
      if (!parts[p]->ok()) return parts[p]->status();
    }

    // --- Roll-up: counters sum total work; the time is the makespan of
    // the concurrently-running lanes (each lane's partitions serialize on
    // its device, and each partition's work is a deterministic function of
    // its seed subsequence, not of the device that ran it) plus the merge.
    gpusim::MemStats join_counters;
    JoinStats detail;
    std::vector<double> lane_ms(lanes.devices.size(), 0);
    double sum_ms = 0;
    double max_part_ms = 0;
    size_t active = 0;
    for (PartitionId p = 0; p < k; ++p) {
      join_counters += deltas[p];
      if (seed_cols[p].empty()) continue;
      const double ms =
          deltas[p].SimulatedMs(rg.device(lanes.devices[lanes.lane_of[p]])
                                    .config());
      lane_ms[lanes.lane_of[p]] += ms;
      ++active;
      sum_ms += ms;
      max_part_ms = std::max(max_part_ms, ms);
      detail.iterations = std::max(detail.iterations, part_join[p].iterations);
      detail.peak_rows += part_join[p].peak_rows;  // concurrently resident
      detail.total_chunks += part_join[p].total_chunks;
      detail.dup_cache_hits += part_join[p].dup_cache_hits;
      detail.dup_cache_misses += part_join[p].dup_cache_misses;
      out.stats.remote_probes += traffic[p].remote_probes;
      out.stats.halo_bytes += traffic[p].remote_lines * kTransactionBytes;
      out.stats.co_located_probes += traffic[p].co_located_probes;
      out.stats.halo_cache_hits += traffic[p].halo_hits;
      out.stats.halo_cache_bytes += traffic[p].halo_hit_bytes;
    }
    double max_lane_ms = 0;
    for (double ms : lane_ms) max_lane_ms = std::max(max_lane_ms, ms);

    // --- Merge planning on the primary, in global seed order (see
    // MergeBySeedRuns for why this reconstructs the replicated table row
    // for row). The partial tables stay on their lane devices; only the
    // ordered run list is computed here, but the movement of rows from
    // partitions not resident on the primary is still charged now, so
    // one-shot and paged consumers observe identical counters.
    const gpusim::MemStats before_merge = primary.stats();
    obs::ScopedSpan merge_span(join_span.context(), "result_merge",
                               primary_clock);
    const size_t cols_out = plan.order.size();
    std::vector<const MatchTable*> tabs(k);
    for (PartitionId p = 0; p < k; ++p) tabs[p] = &parts[p]->value();
    std::vector<size_t> rows_from;
    const std::vector<ManifestSegment> runs =
        internal::PlanSeedRunMerge(tabs, rows_from);
    uint64_t remote_rows = 0;
    for (PartitionId p = 0; p < k; ++p) {
      if (lanes.devices[lanes.lane_of[p]] != lanes.devices[0]) {
        remote_rows += rows_from[p];
      }
    }
    const uint64_t merge_bytes = remote_rows * cols_out * sizeof(VertexId);
    primary.ChargeRemoteTransfer(merge_bytes);
    out.stats.halo_bytes += merge_bytes;
    size_t total_rows = 0;
    for (const MatchTable* t : tabs) total_rows += t->rows();
    merge_span.AddAttr("rows", static_cast<uint64_t>(total_rows));
    merge_span.AddAttr("halo_bytes", merge_bytes);
    if (Status h = CheckDeviceHealthy(primary, "result_merge"); !h.ok()) {
      return h;
    }
    const gpusim::MemStats merge_mem = primary.stats() - before_merge;
    join_counters += merge_mem;

    detail.final_rows = total_rows;
    detail.peak_rows = std::max(detail.peak_rows, total_rows);
    out.manifest.set_cols(cols_out);
    std::vector<size_t> part_index(k, SIZE_MAX);
    for (PartitionId p = 0; p < k; ++p) {
      if (parts[p]->value().rows() == 0) continue;  // nothing to reference
      part_index[p] = out.manifest.AddPart(
          std::move(parts[p]->value()),
          rg.device(lanes.devices[lanes.lane_of[p]]));
    }
    for (const ManifestSegment& r : runs) {
      out.manifest.AddSegment(part_index[r.part], r.begin, r.count);
    }
    out.column_to_query = plan.order;
    out.stats.join = join_counters;
    out.stats.join_detail = detail;
    out.stats.partitions_used = std::max<size_t>(1, active);
    out.stats.partition_skew =
        active > 0 && sum_ms > 0
            ? max_part_ms / (sum_ms / static_cast<double>(active))
            : 0;
    out.stats.join_ms = max_lane_ms + merge_mem.SimulatedMs(primary.config());
  }

  // Covers the degenerate paths (single-vertex / empty-candidate), which
  // materialize on the primary without entering the join engine.
  if (Status h = CheckDeviceHealthy(primary, "join"); !h.ok()) return h;
  out.stats.filter_ms = out.stats.filter.SimulatedMs(primary.config());
  if (out.stats.join_ms == 0) {
    out.stats.join_ms = out.stats.join.SimulatedMs(primary.config());
  }
  out.stats.total_ms = out.stats.filter_ms + out.stats.join_ms;
  out.stats.num_matches = out.manifest.rows();
  return out;
}

Result<QueryResult> RunJoinStageReplicated(const ReplicatedGraph& rg,
                                           const ReplicaSelection& sel,
                                           const Graph& query,
                                           FilterResult filtered,
                                           QueryStats stats,
                                           const obs::TraceContext& trace) {
  Result<PagedQueryResult> paged = RunJoinStageReplicatedPaged(
      rg, sel, query, std::move(filtered), std::move(stats), trace);
  if (!paged.ok()) return paged.status();
  // Materializing is host-mediated row movement (uncharged); the merge's
  // interconnect cost was already charged at plan time, so this wrapper is
  // counter- and table-bit-identical to the historical eager merge.
  const Lanes lanes = LanesOf(rg, sel);
  return ToQueryResult(std::move(paged.value()),
                       rg.device(lanes.devices[0]));
}

Result<PagedQueryResult> ExecuteQueryReplicatedPaged(
    const ReplicatedGraph& rg, const ReplicaSelection& sel, const Graph& query,
    const obs::TraceContext& trace) {
  WallTimer wall;
  Status valid = ValidateSelection(rg, sel);
  if (!valid.ok()) return valid;
  const Lanes lanes = LanesOf(rg, sel);
  const obs::DeviceCycleClock primary_clock(rg.device(lanes.devices[0]));
  obs::ScopedSpan span(trace, "execute_replicated", primary_clock,
                       static_cast<int32_t>(lanes.devices[0]));
  span.AddAttr("partitions", static_cast<uint64_t>(rg.num_partitions()));
  span.AddAttr("lanes", static_cast<uint64_t>(lanes.devices.size()));
  QueryStats stats;
  double filter_parallel_ms = 0;
  Result<FilterResult> filtered = RunFilterStageReplicated(
      rg, sel, query, stats, &filter_parallel_ms, span.context());
  if (!filtered.ok()) return filtered.status();
  Result<PagedQueryResult> out = RunJoinStageReplicatedPaged(
      rg, sel, query, std::move(filtered.value()), stats, span.context());
  if (out.ok()) {
    // The join stage derives filter_ms from the summed counters; restore
    // the fanned-out filter's makespan so total_ms reflects wall-parallel
    // lanes, not serialized work.
    out->stats.filter_ms = filter_parallel_ms;
    out->stats.total_ms = out->stats.filter_ms + out->stats.join_ms;
    out->stats.wall_ms = wall.ElapsedMs();
  }
  return out;
}

Result<QueryResult> ExecuteQueryReplicated(const ReplicatedGraph& rg,
                                           const ReplicaSelection& sel,
                                           const Graph& query,
                                           const obs::TraceContext& trace) {
  Result<PagedQueryResult> paged =
      ExecuteQueryReplicatedPaged(rg, sel, query, trace);
  if (!paged.ok()) return paged.status();
  const Lanes lanes = LanesOf(rg, sel);
  return ToQueryResult(std::move(paged.value()),
                       rg.device(lanes.devices[0]));
}

}  // namespace gsi
