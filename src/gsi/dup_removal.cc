#include "gsi/dup_removal.h"

namespace gsi {

const std::vector<VertexId>& BlockExtractionCache::Lookup(
    gpusim::Warp& w, const Key& key, const NeighborStore& store) {
  const auto [v, l, a, b, is_slice] = key;
  if (enabled_) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      // Shared input buffer hit: the loading warp already paid the global
      // transactions; this warp only reads shared memory (Algorithm 5,
      // Line 10) after the block-wide synchronization (Line 9).
      ++hits_;
      w.SharedAccess(it->second.size() + 2);
      return it->second;
    }
  }
  ++misses_;
  scratch_.clear();
  if (is_slice) {
    store.ExtractSlice(w, v, l, static_cast<size_t>(a),
                       static_cast<size_t>(b), scratch_);
  } else {
    store.ExtractValueRange(w, v, l, static_cast<VertexId>(a),
                            static_cast<VertexId>(b), scratch_);
  }
  if (!enabled_) return scratch_;
  uint64_t bytes = scratch_.size() * sizeof(VertexId);
  if (used_ + bytes > capacity_) return scratch_;  // over budget: no share
  used_ += bytes;
  auto [it, inserted] = cache_.emplace(key, scratch_);
  return it->second;
}

const std::vector<VertexId>& BlockExtractionCache::GetSlice(
    gpusim::Warp& w, const NeighborStore& store, VertexId v, Label l,
    uint32_t begin, uint32_t end) {
  return Lookup(w, Key{v, l, begin, end, true}, store);
}

const std::vector<VertexId>& BlockExtractionCache::GetValueRange(
    gpusim::Warp& w, const NeighborStore& store, VertexId v, Label l,
    VertexId lo, VertexId hi) {
  return Lookup(w, Key{v, l, lo, hi, false}, store);
}

void BlockExtractionCache::Reset() {
  cache_.clear();
  used_ = 0;
}

}  // namespace gsi
