#include "gsi/set_ops.h"

#include <algorithm>

#include "util/check.h"

namespace gsi {

void WriteToGba(gpusim::Warp& w, std::span<const VertexId> values,
                bool write_cache, gpusim::DeviceBuffer<VertexId>& gba,
                uint64_t begin) {
  GSI_CHECK(begin + values.size() <= gba.size());
  if (values.empty()) return;
  if (write_cache) {
    // Valid elements accumulate in a 128B shared-memory cache; a full cache
    // flushes with exactly one store transaction (Section V).
    w.SharedAccess(values.size());
    for (size_t i = 0; i < values.size(); i += 32) {
      size_t chunk = std::min<size_t>(32, values.size() - i);
      w.StoreRange(gba, begin + i,
                   std::span<const VertexId>(values.data() + i, chunk));
    }
  } else {
    // One scattered store per valid element.
    for (size_t i = 0; i < values.size(); ++i) {
      w.Store(gba, begin + i, values[i]);
    }
  }
}

size_t FilterFirstEdge(gpusim::Warp& w, std::span<const VertexId> input,
                       std::span<const VertexId> row,
                       const CandidateSet& cand, const SetOpFlags& flags,
                       gpusim::DeviceBuffer<VertexId>* gba,
                       uint64_t gba_begin, std::vector<VertexId>& result) {
  // The partial match (small list) stays cached in shared memory for the
  // subtraction; the neighbor slice (medium list) is consumed batch-wise.
  if (!flags.naive) w.SharedAccess(row.size() + input.size());
  w.Alu(input.size() * (row.size() + 1));
  for (VertexId x : input) {
    bool in_row = std::find(row.begin(), row.end(), x) != row.end();
    if (in_row) continue;
    // Candidate membership check "on the fly" after the subtraction.
    bool member = flags.naive ? cand.ContainsBinarySearch(w, x)
                              : cand.ContainsBitset(w, x);
    if (member) result.push_back(x);
  }
  if (gba != nullptr) {
    WriteToGba(w, result, flags.write_cache && !flags.naive, *gba,
               gba_begin);
  }
  return result.size();
}

size_t IntersectSorted(gpusim::Warp& w, std::vector<VertexId>& current,
                       std::span<const VertexId> other,
                       const SetOpFlags& flags,
                       gpusim::DeviceBuffer<VertexId>* gba,
                       uint64_t gba_begin) {
  GSI_CHECK(std::is_sorted(current.begin(), current.end()));
  // Linear merge of two sorted lists.
  w.Alu(current.size() + other.size());
  if (!flags.naive) w.SharedAccess(other.size());
  size_t out = 0;
  size_t j = 0;
  for (size_t i = 0; i < current.size(); ++i) {
    while (j < other.size() && other[j] < current[i]) ++j;
    if (j < other.size() && other[j] == current[i]) {
      current[out++] = current[i];
    }
  }
  current.resize(out);
  if (gba != nullptr) {
    WriteToGba(w, current, flags.write_cache && !flags.naive, *gba,
               gba_begin);
  }
  return out;
}

}  // namespace gsi
