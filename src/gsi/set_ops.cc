#include "gsi/set_ops.h"

#include <algorithm>

#include "util/check.h"

namespace gsi {

void WriteToGba(gpusim::Warp& w, std::span<const VertexId> values,
                bool write_cache, gpusim::DeviceBuffer<VertexId>& gba,
                uint64_t begin) {
  GSI_CHECK(begin + values.size() <= gba.size());
  if (values.empty()) return;
  if (write_cache) {
    // Valid elements accumulate in a 128B shared-memory cache; a full cache
    // flushes with exactly one store transaction (Section V).
    w.SharedAccess(values.size());
    for (size_t i = 0; i < values.size(); i += 32) {
      size_t chunk = std::min<size_t>(32, values.size() - i);
      w.StoreRange(gba, begin + i,
                   std::span<const VertexId>(values.data() + i, chunk));
    }
  } else {
    // One scattered store per valid element.
    for (size_t i = 0; i < values.size(); ++i) {
      w.Store(gba, begin + i, values[i]);
    }
  }
}

size_t FilterFirstEdge(gpusim::Warp& w, std::span<const VertexId> input,
                       std::span<const VertexId> row,
                       const CandidateSet& cand, const SetOpFlags& flags,
                       gpusim::DeviceBuffer<VertexId>* gba,
                       uint64_t gba_begin, std::vector<VertexId>& result) {
  // The partial match (small list) stays cached in shared memory for the
  // subtraction; the neighbor slice (medium list) is consumed batch-wise.
  if (!flags.naive) w.SharedAccess(row.size() + input.size());
  w.Alu(input.size() * (row.size() + 1));
  for (VertexId x : input) {
    bool in_row = std::find(row.begin(), row.end(), x) != row.end();
    if (in_row) continue;
    // Candidate membership check "on the fly" after the subtraction.
    bool member = flags.naive ? cand.ContainsBinarySearch(w, x)
                              : cand.ContainsBitset(w, x);
    if (member) result.push_back(x);
  }
  if (gba != nullptr) {
    WriteToGba(w, result, flags.write_cache && !flags.naive, *gba,
               gba_begin);
  }
  return result.size();
}

namespace {

/// First index >= `lo` in the sorted `list` with list[idx] >= x, found by
/// exponential (galloping) search from `lo`. `probes` counts the
/// comparisons made, so callers can charge exactly the work done instead of
/// a full linear scan.
size_t GallopLowerBound(std::span<const VertexId> list, size_t lo, VertexId x,
                        uint64_t& probes) {
  const size_t n = list.size();
  if (lo >= n) return n;
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && list[hi] < x) {
    ++probes;
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, n);
  while (lo < hi) {
    ++probes;
    size_t mid = lo + (hi - lo) / 2;
    if (list[mid] < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

size_t IntersectSorted(gpusim::Warp& w, std::vector<VertexId>& current,
                       std::span<const VertexId> other,
                       const SetOpFlags& flags,
                       gpusim::DeviceBuffer<VertexId>* gba,
                       uint64_t gba_begin) {
  GSI_CHECK(std::is_sorted(current.begin(), current.end()));
  const bool gallop_other = !flags.naive && !current.empty() &&
                            other.size() > kGallopRatio * current.size();
  const bool gallop_current = !flags.naive && !other.empty() &&
                              current.size() > kGallopRatio * other.size();
  size_t out = 0;
  if (gallop_other) {
    // `other` dwarfs `current`: gallop through the long list instead of
    // streaming it, touching O(|current| log) elements.
    uint64_t probes = 0;
    size_t j = 0;
    for (size_t i = 0; i < current.size(); ++i) {
      j = GallopLowerBound(other, j, current[i], probes);
      if (j >= other.size()) break;
      if (other[j] == current[i]) current[out++] = current[i];
    }
    w.Alu(probes + current.size());
    w.SharedAccess(probes);
  } else if (gallop_current) {
    // `current` dwarfs `other`: gallop through `current`. Writes land at
    // out <= j, behind the galloping frontier, so the in-place rewrite
    // never clobbers unread elements. The shared-memory list (`other`) is
    // still read in full; the probes into `current` are ALU work.
    uint64_t probes = 0;
    size_t j = 0;
    for (VertexId x : other) {
      j = GallopLowerBound({current.data(), current.size()}, j, x, probes);
      if (j >= current.size()) break;
      if (current[j] == x) {
        current[out++] = x;
        ++j;
      }
    }
    w.Alu(probes + other.size());
    w.SharedAccess(other.size());
  } else {
    // Comparable sizes (or the naive baseline): linear merge.
    w.Alu(current.size() + other.size());
    if (!flags.naive) w.SharedAccess(other.size());
    size_t j = 0;
    for (size_t i = 0; i < current.size(); ++i) {
      while (j < other.size() && other[j] < current[i]) ++j;
      if (j < other.size() && other[j] == current[i]) {
        current[out++] = current[i];
      }
    }
  }
  current.resize(out);
  if (gba != nullptr) {
    WriteToGba(w, current, flags.write_cache && !flags.naive, *gba,
               gba_begin);
  }
  return out;
}

}  // namespace gsi
