#ifndef GSI_GSI_RESULT_MANIFEST_H_
#define GSI_GSI_RESULT_MANIFEST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "gsi/match_table.h"
#include "gsi/matcher.h"
#include "util/common.h"

namespace gsi {

/// One contiguous run of rows inside a manifest part: `count` rows of
/// partial table `part` starting at row `begin`.
struct ManifestSegment {
  size_t part = 0;
  size_t begin = 0;
  size_t count = 0;
};

/// An ordered description of a final match table that has NOT been
/// concatenated yet: the partial tables stay where the join produced them
/// (on their owning devices), and the segment list says which runs of which
/// part, in which order, reproduce the merged table row for row.
///
/// The segment orders are exactly the deterministic merge orders the eager
/// paths used: slice order for the sharded engine (every distributed step
/// emits output rows in input-row order), ascending column-0 seed runs for
/// the partitioned/replicated engines (see internal::MergeBySeedRuns). So
/// `Materialize` — and any page-at-a-time walk of `segments()` — is
/// bit-identical to the table the one-shot API returned.
///
/// Each part remembers the pool ordinal and fault epoch of the device that
/// produced it. A consumer that charges reads against that device (the
/// serving layer's FetchPage) compares the recorded epoch against the
/// device's current one and discards the part on mismatch — the fail-stop
/// rule that nothing produced before a trip survives quarantine + repair.
class ResultManifest {
 public:
  struct Part {
    MatchTable table;
    /// Pool ordinal of the owning device (-1 = not pool-resident: the part
    /// was produced on a private device and is host-consumable for free).
    int device_ordinal = -1;
    /// Owner's trip count when the table was produced.
    uint64_t fault_epoch = 0;
  };

  ResultManifest() = default;

  /// The degenerate manifest: one part, one segment spanning every row.
  static ResultManifest FromWholeTable(MatchTable table, int device_ordinal,
                                       uint64_t fault_epoch);
  static ResultManifest FromWholeTable(MatchTable table,
                                       const gpusim::Device& owner) {
    return FromWholeTable(std::move(table), owner.ordinal(),
                          owner.fault_epoch());
  }

  /// Adds a partial table (returns its part index). Non-empty parts must
  /// agree on width; the manifest's column count is taken from the first
  /// non-empty part (or set explicitly via set_cols for all-empty results).
  size_t AddPart(MatchTable table, int device_ordinal, uint64_t fault_epoch);
  size_t AddPart(MatchTable table, const gpusim::Device& owner) {
    return AddPart(std::move(table), owner.ordinal(), owner.fault_epoch());
  }

  /// Appends `count` rows of part `part` starting at `begin` to the logical
  /// row order (no-op when count == 0).
  void AddSegment(size_t part, size_t begin, size_t count);

  /// Width of an empty result (a join that died with zero matches still has
  /// a full-width table); ignored once a non-empty part fixed the width.
  void set_cols(size_t cols);

  size_t rows() const { return total_rows_; }
  size_t cols() const { return cols_; }
  size_t num_parts() const { return parts_.size(); }
  const Part& part(size_t i) const { return parts_[i]; }
  std::span<const ManifestSegment> segments() const { return segments_; }

  /// Bytes of partial match tables this manifest keeps resident on their
  /// owning devices (what an open cursor pins; exported as the
  /// gsi_result_resident_bytes gauge).
  uint64_t resident_bytes() const;

  /// The chunks of logical rows [row_begin, row_begin + count) in manifest
  /// order — the per-page walk. Each returned segment lies entirely inside
  /// one part.
  std::vector<ManifestSegment> Slice(size_t row_begin, size_t count) const;

  /// Host-side copy of one chunk (as returned by Slice) into `dst`
  /// (row-major, cols() values per row). Uncharged, like every
  /// host-mediated read in gpusim; the caller charges the owning device
  /// when the cost model should see the movement.
  void CopyChunk(const ManifestSegment& chunk, VertexId* dst) const;

  /// Concatenates every segment into one table allocated on `dev`
  /// (host-mediated bulk row copies, uncharged — exactly what the eager
  /// ConcatRows/MergeBySeedRuns movement cost). A manifest whose single
  /// segment spans its single whole part moves the table out without
  /// copying. Consumes the manifest.
  MatchTable Materialize(gpusim::Device& dev) &&;

 private:
  std::vector<Part> parts_;
  std::vector<ManifestSegment> segments_;
  size_t cols_ = 0;
  size_t total_rows_ = 0;
};

/// Result of one query in manifest form: what the paged execution paths
/// return instead of QueryResult. `stats` is finalized exactly as the
/// one-shot path finalizes it (the merge's interconnect cost is charged at
/// join time either way), so legacy and paged consumers observe identical
/// counters.
struct PagedQueryResult {
  ResultManifest manifest;
  std::vector<VertexId> column_to_query;
  QueryStats stats;

  size_t num_matches() const { return manifest.rows(); }
};

/// Wraps an already-materialized result as a one-part manifest (the
/// single-device execution paths; no copies).
PagedQueryResult ToPagedResult(QueryResult result, int device_ordinal,
                               uint64_t fault_epoch);
inline PagedQueryResult ToPagedResult(QueryResult result,
                                      const gpusim::Device& owner) {
  return ToPagedResult(std::move(result), owner.ordinal(),
                       owner.fault_epoch());
}

/// Materializes a paged result into the legacy one-shot form on `dev`
/// (uncharged, like the eager merge's row movement).
QueryResult ToQueryResult(PagedQueryResult result, gpusim::Device& dev);

}  // namespace gsi

#endif  // GSI_GSI_RESULT_MANIFEST_H_
