#include "gsi/halo_cache.h"

#include <algorithm>
#include <utility>

namespace gsi {

void HaloCache::MaybeInvalidateLocked() {
  const uint64_t current = dev_->fault_epoch();
  if (current == epoch_) return;
  // The device tripped since the cache last looked: everything cached was
  // fetched in a previous fault epoch and must not survive repair.
  if (!lru_.empty()) ++stats_.invalidations;
  lru_.clear();
  index_.clear();
  stats_.resident_bytes = 0;
  epoch_ = current;
}

HaloCache::Entry* HaloCache::TouchLocked(const Key& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->second;
}

HaloCache::Entry* HaloCache::TouchOrCreateLocked(const Key& key) {
  if (Entry* e = TouchLocked(key)) return e;
  lru_.emplace_front(key, Entry{});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  stats_.resident_bytes += kEntryOverheadBytes;
  return &lru_.front().second;
}

void HaloCache::ChargeAndEvictLocked(uint64_t before, uint64_t after) {
  stats_.resident_bytes -= before;
  stats_.resident_bytes += after;
  while (stats_.resident_bytes > budget_bytes_ && !lru_.empty()) {
    stats_.resident_bytes -= EntryBytes(lru_.back().second);
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void HaloCache::CountHitLocked(gpusim::Warp& w, uint64_t bytes) {
  ++stats_.hits;
  stats_.hit_bytes += bytes;
  // One local line for the directory lookup, plus the local read of the
  // served list bytes — ordinary gld, never the interconnect premium.
  w.ChargeLoadTransactions(1 + gpusim::Device::RangeTransactions(0, bytes));
}

std::optional<size_t> HaloCache::ServeCount(gpusim::Warp& w, PartitionId p,
                                            VertexId v, Label l) {
  MutexLock lock(mu_);
  MaybeInvalidateLocked();
  Entry* e = TouchLocked(Key{p, v, l});
  if (e != nullptr && e->known_count != kUnknownCount) {
    CountHitLocked(w, 0);
    return e->known_count;
  }
  ++stats_.misses;
  return std::nullopt;
}

std::optional<size_t> HaloCache::ServeExtract(gpusim::Warp& w, PartitionId p,
                                              VertexId v, Label l,
                                              std::vector<VertexId>& out) {
  MutexLock lock(mu_);
  MaybeInvalidateLocked();
  Entry* e = TouchLocked(Key{p, v, l});
  if (e != nullptr && e->complete) {
    out.insert(out.end(), e->values.begin(), e->values.end());
    CountHitLocked(w, e->values.size() * sizeof(VertexId));
    return e->values.size();
  }
  ++stats_.misses;
  return std::nullopt;
}

std::optional<size_t> HaloCache::ServeSlice(gpusim::Warp& w, PartitionId p,
                                            VertexId v, Label l, size_t begin,
                                            size_t end,
                                            std::vector<VertexId>& out) {
  MutexLock lock(mu_);
  MaybeInvalidateLocked();
  Entry* e = TouchLocked(Key{p, v, l});
  // Serving a slice needs the exact count — the store clamps `end` to it —
  // and a prefix long enough to cover the clamped range.
  if (e != nullptr && e->known_count != kUnknownCount) {
    const size_t clamped = std::min(end, e->known_count);
    if (begin >= clamped) {
      CountHitLocked(w, 0);
      return 0;
    }
    if (e->values.size() >= clamped) {
      out.insert(out.end(), e->values.begin() + begin,
                 e->values.begin() + clamped);
      CountHitLocked(w, (clamped - begin) * sizeof(VertexId));
      return clamped - begin;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

std::optional<size_t> HaloCache::ServeValueRange(gpusim::Warp& w,
                                                 PartitionId p, VertexId v,
                                                 Label l, VertexId lo,
                                                 VertexId hi,
                                                 std::vector<VertexId>& out) {
  MutexLock lock(mu_);
  MaybeInvalidateLocked();
  Entry* e = TouchLocked(Key{p, v, l});
  if (e != nullptr && e->complete) {
    auto first = std::lower_bound(e->values.begin(), e->values.end(), lo);
    auto last = std::upper_bound(first, e->values.end(), hi);
    out.insert(out.end(), first, last);
    const size_t n = static_cast<size_t>(last - first);
    CountHitLocked(w, n * sizeof(VertexId));
    return n;
  }
  ++stats_.misses;
  return std::nullopt;
}

void HaloCache::RecordCount(PartitionId p, VertexId v, Label l,
                            size_t count) {
  MutexLock lock(mu_);
  MaybeInvalidateLocked();
  Entry* e = TouchOrCreateLocked(Key{p, v, l});
  const uint64_t before = EntryBytes(*e);
  if (e->known_count == kUnknownCount) e->known_count = count;
  if (e->values.size() == e->known_count) e->complete = true;
  ChargeAndEvictLocked(before, EntryBytes(*e));
}

void HaloCache::RecordList(PartitionId p, VertexId v, Label l,
                           std::span<const VertexId> values) {
  MutexLock lock(mu_);
  MaybeInvalidateLocked();
  Entry* e = TouchOrCreateLocked(Key{p, v, l});
  if (e->complete) return;
  const uint64_t before = EntryBytes(*e);
  e->values.assign(values.begin(), values.end());
  e->known_count = values.size();
  e->complete = true;
  ChargeAndEvictLocked(before, EntryBytes(*e));
}

void HaloCache::RecordSlice(PartitionId p, VertexId v, Label l, size_t begin,
                            size_t requested,
                            std::span<const VertexId> values) {
  MutexLock lock(mu_);
  MaybeInvalidateLocked();
  Entry* e = TouchOrCreateLocked(Key{p, v, l});
  if (e->complete) return;
  const uint64_t before = EntryBytes(*e);
  // Extend the in-order prefix when this slice continues it exactly.
  if (begin == e->values.size() && !values.empty()) {
    e->values.insert(e->values.end(), values.begin(), values.end());
  }
  // A short return proves where the list ends — but only when the slice
  // returned data (or started at 0): an empty return for begin > 0 merely
  // says the list is no longer than `begin`.
  if (values.size() < requested && (begin == 0 || !values.empty()) &&
      e->known_count == kUnknownCount) {
    e->known_count = begin + values.size();
  }
  if (e->known_count != kUnknownCount &&
      e->values.size() == e->known_count) {
    e->complete = true;
  }
  ChargeAndEvictLocked(before, EntryBytes(*e));
}

void HaloCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.resident_bytes = 0;
}

HaloCache::Stats HaloCache::stats() const {
  MutexLock lock(mu_);
  Stats s = stats_;
  s.entries = index_.size();
  return s;
}

uint64_t HaloCache::resident_bytes() const {
  MutexLock lock(mu_);
  return stats_.resident_bytes;
}

}  // namespace gsi
