#ifndef GSI_GSI_HALO_CACHE_H_
#define GSI_GSI_HALO_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <span>
#include <tuple>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "util/annotations.h"
#include "util/common.h"
#include "util/sync.h"

namespace gsi {

/// Partition identifier (the canonical definition lives in gsi/partition.h;
/// re-declared here so the cache does not depend on the partition layer it
/// serves).
using PartitionId = uint32_t;

/// Per-device LRU over remote N(v, l) lists — the halo cache of the
/// partitioned execution path (ROADMAP tentpole). Keyed by (owner partition,
/// vertex, label); bytes are charged against a fixed budget so the memory
/// cost shows up in the same resident-bytes accounting the partition benches
/// report.
///
/// The contract that keeps match tables bit-identical: the cache NEVER
/// changes what a probe returns, only *where* the bytes come from. Serve*
/// answers a probe purely from cached data (charging ordinary local gld
/// lines to the warp — no interconnect premium, so every hit strictly
/// removes remote transactions) or declines; Record* admits only the free
/// byproducts of a remote probe that already ran and was already charged —
/// admission never issues extra remote reads. Entries hold an in-order
/// prefix of the ascending N(v, l) list plus the exact count once known:
///
///   - a remote NeighborCountUpperBound records the exact count;
///   - a remote Extract records the complete list;
///   - a remote ExtractSlice extends the prefix when it continues it, and
///     completes the entry when the store returned fewer positions than
///     requested (the list ended) or the prefix reaches the known count;
///   - ExtractValueRange results are positionless and are not admitted.
///
/// Counts, whole lists, slices within the prefix, and (for complete
/// entries) value ranges are then served locally. Eviction is strict LRU
/// until resident_bytes() <= budget.
///
/// Thread safety: all cache state sits under one mutex, so stats snapshots
/// (the metrics collector's pull path) stay coherent while the owning
/// device's lane thread serves queries. Serve/Record additionally read the
/// device's fault epoch — they must only be called by the thread currently
/// driving the device (the single-writer discipline all device access
/// follows); a fault bump discards every entry, so nothing cached before a
/// trip survives quarantine + repair.
///
/// Determinism: a query run against a given cache *state* produces the same
/// match table and the same counters every time (the cache is only touched
/// by the device's own lane thread during execution, so thread interleaving
/// never reaches the simulated numbers). Across queries the hit pattern —
/// and hence cycle/transaction counters, never table contents — depends on
/// what earlier queries left cached, the same history dependence the
/// service-level FilterCache already has.
class HaloCache {
 public:
  /// Aggregate counters + current footprint. Monotone except resident_bytes
  /// and entries.
  struct Stats {
    uint64_t hits = 0;           ///< probes answered from the cache
    uint64_t hit_bytes = 0;      ///< list bytes those hits served
    uint64_t misses = 0;         ///< probes that went to the interconnect
    uint64_t insertions = 0;     ///< entries created
    uint64_t evictions = 0;      ///< entries dropped for budget
    uint64_t invalidations = 0;  ///< whole-cache drops (device fault epoch)
    uint64_t resident_bytes = 0;
    uint64_t entries = 0;
  };

  /// The cache belongs to `dev` (its fault epoch gates every operation) and
  /// may hold at most `budget_bytes` of entry footprint.
  HaloCache(gpusim::Device& dev, uint64_t budget_bytes)
      : dev_(&dev), budget_bytes_(budget_bytes),
        epoch_(dev.fault_epoch()) {}

  HaloCache(const HaloCache&) = delete;
  HaloCache& operator=(const HaloCache&) = delete;

  uint64_t budget_bytes() const { return budget_bytes_; }

  // --- Serve side: answer a probe from cached data or decline. On a hit
  // the warp is charged one directory-lookup line plus the local gld lines
  // of the bytes served; on a decline a miss is counted and nothing is
  // charged (the remote probe that follows charges itself).

  /// NeighborCountUpperBound from cache (known count or complete list).
  std::optional<size_t> ServeCount(gpusim::Warp& w, PartitionId p, VertexId v,
                                   Label l) GSI_EXCLUDES(mu_);
  /// Extract from cache (complete entries only); appends the list to `out`.
  std::optional<size_t> ServeExtract(gpusim::Warp& w, PartitionId p,
                                     VertexId v, Label l,
                                     std::vector<VertexId>& out)
      GSI_EXCLUDES(mu_);
  /// ExtractSlice from cache: needs the exact count (to clamp `end` the way
  /// the store does) and a prefix covering the clamped range.
  std::optional<size_t> ServeSlice(gpusim::Warp& w, PartitionId p, VertexId v,
                                   Label l, size_t begin, size_t end,
                                   std::vector<VertexId>& out)
      GSI_EXCLUDES(mu_);
  /// ExtractValueRange from cache (complete entries only): binary-searches
  /// the ascending list for [lo, hi].
  std::optional<size_t> ServeValueRange(gpusim::Warp& w, PartitionId p,
                                        VertexId v, Label l, VertexId lo,
                                        VertexId hi,
                                        std::vector<VertexId>& out)
      GSI_EXCLUDES(mu_);

  // --- Record side: admit the byproducts of a remote probe that already
  // ran. Free — never touches the warp or issues reads.

  /// The exact |N(v, l)| a remote count probe returned.
  void RecordCount(PartitionId p, VertexId v, Label l, size_t count)
      GSI_EXCLUDES(mu_);
  /// The complete ascending list a remote Extract returned.
  void RecordList(PartitionId p, VertexId v, Label l,
                  std::span<const VertexId> values) GSI_EXCLUDES(mu_);
  /// Positions [begin, begin + values.size()) a remote ExtractSlice
  /// returned, where the caller asked for `requested` positions. Extends
  /// the entry's prefix when contiguous; a short return proves the list
  /// ended at begin + values.size().
  void RecordSlice(PartitionId p, VertexId v, Label l, size_t begin,
                   size_t requested, std::span<const VertexId> values)
      GSI_EXCLUDES(mu_);

  /// Drops every entry (stats counters survive; resident bytes go to 0).
  void Clear() GSI_EXCLUDES(mu_);

  /// Coherent snapshot; safe to call from any thread at any time.
  Stats stats() const GSI_EXCLUDES(mu_);

  /// Current footprint (counted against the partition's resident bytes).
  uint64_t resident_bytes() const GSI_EXCLUDES(mu_);

 private:
  using Key = std::tuple<PartitionId, VertexId, Label>;

  static constexpr size_t kUnknownCount = static_cast<size_t>(-1);
  /// Fixed per-entry footprint (key, directory node, list node, counters)
  /// charged on top of the value bytes.
  static constexpr uint64_t kEntryOverheadBytes = 64;

  struct Entry {
    /// In-order prefix of the ascending N(v, l) list, starting at position
    /// 0; the whole list iff `complete`.
    std::vector<VertexId> values;
    /// Exact |N(v, l)| once a count probe or a short slice revealed it.
    size_t known_count = kUnknownCount;
    bool complete = false;
  };

  using LruList = std::list<std::pair<Key, Entry>>;

  static uint64_t EntryBytes(const Entry& e) {
    return kEntryOverheadBytes + e.values.size() * sizeof(VertexId);
  }

  /// Discards everything if the device tripped since the cache last looked.
  void MaybeInvalidateLocked() GSI_REQUIRES(mu_);
  /// Entry for key, moved to the LRU front; null when absent.
  Entry* TouchLocked(const Key& key) GSI_REQUIRES(mu_);
  /// Entry for key, created (and counted as an insertion) when absent.
  Entry* TouchOrCreateLocked(const Key& key) GSI_REQUIRES(mu_);
  /// Re-charges `delta` footprint bytes and evicts LRU-back to budget.
  void ChargeAndEvictLocked(uint64_t before, uint64_t after)
      GSI_REQUIRES(mu_);
  void CountHitLocked(gpusim::Warp& w, uint64_t bytes) GSI_REQUIRES(mu_);

  gpusim::Device* dev_;
  const uint64_t budget_bytes_;

  mutable Mutex mu_;
  uint64_t epoch_ GSI_GUARDED_BY(mu_);
  LruList lru_ GSI_GUARDED_BY(mu_);
  std::map<Key, LruList::iterator> index_ GSI_GUARDED_BY(mu_);
  Stats stats_ GSI_GUARDED_BY(mu_);
};

}  // namespace gsi

#endif  // GSI_GSI_HALO_CACHE_H_
