#ifndef GSI_GSI_LOAD_BALANCE_H_
#define GSI_GSI_LOAD_BALANCE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace gsi {

/// A unit of join work: one slice of one intermediate-table row's
/// first-edge neighbor list. Without load balancing every row is a single
/// chunk; the 4-layer scheme (Section VI-A) splits heavy rows into W3-sized
/// chunks and distributes them.
struct Chunk {
  uint32_t row = 0;
  uint32_t pos_begin = 0;  ///< slice of the first-edge upper-bound list
  uint32_t pos_end = 0;
  uint64_t gba_begin = 0;  ///< output offset in the combined GBA buffer
  uint32_t count = 0;      ///< survivors after set ops (filled by the pass)
};

/// Placement of chunks according to the 4-layer balance scheme:
///  1. rows with workload > W1 each get their own kernel (`huge`);
///  2. rows with workload in (W2, W1] are handled by one whole block each
///     (`per_block`);
///  3. rows in (W3, W2] are split into W3-chunks pooled across warps;
///  4. rows <= W3 run one-warp-per-row. (3 and 4 share `pooled`.)
struct ChunkPlan {
  std::vector<std::vector<Chunk>> huge;
  std::vector<std::vector<Chunk>> per_block;
  std::vector<Chunk> pooled;

  size_t total_chunks() const {
    size_t t = pooled.size();
    for (const auto& v : huge) t += v.size();
    for (const auto& v : per_block) t += v.size();
    return t;
  }

  /// Gathers pointers to all chunks in deterministic execution order
  /// (pooled, then per-block rows, then huge rows).
  std::vector<Chunk*> AllChunks();
};

/// Builds the chunk plan for one join iteration. `upper_bounds[i]` is the
/// workload estimate |N(v'_i, l0)| of row i; `gba_offsets[i]` its buffer
/// offset (exclusive prefix sum of the bounds). With `load_balance` false,
/// one chunk per row. W2 is the block size in threads (1024); chunking
/// granularity within blocks is W3 *elements* per warp.
ChunkPlan PlanChunks(std::span<const uint32_t> upper_bounds,
                     std::span<const uint64_t> gba_offsets, bool load_balance,
                     uint32_t w1, uint32_t w2, uint32_t w3);

/// One contiguous slice [begin, end) of a work list assigned to a device
/// shard, with its estimated total workload.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
  uint64_t weight = 0;
};

/// Splits indices [0, weights.size()) into at most `max_shards` contiguous,
/// non-empty ranges of near-equal total weight (greedy: each shard targets
/// the mean of the remaining weight). The device-level analogue of
/// PlanChunks: the sharded engine feeds it the same per-row first-edge
/// upper bounds so one hot shard does not serialize the merge the way an
/// equal-candidate-count split would. Zero weights count as 1 so empty-ish
/// rows still spread. Returns fewer than `max_shards` ranges when there are
/// fewer items than shards; empty input yields no ranges.
std::vector<ShardRange> PartitionByWorkload(std::span<const uint64_t> weights,
                                            size_t max_shards);

}  // namespace gsi

#endif  // GSI_GSI_LOAD_BALANCE_H_
