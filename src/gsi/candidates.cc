#include "gsi/candidates.h"

#include <algorithm>

#include "util/check.h"

namespace gsi {

CandidateSet CandidateSet::Create(gpusim::Device& dev,
                                  VertexId query_vertex,
                                  std::vector<VertexId> sorted_candidates,
                                  size_t num_data_vertices,
                                  bool build_bitmap) {
  GSI_CHECK(std::is_sorted(sorted_candidates.begin(),
                           sorted_candidates.end()));
  CandidateSet c;
  c.query_vertex_ = query_vertex;
  size_t count = sorted_candidates.size();
  c.list_ = dev.Upload(std::move(sorted_candidates));
  if (build_bitmap && num_data_vertices > 0) {
    std::vector<uint32_t> bits((num_data_vertices + 31) / 32, 0);
    for (size_t i = 0; i < c.list_.size(); ++i) {
      VertexId v = c.list_[i];
      bits[v / 32] |= 1u << (v % 32);
    }
    c.bitmap_ = dev.Upload(std::move(bits));
    // Charge the bitset-construction kernel: warps stream the candidate
    // list and scatter one bit per candidate (values were materialized
    // above; the kernel models the device cost).
    gpusim::Launch(dev, std::max<size_t>(1, (count + 1023) / 1024),
                   [&](gpusim::Warp& w) {
                     size_t begin = w.global_id() * 1024;
                     if (begin >= count) return;
                     size_t len = std::min<size_t>(1024, count - begin);
                     w.LoadRange(c.list_, begin, len);
                     w.Alu(len);
                     for (size_t i = 0; i < len; i += 32) {
                       size_t chunk = std::min<size_t>(32, len - i);
                       uint64_t idx[32];
                       uint32_t vals[32];
                       for (size_t k = 0; k < chunk; ++k) {
                         VertexId v = c.list_[begin + i + k];
                         idx[k] = v / 32;
                         vals[k] = c.bitmap_[v / 32];
                       }
                       w.Scatter(c.bitmap_,
                                 std::span<const uint64_t>(idx, chunk),
                                 std::span<const uint32_t>(vals, chunk));
                     }
                   });
  }
  return c;
}

bool CandidateSet::ContainsHost(VertexId v) const {
  return std::binary_search(list_.data(), list_.data() + list_.size(), v);
}

bool CandidateSet::ContainsBitset(gpusim::Warp& w, VertexId v) const {
  GSI_CHECK_MSG(bitmap_.size() > 0, "bitset not materialized");
  uint32_t word = w.Load(bitmap_, v / 32);
  w.Alu(1);
  return (word >> (v % 32)) & 1u;
}

bool CandidateSet::ContainsBinarySearch(gpusim::Warp& w, VertexId v) const {
  size_t lo = 0;
  size_t hi = list_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    VertexId probe = w.Load(list_, mid);
    w.Alu(1);
    if (probe == v) return true;
    if (probe < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

}  // namespace gsi
