#include "gsi/matcher.h"

#include <algorithm>

#include "storage/basic_rep.h"
#include "storage/compressed_rep.h"
#include "storage/csr.h"
#include "storage/pcsr.h"
#include "util/timer.h"

namespace gsi {

GsiOptions DefaultGsiOptions() { return GsiOptions{}; }

GsiOptions GsiOptOptions() {
  GsiOptions o;
  o.join.load_balance = true;
  o.join.duplicate_removal = true;
  return o;
}

GsiOptions GsiMinusOptions() {
  GsiOptions o;
  o.join.storage = StorageKind::kCsr;
  o.join.output_scheme = OutputScheme::kTwoStep;
  o.join.set_op = SetOpKind::kNaive;
  o.join.write_cache = false;
  return o;
}

std::vector<VertexId> QueryResult::MatchInQueryOrder(size_t r) const {
  std::vector<VertexId> out(table.cols());
  for (size_t c = 0; c < table.cols(); ++c) {
    out[column_to_query[c]] = table.At(r, c);
  }
  return out;
}

std::vector<std::vector<VertexId>> QueryResult::AllMatchesSorted() const {
  std::vector<std::vector<VertexId>> out;
  out.reserve(table.rows());
  for (size_t r = 0; r < table.rows(); ++r) {
    out.push_back(MatchInQueryOrder(r));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<NeighborStore> BuildStore(gpusim::Device& dev,
                                          const Graph& g, StorageKind kind,
                                          int gpn) {
  switch (kind) {
    case StorageKind::kCsr:
      return DeviceCsr::Build(dev, g);
    case StorageKind::kPcsr:
      return PcsrStore::Build(dev, g, gpn);
    case StorageKind::kBasicRep:
      return BasicRep::Build(dev, g);
    case StorageKind::kCompressedRep:
      return CompressedRep::Build(dev, g);
  }
  return nullptr;
}

GsiMatcher::GsiMatcher(const Graph& data, GsiOptions options)
    : data_(&data), options_(options) {
  dev_ = std::make_unique<gpusim::Device>(options.device);
  store_ = BuildStore(*dev_, data, options.join.storage, options.join.gpn);
  filter_ = std::make_unique<FilterContext>(*dev_, data, options.filter);
}

Result<QueryResult> GsiMatcher::Find(const Graph& query) {
  if (query.num_vertices() == 0) {
    return Status::InvalidArgument("empty query");
  }
  if (!query.IsConnected()) {
    return Status::InvalidArgument(
        "query must be connected (run components separately)");
  }
  WallTimer wall;
  QueryResult out;

  // --- Filtering phase.
  gpusim::MemStats before = dev_->stats();
  Result<FilterResult> filtered = filter_->Filter(query);
  if (!filtered.ok()) return filtered.status();
  out.stats.filter = dev_->stats() - before;
  out.stats.min_candidate_size = filtered->min_candidate_size;

  if (query.num_vertices() == 1) {
    // Degenerate query: the candidate set is the answer.
    const CandidateSet& c = filtered->candidates[0];
    out.table = MatchTable::Alloc(*dev_, c.size(), 1);
    for (size_t i = 0; i < c.size(); ++i) out.table.Set(i, 0, c.list()[i]);
    out.column_to_query = {0};
  } else if (filtered->AnyEmpty()) {
    // Some query vertex has no candidates: zero matches, skip the join.
    out.table = MatchTable::Alloc(*dev_, 0, query.num_vertices());
    JoinPlan plan = MakeJoinPlan(query, *data_, filtered->candidates);
    out.column_to_query = plan.order;
  } else {
    // --- Joining phase.
    JoinPlan plan = MakeJoinPlan(query, *data_, filtered->candidates);
    before = dev_->stats();
    JoinEngine join(dev_.get(), store_.get(), options_.join);
    Result<MatchTable> table = join.Run(plan, filtered->candidates);
    if (!table.ok()) return table.status();
    out.stats.join = dev_->stats() - before;
    out.stats.join_detail = join.stats();
    out.table = std::move(table.value());
    out.column_to_query = plan.order;
  }

  out.stats.filter_ms = out.stats.filter.SimulatedMs(dev_->config());
  out.stats.join_ms = out.stats.join.SimulatedMs(dev_->config());
  out.stats.total_ms = out.stats.filter_ms + out.stats.join_ms;
  out.stats.wall_ms = wall.ElapsedMs();
  out.stats.num_matches = out.table.rows();
  return out;
}

}  // namespace gsi
