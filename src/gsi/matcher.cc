#include "gsi/matcher.h"

#include <algorithm>

#include "gsi/fault.h"
#include "storage/basic_rep.h"
#include "storage/compressed_rep.h"
#include "storage/csr.h"
#include "storage/pcsr.h"
#include "util/timer.h"

namespace gsi {

GsiOptions DefaultGsiOptions() { return GsiOptions{}; }

GsiOptions GsiOptOptions() {
  GsiOptions o;
  o.join.load_balance = true;
  o.join.duplicate_removal = true;
  return o;
}

GsiOptions GsiMinusOptions() {
  GsiOptions o;
  o.join.storage = StorageKind::kCsr;
  o.join.output_scheme = OutputScheme::kTwoStep;
  o.join.set_op = SetOpKind::kNaive;
  o.join.write_cache = false;
  return o;
}

Status ValidateGsiOptions(const GsiOptions& options) {
  const JoinOptions& j = options.join;
  if (options.device.num_sms < 1 || options.device.warps_per_block < 1 ||
      options.device.warp_slots_per_sm < 1) {
    return Status::InvalidArgument("device config requires >= 1 SM, warp "
                                   "slot and warp per block");
  }
  if (options.filter.strategy == FilterStrategy::kSignature) {
    // Signature::Encode aborts outside these bounds (signature.cc).
    const int bits = options.filter.signature_bits;
    if (bits <= kVertexLabelBits || bits > kMaxSignatureBits ||
        bits % 32 != 0) {
      return Status::InvalidArgument(
          "filter.signature_bits must be a multiple of 32 in (" +
          std::to_string(kVertexLabelBits) + ", " +
          std::to_string(kMaxSignatureBits) + "], got " +
          std::to_string(bits));
    }
  }
  if (j.storage == StorageKind::kPcsr && (j.gpn < 2 || j.gpn > 16)) {
    return Status::InvalidArgument("join.gpn must be in [2, 16], got " +
                                   std::to_string(j.gpn));
  }
  if (j.max_rows == 0) {
    return Status::InvalidArgument("join.max_rows must be positive");
  }
  if (j.load_balance) {
    // W2 is fixed to the block size; PlanChunks requires W1 > W2 > W3 >= 32.
    const uint32_t w2 = static_cast<uint32_t>(options.device.warps_per_block) *
                        gpusim::kWarpSize;
    if (!(j.w1 > w2 && w2 > j.w3 && j.w3 >= 32)) {
      return Status::InvalidArgument(
          "load balance requires W1 > W2 > W3 >= 32 (W1=" +
          std::to_string(j.w1) + ", W2=block size " + std::to_string(w2) +
          ", W3=" + std::to_string(j.w3) + ")");
    }
  }
  return Status::Ok();
}

std::vector<VertexId> QueryResult::MatchInQueryOrder(size_t r) const {
  std::vector<VertexId> out(table.cols());
  for (size_t c = 0; c < table.cols(); ++c) {
    out[column_to_query[c]] = table.At(r, c);
  }
  return out;
}

bool QueryResult::TableEquals(const QueryResult& other) const {
  if (table.rows() != other.table.rows() ||
      table.cols() != other.table.cols() ||
      column_to_query != other.column_to_query) {
    return false;
  }
  for (size_t r = 0; r < table.rows(); ++r) {
    for (size_t c = 0; c < table.cols(); ++c) {
      if (table.At(r, c) != other.table.At(r, c)) return false;
    }
  }
  return true;
}

std::vector<std::vector<VertexId>> QueryResult::AllMatchesSorted() const {
  std::vector<std::vector<VertexId>> out;
  out.reserve(table.rows());
  for (size_t r = 0; r < table.rows(); ++r) {
    out.push_back(MatchInQueryOrder(r));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<NeighborStore> BuildStore(gpusim::Device& dev,
                                          const Graph& g, StorageKind kind,
                                          int gpn) {
  switch (kind) {
    case StorageKind::kCsr:
      return DeviceCsr::Build(dev, g);
    case StorageKind::kPcsr:
      return PcsrStore::Build(dev, g, gpn);
    case StorageKind::kBasicRep:
      return BasicRep::Build(dev, g);
    case StorageKind::kCompressedRep:
      return CompressedRep::Build(dev, g);
  }
  return nullptr;
}

namespace {

/// Device attribution of single-device spans: a caller that set a device
/// on the context wins; a default context means "the one device", 0.
int32_t SpanDevice(const obs::TraceContext& trace) {
  return trace.device >= 0 ? trace.device : 0;
}

}  // namespace

Result<FilterResult> RunFilterStage(gpusim::Device& dev,
                                    const FilterContext& filter,
                                    const Graph& query, QueryStats& stats,
                                    const obs::TraceContext& trace) {
  if (query.num_vertices() == 0) {
    return Status::InvalidArgument("empty query");
  }
  if (!query.IsConnected()) {
    return Status::InvalidArgument(
        "query must be connected (run components separately)");
  }
  if (Status h = CheckDeviceHealthy(dev, "filter"); !h.ok()) return h;
  const obs::DeviceCycleClock clock(dev);
  obs::ScopedSpan span(trace, "filter", clock, SpanDevice(trace));
  gpusim::MemStats before = dev.stats();
  Result<FilterResult> filtered = filter.Filter(dev, query);
  if (!filtered.ok()) return filtered;
  // Phase boundary of the fail-stop fault model: candidate sets built on a
  // device that tripped mid-scan are discarded here.
  if (Status h = CheckDeviceHealthy(dev, "filter"); !h.ok()) return h;
  stats.filter = dev.stats() - before;
  stats.min_candidate_size = filtered->min_candidate_size;
  span.AddAttr("min_candidate_size",
               static_cast<uint64_t>(filtered->min_candidate_size));
  return filtered;
}

Result<QueryResult> RunJoinStage(gpusim::Device& dev, const Graph& data,
                                 const NeighborStore& store,
                                 const GsiOptions& options, const Graph& query,
                                 FilterResult filtered, QueryStats stats,
                                 const obs::TraceContext& trace) {
  const obs::DeviceCycleClock clock(dev);
  obs::ScopedSpan span(trace, "join", clock, SpanDevice(trace));
  QueryResult out;
  out.stats = stats;

  if (query.num_vertices() == 1) {
    // Degenerate query: the candidate set is the answer.
    const CandidateSet& c = filtered.candidates[0];
    out.table = MatchTable::Alloc(dev, c.size(), 1);
    for (size_t i = 0; i < c.size(); ++i) out.table.Set(i, 0, c.list()[i]);
    out.column_to_query = {0};
  } else if (filtered.AnyEmpty()) {
    // Some query vertex has no candidates: zero matches, skip the join.
    out.table = MatchTable::Alloc(dev, 0, query.num_vertices());
    JoinPlan plan = MakeJoinPlan(query, data, filtered.candidates);
    out.column_to_query = plan.order;
  } else {
    // --- Joining phase.
    JoinPlan plan = MakeJoinPlan(query, data, filtered.candidates);
    gpusim::MemStats before = dev.stats();
    JoinEngine join(&dev, &store, options.join);
    join.set_trace(span.context());
    Result<MatchTable> table = join.Run(plan, filtered.candidates);
    if (!table.ok()) return table.status();
    out.stats.join = dev.stats() - before;
    out.stats.join_detail = join.stats();
    out.table = std::move(table.value());
    out.column_to_query = plan.order;
  }

  // The degenerate paths above run materialization kernels the join engine
  // never sees — cover them with a final boundary check.
  if (Status h = CheckDeviceHealthy(dev, "join"); !h.ok()) return h;
  out.stats.filter_ms = out.stats.filter.SimulatedMs(dev.config());
  out.stats.join_ms = out.stats.join.SimulatedMs(dev.config());
  out.stats.total_ms = out.stats.filter_ms + out.stats.join_ms;
  out.stats.num_matches = out.table.rows();
  span.AddAttr("matches", static_cast<uint64_t>(out.stats.num_matches));
  return out;
}

Result<QueryResult> ExecuteQuery(gpusim::Device& dev, const Graph& data,
                                 const NeighborStore& store,
                                 const FilterContext& filter,
                                 const GsiOptions& options,
                                 const Graph& query,
                                 const obs::TraceContext& trace) {
  WallTimer wall;
  const obs::DeviceCycleClock clock(dev);
  obs::ScopedSpan span(trace, "execute", clock, SpanDevice(trace));
  QueryStats stats;
  Result<FilterResult> filtered =
      RunFilterStage(dev, filter, query, stats, span.context());
  if (!filtered.ok()) return filtered.status();
  Result<QueryResult> out =
      RunJoinStage(dev, data, store, options, query,
                   std::move(filtered.value()), stats, span.context());
  if (out.ok()) out->stats.wall_ms = wall.ElapsedMs();
  return out;
}

GsiMatcher::GsiMatcher(const Graph& data, GsiOptions options)
    : data_(&data), options_(options) {
  dev_ = std::make_unique<gpusim::Device>(options.device);
  init_status_ = ValidateGsiOptions(options);
  if (!init_status_.ok()) return;  // Find reports the error.
  store_ = BuildStore(*dev_, data, options.join.storage, options.join.gpn);
  filter_ = std::make_unique<FilterContext>(*dev_, data, options.filter);
}

Result<QueryResult> GsiMatcher::Find(const Graph& query) {
  return Find(query, obs::TraceContext{});
}

Result<QueryResult> GsiMatcher::Find(const Graph& query,
                                     const obs::TraceContext& trace) {
  if (!init_status_.ok()) return init_status_;
  return ExecuteQuery(*dev_, *data_, *store_, *filter_, options_, query,
                      trace);
}

}  // namespace gsi
