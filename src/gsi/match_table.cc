#include "gsi/match_table.h"

namespace gsi {

MatchTable MatchTable::Alloc(gpusim::Device& dev, size_t rows, size_t cols) {
  MatchTable t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = dev.Alloc<VertexId>(rows * cols);
  return t;
}

MatchTable MatchTable::FromColumn(gpusim::Device& dev,
                                  const std::vector<VertexId>& column) {
  MatchTable t;
  t.rows_ = column.size();
  t.cols_ = 1;
  t.data_ = dev.Upload(std::vector<VertexId>(column));
  return t;
}

std::vector<VertexId> MatchTable::Row(size_t r) const {
  std::vector<VertexId> out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = At(r, c);
  return out;
}

}  // namespace gsi
