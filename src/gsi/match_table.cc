#include "gsi/match_table.h"

#include <algorithm>

#include "gpusim/launch.h"
#include "util/check.h"

namespace gsi {

MatchTable MatchTable::Alloc(gpusim::Device& dev, size_t rows, size_t cols) {
  MatchTable t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = dev.Alloc<VertexId>(rows * cols);
  return t;
}

MatchTable MatchTable::FromColumn(gpusim::Device& dev,
                                  const std::vector<VertexId>& column) {
  MatchTable t;
  t.rows_ = column.size();
  t.cols_ = 1;
  t.data_ = dev.Upload(std::vector<VertexId>(column));
  return t;
}

std::vector<VertexId> MatchTable::Row(size_t r) const {
  std::vector<VertexId> out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = At(r, c);
  return out;
}

void MatchTable::CopyRowsFrom(const MatchTable& src, size_t src_begin,
                              size_t dst_begin, size_t count) {
  if (count == 0) return;
  GSI_CHECK_MSG(src.cols_ == cols_, "row copy between different widths");
  GSI_CHECK(src_begin + count <= src.rows_);
  GSI_CHECK(dst_begin + count <= rows_);
  std::copy_n(src.data_.data() + src_begin * cols_, count * cols_,
              data_.data() + dst_begin * cols_);
}

MatchTable MatchTable::ConcatRows(gpusim::Device& dev,
                                  std::span<const MatchTable* const> parts) {
  // The width comes from the non-empty parts (which must agree); empty
  // parts contribute no rows and may be wider — a join slice that dies
  // early hands back the full-width empty table.
  size_t rows = 0;
  size_t cols = 0;
  for (const MatchTable* p : parts) {
    rows += p->rows();
    if (p->rows() == 0) continue;
    if (cols == 0) {
      cols = p->cols();
    } else {
      GSI_CHECK_MSG(p->cols() == cols, "concat of different widths");
    }
  }
  if (rows == 0) {
    for (const MatchTable* p : parts) cols = std::max(cols, p->cols());
  }
  MatchTable out = Alloc(dev, rows, cols);
  uint64_t dst_row = 0;
  for (const MatchTable* p : parts) {
    if (p->rows() == 0) continue;
    out.CopyRowsFrom(*p, 0, dst_row, p->rows());
    dst_row += p->rows();
  }
  return out;
}

MatchTable MatchTable::CopySlice(gpusim::Device& dev, const MatchTable& src,
                                 size_t src_begin, size_t count) {
  MatchTable out = Alloc(dev, count, src.cols());
  out.CopyRowsFrom(src, src_begin, 0, count);
  return out;
}

}  // namespace gsi
