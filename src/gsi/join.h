#ifndef GSI_GSI_JOIN_H_
#define GSI_GSI_JOIN_H_

#include <cstdint>
#include <vector>

#include "gpusim/device.h"
#include "gsi/candidates.h"
#include "gsi/load_balance.h"
#include "gsi/match_table.h"
#include "gsi/plan.h"
#include "obs/trace.h"
#include "storage/neighbor_store.h"
#include "util/status.h"

namespace gsi {

class BlockExtractionCache;

/// Graph storage used by the join (Table II / Table VI "+DS").
enum class StorageKind { kCsr, kPcsr, kBasicRep, kCompressedRep };

/// How join results reach global memory (Table VI "+PC"):
/// kTwoStep — the GpSM/GunrockSM scheme: run the join once to count, prefix
///            sum, run the identical join again to write (Example 1).
/// kPreallocCombine — GSI's scheme: pre-allocate one combined buffer (GBA)
///            sized by the first-edge upper bounds and join once
///            (Algorithms 3/4).
enum class OutputScheme { kTwoStep, kPreallocCombine };

/// Inner set-operation implementation (Table VI "+SO").
enum class SetOpKind { kNaive, kWarpFriendly };

/// Configuration of the joining phase; the ablation axes of Tables VI-XI.
struct JoinOptions {
  StorageKind storage = StorageKind::kPcsr;
  OutputScheme output_scheme = OutputScheme::kPreallocCombine;
  SetOpKind set_op = SetOpKind::kWarpFriendly;
  /// 128B per-warp write cache (Table VII). Only effective with
  /// kWarpFriendly set ops.
  bool write_cache = true;
  /// 4-layer load-balance scheme (Section VI-A, Tables VIII-X).
  bool load_balance = false;
  /// In-block duplicate removal (Section VI-B, Tables VIII/XI).
  bool duplicate_removal = false;
  /// Load-balance thresholds; W2 is fixed to the block size (1024).
  uint32_t w1 = 4096;
  uint32_t w3 = 256;
  /// PCSR group size in pairs.
  int gpn = 16;
  /// Intermediate-table row budget; exceeding it aborts the query with
  /// kResourceExhausted (exponential blowup guard).
  size_t max_rows = 4u * 1024 * 1024;

  friend bool operator==(const JoinOptions&, const JoinOptions&) = default;
};

/// Counters of one join execution.
struct JoinStats {
  size_t iterations = 0;
  size_t peak_rows = 0;
  size_t final_rows = 0;
  size_t total_chunks = 0;
  size_t dup_cache_hits = 0;
  size_t dup_cache_misses = 0;
};

/// The joining phase (Algorithm 2's loop body, Algorithms 3-5): joins the
/// intermediate table with one candidate set per iteration on the simulated
/// device.
class JoinEngine {
 public:
  JoinEngine(gpusim::Device* dev, const NeighborStore* store,
             const JoinOptions& options)
      : dev_(dev), store_(store), options_(options) {}

  /// Runs the whole join; returns the final match table whose column j
  /// holds the binding of plan.order[j]. `seed_begin`/`seed_end` restrict
  /// the seeding of M to that slice of C(order[0]) (end is clamped to the
  /// candidate count). Equivalent to SeedTable + RunSteps over every step.
  Result<MatchTable> Run(const JoinPlan& plan,
                         const std::vector<CandidateSet>& candidates,
                         size_t seed_begin = 0,
                         size_t seed_end = SIZE_MAX);

  /// Seeds M = C(order[0])[seed_begin, seed_end) (Algorithm 2, Line 7; one
  /// streaming copy kernel) and resets the engine's stats.
  MatchTable SeedTable(const JoinPlan& plan,
                       const std::vector<CandidateSet>& candidates,
                       size_t seed_begin = 0, size_t seed_end = SIZE_MAX);

  /// Runs join iterations [first_step, last_step) of the plan on `m`
  /// (which must bind plan.order[0 .. first_step]), accumulating into the
  /// engine's stats. Exposed so the sharded engine can run a serial prefix
  /// on one device and fan the remaining steps out over row slices of the
  /// intermediate table: step output rows are emitted in input-row order,
  /// so running any contiguous row slice yields exactly that slice's
  /// portion of the whole run, in order.
  Result<MatchTable> RunSteps(const JoinPlan& plan,
                              const std::vector<CandidateSet>& candidates,
                              MatchTable m, size_t first_step,
                              size_t last_step);

  const JoinStats& stats() const { return stats_; }

  /// Attaches a trace context: RunSteps then opens one span per join step
  /// (timed by this engine's device cycle clock, attributed to the
  /// context's device). Lives outside JoinOptions so option equality (the
  /// FilterCache key, config comparisons) never depends on telemetry.
  void set_trace(const obs::TraceContext& trace) { trace_ = trace; }

 private:
  Result<MatchTable> StepPrealloc(const MatchTable& m, const JoinStep& step,
                                  const CandidateSet& cand);
  Result<MatchTable> StepTwoStep(const MatchTable& m, const JoinStep& step,
                                 const CandidateSet& cand);

  /// Executes the set operations of Algorithm 3 (Lines 5-13) for one chunk.
  /// Survivors land in `result` (and in `gba` when non-null).
  void ProcessChunk(gpusim::Warp& w, Chunk& chunk, const MatchTable& m,
                    const JoinStep& step, const CandidateSet& cand,
                    gpusim::DeviceBuffer<VertexId>* gba,
                    BlockExtractionCache& cache,
                    std::vector<VertexId>& result);

  gpusim::Device* dev_;
  const NeighborStore* store_;
  JoinOptions options_;
  JoinStats stats_;
  obs::TraceContext trace_;
};

}  // namespace gsi

#endif  // GSI_GSI_JOIN_H_
