#ifndef GSI_GSI_FAULT_H_
#define GSI_GSI_FAULT_H_

#include "gpusim/device.h"
#include "util/status.h"

namespace gsi {

/// The boundary check of the fail-stop fault model (gpusim::FaultPlan): Ok
/// while `dev` is healthy, otherwise kUnavailable naming the device, the
/// execution phase that observed the failure and the fault's reason — the
/// actionable message the serving layer surfaces and retries on. Execution
/// paths call this after every phase (and the join after every step) so a
/// tripped device's partial results are discarded at the first boundary.
Status CheckDeviceHealthy(const gpusim::Device& dev, const char* phase);

}  // namespace gsi

#endif  // GSI_GSI_FAULT_H_
