#ifndef GSI_GSI_MATCH_TABLE_H_
#define GSI_GSI_MATCH_TABLE_H_

#include <span>
#include <vector>

#include "gpusim/device.h"
#include "util/common.h"

namespace gsi {

/// The intermediate result table M: each row is a partial match, column j
/// holds the data vertex matched to the j-th plan vertex (Table I).
/// Row-major in device memory so one warp streams one row.
class MatchTable {
 public:
  MatchTable() = default;

  /// Allocates rows x cols on the device.
  static MatchTable Alloc(gpusim::Device& dev, size_t rows, size_t cols);

  /// Seeds a one-column table from a candidate list (Algorithm 2 Line 7).
  static MatchTable FromColumn(gpusim::Device& dev,
                               const std::vector<VertexId>& column);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  gpusim::DeviceBuffer<VertexId>& data() { return data_; }
  const gpusim::DeviceBuffer<VertexId>& data() const { return data_; }

  /// Host access to cell (r, c).
  VertexId At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  void Set(size_t r, size_t c, VertexId v) { data_[r * cols_ + c] = v; }

  /// Copies row r to a host vector.
  std::vector<VertexId> Row(size_t r) const;

  /// Bulk host-side copy of `count` rows of `src` (starting at `src_begin`)
  /// into this table at `dst_begin`. Both tables must have the same column
  /// count; rows are stored contiguously, so this is one memcpy instead of
  /// count * cols At/Set round trips. Host-mediated, hence uncharged (the
  /// gpusim convention for host <-> device movement).
  void CopyRowsFrom(const MatchTable& src, size_t src_begin, size_t dst_begin,
                    size_t count);

  /// Concatenates `parts` (equal column counts among non-empty parts;
  /// empty tables may be wider — a join slice that dies early hands back
  /// the full-width empty table) into one table allocated on `dev`, in
  /// order, as bulk row copies — the merge path of the sharded engine,
  /// where per-element At/Set would dwarf the join it merges. Like every
  /// host-mediated transfer in gpusim (Upload, host reads of results),
  /// the movement itself is uncharged; only kernel work bills devices.
  static MatchTable ConcatRows(gpusim::Device& dev,
                               std::span<const MatchTable* const> parts);

  /// Copies rows [src_begin, src_begin + count) of `src` into a fresh
  /// table allocated on `dev` (one bulk row copy, host-mediated like
  /// ConcatRows) — the partial-table scatter of the sharded engine.
  static MatchTable CopySlice(gpusim::Device& dev, const MatchTable& src,
                              size_t src_begin, size_t count);

 private:
  gpusim::DeviceBuffer<VertexId> data_;
  size_t rows_ = 0;
  size_t cols_ = 0;
};

}  // namespace gsi

#endif  // GSI_GSI_MATCH_TABLE_H_
