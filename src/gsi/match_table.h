#ifndef GSI_GSI_MATCH_TABLE_H_
#define GSI_GSI_MATCH_TABLE_H_

#include <vector>

#include "gpusim/device.h"
#include "util/common.h"

namespace gsi {

/// The intermediate result table M: each row is a partial match, column j
/// holds the data vertex matched to the j-th plan vertex (Table I).
/// Row-major in device memory so one warp streams one row.
class MatchTable {
 public:
  MatchTable() = default;

  /// Allocates rows x cols on the device.
  static MatchTable Alloc(gpusim::Device& dev, size_t rows, size_t cols);

  /// Seeds a one-column table from a candidate list (Algorithm 2 Line 7).
  static MatchTable FromColumn(gpusim::Device& dev,
                               const std::vector<VertexId>& column);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  gpusim::DeviceBuffer<VertexId>& data() { return data_; }
  const gpusim::DeviceBuffer<VertexId>& data() const { return data_; }

  /// Host access to cell (r, c).
  VertexId At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  void Set(size_t r, size_t c, VertexId v) { data_[r * cols_ + c] = v; }

  /// Copies row r to a host vector.
  std::vector<VertexId> Row(size_t r) const;

 private:
  gpusim::DeviceBuffer<VertexId> data_;
  size_t rows_ = 0;
  size_t cols_ = 0;
};

}  // namespace gsi

#endif  // GSI_GSI_MATCH_TABLE_H_
