#ifndef GSI_GSI_REPLICATION_H_
#define GSI_GSI_REPLICATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "graph/graph.h"
#include "gsi/filter.h"
#include "gsi/halo_cache.h"
#include "gsi/matcher.h"
#include "gsi/partition.h"
#include "storage/pcsr.h"
#include "storage/signature_table.h"
#include "util/status.h"

namespace gsi {

/// Where the R replicas of each of K partitions live on a pool of N
/// devices: replica j of partition p sits on device (p + j * (N / R)) mod N
/// — a staggered round-robin, so each device hosts ~K*R/N shares, the
/// replicas of one partition land on R distinct devices, and consecutive
/// devices hold share sets that tile into disjoint "lanes" (device groups
/// that together cover every partition). With N == K (the serving layer's
/// configuration) each device holds R shares — ~R/K of the replicated
/// footprint — and R queries can run concurrently on disjoint lanes.
struct ReplicaPlacement {
  size_t num_devices = 0;
  size_t partitions = 0;
  size_t replicas = 0;
  /// device_of[p][j]: pool index of the device holding replica j of
  /// partition p (R distinct devices per partition).
  std::vector<std::vector<size_t>> device_of;
  /// shares_of[d]: partitions with a replica on device d, ascending.
  std::vector<std::vector<PartitionId>> shares_of;

  /// True when device d holds some replica of partition p.
  bool Hosts(size_t d, PartitionId p) const;

  /// The lease groups AcquireOneOfEach expects: group p lists the devices
  /// holding a replica of partition p (an alias of device_of).
  const std::vector<std::vector<size_t>>& lease_groups() const {
    return device_of;
  }
};

/// Builds the staggered placement. Requires 1 <= replicas <= num_devices
/// and partitions >= 1. R dividing N gives the clean trade (exactly R
/// disjoint lanes of N/R devices); a non-divisor R still places and
/// executes correctly but packs onto ceil(N/R) devices per query, buying
/// only floor(N / ceil(N/R)) lanes for the full R-times storage cost.
Result<ReplicaPlacement> MakeStaggeredPlacement(size_t num_devices,
                                                size_t partitions,
                                                size_t replicas);

/// Build-time shape of a ReplicatedGraph.
struct ReplicationBuildStats {
  /// Simulated memory resident on each pool device (its shares' PCSR +
  /// signature bytes).
  std::vector<uint64_t> resident_bytes;
  /// Footprint one device pays without partitioning (PCSR + signature
  /// table for the whole graph, one copy).
  uint64_t replicated_bytes = 0;
  /// Sum over devices (== replicas * replicated_bytes: every partition is
  /// stored replicas times).
  uint64_t total_bytes = 0;

  uint64_t max_resident_bytes() const;
};

/// One query's choice of serving replica per partition: choice[p] indexes
/// placement.device_of[p]. Obtained from CompactSelection (standalone use)
/// or SelectionFromDevices (mapping the devices AcquireOneOfEach picked).
struct ReplicaSelection {
  std::vector<uint32_t> choice;

  size_t DeviceOf(const ReplicaPlacement& placement, PartitionId p) const {
    return placement.device_of[p][choice[p]];
  }
};

/// The data graph partitioned K ways with every partition stored on R
/// devices — the replication/partitioning trade: queries no longer need the
/// whole pool (one replica of each partition suffices), so up to R
/// partitioned queries run concurrently, at an ~R/K-of-replica resident
/// cost per device instead of 1/K.
///
///   std::vector<gpusim::Device*> devs = ...;        // N devices
///   auto rg = ReplicatedGraph::Build(devs, data, GsiOptOptions(),
///                                    HashVertexPartitioner(),
///                                    /*partitions=*/devs.size(),
///                                    /*replicas=*/2);
///   ReplicaSelection sel = CompactSelection(*rg);
///   Result<QueryResult> r = ExecuteQueryReplicated(*rg, sel, query);
///
/// Same storage requirements as PartitionedGraph (PCSR + signature filter).
/// Immutable after Build and safe to share between threads; concurrent
/// queries are safe as long as their selections map onto disjoint device
/// sets — exactly what DevicePool::AcquireOneOfEach guarantees the serving
/// layer. The match table is bit-identical to GsiMatcher::Find for *every*
/// selection: replicas of a partition hold identical shares, each
/// partition's join is a deterministic function of its seed subsequence
/// (not of the device that runs it), and the merge reassembles partial
/// tables in global seed order (see docs/ARCHITECTURE.md).
class ReplicatedGraph {
 public:
  /// `partitions` == 0 means one partition per device. `replicas` must be
  /// in [1, devs.size()].
  static Result<ReplicatedGraph> Build(std::span<gpusim::Device* const> devs,
                                       const Graph& data,
                                       const GsiOptions& options,
                                       const GraphPartitioner& partitioner,
                                       size_t partitions, size_t replicas);

  size_t num_partitions() const { return placement_.partitions; }
  size_t num_replicas() const { return placement_.replicas; }
  size_t num_devices() const { return devs_.size(); }
  const ReplicaPlacement& placement() const { return placement_; }

  PartitionId OwnerOf(VertexId v) const { return owner_[v]; }
  std::span<const PartitionId> owners() const { return owner_; }
  /// Vertices owned by partition p, ascending.
  std::span<const VertexId> owned(PartitionId p) const { return owned_[p]; }

  gpusim::Device& device(size_t d) const { return *devs_[d]; }
  /// Replica j of partition p's PCSR share (resident on
  /// placement().device_of[p][j]).
  const PcsrStore& store(PartitionId p, size_t j) const {
    return *stores_[p][j];
  }
  /// Replica j of partition p's signature rows; row i is owned(p)[i].
  const SignatureTable& signatures(PartitionId p, size_t j) const {
    return signatures_[p][j];
  }
  /// The share of partition p resident on device d, or null when d hosts
  /// no replica of p.
  const PcsrStore* StoreOn(size_t d, PartitionId p) const;

  /// Pool device d's halo cache over remote N(v, l) lists, or null when
  /// options().halo_budget_bytes == 0. Only partitions with no co-resident
  /// replica on d are ever cached (co-resident probes are local reads and
  /// bypass it). Mutable from const like device(d): execution state the
  /// immutable graph hosts.
  HaloCache* halo_cache(size_t d) const { return halo_[d].get(); }

  const Graph& data() const { return *data_; }
  const GsiOptions& options() const { return options_; }
  const std::string& partitioner_name() const { return partitioner_name_; }
  const ReplicationBuildStats& build_stats() const { return build_stats_; }

 private:
  ReplicatedGraph() = default;

  const Graph* data_ = nullptr;
  GsiOptions options_;
  std::string partitioner_name_;
  std::vector<gpusim::Device*> devs_;
  ReplicaPlacement placement_;
  std::vector<PartitionId> owner_;            // indexed by vertex id
  std::vector<std::vector<VertexId>> owned_;  // indexed by partition
  std::vector<std::vector<std::unique_ptr<PcsrStore>>> stores_;  // [p][j]
  std::vector<std::vector<SignatureTable>> signatures_;          // [p][j]
  std::vector<std::unique_ptr<HaloCache>> halo_;  // indexed by pool device
  ReplicationBuildStats build_stats_;
};

/// Deterministic selection that packs partitions onto the fewest devices
/// (what AcquireOneOfEach picks on an idle pool): partitions in id order
/// prefer a replica on an already-selected device, then the lowest device
/// index — on the staggered placement with N == K this lands on the first
/// K/R devices, leaving the other lanes idle.
ReplicaSelection CompactSelection(const ReplicatedGraph& rg);

/// Maps the device picked for each partition (AcquireOneOfEach's
/// device_of_group) back to replica indices. Fails with InvalidArgument if
/// some device holds no replica of its partition.
Result<ReplicaSelection> SelectionFromDevices(
    const ReplicatedGraph& rg, std::span<const size_t> device_of_partition);

/// Filtering phase over the selected replicas: each selected device scans
/// the signature shares of the partitions mapped onto it (sequentially, in
/// partition order), then the survivor lists all-gather to the primary (the
/// lowest selected device) — lists from partitions co-resident with the
/// primary stay local; the rest are charged as halo traffic. Candidate
/// values are identical to the replicated scan for every selection.
/// `parallel_ms` (when non-null) receives the phase makespan: the slowest
/// device's scans plus the primary's gather/materialize.
Result<FilterResult> RunFilterStageReplicated(const ReplicatedGraph& rg,
                                              const ReplicaSelection& sel,
                                              const Graph& query,
                                              QueryStats& stats,
                                              double* parallel_ms,
                                              const obs::TraceContext& trace =
                                                  {});

/// Joining phase over the selected replicas. The seed list C(order[0]) is
/// split by ownership; each selected device joins its partitions'
/// subsequences sequentially (in partition order). Probes of peer-owned
/// vertices are served by a co-resident replica when the probing device
/// holds one (a local read — counted in stats.co_located_probes; this is
/// the traffic replication saves) and otherwise by the selected replica of
/// the owner, charged at the interconnect premium (stats.remote_probes /
/// halo_bytes). Partial tables merge on the primary by ascending seed runs
/// — bit-identical to single-device RunJoinStage for every selection.
/// join_ms is the makespan: the slowest device's partition sequence plus
/// the merge; stats.replica_lanes counts the distinct devices used.
Result<QueryResult> RunJoinStageReplicated(const ReplicatedGraph& rg,
                                           const ReplicaSelection& sel,
                                           const Graph& query,
                                           FilterResult filtered,
                                           QueryStats stats,
                                           const obs::TraceContext& trace =
                                               {});

/// The paged core RunJoinStageReplicated wraps: identical execution and
/// identical stats (the merge's interconnect traffic is charged at plan
/// time), but partial tables stay on their lane devices and the merge is
/// returned as a ResultManifest of ascending-seed-run segments. See
/// RunJoinStagePartitionedPaged (gsi/partition.h).
Result<PagedQueryResult> RunJoinStageReplicatedPaged(
    const ReplicatedGraph& rg, const ReplicaSelection& sel, const Graph& query,
    FilterResult filtered, QueryStats stats,
    const obs::TraceContext& trace = {});

/// Full execution against one replica selection: RunFilterStageReplicated
/// then RunJoinStageReplicated. With replicas == 1 and one partition per
/// device this degenerates to partitioned execution; the returned match
/// table is bit-identical to GsiMatcher::Find whenever both succeed,
/// regardless of the selection.
Result<QueryResult> ExecuteQueryReplicated(const ReplicatedGraph& rg,
                                           const ReplicaSelection& sel,
                                           const Graph& query,
                                           const obs::TraceContext& trace =
                                               {});

/// Full replicated execution in manifest form (the paged join stage above
/// behind the same filter stage); ExecuteQueryReplicated is this plus
/// ToQueryResult on the selection's primary device.
Result<PagedQueryResult> ExecuteQueryReplicatedPaged(
    const ReplicatedGraph& rg, const ReplicaSelection& sel, const Graph& query,
    const obs::TraceContext& trace = {});

}  // namespace gsi

#endif  // GSI_GSI_REPLICATION_H_
