#ifndef GSI_GSI_PARTITION_H_
#define GSI_GSI_PARTITION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "graph/graph.h"
#include "gsi/filter.h"
#include "gsi/halo_cache.h"
#include "gsi/matcher.h"
#include "gsi/result_manifest.h"
#include "storage/pcsr.h"
#include "storage/signature_table.h"
#include "util/status.h"

namespace gsi {

using PartitionId = uint32_t;

/// Pluggable vertex-ownership policy for the partitioned data graph: maps
/// every data vertex to the device partition that will store its adjacency
/// rows and its signature. Assignments must be deterministic functions of
/// (g, k) — ownership decides which probes are remote and in which order
/// partial tables merge, so a nondeterministic policy would break the
/// bit-identical guarantee of ExecuteQueryPartitioned.
class GraphPartitioner {
 public:
  virtual ~GraphPartitioner() = default;

  /// Returns owner[v] in [0, k) for every vertex of g (k >= 1).
  virtual std::vector<PartitionId> Assign(const Graph& g, size_t k) const = 0;

  virtual std::string name() const = 0;
};

/// Default policy: owner(v) = splitmix64(v) mod k. Oblivious to structure —
/// expected |V|/k vertices and |E|/k adjacency entries per partition with no
/// build-time graph traversal, at the price of ~(1 - 1/k) of edges being
/// cut. The right first choice when queries touch the graph uniformly; see
/// docs/ARCHITECTURE.md for when an edge-cut policy pays for itself.
class HashVertexPartitioner final : public GraphPartitioner {
 public:
  std::vector<PartitionId> Assign(const Graph& g, size_t k) const override;
  std::string name() const override { return "hash"; }
};

/// Streaming greedy edge-cut policy (linear deterministic greedy): vertices
/// are visited in id order and placed on the partition holding most of
/// their already-placed neighbors, discounted by that partition's fill
/// (score = |N(v) cap P| * (1 - |P|/C) with capacity C = |V|/k * (1+slack)).
/// One pass, no refinement — a reference implementation of the edge-cut
/// interface that beats hashing on clustered graphs, not a METIS
/// replacement.
class GreedyEdgeCutPartitioner final : public GraphPartitioner {
 public:
  explicit GreedyEdgeCutPartitioner(double balance_slack = 0.05)
      : balance_slack_(balance_slack) {}

  std::vector<PartitionId> Assign(const Graph& g, size_t k) const override;
  std::string name() const override { return "greedy-edge-cut"; }

 private:
  double balance_slack_;
};

/// Build-time shape of a PartitionedGraph (how well the policy did).
struct PartitionBuildStats {
  std::vector<size_t> vertices;         ///< owned vertices per partition
  std::vector<size_t> directed_edges;   ///< adjacency entries per partition
  /// Simulated device memory per partition: its PCSR share plus its
  /// signature-table share.
  std::vector<uint64_t> resident_bytes;
  /// Undirected edges whose endpoints live on different partitions (each
  /// parallel edge counted once, like Graph::num_edges).
  size_t cut_edges = 0;
  /// max / mean of directed_edges (1.0 = perfectly balanced storage).
  double edge_balance = 0;
  /// Footprint one device pays without partitioning (PCSR + signature
  /// table for the whole graph). The per-partition shares sum to exactly
  /// this value: group counts and column indices split without overlap.
  uint64_t replicated_bytes = 0;

  uint64_t max_resident_bytes() const;
};

/// The data graph partitioned across K simulated device memories: device p
/// holds only the adjacency rows (PCSR) and signatures of the vertices it
/// owns, ~1/K of the replicated footprint — the memory-capacity half of the
/// paper's Section VIII scaling discussion (the sharded engine covers the
/// compute half but leaves every device with a full replica).
///
///   std::vector<gpusim::Device*> devs = ...;      // K devices
///   auto pg = PartitionedGraph::Build(devs, data, GsiOptOptions(),
///                                     HashVertexPartitioner());
///   Result<QueryResult> r = ExecuteQueryPartitioned(*pg, query);
///
/// Requires PCSR storage and the signature filter strategy (the paper's
/// defaults); other configurations fail with InvalidArgument at Build.
/// Immutable after Build and safe to share between threads, but the
/// execution functions below charge work to the partition devices, so at
/// most one query may execute against a given PartitionedGraph at a time
/// (QueryService serializes via DevicePool::AcquireAll). The data graph and
/// the devices must outlive the instance; devices are borrowed, not owned.
class PartitionedGraph {
 public:
  static Result<PartitionedGraph> Build(std::span<gpusim::Device* const> devs,
                                        const Graph& data,
                                        const GsiOptions& options,
                                        const GraphPartitioner& partitioner);

  size_t num_partitions() const { return owned_.size(); }
  PartitionId OwnerOf(VertexId v) const { return owner_[v]; }
  /// The full ownership map, indexed by vertex id.
  std::span<const PartitionId> owners() const { return owner_; }

  gpusim::Device& device(PartitionId p) const { return *devs_[p]; }
  /// Partition p's PCSR share (rows of owned vertices only).
  const PcsrStore& store(PartitionId p) const { return *stores_[p]; }
  /// Partition p's signature rows; row i is the signature of owned(p)[i].
  const SignatureTable& signatures(PartitionId p) const {
    return signatures_[p];
  }
  /// Vertices owned by partition p, ascending.
  std::span<const VertexId> owned(PartitionId p) const { return owned_[p]; }

  /// Partition p's device-side halo cache over remote N(v, l) lists, or
  /// null when options().halo_budget_bytes == 0. Mutable from const like
  /// device(p): the cache, like the device's counters, is execution state
  /// the immutable graph merely hosts.
  HaloCache* halo_cache(PartitionId p) const { return halo_[p].get(); }

  const Graph& data() const { return *data_; }
  const GsiOptions& options() const { return options_; }
  const std::string& partitioner_name() const { return partitioner_name_; }
  const PartitionBuildStats& build_stats() const { return build_stats_; }

 private:
  PartitionedGraph() = default;

  const Graph* data_ = nullptr;
  GsiOptions options_;
  std::string partitioner_name_;
  std::vector<gpusim::Device*> devs_;
  std::vector<PartitionId> owner_;            // indexed by vertex id
  std::vector<std::vector<VertexId>> owned_;  // indexed by partition
  std::vector<std::unique_ptr<PcsrStore>> stores_;
  std::vector<SignatureTable> signatures_;
  std::vector<std::unique_ptr<HaloCache>> halo_;  // indexed by partition
  PartitionBuildStats build_stats_;
};

/// Filtering phase over the partitioned signature table: partition p scans
/// only its owned vertices on its own device (same signature math as
/// FilterContext::Filter, so the surviving candidate values are identical),
/// then the per-partition lists all-gather to the primary — charged as halo
/// traffic (stats.halo_bytes, Device::ChargeRemoteTransfer) — where the
/// global candidate sets are materialized. `stats.filter` sums every
/// device's counters; `parallel_ms` (when non-null) receives the phase
/// makespan: slowest partition scan + the primary's gather/materialize.
Result<FilterResult> RunFilterStagePartitioned(const PartitionedGraph& pg,
                                               const Graph& query,
                                               QueryStats& stats,
                                               double* parallel_ms,
                                               const obs::TraceContext& trace =
                                                   {});

/// Joining phase over the partitioned data graph. The seed list C(order[0])
/// is split by ownership: partition p seeds from its owned candidates and
/// runs *all* join steps locally on its device. Probes N(v', l) of vertices
/// it does not own are remote probes: served from the owner's PCSR share,
/// charged to the prober at the interconnect premium
/// (DeviceConfig::remote_transaction_extra_cycles) and counted in
/// stats.remote_probes / stats.halo_bytes.
///
/// The merged result is bit-identical to single-device RunJoinStage: the
/// final table of a join is grouped by its seed binding (column 0 holds
/// order[0]'s match, descendants of one seed stay contiguous and seeds stay
/// in candidate-list order), ownership splits the seed list into disjoint
/// subsequences, and each partition's partial table preserves its
/// subsequence's order — so merging partial tables by ascending column-0
/// runs on the primary reconstructs the whole table row for row. The merge
/// movement of non-primary rows is charged as halo traffic.
///
/// Stats roll-up mirrors the sharded engine: `stats.join` sums every
/// partition's counters (total work), join_ms is the parallel makespan
/// (slowest partition + the merge), partition_skew is max/mean over
/// partitions that owned seeds. Each partition's intermediate table is
/// bounded by options.join.max_rows separately. Wall-clock thread
/// interleaving never leaks into simulated numbers: partition work is a
/// deterministic function of the partition, not of scheduling.
Result<QueryResult> RunJoinStagePartitioned(const PartitionedGraph& pg,
                                            const Graph& query,
                                            FilterResult filtered,
                                            QueryStats stats,
                                            const obs::TraceContext& trace =
                                                {});

/// The paged core RunJoinStagePartitioned wraps: identical execution and
/// identical stats (the merge's interconnect traffic is charged at plan
/// time), but the per-partition partial tables stay on their devices and
/// the merge is returned as a ResultManifest of ascending-seed-run segments
/// instead of one concatenated table. Materializing the manifest — all at
/// once (ToQueryResult) or page by page — is bit-identical to the eager
/// merge.
Result<PagedQueryResult> RunJoinStagePartitionedPaged(
    const PartitionedGraph& pg, const Graph& query, FilterResult filtered,
    QueryStats stats, const obs::TraceContext& trace = {});

/// Full partitioned execution: RunFilterStagePartitioned then
/// RunJoinStagePartitioned. With one partition this degenerates to
/// replicated single-device execution (no remote traffic). The returned
/// match table is bit-identical to GsiMatcher::Find whenever both succeed.
Result<QueryResult> ExecuteQueryPartitioned(const PartitionedGraph& pg,
                                            const Graph& query,
                                            const obs::TraceContext& trace =
                                                {});

/// Full partitioned execution in manifest form (the paged join stage above
/// behind the same filter stage); ExecuteQueryPartitioned is this plus
/// ToQueryResult on the primary.
Result<PagedQueryResult> ExecuteQueryPartitionedPaged(
    const PartitionedGraph& pg, const Graph& query,
    const obs::TraceContext& trace = {});

}  // namespace gsi

#endif  // GSI_GSI_PARTITION_H_
