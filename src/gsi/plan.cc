#include "gsi/plan.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace gsi {

uint32_t JoinPlan::ColumnOf(VertexId u) const {
  for (uint32_t i = 0; i < order.size(); ++i) {
    if (order[i] == u) return i;
  }
  GSI_CHECK_MSG(false, "vertex not in plan");
  return 0;
}

std::string JoinPlan::ToString() const {
  std::string out = "order:";
  for (VertexId u : order) {
    out += " u" + std::to_string(u);
  }
  return out;
}

JoinPlan MakeJoinPlan(const Graph& query, const Graph& data,
                      const std::vector<CandidateSet>& candidates) {
  const size_t nq = query.num_vertices();
  GSI_CHECK(candidates.size() == nq);

  // score(u') = |C(u')| / deg(u') (Algorithm 2, Lines 2-3).
  std::vector<double> score(nq);
  for (VertexId u = 0; u < nq; ++u) {
    GSI_CHECK_MSG(query.degree(u) > 0, "query must be connected");
    score[u] = static_cast<double>(candidates[u].size()) /
               static_cast<double>(query.degree(u));
  }

  std::vector<bool> selected(nq, false);
  JoinPlan plan;
  plan.order.reserve(nq);

  auto apply_frequency_scaling = [&](VertexId uc) {
    // Lines 12-13: scale neighbours' scores by the adjacent edge-label
    // frequency, preferring extension through rare labels.
    for (const Neighbor& n : query.neighbors(uc)) {
      score[n.v] *= static_cast<double>(
          std::max<size_t>(1, data.EdgeLabelFrequency(n.elabel)));
    }
  };

  // First vertex: global argmin score.
  VertexId first = 0;
  for (VertexId u = 1; u < nq; ++u) {
    if (score[u] < score[first]) first = u;
  }
  selected[first] = true;
  plan.order.push_back(first);
  apply_frequency_scaling(first);

  for (size_t step = 1; step < nq; ++step) {
    // Next vertex: argmin score among unselected vertices connected to Q'.
    VertexId best = kInvalidVertex;
    double best_score = std::numeric_limits<double>::infinity();
    for (VertexId u = 0; u < nq; ++u) {
      if (selected[u]) continue;
      bool connected = false;
      for (const Neighbor& n : query.neighbors(u)) {
        if (selected[n.v]) {
          connected = true;
          break;
        }
      }
      if (!connected) continue;
      if (u < nq && score[u] < best_score) {
        best_score = score[u];
        best = u;
      }
    }
    GSI_CHECK_MSG(best != kInvalidVertex, "query must be connected");

    JoinStep js;
    js.u = best;
    for (const Neighbor& n : query.neighbors(best)) {
      if (!selected[n.v]) continue;
      LinkEdge link;
      link.prev_vertex = n.v;
      link.prev_column = plan.ColumnOf(n.v);
      link.label = n.elabel;
      link.label_frequency = data.EdgeLabelFrequency(n.elabel);
      js.links.push_back(link);
    }
    // Algorithm 4 Line 1: the first edge e0 has the rarest label in G.
    std::stable_sort(js.links.begin(), js.links.end(),
                     [](const LinkEdge& a, const LinkEdge& b) {
                       return a.label_frequency < b.label_frequency;
                     });
    selected[best] = true;
    plan.order.push_back(best);
    plan.steps.push_back(std::move(js));
    apply_frequency_scaling(best);
  }
  return plan;
}

}  // namespace gsi
