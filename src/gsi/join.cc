#include "gsi/join.h"

#include <algorithm>

#include "gpusim/launch.h"
#include "gpusim/scan.h"
#include "gsi/dup_removal.h"
#include "gsi/fault.h"
#include "gsi/set_ops.h"
#include "util/check.h"

namespace gsi {
namespace {

using gpusim::Block;
using gpusim::kWarpSize;
using gpusim::Warp;

/// Charged read of row r of the intermediate table into a host vector
/// (one warp streams the row, then keeps it in shared memory).
std::vector<VertexId> ReadRow(Warp& w, const MatchTable& m, size_t r) {
  std::span<const VertexId> vals =
      w.LoadRange(m.data(), r * m.cols(), m.cols());
  w.SharedAccess(m.cols());
  return std::vector<VertexId>(vals.begin(), vals.end());
}

}  // namespace

void JoinEngine::ProcessChunk(Warp& w, Chunk& chunk, const MatchTable& m,
                              const JoinStep& step, const CandidateSet& cand,
                              gpusim::DeviceBuffer<VertexId>* gba,
                              BlockExtractionCache& cache,
                              std::vector<VertexId>& result) {
  result.clear();
  chunk.count = 0;
  if (chunk.pos_begin >= chunk.pos_end) return;

  SetOpFlags flags;
  flags.naive = options_.set_op == SetOpKind::kNaive;
  flags.write_cache = options_.write_cache;

  std::vector<VertexId> row = ReadRow(w, m, chunk.row);

  // --- First edge e0 (Algorithm 3, Lines 9-11).
  const LinkEdge& e0 = step.links[0];
  VertexId v0 = row[e0.prev_column];
  if (flags.naive) dev_->ChargeKernelLaunch();
  const std::vector<VertexId>& input =
      cache.GetSlice(w, *store_, v0, e0.label, chunk.pos_begin,
                     chunk.pos_end);
  FilterFirstEdge(w, input, row, cand, flags, gba, chunk.gba_begin, result);

  // --- Subsequent linking edges (Line 13).
  for (size_t e = 1; e < step.links.size() && !result.empty(); ++e) {
    const LinkEdge& link = step.links[e];
    VertexId ve = row[link.prev_column];
    if (flags.naive) dev_->ChargeKernelLaunch();
    if (flags.naive || !options_.load_balance) {
      // Whole-list read (batch-by-batch in the GPU-friendly mode).
      const std::vector<VertexId>& other = cache.GetSlice(
          w, *store_, ve, link.label, 0, std::numeric_limits<uint32_t>::max());
      IntersectSorted(w, result, other, flags, gba, chunk.gba_begin);
    } else {
      // Chunked rows use bounded reads so parallelizing a heavy row does
      // not re-stream whole lists.
      const std::vector<VertexId>& other = cache.GetValueRange(
          w, *store_, ve, link.label, result.front(), result.back());
      IntersectSorted(w, result, other, flags, gba, chunk.gba_begin);
    }
  }
  chunk.count = static_cast<uint32_t>(result.size());
}

Result<MatchTable> JoinEngine::StepPrealloc(const MatchTable& m,
                                            const JoinStep& step,
                                            const CandidateSet& cand) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  const LinkEdge& e0 = step.links[0];
  const size_t wpb = static_cast<size_t>(dev_->config().warps_per_block);

  // --- Algorithm 4: per-row upper bounds |N(v'_i, l0)| and their prefix
  // sum give the GBA offsets.
  auto bounds = dev_->Alloc<uint32_t>(rows);
  gpusim::Launch(*dev_, (rows + kWarpSize - 1) / kWarpSize, [&](Warp& w) {
    size_t r0 = w.global_id() * kWarpSize;
    if (r0 >= rows) return;
    size_t lanes = std::min<size_t>(kWarpSize, rows - r0);
    // Gather the e0 column of 32 consecutive rows (strided by cols).
    uint64_t idx[kWarpSize];
    VertexId vs[kWarpSize];
    for (size_t k = 0; k < lanes; ++k) {
      idx[k] = (r0 + k) * cols + e0.prev_column;
    }
    w.Gather(m.data(), std::span<const uint64_t>(idx, lanes),
             std::span<VertexId>(vs, lanes));
    for (size_t k = 0; k < lanes; ++k) {
      bounds[r0 + k] = static_cast<uint32_t>(
          store_->NeighborCountUpperBound(w, vs[k], e0.label));
    }
    w.StoreRange(bounds, r0,
                 std::span<const uint32_t>(bounds.data() + r0, lanes));
  });

  auto gba_offsets = dev_->Alloc<uint64_t>(rows + 1);
  uint64_t gba_size = gpusim::ExclusiveScan(*dev_, bounds, gba_offsets);
  auto gba = dev_->Alloc<VertexId>(gba_size);

  // --- Chunk placement: the 4-layer load-balance scheme or 1 chunk/row.
  ChunkPlan plan = PlanChunks(
      std::span<const uint32_t>(bounds.data(), rows),
      std::span<const uint64_t>(gba_offsets.data(), rows + 1),
      options_.load_balance, options_.w1,
      static_cast<uint32_t>(wpb) * kWarpSize, options_.w3);

  // --- Pass A: set operations into GBA (Algorithm 3, Lines 2-13).
  std::vector<VertexId> scratch;
  auto run_block = [&](Block& block, std::span<Chunk* const> chunks) {
    BlockExtractionCache cache(options_.duplicate_removal);
    for (size_t i = 0; i < chunks.size(); ++i) {
      Warp& w = block.warp(i % block.num_warps());
      ProcessChunk(w, *chunks[i], m, step, cand, &gba, cache, scratch);
    }
    stats_.dup_cache_hits += cache.hits();
    stats_.dup_cache_misses += cache.misses();
  };

  if (!plan.pooled.empty()) {
    // Layers 3/4: pooled chunks, 32 per block.
    std::vector<Chunk*> ptrs;
    ptrs.reserve(plan.pooled.size());
    for (Chunk& c : plan.pooled) ptrs.push_back(&c);
    size_t num_blocks = (ptrs.size() + wpb - 1) / wpb;
    gpusim::LaunchBlocks(*dev_, num_blocks, [&](Block& block) {
      size_t begin = block.id() * wpb;
      size_t count = std::min(wpb, ptrs.size() - begin);
      run_block(block,
                std::span<Chunk* const>(ptrs.data() + begin, count));
    });
  }
  if (!plan.per_block.empty()) {
    // Layer 2: one block per heavy row.
    gpusim::LaunchBlocks(*dev_, plan.per_block.size(), [&](Block& block) {
      auto& row_chunks = plan.per_block[block.id()];
      std::vector<Chunk*> ptrs;
      ptrs.reserve(row_chunks.size());
      for (Chunk& c : row_chunks) ptrs.push_back(&c);
      run_block(block, ptrs);
    });
  }
  for (auto& row_chunks : plan.huge) {
    // Layer 1: a dedicated kernel per extreme row (this is what makes a
    // too-small W1 expensive — kernel-launch overhead, Table IX).
    std::vector<Chunk*> ptrs;
    ptrs.reserve(row_chunks.size());
    for (Chunk& c : row_chunks) ptrs.push_back(&c);
    size_t num_blocks = (ptrs.size() + wpb - 1) / wpb;
    gpusim::LaunchBlocks(*dev_, num_blocks, [&](Block& block) {
      size_t begin = block.id() * wpb;
      size_t count = std::min(wpb, ptrs.size() - begin);
      run_block(block,
                std::span<Chunk* const>(ptrs.data() + begin, count));
    });
  }

  // --- Lines 14-15: prefix sum over chunk result counts sizes M'.
  // Output offsets are assigned in (row, position) order rather than the
  // pass-A layer order, so the output row order depends only on the input
  // rows, not on which load-balance layer each row landed in. The sharded
  // engine relies on this: a run over any contiguous seed slice produces
  // exactly the rows (and order) of that slice's portion of a whole run.
  std::vector<Chunk*> all = plan.AllChunks();
  std::sort(all.begin(), all.end(), [](const Chunk* a, const Chunk* b) {
    return a->row != b->row ? a->row < b->row : a->pos_begin < b->pos_begin;
  });
  stats_.total_chunks += all.size();
  auto chunk_counts = dev_->Alloc<uint32_t>(all.size());
  for (size_t i = 0; i < all.size(); ++i) chunk_counts[i] = all[i]->count;
  auto out_offsets = dev_->Alloc<uint64_t>(all.size() + 1);
  uint64_t new_rows =
      gpusim::ExclusiveScan(*dev_, chunk_counts, out_offsets);
  if (new_rows > options_.max_rows) {
    return Status::ResourceExhausted(
        "intermediate table exceeds max_rows: " + std::to_string(new_rows));
  }

  // --- Lines 16-21: link M and the buffers into M'.
  MatchTable next = MatchTable::Alloc(*dev_, new_rows, cols + 1);
  gpusim::Launch(*dev_, std::max<size_t>(1, all.size()), [&](Warp& w) {
    size_t i = w.global_id();
    if (i >= all.size()) return;
    const Chunk& c = *all[i];
    if (c.count == 0) return;
    std::vector<VertexId> row = ReadRow(w, m, c.row);
    std::span<const VertexId> buf = w.LoadRange(gba, c.gba_begin, c.count);
    uint64_t out = out_offsets[i];
    for (size_t k = 0; k < c.count; ++k) {
      for (size_t j = 0; j < cols; ++j) next.Set(out + k, j, row[j]);
      next.Set(out + k, cols, buf[k]);
    }
    // The chunk's output region is contiguous: one coalesced streaming
    // store for count * (cols+1) ids.
    w.ChargeStoreTransactions(gpusim::Device::RangeTransactions(
        next.data().AddressOf(out * (cols + 1)),
        static_cast<uint64_t>(c.count) * (cols + 1) * sizeof(VertexId)));
    w.SharedAccess(static_cast<uint64_t>(c.count) * (cols + 1));
  });
  return next;
}

Result<MatchTable> JoinEngine::StepTwoStep(const MatchTable& m,
                                           const JoinStep& step,
                                           const CandidateSet& cand) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();

  auto counts = dev_->Alloc<uint32_t>(rows);
  std::vector<Chunk> chunks(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    chunks[i] = Chunk{i, 0, std::numeric_limits<uint32_t>::max(), 0, 0};
  }

  // --- Step 1: count valid join results (the join runs in full, results
  // are discarded).
  std::vector<VertexId> scratch;
  BlockExtractionCache no_cache(/*enabled=*/false);
  gpusim::Launch(*dev_, std::max<size_t>(1, rows), [&](Warp& w) {
    size_t i = w.global_id();
    if (i >= rows) return;
    ProcessChunk(w, chunks[i], m, step, cand, /*gba=*/nullptr, no_cache,
                 scratch);
    w.Store(counts, i, chunks[i].count);
  });

  auto out_offsets = dev_->Alloc<uint64_t>(rows + 1);
  uint64_t new_rows = gpusim::ExclusiveScan(*dev_, counts, out_offsets);
  if (new_rows > options_.max_rows) {
    return Status::ResourceExhausted(
        "intermediate table exceeds max_rows: " + std::to_string(new_rows));
  }

  // --- Step 2: compute the very same join again and write results to the
  // pre-computed addresses (Figure 3b).
  MatchTable next = MatchTable::Alloc(*dev_, new_rows, cols + 1);
  gpusim::Launch(*dev_, std::max<size_t>(1, rows), [&](Warp& w) {
    size_t i = w.global_id();
    if (i >= rows) return;
    ProcessChunk(w, chunks[i], m, step, cand, /*gba=*/nullptr, no_cache,
                 scratch);
    if (scratch.empty()) return;
    std::vector<VertexId> row = ReadRow(w, m, i);
    uint64_t out = out_offsets[i];
    for (size_t k = 0; k < scratch.size(); ++k) {
      for (size_t j = 0; j < cols; ++j) next.Set(out + k, j, row[j]);
      next.Set(out + k, cols, scratch[k]);
    }
    w.ChargeStoreTransactions(gpusim::Device::RangeTransactions(
        next.data().AddressOf(out * (cols + 1)),
        scratch.size() * (cols + 1) * sizeof(VertexId)));
  });
  stats_.total_chunks += rows;
  return next;
}

MatchTable JoinEngine::SeedTable(const JoinPlan& plan,
                                 const std::vector<CandidateSet>& candidates,
                                 size_t seed_begin, size_t seed_end) {
  stats_ = JoinStats();
  GSI_CHECK(!plan.order.empty());
  const CandidateSet& seed = candidates[plan.order[0]];
  seed_end = std::min(seed_end, seed.size());
  GSI_CHECK(seed_begin <= seed_end);
  std::vector<VertexId> column(seed.list().data() + seed_begin,
                               seed.list().data() + seed_end);
  MatchTable m = MatchTable::FromColumn(*dev_, column);
  gpusim::Launch(*dev_, std::max<size_t>(1, (column.size() + 1023) / 1024),
                 [&](Warp& w) {
                   size_t begin = w.global_id() * 1024;
                   if (begin >= column.size()) return;
                   size_t len = std::min<size_t>(1024, column.size() - begin);
                   w.LoadRange(seed.list(), seed_begin + begin, len);
                   w.StoreRange(m.data(), begin,
                                std::span<const VertexId>(
                                    m.data().data() + begin, len));
                 });
  stats_.peak_rows = m.rows();
  return m;
}

Result<MatchTable> JoinEngine::RunSteps(
    const JoinPlan& plan, const std::vector<CandidateSet>& candidates,
    MatchTable m, size_t first_step, size_t last_step) {
  last_step = std::min(last_step, plan.steps.size());
  stats_.peak_rows = std::max(stats_.peak_rows, m.rows());
  // Fail fast on a device that already tripped (e.g. during seeding or an
  // earlier stage) — the table built so far is considered lost.
  if (Status h = CheckDeviceHealthy(*dev_, "join"); !h.ok()) return h;
  const obs::DeviceCycleClock clock(*dev_);
  for (size_t s = first_step; s < last_step; ++s) {
    const JoinStep& step = plan.steps[s];
    GSI_CHECK_MSG(!step.links.empty(), "join step without linking edges");
    obs::ScopedSpan span(trace_, "join_step", clock);
    span.AddAttr("step", static_cast<uint64_t>(s));
    span.AddAttr("query_vertex", static_cast<uint64_t>(step.u));
    span.AddAttr("rows_in", static_cast<uint64_t>(m.rows()));
    Result<MatchTable> next =
        options_.output_scheme == OutputScheme::kPreallocCombine
            ? StepPrealloc(m, step, candidates[step.u])
            : StepTwoStep(m, step, candidates[step.u]);
    if (!next.ok()) return next.status();
    // Step boundary: a fault that tripped inside this step's kernels is
    // detected here and the partial table discarded (fail-stop model).
    if (Status h = CheckDeviceHealthy(*dev_, "join_step"); !h.ok()) return h;
    m = std::move(next.value());
    span.AddAttr("rows_out", static_cast<uint64_t>(m.rows()));
    ++stats_.iterations;
    stats_.peak_rows = std::max(stats_.peak_rows, m.rows());
    if (m.rows() == 0) {
      // No partial matches survive; the final answer is empty, but the
      // table must still have one column per query vertex.
      return MatchTable::Alloc(*dev_, 0, plan.order.size());
    }
  }
  stats_.final_rows = m.rows();
  return m;
}

Result<MatchTable> JoinEngine::Run(
    const JoinPlan& plan, const std::vector<CandidateSet>& candidates,
    size_t seed_begin, size_t seed_end) {
  MatchTable m = SeedTable(plan, candidates, seed_begin, seed_end);
  return RunSteps(plan, candidates, std::move(m), 0, plan.steps.size());
}

}  // namespace gsi
