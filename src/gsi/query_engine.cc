#include "gsi/query_engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <utility>

#include "util/percentile.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gsi {

QueryEngine::QueryEngine(const Graph& data, GsiOptions options)
    : data_(&data), options_(options) {
  init_status_ = ValidateGsiOptions(options);
  if (!init_status_.ok()) return;  // Run/RunBatch report the error.
  build_dev_ = std::make_unique<gpusim::Device>(options.device);
  store_ =
      BuildStore(*build_dev_, data, options.join.storage, options.join.gpn);
  filter_ = std::make_unique<FilterContext>(*build_dev_, data, options.filter);
}

Status QueryEngine::ValidateRequest(const ExecRequest& req) const {
  if (!init_status_.ok()) return init_status_;
  if (req.query == nullptr) {
    return Status::InvalidArgument("ExecRequest.query must be set");
  }
  const int targets = (req.devices.empty() ? 0 : 1) +
                      (req.partitioned != nullptr ? 1 : 0) +
                      (req.replicated != nullptr ? 1 : 0);
  if (targets > 1) {
    return Status::InvalidArgument(
        "ExecRequest names more than one execution target (set at most one "
        "of devices / partitioned / replicated)");
  }
  if (req.replicated != nullptr && req.selection == nullptr) {
    return Status::InvalidArgument(
        "ExecRequest.replicated requires a replica selection");
  }
  if (req.selection != nullptr && req.replicated == nullptr) {
    return Status::InvalidArgument(
        "ExecRequest.selection is set but no replicated target is");
  }
  if (req.partitioned != nullptr) {
    if (&req.partitioned->data() != data_) {
      return Status::InvalidArgument(
          "PartitionedGraph was built over a different data graph");
    }
    if (!(req.partitioned->options() == options_)) {
      // Divergent tuning (signature width, join order inputs, chunking...)
      // would execute fine but silently break the documented bit-identical
      // parity across targets, so reject it up front.
      return Status::InvalidArgument(
          "PartitionedGraph was built with different GsiOptions than this "
          "engine");
    }
  }
  if (req.replicated != nullptr) {
    if (&req.replicated->data() != data_) {
      return Status::InvalidArgument(
          "ReplicatedGraph was built over a different data graph");
    }
    if (!(req.replicated->options() == options_)) {
      return Status::InvalidArgument(
          "ReplicatedGraph was built with different GsiOptions than this "
          "engine");
    }
  }
  return Status::Ok();
}

Result<QueryResult> QueryEngine::Execute(const ExecRequest& req) const {
  if (Status v = ValidateRequest(req); !v.ok()) return v;
  if (req.replicated != nullptr) {
    return ExecuteQueryReplicated(*req.replicated, *req.selection, *req.query,
                                  req.trace);
  }
  if (req.partitioned != nullptr) {
    return ExecuteQueryPartitioned(*req.partitioned, *req.query, req.trace);
  }
  if (!req.devices.empty()) {
    return ExecuteQuerySharded(req.devices, *data_, *store_, *filter_,
                               options_, req.shard, *req.query, req.trace);
  }
  gpusim::Device dev(options_.device);
  return ExecuteQuery(dev, *data_, *store_, *filter_, options_, *req.query,
                      req.trace);
}

Result<PagedQueryResult> QueryEngine::ExecutePaged(
    const ExecRequest& req) const {
  if (Status v = ValidateRequest(req); !v.ok()) return v;
  if (req.replicated != nullptr) {
    return ExecuteQueryReplicatedPaged(*req.replicated, *req.selection,
                                       *req.query, req.trace);
  }
  if (req.partitioned != nullptr) {
    return ExecuteQueryPartitionedPaged(*req.partitioned, *req.query,
                                        req.trace);
  }
  if (!req.devices.empty()) {
    return ExecuteQueryShardedPaged(req.devices, *data_, *store_, *filter_,
                                    options_, req.shard, *req.query,
                                    req.trace);
  }
  // No target: the private device dies with this call, so the single-part
  // manifest is tagged not-pool-resident (ordinal -1) — consumers read it
  // from the host for free instead of re-leasing an owner.
  gpusim::Device dev(options_.device);
  Result<QueryResult> out = ExecuteQuery(dev, *data_, *store_, *filter_,
                                         options_, *req.query, req.trace);
  if (!out.ok()) return out.status();
  return ToPagedResult(std::move(out.value()), /*device_ordinal=*/-1,
                       /*fault_epoch=*/0);
}

Result<QueryResult> QueryEngine::Run(const Graph& query,
                                     const obs::TraceContext& trace) const {
  ExecRequest req;
  req.query = &query;
  req.trace = trace;
  return Execute(req);
}

Result<QueryResult> QueryEngine::RunSharded(
    const Graph& query, std::span<gpusim::Device* const> devs,
    const ShardOptions& shard_options, const obs::TraceContext& trace) const {
  if (!init_status_.ok()) return init_status_;
  if (devs.empty()) {
    // Execute treats "no devices" as the private-device target; this shim
    // keeps the historical contract that RunSharded requires a lease.
    return Status::InvalidArgument("RunSharded needs at least one device");
  }
  ExecRequest req;
  req.query = &query;
  req.devices = devs;
  req.shard = shard_options;
  req.trace = trace;
  return Execute(req);
}

Result<QueryResult> QueryEngine::RunPartitioned(
    const Graph& query, const PartitionedGraph& pg,
    const obs::TraceContext& trace) const {
  ExecRequest req;
  req.query = &query;
  req.partitioned = &pg;
  req.trace = trace;
  return Execute(req);
}

Result<QueryResult> QueryEngine::RunPartitioned(
    const Graph& query, const ReplicatedGraph& rg,
    const ReplicaSelection& sel, const obs::TraceContext& trace) const {
  ExecRequest req;
  req.query = &query;
  req.replicated = &rg;
  req.selection = &sel;
  req.trace = trace;
  return Execute(req);
}

BatchResult QueryEngine::RunBatch(std::span<const Graph> queries,
                                  const BatchOptions& options) const {
  BatchResult batch;
  batch.stats.total = queries.size();
  if (!init_status_.ok()) {
    for (size_t i = 0; i < queries.size(); ++i) {
      batch.per_query.emplace_back(init_status_);
    }
    batch.stats.failed = queries.size();
    return batch;
  }
  if (queries.empty()) return batch;

  const size_t num_workers = std::clamp<size_t>(
      options.num_threads < 1 ? 1 : static_cast<size_t>(options.num_threads),
      1, queries.size());
  batch.stats.num_workers = num_workers;

  // Workers pull query indices from a shared counter; each owns a private
  // device, so all simulated costs of query i land in slot i's stats.
  std::vector<std::optional<Result<QueryResult>>> slots(queries.size());
  std::atomic<size_t> next{0};
  std::mutex agg_mu;
  WallTimer wall;
  {
    ThreadPool pool(num_workers);
    for (size_t t = 0; t < num_workers; ++t) {
      pool.Submit([&] {
        gpusim::Device dev(options_.device);
        for (size_t i = next.fetch_add(1); i < queries.size();
             i = next.fetch_add(1)) {
          slots[i] = ExecuteQuery(dev, *data_, *store_, *filter_, options_,
                                  queries[i]);
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        batch.stats.device += dev.stats();
      });
    }
    pool.Wait();
  }
  batch.stats.wall_ms = wall.ElapsedMs();

  std::vector<double> latencies_ms;
  latencies_ms.reserve(queries.size());
  for (std::optional<Result<QueryResult>>& slot : slots) {
    Result<QueryResult>& r = *slot;
    if (r.ok()) {
      ++batch.stats.ok;
      batch.stats.sum_simulated_ms += r->stats.total_ms;
      latencies_ms.push_back(r->stats.total_ms);
    } else {
      ++batch.stats.failed;
    }
    batch.per_query.push_back(std::move(r));
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  batch.stats.p50_simulated_ms = PercentileOfSorted(latencies_ms, 0.5);
  batch.stats.p99_simulated_ms = PercentileOfSorted(latencies_ms, 0.99);
  if (batch.stats.wall_ms > 0) {
    batch.stats.queries_per_sec = static_cast<double>(queries.size()) /
                                  (batch.stats.wall_ms / 1000.0);
    batch.stats.ok_queries_per_sec = static_cast<double>(batch.stats.ok) /
                                     (batch.stats.wall_ms / 1000.0);
  }
  return batch;
}

}  // namespace gsi
