#ifndef GSI_GSI_FILTER_H_
#define GSI_GSI_FILTER_H_

#include <unordered_map>
#include <vector>

#include "gpusim/device.h"
#include "graph/graph.h"
#include "gsi/candidates.h"
#include "storage/signature_table.h"
#include "util/status.h"

namespace gsi {

/// Candidate filtering strategies compared in Table IV.
enum class FilterStrategy {
  /// GSI's 512-bit neighbourhood signatures (Section III-A).
  kSignature,
  /// GpSM-style: vertex label + degree + per-edge-label degree counts
  /// (requires scanning adjacency — scattered, imbalanced loads).
  kLabelDegreeNeighbor,
  /// GunrockSM-style: vertex label + degree only.
  kLabelDegree,
};

struct FilterOptions {
  FilterStrategy strategy = FilterStrategy::kSignature;
  /// Signature width N in bits (Table V sweeps 64..512).
  int signature_bits = kMaxSignatureBits;
  /// Signature table layout (Figure 8c/8d): column-major coalesces.
  SignatureTable::Layout layout = SignatureTable::Layout::kColumnMajor;
  /// Materialize candidate bitsets for the join's set operations.
  bool build_bitmaps = true;

  friend bool operator==(const FilterOptions&, const FilterOptions&) = default;
};

/// Result of the filtering phase: one candidate set per query vertex.
struct FilterResult {
  std::vector<CandidateSet> candidates;  // indexed by query vertex id
  /// Size of the smallest candidate set (the metric of Tables IV/V: "the
  /// joining phase always begins from the minimum candidate set").
  size_t min_candidate_size = 0;
  VertexId min_candidate_vertex = kInvalidVertex;

  bool AnyEmpty() const {
    for (const CandidateSet& c : candidates) {
      if (c.empty()) return true;
    }
    return false;
  }
};

/// Precomputed device-side filtering context for a data graph ("we offline
/// compute all vertex signatures in G and record them in a signature
/// table"). Reused across queries.
class FilterContext {
 public:
  FilterContext(gpusim::Device& dev, const Graph& data,
                const FilterOptions& options);

  /// Runs the filtering phase for `query` (massively parallel signature
  /// comparison kernel, one warp per 32 data vertices), producing candidate
  /// sets. Costs are charged to the context's build device.
  Result<FilterResult> Filter(const Graph& query) const;

  /// Same, but charges all device work (and allocates candidate buffers)
  /// on `dev` instead of the build device. The context's precomputed tables
  /// are only read, so concurrent calls with distinct devices are safe.
  Result<FilterResult> Filter(gpusim::Device& dev, const Graph& query) const;

  /// Candidate list of one query vertex over the data-vertex range
  /// [v_begin, v_end) — the unit the sharded filter stage fans out across
  /// devices (each vertex's scan of each range is independent). With the
  /// full range this is exactly the list Filter materializes for `u`;
  /// partial ranges concatenated in order are identical, and a 32-aligned
  /// v_begin keeps even the warp/transaction layout identical to the
  /// corresponding stretch of a whole scan. v_end is clamped to |V(G)|.
  std::vector<VertexId> CandidateList(gpusim::Device& dev, const Graph& query,
                                      VertexId u, VertexId v_begin = 0,
                                      VertexId v_end = kInvalidVertex) const;

  /// Candidate lists of every query vertex over [v_begin, v_end), as one
  /// fused kernel: per-warp work and memory transactions are identical to
  /// |V(Q)| CandidateList calls, but a single launch packs all blocks onto
  /// the SMs — on a 1/K device range the makespan is ~1/K of a full scan
  /// instead of |V(Q)| under-filled launches. Used by the sharded filter.
  std::vector<std::vector<VertexId>> CandidateLists(
      gpusim::Device& dev, const Graph& query, VertexId v_begin = 0,
      VertexId v_end = kInvalidVertex) const;

  const FilterOptions& options() const { return options_; }
  /// |V(G)| of the data graph the context was built for (the bitset width
  /// CandidateSet::Create needs when materializing lists elsewhere).
  size_t num_data_vertices() const;
  const SignatureTable* signature_table() const {
    return has_signatures_ ? &signatures_ : nullptr;
  }

 private:
  void SignatureScanWarp(gpusim::Warp& w, const Signature& qsig, VertexId v0,
                         size_t lanes, std::vector<VertexId>& out) const;
  void LabelDegreeScanWarp(
      gpusim::Warp& w, Label ulabel, uint32_t udeg,
      const std::unordered_map<Label, uint32_t>& requirements,
      bool check_neighbors, VertexId v0, size_t lanes,
      std::vector<VertexId>& out) const;
  std::vector<VertexId> SignatureCandidates(gpusim::Device& dev,
                                            const Graph& query, VertexId u,
                                            VertexId v_begin,
                                            VertexId v_end) const;
  std::vector<VertexId> LabelDegreeCandidates(gpusim::Device& dev,
                                              const Graph& query, VertexId u,
                                              bool check_neighbors,
                                              VertexId v_begin,
                                              VertexId v_end) const;

  gpusim::Device* dev_;
  const Graph* data_;
  FilterOptions options_;
  bool has_signatures_ = false;
  SignatureTable signatures_;
  // Device arrays for the label/degree strategies.
  gpusim::DeviceBuffer<Label> labels_;
  gpusim::DeviceBuffer<uint32_t> degrees_;
};

}  // namespace gsi

#endif  // GSI_GSI_FILTER_H_
