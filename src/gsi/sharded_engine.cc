#include "gsi/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "gpusim/launch.h"
#include "gsi/fault.h"
#include "gsi/join.h"
#include "gsi/plan.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gsi {
namespace {

using gpusim::kWarpSize;
using gpusim::Warp;

/// Deterministic greedy list schedule of per-slice costs onto `devices`:
/// each slice goes to the least-loaded device, in slice order (the model of
/// "a device pulls the next slice when free"). Returns per-device loads.
std::vector<double> ListSchedule(std::span<const double> slice_ms,
                                 size_t devices) {
  std::vector<double> load(devices, 0);
  for (double ms : slice_ms) {
    *std::min_element(load.begin(), load.end()) += ms;
  }
  return load;
}

}  // namespace

Result<FilterResult> RunFilterStageSharded(
    std::span<gpusim::Device* const> devs, const FilterContext& filter,
    const Graph& query, QueryStats& stats, double* parallel_ms,
    const obs::TraceContext& trace) {
  GSI_CHECK_MSG(!devs.empty(), "sharded filter needs at least one device");
  gpusim::Device& primary = *devs[0];
  if (devs.size() == 1) {
    Result<FilterResult> out =
        RunFilterStage(primary, filter, query, stats, trace);
    if (out.ok() && parallel_ms != nullptr) {
      *parallel_ms = stats.filter.SimulatedMs(primary.config());
    }
    return out;
  }
  if (query.num_vertices() == 0) {
    return Status::InvalidArgument("empty query");
  }
  if (!query.IsConnected()) {
    return Status::InvalidArgument(
        "query must be connected (run components separately)");
  }

  // --- Scan phase: device d scans the d-th slice of the data-vertex range
  // for every query vertex (the signature table is shared and read-only).
  // Slice boundaries are 32-aligned, so each range scan issues exactly the
  // warps the corresponding stretch of a whole scan would — candidate
  // values AND summed transaction counters match the single-device stage;
  // only the devices footing the bill differ.
  const size_t nu = query.num_vertices();
  const size_t num_devs = devs.size();
  const size_t n = filter.num_data_vertices();
  const size_t chunk =
      ((n + num_devs - 1) / num_devs + kWarpSize - 1) / kWarpSize * kWarpSize;
  const obs::DeviceCycleClock primary_clock(primary);
  obs::ScopedSpan filter_span(trace, "filter", primary_clock, 0);
  std::vector<std::vector<std::vector<VertexId>>> partial(num_devs);
  std::vector<gpusim::MemStats> scan_mem(num_devs);
  std::vector<gpusim::MemStats> create_mem(num_devs);
  ThreadPool pool(num_devs);  // reused across both phases
  {
    for (size_t d = 0; d < num_devs; ++d) {
      pool.Submit([&, d] {
        gpusim::Device& dev = *devs[d];
        const obs::DeviceCycleClock clock(dev);
        obs::ScopedSpan span(filter_span.context(), "shard_scan", clock,
                             static_cast<int32_t>(d));
        const gpusim::MemStats before = dev.stats();
        const size_t begin = std::min(n, d * chunk);
        const size_t end = std::min(n, begin + chunk);
        if (begin < end) {
          partial[d] = filter.CandidateLists(dev, query,
                                             static_cast<VertexId>(begin),
                                             static_cast<VertexId>(end));
        } else {
          partial[d].resize(nu);
        }
        scan_mem[d] = dev.stats() - before;
      });
    }
    pool.Wait();
  }
  // Phase barrier: a shard device that tripped mid-scan invalidates its
  // slice of every candidate list, so the whole phase fails over.
  for (size_t d = 0; d < num_devs; ++d) {
    if (Status h = CheckDeviceHealthy(*devs[d], "shard_scan"); !h.ok()) {
      return h;
    }
  }

  // --- Create phase: per-vertex candidate buffers (upload + bitset
  // kernel) from the range-concatenated lists (ascending ranges of
  // ascending ids: already sorted), round-robin across devices. The
  // buffers are valid on any device — the join charges its own reads.
  FilterResult result;
  result.candidates.resize(nu);
  std::vector<size_t> sizes(nu, 0);
  {
    for (size_t d = 0; d < std::min(num_devs, nu); ++d) {
      pool.Submit([&, d] {
        gpusim::Device& dev = *devs[d];
        const obs::DeviceCycleClock clock(dev);
        obs::ScopedSpan span(filter_span.context(), "shard_create", clock,
                             static_cast<int32_t>(d));
        const gpusim::MemStats before = dev.stats();
        for (VertexId u = static_cast<VertexId>(d); u < nu;
             u += static_cast<VertexId>(std::min(num_devs, nu))) {
          std::vector<VertexId> cand;
          for (size_t p = 0; p < num_devs; ++p) {
            cand.insert(cand.end(), partial[p][u].begin(),
                        partial[p][u].end());
          }
          sizes[u] = cand.size();
          result.candidates[u] = CandidateSet::Create(
              dev, u, std::move(cand), n, filter.options().build_bitmaps);
        }
        create_mem[d] = dev.stats() - before;
      });
    }
    pool.Wait();
  }
  for (size_t d = 0; d < std::min(num_devs, nu); ++d) {
    if (Status h = CheckDeviceHealthy(*devs[d], "shard_create"); !h.ok()) {
      return h;
    }
  }

  // Min-candidate bookkeeping in Filter's vertex order, so the tie-break
  // matches the single-device stage.
  result.min_candidate_size = SIZE_MAX;
  for (VertexId u = 0; u < nu; ++u) {
    if (sizes[u] < result.min_candidate_size) {
      result.min_candidate_size = sizes[u];
      result.min_candidate_vertex = u;
    }
  }

  gpusim::MemStats total;
  double max_scan_ms = 0;
  double max_create_ms = 0;
  for (size_t d = 0; d < num_devs; ++d) {
    total += scan_mem[d];
    total += create_mem[d];
    max_scan_ms =
        std::max(max_scan_ms, scan_mem[d].SimulatedMs(devs[d]->config()));
    max_create_ms =
        std::max(max_create_ms, create_mem[d].SimulatedMs(devs[d]->config()));
  }
  stats.filter = total;
  stats.min_candidate_size = result.min_candidate_size;
  // The two phases are barriers: the makespan is slowest-scan +
  // slowest-create.
  if (parallel_ms != nullptr) *parallel_ms = max_scan_ms + max_create_ms;
  return result;
}

Result<PagedQueryResult> RunJoinStageShardedPaged(
    std::span<gpusim::Device* const> devs, const Graph& data,
    const NeighborStore& store, const GsiOptions& options,
    const ShardOptions& shard_options, const Graph& query,
    FilterResult filtered, QueryStats stats, const obs::TraceContext& trace) {
  GSI_CHECK_MSG(!devs.empty(), "sharded join needs at least one device");
  const size_t min_work = std::max<size_t>(1, shard_options.min_rows_per_shard);
  const size_t oversubscribe =
      std::max<size_t>(1, shard_options.slices_per_device);

  // Degenerate shapes take the single-device path; RunJoinStage recomputes
  // the plan, which is deterministic.
  if (devs.size() < 2 || query.num_vertices() < 2 || filtered.AnyEmpty()) {
    Result<QueryResult> one = RunJoinStage(*devs[0], data, store, options,
                                           query, std::move(filtered), stats,
                                           trace);
    if (!one.ok()) return one.status();
    return ToPagedResult(std::move(one.value()), *devs[0]);
  }

  gpusim::Device& primary = *devs[0];
  const obs::DeviceCycleClock primary_clock(primary);
  obs::ScopedSpan join_span(trace, "join", primary_clock, 0);
  const JoinPlan plan = MakeJoinPlan(query, data, filtered.candidates);
  // A step distributes only when its predicted volume fills every slice.
  const uint64_t volume_floor =
      static_cast<uint64_t>(devs.size()) * oversubscribe * min_work;

  // --- Step-at-a-time distributed join. Each iteration either runs the
  // step on the primary device (narrow / cheap steps, where scatter and
  // gather would cost more than they parallelize) or distributes it:
  // partition the table's rows into contiguous weight-balanced slices,
  // scatter each slice to a pulled device, run the one step there, stream
  // the partial result back, and gather in slice order. The gathered table
  // is bit-identical to a whole-table step (output rows are emitted in
  // input-row order), so the loop invariant — `m` equals the single-device
  // intermediate table — holds at every boundary.
  JoinEngine serial_engine(&primary, &store, options.join);
  serial_engine.set_trace(join_span.context());
  gpusim::MemStats serial_total;    // seed and serial steps (primary only)
  gpusim::MemStats join_counters;   // everything, summed across devices
  JoinStats detail;
  std::vector<double> device_loads(devs.size(), 0);  // modeled, see below
  double makespan_ms = 0;
  size_t shards_used = 1;
  // Read once under the thread-safe static initializer: getenv from
  // concurrent sharded joins would be an MT-unsafe call per query.
  static const bool debug = std::getenv("GSI_SHARD_DEBUG") != nullptr;
  ThreadPool pool(devs.size());  // reused by every fan-out below

  /// Per-row workload estimate for step `k` over the current table: the
  /// first-edge upper bound |N(v'_i, l0)| — the value PlanChunks balances
  /// chunks by (Algorithm 4). The probes are row-parallel, so wide tables
  /// fan the sizing kernel itself across the devices; the cost lands in
  /// join_counters and the makespan (max over devices) in makespan_ms.
  auto parallel_bounds = [&](const MatchTable& m,
                             size_t k) -> std::vector<uint64_t> {
    const size_t rows = m.rows();
    const size_t cols = m.cols();
    const LinkEdge& e0 = plan.steps[k].links[0];
    std::vector<uint64_t> weights(rows);
    const size_t workers = rows >= 4 * kWarpSize ? devs.size() : 1;
    const size_t chunk =
        ((rows + workers - 1) / workers + kWarpSize - 1) / kWarpSize *
        kWarpSize;
    std::vector<gpusim::MemStats> deltas(workers);
    auto scan_range = [&](gpusim::Device& dev, size_t begin, size_t end) {
      if (begin >= end) return;
      gpusim::Launch(dev, (end - begin + kWarpSize - 1) / kWarpSize,
                     [&](Warp& w) {
                       size_t r0 = begin + w.global_id() * kWarpSize;
                       if (r0 >= end) return;
                       size_t lanes = std::min<size_t>(kWarpSize, end - r0);
                       uint64_t idx[kWarpSize];
                       VertexId vs[kWarpSize];
                       for (size_t k2 = 0; k2 < lanes; ++k2) {
                         idx[k2] = (r0 + k2) * cols + e0.prev_column;
                       }
                       w.Gather(m.data(),
                                std::span<const uint64_t>(idx, lanes),
                                std::span<VertexId>(vs, lanes));
                       for (size_t k2 = 0; k2 < lanes; ++k2) {
                         weights[r0 + k2] = store.NeighborCountUpperBound(
                             w, vs[k2], e0.label);
                       }
                     });
    };
    {
      for (size_t d = 0; d < workers; ++d) {
        pool.Submit([&, d] {
          gpusim::Device& dev = *devs[d];
          const gpusim::MemStats before = dev.stats();
          scan_range(dev, std::min(rows, d * chunk),
                     std::min(rows, (d + 1) * chunk));
          deltas[d] = dev.stats() - before;
        });
      }
      pool.Wait();
    }
    double max_ms = 0;
    for (size_t d = 0; d < workers; ++d) {
      join_counters += deltas[d];
      max_ms = std::max(max_ms, deltas[d].SimulatedMs(devs[d]->config()));
    }
    makespan_ms += max_ms;
    return weights;
  };

  gpusim::MemStats mark = primary.stats();
  ResultManifest manifest;  // filled by the final step
  bool paged_final = false;  // final step was distributed: partials kept
  MatchTable m = serial_engine.SeedTable(plan, filtered.candidates);
  for (size_t k = 0; k < plan.steps.size() && m.rows() > 0; ++k) {
    // Close the current primary-serial segment before any parallel work.
    serial_total += primary.stats() - mark;

    bool distributed = false;
    std::vector<ShardRange> slices;
    if (m.rows() >= 2) {
      std::vector<uint64_t> weights = parallel_bounds(m, k);
      // The sizing kernels fanned out over the devices; a trip there must
      // surface even when the step then runs serially on the primary.
      for (gpusim::Device* d : devs) {
        if (Status h = CheckDeviceHealthy(*d, "shard_sizing"); !h.ok()) {
          return h;
        }
      }
      uint64_t predicted = 0;
      for (uint64_t b : weights) predicted += b;
      // Distribute when the step's predicted volume fills every slice AND
      // dwarfs the table being scattered (per-step fan-out has fixed
      // costs: sizing, under-filled kernels, the lost cross-slice
      // extraction sharing).
      if (predicted >= volume_floor &&
          predicted >= 4 * static_cast<uint64_t>(m.rows()) * m.cols()) {
        slices = PartitionByWorkload(
            weights, std::min(devs.size() * oversubscribe, m.rows()));
        distributed = slices.size() >= 2;
      }
    }
    if (debug) {
      std::fprintf(stderr, "[shard] step=%zu rows=%zu %s (%zu slices)\n", k,
                   m.rows(), distributed ? "distributed" : "serial",
                   slices.size());
    }
    mark = primary.stats();
    if (!distributed) {
      Result<MatchTable> next = serial_engine.RunSteps(
          plan, filtered.candidates, std::move(m), k, k + 1);
      if (!next.ok()) return next.status();
      m = std::move(next.value());
      continue;
    }

    // Fan-out: device threads pull slices until none remain. A slice's
    // simulated cost depends only on the (identical) device config, never
    // on which device pulled it, so the wall-clock assignment cannot
    // perturb results; the modeled schedule below is deterministic.
    const size_t workers = std::min(devs.size(), slices.size());
    shards_used = std::max(shards_used, workers);
    // Which device pulls which slice is wall-clock scheduling, so the
    // slice spans' device attribution is NOT deterministic on this path
    // (unlike the partitioned/replicated paths, where work is pinned).
    obs::ScopedSpan step_span(join_span.context(), "join_step_distributed",
                              primary_clock);
    step_span.AddAttr("step", static_cast<uint64_t>(k));
    step_span.AddAttr("slices", static_cast<uint64_t>(slices.size()));
    std::vector<std::optional<Result<MatchTable>>> tables(slices.size());
    std::vector<gpusim::MemStats> slice_mem(slices.size());
    std::vector<JoinStats> slice_join(slices.size());
    std::vector<gpusim::Device*> slice_dev(slices.size(), nullptr);
    std::atomic<size_t> next_slice{0};
    {
      for (size_t d = 0; d < workers; ++d) {
        pool.Submit([&, d] {
          gpusim::Device& dev = *devs[d];
          const obs::DeviceCycleClock clock(dev);
          for (size_t i = next_slice.fetch_add(1); i < slices.size();
               i = next_slice.fetch_add(1)) {
            slice_dev[i] = &dev;
            obs::ScopedSpan slice_span(step_span.context(), "shard_slice",
                                       clock, static_cast<int32_t>(d));
            slice_span.AddAttr("slice", static_cast<uint64_t>(i));
            slice_span.AddAttr(
                "rows_in",
                static_cast<uint64_t>(slices[i].end - slices[i].begin));
            const gpusim::MemStats before = dev.stats();
            // Scatter in (host-mediated, uncharged like any upload), one
            // step on this device, partial table back via the gather
            // below.
            MatchTable part = MatchTable::CopySlice(
                dev, m, slices[i].begin, slices[i].end - slices[i].begin);
            JoinEngine join(&dev, &store, options.join);
            tables[i] = join.RunSteps(plan, filtered.candidates,
                                      std::move(part), k, k + 1);
            slice_join[i] = join.stats();
            slice_mem[i] = dev.stats() - before;
          }
        });
      }
      pool.Wait();
    }
    for (size_t i = 0; i < slices.size(); ++i) {
      if (!tables[i]->ok()) return tables[i]->status();
    }

    // Deterministic greedy list schedule of the slice costs onto the
    // devices — the same modeling ScheduleBlocks applies to blocks on SMs;
    // wall-clock thread interleaving never leaks into simulated time.
    std::vector<double> slice_ms(slices.size());
    size_t step_peak_rows = 0;  // slices are concurrently resident
    for (size_t i = 0; i < slices.size(); ++i) {
      join_counters += slice_mem[i];
      slice_ms[i] = slice_mem[i].SimulatedMs(primary.config());
      step_peak_rows += slice_join[i].peak_rows;
      detail.total_chunks += slice_join[i].total_chunks;
      detail.dup_cache_hits += slice_join[i].dup_cache_hits;
      detail.dup_cache_misses += slice_join[i].dup_cache_misses;
    }
    detail.peak_rows = std::max(detail.peak_rows, step_peak_rows);
    const std::vector<double> loads = ListSchedule(slice_ms, workers);
    double step_makespan = 0;
    for (size_t d = 0; d < loads.size(); ++d) {
      step_makespan = std::max(step_makespan, loads[d]);
      device_loads[d] += loads[d];
    }
    makespan_ms += step_makespan;
    if (debug) {
      std::fprintf(stderr, "[shard]   step=%zu makespan=%.3f sum=%.3f\n", k,
                   step_makespan,
                   std::accumulate(slice_ms.begin(), slice_ms.end(), 0.0));
    }
    detail.iterations += 1;

    if (k + 1 == plan.steps.size()) {
      // Final step: nothing downstream needs the whole table on one
      // device, so the partial tables stay where the slices ran and the
      // gather degenerates to recording the slice order in the manifest.
      // (Which device owns a part follows the wall-clock slice pulls —
      // like the slice spans' attribution — but the segment order, and
      // hence every page, is the deterministic slice order.)
      manifest.set_cols(plan.order.size());
      for (size_t i = 0; i < tables.size(); ++i) {
        MatchTable part_table = std::move(tables[i]->value());
        const size_t part_rows = part_table.rows();
        if (part_rows == 0) continue;
        const size_t part =
            manifest.AddPart(std::move(part_table), *slice_dev[i]);
        manifest.AddSegment(part, 0, part_rows);
      }
      detail.peak_rows = std::max(detail.peak_rows, manifest.rows());
      paged_final = true;
      m = MatchTable();
      mark = primary.stats();
      break;
    }

    // Gather in slice order on the primary's address space (bulk
    // host-mediated concatenation) — the next step consumes the whole
    // table.
    std::vector<const MatchTable*> parts;
    parts.reserve(slices.size());
    for (auto& t : tables) parts.push_back(&t->value());
    m = MatchTable::ConcatRows(primary, parts);
    detail.peak_rows = std::max<size_t>(detail.peak_rows, m.rows());
    mark = primary.stats();
  }
  serial_total += primary.stats() - mark;
  // Final boundary: the gather/concat ran on the primary after the last
  // per-slice check.
  if (Status h = CheckDeviceHealthy(primary, "join_gather"); !h.ok()) {
    return h;
  }

  if (!paged_final) {
    if (m.rows() == 0 && m.cols() != plan.order.size()) {
      // A distributed step emptied the table mid-join: the final answer is
      // empty but must still be full-width, exactly like RunSteps' early
      // exit.
      m = MatchTable::Alloc(primary, 0, plan.order.size());
    }
    // The final step ran serially: the whole table already lives on the
    // primary; the manifest is the degenerate one-part form.
    manifest = ResultManifest::FromWholeTable(std::move(m), primary);
  }

  // --- Roll-up: counters sum total work across devices; the time is the
  // parallel makespan (serial segments on the primary + the modeled slice
  // schedules + the gathers).
  const JoinStats serial_detail = serial_engine.stats();
  detail.iterations += serial_detail.iterations;
  detail.peak_rows = std::max(detail.peak_rows, serial_detail.peak_rows);
  detail.total_chunks += serial_detail.total_chunks;
  detail.dup_cache_hits += serial_detail.dup_cache_hits;
  detail.dup_cache_misses += serial_detail.dup_cache_misses;
  detail.final_rows = manifest.rows();

  join_counters += serial_total;

  PagedQueryResult out;
  out.stats = stats;
  out.manifest = std::move(manifest);
  out.column_to_query = plan.order;
  out.stats.join = join_counters;
  out.stats.join_detail = detail;
  out.stats.filter_ms = out.stats.filter.SimulatedMs(primary.config());
  out.stats.join_ms =
      serial_total.SimulatedMs(primary.config()) + makespan_ms;
  if (debug) {
    std::fprintf(stderr, "[shard] serial=%.3f parallel=%.3f\n",
                 serial_total.SimulatedMs(primary.config()), makespan_ms);
  }
  out.stats.total_ms = out.stats.filter_ms + out.stats.join_ms;
  out.stats.num_matches = out.manifest.rows();
  out.stats.shards_used = shards_used;
  if (shards_used > 1) {
    double max_load = 0;
    double sum_load = 0;
    size_t active = 0;
    for (double l : device_loads) {
      max_load = std::max(max_load, l);
      sum_load += l;
      if (l > 0) ++active;
    }
    out.stats.shard_skew =
        sum_load > 0 && active > 0
            ? max_load / (sum_load / static_cast<double>(active))
            : 0;
  }
  return out;
}

Result<QueryResult> RunJoinStageSharded(std::span<gpusim::Device* const> devs,
                                        const Graph& data,
                                        const NeighborStore& store,
                                        const GsiOptions& options,
                                        const ShardOptions& shard_options,
                                        const Graph& query,
                                        FilterResult filtered,
                                        QueryStats stats,
                                        const obs::TraceContext& trace) {
  Result<PagedQueryResult> paged = RunJoinStageShardedPaged(
      devs, data, store, options, shard_options, query, std::move(filtered),
      std::move(stats), trace);
  if (!paged.ok()) return paged.status();
  // Materializing is host-mediated row concatenation (uncharged, exactly
  // the movement the historical eager gather performed), so this wrapper is
  // counter- and table-bit-identical to it.
  return ToQueryResult(std::move(paged.value()), *devs[0]);
}

Result<PagedQueryResult> ExecuteQueryShardedPaged(
    std::span<gpusim::Device* const> devs, const Graph& data,
    const NeighborStore& store, const FilterContext& filter,
    const GsiOptions& options, const ShardOptions& shard_options,
    const Graph& query, const obs::TraceContext& trace) {
  GSI_CHECK_MSG(!devs.empty(), "sharded execution needs at least one device");
  WallTimer wall;
  const obs::DeviceCycleClock primary_clock(*devs[0]);
  obs::ScopedSpan span(trace, "execute_sharded", primary_clock, 0);
  span.AddAttr("devices", static_cast<uint64_t>(devs.size()));
  QueryStats stats;
  double filter_parallel_ms = 0;
  Result<FilterResult> filtered = RunFilterStageSharded(
      devs, filter, query, stats, &filter_parallel_ms, span.context());
  if (!filtered.ok()) return filtered.status();
  Result<PagedQueryResult> out = RunJoinStageShardedPaged(
      devs, data, store, options, shard_options, query,
      std::move(filtered.value()), stats, span.context());
  if (out.ok()) {
    // The join stage derives filter_ms from the summed counters; restore
    // the fanned-out filter's makespan so total_ms reflects wall-parallel
    // devices, not serialized work.
    out->stats.filter_ms = filter_parallel_ms;
    out->stats.total_ms = out->stats.filter_ms + out->stats.join_ms;
    out->stats.wall_ms = wall.ElapsedMs();
  }
  return out;
}

Result<QueryResult> ExecuteQuerySharded(std::span<gpusim::Device* const> devs,
                                        const Graph& data,
                                        const NeighborStore& store,
                                        const FilterContext& filter,
                                        const GsiOptions& options,
                                        const ShardOptions& shard_options,
                                        const Graph& query,
                                        const obs::TraceContext& trace) {
  Result<PagedQueryResult> paged = ExecuteQueryShardedPaged(
      devs, data, store, filter, options, shard_options, query, trace);
  if (!paged.ok()) return paged.status();
  return ToQueryResult(std::move(paged.value()), *devs[0]);
}

}  // namespace gsi
