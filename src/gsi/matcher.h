#ifndef GSI_GSI_MATCHER_H_
#define GSI_GSI_MATCHER_H_

#include <memory>
#include <vector>

#include "gpusim/device.h"
#include "graph/graph.h"
#include "gsi/filter.h"
#include "gsi/join.h"
#include "gsi/match_table.h"
#include "gsi/plan.h"
#include "obs/trace.h"
#include "storage/neighbor_store.h"
#include "util/status.h"

namespace gsi {

/// Top-level configuration of a GSI matcher.
struct GsiOptions {
  FilterOptions filter;
  JoinOptions join;
  gpusim::DeviceConfig device;
  /// Per-device byte budget for the halo cache over remote N(v, l) lists
  /// (gsi/halo_cache.h). 0 disables caching; the partitioned and replicated
  /// build paths otherwise attach one cache per device and count its bytes
  /// against resident memory. Never affects match tables — only when
  /// interconnect transactions are charged.
  uint64_t halo_budget_bytes = 0;

  friend bool operator==(const GsiOptions&, const GsiOptions&) = default;
};

/// Returns the paper's two configurations: GSI (no optimizations) and
/// GSI-opt (load balance + duplicate removal), Section VII.
GsiOptions DefaultGsiOptions();
GsiOptions GsiOptOptions();
/// GSI-: traditional CSR, two-step output, naive set operations (the
/// baseline column of Table VI).
GsiOptions GsiMinusOptions();

/// Validates user-supplied tuning values before they reach code that treats
/// violations as programming errors (PlanChunks aborts on W1/W3 misuse,
/// PCSR build aborts on a bad group size). Checked up front by GsiMatcher
/// and QueryEngine so bad configurations surface as InvalidArgument.
Status ValidateGsiOptions(const GsiOptions& options);

/// Per-query measurements (all "time" values are simulated device time; see
/// gpusim::DeviceConfig for the cost model).
struct QueryStats {
  gpusim::MemStats filter;  ///< counters of the filtering phase
  gpusim::MemStats join;    ///< counters of the joining phase
  double filter_ms = 0;
  double join_ms = 0;
  double total_ms = 0;
  double wall_ms = 0;       ///< host wall time of the simulation
  size_t num_matches = 0;
  size_t min_candidate_size = 0;
  JoinStats join_detail;

  // --- Multi-device execution (sharded_engine.h); single-device runs keep
  // the defaults. When shards_used > 1, `join` sums the counters of every
  // device, while join_ms is the parallel makespan (serial segments plus
  // the modeled schedule of distributed work).
  size_t shards_used = 1;   ///< devices the join phase actually ran on
  double shard_skew = 0;    ///< max / mean per-device distributed-join time

  // --- Partitioned data-graph execution (gsi/partition.h and
  // gsi/replication.h); zeros on the full-replica paths. Counters sum
  // every partition's devices; join_ms is the parallel makespan (slowest
  // partition/lane plus the merge).
  size_t partitions_used = 0;  ///< partitions that executed join work
  uint64_t remote_probes = 0;  ///< N(v, l) lookups served by a peer device
  uint64_t halo_bytes = 0;     ///< bytes that crossed the interconnect
  double partition_skew = 0;   ///< max / mean per-partition join time
  /// Remote probes answered from the per-device halo cache instead of the
  /// interconnect (gsi/halo_cache.h); zeros when halo_budget_bytes == 0.
  uint64_t halo_cache_hits = 0;
  uint64_t halo_cache_bytes = 0;  ///< bytes those hits served locally

  // --- Replicated partitioned execution (gsi/replication.h); zeros
  // elsewhere. A replicated query maps its K partitions onto the devices of
  // one replica selection (several partitions may share a device), so
  // `replica_lanes` < partitions_used means the query left devices idle for
  // concurrent queries — the R-lane effect.
  size_t replica_lanes = 0;         ///< distinct devices the selection used
  /// Peer-partition probes served by a replica co-resident on the probing
  /// device — work that replication converted from interconnect traffic
  /// into local reads (not counted in remote_probes).
  uint64_t co_located_probes = 0;

  // --- Fault tolerance (service retry layer; see service/query_service.h).
  // Single-attempt paths keep the defaults.
  size_t attempts = 1;    ///< execution attempts (1 = succeeded first try)
  /// Simulated retry backoff (already included in total_ms): capped
  /// exponential, a deterministic model of the wait a real client would
  /// insert between attempts — no wall clock is read.
  double backoff_ms = 0;
};

/// Result of one subgraph-isomorphism query.
struct QueryResult {
  /// Final match table; column j binds query vertex `column_to_query[j]`.
  MatchTable table;
  std::vector<VertexId> column_to_query;
  QueryStats stats;

  size_t num_matches() const { return table.rows(); }

  /// Match r as a vector indexed by query vertex id.
  std::vector<VertexId> MatchInQueryOrder(size_t r) const;
  /// Bit-identical comparison: same dimensions, same column mapping, same
  /// value in every cell (NOT just the same match set) — the guarantee the
  /// sharded engine makes against single-device execution.
  bool TableEquals(const QueryResult& other) const;
  /// All matches, each indexed by query vertex id, sorted lexicographically
  /// (canonical form for comparisons across engines).
  std::vector<std::vector<VertexId>> AllMatchesSorted() const;
};

/// Stage 1 of query execution: validates `query` (non-empty, connected) and
/// runs the filtering phase on `dev`, recording the phase's device counters
/// and the min-candidate metric into `stats`. Exposed separately so a
/// serving layer can satisfy this stage from a cache of candidate sets and
/// still run RunJoinStage below (QueryService does exactly that).
///
/// `trace` (here and on every execution function below) is the optional
/// span-tree collector (obs/trace.h): default-constructed means tracing is
/// off and costs one null check per phase. Execution-path spans are timed
/// by the device's cycle clock, so traced runs stay deterministic.
Result<FilterResult> RunFilterStage(gpusim::Device& dev,
                                    const FilterContext& filter,
                                    const Graph& query, QueryStats& stats,
                                    const obs::TraceContext& trace = {});

/// Stage 2: joining phase over candidate sets produced by RunFilterStage
/// (or rematerialized from a FilterCache). Consumes `filtered`; `stats`
/// carries the filter-phase counters forward and is finalized (per-phase
/// simulated times, match count) into the returned result. Host wall time
/// (`stats.wall_ms`) is the caller's responsibility.
Result<QueryResult> RunJoinStage(gpusim::Device& dev, const Graph& data,
                                 const NeighborStore& store,
                                 const GsiOptions& options, const Graph& query,
                                 FilterResult filtered, QueryStats stats,
                                 const obs::TraceContext& trace = {});

/// Runs one query against prebuilt shared structures, charging every device
/// allocation and memory transaction to `dev` (filter + join contexts are
/// created per execution). `store` and `filter` are only read, so concurrent
/// calls are safe as long as each caller brings its own device — this is the
/// execution core shared by GsiMatcher (one device) and QueryEngine (one
/// device per worker thread). Equivalent to RunFilterStage + RunJoinStage.
Result<QueryResult> ExecuteQuery(gpusim::Device& dev, const Graph& data,
                                 const NeighborStore& store,
                                 const FilterContext& filter,
                                 const GsiOptions& options,
                                 const Graph& query,
                                 const obs::TraceContext& trace = {});

/// GSI: GPU-friendly subgraph isomorphism (the paper's system).
///
///   Graph data = ...;
///   GsiMatcher matcher(data);            // builds PCSR + signature table
///   auto result = matcher.Find(query);   // filtering + joining phases
///   result->num_matches();
///
/// The data graph must outlive the matcher. One matcher owns one simulated
/// device; stats accumulate across queries (use Find's per-query stats for
/// individual measurements). For concurrent multi-query execution over one
/// data graph use QueryEngine (query_engine.h).
class GsiMatcher {
 public:
  explicit GsiMatcher(const Graph& data,
                      GsiOptions options = DefaultGsiOptions());

  /// Enumerates all matches of `query` (connected, >= 1 vertex). Returns
  /// InvalidArgument without running if the matcher was constructed with
  /// invalid tuning options (see ValidateGsiOptions). The overload with a
  /// trace context records the query's span tree into it.
  Result<QueryResult> Find(const Graph& query);
  Result<QueryResult> Find(const Graph& query,
                           const obs::TraceContext& trace);

  /// Not Ok when the constructor rejected the options; Find reports it too.
  const Status& init_status() const { return init_status_; }

  gpusim::Device& device() { return *dev_; }
  /// Valid only when init_status().ok() (no structures are built for
  /// rejected options).
  const NeighborStore& store() const { return *store_; }
  const GsiOptions& options() const { return options_; }

 private:
  const Graph* data_;
  GsiOptions options_;
  Status init_status_;
  std::unique_ptr<gpusim::Device> dev_;
  std::unique_ptr<NeighborStore> store_;
  std::unique_ptr<FilterContext> filter_;
};

/// Builds the NeighborStore variant selected by `kind` (shared by GSI and
/// the GPU baselines).
std::unique_ptr<NeighborStore> BuildStore(gpusim::Device& dev,
                                          const Graph& g, StorageKind kind,
                                          int gpn);

}  // namespace gsi

#endif  // GSI_GSI_MATCHER_H_
