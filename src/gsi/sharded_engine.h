#ifndef GSI_GSI_SHARDED_ENGINE_H_
#define GSI_GSI_SHARDED_ENGINE_H_

#include <span>

#include "gpusim/device.h"
#include "graph/graph.h"
#include "gsi/filter.h"
#include "gsi/load_balance.h"
#include "gsi/matcher.h"
#include "gsi/result_manifest.h"
#include "storage/neighbor_store.h"
#include "util/status.h"

namespace gsi {

/// Tuning of the intra-query sharded execution path (Section VIII: the
/// multi-GPU design partitions one query's candidate space across devices
/// and merges partial match tables).
struct ShardOptions {
  /// Volume knob: a join step distributes across devices only when its
  /// predicted workload reaches min_rows_per_shard units per slice (i.e.
  /// devices x slices_per_device x min_rows_per_shard in total); smaller
  /// steps run on one device, where they are cheap by construction. Lower
  /// it to force sharding on tiny test workloads.
  size_t min_rows_per_shard = 64;
  /// Row slices cut per device per distributed step. 1 (default) = one
  /// weight-balanced slice per device: the lowest per-slice kernel
  /// overhead, and per-step rebalancing keeps the weights accurate. Raise
  /// it for dynamic rebalancing — devices pull many smaller slices on
  /// demand, so a mis-estimated hot slice costs one slice rather than a
  /// device's whole share — at the price of per-slice fixed costs.
  size_t slices_per_device = 1;
};

/// Filtering phase fanned out over `devs`: each query vertex's candidate
/// scan (and its buffer upload + bitset kernel) is independent, so devices
/// take vertices round-robin. The FilterResult is identical to
/// single-device RunFilterStage — only the devices footing the bill
/// differ; `stats.filter` sums all devices' counters and `parallel_ms`
/// (when non-null) receives the phase makespan (the slowest device).
Result<FilterResult> RunFilterStageSharded(
    std::span<gpusim::Device* const> devs, const FilterContext& filter,
    const Graph& query, QueryStats& stats, double* parallel_ms,
    const obs::TraceContext& trace = {});

/// Joining phase fanned out over `devs` (Section VIII): the query's
/// candidate space — the intermediate match table, starting from the seed
/// list C(order[0]) — is processed step by step. Before each step, a
/// fanned-out sizing kernel estimates every row's workload via the
/// first-edge upper bound |N(v, l0)| (the same estimate PlanChunks
/// balances chunks by). A step whose predicted volume fills every slice
/// and dwarfs the table itself is distributed: the rows are partitioned
/// into contiguous weight-balanced slices, device threads pull slices,
/// run the step, and the partial tables are concatenated back in slice
/// order; narrow or cheap steps run on devs[0], where deferring costs
/// little by construction. Rebalancing at every distributed boundary
/// means a hot row's descendants spread across slices the moment they
/// exist, instead of pinning one device.
///
/// The result is bit-identical to a single-device RunJoinStage: every
/// step emits output rows in input-row order, so concatenating contiguous
/// row slices reproduces the whole-table step row for row at each
/// boundary, and a slice's cost does not depend on which device ran it.
///
/// Stats roll-up: `stats.join` sums every device's counters (total work).
/// join_ms is the parallel makespan: the primary-serial segments plus,
/// per distributed step, a deterministic greedy list schedule of the
/// slice costs onto the devices (the same modeling ScheduleBlocks applies
/// to blocks on SMs — wall-clock thread interleaving never leaks into
/// simulated time). shards_used and shard_skew describe the fan-out.
/// Degenerate queries (one vertex, an empty candidate set, a single
/// device, or steps that never clear the volume floor) run entirely on
/// devs[0].
///
/// Note: each slice's intermediate table is bounded by
/// options.join.max_rows separately, so a query near the single-device row
/// budget can succeed sharded; the final match set is identical whenever
/// both runs succeed.
Result<QueryResult> RunJoinStageSharded(std::span<gpusim::Device* const> devs,
                                        const Graph& data,
                                        const NeighborStore& store,
                                        const GsiOptions& options,
                                        const ShardOptions& shard_options,
                                        const Graph& query,
                                        FilterResult filtered,
                                        QueryStats stats,
                                        const obs::TraceContext& trace = {});

/// The paged core RunJoinStageSharded wraps: identical execution, counters
/// and makespan, but when the FINAL join step distributes, its partial
/// tables stay on the devices that ran the slices and are returned as a
/// ResultManifest whose segments record the deterministic slice order
/// (intermediate steps still gather — the next step consumes the whole
/// table). A serial final step returns the degenerate one-part manifest on
/// devs[0]. Materializing the manifest is bit-identical to the eager
/// gather.
Result<PagedQueryResult> RunJoinStageShardedPaged(
    std::span<gpusim::Device* const> devs, const Graph& data,
    const NeighborStore& store, const GsiOptions& options,
    const ShardOptions& shard_options, const Graph& query,
    FilterResult filtered, QueryStats stats,
    const obs::TraceContext& trace = {});

/// Full sharded execution: RunFilterStageSharded then RunJoinStageSharded
/// across the same devices. With devs.size() == 1 this is exactly
/// ExecuteQuery. Each device must be used by one call at a time (lease them
/// from a DevicePool). The returned QueryResult owns its merged MatchTable
/// (no aliasing of device or engine state), and both the table and every
/// simulated counter are deterministic for a fixed (data, options, devices
/// count, query) — host thread scheduling cannot perturb them.
Result<QueryResult> ExecuteQuerySharded(std::span<gpusim::Device* const> devs,
                                        const Graph& data,
                                        const NeighborStore& store,
                                        const FilterContext& filter,
                                        const GsiOptions& options,
                                        const ShardOptions& shard_options,
                                        const Graph& query,
                                        const obs::TraceContext& trace = {});

/// Full sharded execution in manifest form (the paged join stage above
/// behind the same filter stage); ExecuteQuerySharded is this plus
/// ToQueryResult on devs[0].
Result<PagedQueryResult> ExecuteQueryShardedPaged(
    std::span<gpusim::Device* const> devs, const Graph& data,
    const NeighborStore& store, const FilterContext& filter,
    const GsiOptions& options, const ShardOptions& shard_options,
    const Graph& query, const obs::TraceContext& trace = {});

}  // namespace gsi

#endif  // GSI_GSI_SHARDED_ENGINE_H_
