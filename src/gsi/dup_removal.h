#ifndef GSI_GSI_DUP_REMOVAL_H_
#define GSI_GSI_DUP_REMOVAL_H_

#include <map>
#include <tuple>
#include <vector>

#include "gpusim/launch.h"
#include "storage/neighbor_store.h"
#include "util/common.h"

namespace gsi {

/// In-block duplicate removal (Section VI-B, Algorithm 5): warps in one
/// block whose rows need the same N(v, l) share a single global-memory
/// read through a shared-memory input buffer; only the first warp loads,
/// the others pay shared-memory traffic.
///
/// One instance lives per block per join pass; Reset() at block boundaries.
/// The cache capacity is bounded by the block's shared memory.
class BlockExtractionCache {
 public:
  /// @param enabled  disabled instances always extract (the baseline).
  /// @param capacity_bytes shared-memory budget for cached input buffers.
  explicit BlockExtractionCache(bool enabled,
                                uint64_t capacity_bytes = 32 * 1024)
      : enabled_(enabled), capacity_(capacity_bytes) {}

  /// N(v, l) slice [begin, end) (first-edge reads).
  const std::vector<VertexId>& GetSlice(gpusim::Warp& w,
                                        const NeighborStore& store,
                                        VertexId v, Label l, uint32_t begin,
                                        uint32_t end);

  /// N(v, l) values within [lo, hi] (subsequent-edge reads).
  const std::vector<VertexId>& GetValueRange(gpusim::Warp& w,
                                             const NeighborStore& store,
                                             VertexId v, Label l, VertexId lo,
                                             VertexId hi);

  /// Clears cached buffers (block boundary).
  void Reset();

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  using Key = std::tuple<VertexId, Label, uint64_t, uint64_t, bool>;

  const std::vector<VertexId>& Lookup(gpusim::Warp& w, const Key& key,
                                      const NeighborStore& store);

  bool enabled_;
  uint64_t capacity_;
  uint64_t used_ = 0;
  std::map<Key, std::vector<VertexId>> cache_;
  std::vector<VertexId> scratch_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace gsi

#endif  // GSI_GSI_DUP_REMOVAL_H_
