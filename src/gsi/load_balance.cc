#include "gsi/load_balance.h"

#include <algorithm>

#include "util/check.h"

namespace gsi {

std::vector<Chunk*> ChunkPlan::AllChunks() {
  std::vector<Chunk*> out;
  out.reserve(total_chunks());
  for (Chunk& c : pooled) out.push_back(&c);
  for (auto& row : per_block) {
    for (Chunk& c : row) out.push_back(&c);
  }
  for (auto& row : huge) {
    for (Chunk& c : row) out.push_back(&c);
  }
  return out;
}

namespace {

std::vector<Chunk> SplitRow(uint32_t row, uint32_t bound, uint64_t gba_begin,
                            uint32_t chunk_elems) {
  std::vector<Chunk> out;
  if (bound == 0) {
    // Zero-workload rows still need one chunk so the row is considered
    // (its set-op result is empty, but the accounting pass must see it).
    out.push_back(Chunk{row, 0, 0, gba_begin, 0});
    return out;
  }
  for (uint32_t b = 0; b < bound; b += chunk_elems) {
    uint32_t e = std::min(bound, b + chunk_elems);
    out.push_back(Chunk{row, b, e, gba_begin + b, 0});
  }
  return out;
}

}  // namespace

ChunkPlan PlanChunks(std::span<const uint32_t> upper_bounds,
                     std::span<const uint64_t> gba_offsets,
                     bool load_balance, uint32_t w1, uint32_t w2,
                     uint32_t w3) {
  GSI_CHECK(gba_offsets.size() >= upper_bounds.size());
  ChunkPlan plan;
  const size_t rows = upper_bounds.size();
  if (!load_balance) {
    plan.pooled.reserve(rows);
    for (uint32_t i = 0; i < rows; ++i) {
      plan.pooled.push_back(
          Chunk{i, 0, upper_bounds[i], gba_offsets[i], 0});
    }
    return plan;
  }
  GSI_CHECK_MSG(w1 > w2 && w2 > w3 && w3 >= 32, "require W1 > W2 > W3 >= 32");
  for (uint32_t i = 0; i < rows; ++i) {
    uint32_t bound = upper_bounds[i];
    uint64_t base = gba_offsets[i];
    if (bound > w1) {
      plan.huge.push_back(SplitRow(i, bound, base, w3));
    } else if (bound > w2) {
      plan.per_block.push_back(SplitRow(i, bound, base, w3));
    } else if (bound > w3) {
      std::vector<Chunk> cs = SplitRow(i, bound, base, w3);
      plan.pooled.insert(plan.pooled.end(), cs.begin(), cs.end());
    } else {
      plan.pooled.push_back(Chunk{i, 0, bound, base, 0});
    }
  }
  return plan;
}

std::vector<ShardRange> PartitionByWorkload(std::span<const uint64_t> weights,
                                            size_t max_shards) {
  std::vector<ShardRange> out;
  const size_t n = weights.size();
  if (n == 0 || max_shards == 0) return out;
  auto cost = [&](size_t i) { return std::max<uint64_t>(1, weights[i]); };
  uint64_t remaining = 0;
  for (size_t i = 0; i < n; ++i) remaining += cost(i);

  size_t begin = 0;
  for (size_t s = 0; s < max_shards && begin < n; ++s) {
    const size_t shards_left = max_shards - s;
    const uint64_t target = (remaining + shards_left - 1) / shards_left;
    ShardRange r;
    r.begin = begin;
    size_t end = begin;
    while (end < n) {
      // Keep one item per still-unfilled shard so trailing devices are
      // never starved by a hot prefix.
      if (r.weight > 0 && n - end <= shards_left - 1) break;
      if (r.weight >= target && shards_left > 1) break;
      r.weight += cost(end);
      ++end;
    }
    r.end = end;
    remaining -= r.weight;
    begin = end;
    out.push_back(r);
  }
  // The loop always covers [0, n): every shard takes >= 1 item and the
  // last shard (shards_left == 1) never breaks early.
  GSI_CHECK(begin == n);
  return out;
}

}  // namespace gsi
