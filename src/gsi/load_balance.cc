#include "gsi/load_balance.h"

#include "util/check.h"

namespace gsi {

std::vector<Chunk*> ChunkPlan::AllChunks() {
  std::vector<Chunk*> out;
  out.reserve(total_chunks());
  for (Chunk& c : pooled) out.push_back(&c);
  for (auto& row : per_block) {
    for (Chunk& c : row) out.push_back(&c);
  }
  for (auto& row : huge) {
    for (Chunk& c : row) out.push_back(&c);
  }
  return out;
}

namespace {

std::vector<Chunk> SplitRow(uint32_t row, uint32_t bound, uint64_t gba_begin,
                            uint32_t chunk_elems) {
  std::vector<Chunk> out;
  if (bound == 0) {
    // Zero-workload rows still need one chunk so the row is considered
    // (its set-op result is empty, but the accounting pass must see it).
    out.push_back(Chunk{row, 0, 0, gba_begin, 0});
    return out;
  }
  for (uint32_t b = 0; b < bound; b += chunk_elems) {
    uint32_t e = std::min(bound, b + chunk_elems);
    out.push_back(Chunk{row, b, e, gba_begin + b, 0});
  }
  return out;
}

}  // namespace

ChunkPlan PlanChunks(std::span<const uint32_t> upper_bounds,
                     std::span<const uint64_t> gba_offsets,
                     bool load_balance, uint32_t w1, uint32_t w2,
                     uint32_t w3) {
  GSI_CHECK(gba_offsets.size() >= upper_bounds.size());
  ChunkPlan plan;
  const size_t rows = upper_bounds.size();
  if (!load_balance) {
    plan.pooled.reserve(rows);
    for (uint32_t i = 0; i < rows; ++i) {
      plan.pooled.push_back(
          Chunk{i, 0, upper_bounds[i], gba_offsets[i], 0});
    }
    return plan;
  }
  GSI_CHECK_MSG(w1 > w2 && w2 > w3 && w3 >= 32, "require W1 > W2 > W3 >= 32");
  for (uint32_t i = 0; i < rows; ++i) {
    uint32_t bound = upper_bounds[i];
    uint64_t base = gba_offsets[i];
    if (bound > w1) {
      plan.huge.push_back(SplitRow(i, bound, base, w3));
    } else if (bound > w2) {
      plan.per_block.push_back(SplitRow(i, bound, base, w3));
    } else if (bound > w3) {
      std::vector<Chunk> cs = SplitRow(i, bound, base, w3);
      plan.pooled.insert(plan.pooled.end(), cs.begin(), cs.end());
    } else {
      plan.pooled.push_back(Chunk{i, 0, bound, base, 0});
    }
  }
  return plan;
}

}  // namespace gsi
