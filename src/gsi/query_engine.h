#ifndef GSI_GSI_QUERY_ENGINE_H_
#define GSI_GSI_QUERY_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "graph/graph.h"
#include "gsi/filter.h"
#include "gsi/matcher.h"
#include "gsi/partition.h"
#include "gsi/replication.h"
#include "gsi/sharded_engine.h"
#include "storage/neighbor_store.h"
#include "util/status.h"

namespace gsi {

/// Configuration of one RunBatch call.
struct BatchOptions {
  /// Worker threads; each owns one simulated device. Clamped to
  /// [1, number of queries].
  int num_threads = 1;
};

/// Aggregate measurements of one batch execution.
struct BatchStats {
  size_t total = 0;              ///< queries submitted
  size_t ok = 0;                 ///< queries that produced a result
  size_t failed = 0;             ///< queries rejected (bad query, row cap...)
  size_t num_workers = 0;        ///< worker threads that ran (after clamping)
  double wall_ms = 0;            ///< host wall time of the whole batch
  double queries_per_sec = 0;    ///< total / wall time (failures included)
  double ok_queries_per_sec = 0; ///< ok / wall time (goodput; 0 if all fail)
  double sum_simulated_ms = 0;   ///< sum of per-query simulated device time
  double p50_simulated_ms = 0;   ///< median simulated latency (ok queries)
  double p99_simulated_ms = 0;   ///< 99th-percentile simulated latency
  gpusim::MemStats device;       ///< counters summed over all worker devices
};

/// Result of one RunBatch call; `per_query[i]` corresponds to `queries[i]`.
struct BatchResult {
  std::vector<Result<QueryResult>> per_query;
  BatchStats stats;

  size_t num_ok() const { return stats.ok; }
};

/// Concurrent batch query engine: builds the data-graph structures (PCSR /
/// signature table) once, then serves many queries over them in parallel.
///
///   QueryEngine engine(data, GsiOptOptions());
///   BatchOptions bo;
///   bo.num_threads = 4;
///   BatchResult batch = engine.RunBatch(queries, bo);
///   batch.stats.queries_per_sec;
///
/// The precomputed structures are immutable after construction and shared
/// by reference across worker threads; every worker owns a private
/// gpusim::Device, so per-query stats are isolated and results are
/// bit-identical to sequential GsiMatcher::Find. The data graph must
/// outlive the engine.
///
/// Thread-safety: Run/RunBatch are safe to call concurrently from any
/// number of threads (they only read the shared structures). RunSharded
/// and RunPartitioned are safe as long as the devices they are handed
/// belong to exactly one call at a time (lease them from a DevicePool).
///
/// Ownership: every returned QueryResult owns its MatchTable outright —
/// results outlive the engine, the devices that produced them, and each
/// other; nothing in a result aliases engine state. Determinism: for a
/// fixed (data, options, query), the match table and all simulated
/// counters are identical across runs, thread counts and execution
/// strategies (see docs/ARCHITECTURE.md, "Where determinism is
/// enforced").
class QueryEngine {
 public:
  explicit QueryEngine(const Graph& data,
                       GsiOptions options = DefaultGsiOptions());

  /// One query execution request: the query, at most one execution target,
  /// and an optional trace sink — the single entry point that used to be
  /// spread over the Run/RunSharded/RunPartitioned overload families (each
  /// with its own trailing TraceContext parameter). Targets:
  ///
  ///   - nothing set: a fresh private device per call (thread-safe).
  ///   - `devices`: intra-query sharding across leased devices
  ///     (sharded_engine.h); `shard` tunes the fan-out.
  ///   - `partitioned`: a 1/K-per-device partitioned data graph
  ///     (gsi/partition.h); one query at a time against it.
  ///   - `replicated` + `selection`: an R-way replicated partitioned graph
  ///     (gsi/replication.h); concurrent calls need disjoint selections.
  ///
  /// Setting more than one target, a replicated target without a
  /// selection, or a selection without a replicated target is
  /// InvalidArgument. Partitioned/replicated targets must have been built
  /// over this engine's data graph and GsiOptions (also checked). Every
  /// target's result is bit-identical to GsiMatcher::Find.
  struct ExecRequest {
    const Graph* query = nullptr;
    std::span<gpusim::Device* const> devices = {};
    /// Tuning for the `devices` target; ignored otherwise.
    ShardOptions shard;
    const PartitionedGraph* partitioned = nullptr;
    const ReplicatedGraph* replicated = nullptr;
    const ReplicaSelection* selection = nullptr;
    obs::TraceContext trace;
  };

  /// Runs one query as described by `req` (see ExecRequest for targets,
  /// validation and the bit-identity contract).
  Result<QueryResult> Execute(const ExecRequest& req) const;

  /// Execute in manifest form: the result's partial tables stay on the
  /// devices that produced them (ResultManifest; see result_manifest.h) —
  /// what QueryService pages FetchPage results out of. Stats are identical
  /// to Execute; materializing the manifest reproduces Execute's table
  /// bit for bit. With no target set the private device is ephemeral, so
  /// the single part is tagged device_ordinal = -1 (host-consumable, no
  /// lease to reacquire).
  Result<PagedQueryResult> ExecutePaged(const ExecRequest& req) const;

  /// Deprecated: use Execute with no target set. Runs one query on a fresh
  /// private device (thread-safe). `trace` (optional, obs/trace.h) collects
  /// the execution's span tree.
  Result<QueryResult> Run(const Graph& query,
                          const obs::TraceContext& trace = {}) const;

  /// Deprecated: use Execute with `devices` (and `shard`) set. Runs one
  /// query sharded across the caller's devices (thread-safe as long as
  /// each device belongs to one call at a time — lease them from a
  /// DevicePool). Results are bit-identical to Run / GsiMatcher::Find; see
  /// sharded_engine.h for the partition/merge scheme and stats roll-up.
  Result<QueryResult> RunSharded(
      const Graph& query, std::span<gpusim::Device* const> devs,
      const ShardOptions& shard_options = ShardOptions(),
      const obs::TraceContext& trace = {}) const;

  /// Deprecated: use Execute with `partitioned` set. Runs one query
  /// against a *partitioned* data graph (each device holds 1/K of the
  /// PCSR + signature table instead of this engine's replica; see
  /// gsi/partition.h). `pg` must have been built over the same data
  /// graph and GsiOptions as this engine; results are then bit-identical to
  /// Run / GsiMatcher::Find. Thread-safe as long as only one query executes
  /// against `pg` (and its devices) at a time.
  Result<QueryResult> RunPartitioned(const Graph& query,
                                     const PartitionedGraph& pg,
                                     const obs::TraceContext& trace = {})
      const;

  /// Deprecated: use Execute with `replicated` + `selection` set. Runs one
  /// query against an R-way *replicated* partitioned data graph
  /// (see gsi/replication.h), serving each partition from the replica `sel`
  /// picks. Same contract as the PartitionedGraph overload — `rg` must
  /// match this engine's data graph and GsiOptions, results are
  /// bit-identical to Run for every selection — but concurrent calls are
  /// safe as long as their selections use disjoint devices (lease them via
  /// DevicePool::AcquireOneOfEach).
  Result<QueryResult> RunPartitioned(const Graph& query,
                                     const ReplicatedGraph& rg,
                                     const ReplicaSelection& sel,
                                     const obs::TraceContext& trace = {})
      const;

  /// Runs every query, spreading them over options.num_threads workers.
  /// Always returns one entry per query, in input order.
  BatchResult RunBatch(std::span<const Graph> queries,
                       const BatchOptions& options = BatchOptions()) const;

  /// Not Ok when the constructor rejected the options (see
  /// ValidateGsiOptions); Run and RunBatch report it per query.
  const Status& init_status() const { return init_status_; }

  const GsiOptions& options() const { return options_; }
  /// Valid only when init_status().ok().
  const NeighborStore& store() const { return *store_; }
  /// Precomputed filtering context; valid only when init_status().ok().
  /// Read-only, so callers may run RunFilterStage against it concurrently
  /// as long as each brings its own device (QueryService does).
  const FilterContext& filter() const { return *filter_; }

 private:
  /// Shared validation of Execute/ExecutePaged requests (see ExecRequest).
  Status ValidateRequest(const ExecRequest& req) const;

  const Graph* data_;
  GsiOptions options_;
  Status init_status_;
  /// Device the shared structures were built on; never used for query
  /// execution (workers bring their own), it only holds the build-time
  /// allocations and their address ranges.
  std::unique_ptr<gpusim::Device> build_dev_;
  std::unique_ptr<NeighborStore> store_;
  std::unique_ptr<FilterContext> filter_;
};

}  // namespace gsi

#endif  // GSI_GSI_QUERY_ENGINE_H_
