#ifndef GSI_GSI_SET_OPS_H_
#define GSI_GSI_SET_OPS_H_

#include <span>
#include <vector>

#include "gpusim/device_buffer.h"
#include "gpusim/launch.h"
#include "gsi/candidates.h"
#include "util/common.h"

namespace gsi {

/// How the join's inner set operations execute (Section V, "GPU-friendly
/// Set Operation" — ablated as "+SO" in Table VI and "write cache" in
/// Table VII).
struct SetOpFlags {
  /// Naive baseline: candidate membership via binary search on the sorted
  /// candidate list (log2 |C(u)| loads per probe) and a fresh kernel per
  /// set operation. GPU-friendly mode uses the candidate bitset (exactly
  /// one transaction per probe) and batches in shared memory.
  bool naive = false;
  /// 128B per-warp write cache: survivors are buffered in shared memory and
  /// flushed one transaction per 32 values instead of one per value.
  bool write_cache = true;
};

/// First-edge operation of Algorithm 3 (Lines 10-11, fused): filters the
/// extracted neighbor slice `input` by (a) subtraction of the partial match
/// `row` and (b) membership in C(u), appending survivors to `result`.
/// If `gba` is non-null the survivors are also written to
/// gba[gba_begin ...] with the configured write policy; a null `gba` is the
/// count-only pass of the two-step output scheme.
///
/// Returns the survivor count.
size_t FilterFirstEdge(gpusim::Warp& w, std::span<const VertexId> input,
                       std::span<const VertexId> row,
                       const CandidateSet& cand, const SetOpFlags& flags,
                       gpusim::DeviceBuffer<VertexId>* gba,
                       uint64_t gba_begin, std::vector<VertexId>& result);

/// When the two input sizes of IntersectSorted differ by more than this
/// factor, the GPU-friendly mode galloping-searches the longer list instead
/// of streaming it (the merge touches every element of both lists; a skewed
/// pair only needs O(short * log long) probes).
inline constexpr size_t kGallopRatio = 8;

/// Subsequent-edge operation (Line 13): intersection of the running buffer
/// `current` with the sorted neighbor list `other`; `current` is rewritten
/// in place. Comparable sizes use a linear sorted merge; sizes differing by
/// more than kGallopRatio use galloping search over the longer list (never
/// in the naive baseline, which models the one-kernel-per-op scheme). Both
/// paths produce identical results. If `gba` is non-null the surviving
/// values are rewritten to gba[gba_begin ...].
///
/// Returns the new size of `current`.
size_t IntersectSorted(gpusim::Warp& w, std::vector<VertexId>& current,
                       std::span<const VertexId> other,
                       const SetOpFlags& flags,
                       gpusim::DeviceBuffer<VertexId>* gba,
                       uint64_t gba_begin);

/// Charged write of `values` to gba[begin ...]: one transaction per 128B
/// flush with the write cache, one per element without.
void WriteToGba(gpusim::Warp& w, std::span<const VertexId> values,
                bool write_cache, gpusim::DeviceBuffer<VertexId>& gba,
                uint64_t begin);

}  // namespace gsi

#endif  // GSI_GSI_SET_OPS_H_
