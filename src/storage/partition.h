#ifndef GSI_STORAGE_PARTITION_H_
#define GSI_STORAGE_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"

namespace gsi {

/// Edge label l-partitioned subgraph D = P(G, l): the subgraph induced by
/// all edges labeled l, with edge labels dropped (Section IV). Host-side
/// representation from which every device structure is built.
struct LabelPartition {
  Label label = kInvalidLabel;
  /// Vertices with at least one l-labeled edge, ascending.
  std::vector<VertexId> vertices;
  /// offsets[i]..offsets[i+1] delimit neighbors of vertices[i].
  std::vector<uint64_t> offsets;
  /// Concatenated neighbor lists (each sorted ascending). Both directions
  /// of every undirected edge appear, so size == 2 * |E(D)|.
  std::vector<VertexId> neighbors;

  size_t num_vertices() const { return vertices.size(); }
  size_t num_directed_edges() const { return neighbors.size(); }
};

/// Splits G into one partition per distinct edge label, ordered by label.
std::vector<LabelPartition> PartitionByEdgeLabel(const Graph& g);

/// Builds the partition for a single label (empty partition if unused).
LabelPartition MakePartition(const Graph& g, Label l);

/// Like MakePartition, but keeps only the rows of vertices v with
/// keep[v] != 0: the unit from which a *device-partitioned* PCSR is built
/// (gsi/partition.h). Neighbor ids stay global — only the row set shrinks,
/// so each directed edge (u -> w) lands in exactly the partition that keeps
/// u. `keep` must have one entry per vertex of g.
LabelPartition MakePartitionForVertices(const Graph& g, Label l,
                                        std::span<const uint8_t> keep);

}  // namespace gsi

#endif  // GSI_STORAGE_PARTITION_H_
